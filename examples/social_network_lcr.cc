// Social-network analysis with label-constrained reachability (the §4.1
// motivation: "social relationships analysis in social networks").
//
// Generates a synthetic social network with three relationship kinds
// (follows / friendOf / worksFor, Zipf-skewed like real logs), builds the
// P2H and landmark indexes, and answers analyst-style questions:
// "who can B reach through friendship alone?", "is there an
// influence path from X to Y that never crosses an employment edge?".
//
//   $ ./social_network_lcr

#include <cstdio>

#include "core/query_workload.h"
#include "graph/generators.h"
#include "lcr/label_set.h"
#include "lcr/landmark_index.h"
#include "lcr/lcr_bfs.h"
#include "lcr/pruned_labeled_two_hop.h"

int main() {
  using namespace reach;

  constexpr Label kFollows = 0, kFriendOf = 1, kWorksFor = 2;
  const std::vector<std::string> names = {"follows", "friendOf", "worksFor"};

  const VertexId n = 20000;
  LabeledDigraph network = WithZipfLabels(
      RandomDigraph(n, 6 * static_cast<size_t>(n), /*seed=*/2026), 3,
      /*skew=*/1.1, /*seed=*/7);
  network.set_label_names(names);
  std::printf("social network: %zu members, %zu typed relationships\n",
              network.NumVertices(), network.NumEdges());

  // Index once, query many times.
  PrunedLabeledTwoHop p2h;
  p2h.Build(network);
  std::printf("p2h index: %zu entries, %zu KiB\n\n", p2h.TotalEntries(),
              p2h.IndexSizeBytes() / 1024);

  LandmarkIndex landmark(/*num_landmarks=*/32);
  landmark.Build(network);

  const LabelSet friendship = MakeLabelSet({kFriendOf});
  const LabelSet social = MakeLabelSet({kFollows, kFriendOf});
  const LabelSet any = MakeLabelSet({kFollows, kFriendOf, kWorksFor});

  // Analyst question 1: influence reach without employment edges.
  size_t social_only = 0, needs_work_edges = 0;
  const auto pairs = RandomPairs(network.ProjectPlain(), 2000, /*seed=*/3);
  for (const QueryPair& q : pairs) {
    const bool plain = p2h.Query(q.source, q.target, any);
    const bool soc = p2h.Query(q.source, q.target, social);
    if (soc) ++social_only;
    if (plain && !soc) ++needs_work_edges;
  }
  std::printf("of %zu random member pairs:\n", pairs.size());
  std::printf("  reachable via follows/friendOf only : %zu\n", social_only);
  std::printf("  reachable ONLY by crossing worksFor : %zu\n",
              needs_work_edges);

  // Analyst question 2: friendship closure size of one member.
  const VertexId member = 12345 % n;
  size_t friends_transitive = 0;
  for (VertexId other = 0; other < n; ++other) {
    if (other != member && p2h.Query(member, other, friendship)) {
      ++friends_transitive;
    }
  }
  std::printf("member %u reaches %zu members via friendOf edges alone\n",
              member, friends_transitive);

  // The two indexes must agree (landmark falls back to constrained BFS).
  size_t checked = 0;
  for (const QueryPair& q : pairs) {
    if (p2h.Query(q.source, q.target, social) !=
        landmark.Query(q.source, q.target, social)) {
      std::printf("DISAGREEMENT at (%u, %u) — bug!\n", q.source, q.target);
      return 1;
    }
    ++checked;
  }
  std::printf("p2h and landmark agreed on all %zu checked queries\n",
              checked);
  return 0;
}
