// Plain reachability on a citation-network-shaped DAG (the scale-free,
// younger-cites-older regime): which index to pick, and why — a
// miniature, runnable version of the survey's Table 1 decision.
//
//   $ ./citation_reachability

#include <chrono>
#include <cstdio>
#include <memory>

#include "core/index_stats.h"
#include "core/query_workload.h"
#include "graph/generators.h"
#include "core/index_factory.h"

int main() {
  using namespace reach;

  // A 100k-paper citation graph: each paper cites ~4 earlier papers,
  // preferentially well-cited ones.
  const VertexId n = 100000;
  const Digraph citations = ScaleFreeDag(n, 4, /*seed=*/11);
  std::printf("citation DAG: %zu papers, %zu citations\n\n",
              citations.NumVertices(), citations.NumEdges());

  const auto random_queries = RandomPairs(citations, 20000, 5);
  const auto positive_queries = ReachablePairs(citations, 20000, 6);

  std::printf("%-14s %10s %12s %14s %14s\n", "index", "build_ms", "size_KiB",
              "rand_q_ns", "pos_q_ns");
  for (const char* spec : {"bibfs", "grail", "ferrari", "bfl", "ip",
                           "feline", "preach", "oreach", "pll"}) {
    auto index = MakeIndex(spec).plain;
    Stopwatch build_timer;
    index->Build(citations);
    const double build_ms = build_timer.Elapsed().count() / 1e6;

    Stopwatch rand_timer;
    size_t hits = 0;
    for (const QueryPair& q : random_queries) {
      hits += index->Query(q.source, q.target);
    }
    const double rand_ns =
        static_cast<double>(rand_timer.Elapsed().count()) /
        random_queries.size();

    Stopwatch pos_timer;
    for (const QueryPair& q : positive_queries) {
      hits += index->Query(q.source, q.target);
    }
    const double pos_ns = static_cast<double>(pos_timer.Elapsed().count()) /
                          positive_queries.size();
    std::printf("%-14s %10.1f %12zu %14.0f %14.0f\n", index->Name().c_str(),
                build_ms, index->IndexSizeBytes() / 1024, rand_ns, pos_ns);
    if (hits == 0) std::printf("(no reachable pairs?)\n");
  }

  std::printf(
      "\nreading the table: partial indexes (grail/ferrari/bfl/ip/...) "
      "build in\nmilliseconds and stay small; the complete 2-hop (pll) "
      "pays a bigger build\nfor pure-lookup queries — the survey's Table 1 "
      "trade-off in one screen.\n");
  return 0;
}
