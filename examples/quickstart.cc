// Quickstart: build a graph, build a few reachability indexes, run queries.
//
//   $ ./quickstart
//
// Walks through the three ways to answer Qr(s, t) that the library offers:
// online traversal (no index), a complete index (pruned 2-hop / PLL), and
// a partial index with guided fallback (BFL).

#include <cstdio>

#include "core/query_workload.h"
#include "graph/generators.h"
#include "plain/bfl.h"
#include "plain/pruned_two_hop.h"
#include "core/index_factory.h"
#include "traversal/online_search.h"

int main() {
  using namespace reach;

  // 1. A graph. Vertices are dense ids 0..n-1; edges are directed. Real
  //    applications would use Digraph::FromEdges or ReadEdgeListFile.
  const VertexId n = 10000;
  const Digraph graph = RandomDigraph(n, 5 * static_cast<size_t>(n),
                                      /*seed=*/42);
  std::printf("graph: %zu vertices, %zu edges\n", graph.NumVertices(),
              graph.NumEdges());

  // 2. The baseline: answer queries by online traversal (paper §2.3).
  OnlineSearch bfs(TraversalKind::kBfs);
  bfs.Build(graph);

  // 3. A complete index: every query is label lookups only.
  PrunedTwoHop pll(VertexOrder::kDegree);
  pll.Build(graph);
  std::printf("pll: %zu label entries, %zu KiB\n", pll.TotalLabelEntries(),
              pll.IndexSizeBytes() / 1024);

  // 4. A partial index: filters + guided traversal, much cheaper to build.
  Bfl bfl;
  // DAG-only techniques are lifted to general graphs by the SCC adapter;
  // the MakeIndex factory does this automatically:
  auto wrapped_bfl = MakeIndex("bfl").plain;
  wrapped_bfl->Build(graph);
  std::printf("bfl: %zu KiB (complete=%d)\n",
              wrapped_bfl->IndexSizeBytes() / 1024,
              wrapped_bfl->IsComplete());

  // 5. Queries. All three engines must agree.
  const auto queries = RandomPairs(graph, 10, /*seed=*/7);
  for (const QueryPair& q : queries) {
    const bool via_bfs = bfs.Query(q.source, q.target);
    const bool via_pll = pll.Query(q.source, q.target);
    const bool via_bfl = wrapped_bfl->Query(q.source, q.target);
    std::printf("Qr(%u, %u) = %s%s\n", q.source, q.target,
                via_pll ? "true " : "false",
                (via_bfs == via_pll && via_pll == via_bfl)
                    ? ""
                    : "  <-- ENGINES DISAGREE (bug!)");
  }
  return 0;
}
