// A guided tour of the paper's Figure 1 running example: every worked
// query from the text, answered by the library.
//
//   $ ./figure1_tour

#include <cstdio>

#include "graph/figure1.h"
#include "lcr/gtc_index.h"
#include "lcr/label_set.h"
#include "lcr/single_source_gtc.h"
#include "core/index_factory.h"
#include "rlc/rlc_index.h"
#include "rpq/rpq_evaluator.h"

int main() {
  using namespace reach;
  using namespace reach::figure1;

  const LabeledDigraph g = LabeledGraph();
  const Digraph plain = PlainGraph();
  const auto& names = g.label_names();
  const char* vertex_names = "ABCDGHKLM";

  std::printf("Figure 1: %zu vertices, %zu labeled edges, labels = "
              "{friendOf, follows, worksFor}\n\n",
              g.NumVertices(), g.NumEdges());

  // §2.1 — plain reachability: Qr(A, G) via the path (A, D, H, G).
  auto index = MakeIndex("pll").plain;
  index->Build(plain);
  std::printf("[§2.1] Qr(A, G) = %s  (paper: true, via (A, D, H, G))\n",
              index->Query(kA, kG) ? "true" : "false");

  // §2.2 — path-constrained: Qr(A, G, (friendOf ∪ follows)*) = false.
  auto q = RpqQuery::Compile("(friendOf|follows)*", names, kNumLabels);
  std::printf(
      "[§2.2] Qr(A, G, (friendOf ∪ follows)*) = %s  (paper: false — "
      "every A-G path includes worksFor)\n",
      q->Evaluate(g, kA, kG) ? "true" : "false");

  // §4.1 — sufficient path-label sets from L to M: p1 beats p2.
  const auto from_l = SingleSourceGtc(g, kL);
  std::printf("[§4.1] SPLS(L, M) = %s  (paper: {worksFor}; "
              "{follows, worksFor} from p2 is redundant)\n",
              LabelSetToString(from_l[kM].sets()[0], names).c_str());

  const auto from_a = SingleSourceGtc(g, kA);
  std::printf("[§4.1] SPLS(A, L) = %s, SPLS(A, M) = %s  (paper: {follows} "
              "and {follows, worksFor} by transitivity)\n",
              LabelSetToString(from_a[kL].sets()[0], names).c_str(),
              LabelSetToString(from_a[kM].sets()[0], names).c_str());

  // §4.1.2 — the Dijkstra-like GTC computation: p3 is "shorter" than p4.
  std::printf("[§4.1.2] SPLS(L, H) = %s  (paper: p3 = (L,worksFor,C,"
              "worksFor,H) with 1 distinct label wins over p4 with 2)\n",
              LabelSetToString(from_l[kH].sets()[0], names).c_str());

  // §4.2 — concatenation: Qr(L, B, (worksFor · friendOf)*) = true.
  RlcIndex rlc;
  rlc.Build(g, {{kWorksFor, kFriendOf}});
  std::printf(
      "[§4.2] Qr(L, B, (worksFor · friendOf)*) = %s  (paper: true, via "
      "(L,worksFor,D,friendOf,H,worksFor,G,friendOf,B))\n",
      rlc.Query(kL, kB, {kWorksFor, kFriendOf}) ? "true" : "false");

  // Bonus: the full GTC of the example graph, printed as in the tutorial.
  GtcIndex gtc;
  gtc.Build(g);
  std::printf("\nFull GTC of Figure 1(b) (non-empty rows):\n");
  for (VertexId s = 0; s < g.NumVertices(); ++s) {
    for (VertexId t = 0; t < g.NumVertices(); ++t) {
      if (s == t) continue;
      const auto spls = gtc.Spls(s, t);
      if (spls.empty()) continue;
      std::printf("  %c -> %c:", vertex_names[s], vertex_names[t]);
      for (LabelSet m : spls) {
        std::printf(" %s", LabelSetToString(m, names).c_str());
      }
      std::printf("\n");
    }
  }
  return 0;
}
