// A small command-line reachability service — the library as a downstream
// user would deploy it: load a SNAP-style edge list, build an index chosen
// by name, then answer queries from stdin. Demonstrates file I/O, the
// index registry, LCR constraints, and 2-hop persistence.
//
// Usage:
//   reach_cli <edge-list-file> [index-spec]          # plain graphs
//   reach_cli --labeled <edge-list-file>             # labeled graphs (p2h)
//   reach_cli --demo                                 # built-in demo graph
//
// Query language on stdin, one per line:
//   <s> <t>              plain reachability Qr(s, t)
//   <s> <t> <l0,l1,...>  LCR query (labeled mode): labels allowed
//   save <file> / load <file>   persist / restore (pll indexes only)

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "core/index_stats.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "lcr/label_set.h"
#include "lcr/pruned_labeled_two_hop.h"
#include "plain/pruned_two_hop.h"
#include "plain/registry.h"

namespace {

int RunPlain(const reach::Digraph& graph, const std::string& spec) {
  using namespace reach;
  auto index = MakePlainIndex(spec);
  if (index == nullptr) {
    std::fprintf(stderr, "unknown index spec '%s'\n", spec.c_str());
    return 1;
  }
  Stopwatch timer;
  index->Build(graph);
  std::fprintf(stderr,
               "built %s in %.1f ms (%zu KiB) over %zu vertices / %zu "
               "edges; enter queries: <s> <t>\n",
               index->Name().c_str(), timer.Elapsed().count() / 1e6,
               index->IndexSizeBytes() / 1024, graph.NumVertices(),
               graph.NumEdges());

  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream fields(line);
    std::string first;
    if (!(fields >> first)) continue;
    if (first == "save" || first == "load") {
      auto* pll = dynamic_cast<PrunedTwoHop*>(index.get());
      std::string path;
      if (pll == nullptr || !(fields >> path)) {
        std::printf("error: save/load needs a pll index and a path\n");
        continue;
      }
      if (first == "save") {
        std::ofstream out(path, std::ios::binary);
        std::printf(pll->Save(out) ? "saved %s\n" : "error saving %s\n",
                    path.c_str());
      } else {
        std::ifstream in(path, std::ios::binary);
        std::printf(pll->Load(in) ? "loaded %s\n" : "error loading %s\n",
                    path.c_str());
      }
      continue;
    }
    VertexId s = 0, t = 0;
    try {
      s = static_cast<VertexId>(std::stoul(first));
    } catch (...) {
      std::printf("error: bad query '%s'\n", line.c_str());
      continue;
    }
    if (!(fields >> t) || s >= graph.NumVertices() ||
        t >= graph.NumVertices()) {
      std::printf("error: bad query '%s'\n", line.c_str());
      continue;
    }
    std::printf("%s\n", index->Query(s, t) ? "true" : "false");
  }
  return 0;
}

int RunLabeled(const reach::LabeledDigraph& graph) {
  using namespace reach;
  PrunedLabeledTwoHop index;
  Stopwatch timer;
  index.Build(graph);
  std::fprintf(stderr,
               "built p2h in %.1f ms (%zu entries) over %zu vertices / %zu "
               "labeled edges / %u labels; queries: <s> <t> <l0,l1,...>\n",
               timer.Elapsed().count() / 1e6, index.TotalEntries(),
               graph.NumVertices(), graph.NumEdges(), graph.NumLabels());

  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream fields(line);
    VertexId s = 0, t = 0;
    std::string labels;
    if (!(fields >> s >> t >> labels) || s >= graph.NumVertices() ||
        t >= graph.NumVertices()) {
      std::printf("error: bad query '%s'\n", line.c_str());
      continue;
    }
    LabelSet mask = 0;
    std::istringstream label_fields(labels);
    std::string token;
    bool ok = true;
    while (std::getline(label_fields, token, ',')) {
      try {
        const unsigned long l = std::stoul(token);
        if (l >= graph.NumLabels()) ok = false;
        if (ok) mask |= LabelBit(static_cast<Label>(l));
      } catch (...) {
        ok = false;
      }
    }
    if (!ok) {
      std::printf("error: bad labels '%s'\n", labels.c_str());
      continue;
    }
    std::printf("%s\n", index.Query(s, t, mask) ? "true" : "false");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace reach;
  if (argc >= 2 && std::strcmp(argv[1], "--demo") == 0) {
    return RunPlain(ScaleFreeDag(10000, 3, 1), argc > 2 ? argv[2] : "pll");
  }
  if (argc >= 3 && std::strcmp(argv[1], "--labeled") == 0) {
    std::string error;
    auto graph = ReadLabeledEdgeListFile(argv[2], &error);
    if (!graph) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    return RunLabeled(*graph);
  }
  if (argc >= 2) {
    std::string error;
    auto graph = ReadEdgeListFile(argv[1], &error);
    if (!graph) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    return RunPlain(*graph, argc > 2 ? argv[2] : "pll");
  }
  std::fprintf(stderr,
               "usage: reach_cli <edge-list> [index-spec]\n"
               "       reach_cli --labeled <edge-list>\n"
               "       reach_cli --demo [index-spec]\n");
  return 1;
}
