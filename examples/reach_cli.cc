// A small command-line reachability service — the library as a downstream
// user would deploy it: load a SNAP-style edge list, build an index chosen
// by name, then answer queries from stdin. Demonstrates file I/O, the
// MakeIndex factory, LCR constraints, 2-hop persistence, and the
// observability layer (--metrics).
//
// Usage:
//   reach_cli [--metrics] [--threads N] [--trace=FILE] [--fastpath]
//             [--reorder=deg|bfs|none] <edge-list-file> [index-spec]
//   reach_cli [--metrics] [--threads N] --labeled <edge-list-file>
//   reach_cli [--metrics] [--threads N] [--reorder=deg|bfs|none]
//             --demo [index-spec]
//   reach_cli [--metrics] [--threads N] [--trace=FILE] [--slow-ms=N]
//             [--load=FILE] [--max-inflight=N] [--max-pending=N]
//             [--churn=N] --serve (<edge-list-file> | --demo) [index-spec]
//   reach_cli --help     (lists every index spec with its Param knobs and
//                         write capability: static / insert-only /
//                         insert+delete)
//
// --fastpath wraps the chosen index in the constant-time FastPathIndex
// layer (docs/FASTPATH.md) — equivalent to appending ":fastpath=1" to the
// index spec. With --metrics the fastpath.hit.{pos,neg} / fastpath.undecided
// counters show how many queries the observation stack short-circuited.
//
// --serve runs the snapshot-serving engine (src/serve/) instead of a
// one-shot index: queries are answered from an immutable snapshot while
// `+ <s> <t>` inserts and `del <s> <t>` deletes stream into a write
// buffer that background rebuilds absorb. Each answer reports how it was
// produced (index, delta closure, or bounded BFS) and by which snapshot
// generation.
//
// --churn=N (--serve only) drives N random mixed insert/delete updates
// through ApplyUpdate in small batches before the REPL starts, with a
// query between batches — a smoke load for the decremental serve path;
// the serve.update.* counters are summarized to stderr when it finishes.
//
// --load=FILE (--serve only) skips the startup build: the RCHX v2
// snapshot file (written by `snapsave`, docs/SNAPSHOTS.md) is mmap'd and
// published as the first indexed snapshot — near-instant failover, with
// queries index-backed from the first line of input.
//
// --trace=FILE enables the span recorder (src/obs/trace.h) for the whole
// run and writes a Chrome-trace/Perfetto-compatible JSON timeline to FILE
// at exit: build phases, pool-worker task activity, and — under --serve —
// per-query stage spans and snapshot swaps (docs/TRACING.md).
//
// --slow-ms=N (--serve only) captures any query slower than N
// milliseconds into the bounded slow-query log; retained records (stage
// breakdown + probe counters) are dumped to stderr at shutdown.
// Deadline-degraded queries are captured regardless of N.
//
// --max-inflight=N / --max-pending=N (--serve only) arm the overload
// gates (docs/ROBUSTNESS.md): queries degrade tier by tier and shed once
// N are in flight; inserts block at N pending edges until a drain makes
// room. The `health` REPL command prints the readiness snapshot. Under
// --serve, SIGINT/SIGTERM shut down gracefully: in-flight queries drain
// and the usual shutdown reports (metrics, trace, slow log) are emitted.
//
// --threads N sets the process-wide default parallelism (the shared
// thread pool that parallel index builds draw from); without it the pool
// follows REACH_THREADS or the hardware concurrency.
//
// --reorder builds the index on a locality-renumbered copy of the graph
// (docs/QUERY_ENGINE.md) behind an id-translation shim; queries still use
// the file's vertex ids. save/load only works without --reorder (the
// persisted pll format stores no permutation).
//
// Query language on stdin, one per line:
//   <s> <t>              plain reachability Qr(s, t)
//   <s> <t> <l0,l1,...>  LCR query (labeled mode): labels allowed
//   save <file> / load <file>   persist / restore (pll indexes only)
//   snapsave <file> / snapload <file>   RCHX v2 snapshot write / zero-copy
//                        mmap restore (pll indexes only, docs/SNAPSHOTS.md)
//   + <s> <t> / del <s> <t> / flush   insert / delete an edge, force a
//                        snapshot (--serve only)
//
// With --metrics, a JSON metrics report (schema "reach.metrics.v1") is
// printed to stdout after stdin is exhausted: per-phase build timings,
// index size, peak build RSS, and the accumulated query probe counters.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define REACH_CLI_POSIX 1
#else
#define REACH_CLI_POSIX 0
#endif

#include "core/index_stats.h"
#include "core/reordering_index.h"
#include "graph/generators.h"
#include "graph/rng.h"
#include "graph/reorder.h"
#include "graph/graph_io.h"
#include "lcr/label_set.h"
#include "lcr/pruned_labeled_two_hop.h"
#include "obs/metrics_exporter.h"
#include "obs/trace.h"
#include "par/thread_pool.h"
#include "plain/pruned_two_hop.h"
#include "core/index_factory.h"
#include "serve/reach_service.h"

namespace {

// Prints the usage banner; with `roster` also lists every index spec the
// MakeIndex factory accepts together with its Param knobs.
void PrintUsage(FILE* out, bool roster) {
  std::fprintf(
      out,
      "usage: reach_cli [--metrics] [--threads N] [--trace=FILE] "
      "[--fastpath] [--reorder=deg|bfs|none] <edge-list> [index-spec]\n"
      "       reach_cli [--metrics] [--threads N] --labeled <edge-list>\n"
      "       reach_cli [--metrics] [--threads N] [--reorder=deg|bfs|none] "
      "--demo [index-spec]\n"
      "       reach_cli [--metrics] [--threads N] [--trace=FILE] "
      "[--slow-ms=N] [--load=SNAPSHOT] [--max-inflight=N] "
      "[--max-pending=N] [--churn=N] --serve (<edge-list> | --demo) "
      "[index-spec]\n"
      "       reach_cli --help\n");
  if (!roster) return;
  // One roster line per spec, with its write capability ("static",
  // "dynamic (insert-only)", "dynamic (insert+delete)") — the flag that
  // decides whether `+`/`del` are absorbed incrementally under --serve.
  const auto print_family = [out](reach::IndexFamily family) {
    for (const reach::SpecDoc& doc : reach::DescribeIndexSpecs(family)) {
      std::fprintf(out, "  %-18s %s [%s]\n", doc.spec.c_str(),
                   doc.summary.c_str(), doc.caps.c_str());
      if (!doc.params.empty()) {
        std::fprintf(out, "  %-18s params: %s\n", "", doc.params.c_str());
      }
    }
  };
  std::fprintf(out,
               "\nindex specs (append :param=value to tune; defaults in "
               "parentheses):\n");
  print_family(reach::IndexFamily::kPlain);
  std::fprintf(out, "\nlabel-constrained specs (--labeled graphs):\n");
  print_family(reach::IndexFamily::kLcr);
}

// Emits the JSON metrics report for `index` on stdout.
template <typename Index>
void EmitMetrics(const Index& index) {
  reach::MetricsExporter exporter;
  exporter.Add(reach::MakeIndexReport(index));
  exporter.SetRegistrySnapshot(reach::MetricsRegistry::Global().Snapshot());
  std::fputs(exporter.ToJson().c_str(), stdout);
  std::fputc('\n', stdout);
}

int RunPlain(const reach::Digraph& graph, const std::string& spec,
             bool metrics, reach::ReorderStrategy reorder) {
  using namespace reach;
  std::unique_ptr<ReachabilityIndex> index = MakeIndex(spec).plain;
  if (index == nullptr) {
    std::fprintf(stderr, "unknown index spec '%s'\n", spec.c_str());
    return 1;
  }
  if (reorder != ReorderStrategy::kNone) {
    index = std::make_unique<ReorderingIndex>(std::move(index), reorder);
  }
  index->Build(graph);
  std::fprintf(stderr,
               "built %s in %.1f ms (%zu KiB) over %zu vertices / %zu "
               "edges; enter queries: <s> <t>\n",
               index->Name().c_str(), index->Stats().build_time.count() / 1e6,
               index->IndexSizeBytes() / 1024, graph.NumVertices(),
               graph.NumEdges());

  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream fields(line);
    std::string first;
    if (!(fields >> first)) continue;
    if (first == "save" || first == "load" || first == "snapsave" ||
        first == "snapload") {
      auto* pll = dynamic_cast<PrunedTwoHop*>(index.get());
      std::string path;
      if (pll == nullptr || !(fields >> path)) {
        std::printf("error: %s needs a pll index and a path\n",
                    first.c_str());
        continue;
      }
      if (first == "save") {
        std::ofstream out(path, std::ios::binary);
        std::printf(pll->Save(out) ? "saved %s\n" : "error saving %s\n",
                    path.c_str());
      } else if (first == "load") {
        std::ifstream in(path, std::ios::binary);
        std::printf(pll->Load(in) ? "loaded %s\n" : "error loading %s\n",
                    path.c_str());
      } else if (first == "snapsave") {
        // Atomic path variant: temp file + fsync + rename, so a crash
        // mid-save never corrupts an existing snapshot at `path`.
        std::string save_error;
        if (pll->SaveSnapshot(path, &save_error)) {
          std::printf("snapshot saved %s\n", path.c_str());
        } else {
          std::printf("error saving %s: %s\n", path.c_str(),
                      save_error.c_str());
        }
      } else {
        const LoadResult result = pll->LoadSnapshot(path);
        if (result) {
          std::printf("snapshot mapped %s (%s storage)\n", path.c_str(),
                      pll->CompressedStorage() ? "compressed" : "flat");
        } else {
          std::printf("error loading %s: %s\n", path.c_str(),
                      LoadStatusMessage(result).c_str());
        }
      }
      continue;
    }
    VertexId s = 0, t = 0;
    try {
      s = static_cast<VertexId>(std::stoul(first));
    } catch (...) {
      std::printf("error: bad query '%s'\n", line.c_str());
      continue;
    }
    if (!(fields >> t) || s >= graph.NumVertices() ||
        t >= graph.NumVertices()) {
      std::printf("error: bad query '%s'\n", line.c_str());
      continue;
    }
    std::printf("%s\n", index->Query(s, t) ? "true" : "false");
  }
  if (metrics) EmitMetrics(*index);
  return 0;
}

int RunLabeled(const reach::LabeledDigraph& graph, bool metrics) {
  using namespace reach;
  PrunedLabeledTwoHop index;
  index.Build(graph);
  std::fprintf(stderr,
               "built p2h in %.1f ms (%zu entries) over %zu vertices / %zu "
               "labeled edges / %u labels; queries: <s> <t> <l0,l1,...>\n",
               index.Stats().build_time.count() / 1e6, index.TotalEntries(),
               graph.NumVertices(), graph.NumEdges(), graph.NumLabels());

  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream fields(line);
    VertexId s = 0, t = 0;
    std::string labels;
    if (!(fields >> s >> t >> labels) || s >= graph.NumVertices() ||
        t >= graph.NumVertices()) {
      std::printf("error: bad query '%s'\n", line.c_str());
      continue;
    }
    LabelSet mask = 0;
    std::istringstream label_fields(labels);
    std::string token;
    bool ok = true;
    while (std::getline(label_fields, token, ',')) {
      try {
        const unsigned long l = std::stoul(token);
        if (l >= graph.NumLabels()) ok = false;
        if (ok) mask |= LabelBit(static_cast<Label>(l));
      } catch (...) {
        ok = false;
      }
    }
    if (!ok) {
      std::printf("error: bad labels '%s'\n", labels.c_str());
      continue;
    }
    std::printf("%s\n", index.Query(s, t, mask) ? "true" : "false");
  }
  if (metrics) EmitMetrics(index);
  return 0;
}

const char* SourceName(reach::AnswerSource source) {
  switch (source) {
    case reach::AnswerSource::kIndex:
      return "index";
    case reach::AnswerSource::kDelta:
      return "delta";
    case reach::AnswerSource::kFallbackBfs:
      return "bfs";
    case reach::AnswerSource::kNegCache:
      return "negcache";
    case reach::AnswerSource::kShedded:
      return "shed";
  }
  return "?";
}

// Last shutdown signal caught by the --serve loop (0 = none). The handler
// only stores; the read loop notices because the interrupted read makes
// getline fail (handlers are installed without SA_RESTART).
std::atomic<int> g_shutdown_signal{0};

extern "C" void HandleShutdownSignal(int sig) {
  g_shutdown_signal.store(sig, std::memory_order_relaxed);
}

/// RAII install/restore of SIGINT+SIGTERM graceful-shutdown handlers
/// around the --serve REPL. On non-POSIX builds this is a no-op (the
/// default abrupt exit remains).
class ShutdownSignalScope {
 public:
  ShutdownSignalScope() {
#if REACH_CLI_POSIX
    struct sigaction action = {};
    action.sa_handler = HandleShutdownSignal;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;  // no SA_RESTART: blocked reads must EINTR out
    ::sigaction(SIGINT, &action, &old_int_);
    ::sigaction(SIGTERM, &action, &old_term_);
#endif
  }
  ~ShutdownSignalScope() {
#if REACH_CLI_POSIX
    ::sigaction(SIGINT, &old_int_, nullptr);
    ::sigaction(SIGTERM, &old_term_, nullptr);
#endif
  }
  ShutdownSignalScope(const ShutdownSignalScope&) = delete;
  ShutdownSignalScope& operator=(const ShutdownSignalScope&) = delete;

 private:
#if REACH_CLI_POSIX
  struct sigaction old_int_ = {};
  struct sigaction old_term_ = {};
#endif
};

// Prints the service health/readiness snapshot, one field per line.
void PrintHealth(const reach::ReachService& service) {
  const reach::ServiceHealth h = service.Health();
  std::printf(
      "ready=%s accepting_writes=%s snapshot=v%llu\n"
      "pending=%zu/%zu (%.0f%%) inflight=%zu/%zu (%.0f%%)\n"
      "rebuild=%s consecutive_failures=%llu retries=%llu failures=%llu "
      "watchdog=%llu shed=%llu\n",
      h.ready ? "true" : "false", h.accepting_writes ? "true" : "false",
      static_cast<unsigned long long>(h.snapshot_version), h.pending_edges,
      h.max_pending_edges, h.pending_fill * 100.0, h.inflight_queries,
      h.max_inflight_queries, h.inflight_fill * 100.0,
      reach::RebuildStateName(h.rebuild),
      static_cast<unsigned long long>(h.rebuild_consecutive_failures),
      static_cast<unsigned long long>(h.rebuild_retries),
      static_cast<unsigned long long>(h.rebuild_failures),
      static_cast<unsigned long long>(h.watchdog_fired),
      static_cast<unsigned long long>(h.shed));
  if (!h.last_rebuild_error.empty()) {
    std::printf("last_rebuild_error=%s\n", h.last_rebuild_error.c_str());
  }
}

// Dumps the retained slow queries, one line per record, to stderr.
void DumpSlowQueries(const reach::ReachService& service) {
  const std::vector<reach::SlowQueryRecord> slow = service.SlowQueries();
  if (slow.empty()) return;
  std::fprintf(stderr, "slow-query log (%zu retained):\n", slow.size());
  for (const reach::SlowQueryRecord& rec : slow) {
    std::string stages;
    for (size_t i = 0; i < reach::kNumServeStages; ++i) {
      if (rec.stage_ns[i] == 0) continue;
      char buf[64];
      std::snprintf(buf, sizeof(buf), " %s=%.3fms", reach::ServeStageName(i),
                    rec.stage_ns[i] / 1e6);
      stages += buf;
    }
    std::fprintf(stderr,
                 "  %u -> %u: %.3fms %s%s v%llu%s%s probes=%llu "
                 "pending=%llu bfs_visits=%llu |%s\n",
                 rec.s, rec.t, rec.total_ns / 1e6,
                 rec.reachable ? "true" : "false", rec.exact ? "" : "?",
                 static_cast<unsigned long long>(rec.snapshot_version),
                 rec.deadline_degraded ? " deadline_degraded" : "",
                 rec.slot_waited ? " slot_waited" : "",
                 static_cast<unsigned long long>(rec.index_probes),
                 static_cast<unsigned long long>(rec.pending_edges),
                 static_cast<unsigned long long>(rec.bfs_visits),
                 stages.c_str());
  }
}

// Drives `churn` random mixed insert/delete updates through
// `ApplyUpdate` in small batches, interleaved with queries — a smoke
// load for the decremental serve path, run before the REPL starts.
void DriveChurn(reach::ReachService& service, const reach::Digraph& graph,
                size_t churn) {
  using namespace reach;
  Xoshiro256ss rng(0xC4'52'4EULL);
  std::vector<Edge> live = graph.Edges();
  const VertexId n = static_cast<VertexId>(service.NumVertices());
  size_t sent = 0;
  while (sent < churn) {
    UpdateBatch batch;
    const size_t batch_size = std::min<size_t>(1 + rng.NextBounded(4),
                                               churn - sent);
    for (size_t i = 0; i < batch_size; ++i) {
      if (!live.empty() && rng.NextBounded(10) < 3) {
        const Edge e = live[rng.NextBounded(live.size())];
        batch.push_back(EdgeUpdate::Delete(e.source, e.target));
        std::erase(live, e);
      } else {
        const auto s = static_cast<VertexId>(rng.NextBounded(n));
        const auto t = static_cast<VertexId>(rng.NextBounded(n));
        if (s == t) continue;
        batch.push_back(EdgeUpdate::Insert(s, t));
        if (std::find(live.begin(), live.end(), Edge{s, t}) == live.end()) {
          live.push_back({s, t});
        }
      }
    }
    if (batch.empty()) continue;
    sent += batch.size();
    const UpdateResult result = service.ApplyUpdate(batch);
    if (!result.ok()) {
      std::fprintf(stderr, "churn: batch rejected: %s\n",
                   result.reason.c_str());
      continue;
    }
    // A read between every write batch keeps the serve path honest while
    // tombstones and pending inserts churn underneath it.
    service.Query(static_cast<VertexId>(rng.NextBounded(n)),
                  static_cast<VertexId>(rng.NextBounded(n)));
  }
  const ServeStats& stats = service.stats();
  std::fprintf(
      stderr,
      "churn: %zu updates applied (%llu inserts, %llu deletes, %llu "
      "batches, %llu rejected, %llu delete-verified reads), %zu pending\n",
      sent, static_cast<unsigned long long>(stats.inserts.load()),
      static_cast<unsigned long long>(stats.deletes.load()),
      static_cast<unsigned long long>(stats.update_batches.load()),
      static_cast<unsigned long long>(stats.update_rejected.load()),
      static_cast<unsigned long long>(stats.delete_verifies.load()),
      service.PendingEdgeCount());
}

int RunServe(const reach::Digraph& graph, const std::string& spec,
             bool metrics, double slow_ms, const std::string& load_path,
             size_t max_inflight, size_t max_pending, size_t churn) {
  using namespace reach;
  ServiceOptions options;
  options.spec = spec;
  options.max_inflight_queries = max_inflight;
  options.max_pending_edges = max_pending;
  if (slow_ms >= 0) {
    // Clamp to 1ns: --slow-ms=0 means "capture every query", and a 0ns
    // threshold would disable capture instead.
    options.slow_query_threshold =
        std::max(std::chrono::nanoseconds(1),
                 std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::duration<double, std::milli>(slow_ms)));
  }
  ReachService service(graph, options);
  if (!load_path.empty()) {
    const LoadResult result = service.StartWithSnapshot(load_path);
    if (!result) {
      std::fprintf(stderr, "error: cannot serve snapshot %s: %s\n",
                   load_path.c_str(), LoadStatusMessage(result).c_str());
      return 1;
    }
    std::fprintf(stderr, "mapped snapshot %s as v%llu\n", load_path.c_str(),
                 static_cast<unsigned long long>(service.SnapshotVersion()));
  } else {
    service.Start();
  }
  std::fprintf(stderr,
               "serving %zu vertices / %zu edges with '%s'; commands:\n"
               "  <s> <t>      query  (prints: <answer> <source> v<snapshot>)\n"
               "  + <s> <t>    insert edge\n"
               "  del <s> <t>  delete edge\n"
               "  flush        absorb pending updates into a new snapshot\n"
               "  health       print the readiness/health snapshot\n",
               graph.NumVertices(), graph.NumEdges(), spec.c_str());
  if (churn > 0) DriveChurn(service, graph, churn);

  // Graceful SIGINT/SIGTERM: the handler interrupts the blocked getline,
  // the loop exits, and the normal shutdown path below still runs —
  // queries drain, the rebuild loop stops, and every report (metrics,
  // trace, slow-query log) is emitted as on EOF.
  ShutdownSignalScope signal_scope;
  std::string line;
  while (g_shutdown_signal.load(std::memory_order_relaxed) == 0 &&
         std::getline(std::cin, line)) {
    std::istringstream fields(line);
    std::string first;
    if (!(fields >> first)) continue;
    if (first == "health") {
      PrintHealth(service);
      continue;
    }
    if (first == "flush") {
      service.Flush();
      std::printf("flushed; snapshot v%llu\n",
                  static_cast<unsigned long long>(service.SnapshotVersion()));
      continue;
    }
    if (first == "+" || first == "del") {
      const bool is_delete = first == "del";
      VertexId s = 0, t = 0;
      if (!(fields >> s >> t)) {
        std::printf("error: bad %s '%s'\n", is_delete ? "delete" : "insert",
                    line.c_str());
        continue;
      }
      const UpdateResult result = service.ApplyUpdate(
          {is_delete ? EdgeUpdate::Delete(s, t) : EdgeUpdate::Insert(s, t)});
      if (!result.ok()) {
        std::printf("error: %s rejected: %s\n",
                    is_delete ? "delete" : "insert", result.reason.c_str());
        continue;
      }
      std::printf("%s %u -> %u (%zu pending)\n",
                  is_delete ? "deleted" : "inserted", s, t,
                  service.PendingEdgeCount());
      continue;
    }
    VertexId s = 0, t = 0;
    try {
      s = static_cast<VertexId>(std::stoul(first));
    } catch (...) {
      std::printf("error: bad query '%s'\n", line.c_str());
      continue;
    }
    if (!(fields >> t) || s >= service.NumVertices() ||
        t >= service.NumVertices()) {
      std::printf("error: bad query '%s'\n", line.c_str());
      continue;
    }
    const ServeAnswer answer = service.Query(s, t);
    std::printf("%s%s %s v%llu\n", answer.reachable ? "true" : "false",
                answer.exact ? "" : "?", SourceName(answer.source),
                static_cast<unsigned long long>(answer.snapshot_version));
  }
  const int caught = g_shutdown_signal.load(std::memory_order_relaxed);
  if (caught != 0) {
    std::fprintf(stderr, "caught %s, shutting down gracefully\n",
                 caught == SIGINT ? "SIGINT" : "SIGTERM");
  }
  service.Stop();
  const ServeStats& stats = service.stats();
  std::fprintf(
      stderr,
      "served %llu queries (%llu index, %llu delta, %llu bfs, "
      "%llu negcache), %llu inserts, %llu deletes (%llu verified reads), "
      "%llu snapshots\n"
      "  %llu deadline_degraded, %llu slow captured (%llu evicted), "
      "negcache %llu miss / %llu evict / %llu invalidate\n",
      static_cast<unsigned long long>(stats.queries.load()),
      static_cast<unsigned long long>(stats.index_answers.load()),
      static_cast<unsigned long long>(stats.delta_answers.load()),
      static_cast<unsigned long long>(stats.fallback_answers.load()),
      static_cast<unsigned long long>(stats.negcache_hits.load()),
      static_cast<unsigned long long>(stats.inserts.load()),
      static_cast<unsigned long long>(stats.deletes.load()),
      static_cast<unsigned long long>(stats.delete_verifies.load()),
      static_cast<unsigned long long>(stats.rebuilds.load()),
      static_cast<unsigned long long>(stats.deadline_degraded.load()),
      static_cast<unsigned long long>(stats.slow_captured.load()),
      static_cast<unsigned long long>(stats.slow_dropped.load()),
      static_cast<unsigned long long>(stats.negcache_misses.load()),
      static_cast<unsigned long long>(stats.negcache_evictions.load()),
      static_cast<unsigned long long>(stats.negcache_invalidations.load()));
  DumpSlowQueries(service);
  if (metrics) {
    MetricsExporter exporter;
    exporter.SetRegistrySnapshot(MetricsRegistry::Global().Snapshot());
    std::fputs(exporter.ToJson().c_str(), stdout);
    std::fputc('\n', stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace reach;
  bool metrics = false;
  bool serve = false;
  bool fastpath = false;
  std::string trace_path;
  std::string load_path;
  double slow_ms = -1;
  size_t max_inflight = 0;
  size_t max_pending = 0;
  size_t churn = 0;
  ReorderStrategy reorder = ReorderStrategy::kNone;
  std::vector<const char*> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics") == 0) {
      metrics = true;
    } else if (std::strcmp(argv[i], "--serve") == 0) {
      serve = true;
    } else if (std::strcmp(argv[i], "--fastpath") == 0) {
      fastpath = true;
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      PrintUsage(stdout, /*roster=*/true);
      return 0;
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
      if (trace_path.empty()) {
        std::fprintf(stderr, "error: --trace needs a file path\n");
        return 1;
      }
    } else if (std::strncmp(argv[i], "--load=", 7) == 0) {
      load_path = argv[i] + 7;
      if (load_path.empty()) {
        std::fprintf(stderr, "error: --load needs a snapshot file path\n");
        return 1;
      }
    } else if (std::strncmp(argv[i], "--slow-ms=", 10) == 0) {
      try {
        slow_ms = std::stod(argv[i] + 10);
      } catch (...) {
        slow_ms = -1;
      }
      if (slow_ms < 0) {
        std::fprintf(stderr,
                     "error: --slow-ms needs a non-negative number\n");
        return 1;
      }
    } else if (std::strncmp(argv[i], "--max-inflight=", 15) == 0) {
      try {
        max_inflight = std::stoul(argv[i] + 15);
      } catch (...) {
        max_inflight = 0;
      }
      if (max_inflight == 0) {
        std::fprintf(stderr,
                     "error: --max-inflight needs a positive integer\n");
        return 1;
      }
    } else if (std::strncmp(argv[i], "--churn=", 8) == 0) {
      try {
        churn = std::stoul(argv[i] + 8);
      } catch (...) {
        churn = 0;
      }
      if (churn == 0) {
        std::fprintf(stderr, "error: --churn needs a positive integer\n");
        return 1;
      }
    } else if (std::strncmp(argv[i], "--max-pending=", 14) == 0) {
      try {
        max_pending = std::stoul(argv[i] + 14);
      } catch (...) {
        max_pending = 0;
      }
      if (max_pending == 0) {
        std::fprintf(stderr,
                     "error: --max-pending needs a positive integer\n");
        return 1;
      }
    } else if (std::strncmp(argv[i], "--reorder=", 10) == 0) {
      const auto parsed = ParseReorderStrategy(argv[i] + 10);
      if (!parsed) {
        std::fprintf(stderr,
                     "error: --reorder wants deg, bfs, or none (got '%s')\n",
                     argv[i] + 10);
        return 1;
      }
      reorder = *parsed;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      unsigned long threads = 0;
      try {
        threads = std::stoul(argv[++i]);
      } catch (...) {
      }
      if (threads == 0) {
        std::fprintf(stderr, "error: --threads needs a positive integer\n");
        return 1;
      }
      SetDefaultThreads(threads);
    } else {
      args.push_back(argv[i]);
    }
  }
  if (!load_path.empty() && !serve) {
    std::fprintf(stderr, "error: --load only applies with --serve\n");
    return 1;
  }
  if ((max_inflight > 0 || max_pending > 0) && !serve) {
    std::fprintf(stderr,
                 "error: --max-inflight/--max-pending only apply with "
                 "--serve\n");
    return 1;
  }
  if (churn > 0 && !serve) {
    std::fprintf(stderr, "error: --churn only applies with --serve\n");
    return 1;
  }
  if (!trace_path.empty()) {
    if (!kMetricsCompiled) {
      std::fprintf(stderr,
                   "warning: built with REACH_METRICS=OFF — the trace will "
                   "contain no spans\n");
    }
    TraceRecorder::Global().set_enabled(true);
    TraceRecorder::Global().SetCurrentThreadName("main");
  }

  // Dispatch through a lambda so the trace file is written on every exit
  // path (after the serve engine has stopped and workers have quiesced).
  const int rc = [&]() -> int {
    // --fastpath is sugar for the factory's :fastpath=1 spec param; a spec
    // that already asks for it explicitly is left alone.
    const auto with_fastpath = [&](std::string spec) {
      if (fastpath && spec.find("fastpath") == std::string::npos) {
        spec += ":fastpath=1";
      }
      return spec;
    };
    if (!args.empty() && std::strcmp(args[0], "--demo") == 0) {
      const std::string spec =
          with_fastpath(args.size() > 1 ? args[1] : "pll");
      if (serve) {
        return RunServe(ScaleFreeDag(10000, 3, 1), spec, metrics, slow_ms,
                        load_path, max_inflight, max_pending, churn);
      }
      return RunPlain(ScaleFreeDag(10000, 3, 1), spec, metrics, reorder);
    }
    if (args.size() >= 2 && std::strcmp(args[0], "--labeled") == 0) {
      if (fastpath) {
        std::fprintf(stderr,
                     "warning: --fastpath only applies to plain reachability "
                     "specs; ignored under --labeled\n");
      }
      std::string error;
      auto graph = ReadLabeledEdgeListFile(args[1], &error);
      if (!graph) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
      }
      return RunLabeled(*graph, metrics);
    }
    if (!args.empty()) {
      std::string error;
      auto graph = ReadEdgeListFile(args[0], &error);
      if (!graph) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
      }
      const std::string spec =
          with_fastpath(args.size() > 1 ? args[1] : "pll");
      if (serve) {
        return RunServe(*graph, spec, metrics, slow_ms, load_path,
                        max_inflight, max_pending, churn);
      }
      return RunPlain(*graph, spec, metrics, reorder);
    }
    PrintUsage(stderr, /*roster=*/false);
    return 1;
  }();

  if (!trace_path.empty()) {
    // A task's completion signal can unblock us before its worker leaves
    // the task scope (where the pool.task span records) — drain the pool
    // so the export never misses the tail of the timeline.
    ThreadPool::Global().Quiesce();
    TraceExporter exporter;
    if (exporter.WriteChromeJsonFile(trace_path)) {
      std::fprintf(stderr, "trace written to %s\n", trace_path.c_str());
    } else {
      std::fprintf(stderr, "error: could not write trace to %s\n",
                   trace_path.c_str());
      return rc == 0 ? 1 : rc;
    }
  }
  return rc;
}
