// Regular path queries end to end (the §2.2 query class and the §5
// "general path constraints" challenge): parse a constraint expression,
// compile it to a DFA, and evaluate it on a protein-interaction-style
// labeled graph (the §4.1 motivation: "analyzing interaction pathways of
// proteins in biological networks").
//
//   $ ./rpq_playground '(binds|activates)*.inhibits'    # optional argv[1]

#include <cstdio>

#include "graph/generators.h"
#include "rpq/rpq_evaluator.h"

int main(int argc, char** argv) {
  using namespace reach;

  const std::vector<std::string> names = {"binds", "activates", "inhibits"};
  const VertexId n = 3000;
  LabeledDigraph pathways = WithZipfLabels(
      RandomDigraph(n, 5 * static_cast<size_t>(n), 4242), 3, 1.0, 17);
  pathways.set_label_names(names);
  std::printf("pathway graph: %zu proteins, %zu typed interactions\n\n",
              pathways.NumVertices(), pathways.NumEdges());

  const std::vector<std::string> patterns =
      argc > 1 ? std::vector<std::string>{argv[1]}
               : std::vector<std::string>{
                     "(binds)*",
                     "(binds|activates)*",
                     "(binds.activates)*",
                     "activates+.inhibits",
                     "(binds|activates)*.inhibits.(binds)*",
                 };

  for (const std::string& pattern : patterns) {
    std::string error;
    auto query = RpqQuery::Compile(pattern, names, 3, &error);
    if (query == nullptr) {
      std::printf("%-42s parse error: %s\n", pattern.c_str(), error.c_str());
      continue;
    }
    // How selective is this constraint over a fixed probe set?
    size_t matched = 0;
    const size_t probes = 500;
    for (size_t i = 0; i < probes; ++i) {
      const VertexId s = static_cast<VertexId>((i * 97) % n);
      const VertexId t = static_cast<VertexId>((i * 131 + 7) % n);
      matched += query->Evaluate(pathways, s, t);
    }
    std::printf("%-42s dfa_states=%-3zu matched %zu / %zu probe pairs\n",
                pattern.c_str(), query->dfa().NumStates(), matched, probes);
  }

  std::printf(
      "\nalternation-star and concatenation-star rows of this table are\n"
      "exactly the classes Table 2's indexes accelerate; the mixed\n"
      "expressions are the §5 open challenge — only the FA-guided\n"
      "traversal evaluates them today.\n");
  return 0;
}
