// Dynamic graphs (the Table 1/2 "Dynamic" column and the §5 open
// challenge): maintain reachability indexes under a live edge stream —
// financial-transaction style (money-laundering detection needs fresh
// reachability over arriving transfer edges).
//
//   $ ./dynamic_stream

#include <cstdio>

#include "core/index_stats.h"
#include "graph/generators.h"
#include "graph/rng.h"
#include "plain/dbl.h"
#include "plain/pruned_two_hop.h"
#include "traversal/online_search.h"

int main() {
  using namespace reach;

  const VertexId n = 2000;
  const Digraph base = RandomDigraph(n, 2 * static_cast<size_t>(n), 99);
  std::printf("account graph: %zu accounts, %zu transfers (before stream)\n",
              base.NumVertices(), base.NumEdges());

  PrunedTwoHop tol(VertexOrder::kDegree);  // complete, TOL-style inserts
  Dbl dbl;                                 // partial, insert-only by design
  OnlineSearch oracle(TraversalKind::kBiBfs);
  tol.Build(base);
  dbl.Build(base);
  oracle.Build(base);

  // Interleaved stream: 400 new transfer edges + a reachability probe
  // after each (can account s move funds, possibly indirectly, to t?).
  Xoshiro256ss rng(1234);
  Stopwatch total;
  size_t alerts = 0, disagreements = 0;
  std::vector<Edge> all_edges = base.Edges();
  for (int step = 0; step < 400; ++step) {
    const VertexId u = static_cast<VertexId>(rng.NextBounded(n));
    const VertexId v = static_cast<VertexId>(rng.NextBounded(n));
    if (u == v) continue;
    const UpdateBatch batch = {EdgeUpdate::Insert(u, v)};
    tol.ApplyUpdate(batch);
    dbl.ApplyUpdate(batch);
    all_edges.push_back({u, v});

    const VertexId s = static_cast<VertexId>(rng.NextBounded(n));
    const VertexId t = static_cast<VertexId>(rng.NextBounded(n));
    const bool a = tol.Query(s, t);
    const bool b = dbl.Query(s, t);
    if (a) ++alerts;
    if (a != b) ++disagreements;
  }
  const double ms = total.Elapsed().count() / 1e6;
  std::printf("stream of 400 inserts + 400 probes: %.1f ms total "
              "(%.1f us per insert+probe)\n",
              ms, 1000.0 * ms / 400.0);
  std::printf("probes answered true: %zu; tol vs dbl disagreements: %zu\n",
              alerts, disagreements);

  // Verify the final state against a from-scratch oracle.
  const Digraph final_graph = Digraph::FromEdges(n, all_edges);
  OnlineSearch fresh(TraversalKind::kBiBfs);
  fresh.Build(final_graph);
  Xoshiro256ss check_rng(777);
  size_t wrong = 0;
  for (int i = 0; i < 2000; ++i) {
    const VertexId s = static_cast<VertexId>(check_rng.NextBounded(n));
    const VertexId t = static_cast<VertexId>(check_rng.NextBounded(n));
    if (tol.Query(s, t) != fresh.Query(s, t)) ++wrong;
    if (dbl.Query(s, t) != fresh.Query(s, t)) ++wrong;
  }
  std::printf("post-stream validation against rebuilt oracle: %zu wrong "
              "answers out of 4000 checks\n",
              wrong);

  // Decremental epilogue: reverse the last 50 transfers on the 2-hop
  // index (dbl is insert-only — a delete batch would be rejected whole)
  // and re-validate against an oracle over the shrunk edge set.
  std::vector<Edge> pruned = all_edges;
  UpdateBatch reversals;
  for (size_t i = 0; i < 50 && pruned.size() > base.NumEdges(); ++i) {
    const Edge e = pruned.back();
    pruned.pop_back();
    reversals.push_back(EdgeUpdate::Delete(e.source, e.target));
  }
  const UpdateResult undo = tol.ApplyUpdate(reversals);
  OnlineSearch shrunk(TraversalKind::kBiBfs);
  const Digraph pruned_graph = Digraph::FromEdges(n, pruned);
  shrunk.Build(pruned_graph);
  size_t wrong_after_deletes = 0;
  for (int i = 0; i < 2000; ++i) {
    const VertexId s = static_cast<VertexId>(check_rng.NextBounded(n));
    const VertexId t = static_cast<VertexId>(check_rng.NextBounded(n));
    if (tol.Query(s, t) != shrunk.Query(s, t)) ++wrong_after_deletes;
  }
  std::printf("reversed %zu transfers incrementally (%zu applied, rebuild "
              "recommended: %s); %zu wrong answers out of 2000 checks\n",
              reversals.size(), undo.applied,
              undo.rebuild_recommended ? "yes" : "no", wrong_after_deletes);
  return wrong == 0 && wrong_after_deletes == 0 ? 0 : 1;
}
