// The survey's Table 1 as an optimizer: profile a graph, let AutoIndex
// choose a technique, and sanity-check the choice against two
// alternatives — the §5 "integration into GDBMSs" workflow in miniature.
//
//   $ ./index_advisor                 # built-in demo graphs
//   $ ./index_advisor <edge-list>     # your own SNAP-style file

#include <cstdio>
#include <memory>

#include "core/index_stats.h"
#include "core/query_workload.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "graph/graph_stats.h"
#include "plain/auto_index.h"
#include "core/index_factory.h"

namespace {

void Advise(const std::string& name, const reach::Digraph& graph) {
  using namespace reach;
  std::printf("=== %s ===\n", name.c_str());
  const GraphStats stats = ComputeGraphStats(graph);
  std::printf("%s\n", GraphStatsToString(stats).c_str());

  AutoIndex auto_index;
  Stopwatch build_timer;
  auto_index.Build(graph);
  std::printf("chosen: %s — %s\n", auto_index.choice().spec.c_str(),
              auto_index.choice().rationale.c_str());

  // Compare the choice against a complete and a traversal alternative.
  const auto queries = RandomPairs(graph, 5000, 1);
  auto measure = [&](ReachabilityIndex& index, const char* label) {
    Stopwatch t;
    size_t hits = 0;
    for (const QueryPair& q : queries) hits += index.Query(q.source, q.target);
    std::printf("  %-16s %8.0f ns/query  (size %zu KiB, %zu hits)\n", label,
                static_cast<double>(t.Elapsed().count()) / queries.size(),
                index.IndexSizeBytes() / 1024, hits);
  };
  measure(auto_index, auto_index.Name().c_str());
  auto bibfs = MakeIndex("bibfs").plain;
  bibfs->Build(graph);
  measure(*bibfs, "bibfs");
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace reach;
  if (argc > 1) {
    std::string error;
    auto graph = ReadEdgeListFile(argv[1], &error);
    if (!graph) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    Advise(argv[1], *graph);
    return 0;
  }
  Advise("random tree (50k)", RandomTree(50000, 1));
  Advise("small dense digraph (2k, avg 8)", RandomDigraph(2000, 16000, 2));
  Advise("large citation DAG (60k, scale-free)", ScaleFreeDag(60000, 4, 3));
  Advise("deep layered DAG (32k)", LayeredDag(512, 64, 3, 4));
  return 0;
}
