file(REMOVE_RECURSE
  "CMakeFiles/online_search_test.dir/online_search_test.cc.o"
  "CMakeFiles/online_search_test.dir/online_search_test.cc.o.d"
  "online_search_test"
  "online_search_test.pdb"
  "online_search_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
