# Empty dependencies file for online_search_test.
# This may be replaced when dependencies are built.
