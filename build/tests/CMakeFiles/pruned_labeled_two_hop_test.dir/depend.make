# Empty dependencies file for pruned_labeled_two_hop_test.
# This may be replaced when dependencies are built.
