file(REMOVE_RECURSE
  "CMakeFiles/label_set_test.dir/label_set_test.cc.o"
  "CMakeFiles/label_set_test.dir/label_set_test.cc.o.d"
  "label_set_test"
  "label_set_test.pdb"
  "label_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/label_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
