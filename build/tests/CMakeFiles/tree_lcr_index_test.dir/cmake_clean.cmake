file(REMOVE_RECURSE
  "CMakeFiles/tree_lcr_index_test.dir/tree_lcr_index_test.cc.o"
  "CMakeFiles/tree_lcr_index_test.dir/tree_lcr_index_test.cc.o.d"
  "tree_lcr_index_test"
  "tree_lcr_index_test.pdb"
  "tree_lcr_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_lcr_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
