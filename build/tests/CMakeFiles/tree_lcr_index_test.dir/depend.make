# Empty dependencies file for tree_lcr_index_test.
# This may be replaced when dependencies are built.
