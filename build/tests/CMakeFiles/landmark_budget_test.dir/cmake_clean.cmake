file(REMOVE_RECURSE
  "CMakeFiles/landmark_budget_test.dir/landmark_budget_test.cc.o"
  "CMakeFiles/landmark_budget_test.dir/landmark_budget_test.cc.o.d"
  "landmark_budget_test"
  "landmark_budget_test.pdb"
  "landmark_budget_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/landmark_budget_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
