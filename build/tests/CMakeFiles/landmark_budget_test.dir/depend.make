# Empty dependencies file for landmark_budget_test.
# This may be replaced when dependencies are built.
