# Empty dependencies file for gripp_test.
# This may be replaced when dependencies are built.
