file(REMOVE_RECURSE
  "CMakeFiles/gripp_test.dir/gripp_test.cc.o"
  "CMakeFiles/gripp_test.dir/gripp_test.cc.o.d"
  "gripp_test"
  "gripp_test.pdb"
  "gripp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gripp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
