# Empty compiler generated dependencies file for gripp_test.
# This may be replaced when dependencies are built.
