# Empty dependencies file for chain_cover_test.
# This may be replaced when dependencies are built.
