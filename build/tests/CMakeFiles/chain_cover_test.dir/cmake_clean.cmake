file(REMOVE_RECURSE
  "CMakeFiles/chain_cover_test.dir/chain_cover_test.cc.o"
  "CMakeFiles/chain_cover_test.dir/chain_cover_test.cc.o.d"
  "chain_cover_test"
  "chain_cover_test.pdb"
  "chain_cover_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chain_cover_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
