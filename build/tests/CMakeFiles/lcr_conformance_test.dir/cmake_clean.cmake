file(REMOVE_RECURSE
  "CMakeFiles/lcr_conformance_test.dir/lcr_conformance_test.cc.o"
  "CMakeFiles/lcr_conformance_test.dir/lcr_conformance_test.cc.o.d"
  "lcr_conformance_test"
  "lcr_conformance_test.pdb"
  "lcr_conformance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcr_conformance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
