# Empty compiler generated dependencies file for lcr_conformance_test.
# This may be replaced when dependencies are built.
