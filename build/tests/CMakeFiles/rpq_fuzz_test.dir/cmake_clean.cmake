file(REMOVE_RECURSE
  "CMakeFiles/rpq_fuzz_test.dir/rpq_fuzz_test.cc.o"
  "CMakeFiles/rpq_fuzz_test.dir/rpq_fuzz_test.cc.o.d"
  "rpq_fuzz_test"
  "rpq_fuzz_test.pdb"
  "rpq_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpq_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
