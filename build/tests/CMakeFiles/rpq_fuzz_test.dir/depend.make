# Empty dependencies file for rpq_fuzz_test.
# This may be replaced when dependencies are built.
