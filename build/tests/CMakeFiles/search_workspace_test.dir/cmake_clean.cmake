file(REMOVE_RECURSE
  "CMakeFiles/search_workspace_test.dir/search_workspace_test.cc.o"
  "CMakeFiles/search_workspace_test.dir/search_workspace_test.cc.o.d"
  "search_workspace_test"
  "search_workspace_test.pdb"
  "search_workspace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_workspace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
