# Empty dependencies file for search_workspace_test.
# This may be replaced when dependencies are built.
