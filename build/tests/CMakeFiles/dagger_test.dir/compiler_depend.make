# Empty compiler generated dependencies file for dagger_test.
# This may be replaced when dependencies are built.
