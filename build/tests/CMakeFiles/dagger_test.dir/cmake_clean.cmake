file(REMOVE_RECURSE
  "CMakeFiles/dagger_test.dir/dagger_test.cc.o"
  "CMakeFiles/dagger_test.dir/dagger_test.cc.o.d"
  "dagger_test"
  "dagger_test.pdb"
  "dagger_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dagger_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
