# Empty compiler generated dependencies file for rlc_test.
# This may be replaced when dependencies are built.
