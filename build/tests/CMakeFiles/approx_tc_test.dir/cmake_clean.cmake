file(REMOVE_RECURSE
  "CMakeFiles/approx_tc_test.dir/approx_tc_test.cc.o"
  "CMakeFiles/approx_tc_test.dir/approx_tc_test.cc.o.d"
  "approx_tc_test"
  "approx_tc_test.pdb"
  "approx_tc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approx_tc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
