# Empty dependencies file for approx_tc_test.
# This may be replaced when dependencies are built.
