file(REMOVE_RECURSE
  "CMakeFiles/scc_condensing_index_test.dir/scc_condensing_index_test.cc.o"
  "CMakeFiles/scc_condensing_index_test.dir/scc_condensing_index_test.cc.o.d"
  "scc_condensing_index_test"
  "scc_condensing_index_test.pdb"
  "scc_condensing_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scc_condensing_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
