# Empty compiler generated dependencies file for scc_condensing_index_test.
# This may be replaced when dependencies are built.
