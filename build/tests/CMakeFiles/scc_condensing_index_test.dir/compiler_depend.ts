# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for scc_condensing_index_test.
