file(REMOVE_RECURSE
  "CMakeFiles/labeled_digraph_test.dir/labeled_digraph_test.cc.o"
  "CMakeFiles/labeled_digraph_test.dir/labeled_digraph_test.cc.o.d"
  "labeled_digraph_test"
  "labeled_digraph_test.pdb"
  "labeled_digraph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/labeled_digraph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
