# Empty dependencies file for labeled_digraph_test.
# This may be replaced when dependencies are built.
