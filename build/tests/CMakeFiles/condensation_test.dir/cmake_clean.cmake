file(REMOVE_RECURSE
  "CMakeFiles/condensation_test.dir/condensation_test.cc.o"
  "CMakeFiles/condensation_test.dir/condensation_test.cc.o.d"
  "condensation_test"
  "condensation_test.pdb"
  "condensation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/condensation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
