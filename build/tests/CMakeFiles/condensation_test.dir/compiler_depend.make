# Empty compiler generated dependencies file for condensation_test.
# This may be replaced when dependencies are built.
