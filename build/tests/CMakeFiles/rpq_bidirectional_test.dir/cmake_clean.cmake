file(REMOVE_RECURSE
  "CMakeFiles/rpq_bidirectional_test.dir/rpq_bidirectional_test.cc.o"
  "CMakeFiles/rpq_bidirectional_test.dir/rpq_bidirectional_test.cc.o.d"
  "rpq_bidirectional_test"
  "rpq_bidirectional_test.pdb"
  "rpq_bidirectional_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpq_bidirectional_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
