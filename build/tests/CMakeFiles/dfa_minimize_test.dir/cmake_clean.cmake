file(REMOVE_RECURSE
  "CMakeFiles/dfa_minimize_test.dir/dfa_minimize_test.cc.o"
  "CMakeFiles/dfa_minimize_test.dir/dfa_minimize_test.cc.o.d"
  "dfa_minimize_test"
  "dfa_minimize_test.pdb"
  "dfa_minimize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfa_minimize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
