# Empty dependencies file for dfa_minimize_test.
# This may be replaced when dependencies are built.
