
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/scc_test.cc" "tests/CMakeFiles/scc_test.dir/scc_test.cc.o" "gcc" "tests/CMakeFiles/scc_test.dir/scc_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/reach_rlc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/reach_rpq.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/reach_plain.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/reach_lcr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/reach_reduction.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/reach_traversal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/reach_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/reach_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
