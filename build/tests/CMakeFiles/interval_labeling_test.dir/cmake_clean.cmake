file(REMOVE_RECURSE
  "CMakeFiles/interval_labeling_test.dir/interval_labeling_test.cc.o"
  "CMakeFiles/interval_labeling_test.dir/interval_labeling_test.cc.o.d"
  "interval_labeling_test"
  "interval_labeling_test.pdb"
  "interval_labeling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interval_labeling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
