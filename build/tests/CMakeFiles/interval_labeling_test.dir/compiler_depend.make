# Empty compiler generated dependencies file for interval_labeling_test.
# This may be replaced when dependencies are built.
