# Empty compiler generated dependencies file for rpq_template_index_test.
# This may be replaced when dependencies are built.
