file(REMOVE_RECURSE
  "CMakeFiles/rpq_template_index_test.dir/rpq_template_index_test.cc.o"
  "CMakeFiles/rpq_template_index_test.dir/rpq_template_index_test.cc.o.d"
  "rpq_template_index_test"
  "rpq_template_index_test.pdb"
  "rpq_template_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpq_template_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
