file(REMOVE_RECURSE
  "CMakeFiles/dbl_test.dir/dbl_test.cc.o"
  "CMakeFiles/dbl_test.dir/dbl_test.cc.o.d"
  "dbl_test"
  "dbl_test.pdb"
  "dbl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
