# Empty compiler generated dependencies file for dbl_test.
# This may be replaced when dependencies are built.
