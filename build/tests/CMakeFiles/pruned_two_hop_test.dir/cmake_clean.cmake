file(REMOVE_RECURSE
  "CMakeFiles/pruned_two_hop_test.dir/pruned_two_hop_test.cc.o"
  "CMakeFiles/pruned_two_hop_test.dir/pruned_two_hop_test.cc.o.d"
  "pruned_two_hop_test"
  "pruned_two_hop_test.pdb"
  "pruned_two_hop_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pruned_two_hop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
