# Empty compiler generated dependencies file for pruned_two_hop_test.
# This may be replaced when dependencies are built.
