file(REMOVE_RECURSE
  "CMakeFiles/lcr_edge_cases_test.dir/lcr_edge_cases_test.cc.o"
  "CMakeFiles/lcr_edge_cases_test.dir/lcr_edge_cases_test.cc.o.d"
  "lcr_edge_cases_test"
  "lcr_edge_cases_test.pdb"
  "lcr_edge_cases_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcr_edge_cases_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
