# Empty compiler generated dependencies file for single_source_gtc_test.
# This may be replaced when dependencies are built.
