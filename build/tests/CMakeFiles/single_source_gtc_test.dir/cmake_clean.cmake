file(REMOVE_RECURSE
  "CMakeFiles/single_source_gtc_test.dir/single_source_gtc_test.cc.o"
  "CMakeFiles/single_source_gtc_test.dir/single_source_gtc_test.cc.o.d"
  "single_source_gtc_test"
  "single_source_gtc_test.pdb"
  "single_source_gtc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/single_source_gtc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
