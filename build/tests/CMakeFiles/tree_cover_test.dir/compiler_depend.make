# Empty compiler generated dependencies file for tree_cover_test.
# This may be replaced when dependencies are built.
