# Empty dependencies file for dynamic_soak_test.
# This may be replaced when dependencies are built.
