file(REMOVE_RECURSE
  "CMakeFiles/dynamic_soak_test.dir/dynamic_soak_test.cc.o"
  "CMakeFiles/dynamic_soak_test.dir/dynamic_soak_test.cc.o.d"
  "dynamic_soak_test"
  "dynamic_soak_test.pdb"
  "dynamic_soak_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_soak_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
