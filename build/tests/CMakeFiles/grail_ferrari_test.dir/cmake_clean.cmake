file(REMOVE_RECURSE
  "CMakeFiles/grail_ferrari_test.dir/grail_ferrari_test.cc.o"
  "CMakeFiles/grail_ferrari_test.dir/grail_ferrari_test.cc.o.d"
  "grail_ferrari_test"
  "grail_ferrari_test.pdb"
  "grail_ferrari_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grail_ferrari_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
