# Empty dependencies file for grail_ferrari_test.
# This may be replaced when dependencies are built.
