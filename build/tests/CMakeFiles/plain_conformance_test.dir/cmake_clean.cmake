file(REMOVE_RECURSE
  "CMakeFiles/plain_conformance_test.dir/plain_conformance_test.cc.o"
  "CMakeFiles/plain_conformance_test.dir/plain_conformance_test.cc.o.d"
  "plain_conformance_test"
  "plain_conformance_test.pdb"
  "plain_conformance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plain_conformance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
