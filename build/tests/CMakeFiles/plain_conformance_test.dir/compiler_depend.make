# Empty compiler generated dependencies file for plain_conformance_test.
# This may be replaced when dependencies are built.
