file(REMOVE_RECURSE
  "CMakeFiles/dynamic_bitset_test.dir/dynamic_bitset_test.cc.o"
  "CMakeFiles/dynamic_bitset_test.dir/dynamic_bitset_test.cc.o.d"
  "dynamic_bitset_test"
  "dynamic_bitset_test.pdb"
  "dynamic_bitset_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_bitset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
