file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_rlc.dir/bench_table2_rlc.cc.o"
  "CMakeFiles/bench_table2_rlc.dir/bench_table2_rlc.cc.o.d"
  "bench_table2_rlc"
  "bench_table2_rlc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_rlc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
