file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_plain.dir/bench_table1_plain.cc.o"
  "CMakeFiles/bench_table1_plain.dir/bench_table1_plain.cc.o.d"
  "bench_table1_plain"
  "bench_table1_plain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_plain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
