# Empty dependencies file for bench_table1_plain.
# This may be replaced when dependencies are built.
