file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_dynamic.dir/bench_table1_dynamic.cc.o"
  "CMakeFiles/bench_table1_dynamic.dir/bench_table1_dynamic.cc.o.d"
  "bench_table1_dynamic"
  "bench_table1_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
