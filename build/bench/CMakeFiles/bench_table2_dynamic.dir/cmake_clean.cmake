file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_dynamic.dir/bench_table2_dynamic.cc.o"
  "CMakeFiles/bench_table2_dynamic.dir/bench_table2_dynamic.cc.o.d"
  "bench_table2_dynamic"
  "bench_table2_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
