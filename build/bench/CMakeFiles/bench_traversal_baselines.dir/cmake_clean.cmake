file(REMOVE_RECURSE
  "CMakeFiles/bench_traversal_baselines.dir/bench_traversal_baselines.cc.o"
  "CMakeFiles/bench_traversal_baselines.dir/bench_traversal_baselines.cc.o.d"
  "bench_traversal_baselines"
  "bench_traversal_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_traversal_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
