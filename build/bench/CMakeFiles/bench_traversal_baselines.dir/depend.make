# Empty dependencies file for bench_traversal_baselines.
# This may be replaced when dependencies are built.
