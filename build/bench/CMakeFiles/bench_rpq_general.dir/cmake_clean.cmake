file(REMOVE_RECURSE
  "CMakeFiles/bench_rpq_general.dir/bench_rpq_general.cc.o"
  "CMakeFiles/bench_rpq_general.dir/bench_rpq_general.cc.o.d"
  "bench_rpq_general"
  "bench_rpq_general.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rpq_general.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
