# Empty compiler generated dependencies file for bench_rpq_general.
# This may be replaced when dependencies are built.
