file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_lcr.dir/bench_table2_lcr.cc.o"
  "CMakeFiles/bench_table2_lcr.dir/bench_table2_lcr.cc.o.d"
  "bench_table2_lcr"
  "bench_table2_lcr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_lcr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
