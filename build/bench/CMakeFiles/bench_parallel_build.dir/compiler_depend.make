# Empty compiler generated dependencies file for bench_parallel_build.
# This may be replaced when dependencies are built.
