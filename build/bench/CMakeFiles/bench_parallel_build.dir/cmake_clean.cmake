file(REMOVE_RECURSE
  "CMakeFiles/bench_parallel_build.dir/bench_parallel_build.cc.o"
  "CMakeFiles/bench_parallel_build.dir/bench_parallel_build.cc.o.d"
  "bench_parallel_build"
  "bench_parallel_build.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parallel_build.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
