file(REMOVE_RECURSE
  "CMakeFiles/social_network_lcr.dir/social_network_lcr.cc.o"
  "CMakeFiles/social_network_lcr.dir/social_network_lcr.cc.o.d"
  "social_network_lcr"
  "social_network_lcr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_network_lcr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
