# Empty compiler generated dependencies file for social_network_lcr.
# This may be replaced when dependencies are built.
