file(REMOVE_RECURSE
  "CMakeFiles/rpq_playground.dir/rpq_playground.cc.o"
  "CMakeFiles/rpq_playground.dir/rpq_playground.cc.o.d"
  "rpq_playground"
  "rpq_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpq_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
