# Empty compiler generated dependencies file for rpq_playground.
# This may be replaced when dependencies are built.
