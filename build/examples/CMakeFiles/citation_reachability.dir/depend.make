# Empty dependencies file for citation_reachability.
# This may be replaced when dependencies are built.
