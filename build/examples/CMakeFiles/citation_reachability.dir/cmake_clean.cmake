file(REMOVE_RECURSE
  "CMakeFiles/citation_reachability.dir/citation_reachability.cc.o"
  "CMakeFiles/citation_reachability.dir/citation_reachability.cc.o.d"
  "citation_reachability"
  "citation_reachability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/citation_reachability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
