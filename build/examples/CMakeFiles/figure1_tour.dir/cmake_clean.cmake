file(REMOVE_RECURSE
  "CMakeFiles/figure1_tour.dir/figure1_tour.cc.o"
  "CMakeFiles/figure1_tour.dir/figure1_tour.cc.o.d"
  "figure1_tour"
  "figure1_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure1_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
