# Empty compiler generated dependencies file for figure1_tour.
# This may be replaced when dependencies are built.
