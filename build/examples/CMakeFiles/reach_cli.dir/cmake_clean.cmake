file(REMOVE_RECURSE
  "CMakeFiles/reach_cli.dir/reach_cli.cc.o"
  "CMakeFiles/reach_cli.dir/reach_cli.cc.o.d"
  "reach_cli"
  "reach_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reach_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
