# Empty dependencies file for reach_cli.
# This may be replaced when dependencies are built.
