
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traversal/online_search.cc" "src/CMakeFiles/reach_traversal.dir/traversal/online_search.cc.o" "gcc" "src/CMakeFiles/reach_traversal.dir/traversal/online_search.cc.o.d"
  "/root/repo/src/traversal/transitive_closure.cc" "src/CMakeFiles/reach_traversal.dir/traversal/transitive_closure.cc.o" "gcc" "src/CMakeFiles/reach_traversal.dir/traversal/transitive_closure.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/reach_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/reach_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
