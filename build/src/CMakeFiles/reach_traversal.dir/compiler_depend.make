# Empty compiler generated dependencies file for reach_traversal.
# This may be replaced when dependencies are built.
