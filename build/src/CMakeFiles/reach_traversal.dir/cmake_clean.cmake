file(REMOVE_RECURSE
  "CMakeFiles/reach_traversal.dir/traversal/online_search.cc.o"
  "CMakeFiles/reach_traversal.dir/traversal/online_search.cc.o.d"
  "CMakeFiles/reach_traversal.dir/traversal/transitive_closure.cc.o"
  "CMakeFiles/reach_traversal.dir/traversal/transitive_closure.cc.o.d"
  "libreach_traversal.a"
  "libreach_traversal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reach_traversal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
