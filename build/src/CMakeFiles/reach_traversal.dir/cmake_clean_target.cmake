file(REMOVE_RECURSE
  "libreach_traversal.a"
)
