# Empty dependencies file for reach_lcr.
# This may be replaced when dependencies are built.
