file(REMOVE_RECURSE
  "libreach_lcr.a"
)
