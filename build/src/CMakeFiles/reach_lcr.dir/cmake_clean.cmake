file(REMOVE_RECURSE
  "CMakeFiles/reach_lcr.dir/lcr/gtc_index.cc.o"
  "CMakeFiles/reach_lcr.dir/lcr/gtc_index.cc.o.d"
  "CMakeFiles/reach_lcr.dir/lcr/label_set.cc.o"
  "CMakeFiles/reach_lcr.dir/lcr/label_set.cc.o.d"
  "CMakeFiles/reach_lcr.dir/lcr/landmark_index.cc.o"
  "CMakeFiles/reach_lcr.dir/lcr/landmark_index.cc.o.d"
  "CMakeFiles/reach_lcr.dir/lcr/lcr_bfs.cc.o"
  "CMakeFiles/reach_lcr.dir/lcr/lcr_bfs.cc.o.d"
  "CMakeFiles/reach_lcr.dir/lcr/lcr_registry.cc.o"
  "CMakeFiles/reach_lcr.dir/lcr/lcr_registry.cc.o.d"
  "CMakeFiles/reach_lcr.dir/lcr/pruned_labeled_two_hop.cc.o"
  "CMakeFiles/reach_lcr.dir/lcr/pruned_labeled_two_hop.cc.o.d"
  "CMakeFiles/reach_lcr.dir/lcr/single_source_gtc.cc.o"
  "CMakeFiles/reach_lcr.dir/lcr/single_source_gtc.cc.o.d"
  "CMakeFiles/reach_lcr.dir/lcr/tree_lcr_index.cc.o"
  "CMakeFiles/reach_lcr.dir/lcr/tree_lcr_index.cc.o.d"
  "libreach_lcr.a"
  "libreach_lcr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reach_lcr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
