
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lcr/gtc_index.cc" "src/CMakeFiles/reach_lcr.dir/lcr/gtc_index.cc.o" "gcc" "src/CMakeFiles/reach_lcr.dir/lcr/gtc_index.cc.o.d"
  "/root/repo/src/lcr/label_set.cc" "src/CMakeFiles/reach_lcr.dir/lcr/label_set.cc.o" "gcc" "src/CMakeFiles/reach_lcr.dir/lcr/label_set.cc.o.d"
  "/root/repo/src/lcr/landmark_index.cc" "src/CMakeFiles/reach_lcr.dir/lcr/landmark_index.cc.o" "gcc" "src/CMakeFiles/reach_lcr.dir/lcr/landmark_index.cc.o.d"
  "/root/repo/src/lcr/lcr_bfs.cc" "src/CMakeFiles/reach_lcr.dir/lcr/lcr_bfs.cc.o" "gcc" "src/CMakeFiles/reach_lcr.dir/lcr/lcr_bfs.cc.o.d"
  "/root/repo/src/lcr/lcr_registry.cc" "src/CMakeFiles/reach_lcr.dir/lcr/lcr_registry.cc.o" "gcc" "src/CMakeFiles/reach_lcr.dir/lcr/lcr_registry.cc.o.d"
  "/root/repo/src/lcr/pruned_labeled_two_hop.cc" "src/CMakeFiles/reach_lcr.dir/lcr/pruned_labeled_two_hop.cc.o" "gcc" "src/CMakeFiles/reach_lcr.dir/lcr/pruned_labeled_two_hop.cc.o.d"
  "/root/repo/src/lcr/single_source_gtc.cc" "src/CMakeFiles/reach_lcr.dir/lcr/single_source_gtc.cc.o" "gcc" "src/CMakeFiles/reach_lcr.dir/lcr/single_source_gtc.cc.o.d"
  "/root/repo/src/lcr/tree_lcr_index.cc" "src/CMakeFiles/reach_lcr.dir/lcr/tree_lcr_index.cc.o" "gcc" "src/CMakeFiles/reach_lcr.dir/lcr/tree_lcr_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/reach_traversal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/reach_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/reach_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
