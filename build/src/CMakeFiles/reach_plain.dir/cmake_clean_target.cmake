file(REMOVE_RECURSE
  "libreach_plain.a"
)
