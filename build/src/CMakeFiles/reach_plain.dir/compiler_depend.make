# Empty compiler generated dependencies file for reach_plain.
# This may be replaced when dependencies are built.
