
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/plain/auto_index.cc" "src/CMakeFiles/reach_plain.dir/plain/auto_index.cc.o" "gcc" "src/CMakeFiles/reach_plain.dir/plain/auto_index.cc.o.d"
  "/root/repo/src/plain/bfl.cc" "src/CMakeFiles/reach_plain.dir/plain/bfl.cc.o" "gcc" "src/CMakeFiles/reach_plain.dir/plain/bfl.cc.o.d"
  "/root/repo/src/plain/chain_cover.cc" "src/CMakeFiles/reach_plain.dir/plain/chain_cover.cc.o" "gcc" "src/CMakeFiles/reach_plain.dir/plain/chain_cover.cc.o.d"
  "/root/repo/src/plain/dagger.cc" "src/CMakeFiles/reach_plain.dir/plain/dagger.cc.o" "gcc" "src/CMakeFiles/reach_plain.dir/plain/dagger.cc.o.d"
  "/root/repo/src/plain/dbl.cc" "src/CMakeFiles/reach_plain.dir/plain/dbl.cc.o" "gcc" "src/CMakeFiles/reach_plain.dir/plain/dbl.cc.o.d"
  "/root/repo/src/plain/dual_labeling.cc" "src/CMakeFiles/reach_plain.dir/plain/dual_labeling.cc.o" "gcc" "src/CMakeFiles/reach_plain.dir/plain/dual_labeling.cc.o.d"
  "/root/repo/src/plain/feline.cc" "src/CMakeFiles/reach_plain.dir/plain/feline.cc.o" "gcc" "src/CMakeFiles/reach_plain.dir/plain/feline.cc.o.d"
  "/root/repo/src/plain/ferrari.cc" "src/CMakeFiles/reach_plain.dir/plain/ferrari.cc.o" "gcc" "src/CMakeFiles/reach_plain.dir/plain/ferrari.cc.o.d"
  "/root/repo/src/plain/grail.cc" "src/CMakeFiles/reach_plain.dir/plain/grail.cc.o" "gcc" "src/CMakeFiles/reach_plain.dir/plain/grail.cc.o.d"
  "/root/repo/src/plain/gripp.cc" "src/CMakeFiles/reach_plain.dir/plain/gripp.cc.o" "gcc" "src/CMakeFiles/reach_plain.dir/plain/gripp.cc.o.d"
  "/root/repo/src/plain/interval_labeling.cc" "src/CMakeFiles/reach_plain.dir/plain/interval_labeling.cc.o" "gcc" "src/CMakeFiles/reach_plain.dir/plain/interval_labeling.cc.o.d"
  "/root/repo/src/plain/ip_label.cc" "src/CMakeFiles/reach_plain.dir/plain/ip_label.cc.o" "gcc" "src/CMakeFiles/reach_plain.dir/plain/ip_label.cc.o.d"
  "/root/repo/src/plain/oreach.cc" "src/CMakeFiles/reach_plain.dir/plain/oreach.cc.o" "gcc" "src/CMakeFiles/reach_plain.dir/plain/oreach.cc.o.d"
  "/root/repo/src/plain/preach.cc" "src/CMakeFiles/reach_plain.dir/plain/preach.cc.o" "gcc" "src/CMakeFiles/reach_plain.dir/plain/preach.cc.o.d"
  "/root/repo/src/plain/pruned_two_hop.cc" "src/CMakeFiles/reach_plain.dir/plain/pruned_two_hop.cc.o" "gcc" "src/CMakeFiles/reach_plain.dir/plain/pruned_two_hop.cc.o.d"
  "/root/repo/src/plain/registry.cc" "src/CMakeFiles/reach_plain.dir/plain/registry.cc.o" "gcc" "src/CMakeFiles/reach_plain.dir/plain/registry.cc.o.d"
  "/root/repo/src/plain/tree_cover.cc" "src/CMakeFiles/reach_plain.dir/plain/tree_cover.cc.o" "gcc" "src/CMakeFiles/reach_plain.dir/plain/tree_cover.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/reach_traversal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/reach_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/reach_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
