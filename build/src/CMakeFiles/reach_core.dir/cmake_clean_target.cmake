file(REMOVE_RECURSE
  "libreach_core.a"
)
