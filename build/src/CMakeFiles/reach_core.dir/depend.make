# Empty dependencies file for reach_core.
# This may be replaced when dependencies are built.
