file(REMOVE_RECURSE
  "CMakeFiles/reach_core.dir/core/query_workload.cc.o"
  "CMakeFiles/reach_core.dir/core/query_workload.cc.o.d"
  "libreach_core.a"
  "libreach_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reach_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
