file(REMOVE_RECURSE
  "libreach_rlc.a"
)
