# Empty dependencies file for reach_rlc.
# This may be replaced when dependencies are built.
