file(REMOVE_RECURSE
  "CMakeFiles/reach_rlc.dir/rlc/kleene_sequence.cc.o"
  "CMakeFiles/reach_rlc.dir/rlc/kleene_sequence.cc.o.d"
  "CMakeFiles/reach_rlc.dir/rlc/rlc_index.cc.o"
  "CMakeFiles/reach_rlc.dir/rlc/rlc_index.cc.o.d"
  "CMakeFiles/reach_rlc.dir/rlc/rlc_product_bfs.cc.o"
  "CMakeFiles/reach_rlc.dir/rlc/rlc_product_bfs.cc.o.d"
  "libreach_rlc.a"
  "libreach_rlc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reach_rlc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
