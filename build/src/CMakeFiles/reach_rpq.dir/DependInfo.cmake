
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rpq/dfa.cc" "src/CMakeFiles/reach_rpq.dir/rpq/dfa.cc.o" "gcc" "src/CMakeFiles/reach_rpq.dir/rpq/dfa.cc.o.d"
  "/root/repo/src/rpq/nfa.cc" "src/CMakeFiles/reach_rpq.dir/rpq/nfa.cc.o" "gcc" "src/CMakeFiles/reach_rpq.dir/rpq/nfa.cc.o.d"
  "/root/repo/src/rpq/regex_parser.cc" "src/CMakeFiles/reach_rpq.dir/rpq/regex_parser.cc.o" "gcc" "src/CMakeFiles/reach_rpq.dir/rpq/regex_parser.cc.o.d"
  "/root/repo/src/rpq/rpq_evaluator.cc" "src/CMakeFiles/reach_rpq.dir/rpq/rpq_evaluator.cc.o" "gcc" "src/CMakeFiles/reach_rpq.dir/rpq/rpq_evaluator.cc.o.d"
  "/root/repo/src/rpq/rpq_template_index.cc" "src/CMakeFiles/reach_rpq.dir/rpq/rpq_template_index.cc.o" "gcc" "src/CMakeFiles/reach_rpq.dir/rpq/rpq_template_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/reach_lcr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/reach_plain.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/reach_traversal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/reach_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/reach_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
