file(REMOVE_RECURSE
  "CMakeFiles/reach_rpq.dir/rpq/dfa.cc.o"
  "CMakeFiles/reach_rpq.dir/rpq/dfa.cc.o.d"
  "CMakeFiles/reach_rpq.dir/rpq/nfa.cc.o"
  "CMakeFiles/reach_rpq.dir/rpq/nfa.cc.o.d"
  "CMakeFiles/reach_rpq.dir/rpq/regex_parser.cc.o"
  "CMakeFiles/reach_rpq.dir/rpq/regex_parser.cc.o.d"
  "CMakeFiles/reach_rpq.dir/rpq/rpq_evaluator.cc.o"
  "CMakeFiles/reach_rpq.dir/rpq/rpq_evaluator.cc.o.d"
  "CMakeFiles/reach_rpq.dir/rpq/rpq_template_index.cc.o"
  "CMakeFiles/reach_rpq.dir/rpq/rpq_template_index.cc.o.d"
  "libreach_rpq.a"
  "libreach_rpq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reach_rpq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
