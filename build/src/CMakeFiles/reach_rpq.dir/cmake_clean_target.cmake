file(REMOVE_RECURSE
  "libreach_rpq.a"
)
