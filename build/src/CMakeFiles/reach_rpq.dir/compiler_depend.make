# Empty compiler generated dependencies file for reach_rpq.
# This may be replaced when dependencies are built.
