file(REMOVE_RECURSE
  "CMakeFiles/reach_reduction.dir/reduction/reducing_index.cc.o"
  "CMakeFiles/reach_reduction.dir/reduction/reducing_index.cc.o.d"
  "CMakeFiles/reach_reduction.dir/reduction/reduction.cc.o"
  "CMakeFiles/reach_reduction.dir/reduction/reduction.cc.o.d"
  "libreach_reduction.a"
  "libreach_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reach_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
