# Empty dependencies file for reach_reduction.
# This may be replaced when dependencies are built.
