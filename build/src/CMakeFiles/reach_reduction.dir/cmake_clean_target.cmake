file(REMOVE_RECURSE
  "libreach_reduction.a"
)
