file(REMOVE_RECURSE
  "CMakeFiles/reach_graph.dir/graph/condensation.cc.o"
  "CMakeFiles/reach_graph.dir/graph/condensation.cc.o.d"
  "CMakeFiles/reach_graph.dir/graph/digraph.cc.o"
  "CMakeFiles/reach_graph.dir/graph/digraph.cc.o.d"
  "CMakeFiles/reach_graph.dir/graph/figure1.cc.o"
  "CMakeFiles/reach_graph.dir/graph/figure1.cc.o.d"
  "CMakeFiles/reach_graph.dir/graph/generators.cc.o"
  "CMakeFiles/reach_graph.dir/graph/generators.cc.o.d"
  "CMakeFiles/reach_graph.dir/graph/graph_io.cc.o"
  "CMakeFiles/reach_graph.dir/graph/graph_io.cc.o.d"
  "CMakeFiles/reach_graph.dir/graph/graph_stats.cc.o"
  "CMakeFiles/reach_graph.dir/graph/graph_stats.cc.o.d"
  "CMakeFiles/reach_graph.dir/graph/labeled_digraph.cc.o"
  "CMakeFiles/reach_graph.dir/graph/labeled_digraph.cc.o.d"
  "CMakeFiles/reach_graph.dir/graph/scc.cc.o"
  "CMakeFiles/reach_graph.dir/graph/scc.cc.o.d"
  "CMakeFiles/reach_graph.dir/graph/topological.cc.o"
  "CMakeFiles/reach_graph.dir/graph/topological.cc.o.d"
  "libreach_graph.a"
  "libreach_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reach_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
