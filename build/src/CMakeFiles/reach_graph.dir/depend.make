# Empty dependencies file for reach_graph.
# This may be replaced when dependencies are built.
