file(REMOVE_RECURSE
  "libreach_graph.a"
)
