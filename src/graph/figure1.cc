#include "graph/figure1.h"

#include <vector>

namespace reach {
namespace figure1 {

LabeledDigraph LabeledGraph() {
  const std::vector<LabeledEdge> edges = {
      {kA, kL, kFollows},   // A -follows-> L      (SPLS(A,L) = {follows})
      {kA, kD, kFollows},   // A -follows-> D      (start of (A, D, H, G))
      {kL, kC, kWorksFor},  // L -worksFor-> C     (p1, p3)
      {kL, kD, kWorksFor},  // L -worksFor-> D     (p4, §4.2 path)
      {kL, kK, kFollows},   // L -follows-> K      (p2)
      {kC, kM, kWorksFor},  // C -worksFor-> M     (p1)
      {kC, kH, kWorksFor},  // C -worksFor-> H     (p3)
      {kK, kM, kWorksFor},  // K -worksFor-> M     (p2)
      {kD, kH, kFriendOf},  // D -friendOf-> H     (p4, §4.2 path)
      {kH, kG, kWorksFor},  // H -worksFor-> G     (only edge into G)
      {kG, kB, kFriendOf},  // G -friendOf-> B     (§4.2 path)
      {kB, kM, kWorksFor},  // B -worksFor-> M
      {kM, kB, kFriendOf},  // M -friendOf-> B     (B and M form an SCC)
  };
  LabeledDigraph g = LabeledDigraph::FromEdges(kNumVertices, kNumLabels,
                                               edges);
  g.set_label_names({"friendOf", "follows", "worksFor"});
  return g;
}

Digraph PlainGraph() { return LabeledGraph().ProjectPlain(); }

}  // namespace figure1
}  // namespace reach
