#include "graph/topological.h"

#include <algorithm>
#include <functional>
#include <queue>

namespace reach {

namespace {

// Kahn's algorithm with an ordered frontier. `Compare` orders the ready
// set; std::greater yields smallest-id-first, std::less largest-id-first.
template <typename Compare>
std::optional<std::vector<VertexId>> KahnOrder(const Digraph& dag) {
  const size_t n = dag.NumVertices();
  std::vector<size_t> in_degree(n);
  std::priority_queue<VertexId, std::vector<VertexId>, Compare> ready;
  for (VertexId v = 0; v < n; ++v) {
    in_degree[v] = dag.InDegree(v);
    if (in_degree[v] == 0) ready.push(v);
  }
  std::vector<VertexId> order;
  order.reserve(n);
  while (!ready.empty()) {
    const VertexId v = ready.top();
    ready.pop();
    order.push_back(v);
    for (VertexId w : dag.OutNeighbors(v)) {
      if (--in_degree[w] == 0) ready.push(w);
    }
  }
  if (order.size() != n) return std::nullopt;  // cycle
  return order;
}

}  // namespace

std::optional<std::vector<VertexId>> TopologicalOrder(const Digraph& dag) {
  return KahnOrder<std::greater<VertexId>>(dag);
}

std::optional<std::vector<VertexId>> TopologicalOrderReverseTies(
    const Digraph& dag) {
  return KahnOrder<std::less<VertexId>>(dag);
}

std::vector<VertexId> RankOf(const std::vector<VertexId>& order) {
  std::vector<VertexId> rank(order.size());
  for (VertexId i = 0; i < order.size(); ++i) rank[order[i]] = i;
  return rank;
}

bool IsDag(const Digraph& graph) {
  return TopologicalOrder(graph).has_value();
}

std::vector<VertexId> ForwardLevels(const Digraph& dag) {
  auto order = TopologicalOrder(dag);
  std::vector<VertexId> level(dag.NumVertices(), 0);
  for (VertexId v : *order) {
    for (VertexId w : dag.OutNeighbors(v)) {
      level[w] = std::max(level[w], level[v] + 1);
    }
  }
  return level;
}

std::vector<VertexId> BackwardLevels(const Digraph& dag) {
  auto order = TopologicalOrder(dag);
  std::vector<VertexId> level(dag.NumVertices(), 0);
  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    for (VertexId w : dag.OutNeighbors(*it)) {
      level[*it] = std::max(level[*it], level[w] + 1);
    }
  }
  return level;
}

}  // namespace reach
