#ifndef REACH_GRAPH_SCC_H_
#define REACH_GRAPH_SCC_H_

#include <vector>

#include "graph/digraph.h"
#include "graph/types.h"

namespace reach {

/// The strongly-connected-component decomposition of a digraph.
struct SccDecomposition {
  /// component_of[v] = dense id of the SCC containing v,
  /// in 0 .. num_components-1.
  std::vector<VertexId> component_of;
  /// Number of SCCs.
  VertexId num_components = 0;

  /// True iff `u` and `v` are mutually reachable (same SCC) — the first
  /// check of the cyclic-graph query procedure of paper §3.1.
  bool SameComponent(VertexId u, VertexId v) const {
    return component_of[u] == component_of[v];
  }
};

/// Computes SCCs with Tarjan's algorithm [42] (iterative; safe on deep
/// graphs). Component ids are assigned in *reverse topological order of the
/// condensation*: if SCC A has an edge into SCC B, then id(A) > id(B).
/// Runs in O(V + E).
SccDecomposition ComputeScc(const Digraph& graph);

}  // namespace reach

#endif  // REACH_GRAPH_SCC_H_
