#include "graph/generators.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <set>
#include <utility>

#include "graph/rng.h"

namespace reach {

namespace {

// Samples `num_edges` distinct (source, target) pairs accepted by `accept`,
// uniformly with rejection. Callers must ensure enough acceptable pairs
// exist; we cap attempts to avoid pathological loops.
template <typename Accept>
std::vector<Edge> SampleEdges(VertexId n, size_t num_edges, Xoshiro256ss& rng,
                              Accept accept) {
  std::set<std::pair<VertexId, VertexId>> seen;
  std::vector<Edge> edges;
  edges.reserve(num_edges);
  size_t attempts = 0;
  const size_t max_attempts = 64 * num_edges + 1024;
  while (edges.size() < num_edges && attempts < max_attempts) {
    ++attempts;
    const VertexId u = static_cast<VertexId>(rng.NextBounded(n));
    const VertexId v = static_cast<VertexId>(rng.NextBounded(n));
    if (u == v || !accept(u, v)) continue;
    if (!seen.insert({u, v}).second) continue;
    edges.push_back({u, v});
  }
  return edges;
}

}  // namespace

Digraph RandomDigraph(VertexId num_vertices, size_t num_edges,
                      uint64_t seed) {
  assert(num_vertices >= 2 || num_edges == 0);
  Xoshiro256ss rng(seed);
  auto edges = SampleEdges(num_vertices, num_edges, rng,
                           [](VertexId, VertexId) { return true; });
  return Digraph::FromEdges(num_vertices, std::move(edges));
}

Digraph RandomDag(VertexId num_vertices, size_t num_edges, uint64_t seed) {
  assert(num_vertices >= 2 || num_edges == 0);
  Xoshiro256ss rng(seed);
  // Random permutation: rank[v] = topological position of v.
  std::vector<VertexId> rank(num_vertices);
  for (VertexId v = 0; v < num_vertices; ++v) rank[v] = v;
  for (VertexId i = num_vertices; i > 1; --i) {
    std::swap(rank[i - 1], rank[rng.NextBounded(i)]);
  }
  auto edges =
      SampleEdges(num_vertices, num_edges, rng,
                  [&](VertexId u, VertexId v) { return rank[u] < rank[v]; });
  return Digraph::FromEdges(num_vertices, std::move(edges));
}

Digraph ScaleFreeDag(VertexId num_vertices, size_t out_degree,
                     uint64_t seed) {
  Xoshiro256ss rng(seed);
  std::vector<Edge> edges;
  // target_pool holds one entry per (degree + 1) unit, so sampling from it
  // is preferential attachment.
  std::vector<VertexId> target_pool;
  for (VertexId v = 0; v < num_vertices; ++v) {
    std::set<VertexId> parents;
    const size_t want = std::min<size_t>(out_degree, v);
    size_t attempts = 0;
    while (parents.size() < want && attempts < 32 * out_degree + 64) {
      ++attempts;
      VertexId p;
      if (!target_pool.empty() && rng.NextBounded(2) == 0) {
        p = target_pool[rng.NextBounded(target_pool.size())];
      } else {
        p = static_cast<VertexId>(rng.NextBounded(v));
      }
      parents.insert(p);
    }
    for (VertexId p : parents) {
      edges.push_back({v, p});  // younger cites older
      target_pool.push_back(p);
    }
    target_pool.push_back(v);
  }
  return Digraph::FromEdges(num_vertices, std::move(edges));
}

Digraph RandomTree(VertexId num_vertices, uint64_t seed) {
  Xoshiro256ss rng(seed);
  std::vector<Edge> edges;
  edges.reserve(num_vertices > 0 ? num_vertices - 1 : 0);
  for (VertexId v = 1; v < num_vertices; ++v) {
    const VertexId parent = static_cast<VertexId>(rng.NextBounded(v));
    edges.push_back({parent, v});
  }
  return Digraph::FromEdges(num_vertices, std::move(edges));
}

Digraph LayeredDag(VertexId layers, VertexId width, size_t out_degree,
                   uint64_t seed) {
  Xoshiro256ss rng(seed);
  const VertexId n = layers * width;
  std::vector<Edge> edges;
  for (VertexId layer = 0; layer + 1 < layers; ++layer) {
    for (VertexId i = 0; i < width; ++i) {
      const VertexId v = layer * width + i;
      std::set<VertexId> targets;
      const size_t want = std::min<size_t>(out_degree, width);
      while (targets.size() < want) {
        targets.insert((layer + 1) * width +
                       static_cast<VertexId>(rng.NextBounded(width)));
      }
      for (VertexId t : targets) edges.push_back({v, t});
    }
  }
  return Digraph::FromEdges(n, std::move(edges));
}

Digraph Chain(VertexId num_vertices) {
  std::vector<Edge> edges;
  for (VertexId v = 0; v + 1 < num_vertices; ++v) edges.push_back({v, v + 1});
  return Digraph::FromEdges(num_vertices, std::move(edges));
}

Digraph ChainWithShortcuts(VertexId num_vertices, size_t num_shortcuts,
                           uint64_t seed) {
  Xoshiro256ss rng(seed);
  std::vector<Edge> edges;
  edges.reserve((num_vertices > 0 ? num_vertices - 1 : 0) + num_shortcuts);
  for (VertexId v = 0; v + 1 < num_vertices; ++v) edges.push_back({v, v + 1});
  std::set<std::pair<VertexId, VertexId>> seen;
  size_t attempts = 0;
  const size_t max_attempts = 64 * num_shortcuts + 1024;
  while (seen.size() < num_shortcuts && attempts < max_attempts &&
         num_vertices > 2) {
    ++attempts;
    VertexId u = static_cast<VertexId>(rng.NextBounded(num_vertices));
    VertexId v = static_cast<VertexId>(rng.NextBounded(num_vertices));
    if (u > v) std::swap(u, v);
    if (v - u < 2) continue;  // chain edges and self-loops are not shortcuts
    if (!seen.insert({u, v}).second) continue;
    edges.push_back({u, v});
  }
  return Digraph::FromEdges(num_vertices, std::move(edges));
}

Digraph DenseBipartiteDag(VertexId left, VertexId right, double density,
                          uint64_t seed) {
  Xoshiro256ss rng(seed);
  std::vector<Edge> edges;
  for (VertexId u = 0; u < left; ++u) {
    for (VertexId v = 0; v < right; ++v) {
      if (rng.NextDouble() < density) edges.push_back({u, left + v});
    }
  }
  return Digraph::FromEdges(left + right, std::move(edges));
}

Digraph Cycle(VertexId num_vertices) {
  std::vector<Edge> edges;
  for (VertexId v = 0; v + 1 < num_vertices; ++v) edges.push_back({v, v + 1});
  if (num_vertices > 1) edges.push_back({num_vertices - 1, 0});
  return Digraph::FromEdges(num_vertices, std::move(edges));
}

LabeledDigraph WithUniformLabels(const Digraph& graph, Label num_labels,
                                 uint64_t seed) {
  Xoshiro256ss rng(seed);
  std::vector<LabeledEdge> edges;
  edges.reserve(graph.NumEdges());
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    for (VertexId w : graph.OutNeighbors(v)) {
      edges.push_back({v, w, static_cast<Label>(rng.NextBounded(num_labels))});
    }
  }
  return LabeledDigraph::FromEdges(
      static_cast<VertexId>(graph.NumVertices()), num_labels,
      std::move(edges));
}

LabeledDigraph WithZipfLabels(const Digraph& graph, Label num_labels,
                              double skew, uint64_t seed) {
  Xoshiro256ss rng(seed);
  // Cumulative Zipf weights: weight(l) = 1 / (l+1)^skew.
  std::vector<double> cdf(num_labels);
  double total = 0;
  for (Label l = 0; l < num_labels; ++l) {
    total += 1.0 / std::pow(static_cast<double>(l + 1), skew);
    cdf[l] = total;
  }
  auto draw = [&]() -> Label {
    const double x = rng.NextDouble() * total;
    return static_cast<Label>(
        std::lower_bound(cdf.begin(), cdf.end(), x) - cdf.begin());
  };
  std::vector<LabeledEdge> edges;
  edges.reserve(graph.NumEdges());
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    for (VertexId w : graph.OutNeighbors(v)) {
      edges.push_back({v, w, std::min<Label>(draw(), num_labels - 1)});
    }
  }
  return LabeledDigraph::FromEdges(
      static_cast<VertexId>(graph.NumVertices()), num_labels,
      std::move(edges));
}

LabeledDigraph RandomLabeledDigraph(VertexId num_vertices, size_t num_edges,
                                    Label num_labels, uint64_t seed) {
  return WithUniformLabels(RandomDigraph(num_vertices, num_edges, seed),
                           num_labels, Mix64(seed + 1));
}

}  // namespace reach
