#ifndef REACH_GRAPH_DIGRAPH_H_
#define REACH_GRAPH_DIGRAPH_H_

#include <cstddef>
#include <span>
#include <vector>

#include "graph/types.h"

namespace reach {

/// An immutable directed graph in compressed-sparse-row (CSR) form, with
/// both forward (out-neighbor) and backward (in-neighbor) adjacency.
///
/// This is the plain graph `G = (V, E)` of paper §2.1. Vertices are the
/// dense ids `0 .. NumVertices()-1`. Parallel edges are deduplicated and
/// self-loops are kept (they are irrelevant for reachability but harmless).
///
/// The structure is immutable by design: every index in the library builds
/// from a snapshot. Dynamic indexes (TOL-style insertions, DBL) keep their
/// own delta adjacency on top of the snapshot.
class Digraph {
 public:
  /// Builds an empty graph.
  Digraph() = default;

  /// Builds a graph with `num_vertices` vertices and the given edges.
  /// Edges referencing vertices `>= num_vertices` are invalid; callers must
  /// not pass them (checked in debug builds). Duplicate edges are removed.
  static Digraph FromEdges(VertexId num_vertices, std::vector<Edge> edges);

  /// Number of vertices.
  size_t NumVertices() const { return num_vertices_; }

  /// Number of (deduplicated) edges.
  size_t NumEdges() const { return out_targets_.size(); }

  /// Out-neighbors of `v`, sorted ascending.
  std::span<const VertexId> OutNeighbors(VertexId v) const {
    return {out_targets_.data() + out_offsets_[v],
            out_targets_.data() + out_offsets_[v + 1]};
  }

  /// In-neighbors of `v`, sorted ascending.
  std::span<const VertexId> InNeighbors(VertexId v) const {
    return {in_sources_.data() + in_offsets_[v],
            in_sources_.data() + in_offsets_[v + 1]};
  }

  /// Out-degree of `v`.
  size_t OutDegree(VertexId v) const {
    return out_offsets_[v + 1] - out_offsets_[v];
  }

  /// In-degree of `v`.
  size_t InDegree(VertexId v) const {
    return in_offsets_[v + 1] - in_offsets_[v];
  }

  /// Total degree (in + out) of `v`; the vertex-ordering heuristic used by
  /// the 2-hop indexes of §3.2 and §4.1.3.
  size_t Degree(VertexId v) const { return OutDegree(v) + InDegree(v); }

  /// True iff the edge `s -> t` exists. O(log OutDegree(s)).
  bool HasEdge(VertexId s, VertexId t) const;

  /// Returns the graph with every edge reversed.
  Digraph Reverse() const;

  /// Returns all edges, sorted by (source, target).
  std::vector<Edge> Edges() const;

  /// Heap footprint in bytes (CSR arrays). Counts vector *capacity*, not
  /// size: `FromEdges` can leave the offset arrays (and, after dedup, the
  /// adjacency arrays) holding more memory than their element counts, and
  /// reporting size alone under-counted that slack.
  size_t MemoryBytes() const {
    return (out_offsets_.capacity() + in_offsets_.capacity()) *
               sizeof(size_t) +
           (out_targets_.capacity() + in_sources_.capacity()) *
               sizeof(VertexId);
  }

 private:
  size_t num_vertices_ = 0;
  std::vector<size_t> out_offsets_ = {0};  // size num_vertices_ + 1
  std::vector<VertexId> out_targets_;
  std::vector<size_t> in_offsets_ = {0};  // size num_vertices_ + 1
  std::vector<VertexId> in_sources_;
};

}  // namespace reach

#endif  // REACH_GRAPH_DIGRAPH_H_
