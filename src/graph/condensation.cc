#include "graph/condensation.h"

#include <utility>
#include <vector>

namespace reach {

Condensation Condense(const Digraph& graph) {
  Condensation result;
  result.scc = ComputeScc(graph);

  std::vector<Edge> dag_edges;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    const VertexId cv = result.scc.component_of[v];
    for (VertexId w : graph.OutNeighbors(v)) {
      const VertexId cw = result.scc.component_of[w];
      if (cv != cw) dag_edges.push_back({cv, cw});
    }
  }
  result.dag =
      Digraph::FromEdges(result.scc.num_components, std::move(dag_edges));
  return result;
}

}  // namespace reach
