#ifndef REACH_GRAPH_TOPOLOGICAL_H_
#define REACH_GRAPH_TOPOLOGICAL_H_

#include <optional>
#include <vector>

#include "graph/digraph.h"
#include "graph/types.h"

namespace reach {

/// Returns a topological order of `dag` (vertices listed sources-first), or
/// nullopt if the graph has a directed cycle. Kahn's algorithm, O(V + E).
/// Deterministic: among ready vertices, smaller ids come first.
std::optional<std::vector<VertexId>> TopologicalOrder(const Digraph& dag);

/// Like `TopologicalOrder` but breaks ties by *largest* id first. Used by
/// `Feline` to obtain a second, maximally different dominance coordinate.
std::optional<std::vector<VertexId>> TopologicalOrderReverseTies(
    const Digraph& dag);

/// Returns rank[v] = position of v in `order` (the inverse permutation).
std::vector<VertexId> RankOf(const std::vector<VertexId>& order);

/// True iff `graph` is a DAG.
bool IsDag(const Digraph& graph);

/// Forward topological levels: level[v] = length of the longest path from
/// any source to v (sources have level 0). Requires a DAG. Satisfies: if v
/// reaches w and v != w then level[v] < level[w] — the level-based pruning
/// used by PReaCH-style indexes.
std::vector<VertexId> ForwardLevels(const Digraph& dag);

/// Backward topological levels: level[v] = longest path from v to any sink
/// (sinks have level 0). If v reaches w, v != w, then blevel[v] > blevel[w].
std::vector<VertexId> BackwardLevels(const Digraph& dag);

}  // namespace reach

#endif  // REACH_GRAPH_TOPOLOGICAL_H_
