#ifndef REACH_GRAPH_LABELED_DIGRAPH_H_
#define REACH_GRAPH_LABELED_DIGRAPH_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "graph/digraph.h"
#include "graph/types.h"

namespace reach {

/// An immutable edge-labeled directed graph `G = (V, E, L)` (paper §2.2)
/// in CSR form with forward and backward adjacency.
///
/// Unlike `Digraph`, parallel edges with *different* labels are kept: the
/// pair (target, label) is the deduplication key. Labels are dense ids
/// `0 .. NumLabels()-1`; callers may attach human-readable names.
class LabeledDigraph {
 public:
  /// A (neighbor, label) adjacency entry.
  struct Arc {
    VertexId vertex;
    Label label;

    friend bool operator==(const Arc&, const Arc&) = default;
  };

  LabeledDigraph() = default;

  /// Builds a labeled graph. Every edge's label must be `< num_labels`,
  /// `num_labels <= kMaxLabels`, and endpoints `< num_vertices`.
  /// Duplicate (source, target, label) triples are removed.
  static LabeledDigraph FromEdges(VertexId num_vertices, Label num_labels,
                                  std::vector<LabeledEdge> edges);

  /// Number of vertices.
  size_t NumVertices() const { return num_vertices_; }

  /// Number of (deduplicated) labeled edges.
  size_t NumEdges() const { return out_arcs_.size(); }

  /// Number of distinct labels the graph was declared with.
  Label NumLabels() const { return num_labels_; }

  /// Outgoing arcs of `v`, sorted by (target, label).
  std::span<const Arc> OutArcs(VertexId v) const {
    return {out_arcs_.data() + out_offsets_[v],
            out_arcs_.data() + out_offsets_[v + 1]};
  }

  /// Incoming arcs of `v`: `Arc{u, l}` means edge `u -l-> v`. Sorted by
  /// (source, label).
  std::span<const Arc> InArcs(VertexId v) const {
    return {in_arcs_.data() + in_offsets_[v],
            in_arcs_.data() + in_offsets_[v + 1]};
  }

  /// Out-degree (number of outgoing labeled arcs) of `v`.
  size_t OutDegree(VertexId v) const {
    return out_offsets_[v + 1] - out_offsets_[v];
  }

  /// In-degree (number of incoming labeled arcs) of `v`.
  size_t InDegree(VertexId v) const {
    return in_offsets_[v + 1] - in_offsets_[v];
  }

  /// Total degree of `v`.
  size_t Degree(VertexId v) const { return OutDegree(v) + InDegree(v); }

  /// All labeled edges, sorted by (source, target, label).
  std::vector<LabeledEdge> Edges() const;

  /// The underlying plain graph: same vertices, an edge `s -> t` iff some
  /// labeled edge `s -l-> t` exists. Used to answer plain reachability on
  /// labeled graphs and to drive SCC condensation.
  Digraph ProjectPlain() const;

  /// Optional human-readable label names (e.g., "friendOf"). Either empty
  /// or of size NumLabels().
  const std::vector<std::string>& label_names() const { return label_names_; }

  /// Attaches label names; `names.size()` must equal NumLabels().
  void set_label_names(std::vector<std::string> names);

  /// Approximate heap footprint in bytes.
  size_t MemoryBytes() const {
    return (out_offsets_.size() + in_offsets_.size()) * sizeof(size_t) +
           (out_arcs_.size() + in_arcs_.size()) * sizeof(Arc);
  }

 private:
  size_t num_vertices_ = 0;
  Label num_labels_ = 0;
  std::vector<size_t> out_offsets_ = {0};
  std::vector<Arc> out_arcs_;
  std::vector<size_t> in_offsets_ = {0};
  std::vector<Arc> in_arcs_;
  std::vector<std::string> label_names_;
};

}  // namespace reach

#endif  // REACH_GRAPH_LABELED_DIGRAPH_H_
