#include "graph/graph_stats.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "graph/condensation.h"
#include "graph/rng.h"
#include "graph/topological.h"

namespace reach {

GraphStats ComputeGraphStats(const Digraph& graph, size_t samples,
                             uint64_t seed) {
  GraphStats stats;
  const size_t n = graph.NumVertices();
  stats.num_vertices = n;
  stats.num_edges = graph.NumEdges();
  stats.avg_degree = n == 0 ? 0 : static_cast<double>(stats.num_edges) / n;
  for (VertexId v = 0; v < n; ++v) {
    stats.max_out_degree = std::max(stats.max_out_degree, graph.OutDegree(v));
    stats.max_in_degree = std::max(stats.max_in_degree, graph.InDegree(v));
    stats.num_sources += graph.InDegree(v) == 0;
    stats.num_sinks += graph.OutDegree(v) == 0;
  }

  const Condensation cond = Condense(graph);
  stats.num_sccs = cond.scc.num_components;
  std::vector<size_t> scc_size(stats.num_sccs, 0);
  for (VertexId v = 0; v < n; ++v) ++scc_size[cond.DagVertex(v)];
  for (size_t size : scc_size) {
    stats.largest_scc = std::max(stats.largest_scc, size);
  }
  stats.is_dag = stats.largest_scc <= 1;
  if (cond.dag.NumVertices() > 0) {
    const auto levels = ForwardLevels(cond.dag);
    stats.condensation_depth =
        1 + *std::max_element(levels.begin(), levels.end());
  }

  // Sampled forward-reachability density.
  if (n > 0 && samples > 0) {
    Xoshiro256ss rng(seed);
    std::vector<bool> seen(n);
    std::vector<VertexId> queue;
    size_t total_reached = 0;
    for (size_t i = 0; i < samples; ++i) {
      std::fill(seen.begin(), seen.end(), false);
      queue.clear();
      const VertexId start = static_cast<VertexId>(rng.NextBounded(n));
      seen[start] = true;
      queue.push_back(start);
      for (size_t head = 0; head < queue.size(); ++head) {
        for (VertexId w : graph.OutNeighbors(queue[head])) {
          if (!seen[w]) {
            seen[w] = true;
            queue.push_back(w);
          }
        }
      }
      total_reached += queue.size();
    }
    stats.reachability_density =
        static_cast<double>(total_reached) / (samples * n);
  }
  return stats;
}

std::string GraphStatsToString(const GraphStats& stats) {
  char buffer[512];
  std::snprintf(
      buffer, sizeof(buffer),
      "vertices: %zu, edges: %zu (avg out-degree %.2f)\n"
      "max degree: out %zu / in %zu; sources %zu, sinks %zu\n"
      "SCCs: %zu (largest %zu, %s), condensation depth %zu\n"
      "sampled reachability density: %.3f",
      stats.num_vertices, stats.num_edges, stats.avg_degree,
      stats.max_out_degree, stats.max_in_degree, stats.num_sources,
      stats.num_sinks, stats.num_sccs, stats.largest_scc,
      stats.is_dag ? "DAG" : "cyclic", stats.condensation_depth,
      stats.reachability_density);
  return buffer;
}

}  // namespace reach
