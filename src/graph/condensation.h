#ifndef REACH_GRAPH_CONDENSATION_H_
#define REACH_GRAPH_CONDENSATION_H_

#include <vector>

#include "graph/digraph.h"
#include "graph/scc.h"
#include "graph/types.h"

namespace reach {

/// The DAG obtained by coarsening every SCC of a general digraph into a
/// representative vertex (paper §3.1, "From cyclic graphs to DAGs").
///
/// Most plain reachability indexes assume a DAG as input; this structure
/// plus `SccCondensingIndex` is the generalization glue: `Qr(s, t)` on the
/// original graph is `SameComponent(s, t) || Qr_dag(comp(s), comp(t))`.
struct Condensation {
  /// The condensed DAG. Vertex ids of `dag` are SCC ids from `scc`.
  /// Because Tarjan assigns SCC ids in reverse topological order, iterating
  /// dag vertices in *decreasing* id order is a topological order.
  Digraph dag;
  /// The SCC decomposition of the original graph.
  SccDecomposition scc;

  /// Maps an original vertex to its DAG vertex.
  VertexId DagVertex(VertexId original) const {
    return scc.component_of[original];
  }
};

/// Condenses `graph` into its SCC DAG in O(V + E). Self-loops of the DAG
/// (edges inside one SCC) are dropped; multi-edges between SCCs are
/// deduplicated.
Condensation Condense(const Digraph& graph);

}  // namespace reach

#endif  // REACH_GRAPH_CONDENSATION_H_
