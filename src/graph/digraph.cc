#include "graph/digraph.h"

#include <algorithm>
#include <cassert>

namespace reach {

Digraph Digraph::FromEdges(VertexId num_vertices, std::vector<Edge> edges) {
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  Digraph g;
  g.num_vertices_ = num_vertices;
  g.out_offsets_.assign(num_vertices + 1, 0);
  g.in_offsets_.assign(num_vertices + 1, 0);
  g.out_targets_.resize(edges.size());
  g.in_sources_.resize(edges.size());

  for (const Edge& e : edges) {
    assert(e.source < num_vertices && e.target < num_vertices);
    ++g.out_offsets_[e.source + 1];
    ++g.in_offsets_[e.target + 1];
  }
  for (size_t v = 0; v < num_vertices; ++v) {
    g.out_offsets_[v + 1] += g.out_offsets_[v];
    g.in_offsets_[v + 1] += g.in_offsets_[v];
  }

  // Edges are sorted by (source, target), so filling out-CSR in order keeps
  // each out-neighbor list sorted.
  std::vector<size_t> out_cursor(g.out_offsets_.begin(),
                                 g.out_offsets_.end() - 1);
  std::vector<size_t> in_cursor(g.in_offsets_.begin(),
                                g.in_offsets_.end() - 1);
  for (const Edge& e : edges) {
    g.out_targets_[out_cursor[e.source]++] = e.target;
    g.in_sources_[in_cursor[e.target]++] = e.source;
  }
  // In-neighbor lists were filled in source-major order; each list is
  // already sorted by source because edges were globally sorted.
  return g;
}

bool Digraph::HasEdge(VertexId s, VertexId t) const {
  auto nbrs = OutNeighbors(s);
  return std::binary_search(nbrs.begin(), nbrs.end(), t);
}

Digraph Digraph::Reverse() const {
  std::vector<Edge> rev;
  rev.reserve(NumEdges());
  for (VertexId v = 0; v < num_vertices_; ++v) {
    for (VertexId w : OutNeighbors(v)) rev.push_back({w, v});
  }
  return FromEdges(static_cast<VertexId>(num_vertices_), std::move(rev));
}

std::vector<Edge> Digraph::Edges() const {
  std::vector<Edge> edges;
  edges.reserve(NumEdges());
  for (VertexId v = 0; v < num_vertices_; ++v) {
    for (VertexId w : OutNeighbors(v)) edges.push_back({v, w});
  }
  return edges;
}

}  // namespace reach
