#include "graph/graph_io.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <vector>

namespace reach {

namespace {

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

bool IsCommentOrBlank(const std::string& line) {
  for (char c : line) {
    if (c == ' ' || c == '\t' || c == '\r') continue;
    return c == '#' || c == '%';
  }
  return true;  // blank
}

}  // namespace

std::optional<Digraph> ReadEdgeList(std::istream& in, std::string* error) {
  std::vector<Edge> edges;
  VertexId max_id = 0;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (IsCommentOrBlank(line)) continue;
    std::istringstream fields(line);
    long long s = -1, t = -1;
    if (!(fields >> s >> t) || s < 0 || t < 0) {
      SetError(error, "malformed edge at line " + std::to_string(line_no));
      return std::nullopt;
    }
    edges.push_back(
        {static_cast<VertexId>(s), static_cast<VertexId>(t)});
    max_id = std::max({max_id, edges.back().source, edges.back().target});
  }
  const VertexId n = edges.empty() ? 0 : max_id + 1;
  return Digraph::FromEdges(n, std::move(edges));
}

std::optional<Digraph> ReadEdgeListFile(const std::string& path,
                                        std::string* error) {
  std::ifstream in(path);
  if (!in) {
    SetError(error, "cannot open " + path);
    return std::nullopt;
  }
  return ReadEdgeList(in, error);
}

void WriteEdgeList(const Digraph& graph, std::ostream& out) {
  out << "# reach plain edge list: " << graph.NumVertices() << " vertices, "
      << graph.NumEdges() << " edges\n";
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    for (VertexId w : graph.OutNeighbors(v)) out << v << ' ' << w << '\n';
  }
}

std::optional<LabeledDigraph> ReadLabeledEdgeList(std::istream& in,
                                                  std::string* error) {
  std::vector<LabeledEdge> edges;
  VertexId max_id = 0;
  Label max_label = 0;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (IsCommentOrBlank(line)) continue;
    std::istringstream fields(line);
    long long s = -1, t = -1, l = -1;
    if (!(fields >> s >> t >> l) || s < 0 || t < 0 || l < 0) {
      SetError(error, "malformed edge at line " + std::to_string(line_no));
      return std::nullopt;
    }
    if (l >= static_cast<long long>(kMaxLabels)) {
      SetError(error, "label out of range at line " + std::to_string(line_no));
      return std::nullopt;
    }
    edges.push_back({static_cast<VertexId>(s), static_cast<VertexId>(t),
                     static_cast<Label>(l)});
    max_id = std::max({max_id, edges.back().source, edges.back().target});
    max_label = std::max(max_label, edges.back().label);
  }
  const VertexId n = edges.empty() ? 0 : max_id + 1;
  const Label num_labels = edges.empty() ? 0 : max_label + 1;
  return LabeledDigraph::FromEdges(n, num_labels, std::move(edges));
}

std::optional<LabeledDigraph> ReadLabeledEdgeListFile(const std::string& path,
                                                      std::string* error) {
  std::ifstream in(path);
  if (!in) {
    SetError(error, "cannot open " + path);
    return std::nullopt;
  }
  return ReadLabeledEdgeList(in, error);
}

void WriteLabeledEdgeList(const LabeledDigraph& graph, std::ostream& out) {
  out << "# reach labeled edge list: " << graph.NumVertices()
      << " vertices, " << graph.NumEdges() << " edges, "
      << graph.NumLabels() << " labels\n";
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    for (const LabeledDigraph::Arc& a : graph.OutArcs(v)) {
      out << v << ' ' << a.vertex << ' ' << a.label << '\n';
    }
  }
}

}  // namespace reach
