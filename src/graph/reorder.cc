#include "graph/reorder.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace reach {
namespace {

// Vertices sorted by decreasing total degree, ties by ascending id — the
// same hub-first order the 2-hop builders use for ranking.
std::vector<VertexId> ByDegreeDescending(const Digraph& graph) {
  std::vector<VertexId> order(graph.NumVertices());
  std::iota(order.begin(), order.end(), VertexId{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](VertexId a, VertexId b) {
                     return graph.Degree(a) > graph.Degree(b);
                   });
  return order;
}

VertexPermutation IdentityPermutation(size_t n) {
  VertexPermutation perm;
  perm.old_to_new.resize(n);
  std::iota(perm.old_to_new.begin(), perm.old_to_new.end(), VertexId{0});
  perm.new_to_old = perm.old_to_new;
  return perm;
}

// new_to_old is a full visitation order; derive the inverse.
VertexPermutation FromNewToOld(std::vector<VertexId> new_to_old) {
  VertexPermutation perm;
  perm.old_to_new.resize(new_to_old.size());
  for (VertexId new_id = 0; new_id < new_to_old.size(); ++new_id) {
    perm.old_to_new[new_to_old[new_id]] = new_id;
  }
  perm.new_to_old = std::move(new_to_old);
  return perm;
}

VertexPermutation DegreePermutation(const Digraph& graph) {
  return FromNewToOld(ByDegreeDescending(graph));
}

VertexPermutation BfsPermutation(const Digraph& graph) {
  const size_t n = graph.NumVertices();
  std::vector<VertexId> new_to_old;
  new_to_old.reserve(n);
  std::vector<char> visited(n, 0);
  std::vector<VertexId> neighbors;

  // Seed components hub-first; within a component, expand the BFS frontier
  // in degree-descending neighbor order (over the undirected skeleton) so
  // vertices touched together get contiguous ids.
  for (VertexId root : ByDegreeDescending(graph)) {
    if (visited[root]) continue;
    visited[root] = 1;
    size_t head = new_to_old.size();
    new_to_old.push_back(root);
    while (head < new_to_old.size()) {
      const VertexId v = new_to_old[head++];
      neighbors.clear();
      for (VertexId w : graph.OutNeighbors(v)) {
        if (!visited[w]) neighbors.push_back(w);
      }
      for (VertexId w : graph.InNeighbors(v)) {
        if (!visited[w]) neighbors.push_back(w);
      }
      std::stable_sort(neighbors.begin(), neighbors.end(),
                       [&](VertexId a, VertexId b) {
                         return graph.Degree(a) > graph.Degree(b);
                       });
      for (VertexId w : neighbors) {
        if (visited[w]) continue;  // duplicates from the in+out union
        visited[w] = 1;
        new_to_old.push_back(w);
      }
    }
  }
  assert(new_to_old.size() == n);
  return FromNewToOld(std::move(new_to_old));
}

}  // namespace

std::optional<ReorderStrategy> ParseReorderStrategy(std::string_view text) {
  if (text == "none") return ReorderStrategy::kNone;
  if (text == "deg") return ReorderStrategy::kDegree;
  if (text == "bfs") return ReorderStrategy::kBfs;
  return std::nullopt;
}

std::string ReorderStrategyName(ReorderStrategy strategy) {
  switch (strategy) {
    case ReorderStrategy::kNone:
      return "none";
    case ReorderStrategy::kDegree:
      return "deg";
    case ReorderStrategy::kBfs:
      return "bfs";
  }
  return "none";
}

VertexPermutation ComputeReordering(const Digraph& graph,
                                    ReorderStrategy strategy) {
  switch (strategy) {
    case ReorderStrategy::kNone:
      return IdentityPermutation(graph.NumVertices());
    case ReorderStrategy::kDegree:
      return DegreePermutation(graph);
    case ReorderStrategy::kBfs:
      return BfsPermutation(graph);
  }
  return IdentityPermutation(graph.NumVertices());
}

Digraph RelabelDigraph(const Digraph& graph, const VertexPermutation& perm) {
  assert(perm.NumVertices() == graph.NumVertices());
  std::vector<Edge> edges = graph.Edges();
  for (Edge& e : edges) {
    e.source = perm.ToNew(e.source);
    e.target = perm.ToNew(e.target);
  }
  return Digraph::FromEdges(static_cast<VertexId>(graph.NumVertices()),
                            std::move(edges));
}

}  // namespace reach
