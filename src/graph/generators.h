#ifndef REACH_GRAPH_GENERATORS_H_
#define REACH_GRAPH_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "graph/digraph.h"
#include "graph/labeled_digraph.h"
#include "graph/types.h"

namespace reach {

/// Deterministic synthetic graph generators used by tests, examples, and
/// the benchmark harness. All take an explicit `seed`.
///
/// These stand in for the public real-world graphs (SNAP, XML corpora,
/// RDF) used by the surveyed papers' evaluations: the families below
/// reproduce the structural regimes that drive the papers' findings —
/// sparse random digraphs with large SCCs, random DAGs, shallow scale-free
/// DAGs, deep chains/trees, and dense layered DAGs.

/// Erdős–Rényi style G(n, m) digraph: `num_edges` edges sampled uniformly
/// (without replacement; self-loops excluded). Generally cyclic.
Digraph RandomDigraph(VertexId num_vertices, size_t num_edges, uint64_t seed);

/// Uniform random DAG: `num_edges` edges sampled uniformly among pairs
/// (u, v) with pi(u) < pi(v) for a random permutation pi.
Digraph RandomDag(VertexId num_vertices, size_t num_edges, uint64_t seed);

/// Scale-free-ish DAG (preferential attachment): vertices arrive one at a
/// time; each new vertex draws `out_degree` parents among earlier vertices
/// with probability proportional to (degree + 1), and points *at* them,
/// i.e., edges go from younger to older vertices (citation-network shape).
Digraph ScaleFreeDag(VertexId num_vertices, size_t out_degree, uint64_t seed);

/// Uniformly random directed tree (edges parent -> child) over
/// `num_vertices` vertices; vertex 0 is the root.
Digraph RandomTree(VertexId num_vertices, uint64_t seed);

/// Layered DAG: `layers` layers of `width` vertices; each vertex draws
/// `out_degree` random successors in the next layer. Models the deep,
/// narrow regime where interval indexes shine.
Digraph LayeredDag(VertexId layers, VertexId width, size_t out_degree,
                   uint64_t seed);

/// Simple directed path 0 -> 1 -> ... -> n-1.
Digraph Chain(VertexId num_vertices);

/// Deep chain 0 -> 1 -> ... -> n-1 plus `num_shortcuts` random forward
/// shortcut edges (u -> v with u < v). Adversarial for level/topo-rank
/// pruning: every pair (u, v) with u < v is reachable, so order-based
/// negative filters never fire and positive certificates must carry the
/// load.
Digraph ChainWithShortcuts(VertexId num_vertices, size_t num_shortcuts,
                           uint64_t seed);

/// Dense bipartite DAG: `left` sources, `right` sinks, each left->right
/// edge present independently with probability `density`. Adversarial for
/// transitive indexes: reachability has no transitivity to exploit (every
/// reachable pair is a direct edge) and the reachable/unreachable mix is
/// controlled exactly by `density`.
Digraph DenseBipartiteDag(VertexId left, VertexId right, double density,
                          uint64_t seed);

/// Simple directed cycle 0 -> 1 -> ... -> n-1 -> 0.
Digraph Cycle(VertexId num_vertices);

/// Draws a label for each edge of `graph` uniformly from `num_labels`
/// labels and returns the labeled graph.
LabeledDigraph WithUniformLabels(const Digraph& graph, Label num_labels,
                                 uint64_t seed);

/// Draws labels from a Zipf(s = `skew`) distribution over `num_labels`
/// labels (label 0 most frequent) — the skewed-label regime of the LCR
/// papers' evaluations.
LabeledDigraph WithZipfLabels(const Digraph& graph, Label num_labels,
                              double skew, uint64_t seed);

/// Labeled Erdős–Rényi digraph: RandomDigraph + uniform labels.
LabeledDigraph RandomLabeledDigraph(VertexId num_vertices, size_t num_edges,
                                    Label num_labels, uint64_t seed);

}  // namespace reach

#endif  // REACH_GRAPH_GENERATORS_H_
