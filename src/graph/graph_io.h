#ifndef REACH_GRAPH_GRAPH_IO_H_
#define REACH_GRAPH_GRAPH_IO_H_

#include <iosfwd>
#include <optional>
#include <string>

#include "graph/digraph.h"
#include "graph/labeled_digraph.h"

namespace reach {

/// SNAP-style edge-list I/O.
///
/// Plain format: one `source target` pair per line, whitespace separated.
/// Labeled format: one `source target label` triple per line.
/// Lines starting with '#' or '%' are comments. Vertex ids may be sparse in
/// the file; they are kept verbatim (the graph gets max_id + 1 vertices).

/// Parses a plain edge list from a stream. Returns nullopt on malformed
/// input and writes a diagnostic to `error` if non-null.
std::optional<Digraph> ReadEdgeList(std::istream& in,
                                    std::string* error = nullptr);

/// Parses a plain edge list file. Returns nullopt if the file cannot be
/// opened or is malformed.
std::optional<Digraph> ReadEdgeListFile(const std::string& path,
                                        std::string* error = nullptr);

/// Writes `graph` as a plain edge list (with a comment header).
void WriteEdgeList(const Digraph& graph, std::ostream& out);

/// Parses a labeled edge list from a stream.
std::optional<LabeledDigraph> ReadLabeledEdgeList(std::istream& in,
                                                  std::string* error =
                                                      nullptr);

/// Parses a labeled edge list file.
std::optional<LabeledDigraph> ReadLabeledEdgeListFile(
    const std::string& path, std::string* error = nullptr);

/// Writes `graph` as a labeled edge list (with a comment header).
void WriteLabeledEdgeList(const LabeledDigraph& graph, std::ostream& out);

}  // namespace reach

#endif  // REACH_GRAPH_GRAPH_IO_H_
