#ifndef REACH_GRAPH_REORDER_H_
#define REACH_GRAPH_REORDER_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "graph/digraph.h"
#include "graph/types.h"

namespace reach {

/// Locality-aware vertex renumbering (docs/QUERY_ENGINE.md). Indexes that
/// scan per-vertex adjacency or label arrays benefit when vertices touched
/// together sit close in id space: the 2-hop builders visit neighbors of
/// high-degree hubs millions of times, and a hub-first numbering keeps the
/// hot offsets within a few cache lines.
enum class ReorderStrategy {
  /// Identity permutation (the input numbering).
  kNone,
  /// Decreasing total degree, ties by old id. Hubs — which dominate both
  /// BFS frontiers and 2-hop label content — get the smallest ids.
  kDegree,
  /// BFS (Cuthill–McKee-flavored) numbering over the undirected skeleton:
  /// components are seeded from their highest-degree vertex and frontiers
  /// expand in degree-descending neighbor order, so each BFS level — the
  /// set of vertices touched together — is contiguous.
  kBfs,
};

/// Parses "none" / "deg" / "bfs" (the `reach_cli --reorder=` values).
/// Returns nullopt for anything else.
std::optional<ReorderStrategy> ParseReorderStrategy(std::string_view text);

/// The canonical short name: "none" / "deg" / "bfs".
std::string ReorderStrategyName(ReorderStrategy strategy);

/// A bijection between an original ("old") vertex numbering and the
/// permuted ("new") one — the id-translation shim callers keep so external
/// queries in old ids can be answered by an index built on the relabeled
/// graph.
struct VertexPermutation {
  std::vector<VertexId> old_to_new;  // old_to_new[old id] = new id
  std::vector<VertexId> new_to_old;  // inverse

  VertexId ToNew(VertexId old_id) const { return old_to_new[old_id]; }
  VertexId ToOld(VertexId new_id) const { return new_to_old[new_id]; }
  size_t NumVertices() const { return old_to_new.size(); }
};

/// Computes the permutation `strategy` assigns to `graph`. kNone yields the
/// identity; every strategy yields a valid bijection.
VertexPermutation ComputeReordering(const Digraph& graph,
                                    ReorderStrategy strategy);

/// Returns `graph` with every vertex id `v` renamed to `perm.ToNew(v)`.
/// Edge set is preserved up to renaming; vertex count is unchanged.
Digraph RelabelDigraph(const Digraph& graph, const VertexPermutation& perm);

}  // namespace reach

#endif  // REACH_GRAPH_REORDER_H_
