#ifndef REACH_GRAPH_TYPES_H_
#define REACH_GRAPH_TYPES_H_

#include <cstdint>
#include <limits>

namespace reach {

/// Dense vertex identifier. Vertices of a graph with `n` vertices are
/// exactly the ids `0 .. n-1`.
using VertexId = uint32_t;

/// Sentinel for "no vertex" (e.g., the parent of a spanning-forest root).
inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();

/// Dense edge-label identifier (edge-labeled graphs, paper §2.2). Labels of
/// a graph with `L` labels are exactly `0 .. L-1`.
using Label = uint32_t;

/// A set of edge labels encoded as a bitmask: bit `l` set means label `l`
/// is in the set. The library supports up to `kMaxLabels` distinct labels,
/// which matches the evaluation setups of the LCR papers surveyed in §4
/// (they use at most a few dozen labels).
using LabelSet = uint32_t;

/// Maximum number of distinct labels a `LabeledDigraph` may carry.
inline constexpr Label kMaxLabels = 32;

/// A directed edge `source -> target`.
struct Edge {
  VertexId source = 0;
  VertexId target = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

/// A directed edge `source -> target` carrying an edge label (§2.2).
struct LabeledEdge {
  VertexId source = 0;
  VertexId target = 0;
  Label label = 0;

  friend bool operator==(const LabeledEdge&, const LabeledEdge&) = default;
  friend auto operator<=>(const LabeledEdge&, const LabeledEdge&) = default;
};

}  // namespace reach

#endif  // REACH_GRAPH_TYPES_H_
