#ifndef REACH_GRAPH_FIGURE1_H_
#define REACH_GRAPH_FIGURE1_H_

#include "graph/digraph.h"
#include "graph/labeled_digraph.h"

namespace reach {

/// The running example of the paper (Figure 1): a 9-vertex graph in plain
/// form (a) and edge-labeled form (b), used by tests and examples.
///
/// The figure itself is a drawing; the edge list below is reconstructed so
/// that *every* worked query in the paper's text holds verbatim:
///  * Qr(A, G) = true via the s-t path (A, D, H, G)                  (§2.1)
///  * Qr(A, G, (friendOf ∪ follows)*) = false — every A-G path
///    includes worksFor                                              (§2.2)
///  * L reaches M via p1 = (L, worksFor, C, worksFor, M) and
///    p2 = (L, follows, K, worksFor, M); labels(p1) ⊂ labels(p2),
///    so the SPLS from L to M is {worksFor}                        (§4.1)
///  * SPLS(A, L) = {follows}; SPLS(A, M) = {follows, worksFor}     (§4.1)
///  * L reaches H via p3 = (L, worksFor, C, worksFor, H) with one
///    distinct label and p4 = (L, worksFor, D, friendOf, H) with two
///    — p3 is "shorter" in the Dijkstra-like GTC computation      (§4.1.2)
///  * Qr(L, B, (worksFor · friendOf)*) = true via
///    (L, worksFor, D, friendOf, H, worksFor, G, friendOf, B)       (§4.2)
///
/// Vertex ids (use the named constants): A=0 B=1 C=2 D=3 G=4 H=5 K=6 L=7
/// M=8. Label ids: friendOf=0 follows=1 worksFor=2.
namespace figure1 {

inline constexpr VertexId kA = 0;
inline constexpr VertexId kB = 1;
inline constexpr VertexId kC = 2;
inline constexpr VertexId kD = 3;
inline constexpr VertexId kG = 4;
inline constexpr VertexId kH = 5;
inline constexpr VertexId kK = 6;
inline constexpr VertexId kL = 7;
inline constexpr VertexId kM = 8;
inline constexpr VertexId kNumVertices = 9;

inline constexpr Label kFriendOf = 0;
inline constexpr Label kFollows = 1;
inline constexpr Label kWorksFor = 2;
inline constexpr Label kNumLabels = 3;

/// Figure 1(b): the edge-labeled social network.
LabeledDigraph LabeledGraph();

/// Figure 1(a): the plain projection of the same topology.
Digraph PlainGraph();

}  // namespace figure1
}  // namespace reach

#endif  // REACH_GRAPH_FIGURE1_H_
