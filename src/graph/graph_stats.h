#ifndef REACH_GRAPH_GRAPH_STATS_H_
#define REACH_GRAPH_GRAPH_STATS_H_

#include <cstdint>
#include <string>

#include "graph/digraph.h"

namespace reach {

/// Structural statistics of a digraph — the quantities that drive index
/// selection in the survey's comparisons (size, density, cyclicity, depth,
/// and how much of the graph a random traversal touches).
struct GraphStats {
  size_t num_vertices = 0;
  size_t num_edges = 0;
  double avg_degree = 0;          // out-edges per vertex
  size_t max_out_degree = 0;
  size_t max_in_degree = 0;
  size_t num_sources = 0;         // in-degree 0
  size_t num_sinks = 0;           // out-degree 0
  size_t num_sccs = 0;
  size_t largest_scc = 0;
  bool is_dag = false;            // no SCC with > 1 vertex
  size_t condensation_depth = 0;  // longest path, in condensation vertices
  /// Fraction of vertices reachable from a random vertex, estimated from
  /// `sample` BFS runs — the "visits a large portion of the graph" number
  /// of §2.3.
  double reachability_density = 0;
};

/// Computes all statistics; `samples` BFS probes estimate the density.
GraphStats ComputeGraphStats(const Digraph& graph, size_t samples = 16,
                             uint64_t seed = 0x57a75);

/// Multi-line human-readable rendering.
std::string GraphStatsToString(const GraphStats& stats);

}  // namespace reach

#endif  // REACH_GRAPH_GRAPH_STATS_H_
