#include "graph/scc.h"

#include <algorithm>

namespace reach {

namespace {

// Explicit DFS frame for the iterative Tarjan implementation.
struct Frame {
  VertexId vertex;
  size_t next_child;  // index into OutNeighbors(vertex)
};

constexpr VertexId kUnvisited = kInvalidVertex;

}  // namespace

SccDecomposition ComputeScc(const Digraph& graph) {
  const size_t n = graph.NumVertices();
  SccDecomposition result;
  result.component_of.assign(n, kUnvisited);

  std::vector<VertexId> index(n, kUnvisited);  // discovery order
  std::vector<VertexId> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<VertexId> stack;  // Tarjan's SCC stack
  std::vector<Frame> frames;    // explicit DFS stack
  VertexId next_index = 0;

  for (VertexId root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    frames.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!frames.empty()) {
      Frame& frame = frames.back();
      const VertexId v = frame.vertex;
      auto nbrs = graph.OutNeighbors(v);
      if (frame.next_child < nbrs.size()) {
        const VertexId w = nbrs[frame.next_child++];
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      } else {
        frames.pop_back();
        if (!frames.empty()) {
          const VertexId parent = frames.back().vertex;
          lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
        }
        if (lowlink[v] == index[v]) {
          // v is the root of an SCC; pop it. Tarjan emits SCCs in reverse
          // topological order of the condensation.
          while (true) {
            const VertexId w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            result.component_of[w] = result.num_components;
            if (w == v) break;
          }
          ++result.num_components;
        }
      }
    }
  }
  return result;
}

}  // namespace reach
