#ifndef REACH_GRAPH_RNG_H_
#define REACH_GRAPH_RNG_H_

#include <cstdint>

namespace reach {

/// SplitMix64: tiny, fast, deterministic PRNG used to seed `Xoshiro256ss`
/// and for cheap hashing. Every randomized component in the library takes
/// an explicit seed so builds and tests are reproducible.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// Returns the next 64-bit pseudo-random value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// One-shot SplitMix64 mix step, usable as a 64-bit hash function.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// xoshiro256** by Blackman & Vigna: the library's general-purpose PRNG.
/// Deterministic for a given seed across platforms.
class Xoshiro256ss {
 public:
  explicit Xoshiro256ss(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  /// Returns the next 64-bit pseudo-random value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Returns a uniform value in `[0, bound)`. `bound` must be nonzero.
  /// Uses Lemire's multiply-shift rejection-free reduction (a negligible
  /// modulo bias is acceptable for graph generation).
  uint64_t NextBounded(uint64_t bound) {
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  /// Returns a uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace reach

#endif  // REACH_GRAPH_RNG_H_
