#include "graph/labeled_digraph.h"

#include <algorithm>
#include <cassert>
#include <tuple>

namespace reach {

LabeledDigraph LabeledDigraph::FromEdges(VertexId num_vertices,
                                         Label num_labels,
                                         std::vector<LabeledEdge> edges) {
  assert(num_labels <= kMaxLabels);
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  LabeledDigraph g;
  g.num_vertices_ = num_vertices;
  g.num_labels_ = num_labels;
  g.out_offsets_.assign(num_vertices + 1, 0);
  g.in_offsets_.assign(num_vertices + 1, 0);
  g.out_arcs_.resize(edges.size());
  g.in_arcs_.resize(edges.size());

  for (const LabeledEdge& e : edges) {
    assert(e.source < num_vertices && e.target < num_vertices);
    assert(e.label < num_labels);
    ++g.out_offsets_[e.source + 1];
    ++g.in_offsets_[e.target + 1];
  }
  for (size_t v = 0; v < num_vertices; ++v) {
    g.out_offsets_[v + 1] += g.out_offsets_[v];
    g.in_offsets_[v + 1] += g.in_offsets_[v];
  }

  std::vector<size_t> out_cursor(g.out_offsets_.begin(),
                                 g.out_offsets_.end() - 1);
  std::vector<size_t> in_cursor(g.in_offsets_.begin(),
                                g.in_offsets_.end() - 1);
  for (const LabeledEdge& e : edges) {
    g.out_arcs_[out_cursor[e.source]++] = {e.target, e.label};
    g.in_arcs_[in_cursor[e.target]++] = {e.source, e.label};
  }
  // In-arc lists are sorted by (source, label) because the global sort is
  // (source, target, label) and each list is filled in that order.
  return g;
}

std::vector<LabeledEdge> LabeledDigraph::Edges() const {
  std::vector<LabeledEdge> edges;
  edges.reserve(NumEdges());
  for (VertexId v = 0; v < num_vertices_; ++v) {
    for (const Arc& a : OutArcs(v)) edges.push_back({v, a.vertex, a.label});
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

Digraph LabeledDigraph::ProjectPlain() const {
  std::vector<Edge> edges;
  edges.reserve(NumEdges());
  for (VertexId v = 0; v < num_vertices_; ++v) {
    for (const Arc& a : OutArcs(v)) edges.push_back({v, a.vertex});
  }
  return Digraph::FromEdges(static_cast<VertexId>(num_vertices_),
                            std::move(edges));
}

void LabeledDigraph::set_label_names(std::vector<std::string> names) {
  assert(names.size() == num_labels_);
  label_names_ = std::move(names);
}

}  // namespace reach
