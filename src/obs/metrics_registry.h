#ifndef REACH_OBS_METRICS_REGISTRY_H_
#define REACH_OBS_METRICS_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace reach {

/// A named monotonically increasing counter. Every thread that touches the
/// counter writes to its own cell (plain uint64_t adds, no atomics, no
/// cache-line ping-pong during parallel builds); cells are merged when the
/// value is scraped. Counters are created by `MetricsRegistry::GetCounter`
/// and live as long as their registry.
class Counter {
 public:
  /// Adds `n` to this thread's cell. Cheap: one thread-local hash lookup
  /// (cached cell pointer) plus a plain add. No-op while the owning
  /// registry is runtime-disabled.
  void Add(uint64_t n = 1);

  /// Merged value across all threads that ever touched the counter.
  uint64_t Value() const;

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  Counter(std::string name, const bool* enabled)
      : name_(std::move(name)), enabled_(enabled) {}

  struct Cell {
    uint64_t value = 0;
  };
  Cell& LocalCell();

  std::string name_;
  const bool* enabled_;  // owning registry's runtime flag
  uint64_t id_ = 0;      // unique across all Counter instances ever made
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Cell>> cells_;
};

/// A named last-written-wins value (e.g. roster sizes, configuration).
/// Gauges are set rarely, off the hot paths, so a mutex is fine.
class Gauge {
 public:
  void Set(double value);
  double Value() const;
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  Gauge(std::string name, const bool* enabled)
      : name_(std::move(name)), enabled_(enabled) {}

  std::string name_;
  const bool* enabled_;
  mutable std::mutex mu_;
  double value_ = 0;
};

/// Power-of-two bucketed histogram: Record(v) lands in bucket
/// floor(log2(v + 1)), so bucket b covers [2^b - 1, 2^(b+1) - 2]. Like
/// counters, each thread records into its own cell, merged on scrape.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 40;

  void Record(uint64_t value);
  const std::string& name() const { return name_; }

  /// Smallest value landing in bucket `b`: 2^b - 1 (0, 1, 3, 7, 15, ...).
  static constexpr uint64_t BucketLowerBound(size_t b) {
    return (uint64_t{1} << b) - 1;
  }
  /// Largest value landing in bucket `b`: 2^(b+1) - 2 — except the last
  /// bucket, which absorbs everything above it (Record clamps).
  static constexpr uint64_t BucketUpperBound(size_t b) {
    return b + 1 >= kNumBuckets ? UINT64_MAX : (uint64_t{1} << (b + 1)) - 2;
  }

 private:
  friend class MetricsRegistry;
  Histogram(std::string name, const bool* enabled)
      : name_(std::move(name)), enabled_(enabled) {}

  struct Cell {
    uint64_t buckets[kNumBuckets] = {};
    uint64_t count = 0;
    uint64_t sum = 0;
  };
  Cell& LocalCell();

  std::string name_;
  const bool* enabled_;
  uint64_t id_ = 0;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Cell>> cells_;
};

/// Merged view of one histogram at scrape time.
struct HistogramSnapshot {
  std::vector<uint64_t> buckets;  // trailing zero buckets trimmed
  uint64_t count = 0;
  uint64_t sum = 0;

  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// Point-in-time merged view of a whole registry. Keys are sorted, so
/// exports are deterministic.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

/// A namespace of counters/gauges/histograms. `MetricsRegistry::Global()`
/// is the library-wide instance (interval-forest builds, parallel-build
/// progress, ...); tests and tools may create private registries.
///
/// Thread-safety: instrument creation, scraping, and recording may race
/// freely. Recording is per-thread-cell, so `Snapshot()` taken while
/// writers run sees each cell either before or after its current add.
/// `Reset()` is only exact when no writer is concurrently recording.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry used by library instrumentation.
  static MetricsRegistry& Global();

  /// Returns the instrument with `name`, creating it on first use. The
  /// reference stays valid for the registry's lifetime.
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// Runtime switch: while disabled, Add/Set/Record are no-ops (one
  /// predictable branch). Compiled-out builds (REACH_METRICS=0) never
  /// record regardless. Enabled by default.
  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  /// Merges every instrument's per-thread cells into one snapshot.
  MetricsSnapshot Snapshot() const;

  /// Zeroes all instruments (cells are kept, values cleared).
  void Reset();

 private:
  mutable std::mutex mu_;
  bool enabled_ = true;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace reach

#endif  // REACH_OBS_METRICS_REGISTRY_H_
