#include "obs/trace.h"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <unordered_map>
#include <utility>

#include "obs/metrics_exporter.h"  // JsonEscape

namespace reach {

namespace {

// Recorders are identified by a process-unique id, not by address, so a
// destroyed recorder (tests create private ones) can never alias a live
// recorder's thread-local buffer cache.
std::atomic<uint64_t> g_next_recorder_id{1};

// recorder id -> this thread's buffer within that recorder.
thread_local std::unordered_map<uint64_t, void*> tls_buffers;

// Span-nesting depth of the current thread (shared across recorders; in
// practice exactly one recorder — the global — is live on hot paths).
thread_local uint32_t tls_span_depth = 0;

}  // namespace

/// One thread's ring. Written only by the owning thread; the mutex makes
/// concurrent scrapes race-free and is uncontended on the record path.
struct TraceRecorder::ThreadBuffer {
  mutable std::mutex mu;
  uint64_t tid = 0;
  std::string name;
  size_t capacity = 0;           // fixed at registration
  std::vector<TraceEvent> ring;  // sized lazily on first record
  size_t head = 0;               // next write position
  uint64_t recorded = 0;         // events ever recorded
};

TraceRecorder::TraceRecorder()
    : epoch_(std::chrono::steady_clock::now()),
      id_(g_next_recorder_id.fetch_add(1)) {}

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

TraceRecorder::ThreadBuffer& TraceRecorder::LocalBuffer() {
  void*& slot = tls_buffers[id_];
  if (slot == nullptr) {
    auto buffer = std::make_shared<ThreadBuffer>();
    std::lock_guard<std::mutex> lock(mu_);
    buffer->tid = buffers_.size();
    buffer->capacity = thread_capacity_;
    buffers_.push_back(buffer);
    slot = buffer.get();
  }
  return *static_cast<ThreadBuffer*>(slot);
}

uint32_t TraceRecorder::Intern(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<uint32_t>(i);
  }
  names_.push_back(name);
  return static_cast<uint32_t>(names_.size() - 1);
}

void TraceRecorder::set_thread_capacity(size_t events) {
  std::lock_guard<std::mutex> lock(mu_);
  thread_capacity_ = events < 8 ? 8 : events;
}

size_t TraceRecorder::thread_capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return thread_capacity_;
}

void TraceRecorder::SetCurrentThreadName(const std::string& name) {
  ThreadBuffer& buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.name = name;
}

void TraceRecorder::Record(uint32_t name_id, uint64_t start_ns,
                           uint64_t end_ns, uint32_t depth,
                           TraceEventKind kind) {
  if (!enabled()) return;
  ThreadBuffer& buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  // Threads register cheaply (pool workers name themselves up front);
  // the ring's memory is only committed once the thread records.
  if (buffer.ring.empty()) buffer.ring.resize(buffer.capacity);
  buffer.ring[buffer.head] = TraceEvent{name_id, depth, kind, start_ns,
                                        end_ns};
  buffer.head = (buffer.head + 1) % buffer.ring.size();
  ++buffer.recorded;
}

void TraceRecorder::RecordTimed(const std::string& name,
                                std::chrono::steady_clock::time_point begin,
                                std::chrono::steady_clock::time_point end) {
  if (!enabled()) return;
  const auto to_ns = [this](std::chrono::steady_clock::time_point t) {
    const auto since = t - epoch_;
    return since.count() < 0
               ? uint64_t{0}
               : static_cast<uint64_t>(
                     std::chrono::duration_cast<std::chrono::nanoseconds>(
                         since)
                         .count());
  };
  Record(Intern(name), to_ns(begin), to_ns(end), tls_span_depth);
}

void TraceRecorder::RecordInstant(uint32_t name_id) {
  if (!enabled()) return;
  const uint64_t now = NowNs();
  Record(name_id, now, now, tls_span_depth, TraceEventKind::kInstant);
}

std::vector<TraceRecorder::ThreadTrace> TraceRecorder::Snapshot() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    buffers = buffers_;
  }
  std::vector<ThreadTrace> out;
  out.reserve(buffers.size());
  for (const auto& buffer : buffers) {
    ThreadTrace trace;
    std::lock_guard<std::mutex> lock(buffer->mu);
    trace.tid = buffer->tid;
    trace.name = buffer->name;
    const size_t capacity = buffer->ring.size();
    if (capacity == 0) {
      out.push_back(std::move(trace));
      continue;
    }
    const size_t count =
        buffer->recorded < capacity ? static_cast<size_t>(buffer->recorded)
                                    : capacity;
    trace.dropped = buffer->recorded - count;
    trace.events.reserve(count);
    // Chronological: the ring's oldest surviving event sits at `head`
    // once wrapped, at 0 before that.
    const size_t first =
        buffer->recorded < capacity ? 0 : buffer->head % capacity;
    for (size_t i = 0; i < count; ++i) {
      trace.events.push_back(buffer->ring[(first + i) % capacity]);
    }
    out.push_back(std::move(trace));
  }
  return out;
}

std::vector<std::string> TraceRecorder::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  return names_;
}

void TraceRecorder::Reset() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    buffers = buffers_;
  }
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    buffer->head = 0;
    buffer->recorded = 0;
  }
}

#if REACH_METRICS

TraceSpan::TraceSpan(uint32_t name_id, TraceRecorder& recorder)
    : recorder_(recorder.enabled() ? &recorder : nullptr),
      name_id_(name_id) {
  if (recorder_ == nullptr) return;
  depth_ = tls_span_depth++;
  start_ns_ = recorder_->NowNs();
}

void TraceSpan::End() {
  if (recorder_ == nullptr) return;
  TraceRecorder* recorder = recorder_;
  recorder_ = nullptr;
  --tls_span_depth;
  recorder->Record(name_id_, start_ns_, recorder->NowNs(), depth_);
}

#endif  // REACH_METRICS

std::string TraceExporter::ToChromeJson() const {
  const std::vector<std::string> names = recorder_.Names();
  const std::vector<TraceRecorder::ThreadTrace> threads =
      recorder_.Snapshot();

  const auto name_of = [&names](uint32_t id) -> std::string {
    return id < names.size() ? names[id] : "name#" + std::to_string(id);
  };
  const auto us = [](uint64_t ns) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                  static_cast<unsigned long long>(ns / 1000),
                  static_cast<unsigned long long>(ns % 1000));
    return std::string(buf);
  };

  std::string out = "{\n  \"displayTimeUnit\": \"ms\",\n";
  out += "  \"traceEvents\": [\n";
  out +=
      "    {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
      "\"args\": {\"name\": \"reach\"}}";
  for (const TraceRecorder::ThreadTrace& thread : threads) {
    const std::string tname =
        thread.name.empty() ? "thread-" + std::to_string(thread.tid)
                            : thread.name;
    out += ",\n    {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
           "\"tid\": " +
           std::to_string(thread.tid) + ", \"args\": {\"name\": \"" +
           JsonEscape(tname) + "\"}}";
  }
  for (const TraceRecorder::ThreadTrace& thread : threads) {
    const std::string tid = std::to_string(thread.tid);
    for (const TraceEvent& event : thread.events) {
      out += ",\n    {\"name\": \"" + JsonEscape(name_of(event.name_id)) +
             "\", \"cat\": \"reach\", ";
      if (event.kind == TraceEventKind::kInstant) {
        out += "\"ph\": \"i\", \"s\": \"t\", ";
      } else {
        const uint64_t dur = event.end_ns - event.start_ns;
        out += "\"ph\": \"X\", \"dur\": " + us(dur) + ", ";
      }
      out += "\"pid\": 1, \"tid\": " + tid + ", \"ts\": " +
             us(event.start_ns) + ", \"args\": {\"depth\": " +
             std::to_string(event.depth) + "}}";
    }
  }
  out += "\n  ],\n";
  uint64_t dropped = 0;
  for (const TraceRecorder::ThreadTrace& thread : threads) {
    dropped += thread.dropped;
  }
  out += "  \"otherData\": {\"schema\": \"reach.trace.v1\", ";
  out += "\"metrics_compiled\": ";
  out += kMetricsCompiled ? "true" : "false";
  out += ", \"dropped_events\": " + std::to_string(dropped) + "}\n}\n";
  return out;
}

bool TraceExporter::WriteChromeJsonFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << ToChromeJson();
  return static_cast<bool>(out);
}

}  // namespace reach
