#ifndef REACH_OBS_METRICS_EXPORTER_H_
#define REACH_OBS_METRICS_EXPORTER_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/build_phase_timer.h"
#include "obs/metrics_registry.h"
#include "obs/query_probe.h"

namespace reach {

/// Everything the observability layer knows about one index instance:
/// identity, size, build breakdown, and accumulated query probe. Collected
/// via `MakeIndexReport` from any type with the `ReachabilityIndex` /
/// `LcrIndex` surface (Name / IsComplete / IndexSizeBytes / Stats / Probe).
struct IndexReport {
  std::string name;
  bool complete = true;
  uint64_t size_bytes = 0;
  uint64_t num_entries = 0;
  uint64_t build_ns = 0;
  uint64_t peak_build_memory_bytes = 0;
  std::vector<PhaseTiming> phases;
  QueryProbe probe;
};

/// Duck-typed collector — works for `ReachabilityIndex`, `LcrIndex`, and
/// anything else exposing the same surface, without obs depending on core.
template <typename Index>
IndexReport MakeIndexReport(const Index& index) {
  IndexReport report;
  report.name = index.Name();
  report.complete = index.IsComplete();
  report.size_bytes = index.IndexSizeBytes();
  const auto& stats = index.Stats();
  report.num_entries = stats.num_entries;
  report.build_ns = static_cast<uint64_t>(stats.build_time.count());
  report.peak_build_memory_bytes = stats.peak_build_memory_bytes;
  report.phases = stats.phases;
  report.probe = index.Probe();
  return report;
}

/// Accumulates per-index reports plus an optional registry snapshot and
/// renders them as JSON (machine-readable, schema "reach.metrics.v1") or
/// as human-readable tables. Used by `reach_cli --metrics` and the bench
/// harness; see docs/OBSERVABILITY.md for the column taxonomy.
class MetricsExporter {
 public:
  void Add(IndexReport report);

  /// Attaches a registry snapshot (typically
  /// `MetricsRegistry::Global().Snapshot()`) to the report.
  void SetRegistrySnapshot(MetricsSnapshot snapshot);

  const std::vector<IndexReport>& reports() const { return reports_; }

  /// The full report as a JSON document (pretty-printed, deterministic
  /// ordering: indexes in insertion order, registry keys sorted).
  std::string ToJson() const;

  /// The full report as fixed-width human-readable tables.
  std::string ToTable() const;

  /// Writes `ToJson()` to `path`; returns false on I/O failure.
  bool WriteJsonFile(const std::string& path) const;

 private:
  std::vector<IndexReport> reports_;
  MetricsSnapshot registry_;
  bool has_registry_ = false;
};

/// Folds `index` into `exporter` as an `IndexReport`, optionally prefixing
/// the report name (e.g. with the graph it was built on). Duck-typed like
/// `MakeIndexReport`: works for `ReachabilityIndex`, `LcrIndex`, and
/// anything else with the same surface.
template <typename Index>
void AddIndexReport(MetricsExporter& exporter, const Index& index,
                    const std::string& name_prefix = "") {
  IndexReport report = MakeIndexReport(index);
  if (!name_prefix.empty()) report.name = name_prefix + report.name;
  exporter.Add(std::move(report));
}

/// Escapes `s` for inclusion in a JSON string literal.
std::string JsonEscape(const std::string& s);

}  // namespace reach

#endif  // REACH_OBS_METRICS_EXPORTER_H_
