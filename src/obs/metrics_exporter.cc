#include "obs/metrics_exporter.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace reach {

namespace {

double NsToMs(uint64_t ns) { return static_cast<double>(ns) / 1e6; }

void AppendIndent(std::string& out, int depth) {
  out.append(static_cast<size_t>(depth) * 2, ' ');
}

void AppendKey(std::string& out, int depth, const std::string& key) {
  AppendIndent(out, depth);
  out += '"';
  out += JsonEscape(key);
  out += "\": ";
}

std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void MetricsExporter::Add(IndexReport report) {
  reports_.push_back(std::move(report));
}

void MetricsExporter::SetRegistrySnapshot(MetricsSnapshot snapshot) {
  registry_ = std::move(snapshot);
  has_registry_ = true;
}

std::string MetricsExporter::ToJson() const {
  std::string out = "{\n";
  AppendKey(out, 1, "schema");
  out += "\"reach.metrics.v1\",\n";
  AppendKey(out, 1, "metrics_compiled");
  out += kMetricsCompiled ? "true,\n" : "false,\n";

  AppendKey(out, 1, "indexes");
  out += "[";
  for (size_t i = 0; i < reports_.size(); ++i) {
    const IndexReport& r = reports_[i];
    out += i == 0 ? "\n" : ",\n";
    AppendIndent(out, 2);
    out += "{\n";
    AppendKey(out, 3, "name");
    out += '"' + JsonEscape(r.name) + "\",\n";
    AppendKey(out, 3, "complete");
    out += r.complete ? "true,\n" : "false,\n";
    AppendKey(out, 3, "size_bytes");
    out += std::to_string(r.size_bytes) + ",\n";
    AppendKey(out, 3, "num_entries");
    out += std::to_string(r.num_entries) + ",\n";

    AppendKey(out, 3, "build");
    out += "{\n";
    AppendKey(out, 4, "total_ns");
    out += std::to_string(r.build_ns) + ",\n";
    AppendKey(out, 4, "peak_rss_bytes");
    out += std::to_string(r.peak_build_memory_bytes) + ",\n";
    AppendKey(out, 4, "phases");
    out += "[";
    for (size_t p = 0; p < r.phases.size(); ++p) {
      out += p == 0 ? "\n" : ",\n";
      AppendIndent(out, 5);
      out += "{\"name\": \"" + JsonEscape(r.phases[p].name) +
             "\", \"ns\": " + std::to_string(r.phases[p].elapsed.count()) +
             "}";
    }
    if (!r.phases.empty()) {
      out += '\n';
      AppendIndent(out, 4);
    }
    out += "]\n";
    AppendIndent(out, 3);
    out += "},\n";

    AppendKey(out, 3, "probe");
    out += "{\n";
    bool first = true;
    r.probe.ForEachField([&](const char* field, uint64_t value) {
      if (!first) out += ",\n";
      first = false;
      AppendKey(out, 4, field);
      out += std::to_string(value);
    });
    out += '\n';
    AppendIndent(out, 3);
    out += "}\n";
    AppendIndent(out, 2);
    out += "}";
  }
  if (!reports_.empty()) {
    out += '\n';
    AppendIndent(out, 1);
  }
  out += "],\n";

  AppendKey(out, 1, "registry");
  out += "{\n";
  AppendKey(out, 2, "counters");
  out += "{";
  {
    bool first = true;
    for (const auto& [name, value] : registry_.counters) {
      out += first ? "\n" : ",\n";
      first = false;
      AppendKey(out, 3, name);
      out += std::to_string(value);
    }
    if (!registry_.counters.empty()) {
      out += '\n';
      AppendIndent(out, 2);
    }
  }
  out += "},\n";
  AppendKey(out, 2, "gauges");
  out += "{";
  {
    bool first = true;
    for (const auto& [name, value] : registry_.gauges) {
      out += first ? "\n" : ",\n";
      first = false;
      AppendKey(out, 3, name);
      out += FormatDouble(value);
    }
    if (!registry_.gauges.empty()) {
      out += '\n';
      AppendIndent(out, 2);
    }
  }
  out += "},\n";
  AppendKey(out, 2, "histograms");
  out += "{";
  {
    bool first = true;
    for (const auto& [name, hist] : registry_.histograms) {
      out += first ? "\n" : ",\n";
      first = false;
      AppendKey(out, 3, name);
      out += "{\"count\": " + std::to_string(hist.count) +
             ", \"sum\": " + std::to_string(hist.sum) + ", \"buckets\": [";
      for (size_t b = 0; b < hist.buckets.size(); ++b) {
        if (b > 0) out += ", ";
        out += std::to_string(hist.buckets[b]);
      }
      // One [lo, hi] value range per emitted bucket (power-of-two bounds;
      // see Histogram::BucketLowerBound). The final histogram bucket is
      // unbounded above, exported as null.
      out += "], \"bucket_bounds\": [";
      for (size_t b = 0; b < hist.buckets.size(); ++b) {
        if (b > 0) out += ", ";
        out += "[" + std::to_string(Histogram::BucketLowerBound(b)) + ", ";
        out += b + 1 >= Histogram::kNumBuckets
                   ? "null"
                   : std::to_string(Histogram::BucketUpperBound(b));
        out += "]";
      }
      out += "]}";
    }
    if (!registry_.histograms.empty()) {
      out += '\n';
      AppendIndent(out, 2);
    }
  }
  out += "}\n";
  AppendIndent(out, 1);
  out += "}\n}\n";
  return out;
}

std::string MetricsExporter::ToTable() const {
  std::ostringstream out;
  char line[512];
  std::snprintf(line, sizeof(line),
                "%-18s %9s %9s %9s %9s %10s %10s %9s %9s %9s\n", "index",
                "build_ms", "size_KB", "queries", "pos", "visited", "labels",
                "prunes", "rejects", "fallback");
  out << line;
  for (const IndexReport& r : reports_) {
    std::snprintf(line, sizeof(line),
                  "%-18s %9.2f %9.1f %9" PRIu64 " %9" PRIu64 " %10" PRIu64
                  " %10" PRIu64 " %9" PRIu64 " %9" PRIu64 " %9" PRIu64 "\n",
                  r.name.c_str(), NsToMs(r.build_ns),
                  static_cast<double>(r.size_bytes) / 1024.0, r.probe.queries,
                  r.probe.positives, r.probe.vertices_visited,
                  r.probe.labels_scanned, r.probe.filter_prunes,
                  r.probe.label_rejections, r.probe.fallbacks);
    out << line;
    if (!r.phases.empty()) {
      out << "  phases:";
      for (const PhaseTiming& phase : r.phases) {
        std::snprintf(line, sizeof(line), " %s=%.2fms", phase.name.c_str(),
                      NsToMs(static_cast<uint64_t>(phase.elapsed.count())));
        out << line;
      }
      out << '\n';
    }
  }
  if (has_registry_ && !registry_.counters.empty()) {
    out << "registry counters:\n";
    for (const auto& [name, value] : registry_.counters) {
      out << "  " << name << " = " << value << '\n';
    }
  }
  if (has_registry_ && !registry_.histograms.empty()) {
    for (const auto& [name, hist] : registry_.histograms) {
      std::snprintf(line, sizeof(line),
                    "registry histogram %s: count=%" PRIu64 " mean=%.1f\n",
                    name.c_str(), hist.count, hist.Mean());
      out << line;
    }
  }
  return out.str();
}

bool MetricsExporter::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << ToJson();
  return static_cast<bool>(out);
}

}  // namespace reach
