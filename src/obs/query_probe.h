#ifndef REACH_OBS_QUERY_PROBE_H_
#define REACH_OBS_QUERY_PROBE_H_

#include <cstdint>

// REACH_METRICS selects whether the library is compiled with
// instrumentation (query probes, build-phase timers, registry counters).
// The CMake option of the same name defines it to 0 or 1; standalone
// inclusion defaults to instrumented. With REACH_METRICS=0 every probe
// macro expands to nothing, so the query path carries zero overhead.
#ifndef REACH_METRICS
#define REACH_METRICS 1
#endif

namespace reach {

/// True iff the library was compiled with instrumentation.
inline constexpr bool kMetricsCompiled = REACH_METRICS != 0;

/// Per-query instrumentation counters, accumulated across queries since
/// `Build()` / `ResetProbe()`. One probe lives in every `SearchWorkspace`
/// (indexes that traverse record into it); indexes without a workspace own
/// a probe directly. Increments are plain uint64_t adds through the
/// `REACH_PROBE_*` macros — no atomics on the query path; a probe belongs
/// to exactly one index instance and is scraped, not shared.
///
/// Field taxonomy (see docs/OBSERVABILITY.md for the full mapping):
///  * `queries`            — Query() calls observed.
///  * `positives`          — queries answered true.
///  * `vertices_visited`   — vertices expanded by any (guided) traversal.
///  * `edges_scanned`      — arcs examined by any (guided) traversal.
///  * `labels_scanned`     — label entries / intervals / filter words
///                           compared on the lookup path.
///  * `filter_prunes`      — traversal candidates cut by an interval /
///                           Bloom / SPLS filter (the pruning the partial
///                           indexes are designed around).
///  * `label_rejections`   — negative answers settled from labels alone,
///                           with zero traversal (GRAIL's "label-only
///                           rejection", BFL's Bloom containment miss).
///  * `fallbacks`          — queries a partial index could not settle from
///                           labels and handed to guided traversal.
struct QueryProbe {
  uint64_t queries = 0;
  uint64_t positives = 0;
  uint64_t vertices_visited = 0;
  uint64_t edges_scanned = 0;
  uint64_t labels_scanned = 0;
  uint64_t filter_prunes = 0;
  uint64_t label_rejections = 0;
  uint64_t fallbacks = 0;

  void Reset() { *this = QueryProbe{}; }

  void MergeFrom(const QueryProbe& other) {
    queries += other.queries;
    positives += other.positives;
    vertices_visited += other.vertices_visited;
    edges_scanned += other.edges_scanned;
    labels_scanned += other.labels_scanned;
    filter_prunes += other.filter_prunes;
    label_rejections += other.label_rejections;
    fallbacks += other.fallbacks;
  }

  /// Calls `fn(name, value)` for every field, in declaration order — the
  /// single source of truth for exporters and tests.
  template <typename Fn>
  void ForEachField(Fn&& fn) const {
    fn("queries", queries);
    fn("positives", positives);
    fn("vertices_visited", vertices_visited);
    fn("edges_scanned", edges_scanned);
    fn("labels_scanned", labels_scanned);
    fn("filter_prunes", filter_prunes);
    fn("label_rejections", label_rejections);
    fn("fallbacks", fallbacks);
  }
};

}  // namespace reach

// Probe increment macros: plain member adds when instrumented, nothing
// otherwise. `probe` is a QueryProbe lvalue, `field` one of its members.
#if REACH_METRICS
#define REACH_PROBE_INC(probe, field) (void)(++(probe).field)
#define REACH_PROBE_ADD(probe, field, n) \
  (void)((probe).field += static_cast<uint64_t>(n))
#else
#define REACH_PROBE_INC(probe, field) (void)0
#define REACH_PROBE_ADD(probe, field, n) (void)0
#endif

#endif  // REACH_OBS_QUERY_PROBE_H_
