#ifndef REACH_OBS_TRACE_H_
#define REACH_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/query_probe.h"  // for REACH_METRICS / kMetricsCompiled

namespace reach {

/// What a `TraceEvent` describes.
enum class TraceEventKind : uint8_t {
  kSpan,     // a [start, end) interval on one thread
  kInstant,  // a point-in-time marker (e.g. a snapshot swap)
};

/// One completed event in a thread's trace ring. Times are nanoseconds
/// since the owning recorder's epoch (its construction). `depth` is the
/// span-nesting depth at begin time, so consumers can rebuild the span
/// tree of one thread without re-deriving containment from timestamps.
struct TraceEvent {
  uint32_t name_id = 0;
  uint32_t depth = 0;
  TraceEventKind kind = TraceEventKind::kSpan;
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
};

/// Low-overhead span recorder: every thread that records owns a
/// fixed-capacity ring buffer of completed events (oldest events are
/// overwritten once the ring wraps; the overwrite count is reported at
/// scrape time), and span names are interned once into small integer ids
/// so the hot path never hashes or copies strings. Recording is gated on
/// a runtime flag — disabled (the default), a span costs one relaxed
/// atomic load and no clock reads. Compiled with REACH_METRICS=0, the
/// `REACH_TRACE_*` macros expand to nothing and `TraceSpan` is an empty
/// shell, so the serve/build hot paths carry zero tracing overhead.
///
/// `TraceRecorder::Global()` is the process-wide instance every library
/// span records into; tests may create private recorders and call
/// `Record` directly. See docs/TRACING.md.
///
/// Thread-safety: `Intern`, `Record*`, `Snapshot`, and the flag accessors
/// may race freely. Each ring is written only under its own mutex, taken
/// uncontended on the hot path (one writer — the owning thread — plus the
/// occasional scrape).
class TraceRecorder {
 public:
  /// Events retained per thread before the ring wraps.
  static constexpr size_t kDefaultThreadCapacity = 1 << 15;

  TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// The process-wide recorder used by library instrumentation. Never
  /// destroyed (interned ids are cached in function-local statics).
  static TraceRecorder& Global();

  /// Returns the stable id for `name`, interning it on first use. Cheap
  /// enough for cold paths; hot paths cache the id in a static (what the
  /// `REACH_TRACE_SPAN` macro does).
  uint32_t Intern(const std::string& name);

  /// Runtime switch; disabled recorders drop every Record* call before
  /// touching the clock or the ring. Disabled by default.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Ring capacity (in events) for threads that have not recorded into
  /// this recorder yet; existing rings keep their size. Clamped to >= 8.
  void set_thread_capacity(size_t events);
  size_t thread_capacity() const;

  /// Names the calling thread in this recorder's output ("pool-worker-3");
  /// threads without a name export as "thread-<tid>".
  void SetCurrentThreadName(const std::string& name);

  /// Appends a completed event to the calling thread's ring (creating the
  /// ring on first use). No-op while disabled.
  void Record(uint32_t name_id, uint64_t start_ns, uint64_t end_ns,
              uint32_t depth = 0,
              TraceEventKind kind = TraceEventKind::kSpan);

  /// `Record` for callers holding steady_clock time points (e.g.
  /// `BuildPhaseTimer`), with per-call interning — cold paths only.
  void RecordTimed(const std::string& name,
                   std::chrono::steady_clock::time_point begin,
                   std::chrono::steady_clock::time_point end);

  /// Records an instant marker at the current time. No-op while disabled.
  void RecordInstant(uint32_t name_id);

  /// Nanoseconds since this recorder's epoch.
  uint64_t NowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// One thread's portion of a trace snapshot, events in chronological
  /// order. `dropped` counts events overwritten by ring wraparound.
  struct ThreadTrace {
    uint64_t tid = 0;
    std::string name;
    uint64_t dropped = 0;
    std::vector<TraceEvent> events;
  };

  /// Merged point-in-time view of every thread's ring (threads in
  /// registration order). Safe to call while writers record.
  std::vector<ThreadTrace> Snapshot() const;

  /// The interned-name table; `TraceEvent::name_id` indexes it.
  std::vector<std::string> Names() const;

  /// Clears every ring and drop count. Interned names survive (their ids
  /// are cached in static storage at call sites).
  void Reset();

 private:
  struct ThreadBuffer;

  ThreadBuffer& LocalBuffer();

  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> enabled_{false};
  const uint64_t id_;  // unique across all recorders ever made
  mutable std::mutex mu_;
  std::vector<std::string> names_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  size_t thread_capacity_ = kDefaultThreadCapacity;
};

#if REACH_METRICS

/// RAII scope recording one span into a recorder (the global one by
/// default): start time at construction, one ring append at destruction
/// (or an early `End()`). Nesting depth is tracked per thread. When the
/// recorder is disabled at construction time the span is inert.
class TraceSpan {
 public:
  explicit TraceSpan(uint32_t name_id,
                     TraceRecorder& recorder = TraceRecorder::Global());
  ~TraceSpan() { End(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Ends the span now; the destructor then records nothing.
  void End();

 private:
  TraceRecorder* recorder_;  // null once ended or when inert
  uint32_t name_id_ = 0;
  uint32_t depth_ = 0;
  uint64_t start_ns_ = 0;
};

#else  // !REACH_METRICS

/// REACH_METRICS=0 shell: constructible from the same arguments, does
/// nothing, occupies nothing the optimizer keeps.
class TraceSpan {
 public:
  explicit TraceSpan(uint32_t, TraceRecorder& = TraceRecorder::Global()) {}
  void End() {}
};

#endif  // REACH_METRICS

/// Renders a recorder snapshot as Chrome trace-event JSON (the format
/// chrome://tracing and https://ui.perfetto.dev load directly): one
/// complete ("ph":"X") event per span, instant ("ph":"i") events for
/// markers, plus process/thread-name metadata. Timestamps are
/// microseconds since the recorder epoch. See docs/TRACING.md.
class TraceExporter {
 public:
  explicit TraceExporter(const TraceRecorder& recorder = TraceRecorder::Global())
      : recorder_(recorder) {}

  std::string ToChromeJson() const;

  /// Writes `ToChromeJson()` to `path`; returns false on I/O failure.
  bool WriteChromeJsonFile(const std::string& path) const;

 private:
  const TraceRecorder& recorder_;
};

}  // namespace reach

// Span macros: `REACH_TRACE_SPAN("serve.query");` opens a span covering
// the rest of the enclosing scope, interning the name once per call site.
// With REACH_METRICS=0 both macros expand to a no-op statement.
#if REACH_METRICS
#define REACH_TRACE_CONCAT2_(a, b) a##b
#define REACH_TRACE_CONCAT_(a, b) REACH_TRACE_CONCAT2_(a, b)
#define REACH_TRACE_SPAN(name_literal)                                    \
  static const uint32_t REACH_TRACE_CONCAT_(reach_trace_name_,            \
                                            __LINE__) =                   \
      ::reach::TraceRecorder::Global().Intern(name_literal);              \
  ::reach::TraceSpan REACH_TRACE_CONCAT_(reach_trace_span_, __LINE__)(    \
      REACH_TRACE_CONCAT_(reach_trace_name_, __LINE__))
#define REACH_TRACE_INSTANT(name_literal)                                 \
  do {                                                                    \
    static const uint32_t reach_trace_instant_name_ =                     \
        ::reach::TraceRecorder::Global().Intern(name_literal);            \
    ::reach::TraceRecorder::Global().RecordInstant(                       \
        reach_trace_instant_name_);                                       \
  } while (0)
#else
#define REACH_TRACE_SPAN(name_literal) \
  do {                                 \
  } while (0)
#define REACH_TRACE_INSTANT(name_literal) \
  do {                                    \
  } while (0)
#endif

#endif  // REACH_OBS_TRACE_H_
