#ifndef REACH_OBS_BUILD_PHASE_TIMER_H_
#define REACH_OBS_BUILD_PHASE_TIMER_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/query_probe.h"  // for REACH_METRICS
#include "obs/trace.h"

namespace reach {

/// One named slice of an index build (e.g. condense -> order -> label ->
/// prune for the pruned 2-hop), recorded by `BuildPhaseTimer`.
struct PhaseTiming {
  std::string name;
  std::chrono::nanoseconds elapsed{0};
};

/// RAII scope timing one build phase into a `PhaseTiming` list (normally
/// `IndexStats::phases`). Phases append in execution order; nesting is
/// allowed and simply records both scopes. Compiled out (records nothing)
/// when REACH_METRICS=0.
///
///   void SomeIndex::Build(const Digraph& g) {
///     BuildStatsScope build(&stats_);
///     { BuildPhaseTimer t(&stats_.phases, "order"); ComputeOrder(g); }
///     { BuildPhaseTimer t(&stats_.phases, "label"); BuildLabels(g); }
///   }
class BuildPhaseTimer {
 public:
  BuildPhaseTimer(std::vector<PhaseTiming>* phases, std::string name)
#if REACH_METRICS
      : phases_(phases),
        name_(std::move(name)),
        start_(std::chrono::steady_clock::now()) {
  }
#else
  {
    (void)phases;
    (void)name;
  }
#endif

  ~BuildPhaseTimer() { Stop(); }

  /// Ends the phase now instead of at scope exit; the destructor then
  /// records nothing. Lets sequential phases share one scope:
  ///   BuildPhaseTimer t1(&phases, "order"); ...; t1.Stop();
  ///   BuildPhaseTimer t2(&phases, "label"); ...
  void Stop() {
#if REACH_METRICS
    if (phases_ == nullptr) return;
    const auto end = std::chrono::steady_clock::now();
    // Mirror the phase onto the trace timeline (no-op while tracing is
    // disabled), so build breakdowns line up with pool-worker spans.
    TraceRecorder::Global().RecordTimed("build." + name_, start_, end);
    phases_->push_back(
        {std::move(name_), std::chrono::duration_cast<std::chrono::nanoseconds>(
                               end - start_)});
    phases_ = nullptr;
#endif
  }

  BuildPhaseTimer(const BuildPhaseTimer&) = delete;
  BuildPhaseTimer& operator=(const BuildPhaseTimer&) = delete;

 private:
#if REACH_METRICS
  std::vector<PhaseTiming>* phases_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
#endif
};

/// Best-effort peak resident-set size of the current process in bytes
/// (getrusage ru_maxrss on POSIX; 0 where unavailable). Process-wide and
/// monotonic, so per-build readings are an upper bound — good enough for
/// the "index construction is memory-hungry" observations of the survey.
uint64_t PeakRssBytes();

}  // namespace reach

#endif  // REACH_OBS_BUILD_PHASE_TIMER_H_
