#include "obs/build_phase_timer.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace reach {

uint64_t PeakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<uint64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

}  // namespace reach
