#include "obs/metrics_registry.h"

#include <atomic>
#include <bit>
#include <unordered_map>

namespace reach {

namespace {

// Instruments are identified by a process-unique id, not by address, so a
// destroyed registry (tests create private ones) can never alias a live
// instrument's thread-local cell cache.
std::atomic<uint64_t> g_next_instrument_id{1};

uint64_t NextInstrumentId() {
  return g_next_instrument_id.fetch_add(1, std::memory_order_relaxed);
}

// instrument id -> this thread's cell within that instrument.
thread_local std::unordered_map<uint64_t, void*> tls_cells;

}  // namespace

Counter::Cell& Counter::LocalCell() {
  void*& slot = tls_cells[id_];
  if (slot == nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    cells_.push_back(std::make_unique<Cell>());
    slot = cells_.back().get();
  }
  return *static_cast<Cell*>(slot);
}

void Counter::Add(uint64_t n) {
  if (!*enabled_) return;
  LocalCell().value += n;
}

uint64_t Counter::Value() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& cell : cells_) total += cell->value;
  return total;
}

void Gauge::Set(double value) {
  if (!*enabled_) return;
  std::lock_guard<std::mutex> lock(mu_);
  value_ = value;
}

double Gauge::Value() const {
  std::lock_guard<std::mutex> lock(mu_);
  return value_;
}

Histogram::Cell& Histogram::LocalCell() {
  void*& slot = tls_cells[id_];
  if (slot == nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    cells_.push_back(std::make_unique<Cell>());
    slot = cells_.back().get();
  }
  return *static_cast<Cell*>(slot);
}

void Histogram::Record(uint64_t value) {
  if (!*enabled_) return;
  // Bucket b covers [2^b - 1, 2^(b+1) - 2]: 0 -> b0, 1..2 -> b1, 3..6 -> b2.
  size_t bucket = static_cast<size_t>(std::bit_width(value + 1)) - 1;
  if (bucket >= kNumBuckets) bucket = kNumBuckets - 1;
  Cell& cell = LocalCell();
  ++cell.buckets[bucket];
  ++cell.count;
  cell.sum += value;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot.reset(new Counter(name, &enabled_));
    slot->id_ = NextInstrumentId();
  }
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot.reset(new Gauge(name, &enabled_));
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot.reset(new Histogram(name, &enabled_));
    slot->id_ = NextInstrumentId();
  }
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot merged;
    merged.buckets.assign(Histogram::kNumBuckets, 0);
    {
      std::lock_guard<std::mutex> cells_lock(histogram->mu_);
      for (const auto& cell : histogram->cells_) {
        for (size_t b = 0; b < Histogram::kNumBuckets; ++b) {
          merged.buckets[b] += cell->buckets[b];
        }
        merged.count += cell->count;
        merged.sum += cell->sum;
      }
    }
    while (!merged.buckets.empty() && merged.buckets.back() == 0) {
      merged.buckets.pop_back();
    }
    snapshot.histograms[name] = std::move(merged);
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    std::lock_guard<std::mutex> cells_lock(counter->mu_);
    for (const auto& cell : counter->cells_) cell->value = 0;
  }
  for (const auto& [name, gauge] : gauges_) {
    std::lock_guard<std::mutex> value_lock(gauge->mu_);
    gauge->value_ = 0;
  }
  for (const auto& [name, histogram] : histograms_) {
    std::lock_guard<std::mutex> cells_lock(histogram->mu_);
    for (const auto& cell : histogram->cells_) *cell = Histogram::Cell{};
  }
}

}  // namespace reach
