#ifndef REACH_REDUCTION_REDUCTION_H_
#define REACH_REDUCTION_REDUCTION_H_

#include <vector>

#include "graph/digraph.h"
#include "graph/types.h"

namespace reach {

/// Graph reduction techniques of paper §3.4 (SCARAB [23], ER [54],
/// RCN [53]): shrink the graph *before* indexing, in ways that preserve
/// reachability answers. "These reduction techniques are orthogonal to the
/// indexing techniques" — accordingly they are free functions plus a
/// generic `ReducingIndex` adapter that composes with any
/// `ReachabilityIndex`.

/// Transitive reduction of a DAG: removes every edge (u, v) for which a
/// longer u-v path exists. Reachability is unchanged; index sizes that
/// scale with edges (tree cover inheritance, 2-hop BFS frontiers) shrink.
/// O(V * E) worst case — intended as a preprocessing pass.
Digraph TransitiveReduction(const Digraph& dag);

/// Reachability-equivalence reduction (the ER idea of [54]): vertices with
/// identical out-neighbor sets and identical in-neighbor sets are
/// reachability-equivalent and can be merged into one representative.
struct EquivalenceReduction {
  /// The reduced graph over representatives.
  Digraph graph;
  /// representative_of[v] = reduced-graph vertex standing in for v.
  std::vector<VertexId> representative_of;
  /// Number of vertices merged away (original n - reduced n).
  size_t merged = 0;
};

/// Computes the equivalence reduction of a DAG (or any digraph whose
/// self-loop-free vertices should merge only when truly equivalent).
/// Queries map as Qr(s, t) = s == t || Qr'(rep(s), rep(t)) — equivalent
/// vertices are mutually *unreachable* (identical neighborhoods in a
/// simple digraph), so distinct originals mapping to one representative
/// reach each other iff... they don't; the adapter handles this.
EquivalenceReduction ReduceEquivalentVertices(const Digraph& graph);

}  // namespace reach

#endif  // REACH_REDUCTION_REDUCTION_H_
