#include "reduction/reducing_index.h"

namespace reach {

void ReducingIndex::Build(const Digraph& graph) {
  condensation_ = Condense(graph);
  Digraph current = condensation_.dag;
  if (equivalence_reduce_) {
    equivalence_ = ReduceEquivalentVertices(current);
    current = equivalence_.graph;
  } else {
    equivalence_ = EquivalenceReduction{};
  }
  if (transitive_reduce_) {
    current = TransitiveReduction(current);
  }
  reduced_ = std::move(current);
  inner_->Build(reduced_);
}

bool ReducingIndex::Query(VertexId s, VertexId t) const {
  VertexId cs = condensation_.DagVertex(s);
  VertexId ct = condensation_.DagVertex(t);
  if (cs == ct) return true;
  if (equivalence_reduce_) {
    cs = equivalence_.representative_of[cs];
    ct = equivalence_.representative_of[ct];
    // Distinct SCCs merged by the equivalence reduction have identical
    // neighborhoods in a DAG: they cannot reach each other.
    if (cs == ct) return false;
  }
  return inner_->Query(cs, ct);
}

size_t ReducingIndex::IndexSizeBytes() const {
  size_t bytes = inner_->IndexSizeBytes() +
                 condensation_.scc.component_of.size() * sizeof(VertexId);
  if (equivalence_reduce_) {
    bytes += equivalence_.representative_of.size() * sizeof(VertexId);
  }
  return bytes;
}

std::string ReducingIndex::Name() const {
  std::string name = "reduce(";
  if (equivalence_reduce_) name += "er";
  if (equivalence_reduce_ && transitive_reduce_) name += "+";
  if (transitive_reduce_) name += "tr";
  return name + ")+" + inner_->Name();
}

}  // namespace reach
