#include "reduction/reduction.h"

#include <algorithm>
#include <map>
#include <utility>

#include "traversal/transitive_closure.h"

namespace reach {

Digraph TransitiveReduction(const Digraph& dag) {
  TransitiveClosure tc;
  tc.Build(dag);
  std::vector<Edge> kept;
  for (VertexId u = 0; u < dag.NumVertices(); ++u) {
    const auto neighbors = dag.OutNeighbors(u);
    for (VertexId v : neighbors) {
      // (u, v) is redundant iff some sibling neighbor already reaches v.
      bool redundant = false;
      for (VertexId w : neighbors) {
        if (w != v && tc.Query(w, v)) {
          redundant = true;
          break;
        }
      }
      if (!redundant) kept.push_back({u, v});
    }
  }
  return Digraph::FromEdges(static_cast<VertexId>(dag.NumVertices()),
                            std::move(kept));
}

EquivalenceReduction ReduceEquivalentVertices(const Digraph& graph) {
  const size_t n = graph.NumVertices();
  // Group vertices by their (out-neighbor list, in-neighbor list)
  // signature; CSR neighbor lists are sorted, so direct comparison works.
  using Signature =
      std::pair<std::vector<VertexId>, std::vector<VertexId>>;
  std::map<Signature, std::vector<VertexId>> groups;
  for (VertexId v = 0; v < n; ++v) {
    auto out = graph.OutNeighbors(v);
    auto in = graph.InNeighbors(v);
    Signature sig{{out.begin(), out.end()}, {in.begin(), in.end()}};
    groups[std::move(sig)].push_back(v);
  }

  EquivalenceReduction result;
  result.representative_of.assign(n, 0);
  VertexId next_id = 0;
  for (const auto& [sig, members] : groups) {
    for (VertexId v : members) result.representative_of[v] = next_id;
    ++next_id;
  }
  result.merged = n - next_id;

  std::vector<Edge> edges;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : graph.OutNeighbors(u)) {
      const VertexId ru = result.representative_of[u];
      const VertexId rv = result.representative_of[v];
      if (ru != rv) edges.push_back({ru, rv});
    }
  }
  result.graph = Digraph::FromEdges(next_id, std::move(edges));
  return result;
}

}  // namespace reach
