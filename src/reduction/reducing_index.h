#ifndef REACH_REDUCTION_REDUCING_INDEX_H_
#define REACH_REDUCTION_REDUCING_INDEX_H_

#include <memory>
#include <string>
#include <utility>

#include "core/reachability_index.h"
#include "graph/condensation.h"
#include "reduction/reduction.h"

namespace reach {

/// Composes the §3.4 reduction pipeline with any inner index:
///
///   input graph --Tarjan condensation--> DAG
///               --[optional] equivalence reduction (ER [54])-->
///               --[optional] transitive reduction--> reduced DAG
///               --> inner index
///
/// Queries map through the pipeline: same SCC -> true; distinct vertices
/// merged by the equivalence reduction are mutually unreachable in a DAG
/// -> false; everything else is the inner index's answer on
/// representatives. The survey's point — reductions are orthogonal
/// accelerators for any indexing technique — is measured by
/// `bench_ablation_reduction`.
class ReducingIndex : public ReachabilityIndex {
 public:
  ReducingIndex(std::unique_ptr<ReachabilityIndex> inner,
                bool equivalence_reduce, bool transitive_reduce)
      : inner_(std::move(inner)),
        equivalence_reduce_(equivalence_reduce),
        transitive_reduce_(transitive_reduce) {}

  void Build(const Digraph& graph) override;
  bool Query(VertexId s, VertexId t) const override;
  size_t IndexSizeBytes() const override;
  bool IsComplete() const override { return inner_->IsComplete(); }
  std::string Name() const override;

  /// Vertices of the graph the inner index actually indexed.
  size_t ReducedNumVertices() const { return reduced_.NumVertices(); }

  /// Edges of the graph the inner index actually indexed.
  size_t ReducedNumEdges() const { return reduced_.NumEdges(); }

 private:
  std::unique_ptr<ReachabilityIndex> inner_;
  bool equivalence_reduce_;
  bool transitive_reduce_;
  Condensation condensation_;
  EquivalenceReduction equivalence_;
  Digraph reduced_;  // the graph handed to the inner index
};

}  // namespace reach

#endif  // REACH_REDUCTION_REDUCING_INDEX_H_
