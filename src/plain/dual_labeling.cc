#include "plain/dual_labeling.h"

#include <vector>

#include "graph/topological.h"
#include "plain/interval_labeling.h"

namespace reach {

void DualLabeling::Build(const Digraph& graph) {
  const IntervalForest forest = BuildIntervalForest(graph, std::nullopt);
  post_ = forest.post;
  subtree_low_ = forest.subtree_low;

  // Collect non-tree links, dropping edges already implied by the forest
  // (tree edges and forward edges).
  link_source_.clear();
  link_target_.clear();
  for (VertexId u = 0; u < graph.NumVertices(); ++u) {
    for (VertexId v : graph.OutNeighbors(u)) {
      if (!SubtreeContains(u, v)) {
        link_source_.push_back(u);
        link_target_.push_back(v);
      }
    }
  }
  const size_t num_links = link_source_.size();

  // Link graph: i -> j iff link i's target tree-reaches link j's source.
  std::vector<Edge> link_edges;
  for (VertexId i = 0; i < num_links; ++i) {
    for (VertexId j = 0; j < num_links; ++j) {
      if (i != j && SubtreeContains(link_target_[i], link_source_[j])) {
        link_edges.push_back({i, j});
      }
    }
  }
  const Digraph link_graph = Digraph::FromEdges(
      static_cast<VertexId>(num_links), std::move(link_edges));

  // Transitive closure of the (acyclic) link graph, reverse-topologically.
  closure_.assign(num_links, DynamicBitset(num_links));
  auto order = TopologicalOrder(link_graph);
  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    const VertexId i = *it;
    closure_[i].Set(i);
    for (VertexId j : link_graph.OutNeighbors(i)) {
      closure_[i].UnionWith(closure_[j]);
    }
  }
  scratch_ = DynamicBitset(num_links);
}

bool DualLabeling::Query(VertexId s, VertexId t) const {
  if (SubtreeContains(s, t)) return true;
  if (link_source_.empty()) return false;
  // Union the closures of every link leaving s's subtree, then test
  // whether any reached link lands in a subtree containing t.
  scratch_.Clear();
  for (VertexId i = 0; i < link_source_.size(); ++i) {
    if (SubtreeContains(s, link_source_[i])) {
      scratch_.UnionWith(closure_[i]);
    }
  }
  for (VertexId j = 0; j < link_target_.size(); ++j) {
    if (scratch_.Test(j) && SubtreeContains(link_target_[j], t)) return true;
  }
  return false;
}

size_t DualLabeling::IndexSizeBytes() const {
  size_t bytes = (post_.size() + subtree_low_.size()) * sizeof(uint32_t) +
                 (link_source_.size() + link_target_.size()) *
                     sizeof(VertexId);
  for (const DynamicBitset& row : closure_) bytes += row.MemoryBytes();
  return bytes;
}

}  // namespace reach
