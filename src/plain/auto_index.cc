#include "plain/auto_index.h"

#include "core/index_factory.h"

namespace reach {

IndexChoice ChoosePlainIndexSpec(const GraphStats& stats) {
  const size_t n = stats.num_vertices;
  // After condensation the DAG has num_sccs vertices; edges <= num_edges.
  const double dag_density =
      stats.num_sccs == 0
          ? 0
          : static_cast<double>(stats.num_edges) / stats.num_sccs;
  if (dag_density <= 1.25) {
    return {"treecover",
            "tree-like after condensation: interval inheritance stays "
            "near-linear and queries are two comparisons"};
  }
  if (n <= 8192) {
    return {"pll",
            "small graph: the complete 2-hop builds in milliseconds and "
            "answers from label intersections alone"};
  }
  const bool deep =
      stats.condensation_depth * 20 >= stats.num_sccs && stats.num_sccs > 0;
  if (deep) {
    return {"grail",
            "large and deep: interval containment rejects most negative "
            "queries and the guided DFS stays short"};
  }
  return {"bfl",
          "large and shallow: Bloom-filter labels build linearly and "
          "reject unreachable pairs without traversal"};
}

void AutoIndex::Build(const Digraph& graph) {
  BuildStatsScope build(&build_stats_);
  {
    BuildPhaseTimer timer(&build_stats_.phases, "graph_stats");
    stats_ = ComputeGraphStats(graph);
  }
  choice_ = ChoosePlainIndexSpec(stats_);
  chosen_ = MakeIndex(choice_.spec).plain;
  chosen_->Build(graph);
  // Surface the chosen index's phase breakdown as our own.
  for (const PhaseTiming& phase : chosen_->Stats().phases) {
    build_stats_.phases.push_back(phase);
  }
  build_stats_.size_bytes = chosen_->Stats().size_bytes;
  build_stats_.num_entries = chosen_->Stats().num_entries;
}

}  // namespace reach
