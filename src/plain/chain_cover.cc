#include "plain/chain_cover.h"

#include <algorithm>

#include "graph/topological.h"

namespace reach {

void ChainCover::Build(const Digraph& graph) {
  const size_t n = graph.NumVertices();
  chain_of_.assign(n, 0);
  pos_in_chain_.assign(n, 0);

  const auto order = TopologicalOrder(graph);
  // Greedy chain cover: extend the chain of an in-neighbor that is still
  // a chain tail, otherwise start a new chain.
  std::vector<bool> is_tail(n, false);
  num_chains_ = 0;
  for (VertexId v : *order) {
    bool extended = false;
    for (VertexId u : graph.InNeighbors(v)) {
      if (is_tail[u]) {
        chain_of_[v] = chain_of_[u];
        pos_in_chain_[v] = pos_in_chain_[u] + 1;
        is_tail[u] = false;
        extended = true;
        break;
      }
    }
    if (!extended) {
      chain_of_[v] = static_cast<uint32_t>(num_chains_++);
      pos_in_chain_[v] = 0;
    }
    is_tail[v] = true;
  }

  // minpos rows in reverse topological order: own position plus the min
  // over successors' rows.
  minpos_.assign(n * num_chains_, kUnreachable);
  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    const VertexId v = *it;
    uint32_t* row = minpos_.data() + static_cast<size_t>(v) * num_chains_;
    row[chain_of_[v]] = pos_in_chain_[v];
    for (VertexId w : graph.OutNeighbors(v)) {
      const uint32_t* succ =
          minpos_.data() + static_cast<size_t>(w) * num_chains_;
      for (size_t c = 0; c < num_chains_; ++c) {
        row[c] = std::min(row[c], succ[c]);
      }
    }
  }
}

bool ChainCover::Query(VertexId s, VertexId t) const {
  return minpos_[static_cast<size_t>(s) * num_chains_ + chain_of_[t]] <=
         pos_in_chain_[t];
}

size_t ChainCover::IndexSizeBytes() const {
  return (chain_of_.size() + pos_in_chain_.size() + minpos_.size()) *
         sizeof(uint32_t);
}

}  // namespace reach
