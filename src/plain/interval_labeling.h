#ifndef REACH_PLAIN_INTERVAL_LABELING_H_
#define REACH_PLAIN_INTERVAL_LABELING_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/digraph.h"
#include "graph/types.h"

namespace reach {

/// A DFS spanning forest of a DAG with post-order interval labels — the
/// foundation of every tree-cover-based index (paper §3.1): for each vertex
/// v, `post[v]` is v's global post-order number and `subtree_low[v]` is the
/// lowest post-order number in v's spanning-tree subtree, so
/// "t is a tree descendant of s" is the O(1) check
/// `subtree_low[s] <= post[t] <= post[s]`.
struct IntervalForest {
  /// Global post-order rank of each vertex (0-based, unique).
  std::vector<uint32_t> post;
  /// Minimum post-order rank within the vertex's spanning-tree subtree.
  std::vector<uint32_t> subtree_low;
  /// Spanning-forest parent, or kInvalidVertex for roots.
  std::vector<VertexId> parent;

  /// True iff `t` lies in the spanning-tree subtree rooted at `s` (which
  /// implies s reaches t in the DAG; tree edges are graph edges).
  bool SubtreeContains(VertexId s, VertexId t) const {
    return subtree_low[s] <= post[t] && post[t] <= post[s];
  }

  /// True iff the edge (u, v) is a spanning-forest edge.
  bool IsTreeEdge(VertexId u, VertexId v) const { return parent[v] == u; }

  /// Bytes held by the three label arrays.
  size_t MemoryBytes() const {
    return post.size() * (2 * sizeof(uint32_t) + sizeof(VertexId));
  }
};

/// Builds a DFS spanning forest of `dag` with post-order intervals.
///
/// The DFS starts from every source (in-degree-0) vertex, so all vertices
/// of a DAG are covered. With `shuffle_seed == nullopt` the traversal is
/// deterministic (children in ascending id order); otherwise root and child
/// orders are randomized by the seed — the "k random spanning trees" device
/// of GRAIL.
///
/// Key DAG property delivered by *graph* DFS post-order (used by GRAIL,
/// BFL, PReaCH): for every edge (u, v), post[v] < post[u]; hence u reaches
/// w implies post[w] <= post[u].
IntervalForest BuildIntervalForest(const Digraph& dag,
                                   std::optional<uint64_t> shuffle_seed);

/// Computes low[v] = min post-order rank over the *entire reachable set* of
/// v (not just the tree subtree), by a reverse-topological sweep:
/// low[v] = min(post[v], min over out-neighbors). This is GRAIL's interval
/// floor: s reaches t implies low[s] <= low[t] and post[t] <= post[s].
std::vector<uint32_t> ComputeReachableLow(const Digraph& dag,
                                          const IntervalForest& forest);

}  // namespace reach

#endif  // REACH_PLAIN_INTERVAL_LABELING_H_
