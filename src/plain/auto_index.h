#ifndef REACH_PLAIN_AUTO_INDEX_H_
#define REACH_PLAIN_AUTO_INDEX_H_

#include <memory>
#include <string>

#include "core/reachability_index.h"
#include "graph/graph_stats.h"

namespace reach {

/// The survey's Table 1, codified as an advisor: inspects the graph's
/// statistics and picks a reachability index, the way §5 envisions a
/// GDBMS optimizer would.
///
/// Heuristics (each mirrors a finding the benchmarks reproduce):
///  * tree-like input (edges ≈ vertices after condensation) -> the
///    tree-cover family is exact and tiny -> "treecover";
///  * small graphs -> the complete 2-hop is affordable and gives the
///    fastest lookups -> "pll";
///  * large and shallow/dense -> linear-build partial indexes with
///    no-false-negative filters dominate -> "bfl";
///  * large and deep (big condensation depth) -> interval filters excel
///    at rejecting, guided search stays cheap -> "grail".
struct IndexChoice {
  std::string spec;       // MakeIndex spec, e.g. "bfl"
  std::string rationale;  // one-line explanation
};

/// Picks a spec for `stats` (see class comment for the rules).
IndexChoice ChoosePlainIndexSpec(const GraphStats& stats);

/// Convenience facade: computes stats, picks, builds. The chosen index and
/// rationale are inspectable.
class AutoIndex : public ReachabilityIndex {
 public:
  AutoIndex() = default;

  void Build(const Digraph& graph) override;
  bool Query(VertexId s, VertexId t) const override {
    return chosen_->Query(s, t);
  }
  size_t IndexSizeBytes() const override {
    return chosen_->IndexSizeBytes();
  }
  bool IsComplete() const override { return chosen_->IsComplete(); }
  std::string Name() const override {
    return "auto[" + (chosen_ ? chosen_->Name() : std::string("?")) + "]";
  }
  QueryProbe Probe() const override {
    return chosen_ ? chosen_->Probe() : QueryProbe{};
  }
  void ResetProbe() const override {
    if (chosen_) chosen_->ResetProbe();
  }

  /// The decision made by the last Build.
  const IndexChoice& choice() const { return choice_; }
  const GraphStats& stats() const { return stats_; }

 private:
  GraphStats stats_;
  IndexChoice choice_;
  std::unique_ptr<ReachabilityIndex> chosen_;
};

}  // namespace reach

#endif  // REACH_PLAIN_AUTO_INDEX_H_
