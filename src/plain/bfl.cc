#include "plain/bfl.h"

#include "graph/rng.h"
#include "graph/topological.h"
#include "plain/interval_labeling.h"

namespace reach {

void Bfl::Build(const Digraph& graph) {
  BuildStatsScope build(&build_stats_);
  ws_.probe().Reset();
  graph_ = &graph;
  const size_t n = graph.NumVertices();
  bloom_out_.assign(n * words_, 0);
  bloom_in_.assign(n * words_, 0);

  BuildPhaseTimer forest_timer(&build_stats_.phases, "interval_forest");
  const IntervalForest forest = BuildIntervalForest(graph, std::nullopt);
  post_ = forest.post;
  subtree_low_ = forest.subtree_low;
  forest_timer.Stop();

  BuildPhaseTimer bloom_timer(&build_stats_.phases, "bloom_sweeps");
  // Seed each vertex's own bit, then one sweep per direction.
  const size_t bits = words_ * 64;
  auto set_own = [&](std::vector<uint64_t>& bloom, VertexId v) {
    const uint64_t h = Mix64(v ^ seed_) % bits;
    bloom[v * words_ + (h >> 6)] |= uint64_t{1} << (h & 63);
  };
  for (VertexId v = 0; v < n; ++v) {
    set_own(bloom_out_, v);
    set_own(bloom_in_, v);
  }
  auto order = TopologicalOrder(graph);
  // Out: reverse topological (successors first).
  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    const VertexId v = *it;
    for (VertexId w : graph.OutNeighbors(v)) {
      for (size_t word = 0; word < words_; ++word) {
        bloom_out_[v * words_ + word] |= bloom_out_[w * words_ + word];
      }
    }
  }
  // In: topological (predecessors first).
  for (VertexId v : *order) {
    for (VertexId w : graph.InNeighbors(v)) {
      for (size_t word = 0; word < words_; ++word) {
        bloom_in_[v * words_ + word] |= bloom_in_[w * words_ + word];
      }
    }
  }
  bloom_timer.Stop();
  build_stats_.size_bytes = IndexSizeBytes();
  build_stats_.num_entries = bloom_out_.size() + bloom_in_.size();
}

bool Bfl::BloomConsistent(VertexId s, VertexId t) const {
  // s -> t requires BloomOut(t) ⊆ BloomOut(s) and BloomIn(s) ⊆ BloomIn(t).
  for (size_t word = 0; word < words_; ++word) {
    if ((bloom_out_[t * words_ + word] & ~bloom_out_[s * words_ + word]) !=
        0) {
      return false;
    }
  }
  for (size_t word = 0; word < words_; ++word) {
    if ((bloom_in_[s * words_ + word] & ~bloom_in_[t * words_ + word]) != 0) {
      return false;
    }
  }
  return true;
}

int Bfl::FilterVerdict(VertexId s, VertexId t) const {
  REACH_PROBE_INC(ws_.probe(), labels_scanned);
  if (s == t) return 1;
  if (subtree_low_[s] <= post_[t] && post_[t] <= post_[s]) return 1;
  if (!BloomConsistent(s, t)) return -1;
  return 0;
}

bool Bfl::Query(VertexId s, VertexId t) const {
  REACH_PROBE_INC(ws_.probe(), queries);
  const int verdict = FilterVerdict(s, t);
  if (verdict > 0) {
    REACH_PROBE_INC(ws_.probe(), positives);
    return true;
  }
  if (verdict < 0) {
    REACH_PROBE_INC(ws_.probe(), label_rejections);
    return false;
  }
  // Guided DFS with per-vertex filter checks.
  REACH_PROBE_INC(ws_.probe(), fallbacks);
  ws_.Prepare(graph_->NumVertices());
  auto& stack = ws_.queue();
  ws_.MarkForward(s);
  stack.push_back(s);
  while (!stack.empty()) {
    const VertexId v = stack.back();
    stack.pop_back();
    REACH_PROBE_INC(ws_.probe(), vertices_visited);
    for (VertexId w : graph_->OutNeighbors(v)) {
      REACH_PROBE_INC(ws_.probe(), edges_scanned);
      if (w == t) {
        REACH_PROBE_INC(ws_.probe(), positives);
        return true;
      }
      if (ws_.IsForwardMarked(w)) continue;
      const int wv = FilterVerdict(w, t);
      if (wv > 0) {
        REACH_PROBE_INC(ws_.probe(), positives);
        return true;
      }
      if (wv == 0) {
        ws_.MarkForward(w);
        stack.push_back(w);
      } else {
        REACH_PROBE_INC(ws_.probe(), filter_prunes);
      }
    }
  }
  return false;
}

size_t Bfl::IndexSizeBytes() const {
  return (bloom_out_.size() + bloom_in_.size()) * sizeof(uint64_t) +
         (post_.size() + subtree_low_.size()) * sizeof(uint32_t);
}

}  // namespace reach
