#include "plain/bfl.h"

#include "graph/rng.h"
#include "graph/topological.h"
#include "par/dependency_levels.h"
#include "par/parallel_for.h"
#include "par/thread_pool.h"
#include "plain/interval_labeling.h"

namespace reach {

void Bfl::Build(const Digraph& graph) {
  BuildStatsScope build(&build_stats_);
  ws_pool_.ResetProbes();
  graph_ = &graph;
  const size_t n = graph.NumVertices();
  bloom_out_.assign(n * words_, 0);
  bloom_in_.assign(n * words_, 0);

  BuildPhaseTimer forest_timer(&build_stats_.phases, "interval_forest");
  const IntervalForest forest = BuildIntervalForest(graph, std::nullopt);
  post_ = forest.post;
  subtree_low_ = forest.subtree_low;
  forest_timer.Stop();

  const size_t threads = ResolveThreads(num_threads_);
  BuildPhaseTimer bloom_timer(&build_stats_.phases, "bloom_sweeps");
  // Seed each vertex's own bit, then one sweep per direction. Rows are
  // disjoint per vertex, so seeding parallelizes freely.
  const size_t bits = words_ * 64;
  auto set_own = [&](std::vector<uint64_t>& bloom, VertexId v) {
    const uint64_t h = Mix64(v ^ seed_) % bits;
    bloom[v * words_ + (h >> 6)] |= uint64_t{1} << (h & 63);
  };
  ParallelForChunked(
      0, n,
      [&](size_t chunk_begin, size_t chunk_end) {
        for (size_t v = chunk_begin; v < chunk_end; ++v) {
          set_own(bloom_out_, v);
          set_own(bloom_in_, v);
        }
      },
      threads);

  auto order = TopologicalOrder(graph);
  auto or_row = [this](std::vector<uint64_t>& bloom, VertexId v, VertexId w) {
    for (size_t word = 0; word < words_; ++word) {
      bloom[v * words_ + word] |= bloom[w * words_ + word];
    }
  };
  if (threads <= 1) {
    // Out: reverse topological (successors first).
    for (auto it = order->rbegin(); it != order->rend(); ++it) {
      const VertexId v = *it;
      for (VertexId w : graph.OutNeighbors(v)) or_row(bloom_out_, v, w);
    }
    // In: topological (predecessors first).
    for (VertexId v : *order) {
      for (VertexId w : graph.InNeighbors(v)) or_row(bloom_in_, v, w);
    }
  } else {
    // Level-parallel sweeps: each vertex's row only reads rows of strictly
    // lower levels, and ORs commute, so the filters come out bit-identical
    // to the serial sweeps.
    auto run_sweep = [&](const DependencyLevels& levels, bool out) {
      for (const std::vector<VertexId>& bucket : levels.buckets) {
        ParallelForChunked(
            0, bucket.size(),
            [&](size_t chunk_begin, size_t chunk_end) {
              for (size_t i = chunk_begin; i < chunk_end; ++i) {
                const VertexId v = bucket[i];
                if (out) {
                  for (VertexId w : graph.OutNeighbors(v)) {
                    or_row(bloom_out_, v, w);
                  }
                } else {
                  for (VertexId w : graph.InNeighbors(v)) {
                    or_row(bloom_in_, v, w);
                  }
                }
              }
            },
            threads);
      }
    };
    const std::vector<VertexId> reverse_order(order->rbegin(), order->rend());
    run_sweep(ComputeDependencyLevels(n, reverse_order,
                                      [&graph](VertexId v, auto&& fn) {
                                        for (VertexId w : graph.OutNeighbors(v))
                                          fn(w);
                                      }),
              /*out=*/true);
    run_sweep(ComputeDependencyLevels(n, *order,
                                      [&graph](VertexId v, auto&& fn) {
                                        for (VertexId w : graph.InNeighbors(v))
                                          fn(w);
                                      }),
              /*out=*/false);
  }
  bloom_timer.Stop();
  build_stats_.size_bytes = IndexSizeBytes();
  build_stats_.num_entries = bloom_out_.size() + bloom_in_.size();
}

bool Bfl::BloomConsistent(VertexId s, VertexId t) const {
  // s -> t requires BloomOut(t) ⊆ BloomOut(s) and BloomIn(s) ⊆ BloomIn(t).
  for (size_t word = 0; word < words_; ++word) {
    if ((bloom_out_[t * words_ + word] & ~bloom_out_[s * words_ + word]) !=
        0) {
      return false;
    }
  }
  for (size_t word = 0; word < words_; ++word) {
    if ((bloom_in_[s * words_ + word] & ~bloom_in_[t * words_ + word]) != 0) {
      return false;
    }
  }
  return true;
}

int Bfl::FilterVerdict(VertexId s, VertexId t) const {
  return FilterVerdictCounted(s, t, ws_pool_.Slot(0).probe());
}

int Bfl::FilterVerdictCounted(VertexId s, VertexId t,
                              [[maybe_unused]] QueryProbe& probe) const {
  REACH_PROBE_INC(probe, labels_scanned);
  if (s == t) return 1;
  if (subtree_low_[s] <= post_[t] && post_[t] <= post_[s]) return 1;
  if (!BloomConsistent(s, t)) return -1;
  return 0;
}

bool Bfl::Query(VertexId s, VertexId t) const {
  return QueryInSlot(s, t, 0);
}

bool Bfl::QueryInSlot(VertexId s, VertexId t, size_t slot) const {
  SearchWorkspace& ws = ws_pool_.Slot(slot);
  REACH_PROBE_INC(ws.probe(), queries);
  const int verdict = FilterVerdictCounted(s, t, ws.probe());
  if (verdict > 0) {
    REACH_PROBE_INC(ws.probe(), positives);
    return true;
  }
  if (verdict < 0) {
    REACH_PROBE_INC(ws.probe(), label_rejections);
    return false;
  }
  // Guided DFS with per-vertex filter checks.
  REACH_PROBE_INC(ws.probe(), fallbacks);
  ws.Prepare(graph_->NumVertices());
  auto& stack = ws.queue();
  ws.MarkForward(s);
  stack.push_back(s);
  while (!stack.empty()) {
    const VertexId v = stack.back();
    stack.pop_back();
    REACH_PROBE_INC(ws.probe(), vertices_visited);
    for (VertexId w : graph_->OutNeighbors(v)) {
      REACH_PROBE_INC(ws.probe(), edges_scanned);
      if (w == t) {
        REACH_PROBE_INC(ws.probe(), positives);
        return true;
      }
      if (ws.IsForwardMarked(w)) continue;
      const int wv = FilterVerdictCounted(w, t, ws.probe());
      if (wv > 0) {
        REACH_PROBE_INC(ws.probe(), positives);
        return true;
      }
      if (wv == 0) {
        ws.MarkForward(w);
        stack.push_back(w);
      } else {
        REACH_PROBE_INC(ws.probe(), filter_prunes);
      }
    }
  }
  return false;
}

size_t Bfl::IndexSizeBytes() const {
  return (bloom_out_.size() + bloom_in_.size()) * sizeof(uint64_t) +
         (post_.size() + subtree_low_.size()) * sizeof(uint32_t);
}

}  // namespace reach
