#ifndef REACH_PLAIN_PRUNED_TWO_HOP_H_
#define REACH_PLAIN_PRUNED_TWO_HOP_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/label_pool.h"
#include "core/mapped_file.h"
#include "core/reachability_index.h"
#include "core/search_workspace.h"
#include "core/workspace_pool.h"
#include "graph/digraph.h"

namespace reach {

/// Total orders that instantiate the TOL framework (paper §3.2): "TOL is a
/// general approach for computing the 2-hop index with a total order of
/// vertices as input, and TFL, DL, and PLL are instantiations of TOL."
enum class VertexOrder {
  /// Decreasing total degree — the DL / PLL instantiation (the paper notes
  /// DL and PLL are equivalent).
  kDegree,
  /// Topological order of the SCC condensation — the TFL instantiation.
  kTopological,
  /// Increasing total degree — a deliberately bad order for ablation.
  kReverseDegree,
  /// Uniformly random order — the ablation baseline.
  kRandom,
};

/// The 2-hop labeling framework of Cohen et al. [14] computed with pruned
/// BFSs under a total order — i.e., TOL [55], covering PLL [49] / DL [25] /
/// TFL [13] as order instantiations (paper §3.2).
///
/// Every vertex v carries two sets of hops: Lin(v) (vertices that reach v)
/// and Lout(v) (vertices v reaches). Qr(s, t) is true iff s == t,
/// s ∈ Lin(t), t ∈ Lout(s), or Lout(s) ∩ Lin(t) ≠ ∅ — the three cases of
/// the paper. Building runs a forward and a backward BFS from each vertex
/// in total-order sequence; a visit of w from hop v is pruned when the
/// labels built so far already answer Qr(v, w) (resp. Qr(w, v)), and when a
/// higher-ranked vertex is reached. This yields a *complete* index on
/// *general* digraphs (no DAG condensation needed — vertices of an SCC are
/// covered by their highest-ranked member).
///
/// Dynamics (the TOL row's "Yes" in Table 1), via `ApplyUpdate`:
///  * Inserts maintain correctness incrementally: for every hop h in
///    Lin(u) ∪ {u}, h is propagated through the new edge (u, v) to all
///    vertices reachable from v. Unlike TOL's full algorithm this may
///    retain redundant entries (redundancy elimination is out of scope);
///    `Build` can be re-run to re-minimize.
///  * Deletes are absorbed without rebuilding (DESIGN.md "Deletions"):
///    the sealed labels are kept as a *superset* labeling (they describe
///    base ∪ every-edge-ever-inserted, which only over-approximates the
///    current graph), the deleted edge goes into a tombstone set consulted
///    by the guided traversals, and a bounded local search classifies the
///    delete. A *locally redundant* delete (u still reaches v another way)
///    provably changes no answer and costs nothing at query time. A
///    *damaging* delete marks the hub ranks whose label entries may now be
///    stale (bounded BFS over the superset adjacency); `AnswerQuery` then
///    trusts only undamaged witnesses, and verifies damaged-witness
///    positives by a label-pruned BFS over the live adjacency — answers
///    stay exact at every damage level. Accumulated damage is the
///    staleness budget of the rebuild-threshold policy: once it crosses
///    `staleness_budget` the batch returns `kDeferredRebuild` and the
///    caller schedules `RebuildFromUpdates()`.
class PrunedTwoHop : public DynamicReachabilityIndex {
 public:
  /// `num_threads` parallelizes the build with rank-batched speculative
  /// pruned BFSs (paraPLL-style): each batch speculates against the
  /// committed label prefix in parallel, then commits in rank order,
  /// redoing exactly the sweeps whose pruning oracle was made stale by an
  /// earlier rank of the same batch. The committed labeling — including
  /// `Save` bytes — is bit-identical to a serial build for any thread
  /// count (docs/PARALLELISM.md has the argument). 0 = `DefaultThreads()`,
  /// 1 = serial.
  explicit PrunedTwoHop(VertexOrder order = VertexOrder::kDegree,
                        uint64_t seed = 0x70'6c'6cULL, size_t num_threads = 0,
                        TwoHopStorageOptions storage = {},
                        size_t staleness_budget = kDefaultStalenessBudget)
      : order_(order),
        seed_(seed),
        num_threads_(num_threads),
        storage_(storage),
        staleness_budget_(staleness_budget) {}

  /// Default `staleness_budget`: damaging deletes tolerated before
  /// `ApplyUpdate` starts returning `kDeferredRebuild`. 0 = unbounded.
  static constexpr size_t kDefaultStalenessBudget = 32;

  void Build(const Digraph& graph) override;
  bool Query(VertexId s, VertexId t) const override;
  size_t IndexSizeBytes() const override;
  /// Complete while label-exact; damaging deletes flip this to false
  /// until `RebuildFromUpdates`/`Build` re-minimizes.
  bool IsComplete() const override { return damage_ == 0; }
  std::string Name() const override;
  QueryProbe Probe() const override { return probes_.Aggregate(); }
  void ResetProbe() const override { probes_.Reset(); }

  size_t PrepareConcurrentQueries(size_t slots) const override {
    if (slots == 0) slots = 1;
    probes_.EnsureSlots(slots);
    // Damaged-witness verification traverses; give every slot its own
    // scratch now — growing mid-fanout would race.
    verify_ws_.EnsureSlots(slots);
    return slots;
  }
  bool QueryInSlot(VertexId s, VertexId t, size_t slot) const override;

  /// The unified write surface (see class comment). Inserts always apply
  /// incrementally; deletes apply incrementally with bounded local
  /// repair. Never rebuilds internally — crossing the staleness budget
  /// only changes the returned status to `kDeferredRebuild`.
  UpdateResult ApplyUpdate(const UpdateBatch& batch) override;
  bool SupportsDeletions() const override { return true; }

  /// Folds tombstones + inserted edges into a fresh build over the live
  /// edge set, resetting damage to zero.
  bool RebuildFromUpdates() override;

  /// Deletions currently answered through the repair machinery (0 =
  /// label-exact) and the configured budget, for tests and policy code.
  size_t Damage() const { return damage_; }
  size_t StalenessBudget() const { return staleness_budget_; }

  /// Serializes the labeling (envelope + ranks + Lin/Lout) to a binary
  /// stream — the persistence piece of the §5 "integration into GDBMSs"
  /// challenge. The label state already reflects any incremental
  /// insertions. Refuses (returns false) while `Damage() > 0`: a damaged
  /// labeling is only exact together with the live tombstone/graph state,
  /// which the stream does not carry — `RebuildFromUpdates()` first.
  /// Envelope format name: "pll" for the whole TOL family.
  bool SupportsSerialization() const override { return true; }
  bool Save(std::ostream& out) const override;

  /// Restores a labeling saved by `Save`. A loaded index answers queries
  /// without the original graph; call `Build` (or keep the graph around)
  /// before using `ApplyUpdate` again. Returns a typed error on malformed
  /// input, leaving the index unspecified.
  LoadResult Load(std::istream& in) override;

  /// Writes an RCHX v2 *snapshot file* (docs/SNAPSHOTS.md): the sealed
  /// pool arrays — flat or compressed, any post-build delta folded in —
  /// laid out page-aligned behind a section table, so `LoadSnapshot` can
  /// mmap the file and serve queries straight off the mapping. Unlike
  /// `Save`, the bytes depend on the storage mode.
  bool SaveSnapshot(std::ostream& out) const;

  /// Crash-safe snapshot write to a file: the stream form above routed
  /// through `WriteFileAtomic` (temp file + fsync + atomic rename), so a
  /// crash or failure mid-write can never tear an existing snapshot at
  /// `path` — it keeps its old bytes until the new ones are durable.
  bool SaveSnapshot(const std::string& path,
                    std::string* error = nullptr) const;

  /// Zero-copy restore of a snapshot written by `SaveSnapshot`: the file
  /// is mmap'd, the section table and pool structure are validated, and
  /// the sealed pools are pointed directly at the mapping — no copy, no
  /// reseal. The mapping is held by the index (and released on the next
  /// `Build`/`Load`/destruction). On failure the result names the
  /// failing section and byte offset; the index is left unspecified.
  LoadResult LoadSnapshot(const std::string& path);
  LoadResult LoadSnapshot(std::shared_ptr<MappedFile> file);

  /// Total number of label entries sum |Lin| + |Lout| — the index-size
  /// measure of §3.2.
  size_t TotalLabelEntries() const;

  /// Number of vertices covered by the (built or loaded) labeling.
  size_t NumIndexedVertices() const { return rank_.size(); }

  /// True when the sealed labels live in block-compressed pools.
  bool CompressedStorage() const { return compressed_; }
  /// True when a `budget_mb` bound was requested but even the coarsest
  /// storage tier exceeds it.
  bool BudgetExceeded() const { return budget_exceeded_; }
  const TwoHopStorageOptions& Storage() const { return storage_; }

  /// The hop ranks labeling `v` (ascending), for tests / ablation benches:
  /// the sealed pool slice merged with any post-build delta entries.
  std::vector<uint32_t> InLabels(VertexId v) const;
  std::vector<uint32_t> OutLabels(VertexId v) const;

 private:
  void ComputeOrder(const Digraph& graph);
  void BuildLabels(const Digraph& graph);
  void BuildLabelsParallel(const Digraph& graph, size_t threads);
  void SealLabels();
  // Live adjacency: base graph minus tombstones, plus inserted extras.
  template <typename Fn>
  void ForEachOut(VertexId v, Fn&& fn) const;
  template <typename Fn>
  void ForEachIn(VertexId v, Fn&& fn) const;
  // Superset adjacency: base ∪ every edge ever inserted, tombstones
  // ignored — the graph the sealed labels are exact for.
  template <typename Fn>
  void ForEachOutSuperset(VertexId v, Fn&& fn) const;
  template <typename Fn>
  void ForEachInSuperset(VertexId v, Fn&& fn) const;
  // Build-time pruning oracle over the (unsealed) nested label vectors.
  bool LabelQuery(VertexId s, VertexId t) const;
  // The three-case 2-hop test on the sealed pools + delta overlay — the
  // single query hot path every entry point (Query, QueryInSlot, and
  // wrapper indexes calling either) routes through. With zero damage it
  // is the label test verbatim; under damage it layers the witness-trust
  // protocol (`slot` picks the verification scratch).
  bool AnswerQuery(VertexId s, VertexId t, size_t slot = 0) const;
  // The plain label test: exact for the superset graph, hence exact
  // negatives (and, with zero damage, exact positives) for the live one.
  bool SupersetAnswer(VertexId s, VertexId t) const;
  // Damage-mode answer: trusted witness -> true; no witness -> false;
  // only damaged witnesses -> label-pruned BFS over the live adjacency.
  bool DamagedAnswer(VertexId s, VertexId t, size_t slot) const;
  // Exact live-graph reachability check, pruned at vertices whose
  // superset answer is already negative.
  bool VerifyReach(VertexId s, VertexId t, size_t slot) const;

  // ApplyUpdate helpers. Both return true when graph state changed.
  bool ApplyInsert(VertexId s, VertexId t);
  bool ApplyDelete(VertexId s, VertexId t);
  // True iff u still reaches v within `kLocalSearchBudget` visits of the
  // post-delete graph — the delete is then provably answer-preserving.
  bool LocallyRedundant(VertexId u, VertexId v) const;
  // Marks the hub ranks whose entries the delete (u, v) may have staled.
  void MarkDamage(VertexId u, VertexId v);
  // Transitive mark sweep over the superset adjacency; false = budget
  // overrun (caller escalates to the matching *_all_damaged_ flag).
  bool DamageSweep(VertexId start, bool backward);
  bool IsTombstoned(VertexId u, VertexId v) const;
  bool RankDamagedFwd(uint32_t r) const {
    return fwd_all_damaged_ || damaged_fwd_[r] != 0;
  }
  bool RankDamagedBwd(uint32_t r) const {
    return bwd_all_damaged_ || damaged_bwd_[r] != 0;
  }
  void ResetDynamicState();

  // Visit cap for the per-delete local searches (redundancy check and
  // damage marking); overrun degrades to all-ranks-damaged, never to a
  // wrong answer.
  static constexpr size_t kLocalSearchBudget = 4096;

  // Publishes the index.bytes / compression gauges after a (re)seal.
  void PublishStorageGauges(size_t flat_equivalent_bytes) const;

  VertexOrder order_;
  uint64_t seed_;
  size_t num_threads_;
  TwoHopStorageOptions storage_;
  size_t staleness_budget_;
  const Digraph* graph_ = nullptr;
  Digraph owned_graph_;  // used after RebuildFromUpdates
  std::vector<uint32_t> rank_;       // rank_[v] = order position (0 = first)
  std::vector<VertexId> by_rank_;    // inverse of rank_
  // Build-side label accumulators (sorted hop ranks); SealLabels() moves
  // them into the flat pools and leaves them empty.
  std::vector<std::vector<uint32_t>> lin_;
  std::vector<std::vector<uint32_t>> lout_;
  // Sealed query-path layout (docs/QUERY_ENGINE.md). Exactly one of the
  // two representations is live after SealLabels: the flat pools, or —
  // when `storage_` asks for compression (or the budget forces it) — the
  // block-compressed pools (`compressed_` says which).
  FlatLabelPool<uint32_t> lin_pool_;
  FlatLabelPool<uint32_t> lout_pool_;
  CompressedRankPool lin_cpool_;
  CompressedRankPool lout_cpool_;
  bool compressed_ = false;
  bool budget_exceeded_ = false;
  // Keeps a zero-copy snapshot mapping alive while pool views point
  // into it (docs/SNAPSHOTS.md lifetime rules).
  std::shared_ptr<MappedFile> mapping_;
  // Unsealed delta overlay: Lin entries added by inserts after sealing
  // (sorted, disjoint from the pool slice). Empty until the first insert.
  std::vector<std::vector<uint32_t>> delta_lin_;
  bool has_delta_ = false;
  // Edges inserted after Build (delta adjacency on top of *graph_).
  std::vector<std::vector<VertexId>> extra_out_;
  std::vector<std::vector<VertexId>> extra_in_;
  // Deleted edges (sorted per vertex), base and extra alike; the
  // live-adjacency iterators skip them. Deleted extras stay in extra_*
  // on purpose: the superset adjacency (which the sealed + delta labels
  // are exact for, and which damage marking traverses) must keep every
  // edge that ever existed — a later delete can break the alternate path
  // that justified an earlier "locally redundant" one, and the marking
  // BFS is only conservative if it still sees the old route. Empty until
  // the first delete.
  std::vector<std::vector<VertexId>> tomb_out_;
  std::vector<std::vector<VertexId>> tomb_in_;
  // Damaging deletes absorbed since the last (re)build, and the per-rank
  // stale-witness marks they left: damaged_fwd_[r] = hub by_rank_[r]'s
  // forward claims (its Lin entries at other vertices) may be stale;
  // damaged_bwd_[r] dually for its Lout entries. The all_damaged flags
  // are the budget-overrun fallbacks of the bounded marking search.
  size_t damage_ = 0;
  std::vector<uint8_t> damaged_fwd_;
  std::vector<uint8_t> damaged_bwd_;
  bool fwd_all_damaged_ = false;
  bool bwd_all_damaged_ = false;
  mutable SearchWorkspace ws_;
  // Per-slot scratch for damaged-witness verification (slot-parallel
  // queries must not share ws_).
  mutable WorkspacePool verify_ws_;
  mutable ProbePool probes_;
};

}  // namespace reach

#endif  // REACH_PLAIN_PRUNED_TWO_HOP_H_
