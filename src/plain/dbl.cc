#include "plain/dbl.h"

#include <algorithm>
#include <numeric>

#include "graph/condensation.h"
#include "graph/rng.h"

namespace reach {

namespace {
constexpr size_t kNumLandmarks = 64;
}  // namespace

template <typename Fn>
void Dbl::ForEachOut(VertexId v, Fn&& fn) const {
  for (VertexId w : graph_->OutNeighbors(v)) fn(w);
  if (!extra_out_.empty()) {
    for (VertexId w : extra_out_[v]) fn(w);
  }
}

template <typename Fn>
void Dbl::ForEachIn(VertexId v, Fn&& fn) const {
  for (VertexId w : graph_->InNeighbors(v)) fn(w);
  if (!extra_in_.empty()) {
    for (VertexId w : extra_in_[v]) fn(w);
  }
}

void Dbl::Build(const Digraph& graph) {
  graph_ = &graph;
  extra_out_.clear();
  extra_in_.clear();
  const size_t n = graph.NumVertices();

  // Landmarks: the 64 highest-degree vertices. seed_[d] = vertex.
  std::vector<VertexId> by_degree(n);
  std::iota(by_degree.begin(), by_degree.end(), 0);
  std::stable_sort(by_degree.begin(), by_degree.end(),
                   [&](VertexId a, VertexId b) {
                     return graph.Degree(a) > graph.Degree(b);
                   });
  const size_t num_landmarks = std::min(kNumLandmarks, n);

  // Seed labels. DL: a landmark's own bit. BL: every vertex's hash bit.
  dl_out_.assign(n, 0);
  dl_in_.assign(n, 0);
  hash_bit_.assign(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    hash_bit_[v] = uint64_t{1} << (Mix64(v ^ seed_) & 63);
  }
  bl_out_ = hash_bit_;
  bl_in_ = hash_bit_;
  for (size_t d = 0; d < num_landmarks; ++d) {
    dl_out_[by_degree[d]] |= uint64_t{1} << d;
    dl_in_[by_degree[d]] |= uint64_t{1} << d;
  }

  // Propagate to a fixpoint over the condensation: members of an SCC share
  // labels; DAG vertices union their successors (out) / predecessors (in).
  Condensation cond = Condense(graph);
  const VertexId num_components = cond.scc.num_components;
  std::vector<uint64_t> comp_dl_out(num_components, 0);
  std::vector<uint64_t> comp_dl_in(num_components, 0);
  std::vector<uint64_t> comp_bl_out(num_components, 0);
  std::vector<uint64_t> comp_bl_in(num_components, 0);
  for (VertexId v = 0; v < n; ++v) {
    const VertexId c = cond.DagVertex(v);
    comp_dl_out[c] |= dl_out_[v];
    comp_dl_in[c] |= dl_in_[v];
    comp_bl_out[c] |= bl_out_[v];
    comp_bl_in[c] |= bl_in_[v];
  }
  // Tarjan ids are reverse topological: ascending order sees successors
  // first (for out-labels); descending sees predecessors first (for in).
  for (VertexId c = 0; c < num_components; ++c) {
    for (VertexId succ : cond.dag.OutNeighbors(c)) {
      comp_dl_out[c] |= comp_dl_out[succ];
      comp_bl_out[c] |= comp_bl_out[succ];
    }
  }
  for (VertexId c = num_components; c-- > 0;) {
    for (VertexId pred : cond.dag.InNeighbors(c)) {
      comp_dl_in[c] |= comp_dl_in[pred];
      comp_bl_in[c] |= comp_bl_in[pred];
    }
  }
  for (VertexId v = 0; v < n; ++v) {
    const VertexId c = cond.DagVertex(v);
    dl_out_[v] = comp_dl_out[c];
    dl_in_[v] = comp_dl_in[c];
    bl_out_[v] = comp_bl_out[c];
    bl_in_[v] = comp_bl_in[c];
  }
}

int Dbl::FilterVerdict(VertexId s, VertexId t) const {
  if (s == t) return 1;
  if ((dl_out_[s] & dl_in_[t]) != 0) return 1;  // common landmark
  // Contra-positive containment (§3.3): s -> t requires
  // BlOut(t) ⊆ BlOut(s) and BlIn(s) ⊆ BlIn(t).
  if ((bl_out_[t] & ~bl_out_[s]) != 0) return -1;
  if ((bl_in_[s] & ~bl_in_[t]) != 0) return -1;
  return 0;
}

bool Dbl::Query(VertexId s, VertexId t) const {
  const int verdict = FilterVerdict(s, t);
  if (verdict != 0) return verdict > 0;

  // Filter-pruned bidirectional BFS fallback.
  ws_.Prepare(graph_->NumVertices());
  auto& fwd = ws_.queue();
  auto& bwd = ws_.backward_queue();
  ws_.MarkForward(s);
  ws_.MarkBackward(t);
  fwd.push_back(s);
  bwd.push_back(t);
  size_t fwd_head = 0, bwd_head = 0;
  while (fwd_head < fwd.size() && bwd_head < bwd.size()) {
    const bool expand_forward =
        (fwd.size() - fwd_head) <= (bwd.size() - bwd_head);
    if (expand_forward) {
      const size_t level_end = fwd.size();
      for (; fwd_head < level_end; ++fwd_head) {
        const VertexId v = fwd[fwd_head];
        bool hit = false;
        ForEachOut(v, [&](VertexId w) {
          if (hit || ws_.IsBackwardMarked(w)) {
            hit = true;
            return;
          }
          if (!ws_.IsForwardMarked(w)) {
            const int wv = FilterVerdict(w, t);
            if (wv > 0) {
              hit = true;
              return;
            }
            if (wv < 0) return;  // w cannot reach t: prune
            ws_.MarkForward(w);
            fwd.push_back(w);
          }
        });
        if (hit) return true;
      }
    } else {
      const size_t level_end = bwd.size();
      for (; bwd_head < level_end; ++bwd_head) {
        const VertexId v = bwd[bwd_head];
        bool hit = false;
        ForEachIn(v, [&](VertexId w) {
          if (hit || ws_.IsForwardMarked(w)) {
            hit = true;
            return;
          }
          if (!ws_.IsBackwardMarked(w)) {
            const int wv = FilterVerdict(s, w);
            if (wv > 0) {
              hit = true;
              return;
            }
            if (wv < 0) return;  // s cannot reach w: prune
            ws_.MarkBackward(w);
            bwd.push_back(w);
          }
        });
        if (hit) return true;
      }
    }
  }
  return false;
}

UpdateResult Dbl::ApplyUpdate(const UpdateBatch& batch) {
  if (graph_ == nullptr) {
    return UpdateResult::Rejected("no live graph: Build() first");
  }
  // Validate-first: DBL is insertion-only (class comment), so a batch
  // with any delete is rejected whole — no partial application.
  const VertexId n = static_cast<VertexId>(graph_->NumVertices());
  for (const EdgeUpdate& update : batch) {
    if (update.IsDelete()) {
      return UpdateResult::Rejected("dbl is insertion-only (Table 1)");
    }
    if (update.source >= n || update.target >= n) {
      return UpdateResult::Rejected("endpoint out of range");
    }
  }
  size_t applied = 0;
  size_t ignored = 0;
  for (const EdgeUpdate& update : batch) {
    if (ApplyInsert(update.source, update.target)) {
      ++applied;
    } else {
      ++ignored;
    }
  }
  return UpdateResult::Applied(applied, ignored, /*damage_now=*/0,
                               /*budget=*/0);
}

bool Dbl::ApplyInsert(VertexId s, VertexId t) {
  if (s == t) return false;
  if (graph_->HasEdge(s, t)) return false;
  if (extra_out_.empty()) {
    extra_out_.resize(graph_->NumVertices());
    extra_in_.resize(graph_->NumVertices());
  }
  if (std::find(extra_out_[s].begin(), extra_out_[s].end(), t) !=
      extra_out_[s].end()) {
    return false;
  }
  extra_out_[s].push_back(t);
  extra_in_[t].push_back(s);

  // Monotone worklist propagation: out-labels of everything reaching s
  // gain t's out-labels; in-labels of everything t reaches gain s's
  // in-labels. A vertex re-enters the worklist whenever it gains bits, so
  // cascaded gains (e.g., through cycles the new edge closes) propagate
  // fully; termination is guaranteed because each re-entry strictly adds
  // bits to a 128-bit budget per vertex.
  std::vector<VertexId> queue;
  if ((dl_out_[t] & ~dl_out_[s]) != 0 || (bl_out_[t] & ~bl_out_[s]) != 0) {
    dl_out_[s] |= dl_out_[t];
    bl_out_[s] |= bl_out_[t];
    queue.push_back(s);
  }
  for (size_t head = 0; head < queue.size(); ++head) {
    const VertexId v = queue[head];
    ForEachIn(v, [&](VertexId w) {
      const uint64_t new_dl = dl_out_[w] | dl_out_[v];
      const uint64_t new_bl = bl_out_[w] | bl_out_[v];
      if (new_dl == dl_out_[w] && new_bl == bl_out_[w]) return;
      dl_out_[w] = new_dl;
      bl_out_[w] = new_bl;
      queue.push_back(w);
    });
  }
  queue.clear();
  if ((dl_in_[s] & ~dl_in_[t]) != 0 || (bl_in_[s] & ~bl_in_[t]) != 0) {
    dl_in_[t] |= dl_in_[s];
    bl_in_[t] |= bl_in_[s];
    queue.push_back(t);
  }
  for (size_t head = 0; head < queue.size(); ++head) {
    const VertexId v = queue[head];
    ForEachOut(v, [&](VertexId w) {
      const uint64_t new_dl = dl_in_[w] | dl_in_[v];
      const uint64_t new_bl = bl_in_[w] | bl_in_[v];
      if (new_dl == dl_in_[w] && new_bl == bl_in_[w]) return;
      dl_in_[w] = new_dl;
      bl_in_[w] = new_bl;
      queue.push_back(w);
    });
  }
  return true;
}

size_t Dbl::IndexSizeBytes() const {
  return (dl_out_.size() + dl_in_.size() + bl_out_.size() + bl_in_.size() +
          hash_bit_.size()) *
         sizeof(uint64_t);
}

}  // namespace reach
