#include "plain/grail.h"

#include <algorithm>
#include <thread>
#include <vector>

#include "graph/rng.h"
#include "plain/interval_labeling.h"

namespace reach {

void Grail::Build(const Digraph& graph) {
  BuildStatsScope build(&build_stats_);
  ws_.probe().Reset();
  graph_ = &graph;
  const size_t n = graph.NumVertices();
  post_.assign(n * k_, 0);
  low_.assign(n * k_, 0);
  label_only_rejections_ = 0;
  BuildPhaseTimer columns_timer(&build_stats_.phases, "label_columns");
  SplitMix64 seed_stream(seed_);
  std::vector<uint64_t> seeds(k_);
  for (uint64_t& s : seeds) s = seed_stream.Next();

  // Each traversal writes its own column of the label matrix, so the k
  // traversals parallelize without synchronization and the result is
  // identical to the serial build.
  auto build_column = [&](size_t i) {
    const IntervalForest forest = BuildIntervalForest(graph, seeds[i]);
    const std::vector<uint32_t> low = ComputeReachableLow(graph, forest);
    for (VertexId v = 0; v < n; ++v) {
      post_[v * k_ + i] = forest.post[v];
      low_[v * k_ + i] = low[v];
    }
  };
  const size_t workers = std::min(num_threads_, k_);
  if (workers <= 1) {
    for (size_t i = 0; i < k_; ++i) build_column(i);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
      threads.emplace_back([&, w]() {
        for (size_t i = w; i < k_; i += workers) build_column(i);
      });
    }
    for (std::thread& t : threads) t.join();
  }
  columns_timer.Stop();
  build_stats_.size_bytes = IndexSizeBytes();
  build_stats_.num_entries = post_.size() + low_.size();
}

bool Grail::MaybeReachable(VertexId s, VertexId t) const {
  for (size_t i = 0; i < k_; ++i) {
    REACH_PROBE_INC(ws_.probe(), labels_scanned);
    if (low_[s * k_ + i] > low_[t * k_ + i] ||
        post_[t * k_ + i] > post_[s * k_ + i]) {
      return false;  // containment violated: certainly unreachable
    }
  }
  return true;
}

bool Grail::GuidedDfs(VertexId s, VertexId t) const {
  ws_.Prepare(graph_->NumVertices());
  auto& stack = ws_.queue();
  ws_.MarkForward(s);
  stack.push_back(s);
  while (!stack.empty()) {
    const VertexId v = stack.back();
    stack.pop_back();
    REACH_PROBE_INC(ws_.probe(), vertices_visited);
    if (v == t) return true;
    for (VertexId w : graph_->OutNeighbors(v)) {
      REACH_PROBE_INC(ws_.probe(), edges_scanned);
      if (ws_.IsForwardMarked(w)) continue;
      if (!MaybeReachable(w, t)) {
        REACH_PROBE_INC(ws_.probe(), filter_prunes);
        continue;
      }
      ws_.MarkForward(w);
      stack.push_back(w);
    }
  }
  return false;
}

bool Grail::Query(VertexId s, VertexId t) const {
  REACH_PROBE_INC(ws_.probe(), queries);
  if (s == t) {
    REACH_PROBE_INC(ws_.probe(), positives);
    return true;
  }
  if (!MaybeReachable(s, t)) {
    ++label_only_rejections_;
    REACH_PROBE_INC(ws_.probe(), label_rejections);
    return false;
  }
  REACH_PROBE_INC(ws_.probe(), fallbacks);
  const bool reachable = GuidedDfs(s, t);
  if (reachable) REACH_PROBE_INC(ws_.probe(), positives);
  return reachable;
}

size_t Grail::IndexSizeBytes() const {
  return (post_.size() + low_.size()) * sizeof(uint32_t);
}

}  // namespace reach
