#include "plain/grail.h"

#include <algorithm>
#include <vector>

#include "graph/rng.h"
#include "par/parallel_for.h"
#include "par/thread_pool.h"
#include "plain/interval_labeling.h"

namespace reach {

void Grail::Build(const Digraph& graph) {
  BuildStatsScope build(&build_stats_);
  ws_pool_.ResetProbes();
  graph_ = &graph;
  const size_t n = graph.NumVertices();
  post_.assign(n * k_, 0);
  low_.assign(n * k_, 0);
  label_only_rejections_.store(0, std::memory_order_relaxed);
  BuildPhaseTimer columns_timer(&build_stats_.phases, "label_columns");
  SplitMix64 seed_stream(seed_);
  std::vector<uint64_t> seeds(k_);
  for (uint64_t& s : seeds) s = seed_stream.Next();

  // Each traversal writes its own column of the label matrix, so the k
  // traversals parallelize without synchronization and the result is
  // identical to the serial build.
  auto build_column = [&](size_t i) {
    const IntervalForest forest = BuildIntervalForest(graph, seeds[i]);
    const std::vector<uint32_t> low = ComputeReachableLow(graph, forest);
    for (VertexId v = 0; v < n; ++v) {
      post_[v * k_ + i] = forest.post[v];
      low_[v * k_ + i] = low[v];
    }
  };
  ParallelFor(0, k_, build_column,
              std::min(ResolveThreads(num_threads_), k_), /*grain=*/1);
  columns_timer.Stop();
  build_stats_.size_bytes = IndexSizeBytes();
  build_stats_.num_entries = post_.size() + low_.size();
}

bool Grail::MaybeReachable(VertexId s, VertexId t) const {
  return MaybeReachableCounted(s, t, ws_pool_.Slot(0).probe());
}

bool Grail::MaybeReachableCounted(VertexId s, VertexId t,
                                  [[maybe_unused]] QueryProbe& probe) const {
  for (size_t i = 0; i < k_; ++i) {
    REACH_PROBE_INC(probe, labels_scanned);
    if (low_[s * k_ + i] > low_[t * k_ + i] ||
        post_[t * k_ + i] > post_[s * k_ + i]) {
      return false;  // containment violated: certainly unreachable
    }
  }
  return true;
}

bool Grail::GuidedDfs(VertexId s, VertexId t, SearchWorkspace& ws) const {
  ws.Prepare(graph_->NumVertices());
  auto& stack = ws.queue();
  ws.MarkForward(s);
  stack.push_back(s);
  while (!stack.empty()) {
    const VertexId v = stack.back();
    stack.pop_back();
    REACH_PROBE_INC(ws.probe(), vertices_visited);
    if (v == t) return true;
    for (VertexId w : graph_->OutNeighbors(v)) {
      REACH_PROBE_INC(ws.probe(), edges_scanned);
      if (ws.IsForwardMarked(w)) continue;
      if (!MaybeReachableCounted(w, t, ws.probe())) {
        REACH_PROBE_INC(ws.probe(), filter_prunes);
        continue;
      }
      ws.MarkForward(w);
      stack.push_back(w);
    }
  }
  return false;
}

bool Grail::Query(VertexId s, VertexId t) const {
  return QueryInSlot(s, t, 0);
}

bool Grail::QueryInSlot(VertexId s, VertexId t, size_t slot) const {
  SearchWorkspace& ws = ws_pool_.Slot(slot);
  REACH_PROBE_INC(ws.probe(), queries);
  if (s == t) {
    REACH_PROBE_INC(ws.probe(), positives);
    return true;
  }
  if (!MaybeReachableCounted(s, t, ws.probe())) {
    label_only_rejections_.fetch_add(1, std::memory_order_relaxed);
    REACH_PROBE_INC(ws.probe(), label_rejections);
    return false;
  }
  REACH_PROBE_INC(ws.probe(), fallbacks);
  const bool reachable = GuidedDfs(s, t, ws);
  if (reachable) REACH_PROBE_INC(ws.probe(), positives);
  return reachable;
}

size_t Grail::IndexSizeBytes() const {
  return (post_.size() + low_.size()) * sizeof(uint32_t);
}

}  // namespace reach
