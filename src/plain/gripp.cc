#include "plain/gripp.h"

#include <algorithm>

namespace reach {

void Gripp::Build(const Digraph& graph) {
  num_vertices_ = graph.NumVertices();
  tree_.assign(num_vertices_, {});
  hop_order_.clear();
  expanded_.assign(num_vertices_, false);

  std::vector<bool> visited(num_vertices_, false);
  struct Frame {
    VertexId vertex;
    size_t next_child;
  };
  std::vector<Frame> stack;
  uint32_t counter = 0;

  // One DFS per unvisited vertex unrolls the (possibly cyclic) graph into
  // the instance tree: first visits expand, re-visits become hop leaves.
  for (VertexId root = 0; root < num_vertices_; ++root) {
    if (visited[root]) continue;
    visited[root] = true;
    tree_[root].pre = ++counter;
    stack.push_back({root, 0});
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const VertexId v = frame.vertex;
      auto children = graph.OutNeighbors(v);
      if (frame.next_child < children.size()) {
        const VertexId w = children[frame.next_child++];
        if (!visited[w]) {
          visited[w] = true;
          tree_[w].pre = ++counter;
          stack.push_back({w, 0});
        } else {
          hop_order_.push_back({++counter, w});
        }
      } else {
        tree_[v].post = ++counter;
        stack.pop_back();
      }
    }
  }
  // DFS emits hop instances in increasing pre already; keep it explicit.
  std::sort(hop_order_.begin(), hop_order_.end(),
            [](const HopInstance& a, const HopInstance& b) {
              return a.pre < b.pre;
            });

  // Per-vertex sorted instance positions (tree pre + hop pres).
  instance_offsets_.assign(num_vertices_ + 1, 0);
  for (VertexId v = 0; v < num_vertices_; ++v) {
    instance_offsets_[v + 1] = 1;  // tree instance
  }
  for (const HopInstance& hop : hop_order_) {
    ++instance_offsets_[hop.vertex + 1];
  }
  for (VertexId v = 0; v < num_vertices_; ++v) {
    instance_offsets_[v + 1] += instance_offsets_[v];
  }
  instance_pres_.assign(instance_offsets_[num_vertices_], 0);
  std::vector<size_t> cursor(instance_offsets_.begin(),
                             instance_offsets_.end() - 1);
  for (VertexId v = 0; v < num_vertices_; ++v) {
    instance_pres_[cursor[v]++] = tree_[v].pre;
  }
  for (const HopInstance& hop : hop_order_) {
    instance_pres_[cursor[hop.vertex]++] = hop.pre;
  }
  for (VertexId v = 0; v < num_vertices_; ++v) {
    std::sort(instance_pres_.begin() + instance_offsets_[v],
              instance_pres_.begin() + instance_offsets_[v + 1]);
  }
}

bool Gripp::Query(VertexId s, VertexId t) const {
  if (s == t) return true;
  // Per-query scratch: cleared via touched list, not a full sweep.
  std::vector<VertexId> touched;
  std::vector<VertexId> worklist = {s};
  expanded_[s] = true;
  touched.push_back(s);
  bool found = false;

  const uint32_t* t_begin = instance_pres_.data() + instance_offsets_[t];
  const uint32_t* t_end = instance_pres_.data() + instance_offsets_[t + 1];

  for (size_t head = 0; head < worklist.size() && !found; ++head) {
    const TreeInstance& interval = tree_[worklist[head]];
    // Any instance of t strictly inside (pre, post)?
    const uint32_t* it = std::upper_bound(t_begin, t_end, interval.pre);
    if (it != t_end && *it < interval.post) {
      found = true;
      break;
    }
    // Hop instances inside the interval queue their vertices' trees.
    auto hop_it = std::lower_bound(
        hop_order_.begin(), hop_order_.end(), interval.pre,
        [](const HopInstance& h, uint32_t pre) { return h.pre < pre; });
    for (; hop_it != hop_order_.end() && hop_it->pre < interval.post;
         ++hop_it) {
      const VertexId w = hop_it->vertex;
      if (!expanded_[w]) {
        expanded_[w] = true;
        touched.push_back(w);
        worklist.push_back(w);
      }
    }
  }
  for (VertexId v : touched) expanded_[v] = false;
  return found;
}

size_t Gripp::IndexSizeBytes() const {
  return tree_.size() * sizeof(TreeInstance) +
         hop_order_.size() * sizeof(HopInstance) +
         instance_offsets_.size() * sizeof(size_t) +
         instance_pres_.size() * sizeof(uint32_t);
}

}  // namespace reach
