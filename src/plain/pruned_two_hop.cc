#include "plain/pruned_two_hop.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <istream>
#include <numeric>
#include <ostream>
#include <string_view>

#include "core/label_kernels.h"
#include "core/serialize.h"
#include "graph/condensation.h"
#include "graph/rng.h"
#include "obs/metrics_registry.h"
#include "par/parallel_for.h"
#include "par/thread_pool.h"

namespace reach {

namespace {

// Inserts `value` into sorted `v` if absent; returns true if inserted.
bool SortedInsert(std::vector<uint32_t>& v, uint32_t value) {
  auto it = std::lower_bound(v.begin(), v.end(), value);
  if (it != v.end() && *it == value) return false;
  v.insert(it, value);
  return true;
}

// Removes `value` from sorted `v` if present; returns true if removed.
bool SortedErase(std::vector<VertexId>& v, VertexId value) {
  auto it = std::lower_bound(v.begin(), v.end(), value);
  if (it == v.end() || *it != value) return false;
  v.erase(it);
  return true;
}

}  // namespace

void PrunedTwoHop::ComputeOrder(const Digraph& graph) {
  const size_t n = graph.NumVertices();
  by_rank_.resize(n);
  std::iota(by_rank_.begin(), by_rank_.end(), 0);
  switch (order_) {
    case VertexOrder::kDegree:
      std::stable_sort(by_rank_.begin(), by_rank_.end(),
                       [&](VertexId a, VertexId b) {
                         return graph.Degree(a) > graph.Degree(b);
                       });
      break;
    case VertexOrder::kReverseDegree:
      std::stable_sort(by_rank_.begin(), by_rank_.end(),
                       [&](VertexId a, VertexId b) {
                         return graph.Degree(a) < graph.Degree(b);
                       });
      break;
    case VertexOrder::kTopological: {
      // Topological position of each vertex's SCC (Tarjan ids are reverse
      // topological, so higher component id = earlier in topo order);
      // degree breaks ties inside an SCC and between parallel components.
      Condensation cond = Condense(graph);
      std::stable_sort(
          by_rank_.begin(), by_rank_.end(), [&](VertexId a, VertexId b) {
            const VertexId ca = cond.DagVertex(a), cb = cond.DagVertex(b);
            if (ca != cb) return ca > cb;
            return graph.Degree(a) > graph.Degree(b);
          });
      break;
    }
    case VertexOrder::kRandom: {
      Xoshiro256ss rng(seed_);
      for (size_t i = n; i > 1; --i) {
        std::swap(by_rank_[i - 1], by_rank_[rng.NextBounded(i)]);
      }
      break;
    }
  }
  rank_.resize(n);
  for (uint32_t r = 0; r < n; ++r) rank_[by_rank_[r]] = r;
}

template <typename Fn>
void PrunedTwoHop::ForEachOut(VertexId v, Fn&& fn) const {
  if (tomb_out_.empty() || tomb_out_[v].empty()) {
    for (VertexId w : graph_->OutNeighbors(v)) fn(w);
    if (!extra_out_.empty()) {
      for (VertexId w : extra_out_[v]) fn(w);
    }
    return;
  }
  const std::vector<VertexId>& tomb = tomb_out_[v];
  for (VertexId w : graph_->OutNeighbors(v)) {
    if (!std::binary_search(tomb.begin(), tomb.end(), w)) fn(w);
  }
  if (!extra_out_.empty()) {
    for (VertexId w : extra_out_[v]) {
      if (!std::binary_search(tomb.begin(), tomb.end(), w)) fn(w);
    }
  }
}

template <typename Fn>
void PrunedTwoHop::ForEachIn(VertexId v, Fn&& fn) const {
  if (tomb_in_.empty() || tomb_in_[v].empty()) {
    for (VertexId w : graph_->InNeighbors(v)) fn(w);
    if (!extra_in_.empty()) {
      for (VertexId w : extra_in_[v]) fn(w);
    }
    return;
  }
  const std::vector<VertexId>& tomb = tomb_in_[v];
  for (VertexId w : graph_->InNeighbors(v)) {
    if (!std::binary_search(tomb.begin(), tomb.end(), w)) fn(w);
  }
  if (!extra_in_.empty()) {
    for (VertexId w : extra_in_[v]) {
      if (!std::binary_search(tomb.begin(), tomb.end(), w)) fn(w);
    }
  }
}

template <typename Fn>
void PrunedTwoHop::ForEachOutSuperset(VertexId v, Fn&& fn) const {
  for (VertexId w : graph_->OutNeighbors(v)) fn(w);
  if (!extra_out_.empty()) {
    for (VertexId w : extra_out_[v]) fn(w);
  }
}

template <typename Fn>
void PrunedTwoHop::ForEachInSuperset(VertexId v, Fn&& fn) const {
  for (VertexId w : graph_->InNeighbors(v)) fn(w);
  if (!extra_in_.empty()) {
    for (VertexId w : extra_in_[v]) fn(w);
  }
}

void PrunedTwoHop::BuildLabels(const Digraph& graph) {
  const size_t n = graph.NumVertices();
  lin_.assign(n, {});
  lout_.assign(n, {});
  std::vector<VertexId> queue;
  std::vector<uint32_t> visited(n, UINT32_MAX);

  for (uint32_t r = 0; r < n; ++r) {
    const VertexId hop = by_rank_[r];
    // Forward pruned BFS: add hop to Lin of everything it reaches, unless
    // the current labels already answer Qr(hop, x).
    queue.clear();
    queue.push_back(hop);
    visited[hop] = 2 * r;
    for (size_t head = 0; head < queue.size(); ++head) {
      const VertexId x = queue[head];
      ForEachOut(x, [&](VertexId w) {
        if (visited[w] == 2 * r || rank_[w] <= r) return;
        visited[w] = 2 * r;
        if (LabelQuery(hop, w)) return;  // prune: already covered
        lin_[w].push_back(r);            // ranks arrive ascending: sorted
        queue.push_back(w);
      });
    }
    // Backward pruned BFS: add hop to Lout of everything that reaches it.
    queue.clear();
    queue.push_back(hop);
    visited[hop] = 2 * r + 1;
    for (size_t head = 0; head < queue.size(); ++head) {
      const VertexId x = queue[head];
      ForEachIn(x, [&](VertexId w) {
        if (visited[w] == 2 * r + 1 || rank_[w] <= r) return;
        visited[w] = 2 * r + 1;
        if (LabelQuery(w, hop)) return;
        lout_[w].push_back(r);
        queue.push_back(w);
      });
    }
  }
}

void PrunedTwoHop::BuildLabelsParallel(const Digraph& graph, size_t threads) {
  const size_t n = graph.NumVertices();
  lin_.assign(n, {});
  lout_.assign(n, {});
  if (n == 0) return;

  // paraPLL-style speculate/validate/redo over rank batches. Phase 1 runs
  // every sweep of the batch in parallel against the *committed* label
  // prefix only. Phase 2 commits in rank order: a sweep whose pruning
  // oracle never touched a label the batch committed in the meantime is
  // appended verbatim; otherwise the sweep is redone serially against the
  // live labeling. Pruning against fewer labels visits a superset of the
  // serial sweep's vertices, so checking the speculative visited set is a
  // sound (conservative) staleness test — the committed labeling is
  // bit-identical to the serial build for any thread count or batching.

  // Per-worker scratch: epoch-stamped visited marks + BFS queue.
  struct Scratch {
    std::vector<uint32_t> mark;
    uint32_t epoch = 0;
    std::vector<VertexId> queue;
  };
  // Outcome of one speculative sweep (one rank, one direction).
  struct Sweep {
    std::vector<VertexId> labeled;  // label targets, in BFS push order
    std::vector<VertexId> visited;  // every vertex the oracle evaluated
    bool redo = false;              // overflowed the cap: rerun serially
  };

  std::vector<Scratch> scratch(threads);
  for (Scratch& s : scratch) s.mark.assign(n, 0);

  // lin_stamp[w] == batch_epoch iff the current batch committed a Lin(w)
  // entry already (dually lout_stamp) — exactly the reads that can make a
  // speculative oracle stale.
  std::vector<uint32_t> lin_stamp(n, 0), lout_stamp(n, 0);
  uint32_t batch_epoch = 0;

  // The exact serial sweep (identical to BuildLabels), also used for the
  // warmup prefix and for conflict redos.
  auto serial_sweep = [&](uint32_t r, bool forward, Scratch& s) {
    const VertexId hop = by_rank_[r];
    ++s.epoch;
    s.queue.clear();
    s.queue.push_back(hop);
    s.mark[hop] = s.epoch;
    for (size_t head = 0; head < s.queue.size(); ++head) {
      const VertexId x = s.queue[head];
      auto visit = [&](VertexId w) {
        if (s.mark[w] == s.epoch || rank_[w] <= r) return;
        s.mark[w] = s.epoch;
        if (forward ? LabelQuery(hop, w) : LabelQuery(w, hop)) return;
        if (forward) {
          lin_[w].push_back(r);
          lin_stamp[w] = batch_epoch;
        } else {
          lout_[w].push_back(r);
          lout_stamp[w] = batch_epoch;
        }
        s.queue.push_back(w);
      };
      if (forward) {
        for (VertexId w : graph.OutNeighbors(x)) visit(w);
      } else {
        for (VertexId w : graph.InNeighbors(x)) visit(w);
      }
    }
  };

  // A speculative sweep that floods far past the serial one (because the
  // prefix is still thin) is cut off and redone serially — bounding wasted
  // work without affecting the result.
  const size_t visit_cap = std::max<size_t>(1024, n / 16);
  auto speculative_sweep = [&](uint32_t r, bool forward, Scratch& s,
                               Sweep* out) {
    const VertexId hop = by_rank_[r];
    ++s.epoch;
    s.queue.clear();
    s.queue.push_back(hop);
    s.mark[hop] = s.epoch;
    for (size_t head = 0; head < s.queue.size(); ++head) {
      const VertexId x = s.queue[head];
      auto visit = [&](VertexId w) {
        if (s.mark[w] == s.epoch || rank_[w] <= r) return;
        s.mark[w] = s.epoch;
        out->visited.push_back(w);
        if (forward ? LabelQuery(hop, w) : LabelQuery(w, hop)) return;
        out->labeled.push_back(w);
        s.queue.push_back(w);
      };
      if (forward) {
        for (VertexId w : graph.OutNeighbors(x)) visit(w);
      } else {
        for (VertexId w : graph.InNeighbors(x)) visit(w);
      }
      if (out->visited.size() > visit_cap) {
        out->redo = true;
        out->labeled.clear();
        out->visited.clear();
        return;
      }
    }
  };

  // A forward oracle call LabelQuery(hop, w) reads Lout(hop) and Lin(w)
  // for speculatively-visited w (the remaining branches cannot change
  // during the batch); backward is symmetric. The sweep is stale iff the
  // batch committed to one of those label sets after phase 1 snapshotted.
  auto commit_rank = [&](uint32_t r, bool forward, Sweep& sweep) {
    const VertexId hop = by_rank_[r];
    bool conflict = sweep.redo;
    if (!conflict) {
      const std::vector<uint32_t>& hop_stamp =
          forward ? lout_stamp : lin_stamp;
      conflict = hop_stamp[hop] == batch_epoch;
    }
    if (!conflict) {
      const std::vector<uint32_t>& stamp = forward ? lin_stamp : lout_stamp;
      for (VertexId w : sweep.visited) {
        if (stamp[w] == batch_epoch) {
          conflict = true;
          break;
        }
      }
    }
    if (conflict) {
      serial_sweep(r, forward, scratch[0]);
      return;
    }
    std::vector<uint32_t>& stamp = forward ? lin_stamp : lout_stamp;
    auto& labels = forward ? lin_ : lout_;
    for (VertexId w : sweep.labeled) {
      labels[w].push_back(r);
      stamp[w] = batch_epoch;
    }
  };

  const uint32_t num_ranks = static_cast<uint32_t>(n);
  // Warmup: early sweeps run against a nearly empty labeling and would
  // speculatively flood the graph; run them serially.
  uint32_t r = 0;
  const uint32_t warmup = static_cast<uint32_t>(std::min<size_t>(n, 32));
  for (; r < warmup; ++r) {
    serial_sweep(r, /*forward=*/true, scratch[0]);
    serial_sweep(r, /*forward=*/false, scratch[0]);
  }

  // Batches grow geometrically: small while the prefix is thin (frequent
  // conflicts), large once pruning has kicked in and sweeps are cheap and
  // almost always conflict-free.
  size_t batch_size = 2 * threads;
  const size_t max_batch = std::max<size_t>(64 * threads, 256);
  std::vector<Sweep> fwd, bwd;
  while (r < num_ranks) {
    const uint32_t batch_end =
        static_cast<uint32_t>(std::min<size_t>(num_ranks, r + batch_size));
    const size_t count = batch_end - r;
    fwd.assign(count, Sweep{});
    bwd.assign(count, Sweep{});
    ++batch_epoch;

    std::atomic<size_t> next{0};
    ParallelForWorkers(threads, [&](size_t worker) {
      Scratch& s = scratch[worker];
      for (;;) {
        const size_t unit = next.fetch_add(1, std::memory_order_relaxed);
        if (unit >= 2 * count) return;
        const uint32_t rank = r + static_cast<uint32_t>(unit / 2);
        const bool forward = (unit % 2) == 0;
        speculative_sweep(rank, forward, s,
                          forward ? &fwd[unit / 2] : &bwd[unit / 2]);
      }
    });

    for (uint32_t offset = 0; offset < count; ++offset) {
      commit_rank(r + offset, /*forward=*/true, fwd[offset]);
      commit_rank(r + offset, /*forward=*/false, bwd[offset]);
    }
    r = batch_end;
    batch_size = std::min(batch_size * 2, max_batch);
  }
}

void PrunedTwoHop::Build(const Digraph& graph) {
  BuildStatsScope build(&build_stats_);
  probes_.Reset();
  graph_ = &graph;
  ResetDynamicState();
  lin_pool_.Clear();
  lout_pool_.Clear();
  lin_cpool_.Clear();
  lout_cpool_.Clear();
  compressed_ = false;
  mapping_.reset();
  {
    BuildPhaseTimer timer(&build_stats_.phases, "order");
    ComputeOrder(graph);
  }
  {
    BuildPhaseTimer timer(&build_stats_.phases, "label");
    const size_t threads = ResolveThreads(num_threads_);
    if (threads <= 1) {
      BuildLabels(graph);
    } else {
      BuildLabelsParallel(graph, threads);
    }
  }
  {
    BuildPhaseTimer timer(&build_stats_.phases, "seal");
    SealLabels();
  }
  build_stats_.size_bytes = IndexSizeBytes();
  build_stats_.num_entries = TotalLabelEntries();
}

void PrunedTwoHop::SealLabels() {
  lin_pool_.Clear();
  lout_pool_.Clear();
  lin_cpool_.Clear();
  lout_cpool_.Clear();
  compressed_ = false;
  budget_exceeded_ = false;
  mapping_.reset();

  // Flat-equivalent footprint, for the budget decision and the
  // compression-ratio gauge.
  const size_t n = lin_.size();
  size_t entries = 0;
  for (const auto& l : lin_) entries += l.size();
  for (const auto& l : lout_) entries += l.size();
  const size_t flat_bytes =
      2 * (n + 1) * sizeof(uint64_t) + entries * sizeof(uint32_t);

  const size_t budget = storage_.budget_mb * size_t{1024} * 1024;
  const bool over_budget = budget != 0 && flat_bytes > budget;
  if (!storage_.compress && !over_budget) {
    lin_pool_.Seal(std::move(lin_));
    lout_pool_.Seal(std::move(lout_));
  } else {
    // Compressed tiers: requested block size first; when a budget is set
    // and still exceeded, fall back to coarser blocks (fewer skip
    // entries) instead of failing.
    size_t block = CompressedRankPool::ClampBlockEntries(
        storage_.block_entries);
    for (;;) {
      lin_cpool_.Seal(lin_, block);
      lout_cpool_.Seal(lout_, block);
      const size_t bytes =
          lin_cpool_.MemoryBytes() + lout_cpool_.MemoryBytes();
      if (budget == 0 || bytes <= budget ||
          block >= CompressedRankPool::kMaxBlockEntries) {
        budget_exceeded_ = budget != 0 && bytes > budget;
        break;
      }
      block *= 2;
    }
    compressed_ = true;
  }
  std::vector<std::vector<uint32_t>>().swap(lin_);
  std::vector<std::vector<uint32_t>>().swap(lout_);
  delta_lin_.clear();
  has_delta_ = false;
  PublishStorageGauges(flat_bytes);
}

void PrunedTwoHop::PublishStorageGauges(
    size_t flat_equivalent_bytes) const {
  MetricsRegistry& reg = MetricsRegistry::Global();
  const size_t n = rank_.size();
  const size_t bytes =
      compressed_ ? lin_cpool_.MemoryBytes() + lout_cpool_.MemoryBytes()
                  : lin_pool_.MemoryBytes() + lout_pool_.MemoryBytes();
  reg.GetGauge("index.bytes").Set(static_cast<double>(bytes));
  reg.GetGauge("index.bytes_per_vertex")
      .Set(n == 0 ? 0.0
                  : static_cast<double>(bytes) / static_cast<double>(n));
  if (compressed_) {
    reg.GetGauge("index.compression_ratio")
        .Set(bytes == 0 ? 1.0
                        : static_cast<double>(flat_equivalent_bytes) /
                              static_cast<double>(bytes));
  }
  if (storage_.budget_mb != 0) {
    reg.GetGauge("index.budget_exceeded").Set(budget_exceeded_ ? 1 : 0);
  }
}

bool PrunedTwoHop::LabelQuery(VertexId s, VertexId t) const {
  if (s == t) return true;
  const std::vector<uint32_t>& lin_t = lin_[t];
  const std::vector<uint32_t>& lout_s = lout_[s];
  if (std::binary_search(lin_t.begin(), lin_t.end(), rank_[s])) return true;
  if (std::binary_search(lout_s.begin(), lout_s.end(), rank_[t])) {
    return true;
  }
  return IntersectSorted(lout_s.data(), lout_s.size(), lin_t.data(),
                         lin_t.size());
}

bool PrunedTwoHop::SupersetAnswer(VertexId s, VertexId t) const {
  if (s == t) return true;
  if (compressed_) {
    // Same three-case test, on the skip tables: membership decodes at
    // most one block, the intersection only blocks that can overlap.
    if (lin_cpool_.Contains(t, rank_[s])) return true;
    if (lout_cpool_.Contains(s, rank_[t])) return true;
    if (CompressedRankPool::Intersect(lout_cpool_, s, lin_cpool_, t)) {
      return true;
    }
    if (!has_delta_) return false;
    const std::vector<uint32_t>& delta_t = delta_lin_[t];
    if (std::binary_search(delta_t.begin(), delta_t.end(), rank_[s])) {
      return true;
    }
    return lout_cpool_.IntersectWithSorted(s, delta_t.data(),
                                           delta_t.size());
  }
  const std::span<const uint32_t> lout_s = lout_pool_.Slice(s);
  const std::span<const uint32_t> lin_t = lin_pool_.Slice(t);
  if (std::binary_search(lin_t.begin(), lin_t.end(), rank_[s])) return true;
  if (std::binary_search(lout_s.begin(), lout_s.end(), rank_[t])) {
    return true;
  }
  if (IntersectSorted(lout_s.data(), lout_s.size(), lin_t.data(),
                      lin_t.size())) {
    return true;
  }
  if (!has_delta_) return false;
  const std::vector<uint32_t>& delta_t = delta_lin_[t];
  if (std::binary_search(delta_t.begin(), delta_t.end(), rank_[s])) {
    return true;
  }
  return IntersectSorted(lout_s.data(), lout_s.size(), delta_t.data(),
                         delta_t.size());
}

bool PrunedTwoHop::AnswerQuery(VertexId s, VertexId t, size_t slot) const {
  if (s == t) return true;
  // Zero damage is the common case and pays nothing for decremental
  // support: the plain label test is exact (the live graph's reachability
  // relation equals the superset's — every delete so far was locally
  // redundant or there were none).
  if (damage_ == 0) return SupersetAnswer(s, t);
  return DamagedAnswer(s, t, slot);
}

bool PrunedTwoHop::DamagedAnswer(VertexId s, VertexId t, size_t slot) const {
  // Witness-trust protocol (class comment): the labels over-approximate,
  // so "no witness" is an exact negative; a witness whose hub ranks are
  // unmarked is an exact positive (its claims provably survived every
  // damaging delete); only damaged witnesses need live verification.
  bool damaged_witness = false;
  const uint32_t rs = rank_[s];
  const uint32_t rt = rank_[t];
  // Case 1: rank(s) ∈ Lin(t) — hub s claims s -> t (forward claim).
  {
    const bool present =
        compressed_
            ? lin_cpool_.Contains(t, rs)
            : std::binary_search(lin_pool_.Slice(t).begin(),
                                 lin_pool_.Slice(t).end(), rs);
    const bool in_delta =
        !present && has_delta_ &&
        std::binary_search(delta_lin_[t].begin(), delta_lin_[t].end(), rs);
    if (present || in_delta) {
      if (!RankDamagedFwd(rs)) return true;
      damaged_witness = true;
    }
  }
  // Case 2: rank(t) ∈ Lout(s) — hub t claims s -> t (backward claim).
  {
    const bool present =
        compressed_
            ? lout_cpool_.Contains(s, rt)
            : std::binary_search(lout_pool_.Slice(s).begin(),
                                 lout_pool_.Slice(s).end(), rt);
    if (present) {
      if (!RankDamagedBwd(rt)) return true;
      damaged_witness = true;
    }
  }
  // Case 3: any r ∈ Lout(s) ∩ (Lin(t) ∪ Δ(t)) — hub by_rank_[r] claims
  // both s -> hub and hub -> t; trusted iff neither direction is marked.
  // Materializing the merged lists allocates, but damage mode is the
  // explicitly slow lane between budget overrun and rebuild.
  {
    const std::vector<uint32_t> louts = OutLabels(s);
    const std::vector<uint32_t> lints = InLabels(t);
    auto a = louts.begin();
    auto b = lints.begin();
    while (a != louts.end() && b != lints.end()) {
      if (*a < *b) {
        ++a;
      } else if (*b < *a) {
        ++b;
      } else {
        if (!RankDamagedBwd(*a) && !RankDamagedFwd(*a)) return true;
        damaged_witness = true;
        ++a;
        ++b;
      }
    }
  }
  if (!damaged_witness) return false;  // exact: superset has no s-t path
  return VerifyReach(s, t, slot);
}

bool PrunedTwoHop::VerifyReach(VertexId s, VertexId t, size_t slot) const {
  // Exact reachability over the live adjacency, pruned at vertices the
  // superset labels already rule out (w can't reach t in the superset ⇒
  // can't in the live graph). Unbounded on purpose: this is the exactness
  // backstop, and the label pruning keeps the frontier near the damaged
  // region.
  SearchWorkspace& ws =
      slot < verify_ws_.NumSlots() ? verify_ws_.Slot(slot) : ws_;
  ws.Prepare(graph_->NumVertices());
  std::vector<VertexId>& queue = ws.queue();
  queue.push_back(s);
  ws.MarkForward(s);
  for (size_t head = 0; head < queue.size(); ++head) {
    if (queue[head] == t) return true;
    ForEachOut(queue[head], [&](VertexId w) {
      if (ws.IsForwardMarked(w)) return;
      if (!SupersetAnswer(w, t)) return;
      ws.MarkForward(w);
      queue.push_back(w);
    });
  }
  return false;
}

bool PrunedTwoHop::Query(VertexId s, VertexId t) const {
  return QueryInSlot(s, t, 0);
}

bool PrunedTwoHop::QueryInSlot(VertexId s, VertexId t, size_t slot) const {
  [[maybe_unused]] QueryProbe& probe = probes_.Slot(slot);
  REACH_PROBE_INC(probe, queries);
  // Worst-case entries consulted: the Lout(s) ∩ Lin(t) intersection scans
  // both lists end to end. (The build-time oracle is left unprobed — the
  // pruning tests would otherwise swamp the counts.)
  REACH_PROBE_ADD(probe, labels_scanned,
                  (compressed_ ? lout_cpool_.ListEntries(s) +
                                     lin_cpool_.ListEntries(t)
                               : lout_pool_.Slice(s).size() +
                                     lin_pool_.Slice(t).size()) +
                      (has_delta_ ? delta_lin_[t].size() : 0));
  const bool reachable = AnswerQuery(s, t, slot);
  if (reachable) {
    REACH_PROBE_INC(probe, positives);
  } else {
    REACH_PROBE_INC(probe, label_rejections);  // labels ruled it out
  }
  return reachable;
}

UpdateResult PrunedTwoHop::ApplyUpdate(const UpdateBatch& batch) {
  if (graph_ == nullptr) {
    return UpdateResult::Rejected(
        "no live graph: Build() before ApplyUpdate (Load'ed labelings are "
        "read-only)");
  }
  // Validate-first: a rejected batch must leave no partial state behind.
  const VertexId n = static_cast<VertexId>(graph_->NumVertices());
  for (const EdgeUpdate& update : batch) {
    if (update.source >= n || update.target >= n) {
      return UpdateResult::Rejected("endpoint out of range");
    }
  }
  size_t applied = 0;
  size_t ignored = 0;
  for (const EdgeUpdate& update : batch) {
    const bool changed = update.IsInsert()
                             ? ApplyInsert(update.source, update.target)
                             : ApplyDelete(update.source, update.target);
    if (changed) {
      ++applied;
    } else {
      ++ignored;
    }
  }
  return UpdateResult::Applied(applied, ignored, damage_, staleness_budget_);
}

bool PrunedTwoHop::IsTombstoned(VertexId u, VertexId v) const {
  return !tomb_out_.empty() &&
         std::binary_search(tomb_out_[u].begin(), tomb_out_[u].end(), v);
}

bool PrunedTwoHop::ApplyInsert(VertexId s, VertexId t) {
  if (s == t) return false;
  if (IsTombstoned(s, t)) {
    // Resurrecting a deleted edge: the labels already cover it (it is
    // part of the superset), so dropping the tombstone is the whole
    // update. Damage marks stay — conservative, cleared at rebuild.
    SortedErase(tomb_out_[s], t);
    SortedErase(tomb_in_[t], s);
    return true;
  }
  if (graph_->HasEdge(s, t)) return false;
  if (extra_out_.empty()) {
    extra_out_.resize(graph_->NumVertices());
    extra_in_.resize(graph_->NumVertices());
  }
  if (std::find(extra_out_[s].begin(), extra_out_[s].end(), t) !=
      extra_out_[s].end()) {
    return false;
  }
  extra_out_[s].push_back(t);
  extra_in_[t].push_back(s);

  // The damage marks are transitive closures over the superset as of each
  // damaging delete; this insert grows the superset, so re-close them. If
  // t already reaches a damaged tombstone source, everything reaching s
  // now does too (any simple path from t to that source cannot revisit t,
  // so the pre-insert closure decides the check) — symmetrically for the
  // backward marks. Without this, a vertex wired into a damaged region
  // *after* the delete keeps unmarked claims routed through the dead edge,
  // and the witness-trust protocol returns a stale positive.
  if (!damaged_fwd_.empty()) {
    if (!fwd_all_damaged_ && damaged_fwd_[rank_[t]] != 0 &&
        damaged_fwd_[rank_[s]] == 0) {
      if (!DamageSweep(s, /*backward=*/true)) fwd_all_damaged_ = true;
    }
    if (!bwd_all_damaged_ && damaged_bwd_[rank_[s]] != 0 &&
        damaged_bwd_[rank_[t]] == 0) {
      if (!DamageSweep(t, /*backward=*/false)) bwd_all_damaged_ = true;
    }
  }

  // Any pair newly connected by (s, t) decomposes into x -> s (old paths)
  // and t -> y (old paths); the old index answers x -> s with some hop
  // h ∈ Lout(x) ∩ (Lin(s) ∪ {s}). Propagating every such h through the new
  // edge to all of Reach(t) restores the invariant: h lands in Lin(y), so
  // Qr(x, y) finds it. The sealed pool is immutable, so the new entries go
  // into the unsealed delta overlay (sorted, disjoint from the pool
  // slice); the query path consults both. No pruning beyond per-BFS
  // visited marks and already-present labels; this trades label minimality
  // for correctness (see class comment).
  if (delta_lin_.empty()) delta_lin_.resize(graph_->NumVertices());
  has_delta_ = true;
  std::vector<uint32_t> hops = InLabels(s);
  hops.push_back(rank_[s]);
  // One shared sweep computes Reach(t); each hop is then inserted into the
  // Lin of every vertex on the list (equivalent to one unpruned BFS per
  // hop, without re-traversing the edges). The sweep runs over the
  // SUPERSET adjacency, not the live one: the delta overlay must keep
  // describing the superset, or a later tombstone resurrection (which adds
  // no labels) would leave pairs routed through the tombstoned edge
  // without a witness — turning "no witness" into a wrong exact negative.
  std::vector<VertexId> queue;
  ws_.Prepare(graph_->NumVertices());
  queue.push_back(t);
  ws_.MarkForward(t);
  for (size_t head = 0; head < queue.size(); ++head) {
    ForEachOutSuperset(queue[head], [&](VertexId w) {
      if (ws_.MarkForward(w)) queue.push_back(w);
    });
  }
  for (uint32_t h : hops) {
    const VertexId hop = by_rank_[h];
    for (VertexId x : queue) {
      if (x == hop) continue;
      if (compressed_) {
        if (lin_cpool_.Contains(x, h)) continue;
      } else {
        const std::span<const uint32_t> sealed = lin_pool_.Slice(x);
        if (std::binary_search(sealed.begin(), sealed.end(), h)) continue;
      }
      SortedInsert(delta_lin_[x], h);
    }
  }
  return true;
}

bool PrunedTwoHop::ApplyDelete(VertexId s, VertexId t) {
  const bool in_base = graph_->HasEdge(s, t);
  const bool in_extra =
      !extra_out_.empty() &&
      std::find(extra_out_[s].begin(), extra_out_[s].end(), t) !=
          extra_out_[s].end();
  if (!in_base && !in_extra) return false;   // never existed: no-op
  if (IsTombstoned(s, t)) return false;      // already deleted: no-op
  if (tomb_out_.empty()) {
    tomb_out_.resize(graph_->NumVertices());
    tomb_in_.resize(graph_->NumVertices());
  }
  // Tombstone rather than erase, even for extras: the superset adjacency
  // (and the sealed + delta labels that describe it) must keep every edge
  // that ever existed for damage marking to stay conservative.
  auto it = std::lower_bound(tomb_out_[s].begin(), tomb_out_[s].end(), t);
  tomb_out_[s].insert(it, t);
  it = std::lower_bound(tomb_in_[t].begin(), tomb_in_[t].end(), s);
  tomb_in_[t].insert(it, s);
  if (s == t) return true;  // self-loop: reachability is reflexive anyway
  if (LocallyRedundant(s, t)) {
    // u still reaches v in the post-delete graph, so every old path
    // through (s, t) reroutes: the reachability relation is untouched and
    // the labels stay exact. Zero damage, zero query-time cost.
    return true;
  }
  MarkDamage(s, t);
  ++damage_;
  return true;
}

bool PrunedTwoHop::LocallyRedundant(VertexId u, VertexId v) const {
  // Bounded BFS from u over the live adjacency (the tombstone is already
  // in place), pruned at vertices that cannot reach v even in the
  // superset. Overrun counts as "not redundant" — conservative.
  ws_.Prepare(graph_->NumVertices());
  std::vector<VertexId>& queue = ws_.queue();
  queue.push_back(u);
  ws_.MarkForward(u);
  for (size_t head = 0; head < queue.size(); ++head) {
    if (queue[head] == v) return true;
    if (queue.size() > kLocalSearchBudget) return false;
    ForEachOut(queue[head], [&](VertexId w) {
      if (ws_.IsForwardMarked(w)) return;
      if (!SupersetAnswer(w, v)) return;
      ws_.MarkForward(w);
      queue.push_back(w);
    });
  }
  return false;
}

void PrunedTwoHop::MarkDamage(VertexId u, VertexId v) {
  const size_t n = graph_->NumVertices();
  if (damaged_fwd_.empty()) {
    damaged_fwd_.assign(n, 0);
    damaged_bwd_.assign(n, 0);
  }
  // Every hub that reaches u in the *superset* may have forward claims
  // routed through (u, v); every hub the superset reaches from v may have
  // backward claims through it. Marking over the superset adjacency is
  // what keeps this conservative: claims rerouted through since-deleted
  // edges are still traced back to their hubs.
  if (!DamageSweep(u, /*backward=*/true)) fwd_all_damaged_ = true;
  if (!DamageSweep(v, /*backward=*/false)) bwd_all_damaged_ = true;
}

bool PrunedTwoHop::DamageSweep(VertexId start, bool backward) {
  ws_.Prepare(graph_->NumVertices());
  std::vector<VertexId>& queue = ws_.queue();
  queue.push_back(start);
  ws_.MarkForward(start);
  std::vector<uint8_t>& marks = backward ? damaged_fwd_ : damaged_bwd_;
  for (size_t head = 0; head < queue.size(); ++head) {
    marks[rank_[queue[head]]] = 1;
    if (queue.size() > kLocalSearchBudget) return false;
    const auto visit = [&](VertexId w) {
      if (ws_.MarkForward(w)) queue.push_back(w);
    };
    if (backward) {
      ForEachInSuperset(queue[head], visit);
    } else {
      ForEachOutSuperset(queue[head], visit);
    }
  }
  return true;
}

bool PrunedTwoHop::RebuildFromUpdates() {
  if (graph_ == nullptr) return false;
  // Materialize the live edge set (base ∪ extras, minus tombstones) and
  // rebuild over it: folds the delta overlay in, drops the tombstones,
  // and resets damage — the payoff step of the rebuild-threshold policy.
  std::vector<Edge> edges = graph_->Edges();
  if (!extra_out_.empty()) {
    for (VertexId v = 0; v < extra_out_.size(); ++v) {
      for (VertexId w : extra_out_[v]) edges.push_back({v, w});
    }
  }
  if (!tomb_out_.empty()) {
    std::erase_if(edges, [&](const Edge& e) {
      return std::binary_search(tomb_out_[e.source].begin(),
                                tomb_out_[e.source].end(), e.target);
    });
  }
  owned_graph_ = Digraph::FromEdges(
      static_cast<VertexId>(graph_->NumVertices()), std::move(edges));
  Build(owned_graph_);
  return true;
}

void PrunedTwoHop::ResetDynamicState() {
  extra_out_.clear();
  extra_in_.clear();
  tomb_out_.clear();
  tomb_in_.clear();
  delta_lin_.clear();
  has_delta_ = false;
  damage_ = 0;
  damaged_fwd_.clear();
  damaged_bwd_.clear();
  fwd_all_damaged_ = false;
  bwd_all_damaged_ = false;
}

namespace {

// Payload magic, kept from the pre-envelope format so the payload bytes
// after the envelope stay byte-identical to the historical layout.
constexpr uint64_t kMagic = 0x72656163682d3268ULL;  // "reach-2h"

// The envelope's format name: one name for the whole TOL family — the
// stream stores the total order itself, so any `VertexOrder` instance
// can load any other's labeling.
constexpr std::string_view kFormatName = "pll";

using serialize_detail::ReadPod;
using serialize_detail::ReadU32Vec;
using serialize_detail::WritePod;
using serialize_detail::WriteU32Vec;

// RCHX v2 snapshot-file section kinds (private to the "pll" format).
enum SnapshotSectionKind : uint32_t {
  kSecMeta = 1,
  kSecRank = 2,
  kSecByRank = 3,
  // Flat storage.
  kSecLinOffsets = 4,
  kSecLinEntries = 5,
  kSecLoutOffsets = 6,
  kSecLoutEntries = 7,
  // Compressed storage.
  kSecLinVertexBlocks = 8,
  kSecLinSkip = 9,
  kSecLinData = 10,
  kSecLoutVertexBlocks = 11,
  kSecLoutSkip = 12,
  kSecLoutData = 13,
};

// Fixed-layout snapshot metadata (kSecMeta).
struct SnapshotMeta {
  uint64_t payload_magic;  // kMagic
  uint64_t num_vertices;
  uint64_t lin_entries;
  uint64_t lout_entries;
  uint32_t storage;  // 0 = flat pools, 1 = block-compressed pools
  uint32_t block_entries;
};
static_assert(sizeof(SnapshotMeta) == 40);
static_assert(std::is_trivially_copyable_v<SnapshotMeta>);

}  // namespace

bool PrunedTwoHop::Save(std::ostream& out) const {
  // A damaged labeling is only exact together with the live tombstone +
  // graph state, which the stream does not carry: refuse rather than
  // persist stale positives (header contract).
  if (damage_ > 0) return false;
  // The payload layout predates the flat pool and is kept byte-identical:
  // per-vertex sorted label vectors, reconstructed by merging each pool
  // slice with its delta overlay (exactly what the nested-vector layout
  // used to hold).
  if (!WriteEnvelope(out, kFormatName)) return false;
  WritePod(out, kMagic);
  WritePod(out, static_cast<uint64_t>(rank_.size()));
  WriteU32Vec(out, rank_);
  WriteU32Vec(out, by_rank_);
  const size_t n = rank_.size();
  for (VertexId v = 0; v < n; ++v) WriteU32Vec(out, InLabels(v));
  for (VertexId v = 0; v < n; ++v) WriteU32Vec(out, OutLabels(v));
  return static_cast<bool>(out);
}

LoadResult PrunedTwoHop::Load(std::istream& in) {
  LoadResult envelope = ReadEnvelope(in, kFormatName);
  if (!envelope) return envelope;
  // Corrupt payloads name the failing section and its starting byte
  // offset, so a truncated or smashed stream is diagnosable.
  const auto offset = [&in]() -> uint64_t {
    const std::streampos pos = in.tellg();
    return pos < 0 ? 0 : static_cast<uint64_t>(pos);
  };
  uint64_t at = offset();
  uint64_t magic = 0, n = 0;
  if (!ReadPod(in, &magic) || magic != kMagic) {
    return CorruptAt("payload magic", at);
  }
  at = offset();
  if (!ReadPod(in, &n)) return CorruptAt("vertex count", at);
  // Hard sanity cap: label vectors can never exceed n entries.
  at = offset();
  if (!ReadU32Vec(in, &rank_, n) || rank_.size() != n) {
    return CorruptAt("rank table", at);
  }
  at = offset();
  std::vector<uint32_t> by_rank;
  if (!ReadU32Vec(in, &by_rank, n) || by_rank.size() != n) {
    return CorruptAt("by-rank table", at);
  }
  by_rank_.assign(by_rank.begin(), by_rank.end());
  lin_.assign(n, {});
  lout_.assign(n, {});
  for (size_t v = 0; v < n; ++v) {
    at = offset();
    if (!ReadU32Vec(in, &lin_[v], n)) {
      return CorruptAt("Lin[" + std::to_string(v) + "]", at);
    }
  }
  for (size_t v = 0; v < n; ++v) {
    at = offset();
    if (!ReadU32Vec(in, &lout_[v], n)) {
      return CorruptAt("Lout[" + std::to_string(v) + "]", at);
    }
  }
  // Validate ranges so a corrupted stream cannot cause out-of-bounds use.
  for (uint32_t r : rank_) {
    if (r >= n) return {LoadStatus::kCorrupt, "rank table: rank out of range"};
  }
  for (VertexId v : by_rank_) {
    if (v >= n) {
      return {LoadStatus::kCorrupt, "by-rank table: vertex out of range"};
    }
  }
  for (const auto& labels : lin_) {
    for (uint32_t r : labels) {
      if (r >= n) return {LoadStatus::kCorrupt, "Lin labels: rank out of range"};
    }
  }
  for (const auto& labels : lout_) {
    for (uint32_t r : labels) {
      if (r >= n) return {LoadStatus::kCorrupt, "Lout labels: rank out of range"};
    }
  }
  graph_ = nullptr;
  ResetDynamicState();
  SealLabels();
  return LoadResult{};
}

size_t PrunedTwoHop::IndexSizeBytes() const {
  // The flat layout's real footprint: aligned entry blocks plus the CSR
  // offset arrays, the rank translation tables, and any delta overlay.
  size_t delta_bytes = 0;
  if (has_delta_) {
    delta_bytes = delta_lin_.size() * sizeof(std::vector<uint32_t>);
    for (const auto& d : delta_lin_) delta_bytes += d.capacity() * sizeof(uint32_t);
  }
  const size_t pool_bytes =
      compressed_ ? lin_cpool_.MemoryBytes() + lout_cpool_.MemoryBytes()
                  : lin_pool_.MemoryBytes() + lout_pool_.MemoryBytes();
  return pool_bytes +
         (rank_.size() + by_rank_.size()) * sizeof(uint32_t) + delta_bytes;
}

size_t PrunedTwoHop::TotalLabelEntries() const {
  size_t entries =
      compressed_ ? lin_cpool_.NumEntries() + lout_cpool_.NumEntries()
                  : lin_pool_.NumEntries() + lout_pool_.NumEntries();
  for (const auto& d : delta_lin_) entries += d.size();
  return entries;
}

std::vector<uint32_t> PrunedTwoHop::InLabels(VertexId v) const {
  std::vector<uint32_t> merged;
  if (compressed_) {
    lin_cpool_.Decode(v, &merged);
  } else {
    const std::span<const uint32_t> sealed = lin_pool_.Slice(v);
    merged.assign(sealed.begin(), sealed.end());
  }
  if (has_delta_ && !delta_lin_[v].empty()) {
    const std::vector<uint32_t>& delta = delta_lin_[v];
    std::vector<uint32_t> out(merged.size() + delta.size());
    std::merge(merged.begin(), merged.end(), delta.begin(), delta.end(),
               out.begin());
    merged = std::move(out);
  }
  return merged;
}

std::vector<uint32_t> PrunedTwoHop::OutLabels(VertexId v) const {
  if (compressed_) {
    std::vector<uint32_t> out;
    lout_cpool_.Decode(v, &out);
    return out;
  }
  const std::span<const uint32_t> sealed = lout_pool_.Slice(v);
  return {sealed.begin(), sealed.end()};
}

bool PrunedTwoHop::SaveSnapshot(std::ostream& out) const {
  // Same contract as `Save`: never persist a labeling whose exactness
  // depends on live tombstone state.
  if (damage_ > 0) return false;
  const size_t n = rank_.size();
  // A post-build delta overlay is folded into temporary pools so the
  // snapshot always holds one sealed, delta-free labeling. The
  // temporaries must outlive WriteTo (sections point into them).
  FlatLabelPool<uint32_t> merged_flat;
  CompressedRankPool merged_compressed;
  const FlatLabelPool<uint32_t>* lin_flat = &lin_pool_;
  const CompressedRankPool* lin_c = &lin_cpool_;
  if (has_delta_) {
    std::vector<std::vector<uint32_t>> merged(n);
    for (VertexId v = 0; v < n; ++v) merged[v] = InLabels(v);
    if (compressed_) {
      merged_compressed.Seal(merged, lin_cpool_.BlockEntries());
      lin_c = &merged_compressed;
    } else {
      merged_flat.Seal(std::move(merged));
      lin_flat = &merged_flat;
    }
  }

  SnapshotWriter writer{std::string(kFormatName)};
  SnapshotMeta meta{};
  meta.payload_magic = kMagic;
  meta.num_vertices = n;
  meta.storage = compressed_ ? 1 : 0;
  if (compressed_) {
    meta.lin_entries = lin_c->NumEntries();
    meta.lout_entries = lout_cpool_.NumEntries();
    meta.block_entries = static_cast<uint32_t>(lin_c->BlockEntries());
  } else {
    meta.lin_entries = lin_flat->NumEntries();
    meta.lout_entries = lout_pool_.NumEntries();
  }
  writer.AddSection(kSecMeta, &meta, sizeof(meta));
  writer.AddSection(kSecRank, rank_.data(),
                    rank_.size() * sizeof(uint32_t));
  writer.AddSection(kSecByRank, by_rank_.data(),
                    by_rank_.size() * sizeof(VertexId));
  if (compressed_) {
    const auto add_pool = [&writer](uint32_t blocks_kind,
                                    uint32_t skip_kind, uint32_t data_kind,
                                    const CompressedRankPool& pool) {
      writer.AddSection(blocks_kind, pool.VertexBlocksRaw().data(),
                        pool.VertexBlocksRaw().size_bytes());
      writer.AddSection(skip_kind, pool.SkipRaw().data(),
                        pool.SkipRaw().size_bytes());
      writer.AddSection(data_kind, pool.DataRaw().data(),
                        pool.DataRaw().size_bytes());
    };
    add_pool(kSecLinVertexBlocks, kSecLinSkip, kSecLinData, *lin_c);
    add_pool(kSecLoutVertexBlocks, kSecLoutSkip, kSecLoutData,
             lout_cpool_);
  } else {
    writer.AddSection(kSecLinOffsets, lin_flat->OffsetsRaw().data(),
                      lin_flat->OffsetsRaw().size_bytes());
    writer.AddSection(kSecLinEntries, lin_flat->EntriesRaw().data(),
                      lin_flat->EntriesRaw().size_bytes());
    writer.AddSection(kSecLoutOffsets, lout_pool_.OffsetsRaw().data(),
                      lout_pool_.OffsetsRaw().size_bytes());
    writer.AddSection(kSecLoutEntries, lout_pool_.EntriesRaw().data(),
                      lout_pool_.EntriesRaw().size_bytes());
  }
  return writer.WriteTo(out);
}

bool PrunedTwoHop::SaveSnapshot(const std::string& path,
                                std::string* error) const {
  return WriteFileAtomic(
      path, [this](std::ostream& out) { return SaveSnapshot(out); }, error);
}

LoadResult PrunedTwoHop::LoadSnapshot(const std::string& path) {
  std::string error;
  std::shared_ptr<MappedFile> file = MappedFile::Open(path, &error);
  if (file == nullptr) return {LoadStatus::kCorrupt, error};
  return LoadSnapshot(std::move(file));
}

LoadResult PrunedTwoHop::LoadSnapshot(std::shared_ptr<MappedFile> file) {
  SnapshotView view;
  LoadResult parsed = view.Parse(file->data(), file->size(), kFormatName);
  if (!parsed) return parsed;
  const std::span<const uint8_t> meta_bytes = view.Section(kSecMeta);
  if (meta_bytes.size() != sizeof(SnapshotMeta)) {
    return {LoadStatus::kCorrupt, "meta section: wrong size"};
  }
  SnapshotMeta meta;
  std::memcpy(&meta, meta_bytes.data(), sizeof(meta));
  if (meta.payload_magic != kMagic) {
    return {LoadStatus::kCorrupt, "meta section: bad payload magic"};
  }
  if (meta.storage > 1) {
    return {LoadStatus::kCorrupt, "meta section: unknown storage mode"};
  }
  const uint64_t n = meta.num_vertices;
  if (n > UINT32_MAX) {
    return {LoadStatus::kCorrupt, "meta section: vertex count overflow"};
  }
  const std::span<const uint32_t> rank =
      view.TypedSection<uint32_t>(kSecRank);
  const std::span<const uint32_t> by_rank =
      view.TypedSection<uint32_t>(kSecByRank);
  if (rank.size() != n) {
    return {LoadStatus::kCorrupt, "rank section: size mismatch"};
  }
  if (by_rank.size() != n) {
    return {LoadStatus::kCorrupt, "by-rank section: size mismatch"};
  }
  for (uint32_t r : rank) {
    if (r >= n) {
      return {LoadStatus::kCorrupt, "rank section: rank out of range"};
    }
  }
  for (uint32_t v : by_rank) {
    if (v >= n) {
      return {LoadStatus::kCorrupt, "by-rank section: vertex out of range"};
    }
  }

  // All header-level checks passed: reset storage, then point the pools
  // at the mapping. SealFromView validates the pool structure (CSR
  // monotonicity / block tables) before the pool goes live.
  lin_pool_.Clear();
  lout_pool_.Clear();
  lin_cpool_.Clear();
  lout_cpool_.Clear();
  compressed_ = meta.storage == 1;
  if (compressed_) {
    if (!lin_cpool_.SealFromView(
            view.TypedSection<uint32_t>(kSecLinVertexBlocks),
            view.TypedSection<CompressedRankPool::SkipEntry>(kSecLinSkip),
            view.Section(kSecLinData), meta.lin_entries,
            meta.block_entries) ||
        lin_cpool_.NumVertices() != n) {
      return {LoadStatus::kCorrupt, "Lin block sections: malformed"};
    }
    if (!lout_cpool_.SealFromView(
            view.TypedSection<uint32_t>(kSecLoutVertexBlocks),
            view.TypedSection<CompressedRankPool::SkipEntry>(kSecLoutSkip),
            view.Section(kSecLoutData), meta.lout_entries,
            meta.block_entries) ||
        lout_cpool_.NumVertices() != n) {
      return {LoadStatus::kCorrupt, "Lout block sections: malformed"};
    }
  } else {
    const std::span<const uint32_t> lin_entries =
        view.TypedSection<uint32_t>(kSecLinEntries);
    const std::span<const uint32_t> lout_entries =
        view.TypedSection<uint32_t>(kSecLoutEntries);
    if (lin_entries.size() != meta.lin_entries ||
        lout_entries.size() != meta.lout_entries) {
      return {LoadStatus::kCorrupt, "entry sections: size mismatch"};
    }
    if (!lin_pool_.SealFromView(view.TypedSection<uint64_t>(kSecLinOffsets),
                                lin_entries) ||
        lin_pool_.NumVertices() != n) {
      return {LoadStatus::kCorrupt, "Lin offsets: malformed CSR"};
    }
    if (!lout_pool_.SealFromView(
            view.TypedSection<uint64_t>(kSecLoutOffsets), lout_entries) ||
        lout_pool_.NumVertices() != n) {
      return {LoadStatus::kCorrupt, "Lout offsets: malformed CSR"};
    }
  }

  rank_.assign(rank.begin(), rank.end());
  by_rank_.assign(by_rank.begin(), by_rank.end());
  graph_ = nullptr;
  ResetDynamicState();
  budget_exceeded_ = false;
  mapping_ = std::move(file);  // pool views point into this mapping
  const size_t flat_equivalent =
      2 * (static_cast<size_t>(n) + 1) * sizeof(uint64_t) +
      static_cast<size_t>(meta.lin_entries + meta.lout_entries) *
          sizeof(uint32_t);
  PublishStorageGauges(flat_equivalent);
  return LoadResult{};
}

std::string PrunedTwoHop::Name() const {
  switch (order_) {
    case VertexOrder::kDegree:
      return "pll";  // == DL; degree-order TOL
    case VertexOrder::kTopological:
      return "tfl";
    case VertexOrder::kReverseDegree:
      return "tol(revdeg)";
    case VertexOrder::kRandom:
      return "tol(random)";
  }
  return "2hop";
}

}  // namespace reach
