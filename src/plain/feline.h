#ifndef REACH_PLAIN_FELINE_H_
#define REACH_PLAIN_FELINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/reachability_index.h"
#include "core/search_workspace.h"
#include "graph/digraph.h"

namespace reach {

/// Feline [45] (paper §3.4): reachability via two-dimensional dominance
/// coordinates — a "fast refined online search" partial index.
///
/// Each vertex gets coordinates (x, y) from two different topological
/// orders (ours differ by opposite tie-breaking, approximating Feline's
/// heuristic of maximally disagreeing orders). s reaches t only if s
/// dominates t in both coordinates (x(s) < x(t) and y(s) < y(t)); a
/// violation proves unreachability with just two integer comparisons.
/// Dominance-consistent queries fall back to a guided DFS pruned by the
/// same dominance test (plus forward topological levels).
///
/// Index size is only 3 x 4 bytes per vertex. Input must be a DAG.
class Feline : public ReachabilityIndex {
 public:
  Feline() = default;

  void Build(const Digraph& graph) override;
  bool Query(VertexId s, VertexId t) const override;
  size_t IndexSizeBytes() const override;
  bool IsComplete() const override { return false; }
  std::string Name() const override { return "feline"; }

  /// Pure dominance filter: true = maybe reachable, false = certainly not.
  bool MaybeReachable(VertexId s, VertexId t) const {
    if (s == t) return true;
    return x_[s] < x_[t] && y_[s] < y_[t] && level_[s] < level_[t];
  }

 private:
  const Digraph* graph_ = nullptr;
  std::vector<uint32_t> x_;
  std::vector<uint32_t> y_;
  std::vector<uint32_t> level_;
  mutable SearchWorkspace ws_;
};

}  // namespace reach

#endif  // REACH_PLAIN_FELINE_H_
