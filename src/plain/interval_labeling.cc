#include "plain/interval_labeling.h"

#include <algorithm>
#include <numeric>

#include "graph/rng.h"
#include "obs/metrics_registry.h"

namespace reach {

namespace {

// Per-traversal adjacency copy whose child lists are ordered by a random
// priority (or by id when deterministic). Randomizing via a global vertex
// priority permutation is equivalent to shuffling children at every vertex.
struct OrderedAdjacency {
  std::vector<size_t> offsets;
  std::vector<VertexId> targets;

  std::span<const VertexId> Children(VertexId v) const {
    return {targets.data() + offsets[v], targets.data() + offsets[v + 1]};
  }
};

OrderedAdjacency OrderAdjacency(const Digraph& dag,
                                const std::vector<uint32_t>& priority) {
  OrderedAdjacency adj;
  const size_t n = dag.NumVertices();
  adj.offsets.assign(n + 1, 0);
  adj.targets.reserve(dag.NumEdges());
  for (VertexId v = 0; v < n; ++v) {
    auto nbrs = dag.OutNeighbors(v);
    const size_t begin = adj.targets.size();
    adj.targets.insert(adj.targets.end(), nbrs.begin(), nbrs.end());
    std::sort(adj.targets.begin() + begin, adj.targets.end(),
              [&](VertexId a, VertexId b) { return priority[a] < priority[b]; });
    adj.offsets[v + 1] = adj.targets.size();
  }
  return adj;
}

}  // namespace

IntervalForest BuildIntervalForest(const Digraph& dag,
                                   std::optional<uint64_t> shuffle_seed) {
#if REACH_METRICS
  // Shared by every tree-cover-family index; the counters make visible how
  // many DFS sweeps a given configuration costs (GRAIL pays k of them).
  static Counter& builds =
      MetricsRegistry::Global().GetCounter("interval_forest.builds");
  static Counter& vertices =
      MetricsRegistry::Global().GetCounter("interval_forest.vertices_labeled");
  builds.Add(1);
  vertices.Add(dag.NumVertices());
#endif
  const size_t n = dag.NumVertices();
  IntervalForest forest;
  forest.post.assign(n, 0);
  forest.subtree_low.assign(n, 0);
  forest.parent.assign(n, kInvalidVertex);

  // Vertex priorities: identity when deterministic, shuffled otherwise.
  std::vector<uint32_t> priority(n);
  std::iota(priority.begin(), priority.end(), 0);
  if (shuffle_seed.has_value()) {
    Xoshiro256ss rng(*shuffle_seed);
    for (size_t i = n; i > 1; --i) {
      std::swap(priority[i - 1], priority[rng.NextBounded(i)]);
    }
  }
  const OrderedAdjacency adj = OrderAdjacency(dag, priority);

  // Roots: in-degree-0 vertices, in priority order. In a DAG these cover
  // every vertex.
  std::vector<VertexId> roots;
  for (VertexId v = 0; v < n; ++v) {
    if (dag.InDegree(v) == 0) roots.push_back(v);
  }
  std::sort(roots.begin(), roots.end(),
            [&](VertexId a, VertexId b) { return priority[a] < priority[b]; });

  std::vector<bool> visited(n, false);
  struct Frame {
    VertexId vertex;
    size_t next_child;
  };
  std::vector<Frame> stack;
  uint32_t next_post = 0;

  auto run_dfs = [&](VertexId root) {
    visited[root] = true;
    stack.push_back({root, 0});
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const VertexId v = frame.vertex;
      auto children = adj.Children(v);
      if (frame.next_child < children.size()) {
        const VertexId w = children[frame.next_child++];
        if (!visited[w]) {
          visited[w] = true;
          forest.parent[w] = v;
          stack.push_back({w, 0});
        }
      } else {
        // Post-visit: children already numbered; subtree_low is the min
        // over tree children, or own post for leaves.
        uint32_t low = next_post;
        for (VertexId w : children) {
          if (forest.parent[w] == v) {
            low = std::min(low, forest.subtree_low[w]);
          }
        }
        forest.post[v] = next_post;
        forest.subtree_low[v] = low;
        ++next_post;
        stack.pop_back();
      }
    }
  };

  for (VertexId root : roots) {
    if (!visited[root]) run_dfs(root);
  }
  // Safety net for non-DAG callers (e.g., graphs with isolated cycles):
  // cover any remaining vertices so the labels stay well defined.
  for (VertexId v = 0; v < n; ++v) {
    if (!visited[v]) run_dfs(v);
  }
  return forest;
}

std::vector<uint32_t> ComputeReachableLow(const Digraph& dag,
                                          const IntervalForest& forest) {
  const size_t n = dag.NumVertices();
  // Process vertices in increasing post order: every out-neighbor of v has
  // smaller post (DAG property), so its low is final before v's.
  std::vector<VertexId> by_post(n);
  for (VertexId v = 0; v < n; ++v) by_post[forest.post[v]] = v;
  std::vector<uint32_t> low(n);
  for (uint32_t p = 0; p < n; ++p) {
    const VertexId v = by_post[p];
    uint32_t m = forest.post[v];
    for (VertexId w : dag.OutNeighbors(v)) m = std::min(m, low[w]);
    low[v] = m;
  }
  return low;
}

}  // namespace reach
