#ifndef REACH_PLAIN_BFL_H_
#define REACH_PLAIN_BFL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/reachability_index.h"
#include "core/search_workspace.h"
#include "core/workspace_pool.h"
#include "graph/digraph.h"

namespace reach {

/// BFL [41] (paper §3.3): the Bloom-filter approximate transitive closure,
/// "one of the state-of-the-art techniques for plain reachability
/// indexing".
///
/// Every vertex hashes to one bit of an s-bit Bloom filter;
/// BloomOut(v) = filter of v's entire reachable set (computed by one
/// reverse-topological sweep), BloomIn(v) dually. The contra-positive
/// containment of §3.3 gives a no-false-negative rejection test:
/// BloomOut(t) ⊄ BloomOut(s) or BloomIn(s) ⊄ BloomIn(t) proves t is not
/// reachable from s. A DFS spanning-forest interval provides an O(1)
/// positive certificate. Undecided queries run the recursive guided DFS
/// the paper describes: "if all the neighbors of v do not reach the target
/// vertex, then v can be skipped in the traversal".
///
/// Input must be a DAG (wrap in `SccCondensingIndex`).
class Bfl : public ReachabilityIndex {
 public:
  /// `filter_bits` is rounded up to a multiple of 64. `num_threads`
  /// parallelizes the two Bloom sweeps over dependency levels of the DAG
  /// (word-wise ORs commute, so the filters are bit-identical to a serial
  /// build). 0 = `DefaultThreads()`, 1 = serial.
  explicit Bfl(size_t filter_bits = 256, uint64_t seed = 0x62'66'6cULL,
               size_t num_threads = 0)
      : words_((filter_bits + 63) / 64),
        seed_(seed),
        num_threads_(num_threads) {
    if (words_ == 0) words_ = 1;
  }

  void Build(const Digraph& graph) override;
  bool Query(VertexId s, VertexId t) const override;
  size_t IndexSizeBytes() const override;
  bool IsComplete() const override { return false; }
  std::string Name() const override {
    return "bfl(bits=" + std::to_string(words_ * 64) + ")";
  }
  QueryProbe Probe() const override { return ws_pool_.AggregateProbe(); }
  void ResetProbe() const override { ws_pool_.ResetProbes(); }

  size_t PrepareConcurrentQueries(size_t slots) const override {
    if (slots == 0) slots = 1;
    ws_pool_.EnsureSlots(slots);
    return slots;
  }
  bool QueryInSlot(VertexId s, VertexId t, size_t slot) const override;

  /// Pure-filter verdict: +1 reachable (tree interval), -1 unreachable
  /// (Bloom containment violated), 0 undecided.
  int FilterVerdict(VertexId s, VertexId t) const;

 private:
  int FilterVerdictCounted(VertexId s, VertexId t, QueryProbe& probe) const;
  bool BloomConsistent(VertexId s, VertexId t) const;

  size_t words_;
  uint64_t seed_;
  size_t num_threads_;
  const Digraph* graph_ = nullptr;
  std::vector<uint64_t> bloom_out_;  // n * words_
  std::vector<uint64_t> bloom_in_;
  std::vector<uint32_t> post_;         // DFS intervals (positive cert)
  std::vector<uint32_t> subtree_low_;
  mutable WorkspacePool ws_pool_;
};

}  // namespace reach

#endif  // REACH_PLAIN_BFL_H_
