#include "plain/ferrari.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "par/dependency_levels.h"
#include "par/parallel_for.h"
#include "par/thread_pool.h"
#include "plain/interval_labeling.h"

namespace reach {

void Ferrari::Build(const Digraph& graph) {
  BuildStatsScope build(&build_stats_);
  ws_pool_.ResetProbes();
  graph_ = &graph;
  const size_t n = graph.NumVertices();
  BuildPhaseTimer forest_timer(&build_stats_.phases, "interval_forest");
  const IntervalForest forest = BuildIntervalForest(graph, std::nullopt);
  post_ = forest.post;
  forest_timer.Stop();

  BuildPhaseTimer inherit_timer(&build_stats_.phases, "inherit_budget");
  std::vector<VertexId> by_post(n);
  for (VertexId v = 0; v < n; ++v) by_post[forest.post[v]] = v;

  std::vector<std::vector<Interval>> sets(n);
  // The full per-vertex inheritance step: collect own exact interval plus
  // every successor's finished list, coalesce, and enforce the budget.
  // Depends only on the successors' *final* lists, so it runs per
  // dependency level in parallel with results identical to the serial
  // post-order sweep.
  auto inherit_vertex = [&](VertexId v, std::vector<Interval>& scratch) {
    scratch.clear();
    scratch.push_back({forest.subtree_low[v], forest.post[v], true});
    for (VertexId w : graph.OutNeighbors(v)) {
      assert(forest.post[w] < forest.post[v] && "input must be a DAG");
      scratch.insert(scratch.end(), sets[w].begin(), sets[w].end());
    }
    std::sort(scratch.begin(), scratch.end(),
              [](const Interval& a, const Interval& b) {
                return a.begin < b.begin;
              });
    // Coalesce overlapping/adjacent intervals. A fully contained interval
    // changes nothing; a genuine extension is exact only if both parts are.
    std::vector<Interval>& mine = sets[v];
    mine.clear();
    for (const Interval& interval : scratch) {
      if (!mine.empty() && interval.begin <= mine.back().end + 1) {
        if (interval.end > mine.back().end) {
          mine.back().exact = mine.back().exact && interval.exact;
          mine.back().end = interval.end;
        }
      } else {
        mine.push_back(interval);
      }
    }
    // Enforce the budget: repeatedly merge the adjacent pair with the
    // smallest gap; the merge covers the gap, so it is approximate.
    while (mine.size() > k_) {
      size_t best = 0;
      uint32_t best_gap = std::numeric_limits<uint32_t>::max();
      for (size_t i = 0; i + 1 < mine.size(); ++i) {
        const uint32_t gap = mine[i + 1].begin - mine[i].end;
        if (gap < best_gap) {
          best_gap = gap;
          best = i;
        }
      }
      mine[best].end = mine[best + 1].end;
      mine[best].exact = false;
      mine.erase(mine.begin() + best + 1);
    }
  };

  const size_t threads = ResolveThreads(num_threads_);
  if (threads <= 1) {
    std::vector<Interval> scratch;
    for (uint32_t p = 0; p < n; ++p) inherit_vertex(by_post[p], scratch);
  } else {
    // post[w] < post[v] for every edge v -> w, so ascending post order is
    // dependencies-first for deps = out-neighbors.
    const DependencyLevels levels = ComputeDependencyLevels(
        n, by_post, [&graph](VertexId v, auto&& fn) {
          for (VertexId w : graph.OutNeighbors(v)) fn(w);
        });
    for (const std::vector<VertexId>& bucket : levels.buckets) {
      ParallelForChunked(
          0, bucket.size(),
          [&bucket, &inherit_vertex](size_t chunk_begin, size_t chunk_end) {
            std::vector<Interval> scratch;
            for (size_t i = chunk_begin; i < chunk_end; ++i) {
              inherit_vertex(bucket[i], scratch);
            }
          },
          threads);
    }
  }

  offsets_.assign(n + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    offsets_[v + 1] = offsets_[v] + sets[v].size();
  }
  intervals_.clear();
  intervals_.reserve(offsets_[n]);
  for (VertexId v = 0; v < n; ++v) {
    intervals_.insert(intervals_.end(), sets[v].begin(), sets[v].end());
  }
  inherit_timer.Stop();
  build_stats_.size_bytes = IndexSizeBytes();
  build_stats_.num_entries = intervals_.size();
}

int Ferrari::Coverage(VertexId v, uint32_t target_post,
                      [[maybe_unused]] QueryProbe& probe) const {
  REACH_PROBE_INC(probe, labels_scanned);
  const Interval* begin = intervals_.data() + offsets_[v];
  const Interval* end = intervals_.data() + offsets_[v + 1];
  const Interval* it = std::upper_bound(
      begin, end, target_post,
      [](uint32_t value, const Interval& i) { return value < i.begin; });
  if (it == begin) return 0;
  --it;
  if (target_post > it->end) return 0;
  return it->exact ? 2 : 1;
}

bool Ferrari::Query(VertexId s, VertexId t) const {
  return QueryInSlot(s, t, 0);
}

bool Ferrari::QueryInSlot(VertexId s, VertexId t, size_t slot) const {
  SearchWorkspace& ws = ws_pool_.Slot(slot);
  REACH_PROBE_INC(ws.probe(), queries);
  if (s == t) {
    REACH_PROBE_INC(ws.probe(), positives);
    return true;
  }
  const uint32_t target = post_[t];
  const int coverage = Coverage(s, target, ws.probe());
  if (coverage == 0) {
    REACH_PROBE_INC(ws.probe(), label_rejections);
    return false;
  }
  if (coverage == 2) {
    REACH_PROBE_INC(ws.probe(), positives);
    return true;
  }
  // Approximate hit: guided DFS with early exact acceptance.
  REACH_PROBE_INC(ws.probe(), fallbacks);
  ws.Prepare(graph_->NumVertices());
  auto& stack = ws.queue();
  ws.MarkForward(s);
  stack.push_back(s);
  while (!stack.empty()) {
    const VertexId v = stack.back();
    stack.pop_back();
    REACH_PROBE_INC(ws.probe(), vertices_visited);
    for (VertexId w : graph_->OutNeighbors(v)) {
      REACH_PROBE_INC(ws.probe(), edges_scanned);
      if (w == t) {
        REACH_PROBE_INC(ws.probe(), positives);
        return true;
      }
      if (ws.IsForwardMarked(w)) continue;
      const int c = Coverage(w, target, ws.probe());
      if (c == 2) {
        REACH_PROBE_INC(ws.probe(), positives);
        return true;
      }
      if (c == 1) {
        ws.MarkForward(w);
        stack.push_back(w);
      } else {
        REACH_PROBE_INC(ws.probe(), filter_prunes);
      }
    }
  }
  return false;
}

size_t Ferrari::IndexSizeBytes() const {
  return intervals_.size() * sizeof(Interval) +
         offsets_.size() * sizeof(size_t) + post_.size() * sizeof(uint32_t);
}

double Ferrari::ExactFraction() const {
  if (intervals_.empty()) return 1.0;
  size_t exact = 0;
  for (const Interval& i : intervals_) exact += i.exact ? 1 : 0;
  return static_cast<double>(exact) / static_cast<double>(intervals_.size());
}

}  // namespace reach
