#ifndef REACH_PLAIN_IP_LABEL_H_
#define REACH_PLAIN_IP_LABEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/reachability_index.h"
#include "core/search_workspace.h"
#include "graph/digraph.h"

namespace reach {

/// IP [46, 47] (paper §3.3): the independent-permutation approximate
/// transitive closure.
///
/// AP(Out(v)) keeps the k smallest values of a random permutation π applied
/// to v's reachable set; AP(In(v)) dually. If s reaches t then
/// Out(t) ⊆ Out(s), so every element of AP(Out(t)) small enough to belong
/// among AP(Out(s))'s k minima must appear there — the contra-positive
/// rejects with certainty and never produces false negatives. Undecided
/// queries (plus a topological-level precheck) fall back to a guided DFS
/// that prunes every vertex the filter rules out against t.
///
/// Input must be a DAG (wrap in `SccCondensingIndex`).
class IpLabel : public ReachabilityIndex {
 public:
  explicit IpLabel(size_t k = 4, uint64_t seed = 0x69'70ULL)
      : k_(k < 1 ? 1 : k), seed_(seed) {}

  void Build(const Digraph& graph) override;
  bool Query(VertexId s, VertexId t) const override;
  size_t IndexSizeBytes() const override;
  bool IsComplete() const override { return false; }
  std::string Name() const override {
    return "ip(k=" + std::to_string(k_) + ")";
  }

  /// Pure label test: true = maybe reachable, false = certainly not.
  bool MaybeReachable(VertexId s, VertexId t) const;

 private:
  std::span<const uint32_t> OutMin(VertexId v) const {
    return {out_min_.data() + out_offsets_[v],
            out_min_.data() + out_offsets_[v + 1]};
  }
  std::span<const uint32_t> InMin(VertexId v) const {
    return {in_min_.data() + in_offsets_[v],
            in_min_.data() + in_offsets_[v + 1]};
  }

  size_t k_;
  uint64_t seed_;
  const Digraph* graph_ = nullptr;
  // k-min sets in CSR layout (sorted ascending per vertex).
  std::vector<size_t> out_offsets_, in_offsets_;
  std::vector<uint32_t> out_min_, in_min_;
  std::vector<uint32_t> fwd_level_, bwd_level_;
  mutable SearchWorkspace ws_;
};

}  // namespace reach

#endif  // REACH_PLAIN_IP_LABEL_H_
