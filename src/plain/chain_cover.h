#ifndef REACH_PLAIN_CHAIN_COVER_H_
#define REACH_PLAIN_CHAIN_COVER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/reachability_index.h"
#include "graph/digraph.h"

namespace reach {

/// Chain-cover compression of the transitive closure (Jagadish [20],
/// paper reference list; the decomposition that 3-Hop [26] later built
/// chains into 2-hop labels).
///
/// The DAG is decomposed into disjoint chains (here: a greedy cover that
/// extends the chain of any in-neighbor that is currently a chain tail,
/// processed in topological order). For every vertex v and every chain c,
/// the index stores the *minimum position* in c reachable from v; since
/// reachability within a chain is monotone, Qr(s, t) collapses to one
/// comparison: minpos(s, chain(t)) <= pos(t).
///
/// Size is O(V * C) for C chains — between the O(V^2) full TC and the
/// O(V) partial labels, compressing exactly when few chains cover the
/// DAG (deep, narrow graphs). Complete; input must be a DAG (wrap in
/// `SccCondensingIndex`).
class ChainCover : public ReachabilityIndex {
 public:
  ChainCover() = default;

  void Build(const Digraph& graph) override;
  bool Query(VertexId s, VertexId t) const override;
  size_t IndexSizeBytes() const override;
  bool IsComplete() const override { return true; }
  std::string Name() const override { return "chaincover"; }

  /// Number of chains in the greedy cover.
  size_t NumChains() const { return num_chains_; }

 private:
  static constexpr uint32_t kUnreachable = UINT32_MAX;

  size_t num_chains_ = 0;
  std::vector<uint32_t> chain_of_;
  std::vector<uint32_t> pos_in_chain_;
  // minpos_[v * num_chains_ + c]: minimum position in chain c reachable
  // from v, or kUnreachable.
  std::vector<uint32_t> minpos_;
};

}  // namespace reach

#endif  // REACH_PLAIN_CHAIN_COVER_H_
