#ifndef REACH_PLAIN_REGISTRY_H_
#define REACH_PLAIN_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/reachability_index.h"
#include "obs/metrics_exporter.h"

namespace reach {

/// Creates a ready-to-Build plain reachability index by specification
/// string. DAG-only techniques come pre-wrapped in `SccCondensingIndex`,
/// so every returned index accepts general digraphs — mirroring how the
/// survey's Table 1 normalizes the Input column.
///
/// Known specs: "bfs", "dfs", "bibfs", "tc", "treecover", "dual",
/// "chaincover",
/// "gripp", "grail" / "grail:k=<n>", "ferrari" / "ferrari:k=<n>", "pll", "tfl",
/// "tol-random", "tol-revdeg", "dbl", "dagger" / "dagger:k=<n>",
/// "oreach" / "oreach:k=<n>",
/// "ip" / "ip:k=<n>", "bfl" / "bfl:bits=<n>", "feline", "preach".
/// Returns nullptr for unknown specs.
std::unique_ptr<ReachabilityIndex> MakePlainIndex(const std::string& spec);

/// The default benchmark roster: one spec per implemented Table 1 row plus
/// the §2.3 baselines.
std::vector<std::string> DefaultPlainIndexSpecs();

/// Folds `index` (typically registry-made) into `exporter` as an
/// `IndexReport`, optionally prefixing the report name (e.g. the graph it
/// was built on). Non-template convenience over `MakeIndexReport`.
void AddIndexReport(MetricsExporter& exporter, const ReachabilityIndex& index,
                    const std::string& name_prefix = "");

}  // namespace reach

#endif  // REACH_PLAIN_REGISTRY_H_
