#include "plain/preach.h"

#include "graph/topological.h"
#include "plain/interval_labeling.h"

namespace reach {

void Preach::Build(const Digraph& graph) {
  graph_ = &graph;
  const IntervalForest fwd = BuildIntervalForest(graph, std::nullopt);
  post_ = fwd.post;
  subtree_low_ = fwd.subtree_low;
  reach_low_ = ComputeReachableLow(graph, fwd);

  const Digraph reversed = graph.Reverse();
  const IntervalForest bwd = BuildIntervalForest(reversed, std::nullopt);
  rpost_ = bwd.post;
  rsubtree_low_ = bwd.subtree_low;
  rreach_low_ = ComputeReachableLow(reversed, bwd);

  fwd_level_ = ForwardLevels(graph);
  bwd_level_ = BackwardLevels(graph);
}

int Preach::FilterVerdict(VertexId s, VertexId t) const {
  if (s == t) return 1;
  // Positive: spanning-tree subtree containment, either direction.
  if (subtree_low_[s] <= post_[t] && post_[t] <= post_[s]) return 1;
  if (rsubtree_low_[t] <= rpost_[s] && rpost_[s] <= rpost_[t]) return 1;
  // Negative: topological levels.
  if (fwd_level_[s] >= fwd_level_[t]) return -1;
  if (bwd_level_[s] <= bwd_level_[t]) return -1;
  // Negative: reachable-set post-order ranges. s -> t needs
  // post[t] in [reach_low(s), post(s)] and rpost[s] in
  // [rreach_low(t), rpost(t)].
  if (post_[t] < reach_low_[s] || post_[t] > post_[s]) return -1;
  if (rpost_[s] < rreach_low_[t] || rpost_[s] > rpost_[t]) return -1;
  return 0;
}

bool Preach::Query(VertexId s, VertexId t) const {
  const int verdict = FilterVerdict(s, t);
  if (verdict != 0) return verdict > 0;

  ws_.Prepare(graph_->NumVertices());
  auto& fwd = ws_.queue();
  auto& bwd = ws_.backward_queue();
  ws_.MarkForward(s);
  ws_.MarkBackward(t);
  fwd.push_back(s);
  bwd.push_back(t);
  size_t fwd_head = 0, bwd_head = 0;
  while (fwd_head < fwd.size() && bwd_head < bwd.size()) {
    const bool expand_forward =
        (fwd.size() - fwd_head) <= (bwd.size() - bwd_head);
    if (expand_forward) {
      const size_t level_end = fwd.size();
      for (; fwd_head < level_end; ++fwd_head) {
        bool hit = false;
        for (VertexId w : graph_->OutNeighbors(fwd[fwd_head])) {
          if (ws_.IsBackwardMarked(w)) return true;
          if (ws_.IsForwardMarked(w)) continue;
          const int wv = FilterVerdict(w, t);
          if (wv > 0) {
            hit = true;
            break;
          }
          if (wv < 0) continue;
          ws_.MarkForward(w);
          fwd.push_back(w);
        }
        if (hit) return true;
      }
    } else {
      const size_t level_end = bwd.size();
      for (; bwd_head < level_end; ++bwd_head) {
        bool hit = false;
        for (VertexId w : graph_->InNeighbors(bwd[bwd_head])) {
          if (ws_.IsForwardMarked(w)) return true;
          if (ws_.IsBackwardMarked(w)) continue;
          const int wv = FilterVerdict(s, w);
          if (wv > 0) {
            hit = true;
            break;
          }
          if (wv < 0) continue;
          ws_.MarkBackward(w);
          bwd.push_back(w);
        }
        if (hit) return true;
      }
    }
  }
  return false;
}

size_t Preach::IndexSizeBytes() const {
  return (post_.size() + subtree_low_.size() + reach_low_.size() +
          rpost_.size() + rsubtree_low_.size() + rreach_low_.size() +
          fwd_level_.size() + bwd_level_.size()) *
         sizeof(uint32_t);
}

}  // namespace reach
