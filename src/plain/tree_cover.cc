#include "plain/tree_cover.h"

#include <algorithm>
#include <cassert>

#include "plain/interval_labeling.h"

namespace reach {

namespace {

// Merges a sorted-by-begin interval list in place, coalescing overlapping
// and adjacent intervals ([1,6] + [7,8] -> [1,8], as in the paper).
template <typename Interval>
void Coalesce(std::vector<Interval>& intervals) {
  if (intervals.empty()) return;
  size_t out = 0;
  for (size_t i = 1; i < intervals.size(); ++i) {
    if (intervals[i].begin <= intervals[out].end + 1) {
      intervals[out].end = std::max(intervals[out].end, intervals[i].end);
    } else {
      intervals[++out] = intervals[i];
    }
  }
  intervals.resize(out + 1);
}

}  // namespace

void TreeCover::Build(const Digraph& graph) {
  const size_t n = graph.NumVertices();
  const IntervalForest forest = BuildIntervalForest(graph, std::nullopt);
  post_ = forest.post;

  // Reverse topological order == increasing post order: out-neighbors of v
  // all have smaller post, so their interval sets are final before v's.
  std::vector<VertexId> by_post(n);
  for (VertexId v = 0; v < n; ++v) by_post[forest.post[v]] = v;

  std::vector<std::vector<Interval>> sets(n);
  for (uint32_t p = 0; p < n; ++p) {
    const VertexId v = by_post[p];
    std::vector<Interval>& mine = sets[v];
    mine.push_back({forest.subtree_low[v], forest.post[v]});
    for (VertexId w : graph.OutNeighbors(v)) {
      assert(forest.post[w] < forest.post[v] && "input must be a DAG");
      mine.insert(mine.end(), sets[w].begin(), sets[w].end());
    }
    std::sort(mine.begin(), mine.end(),
              [](const Interval& a, const Interval& b) {
                return a.begin < b.begin;
              });
    Coalesce(mine);
  }

  offsets_.assign(n + 1, 0);
  for (VertexId v = 0; v < n; ++v) offsets_[v + 1] = offsets_[v] + sets[v].size();
  intervals_.clear();
  intervals_.reserve(offsets_[n]);
  for (VertexId v = 0; v < n; ++v) {
    intervals_.insert(intervals_.end(), sets[v].begin(), sets[v].end());
  }
}

bool TreeCover::Query(VertexId s, VertexId t) const {
  const uint32_t target = post_[t];
  const Interval* begin = intervals_.data() + offsets_[s];
  const Interval* end = intervals_.data() + offsets_[s + 1];
  // First interval with begin > target; its predecessor is the only
  // candidate container.
  const Interval* it = std::upper_bound(
      begin, end, target,
      [](uint32_t value, const Interval& i) { return value < i.begin; });
  return it != begin && target <= (it - 1)->end;
}

size_t TreeCover::IndexSizeBytes() const {
  return intervals_.size() * sizeof(Interval) +
         offsets_.size() * sizeof(size_t) + post_.size() * sizeof(uint32_t);
}

}  // namespace reach
