#include "plain/tree_cover.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "plain/interval_labeling.h"

namespace reach {

namespace {

// Merges a sorted-by-begin interval list in place, coalescing overlapping
// and adjacent intervals ([1,6] + [7,8] -> [1,8], as in the paper).
template <typename Interval>
void Coalesce(std::vector<Interval>& intervals) {
  if (intervals.empty()) return;
  size_t out = 0;
  for (size_t i = 1; i < intervals.size(); ++i) {
    if (intervals[i].begin <= intervals[out].end + 1) {
      intervals[out].end = std::max(intervals[out].end, intervals[i].end);
    } else {
      intervals[++out] = intervals[i];
    }
  }
  intervals.resize(out + 1);
}

}  // namespace

void TreeCover::Build(const Digraph& graph) {
  BuildStatsScope build(&build_stats_);
  probe_.Reset();
  const size_t n = graph.NumVertices();
  BuildPhaseTimer forest_timer(&build_stats_.phases, "interval_forest");
  const IntervalForest forest = BuildIntervalForest(graph, std::nullopt);
  post_ = forest.post;
  forest_timer.Stop();

  BuildPhaseTimer inherit_timer(&build_stats_.phases, "inherit_merge");
  // Reverse topological order == increasing post order: out-neighbors of v
  // all have smaller post, so their interval sets are final before v's.
  std::vector<VertexId> by_post(n);
  for (VertexId v = 0; v < n; ++v) by_post[forest.post[v]] = v;

  std::vector<std::vector<Interval>> sets(n);
  for (uint32_t p = 0; p < n; ++p) {
    const VertexId v = by_post[p];
    std::vector<Interval>& mine = sets[v];
    mine.push_back({forest.subtree_low[v], forest.post[v]});
    for (VertexId w : graph.OutNeighbors(v)) {
      assert(forest.post[w] < forest.post[v] && "input must be a DAG");
      mine.insert(mine.end(), sets[w].begin(), sets[w].end());
    }
    std::sort(mine.begin(), mine.end(),
              [](const Interval& a, const Interval& b) {
                return a.begin < b.begin;
              });
    Coalesce(mine);
  }

  offsets_.assign(n + 1, 0);
  for (VertexId v = 0; v < n; ++v) offsets_[v + 1] = offsets_[v] + sets[v].size();
  intervals_.clear();
  intervals_.reserve(offsets_[n]);
  for (VertexId v = 0; v < n; ++v) {
    intervals_.insert(intervals_.end(), sets[v].begin(), sets[v].end());
  }
  build_stats_.size_bytes = IndexSizeBytes();
  build_stats_.num_entries = intervals_.size();
}

bool TreeCover::Query(VertexId s, VertexId t) const {
  REACH_PROBE_INC(probe_, queries);
  const uint32_t target = post_[t];
  const Interval* begin = intervals_.data() + offsets_[s];
  const Interval* end = intervals_.data() + offsets_[s + 1];
  // Binary search touches ~log2(|set|) + 1 interval entries.
  REACH_PROBE_ADD(probe_, labels_scanned,
                  std::bit_width(static_cast<size_t>(end - begin)) + 1);
  // First interval with begin > target; its predecessor is the only
  // candidate container.
  const Interval* it = std::upper_bound(
      begin, end, target,
      [](uint32_t value, const Interval& i) { return value < i.begin; });
  const bool reachable = it != begin && target <= (it - 1)->end;
  if (reachable) {
    REACH_PROBE_INC(probe_, positives);
  } else {
    REACH_PROBE_INC(probe_, label_rejections);  // exact label: no fallback
  }
  return reachable;
}

size_t TreeCover::IndexSizeBytes() const {
  return intervals_.size() * sizeof(Interval) +
         offsets_.size() * sizeof(size_t) + post_.size() * sizeof(uint32_t);
}

}  // namespace reach
