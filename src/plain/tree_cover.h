#ifndef REACH_PLAIN_TREE_COVER_H_
#define REACH_PLAIN_TREE_COVER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/reachability_index.h"
#include "graph/digraph.h"

namespace reach {

/// The original tree-cover index of Agrawal, Borgida & Jagadish [2]
/// (paper §3.1): interval labeling on a spanning forest plus *interval
/// inheritance* for non-tree reachability.
///
/// Construction: a DFS spanning forest assigns each vertex the interval
/// [subtree_low, post] covering its tree descendants; vertices are then
/// examined in reverse topological order, and every vertex inherits the
/// interval set of each out-neighbor (tree and non-tree alike — the
/// transitivity step the paper describes on the example of edge (w, u)).
/// Adjacent and overlapping intervals are merged for compact storage.
///
/// The result is a *complete* index: v's interval set covers exactly
/// { post[w] : w reachable from v }, so Qr(s, t) is a binary search of
/// post[t] in s's interval list. Input must be a DAG (wrap in
/// `SccCondensingIndex` for general graphs). The drawback the survey
/// highlights — a potentially large number of intervals per vertex — is
/// observable through `IndexSizeBytes()` / `TotalIntervals()`.
class TreeCover : public ReachabilityIndex {
 public:
  TreeCover() = default;

  void Build(const Digraph& graph) override;
  bool Query(VertexId s, VertexId t) const override;
  size_t IndexSizeBytes() const override;
  bool IsComplete() const override { return true; }
  std::string Name() const override { return "treecover"; }
  QueryProbe Probe() const override { return probe_; }
  void ResetProbe() const override { probe_.Reset(); }

  /// Total number of stored intervals (the survey's index-size measure).
  size_t TotalIntervals() const { return intervals_.size(); }

  /// Number of intervals attached to `v`.
  size_t NumIntervals(VertexId v) const {
    return offsets_[v + 1] - offsets_[v];
  }

 private:
  struct Interval {
    uint32_t begin;  // inclusive
    uint32_t end;    // inclusive
  };

  std::vector<uint32_t> post_;
  // CSR layout: intervals of v are intervals_[offsets_[v] .. offsets_[v+1]).
  std::vector<size_t> offsets_;
  std::vector<Interval> intervals_;
  mutable QueryProbe probe_;
};

}  // namespace reach

#endif  // REACH_PLAIN_TREE_COVER_H_
