#include "plain/dagger.h"

#include <algorithm>

#include "graph/condensation.h"
#include "graph/rng.h"
#include "plain/interval_labeling.h"

namespace reach {

template <typename Fn>
void Dagger::ForEachOut(VertexId v, Fn&& fn) const {
  for (VertexId w : graph_->OutNeighbors(v)) fn(w);
  if (!extra_out_.empty()) {
    for (VertexId w : extra_out_[v]) fn(w);
  }
}

template <typename Fn>
void Dagger::ForEachIn(VertexId v, Fn&& fn) const {
  for (VertexId w : graph_->InNeighbors(v)) fn(w);
  if (!extra_in_.empty()) {
    for (VertexId w : extra_in_[v]) fn(w);
  }
}

void Dagger::Build(const Digraph& graph) {
  graph_ = &graph;
  extra_out_.clear();
  extra_in_.clear();
  const size_t n = graph.NumVertices();
  low_.assign(n * k_, 0);
  high_.assign(n * k_, 0);

  // GRAIL-style labels on the condensation, shared by SCC members. On a
  // DAG, a vertex's own post rank IS the max over its reachable set.
  const Condensation cond = Condense(graph);
  SplitMix64 seeds(seed_);
  for (size_t i = 0; i < k_; ++i) {
    const IntervalForest forest = BuildIntervalForest(cond.dag, seeds.Next());
    const std::vector<uint32_t> low = ComputeReachableLow(cond.dag, forest);
    for (VertexId v = 0; v < n; ++v) {
      const VertexId c = cond.DagVertex(v);
      low_[v * k_ + i] = low[c];
      high_[v * k_ + i] = forest.post[c];
    }
  }
}

bool Dagger::MaybeReachable(VertexId s, VertexId t) const {
  if (s == t) return true;
  for (size_t i = 0; i < k_; ++i) {
    if (low_[s * k_ + i] > low_[t * k_ + i] ||
        high_[t * k_ + i] > high_[s * k_ + i]) {
      return false;
    }
  }
  return true;
}

bool Dagger::Query(VertexId s, VertexId t) const {
  if (s == t) return true;
  if (!MaybeReachable(s, t)) return false;
  ws_.Prepare(graph_->NumVertices());
  auto& stack = ws_.queue();
  ws_.MarkForward(s);
  stack.push_back(s);
  bool found = false;
  while (!stack.empty() && !found) {
    const VertexId v = stack.back();
    stack.pop_back();
    ForEachOut(v, [&](VertexId w) {
      if (found) return;
      if (w == t) {
        found = true;
        return;
      }
      if (!ws_.IsForwardMarked(w) && MaybeReachable(w, t)) {
        ws_.MarkForward(w);
        stack.push_back(w);
      }
    });
  }
  return found;
}

void Dagger::InsertEdge(VertexId s, VertexId t) {
  if (s == t) return;
  if (graph_->HasEdge(s, t)) return;
  if (extra_out_.empty()) {
    extra_out_.resize(graph_->NumVertices());
    extra_in_.resize(graph_->NumVertices());
  }
  if (std::find(extra_out_[s].begin(), extra_out_[s].end(), t) !=
      extra_out_[s].end()) {
    return;
  }
  extra_out_[s].push_back(t);
  extra_in_[t].push_back(s);

  // Monotone worklist: everything reaching s widens its bounds by t's.
  // Re-enqueue on every change so cascades through new cycles converge;
  // each vertex re-enters only while its k (low, high) pairs strictly
  // widen, so termination is bounded.
  auto widen = [&](VertexId x, VertexId source) {
    bool changed = false;
    for (size_t i = 0; i < k_; ++i) {
      if (low_[source * k_ + i] < low_[x * k_ + i]) {
        low_[x * k_ + i] = low_[source * k_ + i];
        changed = true;
      }
      if (high_[source * k_ + i] > high_[x * k_ + i]) {
        high_[x * k_ + i] = high_[source * k_ + i];
        changed = true;
      }
    }
    return changed;
  };
  std::vector<VertexId> queue;
  if (widen(s, t)) queue.push_back(s);
  for (size_t head = 0; head < queue.size(); ++head) {
    const VertexId v = queue[head];
    ForEachIn(v, [&](VertexId w) {
      if (widen(w, v)) queue.push_back(w);
    });
  }
}

size_t Dagger::IndexSizeBytes() const {
  return (low_.size() + high_.size()) * sizeof(uint32_t);
}

}  // namespace reach
