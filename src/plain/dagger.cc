#include "plain/dagger.h"

#include <algorithm>

#include "graph/condensation.h"
#include "graph/rng.h"
#include "plain/interval_labeling.h"

namespace reach {

template <typename Fn>
void Dagger::ForEachOut(VertexId v, Fn&& fn) const {
  if (tomb_out_.empty() || tomb_out_[v].empty()) {
    for (VertexId w : graph_->OutNeighbors(v)) fn(w);
    if (!extra_out_.empty()) {
      for (VertexId w : extra_out_[v]) fn(w);
    }
    return;
  }
  const std::vector<VertexId>& tomb = tomb_out_[v];
  for (VertexId w : graph_->OutNeighbors(v)) {
    if (!std::binary_search(tomb.begin(), tomb.end(), w)) fn(w);
  }
  if (!extra_out_.empty()) {
    for (VertexId w : extra_out_[v]) {
      if (!std::binary_search(tomb.begin(), tomb.end(), w)) fn(w);
    }
  }
}

template <typename Fn>
void Dagger::ForEachIn(VertexId v, Fn&& fn) const {
  if (tomb_in_.empty() || tomb_in_[v].empty()) {
    for (VertexId w : graph_->InNeighbors(v)) fn(w);
    if (!extra_in_.empty()) {
      for (VertexId w : extra_in_[v]) fn(w);
    }
    return;
  }
  const std::vector<VertexId>& tomb = tomb_in_[v];
  for (VertexId w : graph_->InNeighbors(v)) {
    if (!std::binary_search(tomb.begin(), tomb.end(), w)) fn(w);
  }
  if (!extra_in_.empty()) {
    for (VertexId w : extra_in_[v]) {
      if (!std::binary_search(tomb.begin(), tomb.end(), w)) fn(w);
    }
  }
}

template <typename Fn>
void Dagger::ForEachInSuperset(VertexId v, Fn&& fn) const {
  for (VertexId w : graph_->InNeighbors(v)) fn(w);
  if (!extra_in_.empty()) {
    for (VertexId w : extra_in_[v]) fn(w);
  }
}

void Dagger::Build(const Digraph& graph) {
  graph_ = &graph;
  extra_out_.clear();
  extra_in_.clear();
  tomb_out_.clear();
  tomb_in_.clear();
  damage_ = 0;
  const size_t n = graph.NumVertices();
  low_.assign(n * k_, 0);
  high_.assign(n * k_, 0);

  // GRAIL-style labels on the condensation, shared by SCC members. On a
  // DAG, a vertex's own post rank IS the max over its reachable set.
  const Condensation cond = Condense(graph);
  SplitMix64 seeds(seed_);
  for (size_t i = 0; i < k_; ++i) {
    const IntervalForest forest = BuildIntervalForest(cond.dag, seeds.Next());
    const std::vector<uint32_t> low = ComputeReachableLow(cond.dag, forest);
    for (VertexId v = 0; v < n; ++v) {
      const VertexId c = cond.DagVertex(v);
      low_[v * k_ + i] = low[c];
      high_[v * k_ + i] = forest.post[c];
    }
  }
}

bool Dagger::MaybeReachable(VertexId s, VertexId t) const {
  if (s == t) return true;
  for (size_t i = 0; i < k_; ++i) {
    if (low_[s * k_ + i] > low_[t * k_ + i] ||
        high_[t * k_ + i] > high_[s * k_ + i]) {
      return false;
    }
  }
  return true;
}

bool Dagger::Query(VertexId s, VertexId t) const {
  if (s == t) return true;
  if (!MaybeReachable(s, t)) return false;
  ws_.Prepare(graph_->NumVertices());
  auto& stack = ws_.queue();
  ws_.MarkForward(s);
  stack.push_back(s);
  bool found = false;
  while (!stack.empty() && !found) {
    const VertexId v = stack.back();
    stack.pop_back();
    ForEachOut(v, [&](VertexId w) {
      if (found) return;
      if (w == t) {
        found = true;
        return;
      }
      if (!ws_.IsForwardMarked(w) && MaybeReachable(w, t)) {
        ws_.MarkForward(w);
        stack.push_back(w);
      }
    });
  }
  return found;
}

UpdateResult Dagger::ApplyUpdate(const UpdateBatch& batch) {
  if (graph_ == nullptr) {
    return UpdateResult::Rejected("no live graph: Build() first");
  }
  const VertexId n = static_cast<VertexId>(graph_->NumVertices());
  for (const EdgeUpdate& update : batch) {
    if (update.source >= n || update.target >= n) {
      return UpdateResult::Rejected("endpoint out of range");
    }
  }
  size_t applied = 0;
  size_t ignored = 0;
  for (const EdgeUpdate& update : batch) {
    const bool changed = update.IsInsert()
                             ? ApplyInsert(update.source, update.target)
                             : ApplyDelete(update.source, update.target);
    if (changed) {
      ++applied;
    } else {
      ++ignored;
    }
  }
  return UpdateResult::Applied(applied, ignored, damage_, staleness_budget_);
}

bool Dagger::IsTombstoned(VertexId u, VertexId v) const {
  return !tomb_out_.empty() &&
         std::binary_search(tomb_out_[u].begin(), tomb_out_[u].end(), v);
}

bool Dagger::ApplyDelete(VertexId s, VertexId t) {
  const bool in_base = graph_->HasEdge(s, t);
  const bool in_extra =
      !extra_out_.empty() &&
      std::find(extra_out_[s].begin(), extra_out_[s].end(), t) !=
          extra_out_[s].end();
  if (!in_base && !in_extra) return false;  // never existed: no-op
  if (IsTombstoned(s, t)) return false;     // already deleted: no-op
  if (tomb_out_.empty()) {
    tomb_out_.resize(graph_->NumVertices());
    tomb_in_.resize(graph_->NumVertices());
  }
  auto it = std::lower_bound(tomb_out_[s].begin(), tomb_out_[s].end(), t);
  tomb_out_[s].insert(it, t);
  it = std::lower_bound(tomb_in_[t].begin(), tomb_in_[t].end(), s);
  tomb_in_[t].insert(it, s);
  // The bounds need no repair: reachable sets only shrink, so every
  // interval stays a valid over-approximation and the filter keeps its
  // no-false-negative guarantee; the guided DFS already skips the
  // tombstone, so positives stay exact. What decays is filter precision,
  // tracked by the damage counter — except for locally redundant deletes
  // (u still reaches v, e.g. an SCC that did not split), where the
  // reachability relation is provably unchanged.
  if (s != t && !LocallyRedundant(s, t)) ++damage_;
  return true;
}

bool Dagger::LocallyRedundant(VertexId u, VertexId v) const {
  ws_.Prepare(graph_->NumVertices());
  auto& stack = ws_.queue();
  ws_.MarkForward(u);
  stack.push_back(u);
  size_t visits = 0;
  while (!stack.empty()) {
    if (++visits > kLocalSearchBudget) return false;  // overrun: assume damage
    const VertexId x = stack.back();
    stack.pop_back();
    bool found = false;
    ForEachOut(x, [&](VertexId w) {
      if (found) return;
      if (w == v) {
        found = true;
        return;
      }
      if (!ws_.IsForwardMarked(w) && MaybeReachable(w, v)) {
        ws_.MarkForward(w);
        stack.push_back(w);
      }
    });
    if (found) return true;
  }
  return false;
}

bool Dagger::RebuildFromUpdates() {
  if (graph_ == nullptr) return false;
  std::vector<Edge> edges = graph_->Edges();
  if (!extra_out_.empty()) {
    for (VertexId v = 0; v < extra_out_.size(); ++v) {
      for (VertexId w : extra_out_[v]) edges.push_back({v, w});
    }
  }
  if (!tomb_out_.empty()) {
    std::erase_if(edges, [&](const Edge& e) {
      return std::binary_search(tomb_out_[e.source].begin(),
                                tomb_out_[e.source].end(), e.target);
    });
  }
  owned_graph_ = Digraph::FromEdges(
      static_cast<VertexId>(graph_->NumVertices()), std::move(edges));
  Build(owned_graph_);  // re-tightens every interval and resets damage
  return true;
}

bool Dagger::ApplyInsert(VertexId s, VertexId t) {
  if (s == t) return false;
  if (IsTombstoned(s, t)) {
    // Resurrection: the widened bounds from the edge's first life are
    // still valid over-approximations, so dropping the tombstone is the
    // whole update.
    auto it = std::lower_bound(tomb_out_[s].begin(), tomb_out_[s].end(), t);
    tomb_out_[s].erase(it);
    it = std::lower_bound(tomb_in_[t].begin(), tomb_in_[t].end(), s);
    tomb_in_[t].erase(it);
    return true;
  }
  if (graph_->HasEdge(s, t)) return false;
  if (extra_out_.empty()) {
    extra_out_.resize(graph_->NumVertices());
    extra_in_.resize(graph_->NumVertices());
  }
  if (std::find(extra_out_[s].begin(), extra_out_[s].end(), t) !=
      extra_out_[s].end()) {
    return false;
  }
  extra_out_[s].push_back(t);
  extra_in_[t].push_back(s);

  // Monotone worklist: everything reaching s widens its bounds by t's.
  // Re-enqueue on every change so cascades through new cycles converge;
  // each vertex re-enters only while its k (low, high) pairs strictly
  // widen, so termination is bounded. The sweep runs over the SUPERSET
  // in-adjacency, tombstones ignored: the bounds must stay valid for
  // every edge ever inserted, or a later tombstone resurrection (which
  // only drops the tombstone, widening nothing) would leave vertices
  // upstream of the once-dead edge too tight — a filter false negative
  // the guided DFS turns into a wrong exact "no". Widening extra
  // vertices merely loosens the filter, which is always sound.
  auto widen = [&](VertexId x, VertexId source) {
    bool changed = false;
    for (size_t i = 0; i < k_; ++i) {
      if (low_[source * k_ + i] < low_[x * k_ + i]) {
        low_[x * k_ + i] = low_[source * k_ + i];
        changed = true;
      }
      if (high_[source * k_ + i] > high_[x * k_ + i]) {
        high_[x * k_ + i] = high_[source * k_ + i];
        changed = true;
      }
    }
    return changed;
  };
  std::vector<VertexId> queue;
  if (widen(s, t)) queue.push_back(s);
  for (size_t head = 0; head < queue.size(); ++head) {
    const VertexId v = queue[head];
    ForEachInSuperset(v, [&](VertexId w) {
      if (widen(w, v)) queue.push_back(w);
    });
  }
  return true;
}

size_t Dagger::IndexSizeBytes() const {
  return (low_.size() + high_.size()) * sizeof(uint32_t);
}

}  // namespace reach
