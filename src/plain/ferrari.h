#ifndef REACH_PLAIN_FERRARI_H_
#define REACH_PLAIN_FERRARI_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/reachability_index.h"
#include "core/search_workspace.h"
#include "graph/digraph.h"

namespace reach {

/// FERRARI [40] (paper §3.1): a *partial* tree-cover index recording *at
/// most* k intervals per vertex.
///
/// The construction starts from the exact interval-inheritance of the
/// tree-cover index. Whenever a vertex would exceed its budget of k
/// intervals, the two neighbors with the smallest gap are merged even
/// though they are not adjacent, producing an *approximate* interval that
/// also covers the (unreachable) gap. Hence three query outcomes against
/// s's interval list:
///  * post[t] in no interval        -> certainly unreachable (no false
///                                     negatives — coverage only grows),
///  * post[t] in an exact interval  -> certainly reachable,
///  * post[t] in an approximate one -> maybe; fall back to guided DFS,
///    pruning vertices whose intervals exclude t and accepting early on
///    any exact hit.
///
/// Input must be a DAG (wrap in `SccCondensingIndex`).
class Ferrari : public ReachabilityIndex {
 public:
  /// At most `k` intervals per vertex (k >= 1).
  explicit Ferrari(size_t k = 4) : k_(k < 1 ? 1 : k) {}

  void Build(const Digraph& graph) override;
  bool Query(VertexId s, VertexId t) const override;
  size_t IndexSizeBytes() const override;
  bool IsComplete() const override { return false; }
  std::string Name() const override {
    return "ferrari(k=" + std::to_string(k_) + ")";
  }
  QueryProbe Probe() const override { return ws_.probe(); }
  void ResetProbe() const override { ws_.probe().Reset(); }

  /// Pure label test: true = covered by some interval (maybe reachable),
  /// false = certainly unreachable. Never a false negative.
  bool MaybeReachable(VertexId s, VertexId t) const {
    return s == t || Coverage(s, post_[t]) != 0;
  }

  /// Total stored intervals (<= k * V by construction).
  size_t TotalIntervals() const { return intervals_.size(); }

  /// Fraction of stored intervals that are exact (1.0 = degenerated to the
  /// full tree-cover index; lower = more approximation pressure).
  double ExactFraction() const;

 private:
  struct Interval {
    uint32_t begin;
    uint32_t end;
    bool exact;
  };

  // Returns 0 = not covered, 1 = covered approximately, 2 = covered
  // exactly, for post[t] against v's interval list.
  int Coverage(VertexId v, uint32_t target_post) const;

  size_t k_;
  const Digraph* graph_ = nullptr;
  std::vector<uint32_t> post_;
  std::vector<size_t> offsets_;
  std::vector<Interval> intervals_;
  mutable SearchWorkspace ws_;
};

}  // namespace reach

#endif  // REACH_PLAIN_FERRARI_H_
