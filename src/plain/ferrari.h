#ifndef REACH_PLAIN_FERRARI_H_
#define REACH_PLAIN_FERRARI_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/reachability_index.h"
#include "core/search_workspace.h"
#include "core/workspace_pool.h"
#include "graph/digraph.h"

namespace reach {

/// FERRARI [40] (paper §3.1): a *partial* tree-cover index recording *at
/// most* k intervals per vertex.
///
/// The construction starts from the exact interval-inheritance of the
/// tree-cover index. Whenever a vertex would exceed its budget of k
/// intervals, the two neighbors with the smallest gap are merged even
/// though they are not adjacent, producing an *approximate* interval that
/// also covers the (unreachable) gap. Hence three query outcomes against
/// s's interval list:
///  * post[t] in no interval        -> certainly unreachable (no false
///                                     negatives — coverage only grows),
///  * post[t] in an exact interval  -> certainly reachable,
///  * post[t] in an approximate one -> maybe; fall back to guided DFS,
///    pruning vertices whose intervals exclude t and accepting early on
///    any exact hit.
///
/// Input must be a DAG (wrap in `SccCondensingIndex`).
class Ferrari : public ReachabilityIndex {
 public:
  /// At most `k` intervals per vertex (k >= 1). `num_threads`
  /// parallelizes interval inheritance over dependency levels of the DAG
  /// (each vertex's list depends only on its successors' finished lists,
  /// so the result is bit-identical to a serial build). 0 =
  /// `DefaultThreads()`, 1 = serial.
  explicit Ferrari(size_t k = 4, size_t num_threads = 0)
      : k_(k < 1 ? 1 : k), num_threads_(num_threads) {}

  void Build(const Digraph& graph) override;
  bool Query(VertexId s, VertexId t) const override;
  size_t IndexSizeBytes() const override;
  bool IsComplete() const override { return false; }
  std::string Name() const override {
    return "ferrari(k=" + std::to_string(k_) + ")";
  }
  QueryProbe Probe() const override { return ws_pool_.AggregateProbe(); }
  void ResetProbe() const override { ws_pool_.ResetProbes(); }

  size_t PrepareConcurrentQueries(size_t slots) const override {
    if (slots == 0) slots = 1;
    ws_pool_.EnsureSlots(slots);
    return slots;
  }
  bool QueryInSlot(VertexId s, VertexId t, size_t slot) const override;

  /// Pure label test: true = covered by some interval (maybe reachable),
  /// false = certainly unreachable. Never a false negative.
  bool MaybeReachable(VertexId s, VertexId t) const {
    return s == t || Coverage(s, post_[t], ws_pool_.Slot(0).probe()) != 0;
  }

  /// Total stored intervals (<= k * V by construction).
  size_t TotalIntervals() const { return intervals_.size(); }

  /// Fraction of stored intervals that are exact (1.0 = degenerated to the
  /// full tree-cover index; lower = more approximation pressure).
  double ExactFraction() const;

 private:
  struct Interval {
    uint32_t begin;
    uint32_t end;
    bool exact;
  };

  // Returns 0 = not covered, 1 = covered approximately, 2 = covered
  // exactly, for post[t] against v's interval list.
  int Coverage(VertexId v, uint32_t target_post, QueryProbe& probe) const;

  size_t k_;
  size_t num_threads_;
  const Digraph* graph_ = nullptr;
  std::vector<uint32_t> post_;
  std::vector<size_t> offsets_;
  std::vector<Interval> intervals_;
  mutable WorkspacePool ws_pool_;
};

}  // namespace reach

#endif  // REACH_PLAIN_FERRARI_H_
