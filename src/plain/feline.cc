#include "plain/feline.h"

#include "graph/topological.h"

namespace reach {

void Feline::Build(const Digraph& graph) {
  graph_ = &graph;
  x_ = RankOf(*TopologicalOrder(graph));
  y_ = RankOf(*TopologicalOrderReverseTies(graph));
  level_ = ForwardLevels(graph);
}

bool Feline::Query(VertexId s, VertexId t) const {
  if (s == t) return true;
  if (!MaybeReachable(s, t)) return false;
  ws_.Prepare(graph_->NumVertices());
  auto& stack = ws_.queue();
  ws_.MarkForward(s);
  stack.push_back(s);
  while (!stack.empty()) {
    const VertexId v = stack.back();
    stack.pop_back();
    for (VertexId w : graph_->OutNeighbors(v)) {
      if (w == t) return true;
      if (!ws_.IsForwardMarked(w) && MaybeReachable(w, t)) {
        ws_.MarkForward(w);
        stack.push_back(w);
      }
    }
  }
  return false;
}

size_t Feline::IndexSizeBytes() const {
  return (x_.size() + y_.size() + level_.size()) * sizeof(uint32_t);
}

}  // namespace reach
