#ifndef REACH_PLAIN_OREACH_H_
#define REACH_PLAIN_OREACH_H_

#include <string>

#include "core/observation_stack.h"
#include "core/reachability_index.h"
#include "core/search_workspace.h"
#include "graph/digraph.h"

namespace reach {

/// O'Reach [18] (paper §3.2): a *partial* 2-hop-style index built from k
/// selected "supportive" vertices plus topological-order observations.
///
/// The constant-time filters — supportive-vertex signatures, two
/// topological ranks, forward/backward levels, and DFS-interval
/// containment — are the shared `ObservationStack`
/// (core/observation_stack.h), configured with k supportive vertices and
/// no anti vertices to match the historical O'Reach support selection.
/// Undecided queries fall back to a filter-pruned bidirectional BFS: every
/// traversal candidate is re-screened through the stack's verdict, so the
/// search front stays inside the undecided band.
///
/// Input must be a DAG (wrap in `SccCondensingIndex`; the stack itself
/// condenses internally, but the guided BFS walks the input graph).
class OReach : public ReachabilityIndex {
 public:
  explicit OReach(size_t num_supports = 32)
      : num_supports_(num_supports > 64 ? 64 : num_supports),
        stack_(ObservationStack::Options{
            /*.num_supports =*/num_supports > 64 ? 64 : num_supports,
            /*.num_anti =*/0}) {}

  void Build(const Digraph& graph) override;
  bool Query(VertexId s, VertexId t) const override;
  size_t IndexSizeBytes() const override { return stack_.SizeBytes(); }
  bool IsComplete() const override { return false; }
  std::string Name() const override {
    return "oreach(k=" + std::to_string(num_supports_) + ")";
  }

  /// Pure-filter verdict: +1 reachable, -1 unreachable, 0 undecided.
  int FilterVerdict(VertexId s, VertexId t) const {
    return stack_.Verdict(s, t);
  }

 private:
  size_t num_supports_;
  const Digraph* graph_ = nullptr;
  ObservationStack stack_;
  mutable SearchWorkspace ws_;
};

}  // namespace reach

#endif  // REACH_PLAIN_OREACH_H_
