#ifndef REACH_PLAIN_OREACH_H_
#define REACH_PLAIN_OREACH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/reachability_index.h"
#include "core/search_workspace.h"
#include "graph/digraph.h"

namespace reach {

/// O'Reach [18] (paper §3.2): a *partial* 2-hop-style index built from k
/// selected "supportive" vertices plus topological-order observations.
///
/// For the k <= 64 highest-degree supports we store two bitmasks per
/// vertex: bit h of fwd_mask(v) iff v reaches support h, and bit h of
/// bwd_mask(v) iff support h reaches v (a partial 2-hop labeling whose hop
/// universe is the support set). Per query:
///  * positive: fwd_mask(s) & bwd_mask(t) != 0 — a common support is a
///    2-hop witness;
///  * negative: s -> t implies fwd_mask(t) ⊆ fwd_mask(s) and
///    bwd_mask(s) ⊆ bwd_mask(t); any violation proves unreachability;
///  * negative: two topological ranks and forward/backward levels must all
///    increase from s to t (the extended-topological-order observations).
/// Undecided queries fall back to a filter-pruned bidirectional BFS.
///
/// Input must be a DAG (wrap in `SccCondensingIndex`).
class OReach : public ReachabilityIndex {
 public:
  explicit OReach(size_t num_supports = 32)
      : num_supports_(num_supports > 64 ? 64 : num_supports) {}

  void Build(const Digraph& graph) override;
  bool Query(VertexId s, VertexId t) const override;
  size_t IndexSizeBytes() const override;
  bool IsComplete() const override { return false; }
  std::string Name() const override {
    return "oreach(k=" + std::to_string(num_supports_) + ")";
  }

  /// Pure-filter verdict: +1 reachable, -1 unreachable, 0 undecided.
  int FilterVerdict(VertexId s, VertexId t) const;

 private:
  size_t num_supports_;
  const Digraph* graph_ = nullptr;
  std::vector<uint64_t> fwd_mask_;  // supports reachable from v
  std::vector<uint64_t> bwd_mask_;  // supports reaching v
  std::vector<uint32_t> topo_a_;    // two topological ranks
  std::vector<uint32_t> topo_b_;
  std::vector<uint32_t> fwd_level_;
  std::vector<uint32_t> bwd_level_;
  mutable SearchWorkspace ws_;
};

}  // namespace reach

#endif  // REACH_PLAIN_OREACH_H_
