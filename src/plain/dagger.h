#ifndef REACH_PLAIN_DAGGER_H_
#define REACH_PLAIN_DAGGER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/reachability_index.h"
#include "core/search_workspace.h"
#include "graph/digraph.h"

namespace reach {

/// DAGGER-style dynamic GRAIL (Yildirim, Chaoji & Zaki [51], paper §3.1 /
/// Table 1's dynamic tree-cover row): interval labels that survive edge
/// insertions.
///
/// Reading of the labels that makes dynamics tractable: for traversal i,
/// low_i(v) / high_i(v) are the minimum / maximum DFS post-order rank over
/// v's *entire reachable set*. On the initial (condensed) graph these are
/// exactly GRAIL's containment intervals (high_i(v) is v's own rank).
/// Because they are bounds over reachable sets, an edge insertion (u, v)
/// is repaired by *monotone propagation*: everything that reaches u takes
/// the min/max of v's bounds — a backward worklist, exactly like DBL's
/// label maintenance, and sound even when the insertion creates cycles.
/// s -> t always implies low_i(s) <= low_i(t) and high_i(t) <= high_i(s),
/// so the filter keeps its no-false-negative guarantee; precision decays
/// gradually (DAGGER's full relabeling machinery is what restores it —
/// `Build` re-tightens from scratch, documented simplification).
///
/// Deletions (`ApplyUpdate` with `kDelete`) are the mirror image and need
/// no bound surgery at all: removing an edge only *shrinks* reachable
/// sets, so the existing intervals stay valid over-approximations and the
/// filter keeps its no-false-negative guarantee — this covers SCC splits
/// too (DAGGER's hardest case: the condensation vertex merely becomes a
/// looser bound shared by the now-separate components). The deleted edge
/// goes into a tombstone set the guided DFS skips, so positives are exact
/// by construction. A bounded local search classifies each delete:
/// *locally redundant* (endpoint still reaches the other — e.g. an
/// intra-SCC chord whose SCC did not split) costs nothing; otherwise a
/// damage counter feeds the rebuild-threshold policy, because bounds only
/// ever loosen relative to the live graph until `RebuildFromUpdates` /
/// `Build` re-tightens them.
///
/// Queries: filter + guided DFS over base and inserted edges minus
/// tombstones. Input may be any digraph (condensation is internal);
/// insertions may create cycles, deletions may split SCCs.
class Dagger : public DynamicReachabilityIndex {
 public:
  explicit Dagger(size_t k = 3, uint64_t seed = 0x64'61'67ULL,
                  size_t staleness_budget = kDefaultStalenessBudget)
      : k_(k < 1 ? 1 : k), seed_(seed), staleness_budget_(staleness_budget) {}

  /// Non-redundant deletes tolerated before `ApplyUpdate` starts
  /// returning `kDeferredRebuild`. 0 = unbounded.
  static constexpr size_t kDefaultStalenessBudget = 64;

  void Build(const Digraph& graph) override;
  bool Query(VertexId s, VertexId t) const override;
  size_t IndexSizeBytes() const override;
  bool IsComplete() const override { return false; }
  std::string Name() const override {
    return "dagger(k=" + std::to_string(k_) + ")";
  }

  UpdateResult ApplyUpdate(const UpdateBatch& batch) override;
  bool SupportsDeletions() const override { return true; }
  bool RebuildFromUpdates() override;

  /// Non-redundant deletes since the last (re)build — the filter's
  /// precision decay, not a correctness measure.
  size_t Damage() const { return damage_; }
  size_t StalenessBudget() const { return staleness_budget_; }

  /// Pure filter: true = maybe reachable, false = certainly not.
  bool MaybeReachable(VertexId s, VertexId t) const;

 private:
  template <typename Fn>
  void ForEachOut(VertexId v, Fn&& fn) const;
  template <typename Fn>
  void ForEachIn(VertexId v, Fn&& fn) const;
  // Superset in-adjacency: base plus extras, tombstones IGNORED. Bound
  // maintenance must sweep this, not the live view — see ApplyInsert.
  template <typename Fn>
  void ForEachInSuperset(VertexId v, Fn&& fn) const;
  bool ApplyInsert(VertexId s, VertexId t);
  bool ApplyDelete(VertexId s, VertexId t);
  bool IsTombstoned(VertexId u, VertexId v) const;
  // True iff u still reaches v within the visit budget post-delete.
  bool LocallyRedundant(VertexId u, VertexId v) const;

  static constexpr size_t kLocalSearchBudget = 4096;

  size_t k_;
  uint64_t seed_;
  size_t staleness_budget_;
  const Digraph* graph_ = nullptr;
  Digraph owned_graph_;  // used after RebuildFromUpdates
  // Bounds for traversal i of vertex v at [v * k_ + i].
  std::vector<uint32_t> low_;
  std::vector<uint32_t> high_;
  std::vector<std::vector<VertexId>> extra_out_, extra_in_;
  // Deleted edges (sorted per vertex), base and extra alike; the guided
  // DFS skips them. Deleted extras stay in extra_* so re-insertion is a
  // cheap tombstone drop (their widened bounds remain valid either way).
  std::vector<std::vector<VertexId>> tomb_out_, tomb_in_;
  size_t damage_ = 0;
  mutable SearchWorkspace ws_;
};

}  // namespace reach

#endif  // REACH_PLAIN_DAGGER_H_
