#ifndef REACH_PLAIN_DAGGER_H_
#define REACH_PLAIN_DAGGER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/reachability_index.h"
#include "core/search_workspace.h"
#include "graph/digraph.h"

namespace reach {

/// DAGGER-style dynamic GRAIL (Yildirim, Chaoji & Zaki [51], paper §3.1 /
/// Table 1's dynamic tree-cover row): interval labels that survive edge
/// insertions.
///
/// Reading of the labels that makes dynamics tractable: for traversal i,
/// low_i(v) / high_i(v) are the minimum / maximum DFS post-order rank over
/// v's *entire reachable set*. On the initial (condensed) graph these are
/// exactly GRAIL's containment intervals (high_i(v) is v's own rank).
/// Because they are bounds over reachable sets, an edge insertion (u, v)
/// is repaired by *monotone propagation*: everything that reaches u takes
/// the min/max of v's bounds — a backward worklist, exactly like DBL's
/// label maintenance, and sound even when the insertion creates cycles.
/// s -> t always implies low_i(s) <= low_i(t) and high_i(t) <= high_i(s),
/// so the filter keeps its no-false-negative guarantee; precision decays
/// gradually (DAGGER's full relabeling machinery is what restores it —
/// `Build` re-tightens from scratch, documented simplification).
///
/// Queries: filter + guided DFS over base and inserted edges. Input may be
/// any digraph (condensation is internal); insertions may create cycles.
class Dagger : public DynamicReachabilityIndex {
 public:
  explicit Dagger(size_t k = 3, uint64_t seed = 0x64'61'67ULL)
      : k_(k < 1 ? 1 : k), seed_(seed) {}

  void Build(const Digraph& graph) override;
  bool Query(VertexId s, VertexId t) const override;
  size_t IndexSizeBytes() const override;
  bool IsComplete() const override { return false; }
  std::string Name() const override {
    return "dagger(k=" + std::to_string(k_) + ")";
  }

  void InsertEdge(VertexId s, VertexId t) override;

  /// Pure filter: true = maybe reachable, false = certainly not.
  bool MaybeReachable(VertexId s, VertexId t) const;

 private:
  template <typename Fn>
  void ForEachOut(VertexId v, Fn&& fn) const;
  template <typename Fn>
  void ForEachIn(VertexId v, Fn&& fn) const;

  size_t k_;
  uint64_t seed_;
  const Digraph* graph_ = nullptr;
  // Bounds for traversal i of vertex v at [v * k_ + i].
  std::vector<uint32_t> low_;
  std::vector<uint32_t> high_;
  std::vector<std::vector<VertexId>> extra_out_, extra_in_;
  mutable SearchWorkspace ws_;
};

}  // namespace reach

#endif  // REACH_PLAIN_DAGGER_H_
