#include "plain/registry.h"

#include <cstdlib>

#include "core/scc_condensing_index.h"
#include "plain/bfl.h"
#include "plain/chain_cover.h"
#include "plain/dagger.h"
#include "plain/dbl.h"
#include "plain/dual_labeling.h"
#include "plain/feline.h"
#include "plain/ferrari.h"
#include "plain/grail.h"
#include "plain/gripp.h"
#include "plain/ip_label.h"
#include "plain/oreach.h"
#include "plain/preach.h"
#include "plain/pruned_two_hop.h"
#include "plain/tree_cover.h"
#include "traversal/online_search.h"
#include "traversal/transitive_closure.h"

namespace reach {

namespace {

// Parses "name:k=7" style parameters; returns `fallback` when absent.
size_t ParseParam(const std::string& spec, const std::string& key,
                  size_t fallback) {
  const std::string needle = key + "=";
  const size_t pos = spec.find(needle);
  if (pos == std::string::npos) return fallback;
  return static_cast<size_t>(
      std::strtoull(spec.c_str() + pos + needle.size(), nullptr, 10));
}

std::string BaseName(const std::string& spec) {
  return spec.substr(0, spec.find(':'));
}

}  // namespace

std::unique_ptr<ReachabilityIndex> MakePlainIndex(const std::string& spec) {
  const std::string name = BaseName(spec);
  if (name == "bfs") {
    return std::make_unique<OnlineSearch>(TraversalKind::kBfs);
  }
  if (name == "dfs") {
    return std::make_unique<OnlineSearch>(TraversalKind::kDfs);
  }
  if (name == "bibfs") {
    return std::make_unique<OnlineSearch>(TraversalKind::kBiBfs);
  }
  if (name == "tc") return std::make_unique<TransitiveClosure>();
  if (name == "treecover") return MakeCondensing<TreeCover>();
  if (name == "dual") return MakeCondensing<DualLabeling>();
  if (name == "chaincover") return MakeCondensing<ChainCover>();
  if (name == "grail") {
    return MakeCondensing<Grail>(ParseParam(spec, "k", 3));
  }
  if (name == "gripp") return std::make_unique<Gripp>();
  if (name == "ferrari") {
    return MakeCondensing<Ferrari>(ParseParam(spec, "k", 4));
  }
  if (name == "pll") {
    return std::make_unique<PrunedTwoHop>(VertexOrder::kDegree);
  }
  if (name == "tfl") {
    return std::make_unique<PrunedTwoHop>(VertexOrder::kTopological);
  }
  if (name == "tol-random") {
    return std::make_unique<PrunedTwoHop>(VertexOrder::kRandom);
  }
  if (name == "tol-revdeg") {
    return std::make_unique<PrunedTwoHop>(VertexOrder::kReverseDegree);
  }
  if (name == "dbl") return std::make_unique<Dbl>();
  if (name == "dagger") {
    return std::make_unique<Dagger>(ParseParam(spec, "k", 3));
  }
  if (name == "oreach") {
    return MakeCondensing<OReach>(ParseParam(spec, "k", 32));
  }
  if (name == "ip") {
    return MakeCondensing<IpLabel>(ParseParam(spec, "k", 4));
  }
  if (name == "bfl") {
    return MakeCondensing<Bfl>(ParseParam(spec, "bits", 256));
  }
  if (name == "feline") return MakeCondensing<Feline>();
  if (name == "preach") return MakeCondensing<Preach>();
  return nullptr;
}

std::vector<std::string> DefaultPlainIndexSpecs() {
  return {"bfs",     "dfs",    "bibfs", "tc",     "treecover",
          "dual",    "chaincover", "gripp", "grail", "ferrari", "pll",
          "tfl",     "tol-random", "dbl", "dagger", "oreach", "ip",
          "bfl",     "feline",  "preach"};
}

void AddIndexReport(MetricsExporter& exporter, const ReachabilityIndex& index,
                    const std::string& name_prefix) {
  IndexReport report = MakeIndexReport(index);
  if (!name_prefix.empty()) report.name = name_prefix + report.name;
  exporter.Add(std::move(report));
}

}  // namespace reach
