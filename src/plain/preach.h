#ifndef REACH_PLAIN_PREACH_H_
#define REACH_PLAIN_PREACH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/reachability_index.h"
#include "core/search_workspace.h"
#include "graph/digraph.h"

namespace reach {

/// PReaCH-inspired index (Merz & Sanders [31], paper §3.4): "pruning and
/// contraction hierarchies". This implementation keeps PReaCH's pruning
/// machinery — DFS numbering with positive and negative certificates — and
/// substitutes a pruned bidirectional BFS for the contraction hierarchy
/// (documented in DESIGN.md):
///
///  * positive certificate: t inside s's DFS subtree interval (forward),
///    or s inside t's subtree interval on the reversed graph (backward);
///  * negative certificates: post[t] must lie in [min_post(s), post(s)],
///    the post-order range of s's *full reachable set* (and dually on the
///    reversed graph); forward/backward topological levels must increase.
///
/// Undecided queries run a bidirectional BFS applying all certificates to
/// every frontier vertex. Input must be a DAG.
class Preach : public ReachabilityIndex {
 public:
  Preach() = default;

  void Build(const Digraph& graph) override;
  bool Query(VertexId s, VertexId t) const override;
  size_t IndexSizeBytes() const override;
  bool IsComplete() const override { return false; }
  std::string Name() const override { return "preach"; }

  /// Pure-certificate verdict: +1 reachable, -1 unreachable, 0 undecided.
  int FilterVerdict(VertexId s, VertexId t) const;

 private:
  const Digraph* graph_ = nullptr;
  // Forward DFS labels.
  std::vector<uint32_t> post_, subtree_low_, reach_low_;
  // Same labels on the reversed graph.
  std::vector<uint32_t> rpost_, rsubtree_low_, rreach_low_;
  std::vector<uint32_t> fwd_level_, bwd_level_;
  mutable SearchWorkspace ws_;
};

}  // namespace reach

#endif  // REACH_PLAIN_PREACH_H_
