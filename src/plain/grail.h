#ifndef REACH_PLAIN_GRAIL_H_
#define REACH_PLAIN_GRAIL_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "core/reachability_index.h"
#include "core/search_workspace.h"
#include "core/workspace_pool.h"
#include "graph/digraph.h"

namespace reach {

/// GRAIL [50] (paper §3.1): a *partial* tree-cover index recording exactly
/// k intervals per vertex, one from each of k random DFS traversals.
///
/// Traversal i assigns post-order ranks post_i and the reachable-set floor
/// low_i[v] = min rank over every vertex reachable from v. For a DAG,
/// s reaches t implies [low_i(t), post_i(t)] ⊆ [low_i(s), post_i(s)] in
/// every traversal. The contrapositive gives a *no-false-negative* filter:
/// any containment violation proves unreachability. Containment in all k
/// traversals is only "maybe": the query falls back to an index-guided DFS
/// that prunes every vertex whose intervals do not contain t's.
///
/// Build time and size are O(k (V + E)) — the linear scalability the survey
/// credits for making indexes feasible on graphs with millions of vertices.
/// Input must be a DAG (wrap in `SccCondensingIndex`).
class Grail : public ReachabilityIndex {
 public:
  /// `k` random traversals; `seed` drives their shuffles. `num_threads`
  /// parallelizes the traversals on the shared pool (the §5 "parallel
  /// computation of indexes" direction): each of the k label columns is
  /// independent, so the build is embarrassingly parallel and
  /// bit-identical to the serial one for the same seed. 0 =
  /// `DefaultThreads()`, 1 = serial.
  explicit Grail(size_t k = 3, uint64_t seed = 0x67'72'61'69ULL,
                 size_t num_threads = 0)
      : k_(k), seed_(seed), num_threads_(num_threads) {}

  void Build(const Digraph& graph) override;
  bool Query(VertexId s, VertexId t) const override;
  size_t IndexSizeBytes() const override;
  bool IsComplete() const override { return false; }
  std::string Name() const override {
    return "grail(k=" + std::to_string(k_) + ")";
  }
  QueryProbe Probe() const override { return ws_pool_.AggregateProbe(); }
  void ResetProbe() const override { ws_pool_.ResetProbes(); }

  size_t PrepareConcurrentQueries(size_t slots) const override {
    if (slots == 0) slots = 1;
    ws_pool_.EnsureSlots(slots);
    return slots;
  }
  bool QueryInSlot(VertexId s, VertexId t, size_t slot) const override;

  /// The pure label test: true = maybe reachable, false = certainly not.
  /// Exposed so tests/benches can measure the filter's false-positive rate
  /// (it must never have false negatives).
  bool MaybeReachable(VertexId s, VertexId t) const;

  /// Number of label-only rejections since Build (negatives settled with
  /// zero traversal — the §5 "many such vertices s" fast path). Counted
  /// atomically so concurrent `BatchQuery` streams don't lose updates.
  size_t label_only_rejections() const {
    return label_only_rejections_.load(std::memory_order_relaxed);
  }

 private:
  bool MaybeReachableCounted(VertexId s, VertexId t, QueryProbe& probe) const;
  bool GuidedDfs(VertexId s, VertexId t, SearchWorkspace& ws) const;

  size_t k_;
  uint64_t seed_;
  size_t num_threads_;
  const Digraph* graph_ = nullptr;
  // Labels for traversal i of vertex v at [v * k_ + i].
  std::vector<uint32_t> post_;
  std::vector<uint32_t> low_;
  mutable WorkspacePool ws_pool_;
  mutable std::atomic<size_t> label_only_rejections_{0};
};

}  // namespace reach

#endif  // REACH_PLAIN_GRAIL_H_
