#include "plain/ip_label.h"

#include <algorithm>
#include <numeric>

#include "graph/rng.h"
#include "graph/topological.h"

namespace reach {

namespace {

// Whether the k-min summary `sub` is consistent with "underlying set of
// sub ⊆ underlying set of super", given budget k.
bool KMinConsistentSubset(std::span<const uint32_t> sub,
                          std::span<const uint32_t> super, size_t k) {
  const bool super_complete = super.size() < k;  // super holds its full set
  const uint32_t super_max = super.empty() ? 0 : super.back();
  for (uint32_t x : sub) {
    if (super_complete || x < super_max) {
      if (!std::binary_search(super.begin(), super.end(), x)) return false;
    }
  }
  return true;
}

}  // namespace

void IpLabel::Build(const Digraph& graph) {
  graph_ = &graph;
  const size_t n = graph.NumVertices();

  // Random permutation pi over vertices.
  std::vector<uint32_t> pi(n);
  std::iota(pi.begin(), pi.end(), 0);
  Xoshiro256ss rng(seed_);
  for (size_t i = n; i > 1; --i) std::swap(pi[i - 1], pi[rng.NextBounded(i)]);

  auto order = TopologicalOrder(graph);
  // k-min over Out: reverse topological merge of successors.
  std::vector<std::vector<uint32_t>> out_sets(n), in_sets(n);
  std::vector<uint32_t> scratch;
  auto merge_kmin = [&](std::vector<uint32_t>& dest, uint32_t own,
                        auto neighbors, const auto& sets) {
    scratch.clear();
    scratch.push_back(own);
    for (VertexId w : neighbors) {
      scratch.insert(scratch.end(), sets[w].begin(), sets[w].end());
    }
    std::sort(scratch.begin(), scratch.end());
    scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());
    if (scratch.size() > k_) scratch.resize(k_);
    dest = scratch;
  };
  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    merge_kmin(out_sets[*it], pi[*it], graph.OutNeighbors(*it), out_sets);
  }
  for (VertexId v : *order) {
    merge_kmin(in_sets[v], pi[v], graph.InNeighbors(v), in_sets);
  }

  out_offsets_.assign(n + 1, 0);
  in_offsets_.assign(n + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    out_offsets_[v + 1] = out_offsets_[v] + out_sets[v].size();
    in_offsets_[v + 1] = in_offsets_[v] + in_sets[v].size();
  }
  out_min_.clear();
  in_min_.clear();
  out_min_.reserve(out_offsets_[n]);
  in_min_.reserve(in_offsets_[n]);
  for (VertexId v = 0; v < n; ++v) {
    out_min_.insert(out_min_.end(), out_sets[v].begin(), out_sets[v].end());
    in_min_.insert(in_min_.end(), in_sets[v].begin(), in_sets[v].end());
  }

  fwd_level_ = ForwardLevels(graph);
  bwd_level_ = BackwardLevels(graph);
}

bool IpLabel::MaybeReachable(VertexId s, VertexId t) const {
  if (s == t) return true;
  if (fwd_level_[s] >= fwd_level_[t]) return false;
  if (bwd_level_[s] <= bwd_level_[t]) return false;
  // s -> t requires Out(t) ⊆ Out(s) and In(s) ⊆ In(t).
  if (!KMinConsistentSubset(OutMin(t), OutMin(s), k_)) return false;
  if (!KMinConsistentSubset(InMin(s), InMin(t), k_)) return false;
  return true;
}

bool IpLabel::Query(VertexId s, VertexId t) const {
  if (s == t) return true;
  if (!MaybeReachable(s, t)) return false;
  // Guided DFS: prune every vertex the filter rules out against t.
  ws_.Prepare(graph_->NumVertices());
  auto& stack = ws_.queue();
  ws_.MarkForward(s);
  stack.push_back(s);
  while (!stack.empty()) {
    const VertexId v = stack.back();
    stack.pop_back();
    for (VertexId w : graph_->OutNeighbors(v)) {
      if (w == t) return true;
      if (!ws_.IsForwardMarked(w) && MaybeReachable(w, t)) {
        ws_.MarkForward(w);
        stack.push_back(w);
      }
    }
  }
  return false;
}

size_t IpLabel::IndexSizeBytes() const {
  return (out_min_.size() + in_min_.size()) * sizeof(uint32_t) +
         (out_offsets_.size() + in_offsets_.size()) * sizeof(size_t) +
         (fwd_level_.size() + bwd_level_.size()) * sizeof(uint32_t);
}

}  // namespace reach
