#ifndef REACH_PLAIN_DUAL_LABELING_H_
#define REACH_PLAIN_DUAL_LABELING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/dynamic_bitset.h"
#include "core/reachability_index.h"
#include "graph/digraph.h"

namespace reach {

/// Dual labeling (Wang et al. [17], paper §3.1): constant-time reachability
/// for graphs that are "almost trees" (XML-style data), by combining
///
///  * interval labels over a spanning forest (the tree part), and
///  * a transitive closure over the small *link graph* whose nodes are the
///    non-tree edges: link (u1, v1) precedes link (u2, v2) iff v1 reaches
///    u2 through the spanning forest.
///
/// Qr(s, t) is true iff t is in s's forest subtree, or there are non-tree
/// edges i = (ui, vi) and j = (uj, vj) with ui in s's subtree scope
/// (s tree-reaches ui), i reaches j in the link closure, and t in vj's
/// subtree. Complete index; query cost and the O(t^2) closure grow with
/// the number t of non-tree edges — exactly the survey's caveat that the
/// design only suits graphs where that number is very low. Non-tree edges
/// already implied by the forest (forward edges) are dropped.
///
/// Input must be a DAG (wrap in `SccCondensingIndex`).
class DualLabeling : public ReachabilityIndex {
 public:
  DualLabeling() = default;

  void Build(const Digraph& graph) override;
  bool Query(VertexId s, VertexId t) const override;
  size_t IndexSizeBytes() const override;
  bool IsComplete() const override { return true; }
  std::string Name() const override { return "dual"; }

  /// Number of retained non-tree links (the t in the O(t^2) bound).
  size_t NumLinks() const { return link_source_.size(); }

 private:
  bool SubtreeContains(VertexId s, VertexId t) const {
    return subtree_low_[s] <= post_[t] && post_[t] <= post_[s];
  }

  std::vector<uint32_t> post_, subtree_low_;
  // Non-tree links: link i is edge link_source_[i] -> link_target_[i].
  std::vector<VertexId> link_source_, link_target_;
  // closure_[i] = links reachable from link i (including itself).
  std::vector<DynamicBitset> closure_;
  // links_from_[v]: ids of links whose source lies in v's subtree, sorted
  // by subtree interval for fast scanning (flat: all links; filtered at
  // query time via SubtreeContains).
  mutable DynamicBitset scratch_;
};

}  // namespace reach

#endif  // REACH_PLAIN_DUAL_LABELING_H_
