#include "plain/oreach.h"

#include <algorithm>
#include <numeric>

#include "graph/topological.h"

namespace reach {

void OReach::Build(const Digraph& graph) {
  graph_ = &graph;
  const size_t n = graph.NumVertices();
  fwd_mask_.assign(n, 0);
  bwd_mask_.assign(n, 0);

  // Supports: highest-degree vertices.
  std::vector<VertexId> by_degree(n);
  std::iota(by_degree.begin(), by_degree.end(), 0);
  std::stable_sort(by_degree.begin(), by_degree.end(),
                   [&](VertexId a, VertexId b) {
                     return graph.Degree(a) > graph.Degree(b);
                   });
  const size_t k = std::min(num_supports_, n);

  // One backward + one forward BFS per support fills the masks.
  SearchWorkspace ws;
  for (size_t h = 0; h < k; ++h) {
    const VertexId support = by_degree[h];
    const uint64_t bit = uint64_t{1} << h;
    ws.Prepare(n);
    auto& queue = ws.queue();
    queue.clear();
    queue.push_back(support);
    ws.MarkForward(support);
    fwd_mask_[support] |= bit;  // support reaches itself
    for (size_t head = 0; head < queue.size(); ++head) {
      for (VertexId w : graph.InNeighbors(queue[head])) {
        if (ws.MarkForward(w)) {
          fwd_mask_[w] |= bit;
          queue.push_back(w);
        }
      }
    }
    ws.Prepare(n);
    queue.clear();
    queue.push_back(support);
    ws.MarkForward(support);
    bwd_mask_[support] |= bit;
    for (size_t head = 0; head < queue.size(); ++head) {
      for (VertexId w : graph.OutNeighbors(queue[head])) {
        if (ws.MarkForward(w)) {
          bwd_mask_[w] |= bit;
          queue.push_back(w);
        }
      }
    }
  }

  topo_a_ = RankOf(*TopologicalOrder(graph));
  topo_b_ = RankOf(*TopologicalOrderReverseTies(graph));
  fwd_level_ = ForwardLevels(graph);
  bwd_level_ = BackwardLevels(graph);
}

int OReach::FilterVerdict(VertexId s, VertexId t) const {
  if (s == t) return 1;
  // Extended topological observations: all four orders must agree with
  // s -> t, otherwise it is impossible.
  if (topo_a_[s] >= topo_a_[t] || topo_b_[s] >= topo_b_[t] ||
      fwd_level_[s] >= fwd_level_[t] || bwd_level_[s] <= bwd_level_[t]) {
    return -1;
  }
  if ((fwd_mask_[s] & bwd_mask_[t]) != 0) return 1;  // common support
  // Support-containment contrapositive.
  if ((fwd_mask_[t] & ~fwd_mask_[s]) != 0) return -1;
  if ((bwd_mask_[s] & ~bwd_mask_[t]) != 0) return -1;
  return 0;
}

bool OReach::Query(VertexId s, VertexId t) const {
  const int verdict = FilterVerdict(s, t);
  if (verdict != 0) return verdict > 0;

  ws_.Prepare(graph_->NumVertices());
  auto& fwd = ws_.queue();
  auto& bwd = ws_.backward_queue();
  ws_.MarkForward(s);
  ws_.MarkBackward(t);
  fwd.push_back(s);
  bwd.push_back(t);
  size_t fwd_head = 0, bwd_head = 0;
  while (fwd_head < fwd.size() && bwd_head < bwd.size()) {
    const bool expand_forward =
        (fwd.size() - fwd_head) <= (bwd.size() - bwd_head);
    if (expand_forward) {
      const size_t level_end = fwd.size();
      for (; fwd_head < level_end; ++fwd_head) {
        bool hit = false;
        for (VertexId w : graph_->OutNeighbors(fwd[fwd_head])) {
          if (ws_.IsBackwardMarked(w)) return true;
          if (ws_.IsForwardMarked(w)) continue;
          const int wv = FilterVerdict(w, t);
          if (wv > 0) {
            hit = true;
            break;
          }
          if (wv < 0) continue;
          ws_.MarkForward(w);
          fwd.push_back(w);
        }
        if (hit) return true;
      }
    } else {
      const size_t level_end = bwd.size();
      for (; bwd_head < level_end; ++bwd_head) {
        bool hit = false;
        for (VertexId w : graph_->InNeighbors(bwd[bwd_head])) {
          if (ws_.IsForwardMarked(w)) return true;
          if (ws_.IsBackwardMarked(w)) continue;
          const int wv = FilterVerdict(s, w);
          if (wv > 0) {
            hit = true;
            break;
          }
          if (wv < 0) continue;
          ws_.MarkBackward(w);
          bwd.push_back(w);
        }
        if (hit) return true;
      }
    }
  }
  return false;
}

size_t OReach::IndexSizeBytes() const {
  return (fwd_mask_.size() + bwd_mask_.size()) * sizeof(uint64_t) +
         (topo_a_.size() + topo_b_.size() + fwd_level_.size() +
          bwd_level_.size()) *
             sizeof(uint32_t);
}

}  // namespace reach
