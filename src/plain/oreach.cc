#include "plain/oreach.h"

namespace reach {

void OReach::Build(const Digraph& graph) {
  graph_ = &graph;
  stack_.Build(graph);
}

bool OReach::Query(VertexId s, VertexId t) const {
  const int verdict = stack_.Verdict(s, t);
  if (verdict != 0) return verdict > 0;

  // Bidirectional BFS over the undecided band: a candidate the stack
  // settles positively ends the search, a negatively settled one is
  // pruned, and only genuinely undecided vertices join the front.
  ws_.Prepare(graph_->NumVertices());
  auto& fwd = ws_.queue();
  auto& bwd = ws_.backward_queue();
  ws_.MarkForward(s);
  ws_.MarkBackward(t);
  fwd.push_back(s);
  bwd.push_back(t);
  size_t fwd_head = 0, bwd_head = 0;
  while (fwd_head < fwd.size() && bwd_head < bwd.size()) {
    const bool expand_forward =
        (fwd.size() - fwd_head) <= (bwd.size() - bwd_head);
    if (expand_forward) {
      const size_t level_end = fwd.size();
      for (; fwd_head < level_end; ++fwd_head) {
        bool hit = false;
        for (VertexId w : graph_->OutNeighbors(fwd[fwd_head])) {
          if (ws_.IsBackwardMarked(w)) return true;
          if (ws_.IsForwardMarked(w)) continue;
          const int wv = stack_.Verdict(w, t);
          if (wv > 0) {
            hit = true;
            break;
          }
          if (wv < 0) continue;
          ws_.MarkForward(w);
          fwd.push_back(w);
        }
        if (hit) return true;
      }
    } else {
      const size_t level_end = bwd.size();
      for (; bwd_head < level_end; ++bwd_head) {
        bool hit = false;
        for (VertexId w : graph_->InNeighbors(bwd[bwd_head])) {
          if (ws_.IsForwardMarked(w)) return true;
          if (ws_.IsBackwardMarked(w)) continue;
          const int wv = stack_.Verdict(s, w);
          if (wv > 0) {
            hit = true;
            break;
          }
          if (wv < 0) continue;
          ws_.MarkBackward(w);
          bwd.push_back(w);
        }
        if (hit) return true;
      }
    }
  }
  return false;
}

}  // namespace reach
