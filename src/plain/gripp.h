#ifndef REACH_PLAIN_GRIPP_H_
#define REACH_PLAIN_GRIPP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/reachability_index.h"
#include "graph/digraph.h"

namespace reach {

/// GRIPP (Trißl & Leser [43], paper §3.1): a partial tree-cover index that
/// works directly on *general* graphs (the only tree-cover row of Table 1
/// with Input = General).
///
/// The graph is unrolled into an *instance tree* by a DFS in which every
/// edge creates an instance of its target: the first visit of a vertex
/// creates its expanded *tree instance* (whose subtree is explored); every
/// later encounter creates a leaf *non-tree instance* (a "hop node").
/// Instances carry pre/post intervals. A vertex u reaches v iff some
/// instance of v lies in u's tree-instance interval, or transitively in
/// the tree interval of a vertex whose non-tree instance lies there — the
/// query processes intervals through hop nodes, which is why the survey
/// classifies GRIPP as partial: "it requires graph traversal if the
/// partial index returns false". Positive hits inside the first interval
/// are instant; there are no false positives at any stage.
///
/// Index size is O(V + E) instances regardless of graph shape.
class Gripp : public ReachabilityIndex {
 public:
  Gripp() = default;

  void Build(const Digraph& graph) override;
  bool Query(VertexId s, VertexId t) const override;
  size_t IndexSizeBytes() const override;
  bool IsComplete() const override { return false; }
  std::string Name() const override { return "gripp"; }

  /// Number of instance-tree nodes (|V| tree + |non-tree| hop instances).
  size_t NumInstances() const {
    return num_vertices_ + hop_order_.size();
  }

 private:
  struct TreeInstance {
    uint32_t pre = 0;
    uint32_t post = 0;
  };
  struct HopInstance {
    uint32_t pre = 0;   // position in the instance tree
    VertexId vertex = 0;
  };

  size_t num_vertices_ = 0;
  // Tree instance (unique) per vertex; vertices never reached from a DFS
  // root still get one (every vertex starts a DFS if unvisited).
  std::vector<TreeInstance> tree_;
  // Hop (non-tree) instances sorted by pre order, for range scans.
  std::vector<HopInstance> hop_order_;
  // For "is any instance of t inside [a, b]": per-vertex sorted list of
  // all instance pre positions (tree + hop), CSR layout.
  std::vector<size_t> instance_offsets_;
  std::vector<uint32_t> instance_pres_;
  mutable std::vector<bool> expanded_;  // per-vertex scratch for queries
};

}  // namespace reach

#endif  // REACH_PLAIN_GRIPP_H_
