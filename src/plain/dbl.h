#ifndef REACH_PLAIN_DBL_H_
#define REACH_PLAIN_DBL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/reachability_index.h"
#include "core/search_workspace.h"
#include "graph/digraph.h"

namespace reach {

/// DBL [29] (paper §3.2): a *partial*, insertion-dynamic 2-hop-style index
/// combining two complementary 64-bit labels per direction:
///
///  * DL — a *landmark* label: bit d of DlOut(v) is set iff v reaches the
///    d-th landmark (the 64 highest-degree vertices); DlIn dually. A common
///    landmark (DlOut(s) & DlIn(t) != 0) certifies reachability: a
///    *no-false-positive* positive filter.
///  * BL — a *bloom* label: every vertex hashes to one of 64 buckets, and
///    BlOut(v) is the bloom of v's full reachable set (BlIn dually). By the
///    contra-positive containment argument of §3.3, BlOut(t) ⊄ BlOut(s) or
///    BlIn(s) ⊄ BlIn(t) certifies *un*reachability: a *no-false-negative*
///    negative filter.
///
/// Queries undecided by both filters fall back to a bidirectional BFS that
/// re-applies the filters per visited vertex. Inserts (via `ApplyUpdate`)
/// maintain both labels by monotone propagation (labels only gain bits),
/// exactly the insert-only design the survey credits DBL with; deletions
/// are unsupported (Table 1: insertion-only) — `SupportsDeletions()` is
/// false and a batch containing any `kDelete` is rejected whole, with no
/// partial application.
class Dbl : public DynamicReachabilityIndex {
 public:
  explicit Dbl(uint64_t seed = 0x64'62'6cULL) : seed_(seed) {}

  void Build(const Digraph& graph) override;
  bool Query(VertexId s, VertexId t) const override;
  size_t IndexSizeBytes() const override;
  bool IsComplete() const override { return false; }
  std::string Name() const override { return "dbl"; }

  UpdateResult ApplyUpdate(const UpdateBatch& batch) override;

  /// Pure-filter outcomes for tests/benches: +1 certain reachable (DL),
  /// -1 certain unreachable (BL), 0 undecided.
  int FilterVerdict(VertexId s, VertexId t) const;

 private:
  // Single-edge insert; returns true when graph state changed.
  bool ApplyInsert(VertexId s, VertexId t);

  template <typename Fn>
  void ForEachOut(VertexId v, Fn&& fn) const;
  template <typename Fn>
  void ForEachIn(VertexId v, Fn&& fn) const;

  uint64_t seed_;
  const Digraph* graph_ = nullptr;
  std::vector<uint64_t> dl_out_, dl_in_;  // landmark bitmasks
  std::vector<uint64_t> bl_out_, bl_in_;  // bloom bitmasks
  std::vector<uint64_t> hash_bit_;        // each vertex's bloom bit
  std::vector<std::vector<VertexId>> extra_out_, extra_in_;
  mutable SearchWorkspace ws_;
};

}  // namespace reach

#endif  // REACH_PLAIN_DBL_H_
