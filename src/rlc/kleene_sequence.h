#ifndef REACH_RLC_KLEENE_SEQUENCE_H_
#define REACH_RLC_KLEENE_SEQUENCE_H_

#include <string>
#include <vector>

#include "graph/types.h"

namespace reach {

/// The label sequence (l1 · l2 · ... · lk) under a Kleene operator — the
/// constraint of a recursive label-concatenated (RLC) query, paper §4.2:
/// Qr(s, t, (l1···lk)*) asks for an s-t path whose edge-label sequence is
/// an arbitrary number (>= 0; an empty path satisfies zero repeats, making
/// reachability reflexive) of repeats of the sequence.
using KleeneSequence = std::vector<Label>;

/// The *minimum repeat* (MR) of a label sequence, the compression device
/// of the RLC index [52]: the shortest prefix whose repetition spells the
/// whole sequence, e.g. MR(worksFor, friendOf, worksFor, friendOf) =
/// (worksFor, friendOf). Returns the input when it is not periodic.
KleeneSequence MinimumRepeat(const KleeneSequence& sequence);

/// Renders "(worksFor·friendOf)*" using `names` (bit indexes if missing).
std::string KleeneSequenceToString(const KleeneSequence& sequence,
                                   const std::vector<std::string>& names);

}  // namespace reach

#endif  // REACH_RLC_KLEENE_SEQUENCE_H_
