#include "rlc/kleene_sequence.h"

namespace reach {

KleeneSequence MinimumRepeat(const KleeneSequence& sequence) {
  const size_t n = sequence.size();
  for (size_t period = 1; period <= n / 2; ++period) {
    if (n % period != 0) continue;
    bool repeats = true;
    for (size_t i = period; i < n && repeats; ++i) {
      repeats = sequence[i] == sequence[i - period];
    }
    if (repeats) {
      return KleeneSequence(sequence.begin(), sequence.begin() + period);
    }
  }
  return sequence;
}

std::string KleeneSequenceToString(const KleeneSequence& sequence,
                                   const std::vector<std::string>& names) {
  std::string out = "(";
  for (size_t i = 0; i < sequence.size(); ++i) {
    if (i > 0) out += "·";  // middle dot
    if (sequence[i] < names.size()) {
      out += names[sequence[i]];
    } else {
      out += std::to_string(sequence[i]);
    }
  }
  out += ")*";
  return out;
}

}  // namespace reach
