#ifndef REACH_RLC_RLC_PRODUCT_BFS_H_
#define REACH_RLC_RLC_PRODUCT_BFS_H_

#include <cstddef>

#include "core/search_workspace.h"
#include "graph/labeled_digraph.h"
#include "rlc/kleene_sequence.h"

namespace reach {

/// Online baseline for RLC queries (paper §2.3 / §4.2): BFS over the
/// product of the graph with the cyclic automaton of the sequence. States
/// are (vertex, phase): at phase i only edges labeled sequence[i] may be
/// taken, advancing to phase (i+1) mod k. Qr(s, t, (seq)*) is true iff
/// s == t (zero repeats) or state (t, 0) is reachable from (s, 0).
bool RlcProductBfsReachability(const LabeledDigraph& graph, VertexId s,
                               VertexId t, const KleeneSequence& sequence,
                               SearchWorkspace& ws,
                               size_t* visited = nullptr);

}  // namespace reach

#endif  // REACH_RLC_RLC_PRODUCT_BFS_H_
