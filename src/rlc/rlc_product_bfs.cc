#include "rlc/rlc_product_bfs.h"

namespace reach {

bool RlcProductBfsReachability(const LabeledDigraph& graph, VertexId s,
                               VertexId t, const KleeneSequence& sequence,
                               SearchWorkspace& ws, size_t* visited) {
  if (s == t) {
    if (visited != nullptr) *visited = 1;
    return true;  // zero repeats: the empty path
  }
  if (sequence.empty()) {
    if (visited != nullptr) *visited = 1;
    return false;  // no non-empty word in the language
  }
  const size_t k = sequence.size();
  const size_t num_states = graph.NumVertices() * k;
  ws.Prepare(num_states);
  auto& queue = ws.queue();
  const auto state_of = [k](VertexId v, size_t phase) {
    return static_cast<VertexId>(v * k + phase);
  };
  ws.MarkForward(state_of(s, 0));
  queue.push_back(state_of(s, 0));
  size_t count = 1;
  for (size_t head = 0; head < queue.size(); ++head) {
    const VertexId state = queue[head];
    const VertexId v = state / static_cast<VertexId>(k);
    const size_t phase = state % k;
    const Label expected = sequence[phase];
    const size_t next_phase = (phase + 1) % k;
    for (const LabeledDigraph::Arc& arc : graph.OutArcs(v)) {
      if (arc.label != expected) continue;
      if (arc.vertex == t && next_phase == 0) {
        if (visited != nullptr) *visited = count;
        return true;
      }
      const VertexId next = state_of(arc.vertex, next_phase);
      if (ws.MarkForward(next)) {
        queue.push_back(next);
        ++count;
      }
    }
  }
  if (visited != nullptr) *visited = count;
  return false;
}

}  // namespace reach
