#ifndef REACH_RLC_RLC_INDEX_H_
#define REACH_RLC_RLC_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/search_workspace.h"
#include "graph/digraph.h"
#include "graph/labeled_digraph.h"
#include "plain/pruned_two_hop.h"
#include "rlc/kleene_sequence.h"

namespace reach {

/// The RLC index (Zhang et al. [52], paper §4.2): a 2-hop index for
/// recursive label-concatenated queries Qr(s, t, (l1···lk)*).
///
/// Formulation: the original work records *minimum repeats* of edge-label
/// sequences inside a 2-hop skeleton, guided by the concatenation length
/// under the Kleene operator. This implementation realizes the equivalent
/// product construction (see DESIGN.md): for each Kleene-sequence template
/// registered at build time, it materializes the product of the graph with
/// the sequence's cyclic automaton — states (vertex, phase), edges only on
/// matching labels — and builds a pruned 2-hop labeling (`PrunedTwoHop`,
/// our TOL implementation) over it. A query for a registered template is
/// then a pure 2-hop lookup from (s, 0) to (t, 0); queries for templates
/// that were not registered fall back to the online product BFS.
///
/// Zero-repeat semantics: Qr(v, v, anything) = true (empty path).
class RlcIndex {
 public:
  RlcIndex() = default;

  /// Builds labelings for every template. Templates are typically the
  /// recurring Kleene sub-expressions of the query workload.
  void Build(const LabeledDigraph& graph,
             std::vector<KleeneSequence> templates);

  /// Answers Qr(s, t, (sequence)*); indexed lookup when the sequence is a
  /// registered template, online product BFS otherwise.
  bool Query(VertexId s, VertexId t, const KleeneSequence& sequence) const;

  /// True iff `sequence` was registered at build time.
  bool IsIndexed(const KleeneSequence& sequence) const {
    return FindTemplate(sequence) != SIZE_MAX;
  }

  /// Bytes across all per-template 2-hop labelings.
  size_t IndexSizeBytes() const;

  /// Number of registered templates.
  size_t NumTemplates() const { return templates_.size(); }

  std::string Name() const { return "rlc"; }

 private:
  size_t FindTemplate(const KleeneSequence& sequence) const;

  const LabeledDigraph* graph_ = nullptr;
  std::vector<KleeneSequence> templates_;
  // Per template: the product graph (kept alive for the 2-hop index) and
  // its labeling.
  std::vector<std::unique_ptr<Digraph>> product_graphs_;
  std::vector<std::unique_ptr<PrunedTwoHop>> labelings_;
  mutable SearchWorkspace ws_;
};

}  // namespace reach

#endif  // REACH_RLC_RLC_INDEX_H_
