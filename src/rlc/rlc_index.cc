#include "rlc/rlc_index.h"

#include <utility>

#include "rlc/rlc_product_bfs.h"

namespace reach {

namespace {

// Product of `graph` with the cyclic automaton of `sequence`:
// state (v, phase) = v * k + phase; an edge u -l-> v with l == sequence[i]
// connects (u, i) to (v, (i+1) mod k).
Digraph BuildProductGraph(const LabeledDigraph& graph,
                          const KleeneSequence& sequence) {
  const size_t k = sequence.size();
  std::vector<Edge> edges;
  for (VertexId u = 0; u < graph.NumVertices(); ++u) {
    for (const LabeledDigraph::Arc& arc : graph.OutArcs(u)) {
      for (size_t phase = 0; phase < k; ++phase) {
        if (sequence[phase] != arc.label) continue;
        const size_t next_phase = (phase + 1) % k;
        edges.push_back(
            {static_cast<VertexId>(u * k + phase),
             static_cast<VertexId>(arc.vertex * k + next_phase)});
      }
    }
  }
  return Digraph::FromEdges(
      static_cast<VertexId>(graph.NumVertices() * k), std::move(edges));
}

}  // namespace

void RlcIndex::Build(const LabeledDigraph& graph,
                     std::vector<KleeneSequence> templates) {
  graph_ = &graph;
  templates_ = std::move(templates);
  product_graphs_.clear();
  labelings_.clear();
  for (const KleeneSequence& sequence : templates_) {
    product_graphs_.push_back(
        std::make_unique<Digraph>(BuildProductGraph(graph, sequence)));
    labelings_.push_back(std::make_unique<PrunedTwoHop>(VertexOrder::kDegree));
    labelings_.back()->Build(*product_graphs_.back());
  }
}

size_t RlcIndex::FindTemplate(const KleeneSequence& sequence) const {
  for (size_t i = 0; i < templates_.size(); ++i) {
    if (templates_[i] == sequence) return i;
  }
  return SIZE_MAX;
}

bool RlcIndex::Query(VertexId s, VertexId t,
                     const KleeneSequence& sequence) const {
  if (s == t) return true;  // zero repeats
  if (sequence.empty()) return false;
  const size_t i = FindTemplate(sequence);
  if (i == SIZE_MAX) {
    return RlcProductBfsReachability(*graph_, s, t, sequence, ws_);
  }
  const size_t k = sequence.size();
  // (s, 0) and (t, 0) differ because s != t, so the 2-hop lookup is a
  // genuine product-reachability test.
  return labelings_[i]->Query(static_cast<VertexId>(s * k),
                              static_cast<VertexId>(t * k));
}

size_t RlcIndex::IndexSizeBytes() const {
  size_t bytes = 0;
  for (const auto& labeling : labelings_) bytes += labeling->IndexSizeBytes();
  return bytes;
}

}  // namespace reach
