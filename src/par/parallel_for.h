#ifndef REACH_PAR_PARALLEL_FOR_H_
#define REACH_PAR_PARALLEL_FOR_H_

#include <cstddef>
#include <functional>

#include "par/thread_pool.h"

namespace reach {

/// Runs `fn(worker)` once for every worker id in [0, num_workers) —
/// worker 0 on the calling thread, the rest on the global pool — and
/// blocks until all return. The first exception thrown by any worker is
/// rethrown on the caller after every worker finished. Called from inside
/// a pool worker (nested parallelism), the ids run sequentially on the
/// caller instead, so pool workers never block on pool work.
///
/// `num_workers` may exceed the pool's thread count: surplus ids queue
/// and run as workers free up, so algorithms whose *partitioning* depends
/// on the requested thread count behave identically on any machine.
void ParallelForWorkers(size_t num_workers,
                        const std::function<void(size_t)>& fn);

/// Runs `fn(chunk_begin, chunk_end)` over a dynamic partition of
/// [begin, end) into chunks of `grain` indexes (0 = pick automatically).
/// Chunks are claimed from a shared counter, so uneven chunk costs
/// balance across workers. `num_threads`: 0 = `DefaultThreads()`, 1 =
/// serial (one `fn(begin, end)` call, no pool touched).
void ParallelForChunked(size_t begin, size_t end,
                        const std::function<void(size_t, size_t)>& fn,
                        size_t num_threads = 0, size_t grain = 0);

/// Runs `fn(i)` for every i in [begin, end), chunked as in
/// `ParallelForChunked`. Use for loop bodies heavy enough to amortize an
/// indirect call per index (a BFS, a bitset-row union); for tight loops
/// prefer `ParallelForChunked` and iterate inside the chunk.
void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t)>& fn,
                 size_t num_threads = 0, size_t grain = 0);

}  // namespace reach

#endif  // REACH_PAR_PARALLEL_FOR_H_
