#include "par/parallel_for.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>

namespace reach {

void ParallelForWorkers(size_t num_workers,
                        const std::function<void(size_t)>& fn) {
  if (num_workers == 0) return;
  if (num_workers == 1 || ThreadPool::CurrentWorkerIndex() >= 0) {
    for (size_t w = 0; w < num_workers; ++w) fn(w);
    return;
  }

  struct Shared {
    std::mutex mutex;
    std::condition_variable done_cv;
    size_t remaining;
    std::exception_ptr first_error;
  } shared;
  shared.remaining = num_workers - 1;

  ThreadPool& pool = ThreadPool::Global();
  for (size_t w = 1; w < num_workers; ++w) {
    pool.Submit([&shared, &fn, w]() {
      try {
        fn(w);
      } catch (...) {
        std::lock_guard<std::mutex> lock(shared.mutex);
        if (!shared.first_error) shared.first_error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(shared.mutex);
      if (--shared.remaining == 0) shared.done_cv.notify_one();
    });
  }

  std::exception_ptr caller_error;
  try {
    fn(0);
  } catch (...) {
    caller_error = std::current_exception();
  }
  std::unique_lock<std::mutex> lock(shared.mutex);
  shared.done_cv.wait(lock, [&shared]() { return shared.remaining == 0; });
  if (caller_error) std::rethrow_exception(caller_error);
  if (shared.first_error) std::rethrow_exception(shared.first_error);
}

void ParallelForChunked(size_t begin, size_t end,
                        const std::function<void(size_t, size_t)>& fn,
                        size_t num_threads, size_t grain) {
  if (begin >= end) return;
  const size_t count = end - begin;
  const size_t threads =
      std::min(ResolveThreads(num_threads), count);
  if (threads <= 1 || ThreadPool::CurrentWorkerIndex() >= 0) {
    fn(begin, end);
    return;
  }
  if (grain == 0) grain = std::max<size_t>(1, count / (8 * threads));
  std::atomic<size_t> next{begin};
  ParallelForWorkers(threads, [&next, &fn, end, grain](size_t) {
    for (;;) {
      const size_t chunk_begin =
          next.fetch_add(grain, std::memory_order_relaxed);
      if (chunk_begin >= end) return;
      fn(chunk_begin, std::min(chunk_begin + grain, end));
    }
  });
}

void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t)>& fn, size_t num_threads,
                 size_t grain) {
  ParallelForChunked(
      begin, end,
      [&fn](size_t chunk_begin, size_t chunk_end) {
        for (size_t i = chunk_begin; i < chunk_end; ++i) fn(i);
      },
      num_threads, grain);
}

}  // namespace reach
