#include "par/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>

#include "obs/trace.h"

namespace reach {

namespace {

// Worker identity of the current thread within its pool, -1 elsewhere.
thread_local int tls_worker_index = -1;

// SetDefaultThreads override; 0 = unset. Atomic so tools may adjust it
// while benches read it from other threads.
std::atomic<size_t> g_default_threads_override{0};

}  // namespace

namespace internal {

size_t ParseThreadsValue(const char* value, size_t fallback) {
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0' || parsed == 0) return fallback;
  return static_cast<size_t>(parsed);
}

}  // namespace internal

size_t HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

size_t DefaultThreads() {
  const size_t override = g_default_threads_override.load(std::memory_order_relaxed);
  if (override != 0) return override;
  return internal::ParseThreadsValue(std::getenv("REACH_THREADS"),
                                     HardwareThreads());
}

void SetDefaultThreads(size_t num_threads) {
  g_default_threads_override.store(num_threads, std::memory_order_relaxed);
}

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = num_threads == 0 ? 1 : num_threads;
  queues_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<WorkQueue>());
  }
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i]() { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(idle_mutex_);
    stop_ = true;
  }
  idle_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  // A worker submitting into its own pool pushes onto its own deque (it
  // pops LIFO, so nested work runs before stolen work); external threads
  // round-robin across the deques.
  const int self = tls_worker_index;
  const size_t target =
      (self >= 0 && static_cast<size_t>(self) < queues_.size())
          ? static_cast<size_t>(self)
          : next_queue_.fetch_add(1, std::memory_order_relaxed) %
                queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mutex);
    queues_[target]->tasks.push_back(std::move(task));
  }
  // Publish after the push: a worker woken by `pending_ > 0` must find the
  // task in some deque instead of spinning on a not-yet-visible one.
  {
    std::lock_guard<std::mutex> lock(idle_mutex_);
    ++pending_;
  }
  idle_cv_.notify_one();
}

void ThreadPool::Quiesce() {
  std::unique_lock<std::mutex> lock(idle_mutex_);
  quiesce_cv_.wait(lock, [this]() { return pending_ == 0 && active_ == 0; });
}

bool ThreadPool::PopOrSteal(size_t self, std::function<void()>* task) {
  {
    WorkQueue& own = *queues_[self];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      *task = std::move(own.tasks.back());  // LIFO: newest first, locality
      own.tasks.pop_back();
      return true;
    }
  }
  for (size_t offset = 1; offset < queues_.size(); ++offset) {
    WorkQueue& victim = *queues_[(self + offset) % queues_.size()];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.tasks.empty()) {
      *task = std::move(victim.tasks.front());  // FIFO steal: oldest first
      victim.tasks.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(size_t index) {
  tls_worker_index = static_cast<int>(index);
#if REACH_METRICS
  TraceRecorder::Global().SetCurrentThreadName("pool-worker-" +
                                               std::to_string(index));
#endif
  std::function<void()> task;
  for (;;) {
    if (PopOrSteal(index, &task)) {
      {
        std::lock_guard<std::mutex> lock(idle_mutex_);
        --pending_;
        ++active_;
      }
      {
        // One span per executed task: parallel-build imbalance and idle
        // gaps become visible on the trace timeline (docs/TRACING.md).
        REACH_TRACE_SPAN("pool.task");
        task();
      }
      // The span above is recorded before `active_` drops, so a
      // `Quiesce`-then-scrape sees every completed task's span.
      task = nullptr;
      {
        std::lock_guard<std::mutex> lock(idle_mutex_);
        if (--active_ == 0 && pending_ == 0) quiesce_cv_.notify_all();
      }
      continue;
    }
    std::unique_lock<std::mutex> lock(idle_mutex_);
    // `pending_` can be stale the moment the queues looked empty; recheck
    // under the idle lock, which every Submit takes before notifying.
    idle_cv_.wait(lock, [this]() { return stop_ || pending_ > 0; });
    if (stop_ && pending_ == 0) return;  // drained: queued work runs first
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool(DefaultThreads());
  return pool;
}

int ThreadPool::CurrentWorkerIndex() { return tls_worker_index; }

}  // namespace reach
