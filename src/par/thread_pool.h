#ifndef REACH_PAR_THREAD_POOL_H_
#define REACH_PAR_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace reach {

/// A work-stealing thread pool — the shared parallel-build substrate of
/// the §5 "parallel computation of indexes" direction (docs/PARALLELISM.md).
///
/// Each worker owns a deque: it pops its own tasks LIFO (locality for
/// nested/recursive submission) and steals FIFO from the other workers
/// when its deque runs dry, so a burst of uneven tasks — pruned BFSs whose
/// cost varies by orders of magnitude — balances without a central
/// bottleneck. Tasks submitted from within a worker go to that worker's
/// own deque; external submissions round-robin.
///
/// One process-global instance (`Global()`) is created lazily with
/// `DefaultThreads()` workers; index builders accept a per-call thread
/// count and only fall back to the global pool when it is 0. Destroying a
/// pool drains every queued task, then joins.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (excluding callers, which participate in
  /// `ParallelFor*` loops on top of this).
  size_t NumThreads() const { return workers_.size(); }

  /// Enqueues `task` for execution. Tasks must not block waiting for
  /// other pool tasks (the `ParallelFor*` helpers run inline when called
  /// from a worker for exactly this reason).
  void Submit(std::function<void()> task);

  /// Blocks until every task queued so far has finished *executing* —
  /// including instrumentation that runs as the task scope unwinds, such
  /// as the worker's `pool.task` trace span. A completion signal inside a
  /// task (a condition variable, a future) can unblock its waiter before
  /// the worker leaves the task scope; callers that scrape per-worker
  /// state afterwards (e.g. `TraceExporter`) use this to close that
  /// window. Point-in-time only: tasks submitted concurrently with the
  /// wait may or may not be covered. Must not be called from a pool
  /// worker.
  void Quiesce();

  /// The process-global pool, created on first use with `DefaultThreads()`
  /// workers. Call `SetDefaultThreads()` before first use to size it.
  static ThreadPool& Global();

  /// Index of the calling pool worker in its pool, or -1 when called from
  /// a thread that is not a pool worker.
  static int CurrentWorkerIndex();

 private:
  // One per worker: the deque plus its lock (coarse-grained stealing; the
  // tasks this library submits are whole BFS sweeps or chunk loops, so
  // queue traffic is far off the critical path).
  struct WorkQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(size_t index);
  bool PopOrSteal(size_t self, std::function<void()>* task);

  std::vector<std::unique_ptr<WorkQueue>> queues_;
  std::vector<std::thread> workers_;
  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
  // `Quiesce` waiters sleep on their own cv so `Submit`'s notify_one can
  // only ever wake a worker.
  std::condition_variable quiesce_cv_;
  size_t pending_ = 0;  // queued-but-unclaimed tasks, guarded by idle_mutex_
  size_t active_ = 0;   // tasks mid-execution, guarded by idle_mutex_
  bool stop_ = false;   // guarded by idle_mutex_
  // Round-robin cursor for external submissions.
  std::atomic<size_t> next_queue_{0};
};

/// `std::thread::hardware_concurrency()`, clamped to >= 1.
size_t HardwareThreads();

/// The library-wide default parallelism: the `SetDefaultThreads` override
/// if set, else the `REACH_THREADS` environment variable (positive
/// integer), else `HardwareThreads()`.
size_t DefaultThreads();

/// Overrides `DefaultThreads()` process-wide (0 restores the environment/
/// hardware default). Call before the global pool's first use — the pool
/// is sized once, on creation.
void SetDefaultThreads(size_t num_threads);

/// Resolves a per-call thread-count parameter: 0 means `DefaultThreads()`.
inline size_t ResolveThreads(size_t requested) {
  return requested == 0 ? DefaultThreads() : requested;
}

namespace internal {
/// Parses a `REACH_THREADS`-style value; returns `fallback` when `value`
/// is null, empty, non-numeric, or zero. Exposed for tests.
size_t ParseThreadsValue(const char* value, size_t fallback);
}  // namespace internal

}  // namespace reach

#endif  // REACH_PAR_THREAD_POOL_H_
