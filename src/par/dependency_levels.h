#ifndef REACH_PAR_DEPENDENCY_LEVELS_H_
#define REACH_PAR_DEPENDENCY_LEVELS_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/types.h"

namespace reach {

/// Vertices grouped into dependency levels: `buckets[l]` holds every
/// vertex whose longest dependency chain has length l. All vertices of a
/// bucket are mutually independent, so a sweep with per-vertex results
/// that depend only on already-finished dependencies parallelizes as
/// "for each level, ParallelFor over the bucket" — and stays bit-identical
/// to the sequential sweep whenever the per-vertex combine is
/// order-independent (bitset unions, interval merges).
struct DependencyLevels {
  std::vector<std::vector<VertexId>> buckets;
};

/// Computes levels for vertices [0, n). `order` must iterate all n
/// vertices dependencies-first (a topological order of the dependency
/// relation); `deps_of(v, fn)` must call `fn(w)` for every dependency w
/// of v. O(V + E).
template <typename Range, typename DepsFn>
DependencyLevels ComputeDependencyLevels(size_t n, const Range& order,
                                         DepsFn&& deps_of) {
  std::vector<uint32_t> level(n, 0);
  DependencyLevels out;
  for (const VertexId v : order) {
    uint32_t l = 0;
    deps_of(v, [&](VertexId w) { l = std::max(l, level[w] + 1); });
    level[v] = l;
    if (l >= out.buckets.size()) out.buckets.resize(l + 1);
    out.buckets[l].push_back(v);
  }
  return out;
}

}  // namespace reach

#endif  // REACH_PAR_DEPENDENCY_LEVELS_H_
