#include "rpq/rpq_template_index.h"

#include <utility>

#include "rpq/nfa.h"
#include "rpq/regex_parser.h"
#include "rpq/rpq_evaluator.h"

namespace reach {

namespace {

// Product of the graph with an arbitrary DFA: state (v, q) = v * |Q| + q.
Digraph BuildProductGraph(const LabeledDigraph& graph, const Dfa& dfa) {
  const size_t q_count = dfa.NumStates();
  std::vector<Edge> edges;
  for (VertexId u = 0; u < graph.NumVertices(); ++u) {
    for (const LabeledDigraph::Arc& arc : graph.OutArcs(u)) {
      if (arc.label >= dfa.num_labels) continue;
      for (size_t q = 0; q < q_count; ++q) {
        const uint32_t next = dfa.Step(static_cast<uint32_t>(q), arc.label);
        if (next == Dfa::kDead) continue;
        edges.push_back({static_cast<VertexId>(u * q_count + q),
                         static_cast<VertexId>(arc.vertex * q_count + next)});
      }
    }
  }
  return Digraph::FromEdges(
      static_cast<VertexId>(graph.NumVertices() * q_count),
      std::move(edges));
}

}  // namespace

bool RpqTemplateIndex::Build(const LabeledDigraph& graph,
                             const std::vector<std::string>& patterns,
                             const std::vector<std::string>& label_names,
                             std::string* error) {
  // Compile everything first so a late parse error cannot leave a
  // half-built index.
  std::vector<Dfa> dfas;
  for (const std::string& pattern : patterns) {
    auto ast = ParseRegex(pattern, label_names, error);
    if (ast == nullptr) return false;
    dfas.push_back(
        TrimDfa(MinimizeDfa(BuildDfa(BuildNfa(*ast), graph.NumLabels()))));
  }

  graph_ = &graph;
  label_names_ = label_names;
  patterns_ = patterns;
  dfas_ = std::move(dfas);
  accepting_states_.clear();
  product_graphs_.clear();
  labelings_.clear();
  for (const Dfa& dfa : dfas_) {
    std::vector<uint32_t> accepting;
    for (uint32_t q = 0; q < dfa.NumStates(); ++q) {
      if (dfa.accepting[q]) accepting.push_back(q);
    }
    accepting_states_.push_back(std::move(accepting));
    product_graphs_.push_back(
        std::make_unique<Digraph>(BuildProductGraph(graph, dfa)));
    labelings_.push_back(
        std::make_unique<PrunedTwoHop>(VertexOrder::kDegree));
    labelings_.back()->Build(*product_graphs_.back());
  }
  return true;
}

size_t RpqTemplateIndex::FindTemplate(const std::string& pattern) const {
  for (size_t i = 0; i < patterns_.size(); ++i) {
    if (patterns_[i] == pattern) return i;
  }
  return SIZE_MAX;
}

bool RpqTemplateIndex::Query(VertexId s, VertexId t,
                             const std::string& pattern) const {
  const size_t i = FindTemplate(pattern);
  if (i == SIZE_MAX) {
    auto query = RpqQuery::Compile(pattern, label_names_,
                                   graph_->NumLabels());
    return query != nullptr && query->Evaluate(*graph_, s, t);
  }
  const Dfa& dfa = dfas_[i];
  // Empty word acceptance covers s == t directly.
  if (s == t && dfa.accepting[dfa.start]) return true;
  const size_t q_count = dfa.NumStates();
  const VertexId source = static_cast<VertexId>(s * q_count + dfa.start);
  for (uint32_t accept : accepting_states_[i]) {
    const VertexId target = static_cast<VertexId>(t * q_count + accept);
    if (source == target) continue;  // same product state: empty word only
    if (labelings_[i]->Query(source, target)) return true;
  }
  return false;
}

size_t RpqTemplateIndex::IndexSizeBytes() const {
  size_t bytes = 0;
  for (const auto& labeling : labelings_) bytes += labeling->IndexSizeBytes();
  return bytes;
}

}  // namespace reach
