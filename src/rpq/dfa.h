#ifndef REACH_RPQ_DFA_H_
#define REACH_RPQ_DFA_H_

#include <cstdint>
#include <vector>

#include "graph/types.h"
#include "rpq/nfa.h"

namespace reach {

/// Deterministic automaton over the label alphabet, built from an NFA by
/// subset construction. Drives the guided product traversal of §2.3.
struct Dfa {
  static constexpr uint32_t kDead = UINT32_MAX;

  /// transition[state * num_labels + label] = next state or kDead.
  std::vector<uint32_t> transition;
  std::vector<bool> accepting;
  uint32_t start = 0;
  Label num_labels = 0;

  size_t NumStates() const { return accepting.size(); }

  /// Next state on `label`, or kDead.
  uint32_t Step(uint32_t state, Label label) const {
    return transition[state * num_labels + label];
  }

  /// True iff the DFA accepts the label word.
  bool Accepts(const std::vector<Label>& word) const;
};

/// Subset construction. `num_labels` fixes the alphabet (labels >= the
/// regex's labels are simply dead everywhere).
Dfa BuildDfa(const Nfa& nfa, Label num_labels);

/// Moore partition-refinement minimization: returns the unique (up to
/// renaming) minimal DFA for the same language. Useful before product
/// traversal — fewer automaton states means a smaller product space.
Dfa MinimizeDfa(const Dfa& dfa);

/// Trims the DFA for product search: every state that cannot reach an
/// accepting state becomes dead (transitions into it are cut), so the
/// guided traversal of §2.3 never explores doomed product states.
Dfa TrimDfa(const Dfa& dfa);

}  // namespace reach

#endif  // REACH_RPQ_DFA_H_
