#include "rpq/rpq_evaluator.h"

#include "rpq/regex_parser.h"

namespace reach {

bool RpqProductBfs(const LabeledDigraph& graph, VertexId s, VertexId t,
                   const Dfa& dfa, SearchWorkspace& ws, size_t* visited) {
  const uint32_t num_dfa_states = static_cast<uint32_t>(dfa.NumStates());
  if (s == t && dfa.accepting[dfa.start]) {
    if (visited != nullptr) *visited = 1;
    return true;
  }
  ws.Prepare(graph.NumVertices() * num_dfa_states);
  auto& queue = ws.queue();
  const auto state_of = [num_dfa_states](VertexId v, uint32_t q) {
    return static_cast<VertexId>(v * num_dfa_states + q);
  };
  ws.MarkForward(state_of(s, dfa.start));
  queue.push_back(state_of(s, dfa.start));
  size_t count = 1;
  for (size_t head = 0; head < queue.size(); ++head) {
    const VertexId product_state = queue[head];
    const VertexId v = product_state / num_dfa_states;
    const uint32_t q = product_state % num_dfa_states;
    for (const LabeledDigraph::Arc& arc : graph.OutArcs(v)) {
      if (arc.label >= dfa.num_labels) continue;
      const uint32_t next_q = dfa.Step(q, arc.label);
      if (next_q == Dfa::kDead) continue;
      if (arc.vertex == t && dfa.accepting[next_q]) {
        if (visited != nullptr) *visited = count;
        return true;
      }
      const VertexId next = state_of(arc.vertex, next_q);
      if (ws.MarkForward(next)) {
        queue.push_back(next);
        ++count;
      }
    }
  }
  if (visited != nullptr) *visited = count;
  return false;
}

bool RpqBidirectionalBfs(const LabeledDigraph& graph, VertexId s,
                         VertexId t, const Dfa& dfa, SearchWorkspace& ws,
                         size_t* visited) {
  const uint32_t q_count = static_cast<uint32_t>(dfa.NumStates());
  if (s == t && dfa.accepting[dfa.start]) {
    if (visited != nullptr) *visited = 1;
    return true;
  }
  // Reverse DFA transitions: rev[q' * L + l] = states q with step(q,l)=q'.
  std::vector<std::vector<uint32_t>> reverse_step(
      static_cast<size_t>(q_count) * dfa.num_labels);
  for (uint32_t q = 0; q < q_count; ++q) {
    for (Label l = 0; l < dfa.num_labels; ++l) {
      const uint32_t to = dfa.Step(q, l);
      if (to != Dfa::kDead) {
        reverse_step[static_cast<size_t>(to) * dfa.num_labels + l]
            .push_back(q);
      }
    }
  }

  ws.Prepare(graph.NumVertices() * q_count);
  auto& fwd = ws.queue();
  auto& bwd = ws.backward_queue();
  const auto state_of = [q_count](VertexId v, uint32_t q) {
    return static_cast<VertexId>(v * q_count + q);
  };
  ws.MarkForward(state_of(s, dfa.start));
  fwd.push_back(state_of(s, dfa.start));
  for (uint32_t q = 0; q < q_count; ++q) {
    if (dfa.accepting[q]) {
      const VertexId st = state_of(t, q);
      if (ws.IsForwardMarked(st)) {
        // Only possible when s == t and start is accepting — handled.
      }
      ws.MarkBackward(st);
      bwd.push_back(st);
    }
  }
  size_t count = fwd.size() + bwd.size();
  size_t fwd_head = 0, bwd_head = 0;
  // Pending-arc work estimates steer which frontier expands (cf. BiBFS).
  size_t fwd_work = graph.OutDegree(s);
  size_t bwd_work = graph.InDegree(t) * bwd.size();
  bool found = false;
  while (!found && fwd_head < fwd.size() && bwd_head < bwd.size()) {
    const bool expand_forward = fwd_work <= bwd_work;
    if (expand_forward) {
      const size_t level_end = fwd.size();
      fwd_work = 0;
      for (; fwd_head < level_end && !found; ++fwd_head) {
        const VertexId state = fwd[fwd_head];
        const VertexId v = state / q_count;
        const uint32_t q = state % q_count;
        for (const LabeledDigraph::Arc& arc : graph.OutArcs(v)) {
          if (arc.label >= dfa.num_labels) continue;
          const uint32_t next_q = dfa.Step(q, arc.label);
          if (next_q == Dfa::kDead) continue;
          const VertexId next = state_of(arc.vertex, next_q);
          if (ws.IsBackwardMarked(next)) {
            found = true;
            break;
          }
          if (ws.MarkForward(next)) {
            fwd.push_back(next);
            fwd_work += graph.OutDegree(arc.vertex);
            ++count;
          }
        }
      }
    } else {
      const size_t level_end = bwd.size();
      bwd_work = 0;
      for (; bwd_head < level_end && !found; ++bwd_head) {
        const VertexId state = bwd[bwd_head];
        const VertexId v = state / q_count;
        const uint32_t q = state % q_count;
        for (const LabeledDigraph::Arc& arc : graph.InArcs(v)) {
          if (arc.label >= dfa.num_labels) continue;
          for (uint32_t prev_q :
               reverse_step[static_cast<size_t>(q) * dfa.num_labels +
                            arc.label]) {
            const VertexId prev = state_of(arc.vertex, prev_q);
            if (ws.IsForwardMarked(prev)) {
              found = true;
              break;
            }
            if (ws.MarkBackward(prev)) {
              bwd.push_back(prev);
              bwd_work += graph.InDegree(arc.vertex);
              ++count;
            }
          }
          if (found) break;
        }
      }
    }
  }
  if (visited != nullptr) *visited = count;
  return found;
}

std::unique_ptr<RpqQuery> RpqQuery::Compile(
    std::string_view pattern, const std::vector<std::string>& label_names,
    Label num_labels, std::string* error) {
  auto ast = ParseRegex(pattern, label_names, error);
  if (ast == nullptr) return nullptr;
  // Minimize then trim: the product space is |V| x |DFA|, so every state
  // shaved off the automaton shrinks the traversal, and trimming cuts
  // doomed branches (states that cannot reach acceptance) up front.
  Dfa dfa = TrimDfa(MinimizeDfa(BuildDfa(BuildNfa(*ast), num_labels)));
  return std::unique_ptr<RpqQuery>(
      new RpqQuery(std::string(pattern), std::move(dfa)));
}

bool RpqQuery::Evaluate(const LabeledDigraph& graph, VertexId s,
                        VertexId t) const {
  return RpqProductBfs(graph, s, t, dfa_, ws_);
}

}  // namespace reach
