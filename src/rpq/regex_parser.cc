#include "rpq/regex_parser.h"

#include <cctype>

namespace reach {

namespace {

// Recursive-descent parser over a UTF-8 pattern. The multibyte operators
// '·' (U+00B7, 0xC2 0xB7) and '∪' (U+222A, 0xE2 0x88 0xAA) are accepted as
// aliases of '.' and '|'.
class Parser {
 public:
  Parser(std::string_view pattern, const std::vector<std::string>& names,
         std::string* error)
      : pattern_(pattern), names_(names), error_(error) {}

  std::unique_ptr<RegexNode> Parse() {
    auto node = ParseAlternation();
    if (node == nullptr) return nullptr;
    SkipSpace();
    if (pos_ != pattern_.size()) {
      Fail("unexpected trailing input");
      return nullptr;
    }
    return node;
  }

 private:
  void Fail(const std::string& message) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = message + " at offset " + std::to_string(pos_);
    }
  }

  void SkipSpace() {
    while (pos_ < pattern_.size() &&
           std::isspace(static_cast<unsigned char>(pattern_[pos_]))) {
      ++pos_;
    }
  }

  bool ConsumeIf(std::string_view token) {
    SkipSpace();
    if (pattern_.substr(pos_, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  char Peek() {
    SkipSpace();
    return pos_ < pattern_.size() ? pattern_[pos_] : '\0';
  }

  std::unique_ptr<RegexNode> ParseAlternation() {
    auto left = ParseConcat();
    if (left == nullptr) return nullptr;
    while (ConsumeIf("|") || ConsumeIf("\xe2\x88\xaa") /* ∪ */) {
      auto right = ParseConcat();
      if (right == nullptr) return nullptr;
      auto node = std::make_unique<RegexNode>();
      node->kind = RegexNode::Kind::kAlternation;
      node->left = std::move(left);
      node->right = std::move(right);
      left = std::move(node);
    }
    return left;
  }

  std::unique_ptr<RegexNode> ParseConcat() {
    auto left = ParseUnary();
    if (left == nullptr) return nullptr;
    while (ConsumeIf(".") || ConsumeIf("\xc2\xb7") /* · */) {
      auto right = ParseUnary();
      if (right == nullptr) return nullptr;
      auto node = std::make_unique<RegexNode>();
      node->kind = RegexNode::Kind::kConcat;
      node->left = std::move(left);
      node->right = std::move(right);
      left = std::move(node);
    }
    return left;
  }

  std::unique_ptr<RegexNode> ParseUnary() {
    auto node = ParseAtom();
    if (node == nullptr) return nullptr;
    while (true) {
      if (ConsumeIf("*")) {
        auto star = std::make_unique<RegexNode>();
        star->kind = RegexNode::Kind::kStar;
        star->left = std::move(node);
        node = std::move(star);
      } else if (ConsumeIf("+")) {
        auto plus = std::make_unique<RegexNode>();
        plus->kind = RegexNode::Kind::kPlus;
        plus->left = std::move(node);
        node = std::move(plus);
      } else {
        return node;
      }
    }
  }

  std::unique_ptr<RegexNode> ParseAtom() {
    SkipSpace();
    if (ConsumeIf("(")) {
      auto inner = ParseAlternation();
      if (inner == nullptr) return nullptr;
      if (!ConsumeIf(")")) {
        Fail("expected ')'");
        return nullptr;
      }
      return inner;
    }
    // Label: identifier or number.
    const size_t start = pos_;
    while (pos_ < pattern_.size()) {
      const char c = pattern_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) {
      Fail("expected a label or '('");
      return nullptr;
    }
    const std::string_view token = pattern_.substr(start, pos_ - start);
    auto node = std::make_unique<RegexNode>();
    node->kind = RegexNode::Kind::kLabel;
    // Named label first; numeric fallback.
    for (Label l = 0; l < names_.size(); ++l) {
      if (names_[l] == token) {
        node->label = l;
        return node;
      }
    }
    if (std::isdigit(static_cast<unsigned char>(token[0]))) {
      Label value = 0;
      for (char c : token) {
        if (!std::isdigit(static_cast<unsigned char>(c))) {
          Fail("malformed label number '" + std::string(token) + "'");
          return nullptr;
        }
        value = value * 10 + static_cast<Label>(c - '0');
      }
      if (value >= kMaxLabels) {
        Fail("label id out of range");
        return nullptr;
      }
      node->label = value;
      return node;
    }
    Fail("unknown label '" + std::string(token) + "'");
    return nullptr;
  }

  std::string_view pattern_;
  const std::vector<std::string>& names_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

std::unique_ptr<RegexNode> ParseRegex(
    std::string_view pattern, const std::vector<std::string>& label_names,
    std::string* error) {
  if (error != nullptr) error->clear();
  Parser parser(pattern, label_names, error);
  return parser.Parse();
}

std::string RegexToString(const RegexNode& node,
                          const std::vector<std::string>& label_names) {
  switch (node.kind) {
    case RegexNode::Kind::kLabel:
      return node.label < label_names.size() ? label_names[node.label]
                                             : std::to_string(node.label);
    case RegexNode::Kind::kConcat:
      return "(" + RegexToString(*node.left, label_names) + "·" +
             RegexToString(*node.right, label_names) + ")";
    case RegexNode::Kind::kAlternation:
      return "(" + RegexToString(*node.left, label_names) + "∪" +
             RegexToString(*node.right, label_names) + ")";
    case RegexNode::Kind::kStar:
      return RegexToString(*node.left, label_names) + "*";
    case RegexNode::Kind::kPlus:
      return RegexToString(*node.left, label_names) + "+";
  }
  return "";
}

}  // namespace reach
