#ifndef REACH_RPQ_RPQ_EVALUATOR_H_
#define REACH_RPQ_RPQ_EVALUATOR_H_

#include <memory>
#include <string>
#include <string_view>

#include "core/search_workspace.h"
#include "graph/labeled_digraph.h"
#include "rpq/dfa.h"

namespace reach {

/// Automaton-guided evaluation of general path-constrained reachability
/// queries (paper §2.3): BFS over the product (vertex, DFA state),
/// accepting when the target vertex is visited in an accepting state.
///
/// This evaluates the *full* regex fragment of §2.2 — the "one indexing
/// technique for general path constraints" challenge of §5 names exactly
/// this query class — and serves as the semantic oracle the LCR and RLC
/// specializations are tested against.
bool RpqProductBfs(const LabeledDigraph& graph, VertexId s, VertexId t,
                   const Dfa& dfa, SearchWorkspace& ws,
                   size_t* visited = nullptr);

/// Bidirectional variant: expands the smaller frontier of the product
/// space, forward from (s, start) and backward from (t, accepting) over
/// the reversed graph and reversed DFA transitions. Same answers as
/// `RpqProductBfs`; often far fewer visited product states when the
/// constraint is selective at the target end.
bool RpqBidirectionalBfs(const LabeledDigraph& graph, VertexId s, VertexId t,
                         const Dfa& dfa, SearchWorkspace& ws,
                         size_t* visited = nullptr);

/// A parsed + compiled path-constraint query, reusable across (s, t)
/// pairs and graphs sharing the label vocabulary.
class RpqQuery {
 public:
  /// Compiles `pattern` against a label vocabulary; nullptr on parse
  /// errors (diagnostic in `error`).
  static std::unique_ptr<RpqQuery> Compile(
      std::string_view pattern, const std::vector<std::string>& label_names,
      Label num_labels, std::string* error = nullptr);

  /// Evaluates Qr(s, t, alpha) on `graph`.
  bool Evaluate(const LabeledDigraph& graph, VertexId s, VertexId t) const;

  const Dfa& dfa() const { return dfa_; }
  const std::string& pattern() const { return pattern_; }

 private:
  RpqQuery(std::string pattern, Dfa dfa)
      : pattern_(std::move(pattern)), dfa_(std::move(dfa)) {}

  std::string pattern_;
  Dfa dfa_;
  mutable SearchWorkspace ws_;
};

}  // namespace reach

#endif  // REACH_RPQ_RPQ_EVALUATOR_H_
