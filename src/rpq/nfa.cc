#include "rpq/nfa.h"

#include <algorithm>

namespace reach {

namespace {

// Recursive Thompson construction: returns (start, accept) of the
// sub-automaton for `node`, adding states to `nfa`.
struct Fragment {
  uint32_t start;
  uint32_t accept;
};

uint32_t NewState(Nfa& nfa) {
  nfa.transitions.emplace_back();
  return static_cast<uint32_t>(nfa.transitions.size() - 1);
}

void AddEpsilon(Nfa& nfa, uint32_t from, uint32_t to) {
  nfa.transitions[from].push_back({true, 0, to});
}

void AddLabel(Nfa& nfa, uint32_t from, Label label, uint32_t to) {
  nfa.transitions[from].push_back({false, label, to});
}

Fragment Construct(Nfa& nfa, const RegexNode& node) {
  switch (node.kind) {
    case RegexNode::Kind::kLabel: {
      const uint32_t s = NewState(nfa), a = NewState(nfa);
      AddLabel(nfa, s, node.label, a);
      return {s, a};
    }
    case RegexNode::Kind::kConcat: {
      const Fragment left = Construct(nfa, *node.left);
      const Fragment right = Construct(nfa, *node.right);
      AddEpsilon(nfa, left.accept, right.start);
      return {left.start, right.accept};
    }
    case RegexNode::Kind::kAlternation: {
      const Fragment left = Construct(nfa, *node.left);
      const Fragment right = Construct(nfa, *node.right);
      const uint32_t s = NewState(nfa), a = NewState(nfa);
      AddEpsilon(nfa, s, left.start);
      AddEpsilon(nfa, s, right.start);
      AddEpsilon(nfa, left.accept, a);
      AddEpsilon(nfa, right.accept, a);
      return {s, a};
    }
    case RegexNode::Kind::kStar: {
      const Fragment inner = Construct(nfa, *node.left);
      const uint32_t s = NewState(nfa), a = NewState(nfa);
      AddEpsilon(nfa, s, inner.start);
      AddEpsilon(nfa, s, a);                    // zero repeats
      AddEpsilon(nfa, inner.accept, inner.start);  // loop
      AddEpsilon(nfa, inner.accept, a);
      return {s, a};
    }
    case RegexNode::Kind::kPlus: {
      const Fragment inner = Construct(nfa, *node.left);
      const uint32_t s = NewState(nfa), a = NewState(nfa);
      AddEpsilon(nfa, s, inner.start);             // at least one repeat
      AddEpsilon(nfa, inner.accept, inner.start);  // loop
      AddEpsilon(nfa, inner.accept, a);
      return {s, a};
    }
  }
  return {0, 0};
}

}  // namespace

std::vector<uint32_t> Nfa::EpsilonClosure(std::vector<uint32_t> states) const {
  std::vector<bool> seen(NumStates(), false);
  std::vector<uint32_t> stack = states;
  for (uint32_t s : states) seen[s] = true;
  while (!stack.empty()) {
    const uint32_t s = stack.back();
    stack.pop_back();
    for (const Transition& t : transitions[s]) {
      if (t.epsilon && !seen[t.to]) {
        seen[t.to] = true;
        states.push_back(t.to);
        stack.push_back(t.to);
      }
    }
  }
  std::sort(states.begin(), states.end());
  return states;
}

bool Nfa::Accepts(const std::vector<Label>& word) const {
  std::vector<uint32_t> current = EpsilonClosure({start});
  for (Label l : word) {
    std::vector<uint32_t> next;
    for (uint32_t s : current) {
      for (const Transition& t : transitions[s]) {
        if (!t.epsilon && t.label == l) next.push_back(t.to);
      }
    }
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    current = EpsilonClosure(std::move(next));
    if (current.empty()) return false;
  }
  return std::binary_search(current.begin(), current.end(), accept);
}

Nfa BuildNfa(const RegexNode& regex) {
  Nfa nfa;
  const Fragment fragment = Construct(nfa, regex);
  nfa.start = fragment.start;
  nfa.accept = fragment.accept;
  return nfa;
}

}  // namespace reach
