#include "rpq/dfa.h"

#include <algorithm>
#include <map>
#include <set>

namespace reach {

bool Dfa::Accepts(const std::vector<Label>& word) const {
  uint32_t state = start;
  for (Label l : word) {
    if (l >= num_labels) return false;
    state = Step(state, l);
    if (state == kDead) return false;
  }
  return accepting[state];
}

Dfa BuildDfa(const Nfa& nfa, Label num_labels) {
  Dfa dfa;
  dfa.num_labels = num_labels;

  std::map<std::vector<uint32_t>, uint32_t> subset_id;
  std::vector<std::vector<uint32_t>> subsets;
  const auto intern = [&](std::vector<uint32_t> subset) -> uint32_t {
    auto [it, inserted] =
        subset_id.emplace(std::move(subset), subsets.size());
    if (inserted) {
      subsets.push_back(it->first);
      dfa.accepting.push_back(std::binary_search(
          it->first.begin(), it->first.end(), nfa.accept));
      dfa.transition.resize(subsets.size() * num_labels, Dfa::kDead);
    }
    return it->second;
  };

  dfa.start = intern(nfa.EpsilonClosure({nfa.start}));
  for (uint32_t current = 0; current < subsets.size(); ++current) {
    // Copy: `subsets` may reallocate while interning successors.
    const std::vector<uint32_t> subset = subsets[current];
    for (Label l = 0; l < num_labels; ++l) {
      std::vector<uint32_t> next;
      for (uint32_t s : subset) {
        for (const Nfa::Transition& t : nfa.transitions[s]) {
          if (!t.epsilon && t.label == l) next.push_back(t.to);
        }
      }
      if (next.empty()) continue;
      std::sort(next.begin(), next.end());
      next.erase(std::unique(next.begin(), next.end()), next.end());
      const uint32_t id = intern(nfa.EpsilonClosure(std::move(next)));
      dfa.transition[current * num_labels + l] = id;
    }
  }
  return dfa;
}

Dfa MinimizeDfa(const Dfa& dfa) {
  const size_t n = dfa.NumStates();
  if (n == 0) return dfa;
  const Label labels = dfa.num_labels;
  // Moore refinement. Classes only ever split (each signature embeds the
  // current class), so the class count is nondecreasing and the loop stops
  // at the first round with no split. The implicit dead state is its own
  // class, encoded as UINT32_MAX in signatures.
  std::vector<uint32_t> cls(n);
  size_t num_classes = 0;
  {
    std::map<bool, uint32_t> initial;
    for (size_t q = 0; q < n; ++q) {
      auto [it, inserted] =
          initial.emplace(dfa.accepting[q], initial.size());
      cls[q] = it->second;
    }
    num_classes = initial.size();
  }
  while (true) {
    std::map<std::vector<uint32_t>, uint32_t> signature_class;
    std::vector<uint32_t> next(n);
    for (size_t q = 0; q < n; ++q) {
      std::vector<uint32_t> signature;
      signature.reserve(labels + 1);
      signature.push_back(cls[q]);
      for (Label l = 0; l < labels; ++l) {
        const uint32_t to = dfa.Step(static_cast<uint32_t>(q), l);
        signature.push_back(to == Dfa::kDead ? UINT32_MAX : cls[to]);
      }
      auto [it, inserted] = signature_class.emplace(
          std::move(signature),
          static_cast<uint32_t>(signature_class.size()));
      next[q] = it->second;
    }
    cls = std::move(next);
    if (signature_class.size() == num_classes) break;
    num_classes = signature_class.size();
  }
  Dfa out;
  out.num_labels = labels;
  out.accepting.assign(num_classes, false);
  out.transition.assign(num_classes * labels, Dfa::kDead);
  for (size_t q = 0; q < n; ++q) {
    out.accepting[cls[q]] = out.accepting[cls[q]] || dfa.accepting[q];
    for (Label l = 0; l < labels; ++l) {
      const uint32_t to = dfa.Step(static_cast<uint32_t>(q), l);
      if (to != Dfa::kDead) {
        out.transition[static_cast<size_t>(cls[q]) * labels + l] = cls[to];
      }
    }
  }
  out.start = cls[dfa.start];
  return out;
}

Dfa TrimDfa(const Dfa& dfa) {
  const size_t n = dfa.NumStates();
  // Backward reachability from accepting states over reversed transitions.
  std::vector<std::vector<uint32_t>> reverse(n);
  for (size_t q = 0; q < n; ++q) {
    for (Label l = 0; l < dfa.num_labels; ++l) {
      const uint32_t to = dfa.Step(static_cast<uint32_t>(q), l);
      if (to != Dfa::kDead) reverse[to].push_back(static_cast<uint32_t>(q));
    }
  }
  std::vector<bool> live(n, false);
  std::vector<uint32_t> stack;
  for (size_t q = 0; q < n; ++q) {
    if (dfa.accepting[q]) {
      live[q] = true;
      stack.push_back(static_cast<uint32_t>(q));
    }
  }
  while (!stack.empty()) {
    const uint32_t q = stack.back();
    stack.pop_back();
    for (uint32_t p : reverse[q]) {
      if (!live[p]) {
        live[p] = true;
        stack.push_back(p);
      }
    }
  }
  Dfa out = dfa;
  for (size_t q = 0; q < n; ++q) {
    for (Label l = 0; l < dfa.num_labels; ++l) {
      uint32_t& to = out.transition[q * dfa.num_labels + l];
      if (to != Dfa::kDead && !live[to]) to = Dfa::kDead;
    }
  }
  return out;
}

}  // namespace reach
