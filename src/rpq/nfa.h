#ifndef REACH_RPQ_NFA_H_
#define REACH_RPQ_NFA_H_

#include <vector>

#include "graph/types.h"
#include "rpq/regex_parser.h"

namespace reach {

/// Thompson NFA built from a path-constraint regex (paper §2.3: "a finite
/// automata can be built according to the regular expression alpha in the
/// query"). One start state, one accept state, label and epsilon moves.
struct Nfa {
  /// A transition on `label` (or epsilon when `epsilon` is true).
  struct Transition {
    bool epsilon;
    Label label;  // valid when !epsilon
    uint32_t to;
  };

  std::vector<std::vector<Transition>> transitions;  // per state
  uint32_t start = 0;
  uint32_t accept = 0;

  size_t NumStates() const { return transitions.size(); }

  /// Epsilon-closure of `states` (sorted unique state ids in, out).
  std::vector<uint32_t> EpsilonClosure(std::vector<uint32_t> states) const;

  /// True iff the NFA accepts the label word (test utility; graph
  /// evaluation goes through the DFA).
  bool Accepts(const std::vector<Label>& word) const;
};

/// Thompson construction from the regex AST.
Nfa BuildNfa(const RegexNode& regex);

}  // namespace reach

#endif  // REACH_RPQ_NFA_H_
