#ifndef REACH_RPQ_REGEX_PARSER_H_
#define REACH_RPQ_REGEX_PARSER_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "graph/types.h"

namespace reach {

/// AST of a path-constraint regular expression over edge labels — the
/// grammar of paper §2.2: alpha ::= l | alpha·alpha | alpha ∪ alpha |
/// alpha+ | alpha*.
struct RegexNode {
  enum class Kind { kLabel, kConcat, kAlternation, kStar, kPlus };

  Kind kind;
  Label label = 0;  // kLabel only
  std::unique_ptr<RegexNode> left;   // kConcat/kAlternation/kStar/kPlus
  std::unique_ptr<RegexNode> right;  // kConcat/kAlternation only
};

/// Parses a path-constraint expression. Syntax:
///  * labels: names resolved against `label_names` (e.g. "friendOf"), or
///    non-negative integers ("2") for unnamed labels;
///  * concatenation: '.' or '·'  — e.g. "worksFor·friendOf";
///  * alternation: '|' or '∪'    — e.g. "friendOf|follows";
///  * Kleene: postfix '*' / '+'; grouping with parentheses;
///  * whitespace is ignored. Precedence: Kleene > concat > alternation.
///
/// Returns nullptr and fills `error` (if non-null) on malformed input or
/// unknown label names.
std::unique_ptr<RegexNode> ParseRegex(
    std::string_view pattern, const std::vector<std::string>& label_names,
    std::string* error = nullptr);

/// Renders the AST back to a canonical string (for diagnostics).
std::string RegexToString(const RegexNode& node,
                          const std::vector<std::string>& label_names);

}  // namespace reach

#endif  // REACH_RPQ_REGEX_PARSER_H_
