#ifndef REACH_RPQ_RPQ_TEMPLATE_INDEX_H_
#define REACH_RPQ_RPQ_TEMPLATE_INDEX_H_

#include <memory>
#include <string>
#include <vector>

#include "core/search_workspace.h"
#include "graph/digraph.h"
#include "graph/labeled_digraph.h"
#include "plain/pruned_two_hop.h"
#include "rpq/dfa.h"

namespace reach {

/// A prototype answer to the survey's §5 open challenge: "It will be of
/// great interest to have one indexing technique for general path
/// constraints and thus the entire fragment of regular path queries."
///
/// For each registered constraint *template* (an arbitrary regex over edge
/// labels, compiled to a minimized+trimmed DFA), the index materializes
/// the product graph G x DFA and builds a pruned 2-hop labeling over it.
/// A query for a registered template is then a bounded number of 2-hop
/// lookups — one per accepting state — instead of a product BFS; RLC
/// indexes (cyclic automata) and LCR indexes (one-state automata) fall out
/// as the special cases of Table 2. Unregistered patterns fall back to the
/// automaton-guided traversal.
///
/// The cost model the challenge implies is visible here too: |V| x |Q|
/// product states per template, so this indexes a *workload* of recurring
/// templates rather than the whole RPQ fragment at once.
class RpqTemplateIndex {
 public:
  RpqTemplateIndex() = default;

  /// Compiles and indexes each pattern. Returns false (and builds nothing)
  /// if any pattern fails to parse; `error` gets a diagnostic.
  bool Build(const LabeledDigraph& graph,
             const std::vector<std::string>& patterns,
             const std::vector<std::string>& label_names,
             std::string* error = nullptr);

  /// Answers Qr(s, t, pattern): indexed lookups when the pattern was
  /// registered, product BFS otherwise (or false on a parse error).
  bool Query(VertexId s, VertexId t, const std::string& pattern) const;

  /// True iff `pattern` was registered at Build time (textual match).
  bool IsIndexed(const std::string& pattern) const {
    return FindTemplate(pattern) != SIZE_MAX;
  }

  size_t NumTemplates() const { return patterns_.size(); }
  size_t IndexSizeBytes() const;
  std::string Name() const { return "rpq-template"; }

 private:
  size_t FindTemplate(const std::string& pattern) const;

  const LabeledDigraph* graph_ = nullptr;
  std::vector<std::string> label_names_;
  std::vector<std::string> patterns_;
  std::vector<Dfa> dfas_;
  std::vector<std::vector<uint32_t>> accepting_states_;
  std::vector<std::unique_ptr<Digraph>> product_graphs_;
  std::vector<std::unique_ptr<PrunedTwoHop>> labelings_;
  mutable SearchWorkspace ws_;
};

}  // namespace reach

#endif  // REACH_RPQ_RPQ_TEMPLATE_INDEX_H_
