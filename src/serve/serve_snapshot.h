#ifndef REACH_SERVE_SERVE_SNAPSHOT_H_
#define REACH_SERVE_SERVE_SNAPSHOT_H_

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/edge_update.h"
#include "core/reachability_index.h"
#include "graph/digraph.h"

namespace reach {

/// Lease-based distribution of the concurrent-query slots granted by
/// `PrepareConcurrentQueries` (core/reachability_index.h): each in-flight
/// request leases one slot for its whole `QueryInSlot` stream, so two
/// requests never share per-slot scratch state. A single atomic free-mask
/// caps the pool at 64 slots — far above any `DefaultThreads()` in
/// practice. When every slot is leased, `Acquire` spins with `yield`;
/// with one granted slot this degrades to mutual exclusion, which is
/// exactly the serial-only contract a grant of 1 signals.
class SlotPool {
 public:
  static constexpr size_t kMaxSlots = 64;

  SlotPool() { Reset(1); }

  /// Sizes the pool to `slots` free slots (clamped to [1, 64]). Not
  /// thread-safe: call before the owning snapshot is published.
  void Reset(size_t slots) {
    if (slots == 0) slots = 1;
    if (slots > kMaxSlots) slots = kMaxSlots;
    size_ = slots;
    free_.store(slots == kMaxSlots ? ~uint64_t{0} : (uint64_t{1} << slots) - 1,
                std::memory_order_relaxed);
  }

  size_t size() const { return size_; }

  /// Leases a free slot, spinning until one frees up. `waited` (optional)
  /// is set when the caller had to contend.
  size_t Acquire(bool* waited = nullptr) {
    for (bool first = true;; first = false) {
      uint64_t mask = free_.load(std::memory_order_relaxed);
      while (mask != 0) {
        const uint64_t bit = mask & (~mask + 1);  // lowest set bit
        if (free_.compare_exchange_weak(mask, mask & ~bit,
                                        std::memory_order_acquire,
                                        std::memory_order_relaxed)) {
          return static_cast<size_t>(std::countr_zero(bit));
        }
      }
      if (first && waited != nullptr) *waited = true;
      std::this_thread::yield();
    }
  }

  void Release(size_t slot) {
    free_.fetch_or(uint64_t{1} << slot, std::memory_order_release);
  }

 private:
  size_t size_ = 1;
  std::atomic<uint64_t> free_{1};
};

/// One immutable generation of the serving state: the base graph, the
/// index built over it, and the slot pool sized to what the index
/// actually granted. Published behind an atomic `shared_ptr` swap
/// (`AtomicSharedPtr`); readers pin a generation for the duration of one
/// request and never observe a half-rebuilt index. All fields except the
/// slot leases are frozen before publication.
struct ServeSnapshot {
  /// Monotonic generation number (0 = the unindexed startup snapshot).
  uint64_t version = 0;
  /// The base graph this generation serves. The index may retain a
  /// pointer into it (partial indexes do), so it lives in the snapshot.
  Digraph graph;
  /// Index over `graph`; null only in the startup snapshot, while the
  /// first background build is still in flight — queries then degrade to
  /// the bounded online BFS.
  std::unique_ptr<ReachabilityIndex> index;
  /// Leases for the slots `index->PrepareConcurrentQueries` granted.
  mutable SlotPool slots;
};

/// Updates accepted by `ApplyUpdate` (inserts and deletes, in arrival
/// order) but not yet absorbed into a snapshot. Copy-on-write: writers
/// replace the whole (small, bounded by the drain threshold) vector under
/// the service's write lock; readers pin the current list lock-free
/// alongside the snapshot. Order matters — the live edge set is the
/// snapshot graph with these updates replayed in sequence, so the last
/// operation on an edge wins.
using PendingUpdates = std::vector<EdgeUpdate>;

// TSan cannot see through libstdc++'s _Sp_atomic lock-bit protocol (the
// pointer word is guarded by a bit spliced into the refcount word and
// accessed with plain loads), so atomic<shared_ptr> use reports false
// races; take the mutex path under TSan instead.
#if defined(__SANITIZE_THREAD__)
#define REACH_SERVE_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define REACH_SERVE_TSAN 1
#endif
#endif
#ifndef REACH_SERVE_TSAN
#define REACH_SERVE_TSAN 0
#endif

/// `std::atomic<std::shared_ptr<T>>` where the standard library provides
/// it (libstdc++ >= 12, the toolchain this repo targets), with a mutex
/// fallback elsewhere and under TSan. Load/Store are the only operations
/// the serving path needs.
template <typename T>
class AtomicSharedPtr {
 public:
#if defined(__cpp_lib_atomic_shared_ptr) && !REACH_SERVE_TSAN
  std::shared_ptr<T> Load() const { return ptr_.load(std::memory_order_acquire); }
  void Store(std::shared_ptr<T> p) {
    ptr_.store(std::move(p), std::memory_order_release);
  }

 private:
  std::atomic<std::shared_ptr<T>> ptr_;
#else
  std::shared_ptr<T> Load() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ptr_;
  }
  void Store(std::shared_ptr<T> p) {
    std::lock_guard<std::mutex> lock(mu_);
    ptr_ = std::move(p);
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<T> ptr_;
#endif
};

}  // namespace reach

#endif  // REACH_SERVE_SERVE_SNAPSHOT_H_
