#include "serve/reach_service.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "core/index_factory.h"
#include "obs/metrics_registry.h"
#include "par/thread_pool.h"

namespace reach {

namespace {

using Clock = std::chrono::steady_clock;

std::string ValidatedSpec(const std::string& spec) {
  return MakeIndex(spec).plain != nullptr ? spec : std::string("pll");
}

}  // namespace

/// RAII lease of one concurrent-query slot from a pinned snapshot.
class ReachService::SlotLease {
 public:
  SlotLease(const ServeSnapshot& snap, bool* waited)
      : snap_(snap), slot_(snap.slots.Acquire(waited)) {}
  ~SlotLease() { snap_.slots.Release(slot_); }
  SlotLease(const SlotLease&) = delete;
  SlotLease& operator=(const SlotLease&) = delete;

  size_t slot() const { return slot_; }

 private:
  const ServeSnapshot& snap_;
  const size_t slot_;
};

ReachService::ReachService(Digraph base, ServiceOptions options)
    : options_(std::move(options)),
      num_vertices_(base.NumVertices()),
      spec_(ValidatedSpec(options_.spec)),
      base_edges_(base.Edges()) {
  auto snap = std::make_shared<ServeSnapshot>();
  snap->version = 0;
  snap->graph = std::move(base);
  snapshot_.Store(std::move(snap));
  pending_.Store(std::make_shared<const PendingEdges>());

  MetricsRegistry& reg = MetricsRegistry::Global();
  queries_counter_ = &reg.GetCounter("serve.queries");
  index_counter_ = &reg.GetCounter("serve.index_answers");
  delta_counter_ = &reg.GetCounter("serve.delta_answers");
  fallback_counter_ = &reg.GetCounter("serve.fallback_bfs");
  deadline_counter_ = &reg.GetCounter("serve.deadline_degraded");
  slot_wait_counter_ = &reg.GetCounter("serve.slot_waits");
  inexact_counter_ = &reg.GetCounter("serve.inexact_answers");
  insert_counter_ = &reg.GetCounter("serve.inserts");
  rebuild_counter_ = &reg.GetCounter("serve.rebuilds");
  version_gauge_ = &reg.GetGauge("serve.snapshot_version");
  pending_gauge_ = &reg.GetGauge("serve.pending_edges");
  latency_hist_ = &reg.GetHistogram("serve.query_ns");
}

ReachService::~ReachService() { Stop(); }

void ReachService::Start() {
  std::lock_guard<std::mutex> lock(rebuild_mu_);
  if (started_) return;
  started_ = true;
  ScheduleLocked();
}

void ReachService::Stop() {
  stopped_.store(true, std::memory_order_seq_cst);
  std::unique_lock<std::mutex> lock(rebuild_mu_);
  rebuild_cv_.wait(lock, [&] { return !rebuild_inflight_; });
}

bool ReachService::InsertEdge(VertexId s, VertexId t) {
  if (s >= num_vertices_ || t >= num_vertices_) return false;
  if (stopped_.load(std::memory_order_relaxed)) return false;
  size_t pending_count = 0;
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    const auto cur = pending_.Load();
    auto next = std::make_shared<PendingEdges>();
    next->reserve(cur->size() + 1);
    *next = *cur;
    next->push_back(Edge{s, t});
    pending_count = next->size();
    pending_.Store(std::move(next));
  }
  stats_.inserts.fetch_add(1, std::memory_order_relaxed);
  insert_counter_->Add();
  pending_gauge_->Set(static_cast<double>(pending_count));
  if (pending_count >= options_.drain_threshold) {
    std::lock_guard<std::mutex> lock(rebuild_mu_);
    ScheduleLocked();
  }
  return true;
}

void ReachService::Flush() {
  std::unique_lock<std::mutex> lock(rebuild_mu_);
  if (stopped_.load(std::memory_order_relaxed)) return;
  flush_requested_ = true;
  ScheduleLocked();
  rebuild_cv_.wait(lock, [&] {
    if (stopped_.load(std::memory_order_relaxed)) return true;
    if (!rebuild_inflight_ && pending_.Load()->empty()) return true;
    // A drain finished but inserts raced past it: keep draining until
    // everything accepted before this Flush is absorbed.
    if (!rebuild_inflight_) {
      flush_requested_ = true;
      ScheduleLocked();
    }
    return false;
  });
}

void ReachService::ScheduleLocked() {
  if (stopped_.load(std::memory_order_relaxed) || !started_ ||
      rebuild_inflight_) {
    return;
  }
  rebuild_inflight_ = true;
  ThreadPool::Global().Submit([this] { RebuildLoop(); });
}

void ReachService::RebuildLoop() {
  for (;;) {
    // Everything pending *now* goes into this generation; inserts racing
    // past this load stay pending (the list only ever grows by append,
    // so the drained list is a prefix of every later list).
    const auto drained = pending_.Load();
    {
      std::lock_guard<std::mutex> lock(rebuild_mu_);
      flush_requested_ = false;
    }

    auto snap = std::make_shared<ServeSnapshot>();
    {
      std::vector<Edge> edges = base_edges_;
      edges.insert(edges.end(), drained->begin(), drained->end());
      snap->graph = Digraph::FromEdges(static_cast<VertexId>(num_vertices_),
                                       std::move(edges));
    }
    // The index must be built against the graph at its final address —
    // partial indexes keep a pointer into it for guided traversal.
    snap->index = MakeIndex(spec_).plain;
    snap->index->Build(snap->graph);
    const size_t granted = snap->index->PrepareConcurrentQueries(
        ResolveThreads(options_.slots));
    snap->slots.Reset(granted);
    snap->version = next_version_++;
    base_edges_ = snap->graph.Edges();
    const uint64_t published_version = snap->version;

    // Publish, then trim the absorbed prefix. Readers load pending
    // BEFORE snapshot, so between the two stores they can only observe
    // the new snapshot with a stale (longer) pending list — harmless
    // double-counting, never a lost edge.
    snapshot_.Store(std::move(snap));
    version_gauge_->Set(static_cast<double>(published_version));
    size_t left = 0;
    {
      std::lock_guard<std::mutex> lock(write_mu_);
      const auto cur = pending_.Load();
      auto next = std::make_shared<PendingEdges>(
          cur->begin() + static_cast<ptrdiff_t>(drained->size()), cur->end());
      left = next->size();
      pending_.Store(std::move(next));
    }
    pending_gauge_->Set(static_cast<double>(left));
    stats_.rebuilds.fetch_add(1, std::memory_order_relaxed);
    rebuild_counter_->Add();

    {
      std::lock_guard<std::mutex> lock(rebuild_mu_);
      const bool more = !stopped_.load(std::memory_order_relaxed) &&
                        (left >= options_.drain_threshold ||
                         (flush_requested_ && left > 0));
      if (!more) {
        rebuild_inflight_ = false;
        rebuild_cv_.notify_all();
        return;
      }
    }
  }
}

ServeAnswer ReachService::Query(VertexId s, VertexId t) const {
  const Clock::time_point start = Clock::now();
  stats_.queries.fetch_add(1, std::memory_order_relaxed);
  queries_counter_->Add();

  // Pin pending BEFORE the snapshot: a concurrent swap+trim between the
  // two loads then yields a newer snapshot with an already-absorbed
  // pending prefix (redundant but correct). The opposite order could
  // pair an old snapshot with a trimmed list and lose edges.
  const auto pending = pending_.Load();
  const auto snap = snapshot_.Load();

  ServeAnswer ans;
  ans.snapshot_version = snap->version;
  if (s < num_vertices_ && t < num_vertices_) {
    if (snap->index == nullptr) {
      // Startup: the first index build is still in flight.
      ans = DegradedAnswer(*snap, *pending, s, t);
    } else {
      const Clock::time_point deadline =
          options_.deadline.count() > 0 ? start + options_.deadline
                                        : Clock::time_point::max();
      bool waited = false;
      ans = AnswerWithIndex(*snap, *pending, s, t, deadline, &waited);
      if (waited) {
        stats_.slot_waits.fetch_add(1, std::memory_order_relaxed);
        slot_wait_counter_->Add();
      }
    }
    ans.snapshot_version = snap->version;
  }
  if (!ans.exact) {
    stats_.inexact_answers.fetch_add(1, std::memory_order_relaxed);
    inexact_counter_->Add();
  }
  latency_hist_->Record(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count()));
  return ans;
}

ServeAnswer ReachService::AnswerWithIndex(
    const ServeSnapshot& snap, const PendingEdges& pending, VertexId s,
    VertexId t, Clock::time_point deadline, bool* waited) const {
  ServeAnswer ans;
  SlotLease lease(snap, waited);
  const ReachabilityIndex& index = *snap.index;
  const size_t slot = lease.slot();

  if (index.QueryInSlot(s, t, slot)) {
    // Reachability is monotone under insertion: an index hit on this
    // snapshot stays true no matter how many edges are pending.
    ans.reachable = true;
    stats_.index_answers.fetch_add(1, std::memory_order_relaxed);
    index_counter_->Add();
    return ans;
  }
  if (pending.empty()) {
    stats_.index_answers.fetch_add(1, std::memory_order_relaxed);
    index_counter_->Add();
    return ans;
  }

  // Index miss with pending edges: close over them. Any s-t path in
  // graph ∪ pending decomposes into base-graph segments joined by
  // pending edges, so a worklist of "usable" pending edges (tail
  // base-reachable from s, possibly through other usable edges) decides
  // the query with O(k²) index lookups, k = |pending| (bounded by the
  // drain threshold).
  ans.source = AnswerSource::kDelta;
  const size_t k = pending.size();
  std::vector<uint8_t> usable(k, 0);
  std::vector<size_t> work;
  work.reserve(k);
  bool expired = false;
  const auto now_expired = [&deadline] { return Clock::now() > deadline; };
  for (size_t i = 0; i < k; ++i) {
    if (index.QueryInSlot(s, pending[i].source, slot)) {
      usable[i] = 1;
      work.push_back(i);
    }
  }
  while (!work.empty() && !expired) {
    const size_t i = work.back();
    work.pop_back();
    if (index.QueryInSlot(pending[i].target, t, slot)) {
      ans.reachable = true;
      stats_.delta_answers.fetch_add(1, std::memory_order_relaxed);
      delta_counter_->Add();
      return ans;
    }
    for (size_t j = 0; j < k; ++j) {
      if (usable[j] == 0 &&
          index.QueryInSlot(pending[i].target, pending[j].source, slot)) {
        usable[j] = 1;
        work.push_back(j);
      }
    }
    expired = now_expired();
  }
  if (!expired) {
    stats_.delta_answers.fetch_add(1, std::memory_order_relaxed);
    delta_counter_->Add();
    return ans;  // exact negative: closure exhausted
  }
  // Budget blown mid-closure: degrade to the bounded traversal.
  stats_.deadline_degraded.fetch_add(1, std::memory_order_relaxed);
  deadline_counter_->Add();
  return DegradedAnswer(snap, pending, s, t);
}

ServeAnswer ReachService::DegradedAnswer(const ServeSnapshot& snap,
                                         const PendingEdges& pending,
                                         VertexId s, VertexId t) const {
  ServeAnswer ans;
  ans.source = AnswerSource::kFallbackBfs;
  const BoundedBfsOutcome out = BoundedUnionBfs(
      snap.graph, pending, s, t, options_.fallback_visit_budget);
  ans.reachable = out.reachable;
  // A found path is a witness; only unverified negatives are inexact.
  ans.exact = out.reachable || out.complete;
  stats_.fallback_answers.fetch_add(1, std::memory_order_relaxed);
  fallback_counter_->Add();
  return ans;
}

BoundedBfsOutcome BoundedUnionBfs(const Digraph& graph,
                                  const PendingEdges& extra, VertexId s,
                                  VertexId t, size_t max_visits) {
  BoundedBfsOutcome out;
  if (s == t) {
    out.reachable = true;
    return out;
  }
  std::vector<Edge> by_source(extra.begin(), extra.end());
  std::sort(by_source.begin(), by_source.end());
  std::vector<uint8_t> visited(graph.NumVertices(), 0);
  std::vector<VertexId> queue;
  queue.push_back(s);
  visited[s] = 1;
  size_t visits = 0;
  for (size_t head = 0; head < queue.size(); ++head) {
    if (visits++ >= max_visits) {
      out.complete = false;
      return out;
    }
    const VertexId v = queue[head];
    const auto enqueue = [&](VertexId n) {
      if (visited[n] == 0) {
        visited[n] = 1;
        queue.push_back(n);
      }
      return n == t;
    };
    for (const VertexId n : graph.OutNeighbors(v)) {
      if (enqueue(n)) {
        out.reachable = true;
        return out;
      }
    }
    const auto range = std::equal_range(
        by_source.begin(), by_source.end(), Edge{v, 0},
        [](const Edge& a, const Edge& b) { return a.source < b.source; });
    for (auto it = range.first; it != range.second; ++it) {
      if (enqueue(it->target)) {
        out.reachable = true;
        return out;
      }
    }
  }
  return out;
}

}  // namespace reach
