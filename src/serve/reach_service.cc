#include "serve/reach_service.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <optional>
#include <utility>

#include "core/failpoint.h"
#include "core/index_factory.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "par/thread_pool.h"
#include "plain/pruned_two_hop.h"

namespace reach {

namespace {

using Clock = std::chrono::steady_clock;

std::string ValidatedSpec(const std::string& spec) {
  return MakeIndex(spec).plain != nullptr ? spec : std::string("pll");
}

/// The pending-update list reduced to per-edge effective state: replaying
/// the list in order, the last operation on each (source, target) pair
/// wins. `adds` are the edges whose final op is an insert (the live graph
/// gains them), `dels` those whose final op is a delete (base-graph arcs
/// the live graph must mask). `has_deletes` reports whether ANY delete op
/// was present in the raw list — the query path uses it to decide whether
/// the insert-only monotonicity shortcut is still valid.
struct EffectiveUpdates {
  std::vector<Edge> adds;
  std::vector<Edge> dels;  // sorted, for binary-search masking
  bool has_deletes = false;
};

EffectiveUpdates EffectiveState(const PendingUpdates& updates) {
  EffectiveUpdates eff;
  for (const EdgeUpdate& u : updates) {
    if (u.IsDelete()) {
      eff.has_deletes = true;
      break;
    }
  }
  if (!eff.has_deletes) {
    // Insert-only fast path (the common churn-free case): no reduction
    // needed — duplicates are harmless to the closure and the BFS.
    eff.adds.reserve(updates.size());
    for (const EdgeUpdate& u : updates) {
      eff.adds.push_back(Edge{u.source, u.target});
    }
    return eff;
  }
  // Last-op-wins reduction. The list is bounded by the drain threshold
  // (plus a transient backpressure overshoot), so the quadratic scan
  // stays tiny; a map would cost more in allocation than it saves.
  std::vector<EdgeUpdate> last;
  last.reserve(updates.size());
  for (const EdgeUpdate& u : updates) {
    bool found = false;
    for (EdgeUpdate& l : last) {
      if (l.source == u.source && l.target == u.target) {
        l.kind = u.kind;
        found = true;
        break;
      }
    }
    if (!found) last.push_back(u);
  }
  for (const EdgeUpdate& u : last) {
    (u.IsInsert() ? eff.adds : eff.dels).push_back(Edge{u.source, u.target});
  }
  std::sort(eff.dels.begin(), eff.dels.end());
  return eff;
}

uint64_t ElapsedNs(Clock::time_point begin, Clock::time_point end) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
          .count());
}

// Trace-span name id of each serve stage (interned once per process).
uint32_t StageTraceId(ServeStage stage) {
  static const uint32_t ids[kNumServeStages] = {
      TraceRecorder::Global().Intern("serve.negcache_probe"),
      TraceRecorder::Global().Intern("serve.slot_acquire"),
      TraceRecorder::Global().Intern("serve.index_probe"),
      TraceRecorder::Global().Intern("serve.delta_closure"),
      TraceRecorder::Global().Intern("serve.fallback_bfs"),
  };
  return ids[static_cast<size_t>(stage)];
}

/// Times one pipeline stage into both the trace timeline (a span, no-op
/// while tracing is disabled or compiled out) and the slow-query record
/// (when one is being kept for this query).
class StageScope {
 public:
  StageScope(SlowQueryRecord* rec, ServeStage stage)
      : span_(StageTraceId(stage)), rec_(rec), stage_(stage) {
    if (rec_ != nullptr) start_ = Clock::now();
  }
  ~StageScope() {
    if (rec_ != nullptr) {
      rec_->stage_ns[static_cast<size_t>(stage_)] +=
          ElapsedNs(start_, Clock::now());
    }
  }
  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

 private:
  TraceSpan span_;
  SlowQueryRecord* rec_;
  ServeStage stage_;
  Clock::time_point start_;
};

}  // namespace

const char* BackpressurePolicyName(BackpressurePolicy policy) {
  switch (policy) {
    case BackpressurePolicy::kBlock:
      return "block";
    case BackpressurePolicy::kReject:
      return "reject";
    case BackpressurePolicy::kForceRebuild:
      return "force_rebuild";
  }
  return "?";
}

const char* RebuildStateName(RebuildState state) {
  switch (state) {
    case RebuildState::kIdle:
      return "idle";
    case RebuildState::kRunning:
      return "running";
    case RebuildState::kBackoff:
      return "backoff";
    case RebuildState::kFailed:
      return "failed";
  }
  return "?";
}

const char* ServeStageName(size_t stage) {
  switch (static_cast<ServeStage>(stage)) {
    case ServeStage::kNegCacheProbe:
      return "negcache_probe";
    case ServeStage::kSlotAcquire:
      return "slot_acquire";
    case ServeStage::kIndexProbe:
      return "index_probe";
    case ServeStage::kDeltaClosure:
      return "delta_closure";
    case ServeStage::kFallbackBfs:
      return "fallback_bfs";
  }
  return "?";
}

/// RAII lease of one concurrent-query slot from a pinned snapshot.
class ReachService::SlotLease {
 public:
  SlotLease(const ServeSnapshot& snap, bool* waited)
      : snap_(snap), slot_(snap.slots.Acquire(waited)) {}
  ~SlotLease() { snap_.slots.Release(slot_); }
  SlotLease(const SlotLease&) = delete;
  SlotLease& operator=(const SlotLease&) = delete;

  size_t slot() const { return slot_; }

 private:
  const ServeSnapshot& snap_;
  const size_t slot_;
};

ReachService::ReachService(Digraph base, ServiceOptions options)
    : options_(std::move(options)),
      num_vertices_(base.NumVertices()),
      spec_(ValidatedSpec(options_.spec)),
      negcache_(options_.negcache_capacity > 0
                    ? std::make_unique<NegativeResultCache>(
                          options_.negcache_shards, options_.negcache_capacity)
                    : nullptr),
      base_edges_(base.Edges()) {
  auto snap = std::make_shared<ServeSnapshot>();
  snap->version = 0;
  snap->graph = std::move(base);
  snapshot_.Store(std::move(snap));
  pending_.Store(std::make_shared<const PendingUpdates>());

  MetricsRegistry& reg = MetricsRegistry::Global();
  queries_counter_ = &reg.GetCounter("serve.queries");
  index_counter_ = &reg.GetCounter("serve.index_answers");
  delta_counter_ = &reg.GetCounter("serve.delta_answers");
  fallback_counter_ = &reg.GetCounter("serve.fallback_bfs");
  deadline_counter_ = &reg.GetCounter("serve.deadline_degraded");
  slot_wait_counter_ = &reg.GetCounter("serve.slot_waits");
  inexact_counter_ = &reg.GetCounter("serve.inexact_answers");
  insert_counter_ = &reg.GetCounter("serve.inserts");
  delete_counter_ = &reg.GetCounter("serve.update.deletes");
  update_batch_counter_ = &reg.GetCounter("serve.update.batches");
  update_rejected_counter_ = &reg.GetCounter("serve.update.rejected");
  delete_verify_counter_ = &reg.GetCounter("serve.update.delete_verifies");
  rebuild_counter_ = &reg.GetCounter("serve.rebuilds");
  slow_captured_counter_ = &reg.GetCounter("serve.slow.captured");
  slow_dropped_counter_ = &reg.GetCounter("serve.slow.dropped");
  negcache_hit_counter_ = &reg.GetCounter("serve.negcache.hit");
  negcache_miss_counter_ = &reg.GetCounter("serve.negcache.miss");
  negcache_evict_counter_ = &reg.GetCounter("serve.negcache.evict");
  negcache_invalidate_counter_ = &reg.GetCounter("serve.negcache.invalidate");
  shed_counter_ = &reg.GetCounter("serve.shed");
  admission_cache_counter_ = &reg.GetCounter("serve.admission.cache_only");
  admission_bfs_counter_ = &reg.GetCounter("serve.admission.bfs_only");
  bp_blocked_counter_ = &reg.GetCounter("serve.backpressure.blocked");
  bp_rejected_counter_ = &reg.GetCounter("serve.backpressure.rejected");
  bp_forced_counter_ = &reg.GetCounter("serve.backpressure.forced");
  rebuild_failure_counter_ = &reg.GetCounter("serve.rebuild.failures");
  rebuild_retry_counter_ = &reg.GetCounter("serve.rebuild.retries");
  watchdog_counter_ = &reg.GetCounter("serve.rebuild.watchdog_fired");
  version_gauge_ = &reg.GetGauge("serve.snapshot_version");
  pending_gauge_ = &reg.GetGauge("serve.pending_edges");
  health_ready_gauge_ = &reg.GetGauge("serve.health.ready");
  health_state_gauge_ = &reg.GetGauge("serve.health.rebuild_state");
  health_pending_fill_gauge_ = &reg.GetGauge("serve.health.pending_fill");
  health_inflight_fill_gauge_ = &reg.GetGauge("serve.health.inflight_fill");
  latency_hist_ = &reg.GetHistogram("serve.query_ns");
  reg.GetGauge("serve.negcache.bytes")
      .Set(negcache_ != nullptr
               ? static_cast<double>(negcache_->MemoryBytes())
               : 0.0);
}

ReachService::~ReachService() { Stop(); }

void ReachService::Start() {
  std::lock_guard<std::mutex> lock(rebuild_mu_);
  if (started_) return;
  started_ = true;
  ScheduleLocked();
}

LoadResult ReachService::StartWithSnapshot(const std::string& path) {
  std::lock_guard<std::mutex> lock(rebuild_mu_);
  if (started_) {
    return {LoadStatus::kUnsupported, "service already started"};
  }
  auto index = MakeIndex(spec_).plain;
  auto* two_hop = dynamic_cast<PrunedTwoHop*>(index.get());
  if (two_hop == nullptr) {
    return {LoadStatus::kUnsupported,
            "spec '" + spec_ + "' has no snapshot support"};
  }
  LoadResult result = two_hop->LoadSnapshot(path);
  if (!result) return result;
  if (two_hop->NumIndexedVertices() != num_vertices_) {
    return {LoadStatus::kWrongIndex,
            "snapshot covers " +
                std::to_string(two_hop->NumIndexedVertices()) +
                " vertices, service has " + std::to_string(num_vertices_)};
  }
  auto snap = std::make_shared<ServeSnapshot>();
  snap->graph = snapshot_.Load()->graph;  // the base graph from the ctor
  snap->index = std::move(index);
  const size_t granted = snap->index->PrepareConcurrentQueries(
      ResolveThreads(options_.slots));
  snap->slots.Reset(granted);
  snap->version = next_version_++;
  const uint64_t published_version = snap->version;
  snapshot_.Store(std::move(snap));
  version_gauge_->Set(static_cast<double>(published_version));
  started_ = true;  // rebuilds are insert-driven from here on
  return LoadResult{};
}

void ReachService::Stop() {
  stopped_.store(true, std::memory_order_seq_cst);
  {
    // Holding write_mu_ for the notify closes the race with a kBlock
    // writer between its predicate check and its wait.
    std::lock_guard<std::mutex> wl(write_mu_);
    backpressure_cv_.notify_all();
  }
  std::unique_lock<std::mutex> lock(rebuild_mu_);
  rebuild_cv_.notify_all();  // wake a backoff sleeper so it exits early
  rebuild_cv_.wait(lock, [&] { return !rebuild_inflight_; });
}

bool ReachService::InsertEdge(VertexId s, VertexId t) {
  return ApplyUpdate({EdgeUpdate::Insert(s, t)}).ok();
}

bool ReachService::DeleteEdge(VertexId s, VertexId t) {
  return ApplyUpdate({EdgeUpdate::Delete(s, t)}).ok();
}

UpdateResult ReachService::ApplyUpdate(const UpdateBatch& batch) {
  // Validate-first: a rejected batch must leave no trace in the buffer.
  size_t num_inserts = 0;
  size_t num_deletes = 0;
  for (const EdgeUpdate& update : batch) {
    if (update.source >= num_vertices_ || update.target >= num_vertices_) {
      stats_.update_rejected.fetch_add(1, std::memory_order_relaxed);
      update_rejected_counter_->Add();
      return UpdateResult::Rejected("endpoint out of range");
    }
    update.IsInsert() ? ++num_inserts : ++num_deletes;
  }
  if (stopped_.load(std::memory_order_relaxed)) {
    stats_.update_rejected.fetch_add(1, std::memory_order_relaxed);
    update_rejected_counter_->Add();
    return UpdateResult::Rejected("service stopped");
  }
  if (batch.empty()) return UpdateResult::Applied(0, 0, 0, 0);
  size_t pending_count = 0;
  bool force_schedule = false;
  {
    std::unique_lock<std::mutex> lock(write_mu_);
    const size_t cap = options_.max_pending_edges;
    // The batch is one admission unit: it lands whole or not at all
    // (kForceRebuild may overshoot the cap by a whole batch, same
    // transient-overshoot contract as before).
    if (cap > 0 && pending_.Load()->size() >= cap) {
      switch (options_.backpressure) {
        case BackpressurePolicy::kReject:
          stats_.backpressure_rejected.fetch_add(1,
                                                 std::memory_order_relaxed);
          bp_rejected_counter_->Add();
          stats_.update_rejected.fetch_add(1, std::memory_order_relaxed);
          update_rejected_counter_->Add();
          return UpdateResult::Rejected("backpressure: pending buffer full");
        case BackpressurePolicy::kForceRebuild:
          // Accept past the cap; the forced drain pulls it back under.
          stats_.backpressure_forced.fetch_add(1, std::memory_order_relaxed);
          bp_forced_counter_->Add();
          force_schedule = true;
          break;
        case BackpressurePolicy::kBlock: {
          stats_.backpressure_blocked.fetch_add(1,
                                                std::memory_order_relaxed);
          bp_blocked_counter_->Add();
          // Re-schedule on every wakeup that still finds the buffer full:
          // the drain that made room may have stopped before racing
          // writers refilled it. (write_mu_ -> rebuild_mu_ is the
          // established lock order; the reverse never happens.)
          while (!stopped_.load(std::memory_order_relaxed) &&
                 pending_.Load()->size() >= cap) {
            {
              std::lock_guard<std::mutex> rl(rebuild_mu_);
              ScheduleLocked();
            }
            backpressure_cv_.wait(lock);
          }
          if (stopped_.load(std::memory_order_relaxed)) {
            stats_.update_rejected.fetch_add(1, std::memory_order_relaxed);
            update_rejected_counter_->Add();
            return UpdateResult::Rejected("service stopped");
          }
          break;
        }
      }
    }
    const auto cur = pending_.Load();
    auto next = std::make_shared<PendingUpdates>();
    next->reserve(cur->size() + batch.size());
    *next = *cur;
    next->insert(next->end(), batch.begin(), batch.end());
    pending_count = next->size();
    pending_.Store(std::move(next));
  }
  stats_.inserts.fetch_add(num_inserts, std::memory_order_relaxed);
  insert_counter_->Add(num_inserts);
  stats_.deletes.fetch_add(num_deletes, std::memory_order_relaxed);
  delete_counter_->Add(num_deletes);
  stats_.update_batches.fetch_add(1, std::memory_order_relaxed);
  update_batch_counter_->Add();
  pending_gauge_->Set(static_cast<double>(pending_count));
  if (negcache_ != nullptr && num_inserts > 0) {
    // After the pending publish: a query sampling the new epoch is
    // guaranteed to pin a pending list containing this batch, so every
    // negative it verifies (and caches) accounts for it. Delete-only
    // batches skip the bump — deletions only shrink reachability, so a
    // cached verified negative can never turn stale positive.
    negcache_->Invalidate();
    stats_.negcache_invalidations.fetch_add(1, std::memory_order_relaxed);
    negcache_invalidate_counter_->Add();
  }
  if (force_schedule || pending_count >= options_.drain_threshold) {
    std::lock_guard<std::mutex> lock(rebuild_mu_);
    ScheduleLocked();
  }
  // Every accepted update is answered exactly from the moment it lands
  // (delta closure / live-union verification), so the batch counts as
  // incrementally applied with zero damage: the serve path never owes a
  // caller-visible rebuild.
  return UpdateResult::Applied(batch.size(), 0, 0, 0);
}

void ReachService::Flush() {
  std::unique_lock<std::mutex> lock(rebuild_mu_);
  if (stopped_.load(std::memory_order_relaxed)) return;
  flush_requested_ = true;
  ScheduleLocked();
  rebuild_cv_.wait(lock, [&] {
    if (stopped_.load(std::memory_order_relaxed)) return true;
    if (!rebuild_inflight_ && pending_.Load()->empty()) return true;
    // A drain finished but inserts raced past it: keep draining until
    // everything accepted before this Flush is absorbed.
    if (!rebuild_inflight_) {
      flush_requested_ = true;
      ScheduleLocked();
    }
    return false;
  });
}

void ReachService::ScheduleLocked() {
  if (stopped_.load(std::memory_order_relaxed) || !started_ ||
      rebuild_inflight_) {
    return;
  }
  rebuild_inflight_ = true;
  ThreadPool::Global().Submit([this] { RebuildLoop(); });
}

void ReachService::RebuildLoop() {
  size_t consecutive_failures = 0;
  for (;;) {
    REACH_TRACE_SPAN("serve.rebuild");
    SetRebuildState(RebuildState::kRunning);
    // Everything pending *now* goes into this generation; inserts racing
    // past this load stay pending (the list only ever grows by append,
    // so the drained list is a prefix of every later list). A retry
    // re-loads here, so a re-queued drain picks up newly arrived edges.
    const auto drained = pending_.Load();
    {
      std::lock_guard<std::mutex> lock(rebuild_mu_);
      flush_requested_ = false;
    }

    const Clock::time_point attempt_start = Clock::now();
    const bool watchdog_on = options_.rebuild_watchdog.count() > 0;
    auto snap = std::make_shared<ServeSnapshot>();
    bool failed = false;
    bool stalled = false;
    std::string error;
    try {
      // Chaos site: `error` simulates an organic build failure (OOM, bad
      // allocator, index bug); `delay` stalls the attempt so the
      // watchdog path is reachable deterministically.
      if (REACH_FAILPOINT("serve.rebuild").action ==
          FailpointAction::kError) {
        throw FailpointError("failpoint serve.rebuild");
      }
      {
        REACH_TRACE_SPAN("serve.rebuild.graph");
        // Materialize the drained updates: reduce to last-op-per-edge,
        // drop every touched pair from the base set, then re-add the
        // effective inserts. Replay order is already folded into the
        // reduction, and the drop-then-add avoids duplicate edges when a
        // pending insert races an existing base edge.
        const EffectiveUpdates eff = EffectiveState(*drained);
        std::vector<Edge> edges = base_edges_;
        if (eff.has_deletes) {
          std::vector<Edge> touched = eff.adds;
          touched.insert(touched.end(), eff.dels.begin(), eff.dels.end());
          std::sort(touched.begin(), touched.end());
          std::erase_if(edges, [&](const Edge& e) {
            return std::binary_search(touched.begin(), touched.end(), e);
          });
        }
        edges.insert(edges.end(), eff.adds.begin(), eff.adds.end());
        snap->graph = Digraph::FromEdges(
            static_cast<VertexId>(num_vertices_), std::move(edges));
      }
      // Cooperative watchdog checkpoint, placed where abandoning still
      // saves real work (the index build dominates): an attempt already
      // past its deadline is re-queued instead of building on. Once the
      // index build starts it runs to completion — a finished index is
      // published even if late, since discarding it helps nobody.
      if (watchdog_on &&
          Clock::now() - attempt_start > options_.rebuild_watchdog) {
        stalled = true;
      } else {
        // The index must be built against the graph at its final address
        // — partial indexes keep a pointer into it for guided traversal.
        REACH_TRACE_SPAN("serve.rebuild.index");
        snap->index = MakeIndex(spec_).plain;
        snap->index->Build(snap->graph);
      }
    } catch (const std::exception& e) {
      failed = true;
      error = e.what();
    } catch (...) {
      failed = true;
      error = "unknown rebuild exception";
    }
    if (stalled) {
      failed = true;
      error = "watchdog: drain attempt exceeded deadline, re-queued";
      stats_.watchdog_fired.fetch_add(1, std::memory_order_relaxed);
      watchdog_counter_->Add();
    }
    if (failed) {
      snap.reset();  // the last good snapshot keeps serving, untouched
      ++consecutive_failures;
      NoteRebuildFailure(error, consecutive_failures);
      if (consecutive_failures > options_.rebuild_max_retries) {
        // Retries exhausted: abandon the drain. Pending updates stay put
        // — queries still answer them exactly via the delta closure and
        // live-union verification — and the next ApplyUpdate/Flush
        // schedules a fresh loop.
        SetRebuildState(RebuildState::kFailed);
        // Exit handshake. A writer parked on kBlock backpressure may
        // have no-op'd its ScheduleLocked against this (then in-flight)
        // drain; wake it under write_mu_ (taken before rebuild_mu_, the
        // established order) so the notify can't land between its no-op
        // and its wait, and so that when it re-runs ScheduleLocked the
        // in-flight flag is already down. Clearing the flag is the LAST
        // touch of `this`: the instant a Stop()/join()er observes it,
        // the service may be destroyed, so nothing below may follow the
        // final unlock.
        std::unique_lock<std::mutex> wl(write_mu_);
        std::unique_lock<std::mutex> rl(rebuild_mu_);
        backpressure_cv_.notify_all();
        wl.unlock();
        rebuild_inflight_ = false;
        rebuild_cv_.notify_all();
        rl.unlock();
        return;
      }
      SetRebuildState(RebuildState::kBackoff);
      // Exponential backoff, capped, with ±50% deterministic jitter so
      // co-located services don't retry in lockstep. Interruptible by
      // Stop().
      Clock::duration backoff = options_.rebuild_backoff_initial;
      for (size_t i = 1; i < consecutive_failures &&
                         backoff < options_.rebuild_backoff_max;
           ++i) {
        backoff *= 2;
      }
      backoff = std::min<Clock::duration>(backoff,
                                          options_.rebuild_backoff_max);
      backoff = std::chrono::duration_cast<Clock::duration>(
          backoff * (0.5 + backoff_rng_.NextDouble()));
      {
        std::unique_lock<std::mutex> lock(rebuild_mu_);
        rebuild_cv_.wait_for(lock, backoff, [&] {
          return stopped_.load(std::memory_order_relaxed);
        });
        if (stopped_.load(std::memory_order_relaxed)) {
          SetRebuildState(RebuildState::kIdle);
          rebuild_inflight_ = false;
          rebuild_cv_.notify_all();
          return;
        }
      }
      stats_.rebuild_retries.fetch_add(1, std::memory_order_relaxed);
      rebuild_retry_counter_->Add();
      continue;
    }
    consecutive_failures = 0;
    rebuild_consecutive_failures_.store(0, std::memory_order_relaxed);
    const size_t granted = snap->index->PrepareConcurrentQueries(
        ResolveThreads(options_.slots));
    snap->slots.Reset(granted);
    snap->version = next_version_++;
    base_edges_ = snap->graph.Edges();
    const uint64_t published_version = snap->version;

    // Publish, then trim the absorbed prefix. Readers load pending
    // BEFORE snapshot, so between the two stores they can only observe
    // the new snapshot with a stale (longer) pending list — harmless
    // double-counting, never a lost edge.
    snapshot_.Store(std::move(snap));
    REACH_TRACE_INSTANT("serve.snapshot_swap");
    version_gauge_->Set(static_cast<double>(published_version));
    if (negcache_ != nullptr) {
      // The swap adds no reachability (it only absorbs pending updates,
      // and drained deletes can only shrink it), so this bump is defense
      // in depth: entries verified against the previous snapshot+pending
      // union stay unreachable, but tying cache lifetime to the
      // generation keeps the invariant local.
      negcache_->Invalidate();
      stats_.negcache_invalidations.fetch_add(1, std::memory_order_relaxed);
      negcache_invalidate_counter_->Add();
    }
    size_t left = 0;
    {
      std::lock_guard<std::mutex> lock(write_mu_);
      const auto cur = pending_.Load();
      auto next = std::make_shared<PendingUpdates>(
          cur->begin() + static_cast<ptrdiff_t>(drained->size()), cur->end());
      left = next->size();
      pending_.Store(std::move(next));
      // Room just opened: release writers parked on kBlock backpressure.
      backpressure_cv_.notify_all();
    }
    pending_gauge_->Set(static_cast<double>(left));
    health_ready_gauge_->Set(1.0);
    stats_.rebuilds.fetch_add(1, std::memory_order_relaxed);
    rebuild_counter_->Add();

    {
      // Exit handshake, same shape as the retries-exhausted one above: a
      // writer that refilled the buffer right after the trim saw this
      // drain still in flight, skipped scheduling, and parked — wake it
      // under write_mu_ (before rebuild_mu_, the established order) so
      // its re-run ScheduleLocked finds the in-flight flag already down.
      // Clearing the flag must be the LAST touch of `this`: a
      // Stop()/join()er that observes it may destroy the service.
      std::unique_lock<std::mutex> wl(write_mu_);
      std::unique_lock<std::mutex> rl(rebuild_mu_);
      const bool more = !stopped_.load(std::memory_order_relaxed) &&
                        (left >= options_.drain_threshold ||
                         (flush_requested_ && left > 0));
      if (more) continue;
      SetRebuildState(RebuildState::kIdle);
      backpressure_cv_.notify_all();
      wl.unlock();
      rebuild_inflight_ = false;
      rebuild_cv_.notify_all();
      rl.unlock();
      return;
    }
  }
}

/// RAII registration in the in-flight count that AdmitTier reads. The
/// count includes this query — the first query under cap m sees 1.
class ReachService::InflightGuard {
 public:
  explicit InflightGuard(const ReachService& service) : service_(service) {
    now_ = service_.inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  ~InflightGuard() {
    service_.inflight_.fetch_sub(1, std::memory_order_relaxed);
  }
  InflightGuard(const InflightGuard&) = delete;
  InflightGuard& operator=(const InflightGuard&) = delete;

  size_t now() const { return now_; }

 private:
  const ReachService& service_;
  size_t now_;
};

ServeAnswer ReachService::Query(VertexId s, VertexId t) const {
  REACH_TRACE_SPAN("serve.query");
  const Clock::time_point start = Clock::now();
  stats_.queries.fetch_add(1, std::memory_order_relaxed);
  queries_counter_->Add();

  InflightGuard inflight(*this);
  // Chaos site, inside the in-flight window on purpose: `delay(ms=N)`
  // stretches every query to simulate slow readers, which is how tests
  // push the admission gate into degradation and shedding.
  REACH_FAILPOINT("serve.query");
  const AdmissionTier tier = AdmitTier(inflight.now());
  if (tier == AdmissionTier::kShed) {
    // Over capacity: answer nothing rather than queue into collapse. The
    // shed reply is O(1), explicitly inexact, and never cached.
    stats_.shed.fetch_add(1, std::memory_order_relaxed);
    shed_counter_->Add();
    ServeAnswer ans;
    ans.reachable = false;
    ans.exact = false;
    ans.source = AnswerSource::kShedded;
    ans.snapshot_version = snapshot_.Load()->version;
    return ans;
  }
  if (tier == AdmissionTier::kCacheOnly) {
    stats_.admission_cache_only.fetch_add(1, std::memory_order_relaxed);
    admission_cache_counter_->Add();
  } else if (tier == AdmissionTier::kBfsOnly) {
    stats_.admission_bfs_only.fetch_add(1, std::memory_order_relaxed);
    admission_bfs_counter_->Add();
  }

  // Keep a stage-by-stage record only when it could end up in the
  // slow-query log — otherwise the extra clock reads never happen. A
  // query can qualify by latency (threshold set) or by degrading on its
  // deadline; with neither configured, capture is impossible.
  SlowQueryRecord rec;
  SlowQueryRecord* recp =
      options_.slow_log_capacity > 0 &&
              (options_.slow_query_threshold.count() > 0 ||
               options_.deadline.count() > 0)
          ? &rec
          : nullptr;

  // Sample the negcache epoch BEFORE pinning: the pinned pending list
  // then contains every edge counted in the sampled epoch, so a negative
  // verified against it may be cached at that epoch. (An insert racing
  // between the sample and the pin only makes the verified edge set
  // larger — a negative on a superset is valid for the subset.)
  const uint64_t negcache_epoch =
      negcache_ != nullptr ? negcache_->Epoch() : 0;
  const bool cacheable = negcache_ != nullptr && s < num_vertices_ &&
                         t < num_vertices_ && s != t;
  if (cacheable) {
    StageScope stage(recp, ServeStage::kNegCacheProbe);
    if (negcache_->Lookup(s, t, negcache_epoch)) {
      stats_.negcache_hits.fetch_add(1, std::memory_order_relaxed);
      negcache_hit_counter_->Add();
      ServeAnswer ans;
      ans.reachable = false;
      ans.exact = true;
      ans.source = AnswerSource::kNegCache;
      ans.snapshot_version = snapshot_.Load()->version;
      latency_hist_->Record(ElapsedNs(start, Clock::now()));
      return ans;
    }
  }

  // Pin pending BEFORE the snapshot: a concurrent swap+trim between the
  // two loads then yields a newer snapshot with an already-absorbed
  // pending prefix (redundant but correct). The opposite order could
  // pair an old snapshot with a trimmed list and lose edges.
  std::shared_ptr<const PendingUpdates> pending;
  std::shared_ptr<const ServeSnapshot> snap;
  {
    REACH_TRACE_SPAN("serve.snapshot_pin");
    pending = pending_.Load();
    snap = snapshot_.Load();
  }

  ServeAnswer ans;
  ans.snapshot_version = snap->version;
  if (s < num_vertices_ && t < num_vertices_) {
    if (tier == AdmissionTier::kBfsOnly) {
      // Heavy load: skip slot acquisition and the delta closure entirely;
      // one bounded traversal with a tighter budget bounds the cost.
      ans = DegradedAnswer(*snap, *pending, s, t,
                           options_.degraded_visit_budget, recp);
    } else if (snap->index == nullptr) {
      // Startup: the first index build is still in flight.
      ans = DegradedAnswer(*snap, *pending, s, t,
                           options_.fallback_visit_budget, recp);
    } else {
      const Clock::time_point deadline =
          options_.deadline.count() > 0 ? start + options_.deadline
                                        : Clock::time_point::max();
      bool waited = false;
      ans = AnswerWithIndex(*snap, *pending, s, t, deadline,
                            /*allow_delta=*/tier == AdmissionTier::kFull,
                            &waited, recp);
      if (waited) {
        stats_.slot_waits.fetch_add(1, std::memory_order_relaxed);
        slot_wait_counter_->Add();
      }
    }
    ans.snapshot_version = snap->version;
  }
  if (cacheable) {
    stats_.negcache_misses.fetch_add(1, std::memory_order_relaxed);
    negcache_miss_counter_->Add();
    if (!ans.reachable && ans.exact) {
      // Verified unreachable against the pinned pending+snapshot union,
      // which covers everything counted in the sampled epoch.
      const auto outcome = negcache_->Insert(s, t, negcache_epoch);
      if (outcome == NegativeResultCache::InsertOutcome::kEvicted) {
        stats_.negcache_evictions.fetch_add(1, std::memory_order_relaxed);
        negcache_evict_counter_->Add();
      }
    }
  }
  if (!ans.exact) {
    stats_.inexact_answers.fetch_add(1, std::memory_order_relaxed);
    inexact_counter_->Add();
  }
  const uint64_t total_ns = ElapsedNs(start, Clock::now());
  latency_hist_->Record(total_ns);
  if (recp != nullptr) {
    const bool over_threshold =
        options_.slow_query_threshold.count() > 0 &&
        total_ns >=
            static_cast<uint64_t>(options_.slow_query_threshold.count());
    if (rec.deadline_degraded || over_threshold) {
      rec.s = s;
      rec.t = t;
      rec.reachable = ans.reachable;
      rec.exact = ans.exact;
      rec.source = ans.source;
      rec.snapshot_version = ans.snapshot_version;
      rec.total_ns = total_ns;
      rec.pending_edges = pending->size();
      CaptureSlowQuery(rec);
    }
  }
  return ans;
}

std::vector<SlowQueryRecord> ReachService::SlowQueries() const {
  std::lock_guard<std::mutex> lock(slow_mu_);
  return std::vector<SlowQueryRecord>(slow_log_.begin(), slow_log_.end());
}

void ReachService::ClearSlowQueries() {
  std::lock_guard<std::mutex> lock(slow_mu_);
  slow_log_.clear();
}

void ReachService::CaptureSlowQuery(SlowQueryRecord rec) const {
  {
    std::lock_guard<std::mutex> lock(slow_mu_);
    slow_log_.push_back(rec);
    if (slow_log_.size() > options_.slow_log_capacity) {
      slow_log_.pop_front();
      stats_.slow_dropped.fetch_add(1, std::memory_order_relaxed);
      slow_dropped_counter_->Add();
    }
  }
  stats_.slow_captured.fetch_add(1, std::memory_order_relaxed);
  slow_captured_counter_->Add();
}

ServeAnswer ReachService::AnswerWithIndex(
    const ServeSnapshot& snap, const PendingUpdates& pending, VertexId s,
    VertexId t, Clock::time_point deadline, bool allow_delta, bool* waited,
    SlowQueryRecord* rec) const {
  ServeAnswer ans;
  std::optional<SlotLease> lease;
  {
    StageScope stage(rec, ServeStage::kSlotAcquire);
    lease.emplace(snap, waited);
  }
  if (rec != nullptr) rec->slot_waited = *waited;
  const ReachabilityIndex& index = *snap.index;
  const size_t slot = lease->slot();
  const auto probe = [&](VertexId from, VertexId to) {
    if (rec != nullptr) ++rec->index_probes;
    return index.QueryInSlot(from, to, slot);
  };

  // The decision runs over the SUPERSET graph first: snapshot ∪ effective
  // pending inserts, deletes ignored. The live graph is a subgraph of it,
  // so a superset negative is an exact negative. A superset positive is
  // final only while no deletes are pending (insert-only monotonicity);
  // with deletes pending it is a candidate that must be re-verified
  // against the live union graph by a bounded traversal.
  const EffectiveUpdates eff = EffectiveState(pending);
  bool superset_reachable = false;
  {
    StageScope stage(rec, ServeStage::kIndexProbe);
    superset_reachable = probe(s, t);
  }
  if (superset_reachable && !eff.has_deletes) {
    // Reachability is monotone under insertion: an index hit on this
    // snapshot stays true no matter how many inserts are pending.
    ans.reachable = true;
    stats_.index_answers.fetch_add(1, std::memory_order_relaxed);
    index_counter_->Add();
    return ans;
  }
  if (!superset_reachable && eff.adds.empty()) {
    // No path even with every ever-pending edge present: exact negative
    // regardless of pending deletes (they only remove more paths).
    stats_.index_answers.fetch_add(1, std::memory_order_relaxed);
    index_counter_->Add();
    return ans;
  }
  if (!allow_delta) {
    // Admission gate disallowed the O(k²) closure and the verification
    // traversal: the pending updates are unaccounted for, so this
    // negative is only approximate.
    ans.exact = false;
    stats_.index_answers.fetch_add(1, std::memory_order_relaxed);
    index_counter_->Add();
    return ans;
  }

  // Superset index miss with pending inserts: close over them. Any s-t
  // path in graph ∪ adds decomposes into base-graph segments joined by
  // pending inserts, so a worklist of "usable" inserts (tail
  // base-reachable from s, possibly through other usable inserts) decides
  // the superset query with O(k²) index lookups, k = |adds| (bounded by
  // the drain threshold).
  bool expired = false;
  if (!superset_reachable) {
    ans.source = AnswerSource::kDelta;
    StageScope stage(rec, ServeStage::kDeltaClosure);
    const std::vector<Edge>& adds = eff.adds;
    const size_t k = adds.size();
    std::vector<uint8_t> usable(k, 0);
    std::vector<size_t> work;
    work.reserve(k);
    const auto now_expired = [&deadline] { return Clock::now() > deadline; };
    for (size_t i = 0; i < k; ++i) {
      if (probe(s, adds[i].source)) {
        usable[i] = 1;
        work.push_back(i);
      }
    }
    while (!work.empty() && !expired) {
      const size_t i = work.back();
      work.pop_back();
      if (probe(adds[i].target, t)) {
        superset_reachable = true;
        break;
      }
      for (size_t j = 0; j < k; ++j) {
        if (usable[j] == 0 && probe(adds[i].target, adds[j].source)) {
          usable[j] = 1;
          work.push_back(j);
        }
      }
      expired = now_expired();
    }
  }
  if (expired && !superset_reachable) {
    // Budget blown mid-closure: degrade to the bounded traversal.
    stats_.deadline_degraded.fetch_add(1, std::memory_order_relaxed);
    deadline_counter_->Add();
    if (rec != nullptr) rec->deadline_degraded = true;
    return DegradedAnswer(snap, pending, s, t, options_.fallback_visit_budget,
                          rec);
  }
  if (!superset_reachable || !eff.has_deletes) {
    // Exact either way: a closure-exhausted negative, or a witness
    // segment chain with no deletes pending to invalidate it.
    ans.reachable = superset_reachable;
    ans.source = AnswerSource::kDelta;
    stats_.delta_answers.fetch_add(1, std::memory_order_relaxed);
    delta_counter_->Add();
    return ans;
  }
  // Superset positive with deletes pending: the witness may route through
  // a tombstoned edge, so only a traversal of the live union graph
  // decides. It returns an exact answer unless the visit budget runs out
  // (then an inexact negative, flagged as such).
  stats_.delete_verifies.fetch_add(1, std::memory_order_relaxed);
  delete_verify_counter_->Add();
  return DegradedAnswer(snap, pending, s, t, options_.fallback_visit_budget,
                        rec);
}

ServeAnswer ReachService::DegradedAnswer(const ServeSnapshot& snap,
                                         const PendingUpdates& pending,
                                         VertexId s, VertexId t,
                                         size_t visit_budget,
                                         SlowQueryRecord* rec) const {
  ServeAnswer ans;
  ans.source = AnswerSource::kFallbackBfs;
  BoundedBfsOutcome out;
  {
    StageScope stage(rec, ServeStage::kFallbackBfs);
    out = BoundedUnionBfs(snap.graph, pending, s, t, visit_budget);
  }
  if (rec != nullptr) rec->bfs_visits = out.visits;
  ans.reachable = out.reachable;
  // A found path is a witness; only unverified negatives are inexact.
  ans.exact = out.reachable || out.complete;
  stats_.fallback_answers.fetch_add(1, std::memory_order_relaxed);
  fallback_counter_->Add();
  return ans;
}

ReachService::AdmissionTier ReachService::AdmitTier(
    size_t inflight_now) const {
  const size_t m = options_.max_inflight_queries;
  if (m == 0) return AdmissionTier::kFull;  // gate disabled
  const size_t c = inflight_now;
  if (c > m) return AdmissionTier::kShed;
  if (c * 4 > m * 3) return AdmissionTier::kBfsOnly;   // >75% full
  if (c * 2 > m) return AdmissionTier::kCacheOnly;     // >50% full
  return AdmissionTier::kFull;
}

void ReachService::SetRebuildState(RebuildState state) {
  rebuild_state_.store(static_cast<uint8_t>(state),
                       std::memory_order_relaxed);
  health_state_gauge_->Set(static_cast<double>(static_cast<uint8_t>(state)));
}

void ReachService::NoteRebuildFailure(const std::string& error,
                                      size_t consecutive) {
  rebuild_consecutive_failures_.store(consecutive, std::memory_order_relaxed);
  stats_.rebuild_failures.fetch_add(1, std::memory_order_relaxed);
  rebuild_failure_counter_->Add();
  std::lock_guard<std::mutex> lock(health_mu_);
  last_rebuild_error_ = error;
}

ServiceHealth ReachService::Health() const {
  ServiceHealth health;
  const auto snap = snapshot_.Load();
  health.ready = snap->index != nullptr;
  health.accepting_writes = !stopped_.load(std::memory_order_relaxed);
  health.snapshot_version = snap->version;
  health.pending_edges = pending_.Load()->size();
  health.max_pending_edges = options_.max_pending_edges;
  health.pending_fill =
      health.max_pending_edges > 0
          ? static_cast<double>(health.pending_edges) /
                static_cast<double>(health.max_pending_edges)
          : 0.0;
  health.inflight_queries = inflight_.load(std::memory_order_relaxed);
  health.max_inflight_queries = options_.max_inflight_queries;
  health.inflight_fill =
      health.max_inflight_queries > 0
          ? static_cast<double>(health.inflight_queries) /
                static_cast<double>(health.max_inflight_queries)
          : 0.0;
  health.rebuild = static_cast<RebuildState>(
      rebuild_state_.load(std::memory_order_relaxed));
  health.rebuild_consecutive_failures =
      rebuild_consecutive_failures_.load(std::memory_order_relaxed);
  health.rebuild_retries =
      stats_.rebuild_retries.load(std::memory_order_relaxed);
  health.rebuild_failures =
      stats_.rebuild_failures.load(std::memory_order_relaxed);
  health.watchdog_fired =
      stats_.watchdog_fired.load(std::memory_order_relaxed);
  health.shed = stats_.shed.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(health_mu_);
    health.last_rebuild_error = last_rebuild_error_;
  }
  // Readiness snapshot doubles as the metrics push for the health gauges
  // (state is also pushed eagerly on every transition).
  health_ready_gauge_->Set(health.ready ? 1.0 : 0.0);
  health_state_gauge_->Set(
      static_cast<double>(static_cast<uint8_t>(health.rebuild)));
  health_pending_fill_gauge_->Set(health.pending_fill);
  health_inflight_fill_gauge_->Set(health.inflight_fill);
  return health;
}

BoundedBfsOutcome BoundedUnionBfs(const Digraph& graph,
                                  const PendingUpdates& updates, VertexId s,
                                  VertexId t, size_t max_visits) {
  BoundedBfsOutcome out;
  if (s == t) {
    out.reachable = true;
    return out;
  }
  // Live union graph: base arcs not masked by an effective delete, plus
  // the effective inserts. This is the one place on the serve path that
  // decides reachability against deletions exactly.
  const EffectiveUpdates eff = EffectiveState(updates);
  std::vector<Edge> by_source = eff.adds;
  std::sort(by_source.begin(), by_source.end());
  const std::vector<Edge>& dels = eff.dels;  // already sorted
  std::vector<uint8_t> visited(graph.NumVertices(), 0);
  std::vector<VertexId> queue;
  queue.push_back(s);
  visited[s] = 1;
  for (size_t head = 0; head < queue.size(); ++head) {
    if (out.visits >= max_visits) {
      out.complete = false;
      return out;
    }
    ++out.visits;
    const VertexId v = queue[head];
    const auto enqueue = [&](VertexId n) {
      if (visited[n] == 0) {
        visited[n] = 1;
        queue.push_back(n);
      }
      return n == t;
    };
    for (const VertexId n : graph.OutNeighbors(v)) {
      if (!dels.empty() &&
          std::binary_search(dels.begin(), dels.end(), Edge{v, n})) {
        continue;  // tombstoned base arc
      }
      if (enqueue(n)) {
        out.reachable = true;
        return out;
      }
    }
    const auto range = std::equal_range(
        by_source.begin(), by_source.end(), Edge{v, 0},
        [](const Edge& a, const Edge& b) { return a.source < b.source; });
    for (auto it = range.first; it != range.second; ++it) {
      if (enqueue(it->target)) {
        out.reachable = true;
        return out;
      }
    }
  }
  return out;
}

}  // namespace reach
