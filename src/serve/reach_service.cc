#include "serve/reach_service.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <utility>

#include "core/index_factory.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "par/thread_pool.h"
#include "plain/pruned_two_hop.h"

namespace reach {

namespace {

using Clock = std::chrono::steady_clock;

std::string ValidatedSpec(const std::string& spec) {
  return MakeIndex(spec).plain != nullptr ? spec : std::string("pll");
}

uint64_t ElapsedNs(Clock::time_point begin, Clock::time_point end) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
          .count());
}

// Trace-span name id of each serve stage (interned once per process).
uint32_t StageTraceId(ServeStage stage) {
  static const uint32_t ids[kNumServeStages] = {
      TraceRecorder::Global().Intern("serve.negcache_probe"),
      TraceRecorder::Global().Intern("serve.slot_acquire"),
      TraceRecorder::Global().Intern("serve.index_probe"),
      TraceRecorder::Global().Intern("serve.delta_closure"),
      TraceRecorder::Global().Intern("serve.fallback_bfs"),
  };
  return ids[static_cast<size_t>(stage)];
}

/// Times one pipeline stage into both the trace timeline (a span, no-op
/// while tracing is disabled or compiled out) and the slow-query record
/// (when one is being kept for this query).
class StageScope {
 public:
  StageScope(SlowQueryRecord* rec, ServeStage stage)
      : span_(StageTraceId(stage)), rec_(rec), stage_(stage) {
    if (rec_ != nullptr) start_ = Clock::now();
  }
  ~StageScope() {
    if (rec_ != nullptr) {
      rec_->stage_ns[static_cast<size_t>(stage_)] +=
          ElapsedNs(start_, Clock::now());
    }
  }
  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

 private:
  TraceSpan span_;
  SlowQueryRecord* rec_;
  ServeStage stage_;
  Clock::time_point start_;
};

}  // namespace

const char* ServeStageName(size_t stage) {
  switch (static_cast<ServeStage>(stage)) {
    case ServeStage::kNegCacheProbe:
      return "negcache_probe";
    case ServeStage::kSlotAcquire:
      return "slot_acquire";
    case ServeStage::kIndexProbe:
      return "index_probe";
    case ServeStage::kDeltaClosure:
      return "delta_closure";
    case ServeStage::kFallbackBfs:
      return "fallback_bfs";
  }
  return "?";
}

/// RAII lease of one concurrent-query slot from a pinned snapshot.
class ReachService::SlotLease {
 public:
  SlotLease(const ServeSnapshot& snap, bool* waited)
      : snap_(snap), slot_(snap.slots.Acquire(waited)) {}
  ~SlotLease() { snap_.slots.Release(slot_); }
  SlotLease(const SlotLease&) = delete;
  SlotLease& operator=(const SlotLease&) = delete;

  size_t slot() const { return slot_; }

 private:
  const ServeSnapshot& snap_;
  const size_t slot_;
};

ReachService::ReachService(Digraph base, ServiceOptions options)
    : options_(std::move(options)),
      num_vertices_(base.NumVertices()),
      spec_(ValidatedSpec(options_.spec)),
      negcache_(options_.negcache_capacity > 0
                    ? std::make_unique<NegativeResultCache>(
                          options_.negcache_shards, options_.negcache_capacity)
                    : nullptr),
      base_edges_(base.Edges()) {
  auto snap = std::make_shared<ServeSnapshot>();
  snap->version = 0;
  snap->graph = std::move(base);
  snapshot_.Store(std::move(snap));
  pending_.Store(std::make_shared<const PendingEdges>());

  MetricsRegistry& reg = MetricsRegistry::Global();
  queries_counter_ = &reg.GetCounter("serve.queries");
  index_counter_ = &reg.GetCounter("serve.index_answers");
  delta_counter_ = &reg.GetCounter("serve.delta_answers");
  fallback_counter_ = &reg.GetCounter("serve.fallback_bfs");
  deadline_counter_ = &reg.GetCounter("serve.deadline_degraded");
  slot_wait_counter_ = &reg.GetCounter("serve.slot_waits");
  inexact_counter_ = &reg.GetCounter("serve.inexact_answers");
  insert_counter_ = &reg.GetCounter("serve.inserts");
  rebuild_counter_ = &reg.GetCounter("serve.rebuilds");
  slow_captured_counter_ = &reg.GetCounter("serve.slow.captured");
  slow_dropped_counter_ = &reg.GetCounter("serve.slow.dropped");
  negcache_hit_counter_ = &reg.GetCounter("serve.negcache.hit");
  negcache_miss_counter_ = &reg.GetCounter("serve.negcache.miss");
  negcache_evict_counter_ = &reg.GetCounter("serve.negcache.evict");
  negcache_invalidate_counter_ = &reg.GetCounter("serve.negcache.invalidate");
  version_gauge_ = &reg.GetGauge("serve.snapshot_version");
  pending_gauge_ = &reg.GetGauge("serve.pending_edges");
  latency_hist_ = &reg.GetHistogram("serve.query_ns");
  reg.GetGauge("serve.negcache.bytes")
      .Set(negcache_ != nullptr
               ? static_cast<double>(negcache_->MemoryBytes())
               : 0.0);
}

ReachService::~ReachService() { Stop(); }

void ReachService::Start() {
  std::lock_guard<std::mutex> lock(rebuild_mu_);
  if (started_) return;
  started_ = true;
  ScheduleLocked();
}

LoadResult ReachService::StartWithSnapshot(const std::string& path) {
  std::lock_guard<std::mutex> lock(rebuild_mu_);
  if (started_) {
    return {LoadStatus::kUnsupported, "service already started"};
  }
  auto index = MakeIndex(spec_).plain;
  auto* two_hop = dynamic_cast<PrunedTwoHop*>(index.get());
  if (two_hop == nullptr) {
    return {LoadStatus::kUnsupported,
            "spec '" + spec_ + "' has no snapshot support"};
  }
  LoadResult result = two_hop->LoadSnapshot(path);
  if (!result) return result;
  if (two_hop->NumIndexedVertices() != num_vertices_) {
    return {LoadStatus::kWrongIndex,
            "snapshot covers " +
                std::to_string(two_hop->NumIndexedVertices()) +
                " vertices, service has " + std::to_string(num_vertices_)};
  }
  auto snap = std::make_shared<ServeSnapshot>();
  snap->graph = snapshot_.Load()->graph;  // the base graph from the ctor
  snap->index = std::move(index);
  const size_t granted = snap->index->PrepareConcurrentQueries(
      ResolveThreads(options_.slots));
  snap->slots.Reset(granted);
  snap->version = next_version_++;
  const uint64_t published_version = snap->version;
  snapshot_.Store(std::move(snap));
  version_gauge_->Set(static_cast<double>(published_version));
  started_ = true;  // rebuilds are insert-driven from here on
  return LoadResult{};
}

void ReachService::Stop() {
  stopped_.store(true, std::memory_order_seq_cst);
  std::unique_lock<std::mutex> lock(rebuild_mu_);
  rebuild_cv_.wait(lock, [&] { return !rebuild_inflight_; });
}

bool ReachService::InsertEdge(VertexId s, VertexId t) {
  if (s >= num_vertices_ || t >= num_vertices_) return false;
  if (stopped_.load(std::memory_order_relaxed)) return false;
  size_t pending_count = 0;
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    const auto cur = pending_.Load();
    auto next = std::make_shared<PendingEdges>();
    next->reserve(cur->size() + 1);
    *next = *cur;
    next->push_back(Edge{s, t});
    pending_count = next->size();
    pending_.Store(std::move(next));
  }
  stats_.inserts.fetch_add(1, std::memory_order_relaxed);
  insert_counter_->Add();
  pending_gauge_->Set(static_cast<double>(pending_count));
  if (negcache_ != nullptr) {
    // After the pending publish: a query sampling the new epoch is
    // guaranteed to pin a pending list containing this edge, so every
    // negative it verifies (and caches) accounts for it.
    negcache_->Invalidate();
    stats_.negcache_invalidations.fetch_add(1, std::memory_order_relaxed);
    negcache_invalidate_counter_->Add();
  }
  if (pending_count >= options_.drain_threshold) {
    std::lock_guard<std::mutex> lock(rebuild_mu_);
    ScheduleLocked();
  }
  return true;
}

void ReachService::Flush() {
  std::unique_lock<std::mutex> lock(rebuild_mu_);
  if (stopped_.load(std::memory_order_relaxed)) return;
  flush_requested_ = true;
  ScheduleLocked();
  rebuild_cv_.wait(lock, [&] {
    if (stopped_.load(std::memory_order_relaxed)) return true;
    if (!rebuild_inflight_ && pending_.Load()->empty()) return true;
    // A drain finished but inserts raced past it: keep draining until
    // everything accepted before this Flush is absorbed.
    if (!rebuild_inflight_) {
      flush_requested_ = true;
      ScheduleLocked();
    }
    return false;
  });
}

void ReachService::ScheduleLocked() {
  if (stopped_.load(std::memory_order_relaxed) || !started_ ||
      rebuild_inflight_) {
    return;
  }
  rebuild_inflight_ = true;
  ThreadPool::Global().Submit([this] { RebuildLoop(); });
}

void ReachService::RebuildLoop() {
  for (;;) {
    REACH_TRACE_SPAN("serve.rebuild");
    // Everything pending *now* goes into this generation; inserts racing
    // past this load stay pending (the list only ever grows by append,
    // so the drained list is a prefix of every later list).
    const auto drained = pending_.Load();
    {
      std::lock_guard<std::mutex> lock(rebuild_mu_);
      flush_requested_ = false;
    }

    auto snap = std::make_shared<ServeSnapshot>();
    {
      REACH_TRACE_SPAN("serve.rebuild.graph");
      std::vector<Edge> edges = base_edges_;
      edges.insert(edges.end(), drained->begin(), drained->end());
      snap->graph = Digraph::FromEdges(static_cast<VertexId>(num_vertices_),
                                       std::move(edges));
    }
    {
      // The index must be built against the graph at its final address —
      // partial indexes keep a pointer into it for guided traversal.
      REACH_TRACE_SPAN("serve.rebuild.index");
      snap->index = MakeIndex(spec_).plain;
      snap->index->Build(snap->graph);
    }
    const size_t granted = snap->index->PrepareConcurrentQueries(
        ResolveThreads(options_.slots));
    snap->slots.Reset(granted);
    snap->version = next_version_++;
    base_edges_ = snap->graph.Edges();
    const uint64_t published_version = snap->version;

    // Publish, then trim the absorbed prefix. Readers load pending
    // BEFORE snapshot, so between the two stores they can only observe
    // the new snapshot with a stale (longer) pending list — harmless
    // double-counting, never a lost edge.
    snapshot_.Store(std::move(snap));
    REACH_TRACE_INSTANT("serve.snapshot_swap");
    version_gauge_->Set(static_cast<double>(published_version));
    if (negcache_ != nullptr) {
      // The swap adds no edges (it only absorbs pending ones), so this
      // bump is defense in depth: entries verified against the previous
      // snapshot+pending union stay unreachable, but tying cache
      // lifetime to the generation keeps the invariant local.
      negcache_->Invalidate();
      stats_.negcache_invalidations.fetch_add(1, std::memory_order_relaxed);
      negcache_invalidate_counter_->Add();
    }
    size_t left = 0;
    {
      std::lock_guard<std::mutex> lock(write_mu_);
      const auto cur = pending_.Load();
      auto next = std::make_shared<PendingEdges>(
          cur->begin() + static_cast<ptrdiff_t>(drained->size()), cur->end());
      left = next->size();
      pending_.Store(std::move(next));
    }
    pending_gauge_->Set(static_cast<double>(left));
    stats_.rebuilds.fetch_add(1, std::memory_order_relaxed);
    rebuild_counter_->Add();

    {
      std::lock_guard<std::mutex> lock(rebuild_mu_);
      const bool more = !stopped_.load(std::memory_order_relaxed) &&
                        (left >= options_.drain_threshold ||
                         (flush_requested_ && left > 0));
      if (!more) {
        rebuild_inflight_ = false;
        rebuild_cv_.notify_all();
        return;
      }
    }
  }
}

ServeAnswer ReachService::Query(VertexId s, VertexId t) const {
  REACH_TRACE_SPAN("serve.query");
  const Clock::time_point start = Clock::now();
  stats_.queries.fetch_add(1, std::memory_order_relaxed);
  queries_counter_->Add();

  // Keep a stage-by-stage record only when it could end up in the
  // slow-query log — otherwise the extra clock reads never happen. A
  // query can qualify by latency (threshold set) or by degrading on its
  // deadline; with neither configured, capture is impossible.
  SlowQueryRecord rec;
  SlowQueryRecord* recp =
      options_.slow_log_capacity > 0 &&
              (options_.slow_query_threshold.count() > 0 ||
               options_.deadline.count() > 0)
          ? &rec
          : nullptr;

  // Sample the negcache epoch BEFORE pinning: the pinned pending list
  // then contains every edge counted in the sampled epoch, so a negative
  // verified against it may be cached at that epoch. (An insert racing
  // between the sample and the pin only makes the verified edge set
  // larger — a negative on a superset is valid for the subset.)
  const uint64_t negcache_epoch =
      negcache_ != nullptr ? negcache_->Epoch() : 0;
  const bool cacheable = negcache_ != nullptr && s < num_vertices_ &&
                         t < num_vertices_ && s != t;
  if (cacheable) {
    StageScope stage(recp, ServeStage::kNegCacheProbe);
    if (negcache_->Lookup(s, t, negcache_epoch)) {
      stats_.negcache_hits.fetch_add(1, std::memory_order_relaxed);
      negcache_hit_counter_->Add();
      ServeAnswer ans;
      ans.reachable = false;
      ans.exact = true;
      ans.source = AnswerSource::kNegCache;
      ans.snapshot_version = snapshot_.Load()->version;
      latency_hist_->Record(ElapsedNs(start, Clock::now()));
      return ans;
    }
  }

  // Pin pending BEFORE the snapshot: a concurrent swap+trim between the
  // two loads then yields a newer snapshot with an already-absorbed
  // pending prefix (redundant but correct). The opposite order could
  // pair an old snapshot with a trimmed list and lose edges.
  std::shared_ptr<const PendingEdges> pending;
  std::shared_ptr<const ServeSnapshot> snap;
  {
    REACH_TRACE_SPAN("serve.snapshot_pin");
    pending = pending_.Load();
    snap = snapshot_.Load();
  }

  ServeAnswer ans;
  ans.snapshot_version = snap->version;
  if (s < num_vertices_ && t < num_vertices_) {
    if (snap->index == nullptr) {
      // Startup: the first index build is still in flight.
      ans = DegradedAnswer(*snap, *pending, s, t, recp);
    } else {
      const Clock::time_point deadline =
          options_.deadline.count() > 0 ? start + options_.deadline
                                        : Clock::time_point::max();
      bool waited = false;
      ans = AnswerWithIndex(*snap, *pending, s, t, deadline, &waited, recp);
      if (waited) {
        stats_.slot_waits.fetch_add(1, std::memory_order_relaxed);
        slot_wait_counter_->Add();
      }
    }
    ans.snapshot_version = snap->version;
  }
  if (cacheable) {
    stats_.negcache_misses.fetch_add(1, std::memory_order_relaxed);
    negcache_miss_counter_->Add();
    if (!ans.reachable && ans.exact) {
      // Verified unreachable against the pinned pending+snapshot union,
      // which covers everything counted in the sampled epoch.
      const auto outcome = negcache_->Insert(s, t, negcache_epoch);
      if (outcome == NegativeResultCache::InsertOutcome::kEvicted) {
        stats_.negcache_evictions.fetch_add(1, std::memory_order_relaxed);
        negcache_evict_counter_->Add();
      }
    }
  }
  if (!ans.exact) {
    stats_.inexact_answers.fetch_add(1, std::memory_order_relaxed);
    inexact_counter_->Add();
  }
  const uint64_t total_ns = ElapsedNs(start, Clock::now());
  latency_hist_->Record(total_ns);
  if (recp != nullptr) {
    const bool over_threshold =
        options_.slow_query_threshold.count() > 0 &&
        total_ns >=
            static_cast<uint64_t>(options_.slow_query_threshold.count());
    if (rec.deadline_degraded || over_threshold) {
      rec.s = s;
      rec.t = t;
      rec.reachable = ans.reachable;
      rec.exact = ans.exact;
      rec.source = ans.source;
      rec.snapshot_version = ans.snapshot_version;
      rec.total_ns = total_ns;
      rec.pending_edges = pending->size();
      CaptureSlowQuery(rec);
    }
  }
  return ans;
}

std::vector<SlowQueryRecord> ReachService::SlowQueries() const {
  std::lock_guard<std::mutex> lock(slow_mu_);
  return std::vector<SlowQueryRecord>(slow_log_.begin(), slow_log_.end());
}

void ReachService::ClearSlowQueries() {
  std::lock_guard<std::mutex> lock(slow_mu_);
  slow_log_.clear();
}

void ReachService::CaptureSlowQuery(SlowQueryRecord rec) const {
  {
    std::lock_guard<std::mutex> lock(slow_mu_);
    slow_log_.push_back(rec);
    if (slow_log_.size() > options_.slow_log_capacity) {
      slow_log_.pop_front();
      stats_.slow_dropped.fetch_add(1, std::memory_order_relaxed);
      slow_dropped_counter_->Add();
    }
  }
  stats_.slow_captured.fetch_add(1, std::memory_order_relaxed);
  slow_captured_counter_->Add();
}

ServeAnswer ReachService::AnswerWithIndex(
    const ServeSnapshot& snap, const PendingEdges& pending, VertexId s,
    VertexId t, Clock::time_point deadline, bool* waited,
    SlowQueryRecord* rec) const {
  ServeAnswer ans;
  std::optional<SlotLease> lease;
  {
    StageScope stage(rec, ServeStage::kSlotAcquire);
    lease.emplace(snap, waited);
  }
  if (rec != nullptr) rec->slot_waited = *waited;
  const ReachabilityIndex& index = *snap.index;
  const size_t slot = lease->slot();
  const auto probe = [&](VertexId from, VertexId to) {
    if (rec != nullptr) ++rec->index_probes;
    return index.QueryInSlot(from, to, slot);
  };

  {
    StageScope stage(rec, ServeStage::kIndexProbe);
    if (probe(s, t)) {
      // Reachability is monotone under insertion: an index hit on this
      // snapshot stays true no matter how many edges are pending.
      ans.reachable = true;
    } else if (!pending.empty()) {
      ans.source = AnswerSource::kDelta;  // miss: must consult the delta
    }
  }
  if (ans.source == AnswerSource::kIndex) {
    stats_.index_answers.fetch_add(1, std::memory_order_relaxed);
    index_counter_->Add();
    return ans;
  }

  // Index miss with pending edges: close over them. Any s-t path in
  // graph ∪ pending decomposes into base-graph segments joined by
  // pending edges, so a worklist of "usable" pending edges (tail
  // base-reachable from s, possibly through other usable edges) decides
  // the query with O(k²) index lookups, k = |pending| (bounded by the
  // drain threshold).
  bool expired = false;
  {
    StageScope stage(rec, ServeStage::kDeltaClosure);
    const size_t k = pending.size();
    std::vector<uint8_t> usable(k, 0);
    std::vector<size_t> work;
    work.reserve(k);
    const auto now_expired = [&deadline] { return Clock::now() > deadline; };
    for (size_t i = 0; i < k; ++i) {
      if (probe(s, pending[i].source)) {
        usable[i] = 1;
        work.push_back(i);
      }
    }
    while (!work.empty() && !expired) {
      const size_t i = work.back();
      work.pop_back();
      if (probe(pending[i].target, t)) {
        ans.reachable = true;
        break;
      }
      for (size_t j = 0; j < k; ++j) {
        if (usable[j] == 0 && probe(pending[i].target, pending[j].source)) {
          usable[j] = 1;
          work.push_back(j);
        }
      }
      expired = now_expired();
    }
  }
  if (!expired || ans.reachable) {
    stats_.delta_answers.fetch_add(1, std::memory_order_relaxed);
    delta_counter_->Add();
    return ans;  // exact: a witness segment chain, or closure exhausted
  }
  // Budget blown mid-closure: degrade to the bounded traversal.
  stats_.deadline_degraded.fetch_add(1, std::memory_order_relaxed);
  deadline_counter_->Add();
  if (rec != nullptr) rec->deadline_degraded = true;
  return DegradedAnswer(snap, pending, s, t, rec);
}

ServeAnswer ReachService::DegradedAnswer(const ServeSnapshot& snap,
                                         const PendingEdges& pending,
                                         VertexId s, VertexId t,
                                         SlowQueryRecord* rec) const {
  ServeAnswer ans;
  ans.source = AnswerSource::kFallbackBfs;
  BoundedBfsOutcome out;
  {
    StageScope stage(rec, ServeStage::kFallbackBfs);
    out = BoundedUnionBfs(snap.graph, pending, s, t,
                          options_.fallback_visit_budget);
  }
  if (rec != nullptr) rec->bfs_visits = out.visits;
  ans.reachable = out.reachable;
  // A found path is a witness; only unverified negatives are inexact.
  ans.exact = out.reachable || out.complete;
  stats_.fallback_answers.fetch_add(1, std::memory_order_relaxed);
  fallback_counter_->Add();
  return ans;
}

BoundedBfsOutcome BoundedUnionBfs(const Digraph& graph,
                                  const PendingEdges& extra, VertexId s,
                                  VertexId t, size_t max_visits) {
  BoundedBfsOutcome out;
  if (s == t) {
    out.reachable = true;
    return out;
  }
  std::vector<Edge> by_source(extra.begin(), extra.end());
  std::sort(by_source.begin(), by_source.end());
  std::vector<uint8_t> visited(graph.NumVertices(), 0);
  std::vector<VertexId> queue;
  queue.push_back(s);
  visited[s] = 1;
  for (size_t head = 0; head < queue.size(); ++head) {
    if (out.visits >= max_visits) {
      out.complete = false;
      return out;
    }
    ++out.visits;
    const VertexId v = queue[head];
    const auto enqueue = [&](VertexId n) {
      if (visited[n] == 0) {
        visited[n] = 1;
        queue.push_back(n);
      }
      return n == t;
    };
    for (const VertexId n : graph.OutNeighbors(v)) {
      if (enqueue(n)) {
        out.reachable = true;
        return out;
      }
    }
    const auto range = std::equal_range(
        by_source.begin(), by_source.end(), Edge{v, 0},
        [](const Edge& a, const Edge& b) { return a.source < b.source; });
    for (auto it = range.first; it != range.second; ++it) {
      if (enqueue(it->target)) {
        out.reachable = true;
        return out;
      }
    }
  }
  return out;
}

}  // namespace reach
