#ifndef REACH_SERVE_NEG_CACHE_H_
#define REACH_SERVE_NEG_CACHE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "graph/types.h"

namespace reach {

/// A sharded, bounded cache of *verified-negative* (s, t) pairs for the
/// serve hot path: repeated unreachable queries — the dominant mix in
/// many serving workloads (paper §5) — short-circuit before the snapshot
/// is even pinned. Only negatives are cached: a negative is exactly the
/// answer the service spends delta-closure/BFS work re-verifying, and a
/// cached negative survives edge *deletions* for free (removing edges
/// never makes an unreachable pair reachable), so only inserts ever
/// invalidate.
///
/// Layout: `num_shards` cache-line-aligned stripes, each a small
/// open-addressing table of packed (s, t) words probed over a fixed
/// window. Readers are lock-free; writers take the stripe lock (one
/// writer per stripe at a time, never blocking readers).
///
/// Invalidation is by epoch, not by sweeping: `Invalidate()` (called by
/// the service on every insert-carrying `ApplyUpdate` batch and on
/// snapshot swap; delete-only batches deliberately don't invalidate)
/// bumps the global epoch; each stripe carries the epoch of its contents
/// and is lazily cleared by the next writer that reaches it. A reader
/// samples `Epoch()` *before* pinning the service state it will verify
/// against and passes it to both `Lookup` and `Insert`, which gives the
/// two invariants that make stale answers impossible:
///
///  * `Lookup(s, t, e)` only returns true when the stripe's contents
///    were verified at epoch >= e — and epochs are monotone, so that
///    means verified at exactly the caller's epoch. No insert has landed
///    since the verification (it would have bumped the epoch), and the
///    only writes an epoch admits are deletes, which never make an
///    unreachable pair reachable — so the cached negative still holds.
///    Anything verified *before* e (the stripe epoch lagging the caller)
///    misses.
///  * `Insert(s, t, e)` refuses stale writes: a negative verified at
///    epoch e must not enter a stripe already cleared for a newer epoch
///    (edges inserted since could have made the pair reachable).
///
/// Entry loads/stores are single 64-bit atomics (no torn pairs), and the
/// stripe epoch is release-published only after the stripe is cleared,
/// so the whole structure is data-race-free under TSan with concurrent
/// readers, writers, and invalidators.
class NegativeResultCache {
 public:
  /// Insert outcome, for the service's eviction accounting.
  enum class InsertOutcome : uint8_t {
    kStored,   // written into a free slot
    kPresent,  // already cached
    kEvicted,  // written over a live entry (probe window full)
    kStale,    // dropped: verified against an already-invalidated epoch
  };

  /// Both counts are rounded up to powers of two; `total_entries` is
  /// split evenly across shards (at least one probe window per shard).
  NegativeResultCache(size_t num_shards, size_t total_entries)
      : shard_mask_(RoundUpPow2(num_shards) - 1),
        entries_per_shard_(RoundUpPow2(
            std::max(kProbeWindow, RoundUpPow2(total_entries) /
                                       RoundUpPow2(num_shards)))),
        shards_(new Shard[shard_mask_ + 1]) {
    for (size_t i = 0; i <= shard_mask_; ++i) {
      shards_[i].slots.reset(new std::atomic<uint64_t>[entries_per_shard_]);
      for (size_t j = 0; j < entries_per_shard_; ++j) {
        shards_[i].slots[j].store(kEmpty, std::memory_order_relaxed);
      }
    }
  }

  NegativeResultCache(const NegativeResultCache&) = delete;
  NegativeResultCache& operator=(const NegativeResultCache&) = delete;

  /// The current global epoch. Sample it BEFORE pinning the state a
  /// negative answer will be verified against.
  uint64_t Epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Invalidates every cached entry (lazily: stripes are cleared by
  /// their next writer). Call after publishing any state change that
  /// could create new reachable pairs.
  void Invalidate() { epoch_.fetch_add(1, std::memory_order_release); }

  /// True iff (s, t) is cached as verified-unreachable at an epoch >= the
  /// caller's. Lock-free; safe from any thread.
  bool Lookup(VertexId s, VertexId t, uint64_t epoch) const {
    const uint64_t pair = Pack(s, t);
    const uint64_t hash = Mix(pair);
    const Shard& shard = shards_[hash & shard_mask_];
    // Acquire pairs with the writer's release epoch store: a matching
    // (or newer) epoch guarantees every entry load below sees the
    // cleared-or-later contents, never a pre-clear leftover.
    if (shard.epoch.load(std::memory_order_acquire) < epoch) return false;
    const size_t base = (hash >> 32) & (entries_per_shard_ - 1);
    for (size_t i = 0; i < kProbeWindow; ++i) {
      const size_t slot = (base + i) & (entries_per_shard_ - 1);
      if (shard.slots[slot].load(std::memory_order_relaxed) == pair) {
        return true;
      }
    }
    return false;
  }

  /// Records (s, t) as verified-unreachable at `epoch`. Takes the stripe
  /// lock; lazily clears the stripe when its contents predate `epoch`.
  InsertOutcome Insert(VertexId s, VertexId t, uint64_t epoch) {
    const uint64_t pair = Pack(s, t);
    if (pair == kEmpty) return InsertOutcome::kStale;  // s == t, never cached
    // The global epoch (not just the lazily-cleared stripe epoch) decides
    // staleness: once an invalidation has moved past `epoch`, every future
    // reader samples a newer epoch, so this entry could never be hit —
    // don't let it occupy or evict a slot.
    if (epoch_.load(std::memory_order_relaxed) > epoch) {
      return InsertOutcome::kStale;
    }
    const uint64_t hash = Mix(pair);
    Shard& shard = shards_[hash & shard_mask_];
    std::lock_guard<std::mutex> lock(shard.mu);
    const uint64_t current = shard.epoch.load(std::memory_order_relaxed);
    if (current > epoch) return InsertOutcome::kStale;
    if (current < epoch) {
      for (size_t j = 0; j < entries_per_shard_; ++j) {
        shard.slots[j].store(kEmpty, std::memory_order_relaxed);
      }
      // Publish the epoch only after the clear: see Lookup.
      shard.epoch.store(epoch, std::memory_order_release);
    }
    const size_t base = (hash >> 32) & (entries_per_shard_ - 1);
    size_t free_slot = entries_per_shard_;
    for (size_t i = 0; i < kProbeWindow; ++i) {
      const size_t slot = (base + i) & (entries_per_shard_ - 1);
      const uint64_t entry = shard.slots[slot].load(std::memory_order_relaxed);
      if (entry == pair) return InsertOutcome::kPresent;
      if (entry == kEmpty && free_slot == entries_per_shard_) free_slot = slot;
    }
    if (free_slot != entries_per_shard_) {
      shard.slots[free_slot].store(pair, std::memory_order_relaxed);
      return InsertOutcome::kStored;
    }
    // Probe window full of live entries: round-robin replacement.
    const size_t victim = (base + shard.victim_cursor++ % kProbeWindow) &
                          (entries_per_shard_ - 1);
    shard.slots[victim].store(pair, std::memory_order_relaxed);
    return InsertOutcome::kEvicted;
  }

  size_t NumShards() const { return shard_mask_ + 1; }
  size_t EntriesPerShard() const { return entries_per_shard_; }

  /// Resident bytes of the whole structure (shard headers + slot
  /// arrays) — the `serve.negcache.bytes` gauge.
  size_t MemoryBytes() const {
    return sizeof(*this) +
           NumShards() * (sizeof(Shard) +
                          entries_per_shard_ * sizeof(std::atomic<uint64_t>));
  }

 private:
  static constexpr size_t kProbeWindow = 8;
  // (s, t) with s == t == kInvalidVertex; such a pair is never cached
  // (reachability is reflexive), so it doubles as the empty sentinel.
  static constexpr uint64_t kEmpty = ~uint64_t{0};

  static constexpr uint64_t Pack(VertexId s, VertexId t) {
    return (uint64_t{s} << 32) | uint64_t{t};
  }

  // splitmix64 finalizer: low bits pick the shard, high bits the slot.
  static constexpr uint64_t Mix(uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  static constexpr size_t RoundUpPow2(size_t x) {
    size_t p = 1;
    while (p < x) p <<= 1;
    return p;
  }

  struct alignas(64) Shard {
    std::atomic<uint64_t> epoch{0};
    std::mutex mu;  // writers only; readers never block
    uint64_t victim_cursor = 0;
    std::unique_ptr<std::atomic<uint64_t>[]> slots;
  };

  std::atomic<uint64_t> epoch_{0};
  const size_t shard_mask_;
  const size_t entries_per_shard_;
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace reach

#endif  // REACH_SERVE_NEG_CACHE_H_
