#ifndef REACH_SERVE_REACH_SERVICE_H_
#define REACH_SERVE_REACH_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/edge_update.h"
#include "core/serialize.h"
#include "graph/digraph.h"
#include "graph/rng.h"
#include "graph/types.h"
#include "serve/neg_cache.h"
#include "serve/serve_snapshot.h"

namespace reach {

class Counter;
class Gauge;
class Histogram;

/// What `ApplyUpdate` does when the pending-update buffer is at
/// `ServiceOptions::max_pending_edges` (docs/ROBUSTNESS.md).
enum class BackpressurePolicy : uint8_t {
  /// Block the writer until a background drain makes room (a rebuild is
  /// force-scheduled so the wait always terminates; `Stop` unblocks with
  /// a rejected batch).
  kBlock,
  /// Reject the batch immediately (`ApplyUpdate` returns `kRejected`);
  /// the caller owns retry policy.
  kReject,
  /// Accept the batch past the cap and force an immediate drain — the
  /// buffer transiently exceeds the cap but converges back under it.
  kForceRebuild,
};

/// Stable policy name ("block", "reject", "force_rebuild").
const char* BackpressurePolicyName(BackpressurePolicy policy);

/// Configuration of a `ReachService`.
struct ServiceOptions {
  /// `MakeIndex` spec of the plain index each snapshot is built with.
  /// Unknown and non-plain specs fall back to "pll".
  std::string spec = "pll";
  /// Concurrent-query slots requested per snapshot; the index may grant
  /// fewer (see `PrepareConcurrentQueries`). 0 = `DefaultThreads()`.
  size_t slots = 0;
  /// Pending-update count that triggers a background snapshot rebuild.
  /// Deletes count like inserts: both are absorbed by the same drain.
  size_t drain_threshold = 64;
  /// Per-query time budget; once exceeded, the expensive answer paths
  /// (delta closure, unindexed fallback) degrade to the bounded BFS.
  /// 0 = no deadline.
  std::chrono::nanoseconds deadline{0};
  /// Vertex-visit cap of the degraded bounded BFS. Exhausting it yields
  /// an inexact negative answer (`ServeAnswer::exact == false`).
  size_t fallback_visit_budget = 1 << 16;
  /// End-to-end latency above which a query's stage breakdown is retained
  /// in the slow-query log. 0 = no latency criterion (deadline-degraded
  /// queries are still captured — they are slow by definition).
  std::chrono::nanoseconds slow_query_threshold{0};
  /// Bound of the slow-query log; once full, the oldest record is evicted
  /// (and counted in `ServeStats::slow_dropped`). 0 disables capture and
  /// the per-stage stopwatches entirely.
  size_t slow_log_capacity = 64;
  /// Total entry bound of the negative-result cache (serve/neg_cache.h)
  /// consulted ahead of the index probe; repeated verified-unreachable
  /// pairs short-circuit in O(1). Epoch-invalidated on every
  /// insert-carrying `ApplyUpdate` and on every snapshot swap, so a
  /// stale negative is never served; delete-only batches keep the cache
  /// warm (deletions only shrink reachability, so a verified negative
  /// stays negative). 0 disables the cache.
  size_t negcache_capacity = 1 << 14;
  /// Lock stripes of the negative-result cache (rounded to a power of
  /// two). More stripes = less writer contention.
  size_t negcache_shards = 16;

  /// --- Overload / fault hardening (docs/ROBUSTNESS.md) ---------------

  /// Admission control: maximum concurrently admitted queries. As the
  /// in-flight count approaches the cap the pipeline degrades tier by
  /// tier — ≤50% full pipeline, ≤75% cache+index probe only (the delta
  /// closure is skipped, so a negative with pending edges is inexact),
  /// ≤100% a small bounded BFS, and above the cap the query is shed
  /// (`AnswerSource::kShedded`, `exact == false`, O(1)). 0 = no gate.
  size_t max_inflight_queries = 0;
  /// Vertex-visit cap of the tier-2 (bfs-only) degraded answer path —
  /// deliberately far below `fallback_visit_budget`.
  size_t degraded_visit_budget = 2048;

  /// Write backpressure: cap on the pending-update buffer; `backpressure`
  /// picks what `ApplyUpdate` does at the cap. 0 = unbounded (no gate).
  size_t max_pending_edges = 0;
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;

  /// Rebuild resilience: a failed or watchdog-abandoned drain retries
  /// with exponential backoff (initial doubled per consecutive failure,
  /// capped at max, ±50% deterministic jitter) up to `rebuild_max_retries`
  /// re-attempts; after that the drain is abandoned (health reports
  /// kFailed) until the next insert/Flush schedules a fresh one. The
  /// last good snapshot keeps serving throughout — failures never
  /// unpublish anything.
  size_t rebuild_max_retries = 5;
  std::chrono::nanoseconds rebuild_backoff_initial{
      std::chrono::milliseconds(10)};
  std::chrono::nanoseconds rebuild_backoff_max{std::chrono::seconds(2)};
  /// Cooperative watchdog deadline per drain attempt, checked at phase
  /// boundaries (after the graph merge, before the index build): an
  /// attempt already past the deadline is abandoned — not published —
  /// counted in `watchdog_fired`, and re-queued with backoff, picking up
  /// any edges that accumulated meanwhile. 0 = no deadline.
  std::chrono::nanoseconds rebuild_watchdog{0};
};

/// How a query was answered.
enum class AnswerSource : uint8_t {
  kIndex,        // snapshot index alone
  kDelta,        // index plus the pending-update closure
  kFallbackBfs,  // bounded union BFS (no index yet, budget exceeded, or
                 // verifying a positive against pending deletes)
  kNegCache,     // negative-result cache hit (verified this epoch)
  kShedded,      // admission gate full: not answered (always inexact)
};

/// The result of one `ReachService::Query`.
struct ServeAnswer {
  bool reachable = false;
  /// False only for a negative answer the service could not verify within
  /// its budgets (bounded BFS hit the visit cap). Positive answers are
  /// always exact — a witness path was found.
  bool exact = true;
  AnswerSource source = AnswerSource::kIndex;
  /// Generation of the snapshot that served the query.
  uint64_t snapshot_version = 0;
};

/// The stages of one served query, in pipeline order; indexes into
/// `SlowQueryRecord::stage_ns`. A query touches a prefix of these (an
/// index hit never runs the closure; the fallback only runs after a
/// missing index or a blown deadline).
enum class ServeStage : uint8_t {
  kNegCacheProbe = 0,  // negative-result cache lookup
  kSlotAcquire = 1,    // admission: leasing a concurrent-query slot
  kIndexProbe = 2,     // the pinned snapshot's index lookup(s)
  kDeltaClosure = 3,   // pending-edge closure over index lookups
  kFallbackBfs = 4,    // degraded bounded union BFS
};
inline constexpr size_t kNumServeStages = 5;

/// Stage name for table/log output ("slot_acquire", ...).
const char* ServeStageName(size_t stage);

/// One retained slow query: identity, outcome, per-stage latency
/// breakdown, and probe-style counters — everything needed to explain
/// where the time went without replaying the query.
struct SlowQueryRecord {
  VertexId s = 0;
  VertexId t = 0;
  bool reachable = false;
  bool exact = true;
  bool deadline_degraded = false;
  bool slot_waited = false;
  AnswerSource source = AnswerSource::kIndex;
  uint64_t snapshot_version = 0;
  uint64_t total_ns = 0;
  /// Nanoseconds spent per `ServeStage` (0 = stage not reached).
  uint64_t stage_ns[kNumServeStages] = {};
  /// `QueryInSlot` calls issued (1 for a pure hit/miss; the delta closure
  /// issues O(k²) of them).
  uint64_t index_probes = 0;
  /// Pending-update buffer size observed by the query.
  uint64_t pending_edges = 0;
  /// Vertices expanded by the bounded BFS (0 when it did not run).
  uint64_t bfs_visits = 0;
};

/// Always-on service counters (independent of REACH_METRICS); the same
/// values are mirrored into `MetricsRegistry::Global()` under "serve.*"
/// when metrics are compiled in.
struct ServeStats {
  std::atomic<uint64_t> queries{0};
  std::atomic<uint64_t> index_answers{0};
  std::atomic<uint64_t> delta_answers{0};
  std::atomic<uint64_t> fallback_answers{0};
  std::atomic<uint64_t> deadline_degraded{0};
  std::atomic<uint64_t> slot_waits{0};
  std::atomic<uint64_t> inexact_answers{0};
  std::atomic<uint64_t> inserts{0};
  /// Deletes accepted into the pending buffer (`serve.update.deletes`).
  std::atomic<uint64_t> deletes{0};
  /// `ApplyUpdate` batches accepted / rejected (validation or
  /// backpressure-reject) — `serve.update.batches` / `.rejected`.
  std::atomic<uint64_t> update_batches{0};
  std::atomic<uint64_t> update_rejected{0};
  /// Positive superset answers that had to be re-verified by traversal
  /// because deletes were pending (`serve.update.delete_verifies`).
  std::atomic<uint64_t> delete_verifies{0};
  std::atomic<uint64_t> rebuilds{0};
  /// Negative-result cache outcomes (misses count every cache-enabled
  /// query that had to fall through to the index pipeline).
  std::atomic<uint64_t> negcache_hits{0};
  std::atomic<uint64_t> negcache_misses{0};
  std::atomic<uint64_t> negcache_evictions{0};
  std::atomic<uint64_t> negcache_invalidations{0};
  /// Queries captured into the slow-query log (including records evicted
  /// later) and records evicted because the log was full.
  std::atomic<uint64_t> slow_captured{0};
  std::atomic<uint64_t> slow_dropped{0};
  /// Admission-control outcomes: queries shed outright and queries
  /// answered on a degraded tier (docs/ROBUSTNESS.md).
  std::atomic<uint64_t> shed{0};
  std::atomic<uint64_t> admission_cache_only{0};
  std::atomic<uint64_t> admission_bfs_only{0};
  /// Backpressure outcomes of `ApplyUpdate` at the pending-buffer cap.
  std::atomic<uint64_t> backpressure_blocked{0};
  std::atomic<uint64_t> backpressure_rejected{0};
  std::atomic<uint64_t> backpressure_forced{0};
  /// Rebuild-resilience outcomes: failed drain attempts (exceptions and
  /// watchdog abandons), scheduled re-attempts, and watchdog fires.
  std::atomic<uint64_t> rebuild_failures{0};
  std::atomic<uint64_t> rebuild_retries{0};
  std::atomic<uint64_t> watchdog_fired{0};
};

/// Coarse state of the background drain machinery, for health reporting.
enum class RebuildState : uint8_t {
  kIdle = 0,     // no drain in flight
  kRunning = 1,  // a drain attempt is building
  kBackoff = 2,  // last attempt failed; waiting to retry
  kFailed = 3,   // retries exhausted; awaiting a new insert/Flush
};

/// Stable state name ("idle", "running", "backoff", "failed").
const char* RebuildStateName(RebuildState state);

/// Point-in-time readiness/health snapshot of a `ReachService`, also
/// mirrored into `reach.metrics.v1` as the `serve.health.*` gauges every
/// time `Health()` runs (docs/ROBUSTNESS.md).
struct ServiceHealth {
  /// An indexed snapshot is published (startup build or snapshot load
  /// done) — the readiness bit a load balancer would gate on.
  bool ready = false;
  /// False once `Stop()` ran: queries still work, writes are rejected.
  bool accepting_writes = false;
  uint64_t snapshot_version = 0;
  /// Pending updates (inserts + deletes) not yet absorbed.
  size_t pending_edges = 0;
  size_t max_pending_edges = 0;  // 0 = unbounded
  /// Buffer occupancy in [0,1]; 0 when unbounded.
  double pending_fill = 0.0;
  size_t inflight_queries = 0;
  size_t max_inflight_queries = 0;  // 0 = no admission gate
  /// Admission occupancy in [0,1]; 0 when ungated.
  double inflight_fill = 0.0;
  RebuildState rebuild = RebuildState::kIdle;
  /// Consecutive failed drain attempts (0 after any success).
  uint64_t rebuild_consecutive_failures = 0;
  uint64_t rebuild_retries = 0;
  uint64_t rebuild_failures = 0;
  uint64_t watchdog_fired = 0;
  uint64_t shed = 0;
  /// What the most recent failed drain attempt reported ("" = none yet).
  std::string last_rebuild_error;
};

/// An embeddable concurrent reachability-serving engine — the §5
/// "integration into GDBMSs" challenge made concrete. One service owns an
/// evolving edge set and serves exact point queries while absorbing a
/// batched `ApplyUpdate` stream of edge inserts AND deletes:
///
///  * Reads pin an immutable `ServeSnapshot` (graph + index + query
///    slots) behind an atomic `shared_ptr`, lease a slot, and answer via
///    `QueryInSlot` — many readers in parallel, zero locks on the hot
///    path.
///  * Writes append to a copy-on-write pending-update buffer; a
///    background task on the shared thread pool (src/par/) drains the
///    buffer into a freshly built snapshot and swaps it in. At most one
///    rebuild is in flight; generations are strictly ordered. No write —
///    insert or delete — ever rebuilds inline.
///  * Queries stay exact across the swap. With only inserts pending,
///    reachability is monotone: an index hit on the pinned snapshot is
///    final, and an index miss is re-checked against the pending inserts
///    by a closure over index queries (each base-graph gap between
///    pending edges is one `QueryInSlot`). With deletes pending, the
///    snapshot ∪ pending-inserts graph is a *superset* of the live
///    graph, so a superset miss is still an exact negative; a superset
///    hit is re-verified by a bounded traversal of the live union graph
///    (snapshot minus effective deletes plus effective inserts). Pending
///    deletes thus act as tombstones consulted across snapshot swaps
///    until a drain materializes them. When there is no index yet —
///    service just started — or the per-query deadline expires
///    mid-closure, the answer degrades to the same bounded union BFS,
///    and `ServeAnswer::exact` says whether the budget sufficed.
///
/// Thread-safety: `Query` may be called from any number of threads
/// concurrently with `ApplyUpdate`, `Flush`, and the background rebuild.
/// `Start`/`Stop` are not thread-safe with each other.
class ReachService {
 public:
  /// The vertex set is fixed at construction; `ApplyUpdate` streams edge
  /// writes over it. The service answers queries from `Start()` on.
  explicit ReachService(Digraph base, ServiceOptions options = {});
  ~ReachService();

  ReachService(const ReachService&) = delete;
  ReachService& operator=(const ReachService&) = delete;

  /// Publishes the startup snapshot (graph only — queries degrade to the
  /// bounded BFS) and schedules the first index build in the background.
  void Start();

  /// Near-instant startup/failover: mmap-loads an RCHX v2 snapshot file
  /// (docs/SNAPSHOTS.md) written by `PrunedTwoHop::SaveSnapshot` for the
  /// service's base graph and publishes it as the first indexed snapshot
  /// — no build, queries are index-backed immediately. The spec must be
  /// a bare 2-hop spec (`pll`/`tfl`/`tol-*`, no `fastpath` wrapper) and
  /// the snapshot's vertex count must match the service's; otherwise a
  /// typed error is returned and the service is left unstarted (a plain
  /// `Start()` still works). No background rebuild is scheduled until
  /// inserts accumulate. Not thread-safe with `Start`/`Stop`.
  LoadResult StartWithSnapshot(const std::string& path);

  /// Blocks until the in-flight rebuild (if any) finishes and stops
  /// scheduling new ones. Queries keep working against the last
  /// published snapshot; further inserts are rejected. Idempotent.
  void Stop();

  /// Answers Qr(s, t) over the base graph with every update accepted by
  /// `ApplyUpdate` so far replayed in order (see class comment for
  /// exactness).
  ServeAnswer Query(VertexId s, VertexId t) const;

  /// Accepts a batch of edge writes into the pending buffer; a rebuild
  /// is scheduled once `drain_threshold` updates accumulate. Validate-
  /// first: a batch with an out-of-range endpoint (or arriving after
  /// `Stop()`, or bounced by `kReject` backpressure) is rejected whole
  /// with no state change. An accepted batch is visible to every
  /// subsequent query atomically — readers pin the COW buffer, so they
  /// see all of it or none of it.
  UpdateResult ApplyUpdate(const UpdateBatch& batch);

  /// Single-edge convenience wrappers over `ApplyUpdate`. Return false
  /// iff the one-update batch was rejected.
  bool InsertEdge(VertexId s, VertexId t);
  bool DeleteEdge(VertexId s, VertexId t);

  /// Blocks until every previously accepted update is absorbed into a
  /// published snapshot (forcing a rebuild if needed). No-op when
  /// stopped.
  void Flush();

  size_t NumVertices() const { return num_vertices_; }
  /// Version of the currently published snapshot (0 = unindexed startup).
  uint64_t SnapshotVersion() const { return snapshot_.Load()->version; }
  /// Updates (inserts + deletes) not yet absorbed into a snapshot.
  size_t PendingEdgeCount() const { return pending_.Load()->size(); }
  /// Queries currently inside `Query` (admitted or about to be triaged).
  size_t InflightQueries() const {
    return inflight_.load(std::memory_order_relaxed);
  }
  const ServeStats& stats() const { return stats_; }
  const ServiceOptions& options() const { return options_; }

  /// Snapshot of readiness, backlog, admission load, and rebuild state;
  /// refreshes the `serve.health.*` gauges as a side effect so a metrics
  /// scrape after any `Health()` call carries the same picture.
  /// Thread-safe, O(1).
  ServiceHealth Health() const;

  /// The slow-query log, oldest first: every query that exceeded
  /// `slow_query_threshold` or degraded on its deadline, up to
  /// `slow_log_capacity` retained records. Thread-safe.
  std::vector<SlowQueryRecord> SlowQueries() const;
  /// Empties the slow-query log (captured/dropped totals are kept).
  void ClearSlowQueries();

 private:
  class SlotLease;
  class InflightGuard;

  /// Load tier assigned to a query at admission (docs/ROBUSTNESS.md).
  enum class AdmissionTier : uint8_t {
    kFull,       // whole pipeline
    kCacheOnly,  // negcache + index probe; delta closure skipped
    kBfsOnly,    // small bounded BFS, no slot/index
    kShed,       // not answered
  };

  void ScheduleLocked();
  void RebuildLoop();
  AdmissionTier AdmitTier(size_t inflight_now) const;
  void SetRebuildState(RebuildState state);
  void NoteRebuildFailure(const std::string& error, size_t consecutive);
  ServeAnswer AnswerWithIndex(const ServeSnapshot& snap,
                              const PendingUpdates& pending, VertexId s,
                              VertexId t,
                              std::chrono::steady_clock::time_point deadline,
                              bool allow_delta, bool* waited,
                              SlowQueryRecord* rec) const;
  ServeAnswer DegradedAnswer(const ServeSnapshot& snap,
                             const PendingUpdates& pending, VertexId s,
                             VertexId t, size_t visit_budget,
                             SlowQueryRecord* rec) const;
  void CaptureSlowQuery(SlowQueryRecord rec) const;

  const ServiceOptions options_;
  const size_t num_vertices_;
  // `options_.spec` validated against the factory ("pll" if unknown).
  const std::string spec_;

  AtomicSharedPtr<const ServeSnapshot> snapshot_;
  AtomicSharedPtr<const PendingUpdates> pending_;
  // Verified-unreachable pairs, consulted before the snapshot is pinned;
  // null when `negcache_capacity == 0`. Epoch-bumped after every
  // insert-carrying pending publish and every snapshot swap — delete-only
  // batches skip the bump because deletions only shrink reachability
  // (see Query for the sampling order).
  const std::unique_ptr<NegativeResultCache> negcache_;

  // Serializes writers mutating the pending buffer (readers are
  // lock-free via the COW shared_ptr).
  mutable std::mutex write_mu_;
  // Wakes kBlock writers when a drain trims the pending buffer (and on
  // Stop). Guarded by write_mu_.
  std::condition_variable backpressure_cv_;
  // Every edge currently in the published snapshot's graph (deletes
  // drained by a rebuild are already materialized out of it). Touched
  // only by the (single) in-flight rebuild task and Start().
  std::vector<Edge> base_edges_;
  uint64_t next_version_ = 1;

  // Rebuild handshake: at most one drain task in flight.
  mutable std::mutex rebuild_mu_;
  mutable std::condition_variable rebuild_cv_;
  bool rebuild_inflight_ = false;
  bool flush_requested_ = false;
  std::atomic<bool> stopped_{false};
  bool started_ = false;

  mutable ServeStats stats_;
  // Slow-query log: bounded, oldest-evicted (see ServiceOptions).
  mutable std::mutex slow_mu_;
  mutable std::deque<SlowQueryRecord> slow_log_;

  // Admission gate: queries currently inside Query (RAII-maintained).
  mutable std::atomic<size_t> inflight_{0};
  // Health state of the drain machinery (RebuildState values).
  std::atomic<uint8_t> rebuild_state_{0};
  std::atomic<uint64_t> rebuild_consecutive_failures_{0};
  mutable std::mutex health_mu_;
  std::string last_rebuild_error_;
  // Backoff jitter source — only the single in-flight rebuild task ever
  // touches it, so no lock; fixed seed keeps chaos runs reproducible.
  Xoshiro256ss backoff_rng_{0xFA11};

  // Cached obs-registry instruments mirroring ServeStats ("serve.*").
  Counter* queries_counter_;
  Counter* index_counter_;
  Counter* delta_counter_;
  Counter* fallback_counter_;
  Counter* deadline_counter_;
  Counter* slot_wait_counter_;
  Counter* inexact_counter_;
  Counter* insert_counter_;
  Counter* delete_counter_;
  Counter* update_batch_counter_;
  Counter* update_rejected_counter_;
  Counter* delete_verify_counter_;
  Counter* rebuild_counter_;
  Counter* slow_captured_counter_;
  Counter* slow_dropped_counter_;
  Counter* negcache_hit_counter_;
  Counter* negcache_miss_counter_;
  Counter* negcache_evict_counter_;
  Counter* negcache_invalidate_counter_;
  Counter* shed_counter_;
  Counter* admission_cache_counter_;
  Counter* admission_bfs_counter_;
  Counter* bp_blocked_counter_;
  Counter* bp_rejected_counter_;
  Counter* bp_forced_counter_;
  Counter* rebuild_failure_counter_;
  Counter* rebuild_retry_counter_;
  Counter* watchdog_counter_;
  Gauge* version_gauge_;
  Gauge* pending_gauge_;
  Gauge* health_ready_gauge_;
  Gauge* health_state_gauge_;
  Gauge* health_pending_fill_gauge_;
  Gauge* health_inflight_fill_gauge_;
  Histogram* latency_hist_;
};

/// Outcome of the budgeted traversal fallback.
struct BoundedBfsOutcome {
  bool reachable = false;
  /// True when the BFS ran to completion (frontier exhausted or target
  /// found) within the visit budget; a negative answer with
  /// `complete == false` is unverified.
  bool complete = true;
  /// Vertices expanded before the search ended.
  size_t visits = 0;
};

/// Breadth-first search over `graph` with `updates` replayed onto it
/// (last operation per edge wins: effective inserts are added, effective
/// deletes mask base-graph arcs), giving up after `max_visits` vertex
/// expansions — the degraded/verification answer path of `ReachService`,
/// exposed for tests and the differential harness.
BoundedBfsOutcome BoundedUnionBfs(const Digraph& graph,
                                  const PendingUpdates& updates, VertexId s,
                                  VertexId t, size_t max_visits);

}  // namespace reach

#endif  // REACH_SERVE_REACH_SERVICE_H_
