#ifndef REACH_SERVE_REACH_SERVICE_H_
#define REACH_SERVE_REACH_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/serialize.h"
#include "graph/digraph.h"
#include "graph/types.h"
#include "serve/neg_cache.h"
#include "serve/serve_snapshot.h"

namespace reach {

class Counter;
class Gauge;
class Histogram;

/// Configuration of a `ReachService`.
struct ServiceOptions {
  /// `MakeIndex` spec of the plain index each snapshot is built with.
  /// Unknown and non-plain specs fall back to "pll".
  std::string spec = "pll";
  /// Concurrent-query slots requested per snapshot; the index may grant
  /// fewer (see `PrepareConcurrentQueries`). 0 = `DefaultThreads()`.
  size_t slots = 0;
  /// Pending-insert count that triggers a background snapshot rebuild.
  size_t drain_threshold = 64;
  /// Per-query time budget; once exceeded, the expensive answer paths
  /// (delta closure, unindexed fallback) degrade to the bounded BFS.
  /// 0 = no deadline.
  std::chrono::nanoseconds deadline{0};
  /// Vertex-visit cap of the degraded bounded BFS. Exhausting it yields
  /// an inexact negative answer (`ServeAnswer::exact == false`).
  size_t fallback_visit_budget = 1 << 16;
  /// End-to-end latency above which a query's stage breakdown is retained
  /// in the slow-query log. 0 = no latency criterion (deadline-degraded
  /// queries are still captured — they are slow by definition).
  std::chrono::nanoseconds slow_query_threshold{0};
  /// Bound of the slow-query log; once full, the oldest record is evicted
  /// (and counted in `ServeStats::slow_dropped`). 0 disables capture and
  /// the per-stage stopwatches entirely.
  size_t slow_log_capacity = 64;
  /// Total entry bound of the negative-result cache (serve/neg_cache.h)
  /// consulted ahead of the index probe; repeated verified-unreachable
  /// pairs short-circuit in O(1). Epoch-invalidated on `InsertEdge` and
  /// on every snapshot swap, so a stale negative is never served.
  /// 0 disables the cache.
  size_t negcache_capacity = 1 << 14;
  /// Lock stripes of the negative-result cache (rounded to a power of
  /// two). More stripes = less writer contention.
  size_t negcache_shards = 16;
};

/// How a query was answered.
enum class AnswerSource : uint8_t {
  kIndex,        // snapshot index alone
  kDelta,        // index plus the pending-edge closure
  kFallbackBfs,  // bounded online BFS (no index yet, or budget exceeded)
  kNegCache,     // negative-result cache hit (verified this epoch)
};

/// The result of one `ReachService::Query`.
struct ServeAnswer {
  bool reachable = false;
  /// False only for a negative answer the service could not verify within
  /// its budgets (bounded BFS hit the visit cap). Positive answers are
  /// always exact — a witness path was found.
  bool exact = true;
  AnswerSource source = AnswerSource::kIndex;
  /// Generation of the snapshot that served the query.
  uint64_t snapshot_version = 0;
};

/// The stages of one served query, in pipeline order; indexes into
/// `SlowQueryRecord::stage_ns`. A query touches a prefix of these (an
/// index hit never runs the closure; the fallback only runs after a
/// missing index or a blown deadline).
enum class ServeStage : uint8_t {
  kNegCacheProbe = 0,  // negative-result cache lookup
  kSlotAcquire = 1,    // admission: leasing a concurrent-query slot
  kIndexProbe = 2,     // the pinned snapshot's index lookup(s)
  kDeltaClosure = 3,   // pending-edge closure over index lookups
  kFallbackBfs = 4,    // degraded bounded union BFS
};
inline constexpr size_t kNumServeStages = 5;

/// Stage name for table/log output ("slot_acquire", ...).
const char* ServeStageName(size_t stage);

/// One retained slow query: identity, outcome, per-stage latency
/// breakdown, and probe-style counters — everything needed to explain
/// where the time went without replaying the query.
struct SlowQueryRecord {
  VertexId s = 0;
  VertexId t = 0;
  bool reachable = false;
  bool exact = true;
  bool deadline_degraded = false;
  bool slot_waited = false;
  AnswerSource source = AnswerSource::kIndex;
  uint64_t snapshot_version = 0;
  uint64_t total_ns = 0;
  /// Nanoseconds spent per `ServeStage` (0 = stage not reached).
  uint64_t stage_ns[kNumServeStages] = {};
  /// `QueryInSlot` calls issued (1 for a pure hit/miss; the delta closure
  /// issues O(k²) of them).
  uint64_t index_probes = 0;
  /// Pending-edge buffer size observed by the query.
  uint64_t pending_edges = 0;
  /// Vertices expanded by the bounded BFS (0 when it did not run).
  uint64_t bfs_visits = 0;
};

/// Always-on service counters (independent of REACH_METRICS); the same
/// values are mirrored into `MetricsRegistry::Global()` under "serve.*"
/// when metrics are compiled in.
struct ServeStats {
  std::atomic<uint64_t> queries{0};
  std::atomic<uint64_t> index_answers{0};
  std::atomic<uint64_t> delta_answers{0};
  std::atomic<uint64_t> fallback_answers{0};
  std::atomic<uint64_t> deadline_degraded{0};
  std::atomic<uint64_t> slot_waits{0};
  std::atomic<uint64_t> inexact_answers{0};
  std::atomic<uint64_t> inserts{0};
  std::atomic<uint64_t> rebuilds{0};
  /// Negative-result cache outcomes (misses count every cache-enabled
  /// query that had to fall through to the index pipeline).
  std::atomic<uint64_t> negcache_hits{0};
  std::atomic<uint64_t> negcache_misses{0};
  std::atomic<uint64_t> negcache_evictions{0};
  std::atomic<uint64_t> negcache_invalidations{0};
  /// Queries captured into the slow-query log (including records evicted
  /// later) and records evicted because the log was full.
  std::atomic<uint64_t> slow_captured{0};
  std::atomic<uint64_t> slow_dropped{0};
};

/// An embeddable concurrent reachability-serving engine — the §5
/// "integration into GDBMSs" challenge made concrete. One service owns an
/// evolving edge set and serves exact point queries while absorbing an
/// `InsertEdge` stream:
///
///  * Reads pin an immutable `ServeSnapshot` (graph + index + query
///    slots) behind an atomic `shared_ptr`, lease a slot, and answer via
///    `QueryInSlot` — many readers in parallel, zero locks on the hot
///    path.
///  * Writes append to a copy-on-write pending-edge buffer; a background
///    task on the shared thread pool (src/par/) drains the buffer into a
///    freshly built snapshot and swaps it in. At most one rebuild is in
///    flight; generations are strictly ordered.
///  * Queries stay exact across the swap: reachability is monotone under
///    insertion, so an index hit on the pinned snapshot is final, and an
///    index miss is re-checked against the pending edges by a closure
///    over index queries (each base-graph gap between pending edges is
///    one `QueryInSlot`). When there is no index yet — service just
///    started — or the per-query deadline expires mid-closure, the
///    answer degrades to a bounded union BFS over graph + pending edges,
///    and `ServeAnswer::exact` says whether the budget sufficed.
///
/// Thread-safety: `Query` may be called from any number of threads
/// concurrently with `InsertEdge`, `Flush`, and the background rebuild.
/// `Start`/`Stop` are not thread-safe with each other.
class ReachService {
 public:
  /// The vertex set is fixed at construction; `InsertEdge` streams edges
  /// over it. The service answers queries from `Start()` on.
  explicit ReachService(Digraph base, ServiceOptions options = {});
  ~ReachService();

  ReachService(const ReachService&) = delete;
  ReachService& operator=(const ReachService&) = delete;

  /// Publishes the startup snapshot (graph only — queries degrade to the
  /// bounded BFS) and schedules the first index build in the background.
  void Start();

  /// Near-instant startup/failover: mmap-loads an RCHX v2 snapshot file
  /// (docs/SNAPSHOTS.md) written by `PrunedTwoHop::SaveSnapshot` for the
  /// service's base graph and publishes it as the first indexed snapshot
  /// — no build, queries are index-backed immediately. The spec must be
  /// a bare 2-hop spec (`pll`/`tfl`/`tol-*`, no `fastpath` wrapper) and
  /// the snapshot's vertex count must match the service's; otherwise a
  /// typed error is returned and the service is left unstarted (a plain
  /// `Start()` still works). No background rebuild is scheduled until
  /// inserts accumulate. Not thread-safe with `Start`/`Stop`.
  LoadResult StartWithSnapshot(const std::string& path);

  /// Blocks until the in-flight rebuild (if any) finishes and stops
  /// scheduling new ones. Queries keep working against the last
  /// published snapshot; further inserts are rejected. Idempotent.
  void Stop();

  /// Answers Qr(s, t) over the union of the base graph and every edge
  /// accepted by `InsertEdge` so far (see class comment for exactness).
  ServeAnswer Query(VertexId s, VertexId t) const;

  /// Accepts edge s -> t into the pending buffer; a rebuild is scheduled
  /// once `drain_threshold` edges accumulate. Returns false when an
  /// endpoint is out of range or the service is stopped.
  bool InsertEdge(VertexId s, VertexId t);

  /// Blocks until every previously accepted insert is absorbed into a
  /// published snapshot (forcing a rebuild if needed). No-op when
  /// stopped.
  void Flush();

  size_t NumVertices() const { return num_vertices_; }
  /// Version of the currently published snapshot (0 = unindexed startup).
  uint64_t SnapshotVersion() const { return snapshot_.Load()->version; }
  /// Inserts not yet absorbed into a snapshot.
  size_t PendingEdgeCount() const { return pending_.Load()->size(); }
  const ServeStats& stats() const { return stats_; }
  const ServiceOptions& options() const { return options_; }

  /// The slow-query log, oldest first: every query that exceeded
  /// `slow_query_threshold` or degraded on its deadline, up to
  /// `slow_log_capacity` retained records. Thread-safe.
  std::vector<SlowQueryRecord> SlowQueries() const;
  /// Empties the slow-query log (captured/dropped totals are kept).
  void ClearSlowQueries();

 private:
  class SlotLease;

  void ScheduleLocked();
  void RebuildLoop();
  ServeAnswer AnswerWithIndex(const ServeSnapshot& snap,
                              const PendingEdges& pending, VertexId s,
                              VertexId t,
                              std::chrono::steady_clock::time_point deadline,
                              bool* waited, SlowQueryRecord* rec) const;
  ServeAnswer DegradedAnswer(const ServeSnapshot& snap,
                             const PendingEdges& pending, VertexId s,
                             VertexId t, SlowQueryRecord* rec) const;
  void CaptureSlowQuery(SlowQueryRecord rec) const;

  const ServiceOptions options_;
  const size_t num_vertices_;
  // `options_.spec` validated against the factory ("pll" if unknown).
  const std::string spec_;

  AtomicSharedPtr<const ServeSnapshot> snapshot_;
  AtomicSharedPtr<const PendingEdges> pending_;
  // Verified-unreachable pairs, consulted before the snapshot is pinned;
  // null when `negcache_capacity == 0`. Epoch-bumped after every pending
  // publish and snapshot swap (see Query for the sampling order).
  const std::unique_ptr<NegativeResultCache> negcache_;

  // Serializes writers mutating the pending buffer (readers are
  // lock-free via the COW shared_ptr).
  mutable std::mutex write_mu_;
  // Every edge already absorbed into the published snapshot's graph.
  // Touched only by the (single) in-flight rebuild task and Start().
  std::vector<Edge> base_edges_;
  uint64_t next_version_ = 1;

  // Rebuild handshake: at most one drain task in flight.
  mutable std::mutex rebuild_mu_;
  mutable std::condition_variable rebuild_cv_;
  bool rebuild_inflight_ = false;
  bool flush_requested_ = false;
  std::atomic<bool> stopped_{false};
  bool started_ = false;

  mutable ServeStats stats_;
  // Slow-query log: bounded, oldest-evicted (see ServiceOptions).
  mutable std::mutex slow_mu_;
  mutable std::deque<SlowQueryRecord> slow_log_;

  // Cached obs-registry instruments mirroring ServeStats ("serve.*").
  Counter* queries_counter_;
  Counter* index_counter_;
  Counter* delta_counter_;
  Counter* fallback_counter_;
  Counter* deadline_counter_;
  Counter* slot_wait_counter_;
  Counter* inexact_counter_;
  Counter* insert_counter_;
  Counter* rebuild_counter_;
  Counter* slow_captured_counter_;
  Counter* slow_dropped_counter_;
  Counter* negcache_hit_counter_;
  Counter* negcache_miss_counter_;
  Counter* negcache_evict_counter_;
  Counter* negcache_invalidate_counter_;
  Gauge* version_gauge_;
  Gauge* pending_gauge_;
  Histogram* latency_hist_;
};

/// Outcome of the budgeted traversal fallback.
struct BoundedBfsOutcome {
  bool reachable = false;
  /// True when the BFS ran to completion (frontier exhausted or target
  /// found) within the visit budget; a negative answer with
  /// `complete == false` is unverified.
  bool complete = true;
  /// Vertices expanded before the search ended.
  size_t visits = 0;
};

/// Breadth-first search over `graph` plus the extra edges, giving up
/// after `max_visits` vertex expansions — the degraded answer path of
/// `ReachService`, exposed for tests and the differential harness.
BoundedBfsOutcome BoundedUnionBfs(const Digraph& graph,
                                  const PendingEdges& extra, VertexId s,
                                  VertexId t, size_t max_visits);

}  // namespace reach

#endif  // REACH_SERVE_REACH_SERVICE_H_
