#ifndef REACH_CORE_INDEX_STATS_H_
#define REACH_CORE_INDEX_STATS_H_

#include <chrono>
#include <cstddef>
#include <vector>

#include "obs/build_phase_timer.h"

namespace reach {

/// Build-time/size statistics reported alongside every index, matching the
/// columns of the survey's comparisons (indexing time, index size) plus
/// the observability extensions (phase breakdown, peak memory). Every
/// index's `Build()` populates this via `BuildStatsScope`; benches and the
/// CLI read it back through `ReachabilityIndex::Stats()` so indexing-time
/// numbers come from one source of truth.
struct IndexStats {
  /// Wall-clock build time.
  std::chrono::nanoseconds build_time{0};
  /// Index footprint in bytes (labels only).
  size_t size_bytes = 0;
  /// Number of label entries / intervals / hops, technique-specific.
  size_t num_entries = 0;
  /// Best-effort peak resident-set size observed at the end of the build
  /// (process-wide, via getrusage; an upper bound for the build itself).
  size_t peak_build_memory_bytes = 0;
  /// Named build-phase breakdown in execution order (e.g. condense ->
  /// order -> label). Empty when compiled with REACH_METRICS=0.
  std::vector<PhaseTiming> phases;
};

/// Small stopwatch for measuring build and query phases.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Nanoseconds since construction or the last Reset().
  std::chrono::nanoseconds Elapsed() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
        Clock::now() - start_);
  }

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// RAII wrapper for one `Build()` call: clears `stats` on entry (builds
/// replace prior state) and fills `build_time` and
/// `peak_build_memory_bytes` on exit. Phases are timed separately with
/// `BuildPhaseTimer`; size fields are assigned by the build body.
class BuildStatsScope {
 public:
  explicit BuildStatsScope(IndexStats* stats) : stats_(stats) {
    *stats_ = IndexStats{};
  }

  ~BuildStatsScope() {
    stats_->build_time = timer_.Elapsed();
    stats_->peak_build_memory_bytes = PeakRssBytes();
  }

  BuildStatsScope(const BuildStatsScope&) = delete;
  BuildStatsScope& operator=(const BuildStatsScope&) = delete;

 private:
  IndexStats* stats_;
  Stopwatch timer_;
};

}  // namespace reach

#endif  // REACH_CORE_INDEX_STATS_H_
