#ifndef REACH_CORE_INDEX_STATS_H_
#define REACH_CORE_INDEX_STATS_H_

#include <chrono>
#include <cstddef>

namespace reach {

/// Build-time/size statistics reported alongside every index, matching the
/// columns of the survey's comparisons (indexing time, index size).
struct IndexStats {
  /// Wall-clock build time.
  std::chrono::nanoseconds build_time{0};
  /// Index footprint in bytes (labels only).
  size_t size_bytes = 0;
  /// Number of label entries / intervals / hops, technique-specific.
  size_t num_entries = 0;
};

/// Small stopwatch for measuring build and query phases.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Nanoseconds since construction or the last Reset().
  std::chrono::nanoseconds Elapsed() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
        Clock::now() - start_);
  }

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace reach

#endif  // REACH_CORE_INDEX_STATS_H_
