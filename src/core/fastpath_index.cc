#include "core/fastpath_index.h"

#include <cassert>

#include "obs/metrics_registry.h"

namespace reach {

namespace {

// Verdict counts are buffered per slot and pushed into the shared
// registry counters in batches, so the query path never touches the
// registry's thread-local cell lookup.
constexpr uint64_t kFlushBatch = 64;

}  // namespace

template <typename Base>
BasicFastPathIndex<Base>::BasicFastPathIndex(
    std::unique_ptr<ReachabilityIndex> inner, ObservationStack::Options options)
    : inner_(std::move(inner)),
      stack_(options),
      hit_pos_counter_(&MetricsRegistry::Global().GetCounter("fastpath.hit.pos")),
      hit_neg_counter_(&MetricsRegistry::Global().GetCounter("fastpath.hit.neg")),
      undecided_counter_(
          &MetricsRegistry::Global().GetCounter("fastpath.undecided")) {
  assert(inner_ != nullptr);
  inner_dynamic_ = dynamic_cast<DynamicReachabilityIndex*>(inner_.get());
  if constexpr (std::is_same_v<Base, DynamicReachabilityIndex>) {
    assert(inner_dynamic_ != nullptr &&
           "DynamicFastPathIndex requires a dynamic inner index");
  }
  cells_.emplace_back();  // slot 0 always exists
}

template <typename Base>
BasicFastPathIndex<Base>::~BasicFastPathIndex() {
  FlushAllCells();
}

template <typename Base>
void BasicFastPathIndex<Base>::Build(const Digraph& graph) {
  BuildStatsScope build(&this->build_stats_);
  {
    BuildPhaseTimer timer(&this->build_stats_.phases, "observations");
    stack_.Build(graph);
  }
  inner_->Build(graph);
  // Absorb the wrapped build's breakdown so `Stats()` shows the whole
  // pipeline (observations -> inner phases), as SccCondensingIndex does.
  const IndexStats& inner_stats = inner_->Stats();
  this->build_stats_.phases.insert(this->build_stats_.phases.end(),
                                   inner_stats.phases.begin(),
                                   inner_stats.phases.end());
  this->build_stats_.size_bytes = IndexSizeBytes();
  this->build_stats_.num_entries = inner_stats.num_entries;
  // Re-arm: a fresh stack over the new graph makes both verdict
  // directions sound again.
  inserted_ = false;
  deleted_ = false;
  FlushAllCells();
  for (Cell& cell : cells_) cell = Cell{};
}

template <typename Base>
size_t BasicFastPathIndex<Base>::PrepareConcurrentQueries(size_t slots) const {
  const size_t granted = inner_->PrepareConcurrentQueries(slots);
  while (cells_.size() < granted) cells_.emplace_back();
  return granted;
}

template <typename Base>
bool BasicFastPathIndex<Base>::QueryInSlot(VertexId s, VertexId t,
                                           size_t slot) const {
  Cell& cell = cells_[slot];
  [[maybe_unused]] QueryProbe& probe = cell.probe;
  REACH_PROBE_INC(probe, queries);
  REACH_PROBE_ADD(probe, labels_scanned, 1);  // the observation lookup
  int verdict = stack_.Verdict(s, t);
  // After an insert the precomputed orders may order the new edge
  // backwards, so negative verdicts are unsound; positives only ever
  // become "more true" (reachability is monotone under insertion).
  if (verdict < 0 && inserted_) verdict = 0;
  // After a delete the mirror argument applies: reachability only
  // shrinks, so negatives stay sound but a cached positive may now be a
  // stale wrong answer — the dangerous direction.
  if (verdict > 0 && deleted_) verdict = 0;
  // VerdictStats() stays exact in every build mode (like
  // ReachService::stats()); only the registry mirroring is gated.
  if (verdict != 0) {
    if (verdict > 0) {
      ++cell.stats.hit_pos;
      REACH_PROBE_INC(probe, positives);
    } else {
      ++cell.stats.hit_neg;
      REACH_PROBE_INC(probe, label_rejections);
    }
    if constexpr (kMetricsCompiled) {
      if (verdict > 0) {
        ++cell.unflushed_pos;
      } else {
        ++cell.unflushed_neg;
      }
      if (cell.unflushed_pos + cell.unflushed_neg + cell.unflushed_undecided >=
          kFlushBatch) {
        FlushCell(cell);
      }
    }
    return verdict > 0;
  }
  ++cell.stats.undecided;
  REACH_PROBE_INC(probe, fallbacks);
  if constexpr (kMetricsCompiled) {
    ++cell.unflushed_undecided;
    if (cell.unflushed_pos + cell.unflushed_neg + cell.unflushed_undecided >=
        kFlushBatch) {
      FlushCell(cell);
    }
  }
  const bool reachable = inner_->QueryInSlot(s, t, slot);
  if (reachable) REACH_PROBE_INC(probe, positives);
  return reachable;
}

template <typename Base>
size_t BasicFastPathIndex<Base>::IndexSizeBytes() const {
  return stack_.SizeBytes() + inner_->IndexSizeBytes();
}

template <typename Base>
QueryProbe BasicFastPathIndex<Base>::Probe() const {
  FlushAllCells();
  QueryProbe own;
  for (const Cell& cell : cells_) own.MergeFrom(cell.probe);
  // Same convention as SccCondensingIndex: queries/positives are counted
  // at the wrapper (decided queries never reach the inner index); scan
  // and rejection work is additive across the layers.
  QueryProbe merged = inner_->Probe();
  merged.queries = own.queries;
  merged.positives = own.positives;
  merged.labels_scanned += own.labels_scanned;
  merged.label_rejections += own.label_rejections;
  merged.fallbacks += own.fallbacks;
  return merged;
}

template <typename Base>
void BasicFastPathIndex<Base>::ResetProbe() const {
  FlushAllCells();
  for (Cell& cell : cells_) cell = Cell{};
  inner_->ResetProbe();
}

template <typename Base>
UpdateResult BasicFastPathIndex<Base>::ApplyUpdate(const UpdateBatch& batch) {
  assert(inner_dynamic_ != nullptr);
  UpdateResult result = inner_dynamic_->ApplyUpdate(batch);
  if (result.ok()) {
    // Conservative: flag on batch contents, not on `applied` — a no-op
    // update suppresses nothing new worth distinguishing.
    for (const EdgeUpdate& update : batch) {
      if (update.IsInsert()) {
        inserted_ = true;
      } else {
        deleted_ = true;
      }
    }
  }
  return result;
}

template <typename Base>
bool BasicFastPathIndex<Base>::SupportsDeletions() const {
  return inner_dynamic_ != nullptr && inner_dynamic_->SupportsDeletions();
}

template <typename Base>
bool BasicFastPathIndex<Base>::RebuildFromUpdates() {
  if (inner_dynamic_ == nullptr) return false;
  return inner_dynamic_->RebuildFromUpdates();
}

template <typename Base>
FastPathVerdictStats BasicFastPathIndex<Base>::VerdictStats() const {
  FastPathVerdictStats total;
  for (const Cell& cell : cells_) {
    total.hit_pos += cell.stats.hit_pos;
    total.hit_neg += cell.stats.hit_neg;
    total.undecided += cell.stats.undecided;
  }
  return total;
}

template <typename Base>
void BasicFastPathIndex<Base>::FlushCell(Cell& cell) const {
  if (cell.unflushed_pos != 0) hit_pos_counter_->Add(cell.unflushed_pos);
  if (cell.unflushed_neg != 0) hit_neg_counter_->Add(cell.unflushed_neg);
  if (cell.unflushed_undecided != 0)
    undecided_counter_->Add(cell.unflushed_undecided);
  cell.unflushed_pos = 0;
  cell.unflushed_neg = 0;
  cell.unflushed_undecided = 0;
}

template <typename Base>
void BasicFastPathIndex<Base>::FlushAllCells() const {
  for (Cell& cell : cells_) FlushCell(cell);
}

template class BasicFastPathIndex<ReachabilityIndex>;
template class BasicFastPathIndex<DynamicReachabilityIndex>;

}  // namespace reach
