#include "core/reachability_index.h"

#include <algorithm>
#include <atomic>

#include "par/parallel_for.h"
#include "par/thread_pool.h"

namespace reach {

std::vector<uint8_t> ReachabilityIndex::BatchQuery(
    std::span<const QueryPair> queries, size_t num_threads) const {
  std::vector<uint8_t> results(queries.size(), 0);
  if (queries.empty()) return results;

  size_t threads = std::min(ResolveThreads(num_threads), queries.size());
  if (threads > 1) {
    // Honor the prepared-slot contract: fan out over however many slots
    // the index actually granted, and fall through to the serial loop
    // when it granted only the plain-Query slot.
    threads = std::min(threads, PrepareConcurrentQueries(threads));
  }
  if (threads > 1) {
    // Chunks are claimed from a shared counter so expensive queries
    // (traversal fallbacks) don't serialize behind a static split. Each
    // worker keeps one slot for its whole run, so per-slot scratch state
    // is reused across chunks.
    const size_t grain =
        std::max<size_t>(64, queries.size() / (8 * threads));
    std::atomic<size_t> next{0};
    ParallelForWorkers(threads, [&](size_t slot) {
      for (;;) {
        const size_t chunk_begin =
            next.fetch_add(grain, std::memory_order_relaxed);
        if (chunk_begin >= queries.size()) return;
        const size_t chunk_end =
            std::min(chunk_begin + grain, queries.size());
        for (size_t i = chunk_begin; i < chunk_end; ++i) {
          results[i] =
              QueryInSlot(queries[i].source, queries[i].target, slot) ? 1 : 0;
        }
      }
    });
    return results;
  }

  for (size_t i = 0; i < queries.size(); ++i) {
    results[i] = Query(queries[i].source, queries[i].target) ? 1 : 0;
  }
  return results;
}

}  // namespace reach
