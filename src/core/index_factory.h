#ifndef REACH_CORE_INDEX_FACTORY_H_
#define REACH_CORE_INDEX_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/reachability_index.h"
#include "lcr/lcr_index.h"

namespace reach {

/// A parsed index specification. Constructible implicitly from a string,
/// so every call site can keep writing `MakeIndex("grail:k=5")`.
///
/// Grammar: `["lcr:"] base [":" key "=" value]...`
///   * "pll"                — plain 2-hop under the degree order
///   * "grail:k=5"          — GRAIL with five interval labelings
///   * "lcr:pll"            — labeled-constrained P2H+
///   * "lcr:landmark:k=8:b=2"
struct IndexSpec {
  IndexSpec(std::string spec_text);  // NOLINT(google-explicit-constructor)
  IndexSpec(const char* spec_text)   // NOLINT(google-explicit-constructor)
      : IndexSpec(std::string(spec_text)) {}

  /// The full original text, e.g. "lcr:landmark:k=8:b=2".
  std::string text;
  /// True when the spec carries the "lcr:" family prefix.
  bool labeled = false;
  /// Technique name with the family prefix and parameters stripped,
  /// e.g. "landmark".
  std::string base;

  /// Integer parameter lookup over the ":key=value" tail; returns
  /// `fallback` when `key` is absent.
  size_t Param(const std::string& key, size_t fallback) const;

 private:
  std::string params_;  // the parameter tail, e.g. ":k=8:b=2"
};

/// What a constructed index can do — the factory's rendering of the
/// survey's Table 1 / Table 2 columns, so callers can branch on
/// capabilities instead of string-matching spec names.
struct IndexCaps {
  /// Answers label-constrained queries (`MadeIndex::lcr` is set).
  bool labeled = false;
  /// Supports incremental `ApplyUpdate` (at least inserts) after `Build`.
  bool dynamic = false;
  /// `ApplyUpdate` additionally accepts `kDelete` updates — the index is
  /// fully dynamic in the Table 1 sense, not insert-only.
  bool decremental = false;
  /// Answers from the index alone — never falls back to traversal.
  /// (For "auto" this is unknown until `Build` picks a technique.)
  bool complete = false;
  /// Supports the versioned `Save`/`Load` envelope (core/serialize.h).
  bool serializable = false;
};

/// The result of `MakeIndex`: exactly one of `plain` / `lcr` is set (per
/// `caps.labeled`), or neither for an unknown spec.
struct MadeIndex {
  std::unique_ptr<ReachabilityIndex> plain;
  std::unique_ptr<LcrIndex> lcr;
  IndexCaps caps;

  explicit operator bool() const { return plain != nullptr || lcr != nullptr; }
};

/// The single index-construction entry point: creates a ready-to-Build
/// index from a spec string and reports its capabilities. DAG-only plain
/// techniques come pre-wrapped in `SccCondensingIndex`, so every returned
/// index accepts general digraphs — mirroring how the survey's Table 1
/// normalizes the Input column.
///
/// Plain specs: "bfs", "dfs", "bibfs", "tc", "treecover", "dual",
/// "chaincover", "gripp", "grail[:k=<n>]", "ferrari[:k=<n>]", "pll",
/// "tfl", "tol-random", "tol-revdeg", "dbl", "dagger[:k=<n>]",
/// "oreach[:k=<n>]", "ip[:k=<n>]", "bfl[:bits=<n>]", "feline", "preach",
/// and "auto" (Table 1 advisor, plain/auto_index.h).
///
/// Every plain spec additionally accepts
/// `:fastpath=1[:supports=<n>][:anti=<n>]`, which layers the O(1)
/// observation-stack fast path (core/fastpath_index.h, docs/FASTPATH.md)
/// in front of the constructed index. Capability propagation: `complete`
/// and `dynamic` follow the wrapped index, `serializable` becomes false.
///
/// LCR specs (all "lcr:"-prefixed): "lcr:bfs", "lcr:gtc", "lcr:tree",
/// "lcr:landmark[:k=<n>][:b=<n>]", "lcr:pll"; the historical technique
/// names "lcr:lcr-bfs", "lcr:jin-tree", and "lcr:p2h" are accepted as
/// aliases.
///
/// Returns an empty `MadeIndex` (operator bool == false) for unknown
/// specs.
MadeIndex MakeIndex(const IndexSpec& spec);

enum class IndexFamily { kPlain, kLcr };

/// The default benchmark/conformance roster for a family: one spec per
/// implemented Table 1 / Table 2 row plus the online baselines.
std::vector<std::string> DefaultIndexSpecs(IndexFamily family);

/// One roster entry's documentation line: the spec name, the `Param`
/// knobs it accepts with their defaults (empty when the technique takes
/// none), and a one-line summary. Used by `reach_cli --help` so the
/// printed roster documents every accepted `:key=value` knob.
struct SpecDoc {
  std::string spec;
  std::string params;
  std::string summary;
  /// Write capability as `MakeIndex` would report it in `IndexCaps`:
  /// "static", "dynamic (insert-only)", or "dynamic (insert+delete)".
  /// Pinned to the factory's actual caps by index_factory_test.
  std::string caps;
};

/// Documentation for every spec `MakeIndex` accepts in `family`, in
/// `DefaultIndexSpecs` order (plus specs, like "auto" and "tol-revdeg",
/// that are constructible but not on the default roster).
std::vector<SpecDoc> DescribeIndexSpecs(IndexFamily family);

}  // namespace reach

#endif  // REACH_CORE_INDEX_FACTORY_H_
