#include "core/serialize.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "core/failpoint.h"

#if defined(__unix__) || defined(__APPLE__)
#define REACH_SERIALIZE_POSIX 1
#include <fcntl.h>
#include <unistd.h>
#else
#define REACH_SERIALIZE_POSIX 0
#endif

namespace reach {

namespace {

// Cap on the envelope's format-name length: real names are a few bytes,
// so anything larger is garbage, not an index stream.
constexpr uint32_t kMaxFormatNameLen = 64;

uint64_t AlignUp(uint64_t value, uint64_t align) {
  return (value + align - 1) & ~(align - 1);
}

bool IsPow2(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

const char* LoadStatusMessage(LoadStatus status) {
  switch (status) {
    case LoadStatus::kOk:
      return "ok";
    case LoadStatus::kBadMagic:
      return "not a reach index stream (bad envelope magic)";
    case LoadStatus::kBadVersion:
      return "incompatible index stream version";
    case LoadStatus::kWrongIndex:
      return "stream holds a different index format";
    case LoadStatus::kCorrupt:
      return "index payload truncated or corrupt";
    case LoadStatus::kUnsupported:
      return "index type does not support serialization";
  }
  return "unknown load status";
}

std::string LoadStatusMessage(const LoadResult& result) {
  std::string message = LoadStatusMessage(result.status);
  if (!result.detail.empty()) {
    message += " (";
    message += result.detail;
    message += ")";
  }
  return message;
}

LoadResult CorruptAt(std::string_view section, uint64_t offset) {
  return {LoadStatus::kCorrupt,
          std::string(section) + " at byte " + std::to_string(offset)};
}

bool WriteEnvelope(std::ostream& out, std::string_view format_name,
                   uint32_t version) {
  using serialize_detail::WritePod;
  WritePod(out, kEnvelopeMagic);
  WritePod(out, version);
  WritePod(out, static_cast<uint32_t>(format_name.size()));
  out.write(format_name.data(),
            static_cast<std::streamsize>(format_name.size()));
  return static_cast<bool>(out);
}

LoadResult ReadEnvelope(std::istream& in,
                        std::string_view expected_format_name) {
  using serialize_detail::ReadPod;
  uint32_t magic = 0, version = 0, len = 0;
  if (!ReadPod(in, &magic) || magic != kEnvelopeMagic) {
    return {LoadStatus::kBadMagic, {}};
  }
  if (!ReadPod(in, &version)) return {LoadStatus::kBadMagic, {}};
  if (version != kEnvelopeVersion) {
    return {LoadStatus::kBadVersion, std::to_string(version)};
  }
  if (!ReadPod(in, &len) || len > kMaxFormatNameLen) {
    return {LoadStatus::kCorrupt, {}};
  }
  std::string name(len, '\0');
  if (!serialize_detail::ReadBytes(in, name.data(), len)) {
    return {LoadStatus::kCorrupt, {}};
  }
  if (name != expected_format_name) {
    return {LoadStatus::kWrongIndex, name};
  }
  return {LoadStatus::kOk, {}};
}

void SnapshotWriter::AddSection(uint32_t kind, const void* data,
                                uint64_t size) {
  sections_.push_back({kind, data, size});
}

bool SnapshotWriter::WriteTo(std::ostream& out) const {
  using serialize_detail::WriteBytes;
  using serialize_detail::WritePod;
  // Lay out: prelude, 8-aligned table, then page-aligned payloads.
  const uint64_t prelude = 4 * sizeof(uint32_t) + name_.size();
  const uint64_t table_offset = AlignUp(prelude, 8);
  uint64_t cursor =
      table_offset + sections_.size() * sizeof(SnapshotSectionRecord);
  std::vector<SnapshotSectionRecord> table;
  table.reserve(sections_.size());
  for (const PendingSection& s : sections_) {
    cursor = AlignUp(cursor, kSnapshotPageAlign);
    table.push_back({cursor, s.size, s.kind,
                     static_cast<uint32_t>(kSnapshotPageAlign)});
    cursor += s.size;
  }

  WritePod(out, kEnvelopeMagic);
  WritePod(out, kSnapshotVersion);
  WritePod(out, static_cast<uint32_t>(name_.size()));
  WriteBytes(out, name_.data(), name_.size());
  WritePod(out, static_cast<uint32_t>(sections_.size()));
  static constexpr char kZeros[kSnapshotPageAlign] = {};
  WriteBytes(out, kZeros, table_offset - prelude);
  if (!table.empty()) {
    WriteBytes(out, table.data(),
               table.size() * sizeof(SnapshotSectionRecord));
  }
  uint64_t written =
      table_offset + table.size() * sizeof(SnapshotSectionRecord);
  // Fault injection (chaos builds only): evaluated after the header and
  // table are out, so an injected error/truncation/stall produces exactly
  // the torn-payload shape a crash mid-write would — the shape
  // WriteFileAtomic must keep away from the target path and the validated
  // reader must reject.
  const FailpointHit fault = REACH_FAILPOINT("snapshot.write");
  if (fault.action == FailpointAction::kError) {
    out.setstate(std::ios_base::failbit);
    return false;
  }
  uint64_t budget = fault.action == FailpointAction::kPartial
                        ? fault.arg
                        : UINT64_MAX;
  const auto put = [&](const void* data, uint64_t bytes) {
    if (bytes > budget) {  // injected short write: truncate and fail
      WriteBytes(out, data, budget);
      budget = 0;
      out.setstate(std::ios_base::failbit);
      return false;
    }
    budget -= bytes;
    WriteBytes(out, data, bytes);
    return static_cast<bool>(out);
  };
  for (size_t i = 0; i < sections_.size(); ++i) {
    if (!put(kZeros, table[i].offset - written)) return false;
    if (sections_[i].size != 0 &&
        !put(sections_[i].data, sections_[i].size)) {
      return false;
    }
    written = table[i].offset + sections_[i].size;
  }
  return static_cast<bool>(out);
}

bool WriteFileAtomic(const std::string& path,
                     const std::function<bool(std::ostream&)>& write,
                     std::string* error) {
  const auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = path + ": " + message;
    return false;
  };
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return fail("cannot open temp file " + tmp);
    if (!write(out) || !out.flush()) {
      out.close();
      std::remove(tmp.c_str());
      return fail("write failed (target untouched)");
    }
  }
#if REACH_SERIALIZE_POSIX
  // Durability order: data to disk, then the rename, then the directory
  // entry — a crash between any two steps leaves old-or-new, never torn.
  const int fd = ::open(tmp.c_str(), O_RDONLY);
  if (fd < 0 || ::fsync(fd) != 0) {
    if (fd >= 0) ::close(fd);
    std::remove(tmp.c_str());
    return fail("fsync failed: " + std::string(std::strerror(errno)));
  }
  ::close(fd);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return fail("rename failed: " + std::string(std::strerror(errno)));
  }
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash + 1);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY);
  if (dir_fd >= 0) {  // best-effort: some filesystems refuse dir fsync
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  return true;
#else
  std::remove(path.c_str());
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return fail("rename failed");
  }
  return true;
#endif
}

LoadResult SnapshotView::Parse(const uint8_t* data, size_t size,
                               std::string_view expected_format_name) {
  base_ = nullptr;
  table_.clear();
  uint32_t header[3];  // magic, version, name length
  if (size < sizeof(header)) {
    return {LoadStatus::kBadMagic, "file shorter than snapshot header"};
  }
  std::memcpy(header, data, sizeof(header));
  if (header[0] != kEnvelopeMagic) return {LoadStatus::kBadMagic, {}};
  if (header[1] != kSnapshotVersion) {
    return {LoadStatus::kBadVersion, std::to_string(header[1])};
  }
  const uint32_t name_len = header[2];
  if (name_len > kMaxFormatNameLen ||
      size < sizeof(header) + name_len + sizeof(uint32_t)) {
    return CorruptAt("format name", sizeof(header));
  }
  const std::string name(reinterpret_cast<const char*>(data) +
                             sizeof(header),
                         name_len);
  if (name != expected_format_name) {
    return {LoadStatus::kWrongIndex, name};
  }
  uint32_t section_count = 0;
  std::memcpy(&section_count, data + sizeof(header) + name_len,
              sizeof(section_count));
  if (section_count > kMaxSnapshotSections) {
    return CorruptAt("section count", sizeof(header) + name_len);
  }
  const uint64_t table_offset =
      AlignUp(4 * sizeof(uint32_t) + name_len, 8);
  const uint64_t table_bytes =
      uint64_t{section_count} * sizeof(SnapshotSectionRecord);
  if (table_offset > size || table_bytes > size - table_offset) {
    return CorruptAt("section table", table_offset);
  }
  // Validate the whole table before any payload byte is trusted:
  // alignment, bounds, and kind uniqueness.
  table_.resize(section_count);
  std::memcpy(table_.data(), data + table_offset, table_bytes);
  for (size_t i = 0; i < table_.size(); ++i) {
    const SnapshotSectionRecord& rec = table_[i];
    const std::string label = "section " + std::to_string(rec.kind);
    if (!IsPow2(rec.align) || rec.align < 8 ||
        rec.align > kSnapshotPageAlign || rec.offset % rec.align != 0) {
      table_.clear();
      return {LoadStatus::kCorrupt,
              label + " at byte " + std::to_string(rec.offset) +
                  ": misaligned (align " + std::to_string(rec.align) +
                  ")"};
    }
    if (rec.offset > size || rec.size > size - rec.offset) {
      table_.clear();
      return {LoadStatus::kCorrupt,
              label + " at byte " + std::to_string(rec.offset) +
                  ": extends past end of file"};
    }
    for (size_t j = 0; j < i; ++j) {
      if (table_[j].kind == rec.kind) {
        table_.clear();
        return {LoadStatus::kCorrupt, "duplicate " + label};
      }
    }
  }
  base_ = data;
  return {LoadStatus::kOk, {}};
}

bool SnapshotView::Has(uint32_t kind) const {
  for (const SnapshotSectionRecord& rec : table_) {
    if (rec.kind == kind) return true;
  }
  return false;
}

std::span<const uint8_t> SnapshotView::Section(uint32_t kind) const {
  for (const SnapshotSectionRecord& rec : table_) {
    if (rec.kind == kind) {
      if (rec.size == 0) return {};
      return {base_ + rec.offset, static_cast<size_t>(rec.size)};
    }
  }
  return {};
}

namespace serialize_detail {

void WriteBytes(std::ostream& out, const void* data, size_t bytes) {
  out.write(static_cast<const char*>(data),
            static_cast<std::streamsize>(bytes));
}

bool ReadBytes(std::istream& in, void* data, size_t bytes) {
  in.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
  return static_cast<bool>(in);
}

void WriteU32Vec(std::ostream& out, const std::vector<uint32_t>& v) {
  WritePod(out, static_cast<uint64_t>(v.size()));
  WriteBytes(out, v.data(), v.size() * sizeof(uint32_t));
}

bool ReadU32Vec(std::istream& in, std::vector<uint32_t>* v,
                uint64_t max_size) {
  uint64_t size = 0;
  if (!ReadPod(in, &size) || size > max_size) return false;
  v->resize(size);
  return ReadBytes(in, v->data(), size * sizeof(uint32_t));
}

}  // namespace serialize_detail

}  // namespace reach
