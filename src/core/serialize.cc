#include "core/serialize.h"

#include <istream>
#include <ostream>

namespace reach {

namespace {

// Cap on the envelope's format-name length: real names are a few bytes,
// so anything larger is garbage, not an index stream.
constexpr uint32_t kMaxFormatNameLen = 64;

}  // namespace

const char* LoadStatusMessage(LoadStatus status) {
  switch (status) {
    case LoadStatus::kOk:
      return "ok";
    case LoadStatus::kBadMagic:
      return "not a reach index stream (bad envelope magic)";
    case LoadStatus::kBadVersion:
      return "incompatible index stream version";
    case LoadStatus::kWrongIndex:
      return "stream holds a different index format";
    case LoadStatus::kCorrupt:
      return "index payload truncated or corrupt";
    case LoadStatus::kUnsupported:
      return "index type does not support serialization";
  }
  return "unknown load status";
}

bool WriteEnvelope(std::ostream& out, std::string_view format_name,
                   uint32_t version) {
  using serialize_detail::WritePod;
  WritePod(out, kEnvelopeMagic);
  WritePod(out, version);
  WritePod(out, static_cast<uint32_t>(format_name.size()));
  out.write(format_name.data(),
            static_cast<std::streamsize>(format_name.size()));
  return static_cast<bool>(out);
}

LoadResult ReadEnvelope(std::istream& in,
                        std::string_view expected_format_name) {
  using serialize_detail::ReadPod;
  uint32_t magic = 0, version = 0, len = 0;
  if (!ReadPod(in, &magic) || magic != kEnvelopeMagic) {
    return {LoadStatus::kBadMagic, {}};
  }
  if (!ReadPod(in, &version)) return {LoadStatus::kBadMagic, {}};
  if (version != kEnvelopeVersion) {
    return {LoadStatus::kBadVersion, std::to_string(version)};
  }
  if (!ReadPod(in, &len) || len > kMaxFormatNameLen) {
    return {LoadStatus::kCorrupt, {}};
  }
  std::string name(len, '\0');
  if (!serialize_detail::ReadBytes(in, name.data(), len)) {
    return {LoadStatus::kCorrupt, {}};
  }
  if (name != expected_format_name) {
    return {LoadStatus::kWrongIndex, name};
  }
  return {LoadStatus::kOk, {}};
}

namespace serialize_detail {

void WriteBytes(std::ostream& out, const void* data, size_t bytes) {
  out.write(static_cast<const char*>(data),
            static_cast<std::streamsize>(bytes));
}

bool ReadBytes(std::istream& in, void* data, size_t bytes) {
  in.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
  return static_cast<bool>(in);
}

void WriteU32Vec(std::ostream& out, const std::vector<uint32_t>& v) {
  WritePod(out, static_cast<uint64_t>(v.size()));
  WriteBytes(out, v.data(), v.size() * sizeof(uint32_t));
}

bool ReadU32Vec(std::istream& in, std::vector<uint32_t>* v,
                uint64_t max_size) {
  uint64_t size = 0;
  if (!ReadPod(in, &size) || size > max_size) return false;
  v->resize(size);
  return ReadBytes(in, v->data(), size * sizeof(uint32_t));
}

}  // namespace serialize_detail

}  // namespace reach
