#ifndef REACH_CORE_FASTPATH_INDEX_H_
#define REACH_CORE_FASTPATH_INDEX_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <utility>

#include "core/observation_stack.h"
#include "core/reachability_index.h"

namespace reach {

class Counter;

/// Aggregated three-way verdict counts of a `FastPathIndex`: how many
/// queries the observation stack settled positively / negatively, and how
/// many fell through to the wrapped index. The same values are exported
/// as the `fastpath.hit.pos` / `fastpath.hit.neg` / `fastpath.undecided`
/// registry counters (docs/OBSERVABILITY.md).
struct FastPathVerdictStats {
  uint64_t hit_pos = 0;
  uint64_t hit_neg = 0;
  uint64_t undecided = 0;

  uint64_t Decided() const { return hit_pos + hit_neg; }
  uint64_t Total() const { return Decided() + undecided; }
};

/// Layers the O'Reach observation stack (core/observation_stack.h) in
/// front of *any* reachability index — the composable sibling of
/// `SccCondensingIndex`, and ROADMAP item 3 made concrete: a three-way
/// constant-time `Verdict` settles the bulk of both reachable- and
/// unreachable-biased workloads before the wrapped index is consulted;
/// only undecided queries delegate.
///
/// Constructed by the factory for any plain spec carrying `:fastpath=1`
/// (e.g. "pll:fastpath=1", "grail:k=5:fastpath=1"); capability
/// propagation: `complete` and `dynamic` follow the wrapped index,
/// `serializable` is dropped (the observation stack is rebuilt from the
/// graph, never persisted).
///
/// Concurrency mirrors the wrapped index: `PrepareConcurrentQueries`
/// grants what the inner index grants and sizes one verdict-counter cell
/// per slot, so concurrent `QueryInSlot` streams never share counters.
/// The observation stack itself is immutable after `Build`.
///
/// Dynamic wrapping (`DynamicFastPathIndex`): reachability only grows
/// under insertion, so positive verdicts (same-SCC, DFS containment,
/// common observation vertex) stay valid after an insert; negative
/// verdicts rely on orders that an inserted edge can falsify, so they
/// are suppressed — demoted to undecided — from the first insertion
/// until the next `Build`. Deletion is the mirror image, and the
/// dangerous direction: a delete can only *shrink* reachability, so
/// negative verdicts stay sound but a stale *positive* would be a wrong
/// answer — positives are suppressed from the first delete until the
/// next `Build`. Both flags re-arm (clear) on `Build`, never before.
template <typename Base>
class BasicFastPathIndex : public Base {
 public:
  /// Takes ownership of the index to wrap. For the dynamic instantiation
  /// the inner index must be a `DynamicReachabilityIndex`.
  explicit BasicFastPathIndex(std::unique_ptr<ReachabilityIndex> inner,
                              ObservationStack::Options options = {});
  ~BasicFastPathIndex() override;

  void Build(const Digraph& graph) override;
  bool Query(VertexId s, VertexId t) const override {
    return QueryInSlot(s, t, 0);
  }
  size_t PrepareConcurrentQueries(size_t slots) const override;
  bool QueryInSlot(VertexId s, VertexId t, size_t slot) const override;
  size_t IndexSizeBytes() const override;
  bool IsComplete() const override { return inner_->IsComplete(); }
  std::string Name() const override { return "fastpath+" + inner_->Name(); }
  QueryProbe Probe() const override;
  void ResetProbe() const override;

  /// Forwards the batch to the wrapped index and degrades the
  /// observation stack to match: any insert in an accepted batch
  /// suppresses negative verdicts, any delete suppresses positive ones
  /// (class comment). Overrides `DynamicReachabilityIndex::ApplyUpdate`
  /// in the dynamic instantiation; must not be called on a non-dynamic
  /// inner index. A rejected batch leaves the verdict modes untouched.
  UpdateResult ApplyUpdate(const UpdateBatch& batch);

  /// Follows the wrapped index (dynamic instantiation only).
  bool SupportsDeletions() const;

  /// Forwards to the wrapped index. The observation stack is NOT rebuilt
  /// (it has no graph to rebuild from), so verdict suppression persists
  /// until the next `Build` even after the inner index re-minimizes.
  bool RebuildFromUpdates();

  /// Verdict counts accumulated since `Build` / `ResetProbe`, summed
  /// across slots. Exact in every build mode, including REACH_METRICS=0
  /// (only the registry mirroring is compiled out).
  FastPathVerdictStats VerdictStats() const;

  /// The precomputed observation stack (e.g. to size or probe it).
  const ObservationStack& observations() const { return stack_; }

  /// The wrapped index.
  const ReachabilityIndex& inner() const { return *inner_; }

 private:
  // Per-slot verdict counters: `stats` accumulates since Build/Reset;
  // `unflushed_*` buffers increments until a batch is pushed into the
  // shared registry counters, keeping the per-query cost to plain adds.
  struct Cell {
    FastPathVerdictStats stats;
    QueryProbe probe;
    uint64_t unflushed_pos = 0;
    uint64_t unflushed_neg = 0;
    uint64_t unflushed_undecided = 0;
  };

  void FlushCell(Cell& cell) const;
  void FlushAllCells() const;

  std::unique_ptr<ReachabilityIndex> inner_;
  DynamicReachabilityIndex* inner_dynamic_ = nullptr;  // null if static
  ObservationStack stack_;
  // Set by ApplyUpdate, cleared by Build (the re-arm point). Plain
  // bools: like every dynamic index in the library, writes are not
  // thread-safe with queries.
  bool inserted_ = false;  // suppress negative verdicts
  bool deleted_ = false;   // suppress positive verdicts
  mutable std::deque<Cell> cells_;  // slot-indexed; deque: stable refs
  // Shared registry counters ("fastpath.*", created once per process).
  Counter* hit_pos_counter_;
  Counter* hit_neg_counter_;
  Counter* undecided_counter_;
};

using FastPathIndex = BasicFastPathIndex<ReachabilityIndex>;
using DynamicFastPathIndex = BasicFastPathIndex<DynamicReachabilityIndex>;

}  // namespace reach

#endif  // REACH_CORE_FASTPATH_INDEX_H_
