#include "core/observation_stack.h"

#include <algorithm>
#include <numeric>

#include "graph/condensation.h"
#include "graph/topological.h"

namespace reach {

namespace {

constexpr size_t kMaxObservers = 64;

// Forward (over OutNeighbors) or backward (over InNeighbors) BFS from
// `root`, OR-ing `bit` into `sig` of every vertex reached.
void SweepSignature(const Digraph& dag, VertexId root, uint64_t bit,
                    bool forward, std::vector<uint64_t>* sig,
                    std::vector<uint32_t>* stamp, uint32_t epoch,
                    std::vector<VertexId>* queue) {
  queue->clear();
  queue->push_back(root);
  (*stamp)[root] = epoch;
  (*sig)[root] |= bit;
  for (size_t head = 0; head < queue->size(); ++head) {
    const VertexId v = (*queue)[head];
    for (const VertexId w :
         forward ? dag.OutNeighbors(v) : dag.InNeighbors(v)) {
      if ((*stamp)[w] == epoch) continue;
      (*stamp)[w] = epoch;
      (*sig)[w] |= bit;
      queue->push_back(w);
    }
  }
}

}  // namespace

void ObservationStack::Build(const Digraph& graph) {
  // Condense unconditionally: on a DAG the decomposition is the identity
  // up to renumbering, and one code path keeps every observation valid on
  // general digraphs.
  const Condensation cond = Condense(graph);
  const Digraph& dag = cond.dag;
  const size_t n = dag.NumVertices();
  component_of_ = cond.scc.component_of;

  const std::vector<VertexId> order = *TopologicalOrder(dag);
  topo_a_ = RankOf(order);
  topo_b_ = RankOf(*TopologicalOrderReverseTies(dag));
  fwd_level_ = ForwardLevels(dag);
  bwd_level_ = BackwardLevels(dag);

  // DFS spanning forest over real edges, roots taken in topological order
  // so every tree path is a directed path: pre/post interval containment
  // is a positive witness. Iterative, with an explicit child cursor.
  dfs_pre_.assign(n, 0);
  dfs_post_.assign(n, 0);
  {
    std::vector<uint8_t> visited(n, 0);
    std::vector<std::pair<VertexId, size_t>> stack;  // (vertex, next child)
    uint32_t clock = 0;
    for (const VertexId root : order) {
      if (visited[root]) continue;
      visited[root] = 1;
      dfs_pre_[root] = clock++;
      stack.emplace_back(root, 0);
      while (!stack.empty()) {
        auto& [v, cursor] = stack.back();
        const auto out = dag.OutNeighbors(v);
        bool descended = false;
        while (cursor < out.size()) {
          const VertexId w = out[cursor++];
          if (visited[w]) continue;
          visited[w] = 1;
          dfs_pre_[w] = clock++;
          stack.emplace_back(w, 0);
          descended = true;
          break;
        }
        if (!descended) {
          dfs_post_[v] = clock++;
          stack.pop_back();
        }
      }
    }
  }

  // Observation-vertex selection. Supportive: highest-degree DAG vertices
  // (stable order, matching the historical O'Reach support choice). Anti:
  // stratified across the topological order, skipping vertices already
  // supportive, so their reachable sets band the DAG.
  const size_t want_supports = std::min(options_.num_supports, kMaxObservers);
  const size_t want_anti =
      std::min(options_.num_anti, kMaxObservers - want_supports);
  std::vector<VertexId> observers;
  std::vector<uint8_t> chosen(n, 0);
  {
    std::vector<VertexId> by_degree(n);
    std::iota(by_degree.begin(), by_degree.end(), 0);
    std::stable_sort(by_degree.begin(), by_degree.end(),
                     [&](VertexId a, VertexId b) {
                       return dag.Degree(a) > dag.Degree(b);
                     });
    for (size_t i = 0; i < n && observers.size() < want_supports; ++i) {
      observers.push_back(by_degree[i]);
      chosen[by_degree[i]] = 1;
    }
  }
  for (size_t i = 0; i < want_anti && n > 0; ++i) {
    // Evenly spaced positions in the topological order; duplicates and
    // already-supportive vertices advance to the next free position.
    size_t pos = (i * n) / want_anti + n / (2 * want_anti);
    if (pos >= n) pos = n - 1;
    for (size_t step = 0; step < n; ++step) {
      const VertexId candidate = order[(pos + step) % n];
      if (!chosen[candidate]) {
        chosen[candidate] = 1;
        observers.push_back(candidate);
        break;
      }
    }
  }
  num_observers_ = observers.size();

  // One forward + one backward sweep per observation vertex fills both
  // signatures: bit h of fwd_sig(v) iff v reaches observer h, bit h of
  // bwd_sig(v) iff observer h reaches v.
  fwd_sig_.assign(n, 0);
  bwd_sig_.assign(n, 0);
  std::vector<uint32_t> stamp(n, 0);
  std::vector<VertexId> queue;
  uint32_t epoch = 0;
  for (size_t h = 0; h < observers.size(); ++h) {
    const uint64_t bit = uint64_t{1} << h;
    SweepSignature(dag, observers[h], bit, /*forward=*/true, &bwd_sig_,
                   &stamp, ++epoch, &queue);
    SweepSignature(dag, observers[h], bit, /*forward=*/false, &fwd_sig_,
                   &stamp, ++epoch, &queue);
  }
}

}  // namespace reach
