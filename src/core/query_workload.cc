#include "core/query_workload.h"

#include <algorithm>

#include "core/search_workspace.h"
#include "graph/rng.h"

namespace reach {

namespace {

// Local unlabeled BFS reachability check (kept here so core/ does not
// depend on traversal/).
bool BfsReaches(const Digraph& graph, VertexId s, VertexId t,
                SearchWorkspace& ws) {
  if (s == t) return true;
  ws.Prepare(graph.NumVertices());
  ws.MarkForward(s);
  auto& queue = ws.queue();
  queue.push_back(s);
  for (size_t head = 0; head < queue.size(); ++head) {
    for (VertexId w : graph.OutNeighbors(queue[head])) {
      if (w == t) return true;
      if (ws.MarkForward(w)) queue.push_back(w);
    }
  }
  return false;
}

}  // namespace

std::vector<QueryPair> RandomPairs(const Digraph& graph, size_t count,
                                   uint64_t seed) {
  Xoshiro256ss rng(seed);
  const size_t n = graph.NumVertices();
  std::vector<QueryPair> queries;
  queries.reserve(count);
  for (size_t i = 0; i < count && n > 0; ++i) {
    queries.push_back({static_cast<VertexId>(rng.NextBounded(n)),
                       static_cast<VertexId>(rng.NextBounded(n))});
  }
  return queries;
}

std::vector<QueryPair> ReachablePairs(const Digraph& graph, size_t count,
                                      uint64_t seed) {
  Xoshiro256ss rng(seed);
  const size_t n = graph.NumVertices();
  std::vector<QueryPair> queries;
  queries.reserve(count);
  while (queries.size() < count && n > 0) {
    // Random walk of random length from a random start.
    VertexId v = static_cast<VertexId>(rng.NextBounded(n));
    const VertexId start = v;
    const size_t steps = 1 + rng.NextBounded(16);
    bool moved = false;
    for (size_t i = 0; i < steps; ++i) {
      auto nbrs = graph.OutNeighbors(v);
      if (nbrs.empty()) break;
      v = nbrs[rng.NextBounded(nbrs.size())];
      moved = true;
    }
    if (moved) {
      queries.push_back({start, v});
    } else if (graph.NumEdges() == 0) {
      queries.push_back({start, start});  // degenerate graph: only (v, v)
    }
  }
  return queries;
}

std::vector<QueryPair> UnreachablePairs(const Digraph& graph, size_t count,
                                        uint64_t seed) {
  Xoshiro256ss rng(seed);
  const size_t n = graph.NumVertices();
  std::vector<QueryPair> queries;
  queries.reserve(count);
  SearchWorkspace ws;
  size_t attempts = 0;
  const size_t max_attempts = 64 * count + 1024;
  while (queries.size() < count && attempts < max_attempts && n > 1) {
    ++attempts;
    const VertexId s = static_cast<VertexId>(rng.NextBounded(n));
    const VertexId t = static_cast<VertexId>(rng.NextBounded(n));
    if (s == t || BfsReaches(graph, s, t, ws)) continue;
    queries.push_back({s, t});
  }
  return queries;
}

std::vector<LcrQuery> RandomLcrQueries(const LabeledDigraph& graph,
                                       size_t count, Label labels_per_query,
                                       uint64_t seed) {
  Xoshiro256ss rng(seed);
  const size_t n = graph.NumVertices();
  const Label num_labels = graph.NumLabels();
  labels_per_query = std::min(labels_per_query, num_labels);
  std::vector<LcrQuery> queries;
  queries.reserve(count);
  for (size_t i = 0; i < count && n > 0 && num_labels > 0; ++i) {
    LabelSet mask = 0;
    while (static_cast<Label>(__builtin_popcount(mask)) < labels_per_query) {
      mask |= LabelSet{1} << rng.NextBounded(num_labels);
    }
    queries.push_back({static_cast<VertexId>(rng.NextBounded(n)),
                       static_cast<VertexId>(rng.NextBounded(n)), mask});
  }
  return queries;
}

std::vector<LcrQuery> ReachableLcrQueries(const LabeledDigraph& graph,
                                          size_t count,
                                          Label labels_per_query,
                                          uint64_t seed) {
  Xoshiro256ss rng(seed);
  const size_t n = graph.NumVertices();
  const Label num_labels = graph.NumLabels();
  labels_per_query = std::min(labels_per_query, num_labels);
  std::vector<LcrQuery> queries;
  queries.reserve(count);
  size_t attempts = 0;
  const size_t max_attempts = 64 * count + 1024;
  while (queries.size() < count && attempts < max_attempts && n > 0 &&
         num_labels > 0) {
    ++attempts;
    VertexId v = static_cast<VertexId>(rng.NextBounded(n));
    const VertexId start = v;
    LabelSet used = 0;
    const size_t steps = 1 + rng.NextBounded(16);
    for (size_t i = 0; i < steps; ++i) {
      auto arcs = graph.OutArcs(v);
      if (arcs.empty()) break;
      const auto& arc = arcs[rng.NextBounded(arcs.size())];
      // Keep the constraint narrow: prefer staying within labels already
      // used once the budget is reached.
      const LabelSet bit = LabelSet{1} << arc.label;
      if ((used | bit) != used &&
          static_cast<Label>(__builtin_popcount(used)) >= labels_per_query) {
        break;
      }
      used |= bit;
      v = arc.vertex;
    }
    if (used == 0) continue;
    // Widen the mask to exactly labels_per_query labels when possible.
    while (static_cast<Label>(__builtin_popcount(used)) < labels_per_query) {
      used |= LabelSet{1} << rng.NextBounded(num_labels);
    }
    queries.push_back({start, v, used});
  }
  return queries;
}

}  // namespace reach
