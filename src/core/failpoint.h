#ifndef REACH_CORE_FAILPOINT_H_
#define REACH_CORE_FAILPOINT_H_

#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/rng.h"

namespace reach {

#ifndef REACH_FAILPOINTS
#define REACH_FAILPOINTS 0
#endif

/// True when the production failpoint *sites* are compiled in
/// (`-DREACH_FAILPOINTS=ON`). The registry below is always available —
/// tests can drive `Evaluate` directly either way — but the
/// `REACH_FAILPOINT(site)` calls sprinkled through the library are
/// zero-cost no-ops unless this is set (docs/ROBUSTNESS.md).
inline constexpr bool kFailpointsCompiled = REACH_FAILPOINTS != 0;

/// What a triggered failpoint asks its site to do. Sites honor kError /
/// kPartial / kEintr in whatever way makes sense locally (throw, return
/// false, truncate, pretend the syscall was interrupted); kDelay is
/// served inside `Evaluate` itself — the calling thread has already
/// slept by the time the hit is returned — so latency-only sites need no
/// handling code at all.
enum class FailpointAction : uint8_t {
  kNone = 0,  // site not armed, or armed but didn't fire this time
  kError,     // fail the operation
  kPartial,   // complete only `arg` bytes/items, then fail
  kEintr,     // simulate an interrupted syscall (EINTR)
  kDelay,     // already slept `arg` ms inside Evaluate
};

/// Stable action name ("error", "delay", ...) for messages and logs.
const char* FailpointActionName(FailpointAction action);

/// Outcome of evaluating one site. Truthiness == "the failpoint fired".
struct FailpointHit {
  FailpointAction action = FailpointAction::kNone;
  /// kPartial: byte/item budget; kDelay: milliseconds slept; else 0.
  uint64_t arg = 0;

  explicit operator bool() const { return action != FailpointAction::kNone; }
};

/// Thrown by sites that inject a failure into exception-based control
/// flow (e.g. the serve rebuild path). Distinguishable from organic
/// errors in logs by the "failpoint" prefix of its message.
class FailpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Process-wide table of named fault-injection sites — a deterministic
/// chaos harness for the serve/snapshot paths (docs/ROBUSTNESS.md).
///
/// Sites are armed from the `REACH_FAILPOINTS` environment variable (read
/// once, on first use, only when compiled in) or programmatically via
/// `Arm`/`Configure`. Spec grammar, entries separated by ';' (or ',' at
/// top level):
///
///   serve.rebuild=error(p=0.5,seed=7);snapshot.write=partial(bytes=4096)
///
/// Actions: `error`, `delay(ms=N)`, `partial(bytes=N)`, `eintr`, and
/// `off` (disarm). Common parameters: `p` (fire probability, default 1),
/// `seed` (per-site RNG seed, default = hash of the site name, so runs
/// are reproducible even unseeded), `times` (max fires, default
/// unlimited), `skip` (ignore the first N evaluations).
///
/// Thread-safe; `Evaluate` is a table lookup under one mutex — fine for
/// chaos builds, and never reached in production builds where the site
/// macro compiles away.
class FailpointRegistry {
 public:
  static FailpointRegistry& Global();

  /// Parses a full multi-site spec and arms every entry. On a malformed
  /// entry, arms nothing, reports via `*error`, and returns false.
  bool Configure(const std::string& spec, std::string* error = nullptr);

  /// Arms (or re-arms, resetting state) one site from an action spec
  /// like "error(p=0.5,seed=7)". "off" disarms.
  bool Arm(const std::string& site, const std::string& action_spec,
           std::string* error = nullptr);

  void Disarm(const std::string& site);
  void DisarmAll();

  /// The heart of the harness: called by `REACH_FAILPOINT(site)`. Rolls
  /// the site's seeded RNG and returns what (if anything) should fail;
  /// for kDelay the sleep happens here, off-lock.
  FailpointHit Evaluate(const char* site);

  /// Cumulative fires of `site` since it was (last) armed.
  uint64_t HitCount(const std::string& site) const;

  /// Currently armed site names, unordered.
  std::vector<std::string> ArmedSites() const;

 private:
  struct Site {
    FailpointAction action = FailpointAction::kNone;
    double p = 1.0;
    uint64_t delay_ms = 0;
    uint64_t bytes = 0;
    int64_t times_left = -1;  // -1 = unlimited
    uint64_t skip_left = 0;
    Xoshiro256ss rng{0};
    uint64_t hits = 0;
  };

  FailpointRegistry();

  mutable std::mutex mu_;
  std::unordered_map<std::string, Site> sites_;
};

#if REACH_FAILPOINTS
#define REACH_FAILPOINT(site) ::reach::FailpointRegistry::Global().Evaluate(site)
#else
// Compiled out: a constant empty hit the optimizer folds away entirely.
#define REACH_FAILPOINT(site) (::reach::FailpointHit{})
#endif

}  // namespace reach

#endif  // REACH_CORE_FAILPOINT_H_
