#ifndef REACH_CORE_SERIALIZE_H_
#define REACH_CORE_SERIALIZE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace reach {

/// Versioned serialization envelope shared by every index `Save`/`Load`
/// (the persistence piece of the §5 "integration into GDBMSs" challenge).
///
/// Layout, little-endian, preceding the index-specific payload:
///
///   u32 magic    kEnvelopeMagic ("RCHX")
///   u32 version  kEnvelopeVersion
///   u32 len      length of the format name
///   u8[len]      format name, e.g. "pll" or "p2h"
///
/// The payload bytes that follow are exactly what the unversioned
/// pre-envelope formats wrote, so golden layouts (and the byte-identity
/// guarantees of the parallel builders, docs/PARALLELISM.md) still hold.
/// A mismatched magic, version, or format name is reported as a typed
/// `LoadStatus` instead of being misread as payload.
inline constexpr uint32_t kEnvelopeMagic = 0x52434858u;  // "RCHX"
inline constexpr uint32_t kEnvelopeVersion = 1;

/// Why a `Load` failed (or didn't).
enum class LoadStatus {
  kOk,
  /// The stream does not start with the envelope magic — not a reach
  /// index stream at all (or one saved before the envelope existed).
  kBadMagic,
  /// Envelope present but written by an incompatible format revision.
  kBadVersion,
  /// Envelope present but for a different index technique (e.g. a "p2h"
  /// stream handed to a "pll" index).
  kWrongIndex,
  /// Envelope valid but the payload is truncated or malformed.
  kCorrupt,
  /// The index type has no serialization capability.
  kUnsupported,
};

/// Human-readable description of `status` (stable, for error messages).
const char* LoadStatusMessage(LoadStatus status);

/// Outcome of a `Load`: tests `true` iff the index was restored. On
/// failure `detail` carries the offending value (observed name or
/// version) when one is available.
struct LoadResult {
  LoadStatus status = LoadStatus::kOk;
  std::string detail;

  explicit operator bool() const { return status == LoadStatus::kOk; }
};

/// Writes the envelope for `format_name`. `version` is overridable only
/// so tests can produce version-mismatch streams.
bool WriteEnvelope(std::ostream& out, std::string_view format_name,
                   uint32_t version = kEnvelopeVersion);

/// Consumes and validates an envelope, expecting `expected_format_name`.
/// On any failure the stream position is unspecified and the returned
/// status says which check failed first (magic, then version, then name).
LoadResult ReadEnvelope(std::istream& in,
                        std::string_view expected_format_name);

namespace serialize_detail {

/// POD + u32-vector stream helpers shared by the index payload codecs.
/// The byte layout (u64 count + raw element bytes) predates the envelope
/// and must not change.
void WriteBytes(std::ostream& out, const void* data, size_t bytes);
bool ReadBytes(std::istream& in, void* data, size_t bytes);

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  WriteBytes(out, &value, sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  return ReadBytes(in, value, sizeof(T));
}

void WriteU32Vec(std::ostream& out, const std::vector<uint32_t>& v);
/// Reads a vector written by `WriteU32Vec`; fails (returns false) when
/// the recorded size exceeds `max_size`, so corrupted streams cannot
/// trigger huge allocations.
bool ReadU32Vec(std::istream& in, std::vector<uint32_t>* v,
                uint64_t max_size);

}  // namespace serialize_detail

}  // namespace reach

#endif  // REACH_CORE_SERIALIZE_H_
