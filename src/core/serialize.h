#ifndef REACH_CORE_SERIALIZE_H_
#define REACH_CORE_SERIALIZE_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace reach {

/// Versioned serialization envelope shared by every index `Save`/`Load`
/// (the persistence piece of the §5 "integration into GDBMSs" challenge).
///
/// Layout, little-endian, preceding the index-specific payload:
///
///   u32 magic    kEnvelopeMagic ("RCHX")
///   u32 version  kEnvelopeVersion
///   u32 len      length of the format name
///   u8[len]      format name, e.g. "pll" or "p2h"
///
/// The payload bytes that follow are exactly what the unversioned
/// pre-envelope formats wrote, so golden layouts (and the byte-identity
/// guarantees of the parallel builders, docs/PARALLELISM.md) still hold.
/// A mismatched magic, version, or format name is reported as a typed
/// `LoadStatus` instead of being misread as payload.
inline constexpr uint32_t kEnvelopeMagic = 0x52434858u;  // "RCHX"
inline constexpr uint32_t kEnvelopeVersion = 1;

/// Why a `Load` failed (or didn't).
enum class LoadStatus {
  kOk,
  /// The stream does not start with the envelope magic — not a reach
  /// index stream at all (or one saved before the envelope existed).
  kBadMagic,
  /// Envelope present but written by an incompatible format revision.
  kBadVersion,
  /// Envelope present but for a different index technique (e.g. a "p2h"
  /// stream handed to a "pll" index).
  kWrongIndex,
  /// Envelope valid but the payload is truncated or malformed.
  kCorrupt,
  /// The index type has no serialization capability.
  kUnsupported,
};

/// Human-readable description of `status` (stable, for error messages).
const char* LoadStatusMessage(LoadStatus status);

/// Outcome of a `Load`: tests `true` iff the index was restored. On
/// failure `detail` carries the offending value (observed name or
/// version) or — for corrupt payloads — the failing section and byte
/// offset, when one is available.
struct LoadResult {
  LoadStatus status = LoadStatus::kOk;
  std::string detail;

  explicit operator bool() const { return status == LoadStatus::kOk; }
};

/// Full one-line failure description: the status message plus the
/// result's detail (failing section / byte offset / observed value).
std::string LoadStatusMessage(const LoadResult& result);

/// A `kCorrupt` result pinned to a payload location, e.g.
/// `CorruptAt("rank table", 24)` -> detail "rank table at byte 24".
LoadResult CorruptAt(std::string_view section, uint64_t offset);

/// Writes the envelope for `format_name`. `version` is overridable only
/// so tests can produce version-mismatch streams.
bool WriteEnvelope(std::ostream& out, std::string_view format_name,
                   uint32_t version = kEnvelopeVersion);

/// Consumes and validates an envelope, expecting `expected_format_name`.
/// On any failure the stream position is unspecified and the returned
/// status says which check failed first (magic, then version, then name).
LoadResult ReadEnvelope(std::istream& in,
                        std::string_view expected_format_name);

/// --- RCHX v2 snapshot files (docs/SNAPSHOTS.md) -------------------------
///
/// The v1 envelope above frames *streams*: payload bytes are decoded
/// element by element into freshly allocated structures. Snapshot files
/// are the zero-copy alternative: the same magic, version 2, followed by
/// an aligned-section table, with every payload section written
/// page-aligned so `Load` can mmap the file and point sealed
/// `FlatLabelPool` views directly at the mapping — no copy, no reseal.
///
/// Layout, little-endian:
///
///   u32 magic          kEnvelopeMagic ("RCHX")
///   u32 version        kSnapshotVersion (2)
///   u32 len            length of the format name
///   u8[len]            format name, e.g. "pll"
///   u32 section_count
///   (zero pad to 8-byte boundary)
///   SnapshotSectionRecord[section_count]
///   (zero pad; payloads at their recorded page-aligned offsets)
///
/// Section kinds are format-private integers; the table is validated —
/// alignment, bounds, duplicates — before any payload byte is touched.
/// A v2 file handed to a v1 stream `Load` fails closed as kBadVersion.
inline constexpr uint32_t kSnapshotVersion = 2;
inline constexpr uint64_t kSnapshotPageAlign = 4096;
inline constexpr uint32_t kMaxSnapshotSections = 64;

struct SnapshotSectionRecord {
  uint64_t offset;  // absolute file offset, multiple of `align`
  uint64_t size;    // payload bytes (padding excluded)
  uint32_t kind;    // format-private section id, unique per file
  uint32_t align;   // power of two; kSnapshotPageAlign as written
};
static_assert(sizeof(SnapshotSectionRecord) == 24);

/// Accumulates sections, then writes the whole snapshot file. Section
/// payload pointers must stay valid until `WriteTo` returns.
class SnapshotWriter {
 public:
  explicit SnapshotWriter(std::string format_name)
      : name_(std::move(format_name)) {}

  void AddSection(uint32_t kind, const void* data, uint64_t size);

  bool WriteTo(std::ostream& out) const;

 private:
  struct PendingSection {
    uint32_t kind;
    const void* data;
    uint64_t size;
  };
  std::string name_;
  std::vector<PendingSection> sections_;
};

/// Validated view over snapshot-file bytes (typically a `MappedFile`
/// mapping). `Parse` checks the header and the entire section table —
/// misaligned or out-of-bounds tables are rejected before any payload
/// byte is read; failures carry the section kind and byte offset in
/// `LoadResult::detail`.
class SnapshotView {
 public:
  LoadResult Parse(const uint8_t* data, size_t size,
                   std::string_view expected_format_name);

  bool Has(uint32_t kind) const;
  /// Payload bytes of section `kind` (empty span when absent).
  std::span<const uint8_t> Section(uint32_t kind) const;
  /// Typed view of a section; empty when absent or when the byte size is
  /// not a multiple of sizeof(T) (the caller sees a size mismatch, never
  /// a partial element).
  template <typename T>
  std::span<const T> TypedSection(uint32_t kind) const {
    const std::span<const uint8_t> raw = Section(kind);
    if (raw.empty() || raw.size() % sizeof(T) != 0) return {};
    return {reinterpret_cast<const T*>(raw.data()), raw.size() / sizeof(T)};
  }

 private:
  const uint8_t* base_ = nullptr;
  std::vector<SnapshotSectionRecord> table_;
};

/// Crash-safe file replacement: streams `write` into `path + ".tmp"`,
/// flushes and fsyncs the temp file, atomically renames it over `path`,
/// then fsyncs the parent directory. A crash (or injected failure) at any
/// point leaves `path` either untouched or fully replaced — readers can
/// never observe a torn file, which is what lets the validated snapshot
/// reader trust whatever it mmaps (docs/ROBUSTNESS.md). On failure the
/// temp file is removed best-effort and `path` keeps its old bytes.
/// Non-POSIX builds fall back to plain rename (atomicity best-effort).
bool WriteFileAtomic(const std::string& path,
                     const std::function<bool(std::ostream&)>& write,
                     std::string* error = nullptr);

namespace serialize_detail {

/// POD + u32-vector stream helpers shared by the index payload codecs.
/// The byte layout (u64 count + raw element bytes) predates the envelope
/// and must not change.
void WriteBytes(std::ostream& out, const void* data, size_t bytes);
bool ReadBytes(std::istream& in, void* data, size_t bytes);

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  WriteBytes(out, &value, sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  return ReadBytes(in, value, sizeof(T));
}

void WriteU32Vec(std::ostream& out, const std::vector<uint32_t>& v);
/// Reads a vector written by `WriteU32Vec`; fails (returns false) when
/// the recorded size exceeds `max_size`, so corrupted streams cannot
/// trigger huge allocations.
bool ReadU32Vec(std::istream& in, std::vector<uint32_t>* v,
                uint64_t max_size);

}  // namespace serialize_detail

}  // namespace reach

#endif  // REACH_CORE_SERIALIZE_H_
