#ifndef REACH_CORE_WORKSPACE_POOL_H_
#define REACH_CORE_WORKSPACE_POOL_H_

#include <cstddef>
#include <deque>

#include "core/search_workspace.h"
#include "obs/query_probe.h"

namespace reach {

/// A bank of `SearchWorkspace` slots for indexes whose queries traverse:
/// slot 0 serves plain `Query()` calls, and `BatchQuery` hands each
/// concurrent worker its own slot so visited marks, scratch queues, and
/// probe counters never race. `Probe()` aggregation sums every slot, so
/// metrics stay correct under concurrency (docs/OBSERVABILITY.md).
///
/// `EnsureSlots` is NOT safe against concurrent queries — callers grow
/// the bank before fanning out (the `BatchQuery` implementations do).
/// Slot references stay valid across growth (deque storage).
class WorkspacePool {
 public:
  WorkspacePool() { slots_.emplace_back(); }

  /// Grows the bank to at least `n` slots. Call before a parallel phase.
  void EnsureSlots(size_t n) const {
    while (slots_.size() < n) slots_.emplace_back();
  }

  size_t NumSlots() const { return slots_.size(); }

  /// The workspace of `slot` (< NumSlots()). Slot 0 is the serial-path
  /// workspace.
  SearchWorkspace& Slot(size_t slot) const { return slots_[slot]; }

  /// Sum of all slots' probes — what `ReachabilityIndex::Probe()` should
  /// report after any mix of serial and batched queries.
  QueryProbe AggregateProbe() const {
    QueryProbe merged;
    for (const SearchWorkspace& ws : slots_) merged.MergeFrom(ws.probe());
    return merged;
  }

  void ResetProbes() const {
    for (SearchWorkspace& ws : slots_) ws.probe().Reset();
  }

 private:
  // mutable: probes and traversal scratch mutate under const Query().
  mutable std::deque<SearchWorkspace> slots_;
};

/// The no-traversal sibling: a bank of plain `QueryProbe`s for complete
/// indexes (transitive closure, 2-hop) whose queries read immutable label
/// state but still count into a probe.
class ProbePool {
 public:
  ProbePool() { slots_.emplace_back(); }

  void EnsureSlots(size_t n) const {
    while (slots_.size() < n) slots_.emplace_back();
  }

  size_t NumSlots() const { return slots_.size(); }

  QueryProbe& Slot(size_t slot) const { return slots_[slot]; }

  QueryProbe Aggregate() const {
    QueryProbe merged;
    for (const QueryProbe& probe : slots_) merged.MergeFrom(probe);
    return merged;
  }

  void Reset() const {
    for (QueryProbe& probe : slots_) probe.Reset();
  }

 private:
  mutable std::deque<QueryProbe> slots_;
};

}  // namespace reach

#endif  // REACH_CORE_WORKSPACE_POOL_H_
