#ifndef REACH_CORE_DYNAMIC_BITSET_H_
#define REACH_CORE_DYNAMIC_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace reach {

/// A fixed-size bitset sized at runtime. Used for transitive-closure rows,
/// dual-labeling link closures, and visited sets where epochs don't fit.
class DynamicBitset {
 public:
  DynamicBitset() = default;

  /// Creates a bitset of `num_bits` bits, all clear.
  explicit DynamicBitset(size_t num_bits)
      : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

  /// Number of bits.
  size_t size() const { return num_bits_; }

  /// Sets bit `i`.
  void Set(size_t i) { words_[i >> 6] |= (uint64_t{1} << (i & 63)); }

  /// Clears bit `i`.
  void Reset(size_t i) { words_[i >> 6] &= ~(uint64_t{1} << (i & 63)); }

  /// Tests bit `i`.
  bool Test(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  /// Clears all bits.
  void Clear() { words_.assign(words_.size(), 0); }

  /// Bitwise-ors `other` into this bitset; sizes must match. Returns true
  /// iff any bit changed (used for fixpoint TC computation).
  bool UnionWith(const DynamicBitset& other) {
    bool changed = false;
    for (size_t w = 0; w < words_.size(); ++w) {
      const uint64_t merged = words_[w] | other.words_[w];
      changed |= merged != words_[w];
      words_[w] = merged;
    }
    return changed;
  }

  /// True iff every set bit of this bitset is also set in `other`.
  bool IsSubsetOf(const DynamicBitset& other) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      if ((words_[w] & ~other.words_[w]) != 0) return false;
    }
    return true;
  }

  /// Number of set bits.
  size_t Count() const {
    size_t count = 0;
    for (uint64_t w : words_) count += static_cast<size_t>(__builtin_popcountll(w));
    return count;
  }

  /// Heap bytes held by this bitset.
  size_t MemoryBytes() const { return words_.size() * sizeof(uint64_t); }

  friend bool operator==(const DynamicBitset&, const DynamicBitset&) = default;

 private:
  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace reach

#endif  // REACH_CORE_DYNAMIC_BITSET_H_
