#ifndef REACH_CORE_QUERY_WORKLOAD_H_
#define REACH_CORE_QUERY_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "graph/digraph.h"
#include "graph/labeled_digraph.h"
#include "graph/types.h"

namespace reach {

/// A single plain reachability query Qr(s, t).
struct QueryPair {
  VertexId source = 0;
  VertexId target = 0;
};

/// A label-constrained reachability query Qr(s, t, alpha) with an
/// alternation constraint alpha = (l1 ∪ l2 ∪ ...)* given as a LabelSet.
struct LcrQuery {
  VertexId source = 0;
  VertexId target = 0;
  LabelSet allowed = 0;
};

/// Deterministic query-workload generators mirroring the methodology of
/// the surveyed papers: uniformly random pairs (dominated by unreachable
/// pairs on sparse graphs — the case §5 argues partial indexes without
/// false negatives exploit), plus explicitly reachable-biased ("positive")
/// and unreachable ("negative") workloads.

/// `count` uniformly random (s, t) pairs.
std::vector<QueryPair> RandomPairs(const Digraph& graph, size_t count,
                                   uint64_t seed);

/// `count` pairs with t reachable from s (found by random walks / BFS
/// sampling; falls back to (v, v) if the graph has no edges).
std::vector<QueryPair> ReachablePairs(const Digraph& graph, size_t count,
                                      uint64_t seed);

/// `count` pairs with t NOT reachable from s. May return fewer if the
/// graph is (nearly) complete and negatives are hard to sample.
std::vector<QueryPair> UnreachablePairs(const Digraph& graph, size_t count,
                                        uint64_t seed);

/// `count` LCR queries with uniformly random endpoints and a random
/// constraint of exactly `labels_per_query` distinct labels.
std::vector<LcrQuery> RandomLcrQueries(const LabeledDigraph& graph,
                                       size_t count, Label labels_per_query,
                                       uint64_t seed);

/// `count` LCR queries that are true (sampled by constrained random walks;
/// the constraint is the walk's label set, possibly widened to
/// `labels_per_query` labels).
std::vector<LcrQuery> ReachableLcrQueries(const LabeledDigraph& graph,
                                          size_t count,
                                          Label labels_per_query,
                                          uint64_t seed);

}  // namespace reach

#endif  // REACH_CORE_QUERY_WORKLOAD_H_
