#include "core/index_factory.h"

#include <cstdlib>

#include "core/fastpath_index.h"
#include "core/scc_condensing_index.h"
#include "lcr/gtc_index.h"
#include "lcr/landmark_index.h"
#include "lcr/lcr_bfs.h"
#include "lcr/pruned_labeled_two_hop.h"
#include "lcr/tree_lcr_index.h"
#include "plain/auto_index.h"
#include "plain/bfl.h"
#include "plain/chain_cover.h"
#include "plain/dagger.h"
#include "plain/dbl.h"
#include "plain/dual_labeling.h"
#include "plain/feline.h"
#include "plain/ferrari.h"
#include "plain/grail.h"
#include "plain/gripp.h"
#include "plain/ip_label.h"
#include "plain/oreach.h"
#include "plain/preach.h"
#include "plain/pruned_two_hop.h"
#include "plain/tree_cover.h"
#include "traversal/online_search.h"
#include "traversal/transitive_closure.h"

namespace reach {

namespace {

constexpr char kLcrPrefix[] = "lcr:";
constexpr size_t kLcrPrefixLen = 4;

// Sealed-label storage keys shared by the 2-hop families
// (docs/SNAPSHOTS.md): `:compress=1[:block=N][:budget_mb=N]`.
TwoHopStorageOptions StorageFromSpec(const IndexSpec& spec) {
  TwoHopStorageOptions storage;
  storage.compress = spec.Param("compress", 0) != 0;
  storage.block_entries = spec.Param("block", storage.block_entries);
  storage.budget_mb = spec.Param("budget_mb", 0);
  return storage;
}

std::unique_ptr<ReachabilityIndex> MakePlain(const IndexSpec& spec) {
  const std::string& name = spec.base;
  if (name == "bfs") return std::make_unique<OnlineSearch>(TraversalKind::kBfs);
  if (name == "dfs") return std::make_unique<OnlineSearch>(TraversalKind::kDfs);
  if (name == "bibfs") {
    return std::make_unique<OnlineSearch>(TraversalKind::kBiBfs);
  }
  if (name == "tc") return std::make_unique<TransitiveClosure>();
  if (name == "treecover") return MakeCondensing<TreeCover>();
  if (name == "dual") return MakeCondensing<DualLabeling>();
  if (name == "chaincover") return MakeCondensing<ChainCover>();
  if (name == "grail") return MakeCondensing<Grail>(spec.Param("k", 3));
  if (name == "gripp") return std::make_unique<Gripp>();
  if (name == "ferrari") return MakeCondensing<Ferrari>(spec.Param("k", 4));
  if (name == "pll" || name == "tfl" || name == "tol-random" ||
      name == "tol-revdeg") {
    VertexOrder order = VertexOrder::kDegree;
    if (name == "tfl") order = VertexOrder::kTopological;
    if (name == "tol-random") order = VertexOrder::kRandom;
    if (name == "tol-revdeg") order = VertexOrder::kReverseDegree;
    return std::make_unique<PrunedTwoHop>(
        order, 0x70'6c'6cULL, 0, StorageFromSpec(spec),
        spec.Param("staleness", PrunedTwoHop::kDefaultStalenessBudget));
  }
  if (name == "dbl") return std::make_unique<Dbl>();
  if (name == "dagger") {
    return std::make_unique<Dagger>(
        spec.Param("k", 3), 0x64'61'67ULL,
        spec.Param("staleness", Dagger::kDefaultStalenessBudget));
  }
  if (name == "oreach") return MakeCondensing<OReach>(spec.Param("k", 32));
  if (name == "ip") return MakeCondensing<IpLabel>(spec.Param("k", 4));
  if (name == "bfl") return MakeCondensing<Bfl>(spec.Param("bits", 256));
  if (name == "feline") return MakeCondensing<Feline>();
  if (name == "preach") return MakeCondensing<Preach>();
  if (name == "auto") return std::make_unique<AutoIndex>();
  return nullptr;
}

std::unique_ptr<LcrIndex> MakeLcr(const IndexSpec& spec) {
  const std::string& name = spec.base;
  if (name == "bfs" || name == "lcr-bfs") {
    return std::make_unique<LcrOnlineBfs>();
  }
  if (name == "gtc") return std::make_unique<GtcIndex>();
  if (name == "tree" || name == "jin-tree") {
    return std::make_unique<TreeLcrIndex>();
  }
  if (name == "landmark") {
    return std::make_unique<LandmarkIndex>(spec.Param("k", 16),
                                           spec.Param("b", 2));
  }
  if (name == "pll" || name == "p2h") {
    return std::make_unique<PrunedLabeledTwoHop>(
        0, StorageFromSpec(spec),
        spec.Param("staleness",
                   PrunedLabeledTwoHop::kDefaultStalenessBudget));
  }
  return nullptr;
}

}  // namespace

IndexSpec::IndexSpec(std::string spec_text) : text(std::move(spec_text)) {
  std::string rest = text;
  if (rest.compare(0, kLcrPrefixLen, kLcrPrefix) == 0) {
    labeled = true;
    rest = rest.substr(kLcrPrefixLen);
  }
  const size_t colon = rest.find(':');
  base = rest.substr(0, colon);
  if (colon != std::string::npos) params_ = rest.substr(colon);
}

size_t IndexSpec::Param(const std::string& key, size_t fallback) const {
  const std::string needle = ":" + key + "=";
  const size_t pos = params_.find(needle);
  if (pos == std::string::npos) return fallback;
  return static_cast<size_t>(
      std::strtoull(params_.c_str() + pos + needle.size(), nullptr, 10));
}

MadeIndex MakeIndex(const IndexSpec& spec) {
  MadeIndex made;
  if (spec.labeled) {
    made.lcr = MakeLcr(spec);
    if (!made.lcr) return made;
    made.caps.labeled = true;
    // PrunedLabeledTwoHop is the one LCR technique with incremental
    // ApplyUpdate (the DLCR row of Table 2); it absorbs deletes too.
    auto* p2h = dynamic_cast<PrunedLabeledTwoHop*>(made.lcr.get());
    made.caps.dynamic = p2h != nullptr;
    made.caps.decremental = p2h != nullptr && p2h->SupportsDeletions();
    made.caps.complete = made.lcr->IsComplete();
    made.caps.serializable = made.lcr->SupportsSerialization();
    return made;
  }
  made.plain = MakePlain(spec);
  if (!made.plain) return made;
  auto* dynamic =
      dynamic_cast<DynamicReachabilityIndex*>(made.plain.get());
  made.caps.dynamic = dynamic != nullptr;
  made.caps.decremental = dynamic != nullptr && dynamic->SupportsDeletions();
  // AutoIndex only knows its completeness after Build picks a technique.
  made.caps.complete = spec.base != "auto" && made.plain->IsComplete();
  made.caps.serializable = made.plain->SupportsSerialization();
  if (spec.Param("fastpath", 0) != 0) {
    ObservationStack::Options options;
    options.num_supports = spec.Param("supports", options.num_supports);
    options.num_anti = spec.Param("anti", options.num_anti);
    // The dynamic instantiation keeps `ApplyUpdate` (and thereby
    // `caps.dynamic` / `caps.decremental`) reachable through the
    // wrapper; `complete` follows the inner index; serialization is
    // dropped — the observation stack is rebuilt from the graph, never
    // persisted.
    if (made.caps.dynamic) {
      made.plain = std::make_unique<DynamicFastPathIndex>(
          std::move(made.plain), options);
    } else {
      made.plain =
          std::make_unique<FastPathIndex>(std::move(made.plain), options);
    }
    made.caps.serializable = false;
  }
  return made;
}

std::vector<std::string> DefaultIndexSpecs(IndexFamily family) {
  if (family == IndexFamily::kLcr) {
    return {"lcr:bfs", "lcr:gtc", "lcr:tree", "lcr:landmark", "lcr:pll"};
  }
  return {"bfs",  "dfs",        "bibfs",  "tc",     "treecover", "dual",
          "chaincover", "gripp", "grail",  "ferrari", "pll",      "tfl",
          "tol-random", "dbl",   "dagger", "oreach",  "ip",       "bfl",
          "feline",     "preach"};
}

std::vector<SpecDoc> DescribeIndexSpecs(IndexFamily family) {
  // Write-capability strings, kept in lockstep with what `MakeIndex`
  // reports in `IndexCaps` (index_factory_test pins each row).
  static const char* const kStatic = "static";
  static const char* const kInsertOnly = "dynamic (insert-only)";
  static const char* const kInsertDelete = "dynamic (insert+delete)";
  if (family == IndexFamily::kLcr) {
    return {
        {"lcr:bfs", "", "label-constrained online BFS baseline", kStatic},
        {"lcr:gtc", "", "generalized transitive closure", kStatic},
        {"lcr:tree", "", "tree-based LCR index (Jin et al.)", kStatic},
        {"lcr:landmark", "k=<n> landmarks (16), b=<n> budget (2)",
         "landmark index", kStatic},
        {"lcr:pll",
         "compress=1, block=<n> (64), budget_mb=<n>, staleness=<n> (32)",
         "label-constrained pruned 2-hop (P2H+)", kInsertDelete},
    };
  }
  return {
      {"bfs", "", "online breadth-first search (no index)", kStatic},
      {"dfs", "", "online depth-first search (no index)", kStatic},
      {"bibfs", "", "online bidirectional BFS (no index)", kStatic},
      {"tc", "", "full transitive closure bitmap", kStatic},
      {"treecover", "", "Agrawal et al. optimal tree cover", kStatic},
      {"dual", "", "dual labeling (tree + non-tree t-links)", kStatic},
      {"chaincover", "", "chain cover (Jagadish)", kStatic},
      {"gripp", "", "GRIPP interval traversal", kStatic},
      {"grail", "k=<n> interval labelings (3)", "GRAIL randomized intervals",
       kStatic},
      {"ferrari", "k=<n> intervals per vertex (4)",
       "FERRARI adaptive exact/approximate intervals", kStatic},
      {"pll",
       "compress=1, block=<n> (64), budget_mb=<n>, staleness=<n> (32)",
       "pruned 2-hop labeling, degree order", kInsertDelete},
      {"tfl", "staleness=<n> (32)", "pruned 2-hop labeling, topological order",
       kInsertDelete},
      {"tol-random", "staleness=<n> (32)",
       "pruned 2-hop labeling, random order", kInsertDelete},
      {"tol-revdeg", "staleness=<n> (32)",
       "pruned 2-hop labeling, reverse-degree order", kInsertDelete},
      {"dbl", "", "dual Bloom labels", kInsertOnly},
      {"dagger", "k=<n> interval labelings (3), staleness=<n> (64)",
       "dynamic DAGGER intervals", kInsertDelete},
      {"oreach", "k=<n> supportive vertices (32)",
       "O'Reach observation stack + guided bidirectional BFS", kStatic},
      {"ip", "k=<n> label entries per side (4)",
       "IP independent-permutation labels", kStatic},
      {"bfl", "bits=<n> Bloom-filter width (256)", "Bloom-filter labeling",
       kStatic},
      {"feline", "", "FELINE planar-dominance coordinates", kStatic},
      {"preach", "", "PReaCH pruned contraction-hierarchy search", kStatic},
      {"auto", "", "Table 1 advisor: picks a technique per graph", kStatic},
      {"<any>:fastpath=1", "supports=<n> (32), anti=<n> (32)",
       "wrap any plain spec in the O(1) observation-stack fast path",
       "follows the wrapped spec"},
  };
}

}  // namespace reach
