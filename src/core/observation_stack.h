#ifndef REACH_CORE_OBSERVATION_STACK_H_
#define REACH_CORE_OBSERVATION_STACK_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/digraph.h"
#include "graph/types.h"

namespace reach {

/// The O'Reach-style constant-time observation stack (paper §3.2;
/// PAPERS.md: "O'Reach: Even Faster Reachability in Large Graphs"): a
/// small bundle of precomputed per-vertex observations that settles most
/// reachability queries — in both the reachable- and unreachable-biased
/// regimes — with a handful of array lookups, before any index is
/// consulted. Shared by `OReach` (whose filters it *is*) and
/// `FastPathIndex` (which layers it in front of any wrapped index).
///
/// Observations, in evaluation order of `Verdict`:
///  * same-SCC: s and t in one strongly connected component — positive.
///    General digraphs are handled by condensing internally; every other
///    observation is evaluated on the SCC DAG.
///  * extended topological orders: two topological ranks (min- and
///    max-tie Kahn) plus forward/backward longest-path levels; any order
///    decreasing from s to t proves unreachability.
///  * DFS-interval containment: [pre, post) intervals of one DFS spanning
///    forest whose tree edges are real edges, so t inside s's interval is
///    a tree-path witness — positive.
///  * supportive/anti vertex signatures: for up to 64 observation
///    vertices h, bit h of fwd_sig(v) iff v reaches h and bit h of
///    bwd_sig(v) iff h reaches v. A shared bit is a 2-hop witness
///    (positive); s -> t implies fwd_sig(t) ⊆ fwd_sig(s) and
///    bwd_sig(s) ⊆ bwd_sig(t), so either containment violation proves
///    unreachability. *Supportive* bits go to high-degree vertices (they
///    sit on many paths, maximizing positive hits); *anti* bits are
///    stratified across the topological order (their reachable sets
///    slice the DAG into bands, maximizing containment violations on
///    unreachable-biased workloads).
///
/// `Verdict` never traverses and never allocates: it is O(1) per query
/// and safe to call concurrently from any number of threads after
/// `Build` (all state is immutable).
class ObservationStack {
 public:
  struct Options {
    /// Observation vertices picked by descending degree (≤ 64 total with
    /// `num_anti`).
    size_t num_supports = 32;
    /// Observation vertices stratified across the topological order.
    size_t num_anti = 32;
  };

  ObservationStack() = default;
  explicit ObservationStack(Options options) : options_(options) {}

  /// Precomputes every observation for `graph` (general digraphs are
  /// condensed internally). Cost: O((k + 6)(V + E)) for k observation
  /// vertices — a handful of BFS/DFS sweeps.
  void Build(const Digraph& graph);

  /// Three-way constant-time verdict: +1 reachable, -1 unreachable,
  /// 0 undecided. Exact in both decided directions — an undecided query
  /// must be answered by an index or traversal.
  int Verdict(VertexId s, VertexId t) const {
    if (s == t) return 1;
    const VertexId cs = component_of_[s];
    const VertexId ct = component_of_[t];
    if (cs == ct) return 1;  // same SCC
    // Extended topological observations: every order must agree with
    // s -> t, otherwise the pair is unreachable.
    if (topo_a_[cs] >= topo_a_[ct] || topo_b_[cs] >= topo_b_[ct] ||
        fwd_level_[cs] >= fwd_level_[ct] || bwd_level_[cs] <= bwd_level_[ct]) {
      return -1;
    }
    // DFS spanning-forest containment: t a tree descendant of s.
    if (dfs_pre_[cs] < dfs_pre_[ct] && dfs_post_[ct] <= dfs_post_[cs]) {
      return 1;
    }
    // Observation-vertex signatures.
    const uint64_t fs = fwd_sig_[cs], ft = fwd_sig_[ct];
    const uint64_t bs = bwd_sig_[cs], bt = bwd_sig_[ct];
    if ((fs & bt) != 0) return 1;   // common observation vertex
    if ((ft & ~fs) != 0) return -1;  // containment contrapositive
    if ((bs & ~bt) != 0) return -1;
    return 0;
  }

  /// True once `Build` ran.
  bool built() const { return !component_of_.empty(); }

  /// Precomputed-observation footprint in bytes.
  size_t SizeBytes() const {
    return component_of_.size() * sizeof(VertexId) +
           (topo_a_.size() + topo_b_.size() + fwd_level_.size() +
            bwd_level_.size() + dfs_pre_.size() + dfs_post_.size()) *
               sizeof(uint32_t) +
           (fwd_sig_.size() + bwd_sig_.size()) * sizeof(uint64_t);
  }

  /// Number of observation (supportive + anti) vertices actually chosen.
  size_t NumObservationVertices() const { return num_observers_; }

  const Options& options() const { return options_; }

 private:
  Options options_;
  size_t num_observers_ = 0;
  // Everything below is indexed by SCC-DAG vertex except `component_of_`
  // (original vertex -> DAG vertex). On a DAG the map is a bijection.
  std::vector<VertexId> component_of_;
  std::vector<uint32_t> topo_a_;     // rank in min-tie topological order
  std::vector<uint32_t> topo_b_;     // rank in max-tie topological order
  std::vector<uint32_t> fwd_level_;  // longest path from any source
  std::vector<uint32_t> bwd_level_;  // longest path to any sink
  std::vector<uint32_t> dfs_pre_;    // DFS spanning-forest entry time
  std::vector<uint32_t> dfs_post_;   // DFS spanning-forest exit time
  std::vector<uint64_t> fwd_sig_;    // observation vertices v reaches
  std::vector<uint64_t> bwd_sig_;    // observation vertices reaching v
};

}  // namespace reach

#endif  // REACH_CORE_OBSERVATION_STACK_H_
