#ifndef REACH_CORE_REACHABILITY_INDEX_H_
#define REACH_CORE_REACHABILITY_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/edge_update.h"
#include "core/index_stats.h"
#include "core/query_workload.h"
#include "core/serialize.h"
#include "graph/digraph.h"
#include "graph/types.h"
#include "obs/query_probe.h"

namespace reach {

/// Abstract interface of a plain reachability index (paper §3).
///
/// Semantics (fixed library-wide, enforced by tests):
///  * `Query(s, t)` answers the plain reachability query Qr(s, t) of §2.1:
///    does a directed s-t path (of length >= 0) exist? Reachability is
///    reflexive: `Query(v, v) == true`.
///  * Answers are always exact. *Partial* indexes (Table 1, Index Type
///    column) fall back to index-guided online traversal internally; the
///    partial/complete distinction is visible through `IsComplete()` and
///    through performance, never through wrong answers.
///
/// Implementations keep a reference to the graph passed to `Build()` only
/// for the duration of the call unless documented otherwise (partial
/// indexes retain a pointer for guided traversal; the caller must keep the
/// graph alive as long as the index).
class ReachabilityIndex {
 public:
  virtual ~ReachabilityIndex() = default;

  /// Builds the index for `graph`, replacing any previous state.
  virtual void Build(const Digraph& graph) = 0;

  /// Answers Qr(s, t). Must be called after `Build()`.
  virtual bool Query(VertexId s, VertexId t) const = 0;

  /// Answers `queries[i]` into element i of the returned vector (1 =
  /// reachable). The default partitions the batch across the shared
  /// thread pool (src/par/, docs/PARALLELISM.md) when the index opts into
  /// concurrent queries via `PrepareConcurrentQueries`, and degrades to a
  /// serial `Query` loop otherwise — so it is always safe to call.
  /// `num_threads`: 0 = `DefaultThreads()`, 1 = serial.
  virtual std::vector<uint8_t> BatchQuery(std::span<const QueryPair> queries,
                                          size_t num_threads = 0) const;

  /// Readies the index for concurrent `QueryInSlot` streams (growing
  /// per-slot workspaces/probes) and returns the number of slots actually
  /// prepared — the concurrency contract of the library:
  ///  * A return of `slots` means full concurrency: slots `0..slots-1`
  ///    may each run one `QueryInSlot` stream in parallel.
  ///  * A return of 1 (the default) means only slot 0 exists — the plain
  ///    serial `Query` path. The index does NOT support concurrent
  ///    queries, and callers must serialize access themselves. This is an
  ///    explicit signal; earlier revisions silently degraded instead,
  ///    which concurrent callers had no way to detect.
  ///  * Wrappers may prepare fewer slots than requested when their inner
  ///    index does; callers must respect the returned count, never the
  ///    requested one.
  /// Not itself thread-safe: call before fanning out, as `BatchQuery`
  /// does. `slots == 0` is treated as 1.
  virtual size_t PrepareConcurrentQueries(size_t slots) const {
    (void)slots;
    return 1;
  }

  /// `Query(s, t)` recording into the scratch state / probe of `slot`
  /// (< the count *returned* by `PrepareConcurrentQueries`). Distinct
  /// slots may run concurrently; slot 0 is the plain `Query` path.
  virtual bool QueryInSlot(VertexId s, VertexId t, size_t slot) const {
    (void)slot;
    return Query(s, t);
  }

  /// Serialization capability (optional). `Save` writes the versioned
  /// envelope of core/serialize.h followed by an index-specific payload;
  /// `Load` validates the envelope (typed error on magic / version /
  /// format-name mismatch) and restores the index. The defaults signal
  /// "unsupported" explicitly — no silent garbage. Check
  /// `SupportsSerialization()` (also surfaced as the factory's
  /// `IndexCaps::serializable`) before relying on persistence.
  virtual bool SupportsSerialization() const { return false; }

  /// Serializes the index. Returns false on I/O failure or when the
  /// index does not support serialization.
  virtual bool Save(std::ostream& out) const {
    (void)out;
    return false;
  }

  /// Restores an index saved by `Save` of the same index type. On
  /// failure the index state is unspecified; re-`Build` before use.
  virtual LoadResult Load(std::istream& in) {
    (void)in;
    return LoadResult{LoadStatus::kUnsupported, Name()};
  }

  /// Index footprint in bytes (labels only, excluding the graph itself).
  /// This is the "index size" column of the survey's comparisons.
  virtual size_t IndexSizeBytes() const = 0;

  /// True if queries are answered from index lookups alone; false if the
  /// index may fall back to (guided) graph traversal (§3, Index Type).
  virtual bool IsComplete() const = 0;

  /// Short identifier used in benchmark tables, e.g. "grail(k=3)".
  virtual std::string Name() const = 0;

  /// Build statistics of the last `Build()` (time, phase breakdown, peak
  /// memory; size fields are technique-specific). The single source of
  /// truth for the survey's "indexing time" column.
  const IndexStats& Stats() const { return build_stats_; }

  /// Per-query instrumentation accumulated since `Build()` /
  /// `ResetProbe()`. Uninstrumented indexes report an empty probe; with
  /// REACH_METRICS=0 every probe is empty.
  virtual QueryProbe Probe() const { return QueryProbe{}; }

  /// Zeroes the probe counters (e.g. between benchmark phases).
  virtual void ResetProbe() const {}

 protected:
  /// Populated by each `Build()` via `BuildStatsScope`.
  IndexStats build_stats_;
};

/// Interface of a plain reachability index that supports incremental
/// writes (the Dynamic column of Table 1).
///
/// The write surface is one call: `ApplyUpdate(batch)`. A batch is an
/// ordered mix of inserts and deletes; the index either absorbs the whole
/// batch (possibly flagging that a background rebuild is now advisable) or
/// rejects it without side effects. Queries issued after a successful
/// `ApplyUpdate` are exact for the updated edge set — *partial* staleness
/// is never visible through answers, only through `UpdateResult::damage`
/// and `IsComplete()`.
///
/// Deletions are optional: insert-only techniques (DBL) report
/// `SupportsDeletions() == false` and reject any batch containing a
/// delete. Callers branch on the capability (surfaced as the factory's
/// `IndexCaps::decremental`), never on index names.
class DynamicReachabilityIndex : public ReachabilityIndex {
 public:
  /// Applies `batch` in order. See `UpdateResult` for the outcome
  /// contract; on `kRejected` no state changed. Like every write in the
  /// library, not thread-safe against concurrent queries — the serving
  /// layer (serve/reach_service.h) provides the concurrent facade.
  virtual UpdateResult ApplyUpdate(const UpdateBatch& batch) = 0;

  /// True if `ApplyUpdate` accepts `EdgeUpdate::Kind::kDelete`.
  virtual bool SupportsDeletions() const { return false; }

  /// Folds every update applied since the last `Build()` into a fresh
  /// build (resetting staleness/damage to zero). This is the second half
  /// of the rebuild-threshold policy: `ApplyUpdate` returns
  /// `kDeferredRebuild` when the budget is crossed, and the *caller*
  /// decides when to pay for this. Returns false when the index has
  /// nothing to fold or does not support it.
  virtual bool RebuildFromUpdates() { return false; }

  /// Deprecated single-edge insert shim, kept for one release while call
  /// sites migrate; forwards to `ApplyUpdate`.
  [[deprecated("use ApplyUpdate(UpdateBatch) instead")]] void InsertEdge(
      VertexId s, VertexId t) {
    ApplyUpdate({EdgeUpdate::Insert(s, t)});
  }
};

}  // namespace reach

#endif  // REACH_CORE_REACHABILITY_INDEX_H_
