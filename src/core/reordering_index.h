#ifndef REACH_CORE_REORDERING_INDEX_H_
#define REACH_CORE_REORDERING_INDEX_H_

#include <memory>
#include <string>
#include <utility>

#include "core/reachability_index.h"
#include "graph/reorder.h"

namespace reach {

/// Builds the wrapped index on a locality-renumbered copy of the graph
/// (docs/QUERY_ENGINE.md) and translates vertex ids at the query boundary,
/// so callers keep speaking the original numbering. The renumbering is
/// purely an in-memory layout optimization: answers are identical for any
/// strategy because reachability is invariant under vertex relabeling.
///
/// The write surface passes through the same translation: `ApplyUpdate`
/// renames each update's endpoints and forwards the batch, so a dynamic
/// inner index stays dynamic behind the wrapper (`DynamicReorderingIndex`,
/// with capability flags following the inner index).
///
/// Opt-in via `reach_cli --reorder=deg|bfs|none`.
template <typename Base>
class BasicReorderingIndex : public Base {
 public:
  /// Takes ownership of the index to wrap. For the dynamic instantiation
  /// the inner index must be a `DynamicReachabilityIndex`.
  BasicReorderingIndex(std::unique_ptr<ReachabilityIndex> inner,
                       ReorderStrategy strategy)
      : inner_(std::move(inner)), strategy_(strategy) {
    inner_dynamic_ = dynamic_cast<DynamicReachabilityIndex*>(inner_.get());
  }

  void Build(const Digraph& graph) override {
    BuildStatsScope build(&this->build_stats_);
    {
      BuildPhaseTimer timer(&this->build_stats_.phases, "reorder");
      perm_ = ComputeReordering(graph, strategy_);
      relabeled_ = RelabelDigraph(graph, perm_);
    }
    inner_->Build(relabeled_);
    // Absorb the wrapped build's breakdown so `Stats()` shows the whole
    // pipeline (reorder -> inner phases).
    const IndexStats& inner_stats = inner_->Stats();
    this->build_stats_.phases.insert(this->build_stats_.phases.end(),
                                     inner_stats.phases.begin(),
                                     inner_stats.phases.end());
    this->build_stats_.size_bytes = IndexSizeBytes();
    this->build_stats_.num_entries = inner_stats.num_entries;
  }

  /// Renames each update's endpoints into the relabeled numbering and
  /// forwards the batch. Overrides `DynamicReachabilityIndex::ApplyUpdate`
  /// in the dynamic instantiation; must not be called on a non-dynamic
  /// inner index.
  UpdateResult ApplyUpdate(const UpdateBatch& batch) {
    if (inner_dynamic_ == nullptr) {
      return UpdateResult::Rejected("inner index is not dynamic");
    }
    // Out-of-range endpoints are rejected here (validate-first) because
    // ToNew cannot translate them.
    const VertexId n = static_cast<VertexId>(perm_.old_to_new.size());
    UpdateBatch renamed;
    renamed.reserve(batch.size());
    for (const EdgeUpdate& update : batch) {
      if (update.source >= n || update.target >= n) {
        return UpdateResult::Rejected("endpoint out of range");
      }
      renamed.push_back(EdgeUpdate{update.kind, perm_.ToNew(update.source),
                                   perm_.ToNew(update.target)});
    }
    return inner_dynamic_->ApplyUpdate(renamed);
  }

  /// Follows the wrapped index (dynamic instantiation only).
  bool SupportsDeletions() const {
    return inner_dynamic_ != nullptr && inner_dynamic_->SupportsDeletions();
  }

  bool RebuildFromUpdates() {
    return inner_dynamic_ != nullptr && inner_dynamic_->RebuildFromUpdates();
  }

  bool Query(VertexId s, VertexId t) const override {
    return inner_->Query(perm_.ToNew(s), perm_.ToNew(t));
  }

  size_t PrepareConcurrentQueries(size_t slots) const override {
    return inner_->PrepareConcurrentQueries(slots);
  }

  bool QueryInSlot(VertexId s, VertexId t, size_t slot) const override {
    return inner_->QueryInSlot(perm_.ToNew(s), perm_.ToNew(t), slot);
  }

  /// Inner index plus the two permutation arrays; the relabeled graph copy
  /// is a build artifact, not index state, and is excluded (matching how
  /// indexes never count their input graph).
  size_t IndexSizeBytes() const override {
    return inner_->IndexSizeBytes() +
           (perm_.old_to_new.size() + perm_.new_to_old.size()) *
               sizeof(VertexId);
  }

  bool IsComplete() const override { return inner_->IsComplete(); }

  std::string Name() const override {
    return "reorder(" + ReorderStrategyName(strategy_) + ")+" +
           inner_->Name();
  }

  QueryProbe Probe() const override { return inner_->Probe(); }
  void ResetProbe() const override { inner_->ResetProbe(); }

  /// The wrapped index (e.g., to inspect its stats).
  const ReachabilityIndex& inner() const { return *inner_; }

  /// The permutation computed by the last `Build()`.
  const VertexPermutation& permutation() const { return perm_; }

 private:
  std::unique_ptr<ReachabilityIndex> inner_;
  DynamicReachabilityIndex* inner_dynamic_ = nullptr;  // null if static
  ReorderStrategy strategy_;
  VertexPermutation perm_;
  Digraph relabeled_;
};

using ReorderingIndex = BasicReorderingIndex<ReachabilityIndex>;
using DynamicReorderingIndex = BasicReorderingIndex<DynamicReachabilityIndex>;

}  // namespace reach

#endif  // REACH_CORE_REORDERING_INDEX_H_
