#ifndef REACH_CORE_REORDERING_INDEX_H_
#define REACH_CORE_REORDERING_INDEX_H_

#include <memory>
#include <string>
#include <utility>

#include "core/reachability_index.h"
#include "graph/reorder.h"

namespace reach {

/// Builds the wrapped index on a locality-renumbered copy of the graph
/// (docs/QUERY_ENGINE.md) and translates vertex ids at the query boundary,
/// so callers keep speaking the original numbering. The renumbering is
/// purely an in-memory layout optimization: answers are identical for any
/// strategy because reachability is invariant under vertex relabeling.
///
/// Opt-in via `reach_cli --reorder=deg|bfs|none`.
class ReorderingIndex : public ReachabilityIndex {
 public:
  /// Takes ownership of the index to wrap.
  ReorderingIndex(std::unique_ptr<ReachabilityIndex> inner,
                  ReorderStrategy strategy)
      : inner_(std::move(inner)), strategy_(strategy) {}

  void Build(const Digraph& graph) override {
    BuildStatsScope build(&build_stats_);
    {
      BuildPhaseTimer timer(&build_stats_.phases, "reorder");
      perm_ = ComputeReordering(graph, strategy_);
      relabeled_ = RelabelDigraph(graph, perm_);
    }
    inner_->Build(relabeled_);
    // Absorb the wrapped build's breakdown so `Stats()` shows the whole
    // pipeline (reorder -> inner phases).
    const IndexStats& inner_stats = inner_->Stats();
    build_stats_.phases.insert(build_stats_.phases.end(),
                               inner_stats.phases.begin(),
                               inner_stats.phases.end());
    build_stats_.size_bytes = IndexSizeBytes();
    build_stats_.num_entries = inner_stats.num_entries;
  }

  bool Query(VertexId s, VertexId t) const override {
    return inner_->Query(perm_.ToNew(s), perm_.ToNew(t));
  }

  size_t PrepareConcurrentQueries(size_t slots) const override {
    return inner_->PrepareConcurrentQueries(slots);
  }

  bool QueryInSlot(VertexId s, VertexId t, size_t slot) const override {
    return inner_->QueryInSlot(perm_.ToNew(s), perm_.ToNew(t), slot);
  }

  /// Inner index plus the two permutation arrays; the relabeled graph copy
  /// is a build artifact, not index state, and is excluded (matching how
  /// indexes never count their input graph).
  size_t IndexSizeBytes() const override {
    return inner_->IndexSizeBytes() +
           (perm_.old_to_new.size() + perm_.new_to_old.size()) *
               sizeof(VertexId);
  }

  bool IsComplete() const override { return inner_->IsComplete(); }

  std::string Name() const override {
    return "reorder(" + ReorderStrategyName(strategy_) + ")+" +
           inner_->Name();
  }

  QueryProbe Probe() const override { return inner_->Probe(); }
  void ResetProbe() const override { inner_->ResetProbe(); }

  /// The wrapped index (e.g., to inspect its stats).
  const ReachabilityIndex& inner() const { return *inner_; }

  /// The permutation computed by the last `Build()`.
  const VertexPermutation& permutation() const { return perm_; }

 private:
  std::unique_ptr<ReachabilityIndex> inner_;
  ReorderStrategy strategy_;
  VertexPermutation perm_;
  Digraph relabeled_;
};

}  // namespace reach

#endif  // REACH_CORE_REORDERING_INDEX_H_
