#ifndef REACH_CORE_LABEL_KERNELS_H_
#define REACH_CORE_LABEL_KERNELS_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>

// REACH_NO_SIMD (CMake option of the same name) is the escape hatch that
// compiles the vectorized intersection kernels out, leaving the portable
// word-parallel fallback as the only block kernel. Standalone inclusion
// defaults to SIMD enabled.
#ifndef REACH_NO_SIMD
#define REACH_NO_SIMD 0
#endif

#if !REACH_NO_SIMD && (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define REACH_LABEL_KERNELS_X86 1
#include <immintrin.h>
#else
#define REACH_LABEL_KERNELS_X86 0
#endif

namespace reach {

/// Query hot-path intersection kernels for sorted 2-hop label arrays
/// (docs/QUERY_ENGINE.md). The 2-hop families answer Qr(s, t) by testing
/// whether two sorted rank arrays — Lout(s) and Lin(t), laid out
/// contiguously by `FlatLabelPool` — share an element. `IntersectSorted`
/// is the engine entry point: it prefilters on the first/last ranks,
/// gallops when the sizes are skewed, and otherwise runs a block-compare
/// kernel selected once at runtime (AVX2 > SSE2 > portable 64-bit words).
/// Every kernel returns exactly the answer of the scalar two-pointer merge
/// (tests/label_kernels_test.cc holds the differential suite).

/// Reference kernel: the classic two-pointer merge. Also the tail loop of
/// the block kernels once fewer than a block of elements remains.
inline bool IntersectSortedScalar(const uint32_t* a, size_t na,
                                  const uint32_t* b, size_t nb) {
  size_t i = 0, j = 0;
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      return true;
    }
  }
  return false;
}

/// Branch-light merge: the two advance conditions compile to flag
/// arithmetic instead of an unpredictable taken/not-taken branch per
/// element, which is what makes the similar-size regime fast.
inline bool IntersectSortedBranchless(const uint32_t* a, size_t na,
                                      const uint32_t* b, size_t nb) {
  size_t i = 0, j = 0;
  while (i < na && j < nb) {
    const uint32_t x = a[i], y = b[j];
    if (x == y) return true;
    i += x < y;
    j += y < x;
  }
  return false;
}

/// First index `>= from` with `data[index] >= value` (n when none), found
/// by exponential probing followed by a binary search over the bracketed
/// window — O(log gap) instead of O(log n), which is what galloping
/// intersection needs when it advances through a long run.
inline size_t GallopLowerBound(const uint32_t* data, size_t n, size_t from,
                               uint32_t value) {
  if (from >= n || data[from] >= value) return from;
  // Invariant below: data[from + offset / 2] < value.
  size_t offset = 1;
  while (from + offset < n && data[from + offset] < value) offset <<= 1;
  // Branchless binary search over the bracketed window: `base` always
  // points at an element < value and the answer lies in (base, base+len].
  // The conditional add compiles to a cmov, so the probes that dominate
  // galloping cost no branch mispredicts.
  const uint32_t* base = data + from + offset / 2;
  size_t len = std::min(n, from + offset) - (from + offset / 2);
  while (len > 1) {
    const size_t half = len / 2;
    base += base[half] < value ? half : 0;
    len -= half;
  }
  return static_cast<size_t>(base - data) + 1;
}

/// Skewed-size kernel: for each element of the small array, gallop to its
/// lower bound in the large one. O(ns log(nl/ns)) — the regime where the
/// merge's O(ns + nl) loses badly.
inline bool IntersectSortedGalloping(const uint32_t* small_arr, size_t ns,
                                     const uint32_t* large_arr, size_t nl) {
  size_t j = 0;
  for (size_t i = 0; i < ns; ++i) {
    j = GallopLowerBound(large_arr, nl, j, small_arr[i]);
    if (j == nl) return false;
    if (large_arr[j] == small_arr[i]) return true;
  }
  return false;
}

namespace kernel_detail {

// True iff either 32-bit lane of `v` is zero (exact; the word-size
// generalization of the classic has-zero-byte trick).
inline bool HasZeroLane32(uint64_t v) {
  return ((v - 0x0000000100000001ULL) & ~v & 0x8000000080000000ULL) != 0;
}

}  // namespace kernel_detail

/// Portable word-parallel block kernel: packs two 32-bit ranks per 64-bit
/// word and tests the four cross-equalities of a 2x2 block with XOR +
/// has-zero-lane arithmetic — no per-element branch inside a block.
inline bool IntersectSortedWord(const uint32_t* a, size_t na,
                                const uint32_t* b, size_t nb) {
  size_t i = 0, j = 0;
  while (i + 2 <= na && j + 2 <= nb) {
    uint64_t wa, wb;
    std::memcpy(&wa, a + i, sizeof(wa));
    std::memcpy(&wb, b + j, sizeof(wb));
    const uint64_t b_lo = (wb & 0xffffffffULL) * 0x0000000100000001ULL;
    const uint64_t b_hi = (wb >> 32) * 0x0000000100000001ULL;
    if (kernel_detail::HasZeroLane32(wa ^ b_lo) ||
        kernel_detail::HasZeroLane32(wa ^ b_hi)) {
      return true;
    }
    const uint32_t a_max = a[i + 1], b_max = b[j + 1];
    // a_max == b_max would have matched above, so exactly one side moves.
    i += a_max < b_max ? 2 : 0;
    j += b_max < a_max ? 2 : 0;
  }
  return IntersectSortedBranchless(a + i, na - i, b + j, nb - j);
}

#if REACH_LABEL_KERNELS_X86

/// SSE2 block kernel: compares a 4-lane block of `a` against all four
/// rotations of a 4-lane block of `b` (16 comparisons per iteration), then
/// advances whichever block exhausted first.
__attribute__((target("sse2"))) inline bool IntersectSortedSse2(
    const uint32_t* a, size_t na, const uint32_t* b, size_t nb) {
  size_t i = 0, j = 0;
  while (i + 4 <= na && j + 4 <= nb) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
    __m128i eq = _mm_cmpeq_epi32(va, vb);
    vb = _mm_shuffle_epi32(vb, _MM_SHUFFLE(0, 3, 2, 1));
    eq = _mm_or_si128(eq, _mm_cmpeq_epi32(va, vb));
    vb = _mm_shuffle_epi32(vb, _MM_SHUFFLE(0, 3, 2, 1));
    eq = _mm_or_si128(eq, _mm_cmpeq_epi32(va, vb));
    vb = _mm_shuffle_epi32(vb, _MM_SHUFFLE(0, 3, 2, 1));
    eq = _mm_or_si128(eq, _mm_cmpeq_epi32(va, vb));
    if (_mm_movemask_epi8(eq) != 0) return true;
    const uint32_t a_max = a[i + 3], b_max = b[j + 3];
    i += a_max < b_max ? 4 : 0;
    j += b_max < a_max ? 4 : 0;
  }
  return IntersectSortedBranchless(a + i, na - i, b + j, nb - j);
}

/// AVX2 block kernel: an 8-lane block of `a` against all eight rotations
/// of an 8-lane block of `b` (64 comparisons per iteration).
__attribute__((target("avx2"))) inline bool IntersectSortedAvx2(
    const uint32_t* a, size_t na, const uint32_t* b, size_t nb) {
  const __m256i rotate1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
  size_t i = 0, j = 0;
  while (i + 8 <= na && j + 8 <= nb) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    __m256i eq = _mm256_cmpeq_epi32(va, vb);
    for (int r = 1; r < 8; ++r) {
      vb = _mm256_permutevar8x32_epi32(vb, rotate1);
      eq = _mm256_or_si256(eq, _mm256_cmpeq_epi32(va, vb));
    }
    if (_mm256_movemask_epi8(eq) != 0) return true;
    const uint32_t a_max = a[i + 7], b_max = b[j + 7];
    i += a_max < b_max ? 8 : 0;
    j += b_max < a_max ? 8 : 0;
  }
  return IntersectSortedSse2(a + i, na - i, b + j, nb - j);
}

#endif  // REACH_LABEL_KERNELS_X86

namespace kernel_detail {

using IntersectFn = bool (*)(const uint32_t*, size_t, const uint32_t*,
                             size_t);

struct BlockKernel {
  IntersectFn fn;
  const char* name;
};

// One-time cpuid probe (x86 only; elsewhere — and under REACH_NO_SIMD —
// the portable word-parallel kernel is the block kernel).
inline BlockKernel ResolveBlockKernel() {
#if REACH_LABEL_KERNELS_X86
  if (__builtin_cpu_supports("avx2")) return {&IntersectSortedAvx2, "avx2"};
  if (__builtin_cpu_supports("sse2")) return {&IntersectSortedSse2, "sse2"};
#endif
  return {&IntersectSortedWord, "word64"};
}

inline const BlockKernel& ActiveBlockKernel() {
  static const BlockKernel kernel = ResolveBlockKernel();
  return kernel;
}

}  // namespace kernel_detail

/// The block kernel the runtime dispatch resolved to ("avx2", "sse2", or
/// "word64"), for logs / bench rows.
inline const char* ActiveIntersectKernelName() {
  return kernel_detail::ActiveBlockKernel().name;
}

/// Runs the runtime-selected block-compare kernel (no prefilter, no
/// galloping) — exposed separately for the differential tests and the
/// kernel microbenchmark.
inline bool IntersectSortedBlocks(const uint32_t* a, size_t na,
                                  const uint32_t* b, size_t nb) {
  return kernel_detail::ActiveBlockKernel().fn(a, na, b, nb);
}

/// Size-ratio threshold above which the engine gallops with the smaller
/// array instead of merging.
inline constexpr size_t kGallopSkewThreshold = 8;

/// True iff the value ranges [a[0], a[na-1]] and [b[0], b[nb-1]] overlap.
/// The first/last-rank prefilter: disjoint ranges settle the query with
/// two comparisons and no intersection at all.
inline bool SortedRangesOverlap(const uint32_t* a, size_t na,
                                const uint32_t* b, size_t nb) {
  return na != 0 && nb != 0 && a[na - 1] >= b[0] && b[nb - 1] >= a[0];
}

/// The engine entry point: exact sorted-set intersection test with the
/// full selection logic (prefilter -> galloping on >= 8x skew -> runtime
/// block kernel). Bit-identical answers to `IntersectSortedScalar`.
inline bool IntersectSorted(const uint32_t* a, size_t na, const uint32_t* b,
                            size_t nb) {
  if (!SortedRangesOverlap(a, na, b, nb)) return false;
  if (na * kGallopSkewThreshold <= nb) {
    return IntersectSortedGalloping(a, na, b, nb);
  }
  if (nb * kGallopSkewThreshold <= na) {
    return IntersectSortedGalloping(b, nb, a, na);
  }
  return IntersectSortedBlocks(a, na, b, nb);
}

}  // namespace reach

#endif  // REACH_CORE_LABEL_KERNELS_H_
