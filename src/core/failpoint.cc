#include "core/failpoint.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string_view>
#include <thread>
#include <utility>

namespace reach {

namespace {

struct ParsedAction {
  FailpointAction action = FailpointAction::kNone;
  double p = 1.0;
  bool seed_set = false;
  uint64_t seed = 0;
  uint64_t ms = 0;
  uint64_t bytes = 0;
  int64_t times = -1;
  uint64_t skip = 0;
};

void SetParseError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

bool ParseU64(std::string_view text, uint64_t* out) {
  if (text.empty()) return false;
  uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

bool ParseProbability(std::string_view text, double* out) {
  // Accepts "1", "0.5", ".25" — no exponents, no sign, clamped to [0,1].
  if (text.empty()) return false;
  double value = 0.0;
  size_t i = 0;
  for (; i < text.size() && text[i] != '.'; ++i) {
    if (text[i] < '0' || text[i] > '9') return false;
    value = value * 10 + (text[i] - '0');
  }
  if (i < text.size()) {  // fractional part
    double scale = 0.1;
    for (++i; i < text.size(); ++i) {
      if (text[i] < '0' || text[i] > '9') return false;
      value += (text[i] - '0') * scale;
      scale *= 0.1;
    }
  }
  if (value < 0.0 || value > 1.0) return false;
  *out = value;
  return true;
}

bool ParseAction(std::string_view site, std::string_view text,
                 ParsedAction* out, std::string* error) {
  const size_t paren = text.find('(');
  std::string_view name = text.substr(0, paren);
  std::string_view params;
  if (paren != std::string_view::npos) {
    if (text.back() != ')') {
      SetParseError(error, std::string(site) + ": missing ')' in '" +
                               std::string(text) + "'");
      return false;
    }
    params = text.substr(paren + 1, text.size() - paren - 2);
  }
  if (name == "off") {
    out->action = FailpointAction::kNone;
  } else if (name == "error") {
    out->action = FailpointAction::kError;
  } else if (name == "delay") {
    out->action = FailpointAction::kDelay;
  } else if (name == "partial") {
    out->action = FailpointAction::kPartial;
  } else if (name == "eintr") {
    out->action = FailpointAction::kEintr;
  } else {
    SetParseError(error, std::string(site) + ": unknown action '" +
                             std::string(name) + "'");
    return false;
  }
  while (!params.empty()) {
    const size_t comma = params.find(',');
    const std::string_view kv = params.substr(0, comma);
    params = comma == std::string_view::npos ? std::string_view{}
                                             : params.substr(comma + 1);
    const size_t eq = kv.find('=');
    if (eq == std::string_view::npos) {
      SetParseError(error, std::string(site) + ": parameter '" +
                               std::string(kv) + "' needs key=value");
      return false;
    }
    const std::string_view key = kv.substr(0, eq);
    const std::string_view value = kv.substr(eq + 1);
    bool ok = true;
    if (key == "p") {
      ok = ParseProbability(value, &out->p);
    } else if (key == "seed") {
      ok = ParseU64(value, &out->seed);
      out->seed_set = ok;
    } else if (key == "ms") {
      ok = ParseU64(value, &out->ms);
    } else if (key == "bytes") {
      ok = ParseU64(value, &out->bytes);
    } else if (key == "times") {
      uint64_t times = 0;
      ok = ParseU64(value, &times);
      out->times = static_cast<int64_t>(times);
    } else if (key == "skip") {
      ok = ParseU64(value, &out->skip);
    } else {
      SetParseError(error, std::string(site) + ": unknown parameter '" +
                               std::string(key) + "'");
      return false;
    }
    if (!ok) {
      SetParseError(error, std::string(site) + ": bad value for '" +
                               std::string(key) + "': '" +
                               std::string(value) + "'");
      return false;
    }
  }
  return true;
}

// FNV-1a over the site name: the default per-site seed, so unseeded runs
// are still deterministic and distinct sites see distinct streams.
uint64_t HashSiteName(std::string_view name) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Splits `spec` into site=action entries at top-level ';' or ','
// (commas inside parentheses separate parameters, not entries).
std::vector<std::string> SplitEntries(const std::string& spec) {
  std::vector<std::string> entries;
  std::string cur;
  int depth = 0;
  for (const char c : spec) {
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if ((c == ';' || (c == ',' && depth == 0))) {
      if (!cur.empty()) entries.push_back(std::move(cur));
      cur.clear();
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\n') continue;
    cur.push_back(c);
  }
  if (!cur.empty()) entries.push_back(std::move(cur));
  return entries;
}

}  // namespace

const char* FailpointActionName(FailpointAction action) {
  switch (action) {
    case FailpointAction::kNone:
      return "none";
    case FailpointAction::kError:
      return "error";
    case FailpointAction::kPartial:
      return "partial";
    case FailpointAction::kEintr:
      return "eintr";
    case FailpointAction::kDelay:
      return "delay";
  }
  return "?";
}

FailpointRegistry& FailpointRegistry::Global() {
  static FailpointRegistry* instance = new FailpointRegistry();
  return *instance;
}

FailpointRegistry::FailpointRegistry() {
  if (!kFailpointsCompiled) return;  // env is production-inert otherwise
  const char* spec = std::getenv("REACH_FAILPOINTS");
  if (spec == nullptr || spec[0] == '\0') return;
  std::string error;
  if (!Configure(spec, &error)) {
    std::fprintf(stderr, "warning: REACH_FAILPOINTS ignored: %s\n",
                 error.c_str());
  }
}

bool FailpointRegistry::Configure(const std::string& spec,
                                  std::string* error) {
  // Validate every entry before arming any, so a typo can't half-apply.
  struct Entry {
    std::string site;
    ParsedAction action;
  };
  std::vector<Entry> parsed;
  for (const std::string& entry : SplitEntries(spec)) {
    const size_t eq = entry.find('=');
    if (eq == 0 || eq == std::string::npos) {
      SetParseError(error, "entry '" + entry + "' needs site=action");
      return false;
    }
    Entry e;
    e.site = entry.substr(0, eq);
    if (!ParseAction(e.site, std::string_view(entry).substr(eq + 1),
                     &e.action, error)) {
      return false;
    }
    parsed.push_back(std::move(e));
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const Entry& e : parsed) {
    if (e.action.action == FailpointAction::kNone) {
      sites_.erase(e.site);
      continue;
    }
    Site site;
    site.action = e.action.action;
    site.p = e.action.p;
    site.delay_ms = e.action.ms;
    site.bytes = e.action.bytes;
    site.times_left = e.action.times;
    site.skip_left = e.action.skip;
    site.rng = Xoshiro256ss(e.action.seed_set ? e.action.seed
                                              : HashSiteName(e.site));
    sites_[e.site] = site;
  }
  return true;
}

bool FailpointRegistry::Arm(const std::string& site,
                            const std::string& action_spec,
                            std::string* error) {
  return Configure(site + "=" + action_spec, error);
}

void FailpointRegistry::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.erase(site);
}

void FailpointRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
}

FailpointHit FailpointRegistry::Evaluate(const char* site) {
  FailpointHit hit;
  uint64_t sleep_ms = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = sites_.find(site);
    if (it == sites_.end()) return hit;
    Site& s = it->second;
    if (s.skip_left > 0) {
      --s.skip_left;
      return hit;
    }
    if (s.times_left == 0) return hit;
    if (s.p < 1.0 && s.rng.NextDouble() >= s.p) return hit;
    if (s.times_left > 0) --s.times_left;
    ++s.hits;
    hit.action = s.action;
    if (s.action == FailpointAction::kPartial) hit.arg = s.bytes;
    if (s.action == FailpointAction::kDelay) {
      hit.arg = s.delay_ms;
      sleep_ms = s.delay_ms;
    }
  }
  if (sleep_ms > 0) {  // sleep off-lock so delayed sites don't serialize
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  }
  return hit;
}

uint64_t FailpointRegistry::HitCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

std::vector<std::string> FailpointRegistry::ArmedSites() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(sites_.size());
  for (const auto& [name, site] : sites_) names.push_back(name);
  return names;
}

}  // namespace reach
