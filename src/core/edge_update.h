#ifndef REACH_CORE_EDGE_UPDATE_H_
#define REACH_CORE_EDGE_UPDATE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "graph/types.h"

namespace reach {

/// One element of the unified batched write API (docs/API.md, "The write
/// surface"): an edge insertion or an edge deletion. Deletions are what
/// make the library *truly* dynamic — the survey's Table 1 separates
/// insert-only techniques (DBL) from fully dynamic ones (DAGGER), and
/// `EdgeUpdate` is the common currency both speak.
struct EdgeUpdate {
  enum class Kind : uint8_t { kInsert, kDelete };

  Kind kind = Kind::kInsert;
  VertexId source = 0;
  VertexId target = 0;

  static EdgeUpdate Insert(VertexId s, VertexId t) {
    return EdgeUpdate{Kind::kInsert, s, t};
  }
  static EdgeUpdate Delete(VertexId s, VertexId t) {
    return EdgeUpdate{Kind::kDelete, s, t};
  }

  bool IsInsert() const { return kind == Kind::kInsert; }
  bool IsDelete() const { return kind == Kind::kDelete; }

  friend bool operator==(const EdgeUpdate& a, const EdgeUpdate& b) {
    return a.kind == b.kind && a.source == b.source && a.target == b.target;
  }
};

/// An ordered sequence of updates applied atomically from the caller's
/// point of view: `ApplyUpdate` either applies the whole batch or rejects
/// the whole batch without side effects. Order matters — an insert of
/// (u, v) followed by a delete of (u, v) leaves the edge absent.
using UpdateBatch = std::vector<EdgeUpdate>;

/// How `ApplyUpdate` disposed of a batch.
enum class UpdateStatus : uint8_t {
  /// Every update was absorbed incrementally; answers are exact and the
  /// index is within its staleness budget.
  kApplied,
  /// The batch WAS applied and answers remain exact, but accumulated
  /// damage crossed the index's rebuild threshold (the `ReachGraph`-style
  /// REBUILD_THRESHOLD policy): the caller should schedule
  /// `RebuildFromUpdates()` — the index never blocks a write on a full
  /// rebuild by itself.
  kDeferredRebuild,
  /// Validation failed (out-of-range endpoint, deletes on an insert-only
  /// index, ...). No state changed; `reason` says why.
  kRejected,
};

/// Typed outcome of `DynamicReachabilityIndex::ApplyUpdate`.
struct UpdateResult {
  UpdateStatus status = UpdateStatus::kApplied;
  /// Updates that changed graph state (inserts of absent edges, deletes
  /// of present edges).
  size_t applied = 0;
  /// No-op updates (inserting a present edge, deleting an absent one).
  size_t ignored = 0;
  /// Accumulated staleness after this batch: the number of deletions the
  /// index is currently answering through its repair machinery rather
  /// than its sealed labels. 0 means label-exact.
  size_t damage = 0;
  /// True iff `status == kDeferredRebuild`: answers stay exact but the
  /// caller should fold the backlog via `RebuildFromUpdates()` soon.
  bool rebuild_recommended = false;
  /// Human-readable cause when `status == kRejected`, empty otherwise.
  std::string reason;

  /// True when the batch took effect (applied or deferred-to-rebuild).
  bool ok() const { return status != UpdateStatus::kRejected; }

  static UpdateResult Applied(size_t applied_count, size_t ignored_count,
                              size_t damage_now, size_t budget) {
    UpdateResult r;
    r.applied = applied_count;
    r.ignored = ignored_count;
    r.damage = damage_now;
    if (budget != 0 && damage_now > budget) {
      r.status = UpdateStatus::kDeferredRebuild;
      r.rebuild_recommended = true;
    }
    return r;
  }

  static UpdateResult Rejected(std::string why) {
    UpdateResult r;
    r.status = UpdateStatus::kRejected;
    r.reason = std::move(why);
    return r;
  }
};

/// Printable name for logs / CLI output.
inline const char* UpdateStatusName(UpdateStatus status) {
  switch (status) {
    case UpdateStatus::kApplied:
      return "applied";
    case UpdateStatus::kDeferredRebuild:
      return "deferred-rebuild";
    case UpdateStatus::kRejected:
      return "rejected";
  }
  return "unknown";
}

}  // namespace reach

#endif  // REACH_CORE_EDGE_UPDATE_H_
