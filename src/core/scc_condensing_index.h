#ifndef REACH_CORE_SCC_CONDENSING_INDEX_H_
#define REACH_CORE_SCC_CONDENSING_INDEX_H_

#include <memory>
#include <string>
#include <utility>

#include "core/reachability_index.h"
#include "graph/condensation.h"

namespace reach {

/// Lifts a DAG-only reachability index to general graphs, implementing the
/// standard reduction of paper §3.1 ("From cyclic graphs to DAGs"):
/// Tarjan's algorithm coarsens every SCC into a representative vertex, the
/// wrapped index is built on the condensation, and `Qr(s, t)` becomes
/// "same SCC, or reachable in the DAG".
///
/// This is why "most plain reachability indexes in literature assume DAGs
/// as input since generalization is easy" — this class is that easy
/// generalization, shared by every DAG-only technique in the library.
class SccCondensingIndex : public ReachabilityIndex {
 public:
  /// Takes ownership of the DAG-only index to wrap.
  explicit SccCondensingIndex(std::unique_ptr<ReachabilityIndex> dag_index)
      : dag_index_(std::move(dag_index)) {}

  void Build(const Digraph& graph) override {
    condensation_ = Condense(graph);
    dag_index_->Build(condensation_.dag);
  }

  bool Query(VertexId s, VertexId t) const override {
    const VertexId cs = condensation_.DagVertex(s);
    const VertexId ct = condensation_.DagVertex(t);
    if (cs == ct) return true;
    return dag_index_->Query(cs, ct);
  }

  size_t IndexSizeBytes() const override {
    return dag_index_->IndexSizeBytes() +
           condensation_.scc.component_of.size() * sizeof(VertexId);
  }

  bool IsComplete() const override { return dag_index_->IsComplete(); }

  std::string Name() const override { return "scc+" + dag_index_->Name(); }

  /// The wrapped DAG index (e.g., to inspect its stats).
  const ReachabilityIndex& dag_index() const { return *dag_index_; }

  /// The condensation built by the last `Build()`.
  const Condensation& condensation() const { return condensation_; }

 private:
  std::unique_ptr<ReachabilityIndex> dag_index_;
  Condensation condensation_;
};

/// Convenience: wraps a freshly constructed `DagIndex(args...)` in an
/// `SccCondensingIndex`.
template <typename DagIndex, typename... Args>
std::unique_ptr<SccCondensingIndex> MakeCondensing(Args&&... args) {
  return std::make_unique<SccCondensingIndex>(
      std::make_unique<DagIndex>(std::forward<Args>(args)...));
}

}  // namespace reach

#endif  // REACH_CORE_SCC_CONDENSING_INDEX_H_
