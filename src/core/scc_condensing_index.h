#ifndef REACH_CORE_SCC_CONDENSING_INDEX_H_
#define REACH_CORE_SCC_CONDENSING_INDEX_H_

#include <memory>
#include <string>
#include <utility>

#include "core/reachability_index.h"
#include "core/workspace_pool.h"
#include "graph/condensation.h"

namespace reach {

/// Lifts a DAG-only reachability index to general graphs, implementing the
/// standard reduction of paper §3.1 ("From cyclic graphs to DAGs"):
/// Tarjan's algorithm coarsens every SCC into a representative vertex, the
/// wrapped index is built on the condensation, and `Qr(s, t)` becomes
/// "same SCC, or reachable in the DAG".
///
/// This is why "most plain reachability indexes in literature assume DAGs
/// as input since generalization is easy" — this class is that easy
/// generalization, shared by every DAG-only technique in the library.
class SccCondensingIndex : public ReachabilityIndex {
 public:
  /// Takes ownership of the DAG-only index to wrap.
  explicit SccCondensingIndex(std::unique_ptr<ReachabilityIndex> dag_index)
      : dag_index_(std::move(dag_index)) {}

  void Build(const Digraph& graph) override {
    BuildStatsScope build(&build_stats_);
    {
      BuildPhaseTimer timer(&build_stats_.phases, "condense");
      condensation_ = Condense(graph);
    }
    dag_index_->Build(condensation_.dag);
    // Absorb the wrapped build's breakdown so `Stats()` shows the whole
    // pipeline (condense -> inner phases).
    const IndexStats& inner = dag_index_->Stats();
    build_stats_.phases.insert(build_stats_.phases.end(),
                               inner.phases.begin(), inner.phases.end());
    build_stats_.size_bytes = IndexSizeBytes();
    build_stats_.num_entries = inner.num_entries;
    probes_.Reset();
  }

  bool Query(VertexId s, VertexId t) const override {
    return QueryInSlot(s, t, 0);
  }

  /// Concurrent queries work exactly as far as the wrapped index allows
  /// (the wrapper's own state is an immutable component map plus per-slot
  /// probes), so the granted slot count is the inner one.
  size_t PrepareConcurrentQueries(size_t slots) const override {
    const size_t granted = dag_index_->PrepareConcurrentQueries(slots);
    probes_.EnsureSlots(granted);
    return granted;
  }

  bool QueryInSlot(VertexId s, VertexId t, size_t slot) const override {
    [[maybe_unused]] QueryProbe& probe = probes_.Slot(slot);
    REACH_PROBE_INC(probe, queries);
    REACH_PROBE_ADD(probe, labels_scanned, 1);  // component-of lookup
    const VertexId cs = condensation_.DagVertex(s);
    const VertexId ct = condensation_.DagVertex(t);
    if (cs == ct) {
      REACH_PROBE_INC(probe, positives);
      return true;
    }
    const bool reachable = dag_index_->QueryInSlot(cs, ct, slot);
    if (reachable) REACH_PROBE_INC(probe, positives);
    return reachable;
  }

  size_t IndexSizeBytes() const override {
    return dag_index_->IndexSizeBytes() +
           condensation_.scc.component_of.size() * sizeof(VertexId);
  }

  bool IsComplete() const override { return dag_index_->IsComplete(); }

  std::string Name() const override { return "scc+" + dag_index_->Name(); }

  /// The wrapped index's probe, with queries/positives counted at the
  /// wrapper (same-SCC pairs are settled here and never reach the DAG
  /// index).
  QueryProbe Probe() const override {
    const QueryProbe own = probes_.Aggregate();
    QueryProbe merged = dag_index_->Probe();
    merged.queries = own.queries;
    merged.positives = own.positives;
    merged.labels_scanned += own.labels_scanned;
    return merged;
  }

  void ResetProbe() const override {
    probes_.Reset();
    dag_index_->ResetProbe();
  }

  /// The wrapped DAG index (e.g., to inspect its stats).
  const ReachabilityIndex& dag_index() const { return *dag_index_; }

  /// The condensation built by the last `Build()`.
  const Condensation& condensation() const { return condensation_; }

 private:
  std::unique_ptr<ReachabilityIndex> dag_index_;
  Condensation condensation_;
  mutable ProbePool probes_;
};

/// Convenience: wraps a freshly constructed `DagIndex(args...)` in an
/// `SccCondensingIndex`.
template <typename DagIndex, typename... Args>
std::unique_ptr<SccCondensingIndex> MakeCondensing(Args&&... args) {
  return std::make_unique<SccCondensingIndex>(
      std::make_unique<DagIndex>(std::forward<Args>(args)...));
}

}  // namespace reach

#endif  // REACH_CORE_SCC_CONDENSING_INDEX_H_
