#ifndef REACH_CORE_BIT_PACK_H_
#define REACH_CORE_BIT_PACK_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace reach {

/// LSB-first bit-packing primitives for the block-compressed label pools
/// (docs/SNAPSHOTS.md). Values are written fixed-width into a byte
/// stream through a 64-bit accumulator; the reader is bounds-safe by
/// construction — exhausting the underlying bytes yields zero bits, it
/// never reads past `end`.

/// Bits needed to represent `v` (0 for v == 0).
inline int PackedBitWidth(uint32_t v) {
  return v == 0 ? 0 : std::bit_width(v);
}

class BitWriter {
 public:
  explicit BitWriter(std::vector<uint8_t>* out) : out_(out) {}

  /// Appends the low `width` bits of `value`. `width` in [0, 32].
  void Put(uint32_t value, int width) {
    acc_ |= static_cast<uint64_t>(value & MaskOf(width)) << bits_;
    bits_ += width;
    while (bits_ >= 8) {
      out_->push_back(static_cast<uint8_t>(acc_));
      acc_ >>= 8;
      bits_ -= 8;
    }
  }

  /// Flushes the partial trailing byte (zero-padded). Call exactly once,
  /// after the last Put.
  void Flush() {
    if (bits_ > 0) {
      out_->push_back(static_cast<uint8_t>(acc_));
      acc_ = 0;
      bits_ = 0;
    }
  }

  static constexpr uint64_t MaskOf(int width) {
    return width >= 64 ? ~uint64_t{0} : (uint64_t{1} << width) - 1;
  }

 private:
  std::vector<uint8_t>* out_;
  uint64_t acc_ = 0;
  int bits_ = 0;
};

class BitReader {
 public:
  BitReader(const uint8_t* begin, const uint8_t* end)
      : p_(begin), end_(end) {}

  /// Reads the next `width` bits (LSB-first). Bits past the end of the
  /// byte range read as zero, so a corrupted length can never walk off
  /// the buffer. `width` in [0, 32].
  uint32_t Get(int width) {
    if (bits_ < width) Refill();
    const uint32_t value =
        static_cast<uint32_t>(acc_ & BitWriter::MaskOf(width));
    acc_ >>= width;
    bits_ = bits_ >= width ? bits_ - width : 0;
    return value;
  }

 private:
  /// Tops the accumulator up to >= 56 bits (or to end-of-bytes): one
  /// unaligned 64-bit load on the hot path, a byte loop on the last few
  /// bytes. Refilled once, the accumulator covers any `width` <= 32, so
  /// consecutive Gets run branch-free on shifts alone.
  void Refill() {
    if (end_ - p_ >= 8) {
      uint64_t chunk;
      std::memcpy(&chunk, p_, sizeof(chunk));
      const int bytes = (63 - bits_) >> 3;
      acc_ |= (chunk & BitWriter::MaskOf(bytes * 8)) << bits_;
      p_ += bytes;
      bits_ += bytes * 8;
      return;
    }
    while (bits_ <= 56 && p_ < end_) {
      acc_ |= static_cast<uint64_t>(*p_++) << bits_;
      bits_ += 8;
    }
  }

  const uint8_t* p_;
  const uint8_t* end_;
  uint64_t acc_ = 0;
  int bits_ = 0;
};

}  // namespace reach

#endif  // REACH_CORE_BIT_PACK_H_
