#include "core/mapped_file.h"

#include <cerrno>
#include <cstring>
#include <fstream>

#include "core/failpoint.h"

#if defined(__unix__) || defined(__APPLE__)
#define REACH_MAPPED_FILE_POSIX 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define REACH_MAPPED_FILE_POSIX 0
#endif

namespace reach {

namespace {

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

#if REACH_MAPPED_FILE_POSIX
// Fills `dest` from `fd`, retrying interrupted syscalls and accumulating
// short reads — ::read may legally return fewer bytes than asked on
// signals, pipes-backed mounts, or large requests. Chaos builds inject
// EINTR / short reads / hard errors through "mapped_file.read". Returns
// false with errno-style detail in `*error` on a real failure or when the
// file ends before `size` bytes (it shrank between fstat and here).
bool ReadFully(int fd, uint8_t* dest, size_t size, const std::string& path,
               std::string* error) {
  size_t off = 0;
  while (off < size) {
    size_t want = size - off;
    bool injected_eintr = false;
    if (const FailpointHit fault = REACH_FAILPOINT("mapped_file.read")) {
      if (fault.action == FailpointAction::kError) {
        SetError(error, path + ": read: injected failure");
        return false;
      }
      if (fault.action == FailpointAction::kEintr) {
        injected_eintr = true;
      } else if (fault.action == FailpointAction::kPartial &&
                 fault.arg > 0 && fault.arg < want) {
        want = fault.arg;  // force the short-read accumulation loop
      }
    }
    ssize_t n;
    if (injected_eintr) {
      errno = EINTR;
      n = -1;
    } else {
      n = ::read(fd, dest + off, want);
    }
    if (n < 0) {
      if (errno == EINTR) continue;  // interrupted: retry the same range
      SetError(error, path + ": read: " + std::strerror(errno));
      return false;
    }
    if (n == 0) {
      SetError(error, path + ": short read (file truncated mid-open, " +
                          std::to_string(off) + " of " +
                          std::to_string(size) + " bytes)");
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}
#endif

}  // namespace

std::shared_ptr<MappedFile> MappedFile::Open(const std::string& path,
                                             std::string* error,
                                             Mode mode) {
  // make_shared needs a public constructor; hand-roll instead.
  std::shared_ptr<MappedFile> file(new MappedFile());
  if (REACH_FAILPOINT("mapped_file.open").action ==
      FailpointAction::kError) {
    SetError(error, path + ": open: injected failure");
    return nullptr;
  }
#if REACH_MAPPED_FILE_POSIX
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    SetError(error, path + ": " + std::strerror(errno));
    return nullptr;
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    SetError(error, path + ": " + std::strerror(errno));
    ::close(fd);
    return nullptr;
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return file;  // empty file: valid zero-byte view, nothing to map
  }
  bool try_mmap = mode == Mode::kAuto;
  if (try_mmap && REACH_FAILPOINT("mapped_file.mmap").action ==
                      FailpointAction::kError) {
    try_mmap = false;  // injected mmap failure: exercise the fallback
  }
  if (try_mmap) {
    void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr != MAP_FAILED) {
      ::close(fd);
      file->map_addr_ = addr;
      file->data_ = static_cast<const uint8_t*>(addr);
      file->size_ = size;
      file->mapped_ = true;
      return file;
    }
    // Real mmap failure: fall through to the buffered read below — the
    // caller still gets a byte-identical view, just not zero-copy.
  }
  file->fallback_.resize(size);
  if (!ReadFully(fd, file->fallback_.data(), size, path, error)) {
    ::close(fd);
    return nullptr;
  }
  ::close(fd);
  file->data_ = file->fallback_.data();
  file->size_ = file->fallback_.size();
  return file;
#else
  (void)mode;  // no mmap here: every open is the buffered path already
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    SetError(error, path + ": cannot open");
    return nullptr;
  }
  const std::streamoff size = in.tellg();
  in.seekg(0);
  file->fallback_.resize(static_cast<size_t>(size));
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(file->fallback_.data()), size)) {
    SetError(error, path + ": short read");
    return nullptr;
  }
  file->data_ = file->fallback_.data();
  file->size_ = file->fallback_.size();
  return file;
#endif
}

MappedFile::~MappedFile() {
#if REACH_MAPPED_FILE_POSIX
  if (mapped_ && map_addr_ != nullptr) {
    ::munmap(map_addr_, size_);
  }
#endif
}

}  // namespace reach
