#include "core/mapped_file.h"

#include <cerrno>
#include <cstring>
#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#define REACH_MAPPED_FILE_POSIX 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define REACH_MAPPED_FILE_POSIX 0
#endif

namespace reach {

namespace {

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

}  // namespace

std::shared_ptr<MappedFile> MappedFile::Open(const std::string& path,
                                             std::string* error) {
  // make_shared needs a public constructor; hand-roll instead.
  std::shared_ptr<MappedFile> file(new MappedFile());
#if REACH_MAPPED_FILE_POSIX
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    SetError(error, path + ": " + std::strerror(errno));
    return nullptr;
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    SetError(error, path + ": " + std::strerror(errno));
    ::close(fd);
    return nullptr;
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return file;  // empty file: valid zero-byte view, nothing to map
  }
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (addr == MAP_FAILED) {
    SetError(error, path + ": mmap: " + std::strerror(errno));
    return nullptr;
  }
  file->map_addr_ = addr;
  file->data_ = static_cast<const uint8_t*>(addr);
  file->size_ = size;
  file->mapped_ = true;
  return file;
#else
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    SetError(error, path + ": cannot open");
    return nullptr;
  }
  const std::streamoff size = in.tellg();
  in.seekg(0);
  file->fallback_.resize(static_cast<size_t>(size));
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(file->fallback_.data()), size)) {
    SetError(error, path + ": short read");
    return nullptr;
  }
  file->data_ = file->fallback_.data();
  file->size_ = file->fallback_.size();
  return file;
#endif
}

MappedFile::~MappedFile() {
#if REACH_MAPPED_FILE_POSIX
  if (mapped_ && map_addr_ != nullptr) {
    ::munmap(map_addr_, size_);
  }
#endif
}

}  // namespace reach
