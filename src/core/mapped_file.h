#ifndef REACH_CORE_MAPPED_FILE_H_
#define REACH_CORE_MAPPED_FILE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace reach {

/// A read-only memory-mapped file — the backing store of zero-copy
/// snapshot loads (docs/SNAPSHOTS.md). On POSIX the bytes come straight
/// from `mmap(PROT_READ)`; elsewhere the file is read into an owned
/// buffer so callers see the same interface. The mapping lives until the
/// `MappedFile` is destroyed; anything pointing into `data()` (sealed
/// pool views) must hold a reference to keep it alive.
class MappedFile {
 public:
  /// How `Open` produces the bytes.
  enum class Mode : uint8_t {
    /// mmap the file; if mmap itself fails (filesystem without mmap
    /// support, address-space pressure), fall back to the buffered read
    /// path transparently.
    kAuto,
    /// Skip mmap entirely and read the file into an owned buffer — the
    /// fallback path, forced. Used by tests and odd filesystems; callers
    /// see the identical interface, `IsMapped()` reports false.
    kRead,
  };

  /// Maps `path` read-only. Returns nullptr on failure with a short
  /// reason in `*error` (when non-null). The buffered-read path retries
  /// interrupted reads (EINTR) and accumulates short reads; a file that
  /// shrinks mid-read fails cleanly instead of returning torn bytes.
  static std::shared_ptr<MappedFile> Open(const std::string& path,
                                          std::string* error = nullptr,
                                          Mode mode = Mode::kAuto);

  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }

  /// True when the bytes are an actual mmap (false: buffered fallback).
  bool IsMapped() const { return mapped_; }

 private:
  MappedFile() = default;

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
  void* map_addr_ = nullptr;         // munmap target when mapped_
  std::vector<uint8_t> fallback_;    // owned bytes otherwise
};

}  // namespace reach

#endif  // REACH_CORE_MAPPED_FILE_H_
