#ifndef REACH_CORE_LABEL_POOL_H_
#define REACH_CORE_LABEL_POOL_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <span>
#include <type_traits>
#include <vector>

#include "graph/types.h"

namespace reach {

/// A sealed, CSR-style contiguous pool of per-vertex label entries — the
/// flat layout of the query hot-path engine (docs/QUERY_ENGINE.md).
///
/// The 2-hop builders accumulate labels into `vector<vector<Entry>>`
/// (ranks arrive per-sweep, appending to arbitrary vertices); at the end
/// of `Build`/`Load` the nested vectors are *sealed* into one 64-byte
/// aligned entries array plus an offsets array. Queries then read
/// `Slice(v)` — a single indirection into memory where consecutive
/// vertices' labels are adjacent, instead of a pointer chase through
/// ~48 bytes of vector headers per vertex.
///
/// A sealed pool is immutable. Post-seal mutation (TOL-style `InsertEdge`)
/// goes into a per-index *delta overlay* kept next to the pool by its
/// owner; the pool itself never reallocates, so spans stay valid for the
/// index's lifetime.
template <typename Entry>
class FlatLabelPool {
  static_assert(std::is_trivially_copyable_v<Entry>,
                "pool entries are raw-copied into aligned storage");

 public:
  /// Cache-line alignment of the entries array.
  static constexpr size_t kAlignment = 64;

  FlatLabelPool() = default;

  /// Seals `per_vertex` into the pool and releases the nested vectors
  /// (the caller's build-side memory is freed, not kept in parallel).
  void Seal(std::vector<std::vector<Entry>>&& per_vertex) {
    const size_t n = per_vertex.size();
    offsets_.assign(n + 1, 0);
    for (size_t v = 0; v < n; ++v) {
      offsets_[v + 1] = offsets_[v] + per_vertex[v].size();
    }
    const size_t total = static_cast<size_t>(offsets_[n]);
    entries_.reset(total == 0 ? nullptr
                              : static_cast<Entry*>(::operator new[](
                                    total * sizeof(Entry),
                                    std::align_val_t{kAlignment})));
    for (size_t v = 0; v < n; ++v) {
      if (!per_vertex[v].empty()) {
        std::memcpy(entries_.get() + offsets_[v], per_vertex[v].data(),
                    per_vertex[v].size() * sizeof(Entry));
      }
    }
    std::vector<std::vector<Entry>>().swap(per_vertex);
  }

  /// The sealed labels of `v`, sorted exactly as the build produced them.
  /// (The empty-slice branch also keeps pointer arithmetic off the null
  /// entries array of an all-empty pool.)
  std::span<const Entry> Slice(VertexId v) const {
    const size_t begin = static_cast<size_t>(offsets_[v]);
    const size_t count = static_cast<size_t>(offsets_[v + 1]) - begin;
    if (count == 0) return {};
    return {entries_.get() + begin, count};
  }

  bool Sealed() const { return !offsets_.empty(); }
  size_t NumVertices() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  size_t NumEntries() const {
    return offsets_.empty() ? 0 : static_cast<size_t>(offsets_.back());
  }

  /// Returns the pool to the unsealed (empty) state.
  void Clear() {
    offsets_.clear();
    entries_.reset();
  }

  /// Heap footprint: offsets array (capacity, not size) plus the aligned
  /// entries block — the bytes the Table 1 size columns report.
  size_t MemoryBytes() const {
    return offsets_.capacity() * sizeof(uint64_t) +
           NumEntries() * sizeof(Entry);
  }

 private:
  struct AlignedDelete {
    void operator()(Entry* p) const {
      ::operator delete[](p, std::align_val_t{kAlignment});
    }
  };

  std::vector<uint64_t> offsets_;  // size NumVertices() + 1 when sealed
  std::unique_ptr<Entry[], AlignedDelete> entries_;
};

}  // namespace reach

#endif  // REACH_CORE_LABEL_POOL_H_
