#ifndef REACH_CORE_LABEL_POOL_H_
#define REACH_CORE_LABEL_POOL_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <span>
#include <type_traits>
#include <vector>

#include "core/bit_pack.h"
#include "core/label_kernels.h"
#include "graph/types.h"

namespace reach {

/// Sealed-label storage policy shared by the 2-hop families (the TOL
/// instantiations and the LCR P2H+ index; docs/SNAPSHOTS.md).
/// Factory spelling: `pll:compress=1[:block=N][:budget_mb=N]` (and the
/// same keys on `lcr:pll`).
struct TwoHopStorageOptions {
  /// Seal into block-compressed pools instead of flat CSR pools.
  bool compress = false;
  /// Target entries per compressed block (clamped to the pool's range).
  size_t block_entries = 64;
  /// Sealed-label byte budget in MiB; 0 = unbounded. When the flat
  /// layout exceeds the budget the seal falls back FERRARI-style to
  /// compressed storage, doubling the block size until it fits (or the
  /// coarsest tier is reached — the index never fails to build, it only
  /// reports `BudgetExceeded()` and the `index.budget_exceeded` gauge).
  size_t budget_mb = 0;
};

/// A sealed, CSR-style contiguous pool of per-vertex label entries — the
/// flat layout of the query hot-path engine (docs/QUERY_ENGINE.md).
///
/// The 2-hop builders accumulate labels into `vector<vector<Entry>>`
/// (ranks arrive per-sweep, appending to arbitrary vertices); at the end
/// of `Build`/`Load` the nested vectors are *sealed* into one 64-byte
/// aligned entries array plus an offsets array. Queries then read
/// `Slice(v)` — a single indirection into memory where consecutive
/// vertices' labels are adjacent, instead of a pointer chase through
/// ~48 bytes of vector headers per vertex.
///
/// A sealed pool is immutable. Post-seal mutation (TOL-style
/// `ApplyUpdate` — inserts into a delta overlay, deletes as tombstones
/// plus damage marks) is kept next to the pool by its owner; the pool
/// itself never reallocates, so spans stay valid for the index's
/// lifetime.
///
/// A pool can alternatively be sealed as a *view* over externally owned
/// memory (`SealFromView`) — the zero-copy mmap snapshot path
/// (docs/SNAPSHOTS.md). The view owner (e.g. a `MappedFile`) must outlive
/// the pool; the pool only validates the structure and points at it.
template <typename Entry>
class FlatLabelPool {
  static_assert(std::is_trivially_copyable_v<Entry>,
                "pool entries are raw-copied into aligned storage");

 public:
  /// Cache-line alignment of the entries array.
  static constexpr size_t kAlignment = 64;

  FlatLabelPool() = default;

  /// Seals `per_vertex` into the pool and releases the nested vectors
  /// (the caller's build-side memory is freed, not kept in parallel).
  void Seal(std::vector<std::vector<Entry>>&& per_vertex) {
    Clear();
    const size_t n = per_vertex.size();
    owned_offsets_.assign(n + 1, 0);
    for (size_t v = 0; v < n; ++v) {
      owned_offsets_[v + 1] = owned_offsets_[v] + per_vertex[v].size();
    }
    const size_t total = static_cast<size_t>(owned_offsets_[n]);
    owned_entries_.reset(total == 0 ? nullptr
                                    : static_cast<Entry*>(::operator new[](
                                          total * sizeof(Entry),
                                          std::align_val_t{kAlignment})));
    for (size_t v = 0; v < n; ++v) {
      if (!per_vertex[v].empty()) {
        std::memcpy(owned_entries_.get() + owned_offsets_[v],
                    per_vertex[v].data(),
                    per_vertex[v].size() * sizeof(Entry));
      }
    }
    std::vector<std::vector<Entry>>().swap(per_vertex);
    offsets_ = owned_offsets_.data();
    entries_ = owned_entries_.get();
    num_vertices_ = n;
    sealed_ = true;
  }

  /// Seals the pool as a view over externally owned arrays (the mmap
  /// snapshot path — no copy, no reseal). Validates the CSR structure:
  /// offsets must start at 0, be non-decreasing, and end exactly at
  /// `entries.size()`. Returns false (pool left unsealed) on malformed
  /// input; never reads `entries`.
  bool SealFromView(std::span<const uint64_t> offsets,
                    std::span<const Entry> entries) {
    Clear();
    if (offsets.empty() || offsets.front() != 0) return false;
    for (size_t i = 1; i < offsets.size(); ++i) {
      if (offsets[i] < offsets[i - 1]) return false;
    }
    if (offsets.back() != entries.size()) return false;
    offsets_ = offsets.data();
    entries_ = entries.data();
    num_vertices_ = offsets.size() - 1;
    sealed_ = true;
    return true;
  }

  /// The sealed labels of `v`, sorted exactly as the build produced them.
  /// (The empty-slice branch also keeps pointer arithmetic off the null
  /// entries array of an all-empty pool.)
  std::span<const Entry> Slice(VertexId v) const {
    const size_t begin = static_cast<size_t>(offsets_[v]);
    const size_t count = static_cast<size_t>(offsets_[v + 1]) - begin;
    if (count == 0) return {};
    return {entries_ + begin, count};
  }

  bool Sealed() const { return sealed_; }
  size_t NumVertices() const { return num_vertices_; }
  size_t NumEntries() const {
    return sealed_ ? static_cast<size_t>(offsets_[num_vertices_]) : 0;
  }

  /// Returns the pool to the unsealed (empty) state.
  void Clear() {
    owned_offsets_.clear();
    owned_offsets_.shrink_to_fit();
    owned_entries_.reset();
    offsets_ = nullptr;
    entries_ = nullptr;
    num_vertices_ = 0;
    sealed_ = false;
  }

  /// Resident footprint of the sealed arrays (heap or mapping — the bytes
  /// the Table 1 size columns and the `index.bytes` gauge report).
  size_t MemoryBytes() const {
    if (!sealed_) return 0;
    return (num_vertices_ + 1) * sizeof(uint64_t) +
           NumEntries() * sizeof(Entry);
  }

  /// Raw sealed arrays, for the snapshot writer. Valid only when sealed.
  std::span<const uint64_t> OffsetsRaw() const {
    return {offsets_, sealed_ ? num_vertices_ + 1 : 0};
  }
  std::span<const Entry> EntriesRaw() const {
    const size_t count = NumEntries();
    if (count == 0) return {};
    return {entries_, count};
  }

 private:
  struct AlignedDelete {
    void operator()(Entry* p) const {
      ::operator delete[](p, std::align_val_t{kAlignment});
    }
  };

  // Query-side pointers; aimed at the owned arrays after `Seal` and at
  // the external mapping after `SealFromView`.
  const uint64_t* offsets_ = nullptr;  // NumVertices() + 1 when sealed
  const Entry* entries_ = nullptr;
  size_t num_vertices_ = 0;
  bool sealed_ = false;

  std::vector<uint64_t> owned_offsets_;
  std::unique_ptr<Entry[], AlignedDelete> owned_entries_;
};

/// Block-compressed sibling of `FlatLabelPool<uint32_t>` for the plain
/// 2-hop rank lists: each vertex's strictly increasing rank list is split
/// into blocks of ~`block_entries` values, stored frame-of-reference
/// delta/bit-packed, behind an *uncompressed skip table* of per-block
/// {first, last, data offset}. The hot-path prefilter and block skipping
/// run on skip entries alone; only blocks whose rank ranges can intersect
/// are decoded (into small stack buffers — decompression stays off the
/// common path, CSIndex DataComp-style).
///
/// Block payload layout in `data_` (little-endian, byte-aligned per
/// block): u8 delta bit-width, u16 entry count, then `count - 1` packed
/// deltas (`v[i] - v[i-1] - 1`; the first value lives in the skip entry).
/// A trailing sentinel skip entry carries `data_offset == data size`, so
/// block `b` always spans `[skip[b].data_offset, skip[b+1].data_offset)`.
class CompressedRankPool {
 public:
  static constexpr size_t kMinBlockEntries = 8;
  static constexpr size_t kMaxBlockEntries = 1024;
  static constexpr size_t kDefaultBlockEntries = 64;
  static constexpr size_t kBlockHeaderBytes = 3;  // u8 width + u16 count

  struct SkipEntry {
    uint32_t first;
    uint32_t last;
    uint32_t data_offset;
  };
  static_assert(std::is_trivially_copyable_v<SkipEntry>);

  static size_t ClampBlockEntries(size_t block_entries) {
    return std::clamp(block_entries, kMinBlockEntries, kMaxBlockEntries);
  }

  CompressedRankPool() = default;

  /// Seals a compressed copy of `per_vertex` (each list strictly
  /// increasing). Takes a const ref — the caller keeps the build-side
  /// vectors, so a size-budget policy can retry with coarser blocks.
  void Seal(const std::vector<std::vector<uint32_t>>& per_vertex,
            size_t block_entries) {
    Clear();
    block_entries_ = ClampBlockEntries(block_entries);
    const size_t n = per_vertex.size();
    owned_vertex_blocks_.reserve(n + 1);
    owned_vertex_blocks_.push_back(0);
    for (size_t v = 0; v < n; ++v) {
      const std::vector<uint32_t>& list = per_vertex[v];
      for (size_t pos = 0; pos < list.size(); pos += block_entries_) {
        const size_t count = std::min(block_entries_, list.size() - pos);
        EncodeBlock(list.data() + pos, count);
      }
      num_entries_ += list.size();
      owned_vertex_blocks_.push_back(
          static_cast<uint32_t>(owned_skip_.size()));
    }
    owned_skip_.push_back(
        {0, 0, static_cast<uint32_t>(owned_data_.size())});  // sentinel
    vertex_blocks_ = owned_vertex_blocks_;
    skip_ = owned_skip_;
    data_ = owned_data_;
    sealed_ = true;
  }

  /// Seals the pool as a view over externally owned arrays (mmap
  /// snapshots). Validates every structural invariant the decoders rely
  /// on — monotonic block ranges and data offsets, per-block counts
  /// within the stack-buffer cap, widths <= 32, entry total matching —
  /// before any payload byte is trusted. Returns false on malformed
  /// input with the pool left unsealed.
  bool SealFromView(std::span<const uint32_t> vertex_blocks,
                    std::span<const SkipEntry> skip,
                    std::span<const uint8_t> data, uint64_t num_entries,
                    size_t block_entries) {
    Clear();
    if (block_entries < kMinBlockEntries ||
        block_entries > kMaxBlockEntries) {
      return false;
    }
    if (vertex_blocks.empty() || vertex_blocks.front() != 0) return false;
    if (skip.empty()) return false;
    const size_t num_blocks = skip.size() - 1;  // minus sentinel
    for (size_t i = 1; i < vertex_blocks.size(); ++i) {
      if (vertex_blocks[i] < vertex_blocks[i - 1]) return false;
    }
    if (vertex_blocks.back() != num_blocks) return false;
    if (skip.back().data_offset != data.size()) return false;
    uint64_t total = 0;
    for (size_t b = 0; b < num_blocks; ++b) {
      if (skip[b].first > skip[b].last) return false;
      if (skip[b].data_offset > skip[b + 1].data_offset) return false;
      const size_t block_bytes =
          skip[b + 1].data_offset - skip[b].data_offset;
      if (block_bytes < kBlockHeaderBytes) return false;
      const uint8_t* p = data.data() + skip[b].data_offset;
      const uint8_t width = p[0];
      uint16_t count;
      std::memcpy(&count, p + 1, sizeof(count));
      if (width > 32 || count == 0 || count > kMaxBlockEntries) {
        return false;
      }
      // The packed deltas must fit in the block's byte range.
      const size_t packed_bits = static_cast<size_t>(count - 1) * width;
      if ((packed_bits + 7) / 8 > block_bytes - kBlockHeaderBytes) {
        return false;
      }
      total += count;
    }
    if (total != num_entries) return false;
    block_entries_ = block_entries;
    vertex_blocks_ = vertex_blocks;
    skip_ = skip;
    data_ = data;
    num_entries_ = num_entries;
    sealed_ = true;
    return true;
  }

  bool Sealed() const { return sealed_; }
  size_t NumVertices() const {
    return vertex_blocks_.empty() ? 0 : vertex_blocks_.size() - 1;
  }
  size_t NumEntries() const { return static_cast<size_t>(num_entries_); }
  size_t NumBlocks() const { return skip_.empty() ? 0 : skip_.size() - 1; }
  size_t BlockEntries() const { return block_entries_; }

  void Clear() {
    owned_vertex_blocks_.clear();
    owned_vertex_blocks_.shrink_to_fit();
    owned_skip_.clear();
    owned_skip_.shrink_to_fit();
    owned_data_.clear();
    owned_data_.shrink_to_fit();
    vertex_blocks_ = {};
    skip_ = {};
    data_ = {};
    num_entries_ = 0;
    block_entries_ = kDefaultBlockEntries;
    sealed_ = false;
  }

  /// Resident footprint of the sealed representation: vertex->block
  /// ranges, skip table, and packed block data.
  size_t MemoryBytes() const {
    return vertex_blocks_.size() * sizeof(uint32_t) +
           skip_.size() * sizeof(SkipEntry) + data_.size();
  }

  bool Empty(VertexId v) const {
    return vertex_blocks_[v] == vertex_blocks_[v + 1];
  }

  /// Entry count of one list — walks the block headers (cold paths:
  /// probes, Save, stats).
  size_t ListEntries(VertexId v) const {
    size_t total = 0;
    for (size_t b = vertex_blocks_[v]; b < vertex_blocks_[v + 1]; ++b) {
      total += BlockCount(b);
    }
    return total;
  }

  /// Membership test: one skip-table binary search, then a partial
  /// decode of at most one block — the prefix-sum walk stops at the
  /// first value >= rank.
  bool Contains(VertexId v, uint32_t rank) const {
    const size_t begin = vertex_blocks_[v], end = vertex_blocks_[v + 1];
    const size_t b = LowerBoundBlock(begin, end, rank);
    if (b == end || skip_[b].first > rank) return false;
    if (skip_[b].first == rank || skip_[b].last == rank) return true;
    const uint8_t* base =
        data_.data() + skip_[b].data_offset + kBlockHeaderBytes;
    const int width = base[-kBlockHeaderBytes];
    const size_t count = std::min<size_t>(BlockCount(b), kMaxBlockEntries);
    const uint64_t mask = BitWriter::MaskOf(width);
    const int64_t max_start =
        (data_.data() + data_.size() - base) * 8 - 64 + 7;
    uint32_t value = skip_[b].first;
    uint64_t bit = 0;
    size_t i = 1;
    for (; i < count && static_cast<int64_t>(bit) <= max_start; ++i) {
      uint64_t chunk;
      std::memcpy(&chunk, base + (bit >> 3), sizeof(chunk));
      value += 1 + static_cast<uint32_t>((chunk >> (bit & 7)) & mask);
      if (value >= rank) return value == rank;
      bit += width;
    }
    if (i < count) {
      const uint8_t* block_end = data_.data() + skip_[b + 1].data_offset;
      BitReader reader(base + (bit >> 3), block_end);
      reader.Get(static_cast<int>(bit & 7));
      for (; i < count; ++i) {
        value += 1 + reader.Get(width);
        if (value >= rank) return value == rank;
      }
    }
    return false;
  }

  /// Decompresses one full list (Save / label introspection).
  void Decode(VertexId v, std::vector<uint32_t>* out) const {
    out->clear();
    uint32_t buf[kMaxBlockEntries];
    for (size_t b = vertex_blocks_[v]; b < vertex_blocks_[v + 1]; ++b) {
      const size_t count = DecodeBlock(b, buf);
      out->insert(out->end(), buf, buf + count);
    }
  }

  /// Exact intersection test of two compressed lists: block-merge over
  /// the skip tables (binary-search jumps across non-overlapping runs),
  /// decoding only block pairs whose rank ranges overlap.
  static bool Intersect(const CompressedRankPool& pa, VertexId va,
                        const CompressedRankPool& pb, VertexId vb) {
    size_t i = pa.vertex_blocks_[va];
    const size_t ia_end = pa.vertex_blocks_[va + 1];
    size_t j = pb.vertex_blocks_[vb];
    const size_t jb_end = pb.vertex_blocks_[vb + 1];
    if (i == ia_end || j == jb_end) return false;
    // First/last-rank prefilter on whole lists, from skip entries alone.
    if (pa.skip_[ia_end - 1].last < pb.skip_[j].first ||
        pb.skip_[jb_end - 1].last < pa.skip_[i].first) {
      return false;
    }
    uint32_t buf_a[kMaxBlockEntries], buf_b[kMaxBlockEntries];
    size_t na = 0, nb = 0;
    size_t decoded_a = SIZE_MAX, decoded_b = SIZE_MAX;
    while (i < ia_end && j < jb_end) {
      const SkipEntry& sa = pa.skip_[i];
      const SkipEntry& sb = pb.skip_[j];
      if (sa.last < sb.first) {
        i = pa.LowerBoundBlock(i + 1, ia_end, sb.first);
        continue;
      }
      if (sb.last < sa.first) {
        j = pb.LowerBoundBlock(j + 1, jb_end, sa.first);
        continue;
      }
      if (decoded_a != i) { na = pa.DecodeBlock(i, buf_a); decoded_a = i; }
      if (decoded_b != j) { nb = pb.DecodeBlock(j, buf_b); decoded_b = j; }
      if (IntersectSorted(buf_a, na, buf_b, nb)) return true;
      // Lists are strictly increasing, so equal lasts would have matched
      // above; advancing both on a tie is safe.
      if (sa.last <= sb.last) ++i;
      if (sb.last <= sa.last) ++j;
    }
    return false;
  }

  /// Intersection of a compressed list with a raw sorted array (the
  /// post-seal delta overlay).
  bool IntersectWithSorted(VertexId v, const uint32_t* other,
                           size_t n) const {
    if (n == 0) return false;
    const size_t end = vertex_blocks_[v + 1];
    uint32_t buf[kMaxBlockEntries];
    for (size_t b = LowerBoundBlock(vertex_blocks_[v], end, other[0]);
         b < end && skip_[b].first <= other[n - 1]; ++b) {
      const size_t count = DecodeBlock(b, buf);
      if (IntersectSorted(buf, count, other, n)) return true;
    }
    return false;
  }

  /// Raw sealed arrays, for the snapshot writer. Valid only when sealed.
  std::span<const uint32_t> VertexBlocksRaw() const {
    return vertex_blocks_;
  }
  std::span<const SkipEntry> SkipRaw() const { return skip_; }
  std::span<const uint8_t> DataRaw() const { return data_; }

 private:
  uint16_t BlockCount(size_t b) const {
    uint16_t count;
    std::memcpy(&count, data_.data() + skip_[b].data_offset + 1,
                sizeof(count));
    return count;
  }

  /// Decodes block `b` into `out` (capacity >= kMaxBlockEntries).
  /// Returns the entry count. Bounds-safe for any sealed pool: the
  /// count and width were validated at seal time and the readers
  /// cannot run past the data byte range.
  ///
  /// Deltas are fixed-width, so entry i's bits start at i * width: the
  /// hot loop decodes by independent unaligned 64-bit loads (no serial
  /// accumulator chain, the prefix sum is the only dependency), and only
  /// the last few entries of the *data array* — where an 8-byte load
  /// would run past the buffer — fall back to the byte-safe BitReader.
  size_t DecodeBlock(size_t b, uint32_t* out) const {
    const uint8_t* base =
        data_.data() + skip_[b].data_offset + kBlockHeaderBytes;
    const int width = base[-kBlockHeaderBytes];
    const size_t count =
        std::min<size_t>(BlockCount(b), kMaxBlockEntries);
    out[0] = skip_[b].first;
    const uint64_t mask = BitWriter::MaskOf(width);
    const int64_t safe_bytes = data_.data() + data_.size() - base;
    const int64_t max_start = safe_bytes * 8 - 64 + 7;
    uint64_t bit = 0;
    size_t i = 1;
    for (; i < count && static_cast<int64_t>(bit) <= max_start; ++i) {
      uint64_t chunk;
      std::memcpy(&chunk, base + (bit >> 3), sizeof(chunk));
      out[i] = out[i - 1] + 1 +
               static_cast<uint32_t>((chunk >> (bit & 7)) & mask);
      bit += width;
    }
    if (i < count) {
      const uint8_t* block_end = data_.data() + skip_[b + 1].data_offset;
      BitReader reader(base + (bit >> 3), block_end);
      reader.Get(static_cast<int>(bit & 7));  // skip the partial byte
      for (; i < count; ++i) {
        out[i] = out[i - 1] + 1 + reader.Get(width);
      }
    }
    return count;
  }

  /// First block index in [lo, hi) with `last >= rank` (hi when none).
  size_t LowerBoundBlock(size_t lo, size_t hi, uint32_t rank) const {
    const SkipEntry* base = skip_.data();
    return static_cast<size_t>(
        std::lower_bound(base + lo, base + hi, rank,
                         [](const SkipEntry& e, uint32_t r) {
                           return e.last < r;
                         }) -
        base);
  }

  void EncodeBlock(const uint32_t* values, size_t count) {
    uint32_t max_delta = 0;
    for (size_t i = 1; i < count; ++i) {
      max_delta = std::max(max_delta, values[i] - values[i - 1] - 1);
    }
    const int width = PackedBitWidth(max_delta);
    owned_skip_.push_back({values[0], values[count - 1],
                           static_cast<uint32_t>(owned_data_.size())});
    owned_data_.push_back(static_cast<uint8_t>(width));
    const uint16_t count16 = static_cast<uint16_t>(count);
    owned_data_.push_back(static_cast<uint8_t>(count16));
    owned_data_.push_back(static_cast<uint8_t>(count16 >> 8));
    BitWriter writer(&owned_data_);
    for (size_t i = 1; i < count; ++i) {
      writer.Put(values[i] - values[i - 1] - 1, width);
    }
    writer.Flush();
  }

  std::span<const uint32_t> vertex_blocks_;  // n + 1 block-range bounds
  std::span<const SkipEntry> skip_;          // NumBlocks() + 1 (sentinel)
  std::span<const uint8_t> data_;
  uint64_t num_entries_ = 0;
  size_t block_entries_ = kDefaultBlockEntries;
  bool sealed_ = false;

  std::vector<uint32_t> owned_vertex_blocks_;
  std::vector<SkipEntry> owned_skip_;
  std::vector<uint8_t> owned_data_;
};

/// Block-compressed pool for the LCR 2-hop entries ({rank, label mask}
/// pairs sorted by rank, duplicate ranks forming *rank groups* with
/// distinct masks). Same skip-table design as `CompressedRankPool`, with
/// two structural differences: rank deltas may be zero (groups), and a
/// block never splits a rank group — the group sweeps of the labeled
/// intersection see every mask of a rank inside one decoded block, and
/// the equal-last block-merge advance stays sound.
///
/// Block payload: u8 rank bit-width, u8 mask bit-width, u16 count, then
/// `count - 1` packed rank deltas followed by `count` packed masks.
///
/// `Seal` can *refuse* (returns false) when a single rank group exceeds
/// the block cap — the caller keeps flat pools instead of failing
/// (FERRARI-style degradation).
template <typename Entry>
class CompressedEntryPool {
  static_assert(std::is_trivially_copyable_v<Entry>);

 public:
  static constexpr size_t kMinBlockEntries = 8;
  static constexpr size_t kMaxBlockEntries = 2048;
  static constexpr size_t kBlockHeaderBytes = 4;

  struct SkipEntry {
    uint32_t first;  // first rank in the block
    uint32_t last;   // last rank in the block
    uint32_t data_offset;
  };

  bool Seal(const std::vector<std::vector<Entry>>& per_vertex,
            size_t block_entries) {
    Clear();
    block_entries_ = std::clamp(block_entries, kMinBlockEntries,
                                kMaxBlockEntries);
    const size_t n = per_vertex.size();
    owned_vertex_blocks_.reserve(n + 1);
    owned_vertex_blocks_.push_back(0);
    for (size_t v = 0; v < n; ++v) {
      const std::vector<Entry>& list = per_vertex[v];
      // Greedily pack whole rank groups: close the open block when the
      // next group would push it past the target size.
      size_t block_begin = 0, pos = 0;
      while (pos < list.size()) {
        size_t group_end = pos + 1;
        while (group_end < list.size() &&
               list[group_end].rank == list[pos].rank) {
          ++group_end;
        }
        if (group_end - pos > kMaxBlockEntries) {
          Clear();
          return false;  // one group overflows any block: stay flat
        }
        if (pos > block_begin && group_end - block_begin > block_entries_) {
          EncodeBlock(list.data() + block_begin, pos - block_begin);
          block_begin = pos;
        }
        pos = group_end;
      }
      if (pos > block_begin) {
        EncodeBlock(list.data() + block_begin, pos - block_begin);
      }
      num_entries_ += list.size();
      owned_vertex_blocks_.push_back(
          static_cast<uint32_t>(owned_skip_.size()));
    }
    owned_skip_.push_back(
        {0, 0, static_cast<uint32_t>(owned_data_.size())});  // sentinel
    sealed_ = true;
    return true;
  }

  bool Sealed() const { return sealed_; }
  size_t NumVertices() const {
    return owned_vertex_blocks_.empty() ? 0
                                        : owned_vertex_blocks_.size() - 1;
  }
  size_t NumEntries() const { return static_cast<size_t>(num_entries_); }
  size_t BlockEntries() const { return block_entries_; }

  void Clear() {
    owned_vertex_blocks_.clear();
    owned_vertex_blocks_.shrink_to_fit();
    owned_skip_.clear();
    owned_skip_.shrink_to_fit();
    owned_data_.clear();
    owned_data_.shrink_to_fit();
    num_entries_ = 0;
    block_entries_ = kMinBlockEntries;
    sealed_ = false;
  }

  size_t MemoryBytes() const {
    return owned_vertex_blocks_.size() * sizeof(uint32_t) +
           owned_skip_.size() * sizeof(SkipEntry) + owned_data_.size();
  }

  bool Empty(VertexId v) const {
    return owned_vertex_blocks_[v] == owned_vertex_blocks_[v + 1];
  }

  /// Block-index range [begin, end) of vertex `v`.
  size_t BlockBegin(VertexId v) const { return owned_vertex_blocks_[v]; }
  size_t BlockEnd(VertexId v) const { return owned_vertex_blocks_[v + 1]; }
  const SkipEntry& Skip(size_t b) const { return owned_skip_[b]; }

  /// First block index in [lo, hi) with `last >= rank` (hi when none).
  size_t LowerBoundBlock(size_t lo, size_t hi, uint32_t rank) const {
    const SkipEntry* base = owned_skip_.data();
    return static_cast<size_t>(
        std::lower_bound(base + lo, base + hi, rank,
                         [](const SkipEntry& e, uint32_t r) {
                           return e.last < r;
                         }) -
        base);
  }

  size_t ListEntries(VertexId v) const {
    size_t total = 0;
    for (size_t b = BlockBegin(v); b < BlockEnd(v); ++b) {
      total += BlockCountOf(b);
    }
    return total;
  }

  /// Decodes block `b` into `out` (capacity >= kMaxBlockEntries).
  size_t DecodeBlock(size_t b, Entry* out) const {
    const uint8_t* p = owned_data_.data() + owned_skip_[b].data_offset;
    const uint8_t* block_end =
        owned_data_.data() + owned_skip_[b + 1].data_offset;
    const int rank_width = p[0];
    const int mask_width = p[1];
    const size_t count =
        std::min<size_t>(BlockCountOf(b), kMaxBlockEntries);
    BitReader reader(p + kBlockHeaderBytes, block_end);
    uint32_t rank = owned_skip_[b].first;
    out[0].rank = rank;
    for (size_t i = 1; i < count; ++i) {
      rank += reader.Get(rank_width);
      out[i].rank = rank;
    }
    for (size_t i = 0; i < count; ++i) {
      out[i].mask = reader.Get(mask_width);
    }
    return count;
  }

  void Decode(VertexId v, std::vector<Entry>* out) const {
    out->clear();
    Entry buf[kMaxBlockEntries];
    for (size_t b = BlockBegin(v); b < BlockEnd(v); ++b) {
      const size_t count = DecodeBlock(b, buf);
      out->insert(out->end(), buf, buf + count);
    }
  }

 private:
  uint16_t BlockCountOf(size_t b) const {
    uint16_t count;
    std::memcpy(&count,
                owned_data_.data() + owned_skip_[b].data_offset + 2,
                sizeof(count));
    return count;
  }

  void EncodeBlock(const Entry* entries, size_t count) {
    uint32_t max_delta = 0, max_mask = 0;
    for (size_t i = 0; i < count; ++i) {
      if (i > 0) {
        max_delta =
            std::max(max_delta, entries[i].rank - entries[i - 1].rank);
      }
      max_mask = std::max(max_mask, static_cast<uint32_t>(entries[i].mask));
    }
    const int rank_width = PackedBitWidth(max_delta);
    const int mask_width = PackedBitWidth(max_mask);
    owned_skip_.push_back({entries[0].rank, entries[count - 1].rank,
                           static_cast<uint32_t>(owned_data_.size())});
    owned_data_.push_back(static_cast<uint8_t>(rank_width));
    owned_data_.push_back(static_cast<uint8_t>(mask_width));
    const uint16_t count16 = static_cast<uint16_t>(count);
    owned_data_.push_back(static_cast<uint8_t>(count16));
    owned_data_.push_back(static_cast<uint8_t>(count16 >> 8));
    BitWriter writer(&owned_data_);
    for (size_t i = 1; i < count; ++i) {
      writer.Put(entries[i].rank - entries[i - 1].rank, rank_width);
    }
    for (size_t i = 0; i < count; ++i) {
      writer.Put(static_cast<uint32_t>(entries[i].mask), mask_width);
    }
    writer.Flush();
  }

  std::vector<uint32_t> owned_vertex_blocks_;
  std::vector<SkipEntry> owned_skip_;
  std::vector<uint8_t> owned_data_;
  uint64_t num_entries_ = 0;
  size_t block_entries_ = kMinBlockEntries;
  bool sealed_ = false;
};

}  // namespace reach

#endif  // REACH_CORE_LABEL_POOL_H_
