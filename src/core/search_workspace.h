#ifndef REACH_CORE_SEARCH_WORKSPACE_H_
#define REACH_CORE_SEARCH_WORKSPACE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/types.h"
#include "obs/query_probe.h"

namespace reach {

/// Reusable visited-marks + queue storage for repeated graph traversals.
///
/// Clearing a visited array per query is O(V); with millions of queries on
/// large graphs that dominates. The workspace instead stamps each mark
/// with an epoch counter and bumps the epoch per traversal, making "clear"
/// O(1). Two independent mark sets are provided so bidirectional searches
/// can stamp the forward and backward frontiers separately.
class SearchWorkspace {
 public:
  SearchWorkspace() = default;

  /// Ensures capacity for graphs with `num_vertices` vertices and resets
  /// both mark sets.
  void Prepare(size_t num_vertices) {
    if (forward_marks_.size() < num_vertices) {
      forward_marks_.assign(num_vertices, 0);
      backward_marks_.assign(num_vertices, 0);
      epoch_ = 0;
    }
    ++epoch_;
    if (epoch_ == 0) {  // wrapped: do the O(V) clear once per 2^32 queries
      forward_marks_.assign(forward_marks_.size(), 0);
      backward_marks_.assign(backward_marks_.size(), 0);
      epoch_ = 1;
    }
    queue_.clear();
    backward_queue_.clear();
  }

  /// Marks `v` in the forward set; returns false if already marked.
  bool MarkForward(VertexId v) {
    if (forward_marks_[v] == epoch_) return false;
    forward_marks_[v] = epoch_;
    return true;
  }

  /// True iff `v` is marked in the forward set this epoch.
  bool IsForwardMarked(VertexId v) const { return forward_marks_[v] == epoch_; }

  /// Marks `v` in the backward set; returns false if already marked.
  bool MarkBackward(VertexId v) {
    if (backward_marks_[v] == epoch_) return false;
    backward_marks_[v] = epoch_;
    return true;
  }

  /// True iff `v` is marked in the backward set this epoch.
  bool IsBackwardMarked(VertexId v) const {
    return backward_marks_[v] == epoch_;
  }

  /// Scratch FIFO/stack for the forward frontier.
  std::vector<VertexId>& queue() { return queue_; }

  /// Scratch FIFO/stack for the backward frontier.
  std::vector<VertexId>& backward_queue() { return backward_queue_; }

  /// Query instrumentation carried alongside the traversal scratch state:
  /// the traversal helpers and every index that guides a search through
  /// this workspace record into the same probe (plain increments via the
  /// REACH_PROBE_* macros). Not reset by `Prepare` — it accumulates across
  /// queries until the owner resets it.
  QueryProbe& probe() { return probe_; }
  const QueryProbe& probe() const { return probe_; }

 private:
  std::vector<uint32_t> forward_marks_;
  std::vector<uint32_t> backward_marks_;
  uint32_t epoch_ = 0;
  std::vector<VertexId> queue_;
  std::vector<VertexId> backward_queue_;
  QueryProbe probe_;
};

}  // namespace reach

#endif  // REACH_CORE_SEARCH_WORKSPACE_H_
