#ifndef REACH_LCR_LCR_INDEX_H_
#define REACH_LCR_LCR_INDEX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/edge_update.h"
#include "core/index_stats.h"
#include "core/serialize.h"
#include "graph/labeled_digraph.h"
#include "graph/types.h"
#include "obs/query_probe.h"

namespace reach {

/// A single labeled write: insert or delete of the arc
/// `source -label-> target`. The labeled analogue of `EdgeUpdate`
/// (core/edge_update.h) for the LCR write surface; batches share the
/// `UpdateResult` contract.
struct LabeledEdgeUpdate {
  using Kind = EdgeUpdate::Kind;

  Kind kind = Kind::kInsert;
  VertexId source = 0;
  VertexId target = 0;
  Label label = 0;

  static LabeledEdgeUpdate Insert(VertexId s, VertexId t, Label l) {
    return {Kind::kInsert, s, t, l};
  }
  static LabeledEdgeUpdate Delete(VertexId s, VertexId t, Label l) {
    return {Kind::kDelete, s, t, l};
  }

  bool IsInsert() const { return kind == Kind::kInsert; }
  bool IsDelete() const { return kind == Kind::kDelete; }

  friend bool operator==(const LabeledEdgeUpdate&,
                         const LabeledEdgeUpdate&) = default;
};

/// An ordered batch of labeled updates, applied atomically per the
/// `UpdateResult` contract (validate-first; later updates see earlier
/// ones).
using LabeledUpdateBatch = std::vector<LabeledEdgeUpdate>;

/// Abstract interface of an index for alternation-based path-constrained
/// reachability queries (label-constrained reachability, LCR — paper §4.1).
///
/// `Query(s, t, allowed)` answers Qr(s, t, alpha) for the alternation
/// constraint alpha = (l1 ∪ l2 ∪ ...)* whose label set is the bitmask
/// `allowed`: does an s-t path exist using only edges whose label is in
/// `allowed`? Kleene-star semantics make reachability reflexive:
/// `Query(v, v, anything) == true` (empty path).
///
/// As with plain indexes, answers are always exact; partial indexes fall
/// back to constrained traversal internally.
class LcrIndex {
 public:
  virtual ~LcrIndex() = default;

  /// Builds the index; same lifetime contract as `ReachabilityIndex`.
  virtual void Build(const LabeledDigraph& graph) = 0;

  /// Answers Qr(s, t, (∪ allowed)*).
  virtual bool Query(VertexId s, VertexId t, LabelSet allowed) const = 0;

  /// Serialization capability (optional) — same envelope contract as
  /// `ReachabilityIndex` (core/serialize.h): versioned envelope + payload
  /// on `Save`, typed mismatch errors on `Load`, defaults that signal
  /// "unsupported" explicitly.
  virtual bool SupportsSerialization() const { return false; }

  virtual bool Save(std::ostream& out) const {
    (void)out;
    return false;
  }

  virtual LoadResult Load(std::istream& in) {
    (void)in;
    return LoadResult{LoadStatus::kUnsupported, Name()};
  }

  /// Index footprint in bytes (labels only).
  virtual size_t IndexSizeBytes() const = 0;

  /// True if queries never fall back to graph traversal.
  virtual bool IsComplete() const = 0;

  /// Identifier for benchmark tables.
  virtual std::string Name() const = 0;

  /// Build statistics of the last `Build()` (see `ReachabilityIndex`).
  const IndexStats& Stats() const { return build_stats_; }

  /// Per-query instrumentation accumulated since `Build()` /
  /// `ResetProbe()`; empty for uninstrumented indexes or REACH_METRICS=0.
  virtual QueryProbe Probe() const { return QueryProbe{}; }

  /// Zeroes the probe counters.
  virtual void ResetProbe() const {}

 protected:
  /// Populated by each `Build()` via `BuildStatsScope`.
  IndexStats build_stats_;
};

}  // namespace reach

#endif  // REACH_LCR_LCR_INDEX_H_
