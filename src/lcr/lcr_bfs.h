#ifndef REACH_LCR_LCR_BFS_H_
#define REACH_LCR_LCR_BFS_H_

#include <string>

#include "core/search_workspace.h"
#include "lcr/lcr_index.h"

namespace reach {

/// Label-constrained BFS from `s`: true iff `t` is reachable using only
/// edges whose labels are in `allowed` — the §2.3 online baseline for
/// alternation constraints and the oracle for every LCR index test.
bool LcrBfsReachability(const LabeledDigraph& graph, VertexId s, VertexId t,
                        LabelSet allowed, SearchWorkspace& ws,
                        size_t* visited = nullptr);

/// Index-interface adapter for the constrained-BFS baseline.
class LcrOnlineBfs : public LcrIndex {
 public:
  LcrOnlineBfs() = default;

  void Build(const LabeledDigraph& graph) override { graph_ = &graph; }
  bool Query(VertexId s, VertexId t, LabelSet allowed) const override;
  size_t IndexSizeBytes() const override { return 0; }
  bool IsComplete() const override { return false; }
  std::string Name() const override { return "lcr-bfs"; }

 private:
  const LabeledDigraph* graph_ = nullptr;
  mutable SearchWorkspace ws_;
};

}  // namespace reach

#endif  // REACH_LCR_LCR_BFS_H_
