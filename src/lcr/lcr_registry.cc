#include "lcr/lcr_registry.h"

#include <cstdlib>

#include "lcr/gtc_index.h"
#include "lcr/landmark_index.h"
#include "lcr/lcr_bfs.h"
#include "lcr/pruned_labeled_two_hop.h"
#include "lcr/tree_lcr_index.h"

namespace reach {

namespace {

size_t ParseParam(const std::string& spec, const std::string& key,
                  size_t fallback) {
  const std::string needle = key + "=";
  const size_t pos = spec.find(needle);
  if (pos == std::string::npos) return fallback;
  return static_cast<size_t>(
      std::strtoull(spec.c_str() + pos + needle.size(), nullptr, 10));
}

}  // namespace

std::unique_ptr<LcrIndex> MakeLcrIndex(const std::string& spec) {
  const std::string name = spec.substr(0, spec.find(':'));
  if (name == "lcr-bfs") return std::make_unique<LcrOnlineBfs>();
  if (name == "gtc") return std::make_unique<GtcIndex>();
  if (name == "landmark") {
    return std::make_unique<LandmarkIndex>(ParseParam(spec, "k", 16),
                                           ParseParam(spec, "b", 2));
  }
  if (name == "p2h") return std::make_unique<PrunedLabeledTwoHop>();
  if (name == "jin-tree") return std::make_unique<TreeLcrIndex>();
  return nullptr;
}

std::vector<std::string> DefaultLcrIndexSpecs() {
  return {"lcr-bfs", "gtc", "jin-tree", "landmark", "p2h"};
}

void AddLcrIndexReport(MetricsExporter& exporter, const LcrIndex& index,
                       const std::string& name_prefix) {
  IndexReport report = MakeIndexReport(index);
  if (!name_prefix.empty()) report.name = name_prefix + report.name;
  exporter.Add(std::move(report));
}

}  // namespace reach
