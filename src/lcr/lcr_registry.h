#ifndef REACH_LCR_LCR_REGISTRY_H_
#define REACH_LCR_LCR_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "lcr/lcr_index.h"
#include "obs/metrics_exporter.h"

namespace reach {

/// Creates an LCR index by specification string. Known specs: "lcr-bfs",
/// "gtc", "jin-tree",
/// "landmark" / "landmark:k=<n>" / "landmark:k=<n>:b=<n>", "p2h".
/// Returns nullptr for unknown specs.
std::unique_ptr<LcrIndex> MakeLcrIndex(const std::string& spec);

/// One spec per implemented Table 2 alternation row plus the baseline.
std::vector<std::string> DefaultLcrIndexSpecs();

/// Folds `index` into `exporter` as an `IndexReport`, optionally prefixing
/// the report name. Non-template convenience over `MakeIndexReport`.
void AddLcrIndexReport(MetricsExporter& exporter, const LcrIndex& index,
                       const std::string& name_prefix = "");

}  // namespace reach

#endif  // REACH_LCR_LCR_REGISTRY_H_
