#ifndef REACH_LCR_GTC_INDEX_H_
#define REACH_LCR_GTC_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "lcr/label_set.h"
#include "lcr/lcr_index.h"

namespace reach {

/// The complete generalized-transitive-closure index of Zou et al. [48, 56]
/// (paper §4.1.2): materializes, for every ordered vertex pair (s, t), the
/// antichain of minimal SPLSs of s-t paths, by running the Dijkstra-like
/// single-source GTC computation from every vertex.
///
/// Queries are pure lookups: Qr(s, t, alpha) is true iff some stored
/// SPLS(s, t) ⊆ alpha's label set. Like the plain TC, the quadratic
/// materialization is the scalability ceiling the survey attributes to GTC
/// approaches — visible through `IndexSizeBytes()`.
///
/// (The original work's SCC-portal decomposition and bottom-up sharing are
/// build-time optimizations of the same index contents; see DESIGN.md.)
class GtcIndex : public LcrIndex {
 public:
  GtcIndex() = default;

  void Build(const LabeledDigraph& graph) override;
  bool Query(VertexId s, VertexId t, LabelSet allowed) const override;
  size_t IndexSizeBytes() const override;
  bool IsComplete() const override { return true; }
  std::string Name() const override { return "gtc"; }
  QueryProbe Probe() const override { return probe_; }
  void ResetProbe() const override { probe_.Reset(); }

  /// The minimal SPLSs from s to t (empty if unreachable; {∅} if s == t).
  std::vector<LabelSet> Spls(VertexId s, VertexId t) const;

  /// Total number of (pair, SPLS) entries.
  size_t TotalEntries() const { return entries_.size(); }

 private:
  struct Entry {
    VertexId target;
    LabelSet mask;
  };

  size_t num_vertices_ = 0;
  // Row s: entries_[row_offsets_[s] .. row_offsets_[s+1]) sorted by target.
  std::vector<size_t> row_offsets_;
  std::vector<Entry> entries_;
  mutable QueryProbe probe_;
};

}  // namespace reach

#endif  // REACH_LCR_GTC_INDEX_H_
