#include "lcr/pruned_labeled_two_hop.h"

#include <algorithm>
#include <numeric>

namespace reach {

namespace {

// A label-BFS state: `vertex` reached with accumulated label set `mask`.
struct State {
  LabelSet mask;
  VertexId vertex;
};

// Bucket queue keyed by |mask| so states expand in nondecreasing number of
// distinct labels (minimal SPLSs first).
class BucketQueue {
 public:
  void Clear() {
    for (auto& b : buckets_) b.clear();
    level_ = 0;
    index_ = 0;
  }

  void Push(State s) { buckets_[LabelCount(s.mask)].push_back(s); }

  // Returns false when empty. States pushed at the current level while
  // draining it are still popped (same-level growth).
  bool Pop(State* out) {
    while (level_ <= kMaxLabels) {
      if (index_ < buckets_[level_].size()) {
        *out = buckets_[level_][index_++];
        return true;
      }
      buckets_[level_].clear();
      index_ = 0;
      ++level_;
    }
    return false;
  }

 private:
  std::vector<State> buckets_[kMaxLabels + 1];
  size_t level_ = 0;
  size_t index_ = 0;
};

// Per-sweep dominance antichains with O(1) sparse reset.
class SeenSets {
 public:
  void Reset(size_t n) {
    if (seen_.size() < n) seen_.resize(n);
    for (VertexId v : touched_) seen_[v] = MinimalLabelSets();
    touched_.clear();
  }

  // Adds mask for v unless dominated; returns true if added.
  bool Add(VertexId v, LabelSet mask) {
    if (seen_[v].empty()) touched_.push_back(v);
    return seen_[v].AddIfMinimal(mask);
  }

  bool Dominates(VertexId v, LabelSet mask) const {
    return seen_[v].Dominates(mask);
  }

 private:
  std::vector<MinimalLabelSets> seen_;
  std::vector<VertexId> touched_;
};

}  // namespace

template <typename ArcFn>
void PrunedLabeledTwoHop::ArcsOut(VertexId v, ArcFn&& fn) const {
  for (const auto& arc : graph_->OutArcs(v)) fn(arc);
  if (!extra_out_.empty()) {
    for (const auto& arc : extra_out_[v]) fn(arc);
  }
}

template <typename ArcFn>
void PrunedLabeledTwoHop::ArcsIn(VertexId v, ArcFn&& fn) const {
  for (const auto& arc : graph_->InArcs(v)) fn(arc);
  if (!extra_in_.empty()) {
    for (const auto& arc : extra_in_[v]) fn(arc);
  }
}

bool PrunedLabeledTwoHop::HasCoveredEntry(const std::vector<Entry>& entries,
                                          uint32_t rank, LabelSet allowed) {
  // Entries are grouped by ascending rank; binary-search the group start.
  auto it = std::lower_bound(
      entries.begin(), entries.end(), rank,
      [](const Entry& e, uint32_t r) { return e.rank < r; });
  for (; it != entries.end() && it->rank == rank; ++it) {
    if (IsSubsetOf(it->mask, allowed)) return true;
  }
  return false;
}

bool PrunedLabeledTwoHop::LabelQuery(VertexId s, VertexId t,
                                     LabelSet allowed) const {
  if (s == t) return true;
  // Virtual self-hops: s itself or t itself as the common hop.
  if (HasCoveredEntry(lin_[t], rank_[s], allowed)) return true;
  if (HasCoveredEntry(lout_[s], rank_[t], allowed)) return true;
  // Two-pointer sweep over rank groups.
  const auto& out = lout_[s];
  const auto& in = lin_[t];
  size_t i = 0, j = 0;
  while (i < out.size() && j < in.size()) {
    if (out[i].rank < in[j].rank) {
      ++i;
    } else if (out[i].rank > in[j].rank) {
      ++j;
    } else {
      const uint32_t rank = out[i].rank;
      size_t i_end = i, j_end = j;
      while (i_end < out.size() && out[i_end].rank == rank) ++i_end;
      while (j_end < in.size() && in[j_end].rank == rank) ++j_end;
      for (size_t a = i; a < i_end; ++a) {
        if (!IsSubsetOf(out[a].mask, allowed)) continue;
        for (size_t b = j; b < j_end; ++b) {
          if (IsSubsetOf(in[b].mask, allowed)) return true;
        }
      }
      i = i_end;
      j = j_end;
    }
  }
  return false;
}

bool PrunedLabeledTwoHop::Query(VertexId s, VertexId t,
                                LabelSet allowed) const {
  REACH_PROBE_INC(probe_, queries);
  // Worst case the two-pointer sweep consults both full entry lists.
  // (LabelQuery itself is unprobed — the build's pruning tests would
  // otherwise swamp the counts.)
  REACH_PROBE_ADD(probe_, labels_scanned, lout_[s].size() + lin_[t].size());
  const bool reachable = LabelQuery(s, t, allowed);
  if (reachable) {
    REACH_PROBE_INC(probe_, positives);
  } else {
    REACH_PROBE_INC(probe_, label_rejections);  // complete label: no fallback
  }
  return reachable;
}

void PrunedLabeledTwoHop::Build(const LabeledDigraph& graph) {
  BuildStatsScope build(&build_stats_);
  probe_.Reset();
  graph_ = &graph;
  extra_out_.clear();
  extra_in_.clear();
  const size_t n = graph.NumVertices();

  BuildPhaseTimer order_timer(&build_stats_.phases, "order");
  by_rank_.resize(n);
  std::iota(by_rank_.begin(), by_rank_.end(), 0);
  std::stable_sort(by_rank_.begin(), by_rank_.end(),
                   [&](VertexId a, VertexId b) {
                     return graph.Degree(a) > graph.Degree(b);
                   });
  rank_.resize(n);
  for (uint32_t r = 0; r < n; ++r) rank_[by_rank_[r]] = r;
  order_timer.Stop();

  BuildPhaseTimer label_timer(&build_stats_.phases, "label_bfs");
  lin_.assign(n, {});
  lout_.assign(n, {});
  BucketQueue queue;
  SeenSets seen;
  State state;

  for (uint32_t r = 0; r < n; ++r) {
    const VertexId hop = by_rank_[r];
    // Forward sweep: hop -> x states populate Lin(x).
    queue.Clear();
    seen.Reset(n);
    seen.Add(hop, 0);
    queue.Push({0, hop});
    while (queue.Pop(&state)) {
      ArcsOut(state.vertex, [&](const LabeledDigraph::Arc& arc) {
        const VertexId x = arc.vertex;
        if (x == hop || rank_[x] < r) return;
        const LabelSet next = state.mask | LabelBit(arc.label);
        if (seen.Dominates(x, next)) return;
        if (LabelQuery(hop, x, next)) {
          seen.Add(x, next);  // block supersets; already answerable
          return;
        }
        seen.Add(x, next);
        lin_[x].push_back({r, next});
        queue.Push({next, x});
      });
    }
    // Backward sweep: x -> hop states populate Lout(x).
    queue.Clear();
    seen.Reset(n);
    seen.Add(hop, 0);
    queue.Push({0, hop});
    while (queue.Pop(&state)) {
      ArcsIn(state.vertex, [&](const LabeledDigraph::Arc& arc) {
        const VertexId x = arc.vertex;
        if (x == hop || rank_[x] < r) return;
        const LabelSet next = state.mask | LabelBit(arc.label);
        if (seen.Dominates(x, next)) return;
        if (LabelQuery(x, hop, next)) {
          seen.Add(x, next);
          return;
        }
        seen.Add(x, next);
        lout_[x].push_back({r, next});
        queue.Push({next, x});
      });
    }
  }
  label_timer.Stop();
  build_stats_.size_bytes = IndexSizeBytes();
  build_stats_.num_entries = TotalEntries();
}

void PrunedLabeledTwoHop::InsertEdge(VertexId s, VertexId t, Label label) {
  const LabeledDigraph::Arc arc{t, label};
  bool exists = false;
  ArcsOut(s, [&](const LabeledDigraph::Arc& a) { exists |= a == arc; });
  if (exists) return;
  if (extra_out_.empty()) {
    extra_out_.resize(graph_->NumVertices());
    extra_in_.resize(graph_->NumVertices());
  }
  extra_out_[s].push_back({t, label});
  extra_in_[t].push_back({s, label});

  // Every newly answerable pair (x, y, A) decomposes as x -> s (old paths,
  // mask M1 ⊆ A), the new edge (label ∈ A), then t -> y (old paths,
  // M2 ⊆ A). The old index answers (x, s, M1) through some hop entry of
  // Lin(s) (or a virtual endpoint hop), so propagating each such hop
  // through the new edge to everything reachable from t restores
  // completeness. Traversal prunes only by per-sweep dominance, never by
  // index queries — minimality is traded for correctness (see header).
  std::vector<Entry> hops = lin_[s];
  hops.push_back({rank_[s], 0});

  BucketQueue queue;
  SeenSets seen;
  State state;
  for (const Entry& hop_entry : hops) {
    const VertexId hop = by_rank_[hop_entry.rank];
    queue.Clear();
    seen.Reset(graph_->NumVertices());
    const LabelSet start = hop_entry.mask | LabelBit(label);
    seen.Add(t, start);
    queue.Push({start, t});
    while (queue.Pop(&state)) {
      if (state.vertex != hop &&
          !HasCoveredEntry(lin_[state.vertex], hop_entry.rank, state.mask)) {
        // Insert keeping rank-group ordering.
        auto& entries = lin_[state.vertex];
        auto it = std::upper_bound(
            entries.begin(), entries.end(), hop_entry.rank,
            [](uint32_t r, const Entry& e) { return r < e.rank; });
        entries.insert(it, {hop_entry.rank, state.mask});
      }
      ArcsOut(state.vertex, [&](const LabeledDigraph::Arc& a) {
        const LabelSet next = state.mask | LabelBit(a.label);
        if (seen.Dominates(a.vertex, next)) return;
        seen.Add(a.vertex, next);
        queue.Push({next, a.vertex});
      });
    }
  }
}

void PrunedLabeledTwoHop::RemoveEdgeAndRebuild(VertexId s, VertexId t,
                                               Label label) {
  std::vector<LabeledEdge> edges = graph_->Edges();
  if (!extra_out_.empty()) {
    for (VertexId v = 0; v < extra_out_.size(); ++v) {
      for (const auto& arc : extra_out_[v]) {
        edges.push_back({v, arc.vertex, arc.label});
      }
    }
  }
  std::erase(edges, LabeledEdge{s, t, label});
  owned_graph_ = LabeledDigraph::FromEdges(
      static_cast<VertexId>(graph_->NumVertices()), graph_->NumLabels(),
      std::move(edges));
  Build(owned_graph_);
}

size_t PrunedLabeledTwoHop::TotalEntries() const {
  size_t total = 0;
  for (const auto& e : lin_) total += e.size();
  for (const auto& e : lout_) total += e.size();
  return total;
}

size_t PrunedLabeledTwoHop::IndexSizeBytes() const {
  return TotalEntries() * sizeof(Entry) +
         (rank_.size() + by_rank_.size()) * sizeof(uint32_t);
}

}  // namespace reach
