#include "lcr/pruned_labeled_two_hop.h"

#include <algorithm>
#include <atomic>
#include <istream>
#include <numeric>
#include <ostream>
#include <string_view>
#include <utility>

#include "core/label_kernels.h"
#include "core/serialize.h"
#include "obs/metrics_registry.h"
#include "par/parallel_for.h"
#include "par/thread_pool.h"

namespace reach {

namespace {

// Exponential search to the first entry with `entry.rank >= rank` at index
// >= `from` — the rank-projected analogue of `GallopLowerBound`, shared by
// the skewed-size advance of the LCR rank-group sweep.
template <typename E>
size_t GallopToRank(std::span<const E> entries, size_t from, uint32_t rank) {
  const size_t n = entries.size();
  if (from >= n || entries[from].rank >= rank) return from;
  size_t offset = 1;
  while (from + offset < n && entries[from + offset].rank < rank) {
    offset <<= 1;
  }
  const size_t lo = from + offset / 2;
  const size_t hi = std::min(n, from + offset + 1);
  return static_cast<size_t>(
      std::lower_bound(entries.begin() + lo, entries.begin() + hi, rank,
                       [](const E& e, uint32_t r) { return e.rank < r; }) -
      entries.begin());
}

// A label-BFS state: `vertex` reached with accumulated label set `mask`.
struct State {
  LabelSet mask;
  VertexId vertex;
};

// Bucket queue keyed by |mask| so states expand in nondecreasing number of
// distinct labels (minimal SPLSs first).
class BucketQueue {
 public:
  void Clear() {
    for (auto& b : buckets_) b.clear();
    level_ = 0;
    index_ = 0;
  }

  void Push(State s) { buckets_[LabelCount(s.mask)].push_back(s); }

  // Returns false when empty. States pushed at the current level while
  // draining it are still popped (same-level growth).
  bool Pop(State* out) {
    while (level_ <= kMaxLabels) {
      if (index_ < buckets_[level_].size()) {
        *out = buckets_[level_][index_++];
        return true;
      }
      buckets_[level_].clear();
      index_ = 0;
      ++level_;
    }
    return false;
  }

 private:
  std::vector<State> buckets_[kMaxLabels + 1];
  size_t level_ = 0;
  size_t index_ = 0;
};

// Per-sweep dominance antichains with O(1) sparse reset.
class SeenSets {
 public:
  void Reset(size_t n) {
    if (seen_.size() < n) seen_.resize(n);
    for (VertexId v : touched_) seen_[v] = MinimalLabelSets();
    touched_.clear();
  }

  // Adds mask for v unless dominated; returns true if added.
  bool Add(VertexId v, LabelSet mask) {
    if (seen_[v].empty()) touched_.push_back(v);
    return seen_[v].AddIfMinimal(mask);
  }

  bool Dominates(VertexId v, LabelSet mask) const {
    return seen_[v].Dominates(mask);
  }

  /// Distinct vertices added since the last `Reset` — exactly the set of
  /// vertices the sweep's pruning oracle was evaluated at, which is what
  /// the parallel build's conflict check needs.
  const std::vector<VertexId>& Touched() const { return touched_; }

 private:
  std::vector<MinimalLabelSets> seen_;
  std::vector<VertexId> touched_;
};

}  // namespace

template <typename ArcFn>
void PrunedLabeledTwoHop::ArcsOut(VertexId v, ArcFn&& fn) const {
  if (tomb_out_.empty() || tomb_out_[v].empty()) {
    for (const auto& arc : graph_->OutArcs(v)) fn(arc);
    if (!extra_out_.empty()) {
      for (const auto& arc : extra_out_[v]) fn(arc);
    }
    return;
  }
  const auto& tomb = tomb_out_[v];
  auto live = [&](const LabeledDigraph::Arc& arc) {
    return std::find(tomb.begin(), tomb.end(), arc) == tomb.end();
  };
  for (const auto& arc : graph_->OutArcs(v)) {
    if (live(arc)) fn(arc);
  }
  if (!extra_out_.empty()) {
    for (const auto& arc : extra_out_[v]) {
      if (live(arc)) fn(arc);
    }
  }
}

template <typename ArcFn>
void PrunedLabeledTwoHop::ArcsIn(VertexId v, ArcFn&& fn) const {
  if (tomb_in_.empty() || tomb_in_[v].empty()) {
    for (const auto& arc : graph_->InArcs(v)) fn(arc);
    if (!extra_in_.empty()) {
      for (const auto& arc : extra_in_[v]) fn(arc);
    }
    return;
  }
  const auto& tomb = tomb_in_[v];
  auto live = [&](const LabeledDigraph::Arc& arc) {
    return std::find(tomb.begin(), tomb.end(), arc) == tomb.end();
  };
  for (const auto& arc : graph_->InArcs(v)) {
    if (live(arc)) fn(arc);
  }
  if (!extra_in_.empty()) {
    for (const auto& arc : extra_in_[v]) {
      if (live(arc)) fn(arc);
    }
  }
}

template <typename ArcFn>
void PrunedLabeledTwoHop::ArcsOutSuperset(VertexId v, ArcFn&& fn) const {
  for (const auto& arc : graph_->OutArcs(v)) fn(arc);
  if (!extra_out_.empty()) {
    for (const auto& arc : extra_out_[v]) fn(arc);
  }
}

template <typename ArcFn>
void PrunedLabeledTwoHop::ArcsInSuperset(VertexId v, ArcFn&& fn) const {
  for (const auto& arc : graph_->InArcs(v)) fn(arc);
  if (!extra_in_.empty()) {
    for (const auto& arc : extra_in_[v]) fn(arc);
  }
}

bool PrunedLabeledTwoHop::HasCoveredEntry(std::span<const Entry> entries,
                                          uint32_t rank, LabelSet allowed) {
  // Entries are grouped by ascending rank; binary-search the group start.
  auto it = std::lower_bound(
      entries.begin(), entries.end(), rank,
      [](const Entry& e, uint32_t r) { return e.rank < r; });
  for (; it != entries.end() && it->rank == rank; ++it) {
    if (IsSubsetOf(it->mask, allowed)) return true;
  }
  return false;
}

bool PrunedLabeledTwoHop::IntersectEntryRanges(std::span<const Entry> out,
                                               std::span<const Entry> in,
                                               LabelSet allowed) {
  // First/last-rank prefilter: disjoint rank ranges cannot share a hop.
  if (out.empty() || in.empty()) return false;
  if (out.back().rank < in.front().rank ||
      in.back().rank < out.front().rank) {
    return false;
  }
  // Rank-group sweep; skewed sizes advance by galloping instead of one
  // group at a time (same >= 8x threshold as the plain engine).
  const bool gallop = out.size() >= kGallopSkewThreshold * in.size() ||
                      in.size() >= kGallopSkewThreshold * out.size();
  size_t i = 0, j = 0;
  while (i < out.size() && j < in.size()) {
    if (out[i].rank < in[j].rank) {
      i = gallop ? GallopToRank(out, i + 1, in[j].rank) : i + 1;
    } else if (out[i].rank > in[j].rank) {
      j = gallop ? GallopToRank(in, j + 1, out[i].rank) : j + 1;
    } else {
      const uint32_t rank = out[i].rank;
      size_t i_end = i, j_end = j;
      while (i_end < out.size() && out[i_end].rank == rank) ++i_end;
      while (j_end < in.size() && in[j_end].rank == rank) ++j_end;
      for (size_t a = i; a < i_end; ++a) {
        if (!IsSubsetOf(out[a].mask, allowed)) continue;
        for (size_t b = j; b < j_end; ++b) {
          if (IsSubsetOf(in[b].mask, allowed)) return true;
        }
      }
      i = i_end;
      j = j_end;
    }
  }
  return false;
}

bool PrunedLabeledTwoHop::LabelQuery(VertexId s, VertexId t,
                                     LabelSet allowed) const {
  if (s == t) return true;
  // Virtual self-hops: s itself or t itself as the common hop.
  if (HasCoveredEntry(lin_[t], rank_[s], allowed)) return true;
  if (HasCoveredEntry(lout_[s], rank_[t], allowed)) return true;
  return IntersectEntryRanges(lout_[s], lin_[t], allowed);
}

bool PrunedLabeledTwoHop::CoveredInPool(const CompressedEntryPool<Entry>& pool,
                                        VertexId v, uint32_t rank,
                                        LabelSet allowed) {
  const size_t end = pool.BlockEnd(v);
  const size_t b = pool.LowerBoundBlock(pool.BlockBegin(v), end, rank);
  if (b == end || pool.Skip(b).first > rank) return false;
  // Rank groups are never split across blocks, so the whole group of
  // `rank` — if present — lives in this one block.
  Entry buf[CompressedEntryPool<Entry>::kMaxBlockEntries];
  const size_t count = pool.DecodeBlock(b, buf);
  return HasCoveredEntry({buf, count}, rank, allowed);
}

bool PrunedLabeledTwoHop::IntersectPools(
    const CompressedEntryPool<Entry>& out_pool, VertexId s,
    const CompressedEntryPool<Entry>& in_pool, VertexId t, LabelSet allowed) {
  size_t i = out_pool.BlockBegin(s), j = in_pool.BlockBegin(t);
  const size_t i_end = out_pool.BlockEnd(s), j_end = in_pool.BlockEnd(t);
  if (i == i_end || j == j_end) return false;
  // Whole-list prefilter straight off the skip entries.
  if (out_pool.Skip(i_end - 1).last < in_pool.Skip(j).first ||
      in_pool.Skip(j_end - 1).last < out_pool.Skip(i).first) {
    return false;
  }
  constexpr size_t kCap = CompressedEntryPool<Entry>::kMaxBlockEntries;
  Entry buf_out[kCap], buf_in[kCap];
  size_t decoded_out = SIZE_MAX, decoded_in = SIZE_MAX;
  size_t count_out = 0, count_in = 0;
  while (i != i_end && j != j_end) {
    const auto& so = out_pool.Skip(i);
    const auto& si = in_pool.Skip(j);
    if (so.last < si.first) {
      i = out_pool.LowerBoundBlock(i + 1, i_end, si.first);
      continue;
    }
    if (si.last < so.first) {
      j = in_pool.LowerBoundBlock(j + 1, j_end, so.first);
      continue;
    }
    if (decoded_out != i) {
      count_out = out_pool.DecodeBlock(i, buf_out);
      decoded_out = i;
    }
    if (decoded_in != j) {
      count_in = in_pool.DecodeBlock(j, buf_in);
      decoded_in = j;
    }
    if (IntersectEntryRanges({buf_out, count_out}, {buf_in, count_in},
                             allowed)) {
      return true;
    }
    // Equal-last advance-both is sound: blocks end at whole rank groups,
    // so the shared last group was fully checked by this pair.
    const bool advance_out = so.last <= si.last;
    const bool advance_in = si.last <= so.last;
    if (advance_out) ++i;
    if (advance_in) ++j;
  }
  return false;
}

bool PrunedLabeledTwoHop::IntersectPoolWithSpan(
    const CompressedEntryPool<Entry>& pool, VertexId v,
    std::span<const Entry> other, LabelSet allowed) {
  if (other.empty()) return false;
  const size_t end = pool.BlockEnd(v);
  size_t b = pool.LowerBoundBlock(pool.BlockBegin(v), end,
                                  other.front().rank);
  Entry buf[CompressedEntryPool<Entry>::kMaxBlockEntries];
  for (; b != end && pool.Skip(b).first <= other.back().rank; ++b) {
    const size_t count = pool.DecodeBlock(b, buf);
    if (IntersectEntryRanges({buf, count}, other, allowed)) return true;
  }
  return false;
}

bool PrunedLabeledTwoHop::AnswerQuery(VertexId s, VertexId t,
                                      LabelSet allowed) const {
  if (s == t) return true;
  if (damage_ == 0) return SupersetAnswer(s, t, allowed);
  return DamagedAnswer(s, t, allowed);
}

bool PrunedLabeledTwoHop::SupersetAnswer(VertexId s, VertexId t,
                                         LabelSet allowed) const {
  if (s == t) return true;
  if (compressed_) {
    if (CoveredInPool(lin_cpool_, t, rank_[s], allowed)) return true;
    if (CoveredInPool(lout_cpool_, s, rank_[t], allowed)) return true;
    if (IntersectPools(lout_cpool_, s, lin_cpool_, t, allowed)) return true;
    if (!has_delta_) return false;
    const std::span<const Entry> delta{delta_lin_[t]};
    if (HasCoveredEntry(delta, rank_[s], allowed)) return true;
    return IntersectPoolWithSpan(lout_cpool_, s, delta, allowed);
  }
  const std::span<const Entry> out = lout_pool_.Slice(s);
  const std::span<const Entry> in = lin_pool_.Slice(t);
  if (HasCoveredEntry(in, rank_[s], allowed)) return true;
  if (HasCoveredEntry(out, rank_[t], allowed)) return true;
  if (IntersectEntryRanges(out, in, allowed)) return true;
  if (!has_delta_) return false;
  // Delta entries live outside the pool, so every (pool, delta)
  // combination that could supply the common hop is checked separately.
  const std::span<const Entry> delta{delta_lin_[t]};
  if (HasCoveredEntry(delta, rank_[s], allowed)) return true;
  return IntersectEntryRanges(out, delta, allowed);
}

bool PrunedLabeledTwoHop::DamagedAnswer(VertexId s, VertexId t,
                                        LabelSet allowed) const {
  // Labels cover G+ ⊇ live graph, so "no covered witness" is an exact
  // negative even while damaged. A covered witness certifies a G+ path;
  // it is trusted — exact for the live graph — iff no damaging delete
  // could have routed through it (its rank marks are clear). Damaged
  // witnesses prove nothing either way: fall through to verification.
  // The slow lane pays the merged-entry materialization (InEntries folds
  // in the delta overlay); the damage_ == 0 hot path is untouched.
  const std::vector<Entry> out = OutEntries(s);
  const std::vector<Entry> in = InEntries(t);
  bool damaged_witness = false;
  // Case 1 — virtual hop s: (rank(s), S ⊆ allowed) ∈ Lin(t) claims
  // "s reaches t"; stale only if s is a G+-ancestor of a cut source.
  if (HasCoveredEntry(in, rank_[s], allowed)) {
    if (!RankDamagedFwd(rank_[s])) return true;
    damaged_witness = true;
  }
  // Case 2 — virtual hop t: stale only if t is a G+-descendant of a cut
  // target.
  if (HasCoveredEntry(out, rank_[t], allowed)) {
    if (!RankDamagedBwd(rank_[t])) return true;
    damaged_witness = true;
  }
  // Case 3 — real hop h: Lout(s) claims "s reaches h" (stale if h is
  // backward-damaged), Lin(t) claims "h reaches t" (stale if h is
  // forward-damaged); trusted iff both marks are clear. Plain rank-group
  // two-pointer — the slow lane skips the galloping refinements.
  size_t i = 0, j = 0;
  while (i < out.size() && j < in.size()) {
    if (out[i].rank < in[j].rank) {
      ++i;
    } else if (out[i].rank > in[j].rank) {
      ++j;
    } else {
      const uint32_t rank = out[i].rank;
      size_t i_end = i, j_end = j;
      while (i_end < out.size() && out[i_end].rank == rank) ++i_end;
      while (j_end < in.size() && in[j_end].rank == rank) ++j_end;
      bool covered = false;
      for (size_t a = i; a < i_end && !covered; ++a) {
        if (!IsSubsetOf(out[a].mask, allowed)) continue;
        for (size_t b = j; b < j_end; ++b) {
          if (IsSubsetOf(in[b].mask, allowed)) {
            covered = true;
            break;
          }
        }
      }
      if (covered) {
        if (!RankDamagedBwd(rank) && !RankDamagedFwd(rank)) return true;
        damaged_witness = true;
      }
      i = i_end;
      j = j_end;
    }
  }
  if (!damaged_witness) return false;
  return VerifyReach(s, t, allowed);
}

bool PrunedLabeledTwoHop::VerifyReach(VertexId s, VertexId t,
                                      LabelSet allowed) const {
  REACH_PROBE_INC(probe_, fallbacks);
  const size_t n = graph_->NumVertices();
  if (visit_stamp_.size() < n) visit_stamp_.assign(n, 0);
  if (visit_epoch_ == UINT32_MAX) {
    std::fill(visit_stamp_.begin(), visit_stamp_.end(), 0);
    visit_epoch_ = 0;
  }
  const uint32_t epoch = ++visit_epoch_;
  auto& queue = visit_queue_;
  queue.clear();
  visit_stamp_[s] = epoch;
  queue.push_back(s);
  for (size_t head = 0; head < queue.size(); ++head) {
    const VertexId v = queue[head];
    if (v == t) return true;
    bool found = false;
    ArcsOut(v, [&](const LabeledDigraph::Arc& arc) {
      if (found || !IsSubsetOf(LabelBit(arc.label), allowed)) return;
      const VertexId w = arc.vertex;
      if (w == t) {
        found = true;
        return;
      }
      if (visit_stamp_[w] == epoch) return;
      visit_stamp_[w] = epoch;
      // A superset negative is final: no allowed path even in G+.
      if (!SupersetAnswer(w, t, allowed)) return;
      queue.push_back(w);
    });
    if (found) return true;
  }
  return false;
}

bool PrunedLabeledTwoHop::Query(VertexId s, VertexId t,
                                LabelSet allowed) const {
  REACH_PROBE_INC(probe_, queries);
  // Worst case the rank-group sweep consults both full entry lists.
  // (The build-time oracle is unprobed — the pruning tests would
  // otherwise swamp the counts.)
  REACH_PROBE_ADD(probe_, labels_scanned,
                  (compressed_ ? lout_cpool_.ListEntries(s) +
                                     lin_cpool_.ListEntries(t)
                               : lout_pool_.Slice(s).size() +
                                     lin_pool_.Slice(t).size()) +
                      (has_delta_ ? delta_lin_[t].size() : 0));
  const bool reachable = AnswerQuery(s, t, allowed);
  if (reachable) {
    REACH_PROBE_INC(probe_, positives);
  } else {
    REACH_PROBE_INC(probe_, label_rejections);  // complete label: no fallback
  }
  return reachable;
}

void PrunedLabeledTwoHop::Build(const LabeledDigraph& graph) {
  BuildStatsScope build(&build_stats_);
  probe_.Reset();
  graph_ = &graph;
  ResetDynamicState();
  lin_pool_.Clear();
  lout_pool_.Clear();
  lin_cpool_.Clear();
  lout_cpool_.Clear();
  compressed_ = false;
  const size_t n = graph.NumVertices();

  BuildPhaseTimer order_timer(&build_stats_.phases, "order");
  by_rank_.resize(n);
  std::iota(by_rank_.begin(), by_rank_.end(), 0);
  std::stable_sort(by_rank_.begin(), by_rank_.end(),
                   [&](VertexId a, VertexId b) {
                     return graph.Degree(a) > graph.Degree(b);
                   });
  rank_.resize(n);
  for (uint32_t r = 0; r < n; ++r) rank_[by_rank_[r]] = r;
  order_timer.Stop();

  BuildPhaseTimer label_timer(&build_stats_.phases, "label_bfs");
  BuildLabels(graph, ResolveThreads(num_threads_));
  label_timer.Stop();

  BuildPhaseTimer seal_timer(&build_stats_.phases, "seal");
  SealLabels();
  seal_timer.Stop();
  build_stats_.size_bytes = IndexSizeBytes();
  build_stats_.num_entries = TotalEntries();
}

void PrunedLabeledTwoHop::SealLabels() {
  lin_pool_.Clear();
  lout_pool_.Clear();
  lin_cpool_.Clear();
  lout_cpool_.Clear();
  compressed_ = false;
  budget_exceeded_ = false;
  const size_t n = lin_.size();
  size_t total_entries = 0;
  for (size_t v = 0; v < n; ++v) {
    total_entries += lin_[v].size() + lout_[v].size();
  }
  const size_t flat_bytes =
      2 * (n + 1) * sizeof(uint64_t) + total_entries * sizeof(Entry);
  const size_t budget = storage_.budget_mb * (size_t{1} << 20);
  if (storage_.compress || (budget != 0 && flat_bytes > budget)) {
    size_t block = std::clamp(storage_.block_entries,
                              CompressedEntryPool<Entry>::kMinBlockEntries,
                              CompressedEntryPool<Entry>::kMaxBlockEntries);
    for (;;) {
      if (!lin_cpool_.Seal(lin_, block) || !lout_cpool_.Seal(lout_, block)) {
        // An oversized rank group refuses compression: stay flat.
        lin_cpool_.Clear();
        lout_cpool_.Clear();
        break;
      }
      const size_t bytes =
          lin_cpool_.MemoryBytes() + lout_cpool_.MemoryBytes();
      if (budget != 0 && bytes > budget &&
          block < CompressedEntryPool<Entry>::kMaxBlockEntries) {
        block *= 2;
        continue;
      }
      compressed_ = true;
      budget_exceeded_ = budget != 0 && bytes > budget;
      break;
    }
  }
  if (compressed_) {
    std::vector<std::vector<Entry>>().swap(lin_);
    std::vector<std::vector<Entry>>().swap(lout_);
  } else {
    budget_exceeded_ = budget != 0 && flat_bytes > budget;
    lin_pool_.Seal(std::move(lin_));
    lout_pool_.Seal(std::move(lout_));
    lin_.clear();
    lout_.clear();
  }
  delta_lin_.clear();
  has_delta_ = false;
  PublishStorageGauges(flat_bytes);
}

void PrunedLabeledTwoHop::PublishStorageGauges(
    size_t flat_equivalent_bytes) const {
  MetricsRegistry& reg = MetricsRegistry::Global();
  const size_t n = rank_.size();
  const size_t bytes =
      compressed_ ? lin_cpool_.MemoryBytes() + lout_cpool_.MemoryBytes()
                  : lin_pool_.MemoryBytes() + lout_pool_.MemoryBytes();
  reg.GetGauge("index.bytes").Set(static_cast<double>(bytes));
  reg.GetGauge("index.bytes_per_vertex")
      .Set(n == 0 ? 0.0
                  : static_cast<double>(bytes) / static_cast<double>(n));
  if (compressed_) {
    reg.GetGauge("index.compression_ratio")
        .Set(bytes == 0 ? 1.0
                        : static_cast<double>(flat_equivalent_bytes) /
                              static_cast<double>(bytes));
  }
  if (storage_.budget_mb != 0) {
    reg.GetGauge("index.budget_exceeded").Set(budget_exceeded_ ? 1 : 0);
  }
}

void PrunedLabeledTwoHop::BuildLabels(const LabeledDigraph& graph,
                                      size_t threads) {
  const size_t n = graph.NumVertices();
  lin_.assign(n, {});
  lout_.assign(n, {});
  if (n == 0) return;

  // lin_stamp[x] == batch_epoch iff the current batch already committed a
  // Lin(x) entry (dually lout_stamp) — the reads that can invalidate a
  // speculative sweep. During warmup / serial builds batch_epoch stays 0,
  // matching the stamps' initial value, so stamping is a no-op there.
  std::vector<uint32_t> lin_stamp(n, 0), lout_stamp(n, 0);
  uint32_t batch_epoch = 0;

  BucketQueue serial_queue;
  SeenSets serial_seen;

  // The exact serial sweep of P2H+: forward populates Lin via hop -> x
  // label-BFS states, backward populates Lout. Also used for warmup and
  // for conflict redos in the parallel build.
  auto serial_sweep = [&](uint32_t r, bool forward) {
    const VertexId hop = by_rank_[r];
    State state;
    serial_queue.Clear();
    serial_seen.Reset(n);
    serial_seen.Add(hop, 0);
    serial_queue.Push({0, hop});
    while (serial_queue.Pop(&state)) {
      auto visit = [&](const LabeledDigraph::Arc& arc) {
        const VertexId x = arc.vertex;
        if (x == hop || rank_[x] < r) return;
        const LabelSet next = state.mask | LabelBit(arc.label);
        if (serial_seen.Dominates(x, next)) return;
        if (forward ? LabelQuery(hop, x, next) : LabelQuery(x, hop, next)) {
          serial_seen.Add(x, next);  // block supersets; already answerable
          return;
        }
        serial_seen.Add(x, next);
        if (forward) {
          lin_[x].push_back({r, next});
          lin_stamp[x] = batch_epoch;
        } else {
          lout_[x].push_back({r, next});
          lout_stamp[x] = batch_epoch;
        }
        serial_queue.Push({next, x});
      };
      if (forward) {
        ArcsOut(state.vertex, visit);
      } else {
        ArcsIn(state.vertex, visit);
      }
    }
  };

  if (threads <= 1) {
    for (uint32_t r = 0; r < n; ++r) {
      serial_sweep(r, /*forward=*/true);
      serial_sweep(r, /*forward=*/false);
    }
    return;
  }

  // Rank-batched speculate/commit/redo (see PrunedTwoHop for the scheme
  // and docs/PARALLELISM.md for the argument). One LCR-specific wrinkle:
  // the serial pruning oracle LabelQuery(hop, x, next) reads the rank-r
  // entry group of Lin(x) — entries the *current sweep* inserted. The
  // speculative sweep shadows that group in a worker-local per-vertex
  // mask list, so local-covered || committed-prefix LabelQuery equals the
  // serial oracle exactly (the committed prefix has no rank-r groups).
  struct Scratch {
    BucketQueue queue;
    SeenSets seen;
    std::vector<std::vector<LabelSet>> local;  // own-rank group shadow
    std::vector<VertexId> local_touched;
  };
  std::vector<Scratch> scratch(threads);
  for (Scratch& s : scratch) s.local.assign(n, {});

  // Outcome of one speculative sweep.
  struct Sweep {
    std::vector<std::pair<VertexId, LabelSet>> labeled;  // push order
    std::vector<VertexId> touched;  // vertices the oracle evaluated
    bool redo = false;              // overflowed the cap: rerun serially
  };

  // Label-BFS state counts can exceed n (one state per (vertex, mask));
  // cut off speculative floods and redo those sweeps serially.
  const size_t state_cap = std::max<size_t>(1024, 4 * n);
  auto speculative_sweep = [&](uint32_t r, bool forward, Scratch& s,
                               Sweep* out) {
    const VertexId hop = by_rank_[r];
    State state;
    s.queue.Clear();
    s.seen.Reset(n);
    for (VertexId v : s.local_touched) s.local[v].clear();
    s.local_touched.clear();
    s.seen.Add(hop, 0);
    s.queue.Push({0, hop});
    size_t evaluated = 0;
    while (!out->redo && s.queue.Pop(&state)) {
      auto visit = [&](const LabeledDigraph::Arc& arc) {
        const VertexId x = arc.vertex;
        if (x == hop || rank_[x] < r) return;
        const LabelSet next = state.mask | LabelBit(arc.label);
        if (s.seen.Dominates(x, next)) return;
        ++evaluated;
        bool covered = false;
        for (LabelSet m : s.local[x]) {
          if (IsSubsetOf(m, next)) {
            covered = true;
            break;
          }
        }
        if (!covered) {
          covered = forward ? LabelQuery(hop, x, next)
                            : LabelQuery(x, hop, next);
        }
        s.seen.Add(x, next);
        if (covered) return;
        if (s.local[x].empty()) s.local_touched.push_back(x);
        s.local[x].push_back(next);
        out->labeled.emplace_back(x, next);
        s.queue.Push({next, x});
      };
      if (forward) {
        ArcsOut(state.vertex, visit);
      } else {
        ArcsIn(state.vertex, visit);
      }
      if (evaluated > state_cap) out->redo = true;
    }
    if (out->redo) {
      out->labeled.clear();
    } else {
      out->touched = s.seen.Touched();
    }
  };

  // A forward oracle call reads Lout(hop) plus Lin(x) of evaluated
  // vertices x (remaining reads are this sweep's own shadow group);
  // backward is symmetric. The sweep is stale iff the batch committed to
  // one of those since phase 1 snapshotted the labeling.
  auto commit_rank = [&](uint32_t r, bool forward, Sweep& sweep) {
    const VertexId hop = by_rank_[r];
    bool conflict = sweep.redo;
    if (!conflict) {
      conflict = (forward ? lout_stamp : lin_stamp)[hop] == batch_epoch;
    }
    if (!conflict) {
      const std::vector<uint32_t>& stamp = forward ? lin_stamp : lout_stamp;
      for (VertexId x : sweep.touched) {
        if (stamp[x] == batch_epoch) {
          conflict = true;
          break;
        }
      }
    }
    if (conflict) {
      serial_sweep(r, forward);
      return;
    }
    std::vector<uint32_t>& stamp = forward ? lin_stamp : lout_stamp;
    auto& labels = forward ? lin_ : lout_;
    for (const auto& [x, mask] : sweep.labeled) {
      labels[x].push_back({r, mask});
      stamp[x] = batch_epoch;
    }
  };

  const uint32_t num_ranks = static_cast<uint32_t>(n);
  uint32_t r = 0;
  const uint32_t warmup = static_cast<uint32_t>(std::min<size_t>(n, 32));
  for (; r < warmup; ++r) {
    serial_sweep(r, /*forward=*/true);
    serial_sweep(r, /*forward=*/false);
  }

  size_t batch_size = 2 * threads;
  const size_t max_batch = std::max<size_t>(64 * threads, 256);
  std::vector<Sweep> fwd, bwd;
  while (r < num_ranks) {
    const uint32_t batch_end =
        static_cast<uint32_t>(std::min<size_t>(num_ranks, r + batch_size));
    const size_t count = batch_end - r;
    fwd.assign(count, Sweep{});
    bwd.assign(count, Sweep{});
    ++batch_epoch;

    std::atomic<size_t> next{0};
    ParallelForWorkers(threads, [&](size_t worker) {
      Scratch& s = scratch[worker];
      for (;;) {
        const size_t unit = next.fetch_add(1, std::memory_order_relaxed);
        if (unit >= 2 * count) return;
        const uint32_t rank = r + static_cast<uint32_t>(unit / 2);
        const bool forward = (unit % 2) == 0;
        speculative_sweep(rank, forward, s,
                          forward ? &fwd[unit / 2] : &bwd[unit / 2]);
      }
    });

    for (uint32_t offset = 0; offset < count; ++offset) {
      commit_rank(r + offset, /*forward=*/true, fwd[offset]);
      commit_rank(r + offset, /*forward=*/false, bwd[offset]);
    }
    r = batch_end;
    batch_size = std::min(batch_size * 2, max_batch);
  }
}

UpdateResult PrunedLabeledTwoHop::ApplyUpdate(const LabeledUpdateBatch& batch) {
  if (graph_ == nullptr) {
    return UpdateResult::Rejected(
        "no live graph: Build() before ApplyUpdate (Load'ed labelings are "
        "read-only)");
  }
  // Validate-first: nothing is applied unless the whole batch is in
  // range, so a rejection never leaves partial state behind.
  const VertexId n = static_cast<VertexId>(graph_->NumVertices());
  for (const LabeledEdgeUpdate& update : batch) {
    if (update.source >= n || update.target >= n) {
      return UpdateResult::Rejected("endpoint out of range");
    }
    if (update.label >= graph_->NumLabels()) {
      return UpdateResult::Rejected("label out of range");
    }
  }
  size_t applied = 0;
  size_t ignored = 0;
  for (const LabeledEdgeUpdate& update : batch) {
    const bool changed =
        update.IsInsert()
            ? ApplyInsert(update.source, update.target, update.label)
            : ApplyDelete(update.source, update.target, update.label);
    if (changed) {
      ++applied;
    } else {
      ++ignored;
    }
  }
  return UpdateResult::Applied(applied, ignored, damage_, staleness_budget_);
}

bool PrunedLabeledTwoHop::IsTombstoned(VertexId s, VertexId t,
                                       Label label) const {
  if (tomb_out_.empty()) return false;
  const auto& tomb = tomb_out_[s];
  return std::find(tomb.begin(), tomb.end(),
                   LabeledDigraph::Arc{t, label}) != tomb.end();
}

bool PrunedLabeledTwoHop::ApplyInsert(VertexId s, VertexId t, Label label) {
  if (IsTombstoned(s, t, label)) {
    // Resurrection: the arc is still in the superset the labels cover, so
    // dropping the tombstone restores it exactly. Damage marks stay
    // (conservative) until the next rebuild.
    std::erase(tomb_out_[s], LabeledDigraph::Arc{t, label});
    std::erase(tomb_in_[t], LabeledDigraph::Arc{s, label});
    return true;
  }
  const LabeledDigraph::Arc arc{t, label};
  bool exists = false;
  ArcsOut(s, [&](const LabeledDigraph::Arc& a) { exists |= a == arc; });
  if (exists) return false;
  if (extra_out_.empty()) {
    extra_out_.resize(graph_->NumVertices());
    extra_in_.resize(graph_->NumVertices());
  }
  extra_out_[s].push_back({t, label});
  extra_in_[t].push_back({s, label});

  // The damage marks are transitive closures over the superset as of each
  // damaging delete; this insert grows the superset, so re-close them. If
  // t already reaches a damaged tombstone source, everything reaching s
  // now does too (a simple path from t to that source cannot revisit t, so
  // the pre-insert closure decides the check) — symmetrically for the
  // backward marks. Without this, a vertex wired into a damaged region
  // *after* the delete keeps unmarked claims routed through the dead arc,
  // and the witness-trust protocol returns a stale positive.
  if (!damaged_fwd_.empty()) {
    if (!fwd_all_damaged_ && damaged_fwd_[rank_[t]] != 0 &&
        damaged_fwd_[rank_[s]] == 0) {
      if (!DamageSweep(s, /*backward=*/true)) fwd_all_damaged_ = true;
    }
    if (!bwd_all_damaged_ && damaged_bwd_[rank_[s]] != 0 &&
        damaged_bwd_[rank_[t]] == 0) {
      if (!DamageSweep(t, /*backward=*/false)) bwd_all_damaged_ = true;
    }
  }

  // Every newly answerable pair (x, y, A) decomposes as x -> s (old paths,
  // mask M1 ⊆ A), the new edge (label ∈ A), then t -> y (old paths,
  // M2 ⊆ A). The old index answers (x, s, M1) through some hop entry of
  // Lin(s) (or a virtual endpoint hop), so propagating each such hop
  // through the new edge to everything reachable from t restores
  // completeness. The sealed pool is immutable, so new entries land in the
  // unsealed delta overlay the query path checks alongside the pool.
  // Traversal prunes only by per-sweep dominance, never by index queries —
  // minimality is traded for correctness (see header).
  if (delta_lin_.empty()) delta_lin_.resize(graph_->NumVertices());
  has_delta_ = true;
  // InEntries merges the sealed slice (flat or decoded from the
  // compressed pool) with the delta overlay, rank-sorted.
  std::vector<Entry> hops = InEntries(s);
  hops.push_back({rank_[s], 0});

  BucketQueue queue;
  SeenSets seen;
  State state;
  for (const Entry& hop_entry : hops) {
    const VertexId hop = by_rank_[hop_entry.rank];
    queue.Clear();
    seen.Reset(graph_->NumVertices());
    const LabelSet start = hop_entry.mask | LabelBit(label);
    seen.Add(t, start);
    queue.Push({start, t});
    while (queue.Pop(&state)) {
      const bool sealed_covered =
          compressed_
              ? CoveredInPool(lin_cpool_, state.vertex, hop_entry.rank,
                              state.mask)
              : HasCoveredEntry(lin_pool_.Slice(state.vertex),
                                hop_entry.rank, state.mask);
      if (state.vertex != hop && !sealed_covered &&
          !HasCoveredEntry(delta_lin_[state.vertex], hop_entry.rank,
                           state.mask)) {
        // Insert keeping rank-group ordering within the overlay.
        auto& entries = delta_lin_[state.vertex];
        auto it = std::upper_bound(
            entries.begin(), entries.end(), hop_entry.rank,
            [](uint32_t r, const Entry& e) { return r < e.rank; });
        entries.insert(it, {hop_entry.rank, state.mask});
      }
      // Superset adjacency, not live: the delta overlay must keep
      // describing the superset, or a later tombstone resurrection (which
      // adds no labels) would leave pairs routed through the tombstoned
      // arc without a witness — a wrong exact negative.
      ArcsOutSuperset(state.vertex, [&](const LabeledDigraph::Arc& a) {
        const LabelSet next = state.mask | LabelBit(a.label);
        if (seen.Dominates(a.vertex, next)) return;
        seen.Add(a.vertex, next);
        queue.Push({next, a.vertex});
      });
    }
  }
  return true;
}

bool PrunedLabeledTwoHop::ApplyDelete(VertexId s, VertexId t, Label label) {
  const LabeledDigraph::Arc arc{t, label};
  bool exists = false;
  for (const auto& a : graph_->OutArcs(s)) exists |= a == arc;
  if (!exists && !extra_out_.empty()) {
    exists = std::find(extra_out_[s].begin(), extra_out_[s].end(), arc) !=
             extra_out_[s].end();
  }
  if (!exists) return false;
  if (IsTombstoned(s, t, label)) return false;
  if (tomb_out_.empty()) {
    tomb_out_.resize(graph_->NumVertices());
    tomb_in_.resize(graph_->NumVertices());
  }
  // The arc stays in base/extras (the labels describe the superset graph
  // G+, which never forgets); only the live iterators skip it.
  tomb_out_[s].push_back({t, label});
  tomb_in_[t].push_back({s, label});
  // A self-loop never changes reachability (queries are reflexive).
  if (s == t) return true;
  if (LocallyRedundant(s, t, label)) return true;
  MarkDamage(s, t);
  ++damage_;
  return true;
}

bool PrunedLabeledTwoHop::LocallyRedundant(VertexId u, VertexId v,
                                           Label label) const {
  // A live all-`label` detour keeps every answer: any query path through
  // the deleted arc has `label` in its allowed mask, so splicing in the
  // detour stays within the mask. Search only arcs labeled `label`,
  // pruned by the superset oracle, up to the budget.
  const size_t n = graph_->NumVertices();
  if (visit_stamp_.size() < n) visit_stamp_.assign(n, 0);
  if (visit_epoch_ == UINT32_MAX) {
    std::fill(visit_stamp_.begin(), visit_stamp_.end(), 0);
    visit_epoch_ = 0;
  }
  const uint32_t epoch = ++visit_epoch_;
  const LabelSet mask = LabelBit(label);
  auto& queue = visit_queue_;
  queue.clear();
  visit_stamp_[u] = epoch;
  queue.push_back(u);
  for (size_t head = 0; head < queue.size(); ++head) {
    bool found = false;
    ArcsOut(queue[head], [&](const LabeledDigraph::Arc& a) {
      if (found || a.label != label) return;
      const VertexId w = a.vertex;
      if (w == v) {
        found = true;
        return;
      }
      if (visit_stamp_[w] == epoch) return;
      visit_stamp_[w] = epoch;
      if (!SupersetAnswer(w, v, mask)) return;
      queue.push_back(w);
    });
    if (found) return true;
    if (queue.size() > kLocalSearchBudget) return false;  // give up: damage
  }
  return false;
}

void PrunedLabeledTwoHop::MarkDamage(VertexId u, VertexId v) {
  const size_t n = graph_->NumVertices();
  if (damaged_fwd_.empty()) {
    damaged_fwd_.assign(n, 0);
    damaged_bwd_.assign(n, 0);
  }
  if (visit_stamp_.size() < n) visit_stamp_.assign(n, 0);
  // Label-ignoring sweeps over G+ — an over-approximation of every
  // constrained ancestor/descendant set, and over the superset adjacency
  // on purpose: a stale claim may route through since-deleted arcs.
  if (!DamageSweep(u, /*backward=*/true)) fwd_all_damaged_ = true;
  if (!DamageSweep(v, /*backward=*/false)) bwd_all_damaged_ = true;
}

bool PrunedLabeledTwoHop::DamageSweep(VertexId start, bool backward) {
  if (visit_epoch_ == UINT32_MAX) {
    std::fill(visit_stamp_.begin(), visit_stamp_.end(), 0);
    visit_epoch_ = 0;
  }
  const uint32_t epoch = ++visit_epoch_;
  std::vector<uint8_t>& marks = backward ? damaged_fwd_ : damaged_bwd_;
  auto& queue = visit_queue_;
  queue.clear();
  visit_stamp_[start] = epoch;
  queue.push_back(start);
  for (size_t head = 0; head < queue.size(); ++head) {
    const VertexId x = queue[head];
    marks[rank_[x]] = 1;
    auto visit = [&](const LabeledDigraph::Arc& a) {
      if (visit_stamp_[a.vertex] == epoch) return;
      visit_stamp_[a.vertex] = epoch;
      queue.push_back(a.vertex);
    };
    if (backward) {
      ArcsInSuperset(x, visit);
    } else {
      ArcsOutSuperset(x, visit);
    }
    if (queue.size() > kLocalSearchBudget) return false;
  }
  return true;
}

bool PrunedLabeledTwoHop::RebuildFromUpdates() {
  if (graph_ == nullptr) return false;
  std::vector<LabeledEdge> edges = graph_->Edges();
  if (!extra_out_.empty()) {
    for (VertexId v = 0; v < extra_out_.size(); ++v) {
      for (const auto& arc : extra_out_[v]) {
        edges.push_back({v, arc.vertex, arc.label});
      }
    }
  }
  if (!tomb_out_.empty()) {
    std::erase_if(edges, [&](const LabeledEdge& e) {
      const auto& tomb = tomb_out_[e.source];
      return std::find(tomb.begin(), tomb.end(),
                       LabeledDigraph::Arc{e.target, e.label}) != tomb.end();
    });
  }
  owned_graph_ = LabeledDigraph::FromEdges(
      static_cast<VertexId>(graph_->NumVertices()), graph_->NumLabels(),
      std::move(edges));
  // Build resets every overlay (tombstones, damage, delta) and
  // re-minimizes the labeling over the live edge set.
  Build(owned_graph_);
  return true;
}

void PrunedLabeledTwoHop::ResetDynamicState() {
  extra_out_.clear();
  extra_in_.clear();
  tomb_out_.clear();
  tomb_in_.clear();
  delta_lin_.clear();
  has_delta_ = false;
  damage_ = 0;
  damaged_fwd_.clear();
  damaged_bwd_.clear();
  fwd_all_damaged_ = false;
  bwd_all_damaged_ = false;
}

size_t PrunedLabeledTwoHop::TotalEntries() const {
  size_t total =
      compressed_ ? lin_cpool_.NumEntries() + lout_cpool_.NumEntries()
                  : lin_pool_.NumEntries() + lout_pool_.NumEntries();
  for (const auto& e : delta_lin_) total += e.size();
  return total;
}

size_t PrunedLabeledTwoHop::IndexSizeBytes() const {
  size_t delta_bytes = 0;
  if (has_delta_) {
    delta_bytes = delta_lin_.size() * sizeof(std::vector<Entry>);
    for (const auto& d : delta_lin_) delta_bytes += d.capacity() * sizeof(Entry);
  }
  const size_t pool_bytes =
      compressed_ ? lin_cpool_.MemoryBytes() + lout_cpool_.MemoryBytes()
                  : lin_pool_.MemoryBytes() + lout_pool_.MemoryBytes();
  return pool_bytes +
         (rank_.size() + by_rank_.size()) * sizeof(uint32_t) + delta_bytes;
}

std::vector<PrunedLabeledTwoHop::Entry> PrunedLabeledTwoHop::InEntries(
    VertexId v) const {
  std::vector<Entry> merged;
  if (compressed_) {
    lin_cpool_.Decode(v, &merged);
  } else {
    const std::span<const Entry> sealed = lin_pool_.Slice(v);
    merged.assign(sealed.begin(), sealed.end());
  }
  if (has_delta_ && !delta_lin_[v].empty()) {
    const std::vector<Entry>& delta = delta_lin_[v];
    std::vector<Entry> out(merged.size() + delta.size());
    std::merge(merged.begin(), merged.end(), delta.begin(), delta.end(),
               out.begin(),
               [](const Entry& a, const Entry& b) { return a.rank < b.rank; });
    merged = std::move(out);
  }
  return merged;
}

std::vector<PrunedLabeledTwoHop::Entry> PrunedLabeledTwoHop::OutEntries(
    VertexId v) const {
  if (compressed_) {
    std::vector<Entry> out;
    lout_cpool_.Decode(v, &out);
    return out;
  }
  const std::span<const Entry> sealed = lout_pool_.Slice(v);
  return {sealed.begin(), sealed.end()};
}

namespace {

// Payload magic for the labeled 2-hop stream (distinct from the plain
// "reach-2h" payload; the envelope already distinguishes formats, this is
// defense in depth).
constexpr uint64_t kP2hMagic = 0x7265616368703268ULL;  // "reachp2h"

constexpr std::string_view kP2hFormatName = "p2h";

using serialize_detail::ReadPod;
using serialize_detail::ReadU32Vec;
using serialize_detail::WritePod;
using serialize_detail::WriteU32Vec;

}  // namespace

bool PrunedLabeledTwoHop::Save(std::ostream& out) const {
  // A damaged labeling is only exact together with the live tombstone
  // state, which the stream does not carry (header contract).
  if (damage_ > 0) return false;
  if (!WriteEnvelope(out, kP2hFormatName)) return false;
  WritePod(out, kP2hMagic);
  WritePod(out, static_cast<uint64_t>(rank_.size()));
  WriteU32Vec(out, rank_);
  WriteU32Vec(out, by_rank_);
  const size_t n = rank_.size();
  const auto write_entries = [&out](const std::vector<Entry>& entries) {
    WritePod(out, static_cast<uint64_t>(entries.size()));
    for (const Entry& e : entries) {
      WritePod(out, e.rank);
      WritePod(out, static_cast<uint32_t>(e.mask));
    }
  };
  for (VertexId v = 0; v < n; ++v) write_entries(InEntries(v));
  for (VertexId v = 0; v < n; ++v) write_entries(OutEntries(v));
  return static_cast<bool>(out);
}

LoadResult PrunedLabeledTwoHop::Load(std::istream& in) {
  LoadResult envelope = ReadEnvelope(in, kP2hFormatName);
  if (!envelope) return envelope;
  const LoadResult corrupt{LoadStatus::kCorrupt,
                           std::string(kP2hFormatName)};
  uint64_t magic = 0, n = 0;
  if (!ReadPod(in, &magic) || magic != kP2hMagic) return corrupt;
  if (!ReadPod(in, &n)) return corrupt;
  if (!ReadU32Vec(in, &rank_, n)) return corrupt;
  std::vector<uint32_t> by_rank;
  if (!ReadU32Vec(in, &by_rank, n)) return corrupt;
  by_rank_.assign(by_rank.begin(), by_rank.end());
  if (rank_.size() != n || by_rank_.size() != n) return corrupt;
  for (uint32_t r : rank_) {
    if (r >= n) return corrupt;
  }
  for (VertexId v : by_rank_) {
    if (v >= n) return corrupt;
  }
  // Entry lists: each must be rank-sorted (the rank-group sweep's
  // invariant) with in-range hop ranks. Per-vertex count is bounded by
  // n * 2^|labels| in principle; cap at a generous multiple to reject
  // nonsense sizes without rejecting legal dense labelings.
  const uint64_t max_entries = n * 64;
  const auto read_entries = [&](std::vector<Entry>* entries) {
    uint64_t count = 0;
    if (!ReadPod(in, &count) || count > max_entries) return false;
    entries->clear();
    entries->reserve(count);
    uint32_t prev_rank = 0;
    for (uint64_t i = 0; i < count; ++i) {
      uint32_t rank = 0, mask = 0;
      if (!ReadPod(in, &rank) || !ReadPod(in, &mask)) return false;
      if (rank >= n || (i > 0 && rank < prev_rank)) return false;
      prev_rank = rank;
      entries->push_back(Entry{rank, static_cast<LabelSet>(mask)});
    }
    return true;
  };
  lin_.assign(n, {});
  lout_.assign(n, {});
  for (auto& entries : lin_) {
    if (!read_entries(&entries)) return corrupt;
  }
  for (auto& entries : lout_) {
    if (!read_entries(&entries)) return corrupt;
  }
  graph_ = nullptr;
  ResetDynamicState();
  SealLabels();
  return LoadResult{};
}

}  // namespace reach
