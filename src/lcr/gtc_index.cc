#include "lcr/gtc_index.h"

#include <algorithm>

#include "lcr/single_source_gtc.h"

namespace reach {

void GtcIndex::Build(const LabeledDigraph& graph) {
  BuildStatsScope build(&build_stats_);
  probe_.Reset();
  num_vertices_ = graph.NumVertices();
  row_offsets_.assign(num_vertices_ + 1, 0);
  entries_.clear();
  BuildPhaseTimer timer(&build_stats_.phases, "single_source_gtc");
  for (VertexId s = 0; s < num_vertices_; ++s) {
    const std::vector<MinimalLabelSets> minimal = SingleSourceGtc(graph, s);
    for (VertexId t = 0; t < num_vertices_; ++t) {
      for (LabelSet mask : minimal[t].sets()) {
        entries_.push_back({t, mask});
      }
    }
    row_offsets_[s + 1] = entries_.size();
  }
  timer.Stop();
  build_stats_.size_bytes = IndexSizeBytes();
  build_stats_.num_entries = entries_.size();
}

bool GtcIndex::Query(VertexId s, VertexId t, LabelSet allowed) const {
  REACH_PROBE_INC(probe_, queries);
  if (s == t) {
    REACH_PROBE_INC(probe_, positives);
    return true;
  }
  const Entry* begin = entries_.data() + row_offsets_[s];
  const Entry* end = entries_.data() + row_offsets_[s + 1];
  const Entry* it = std::lower_bound(
      begin, end, t,
      [](const Entry& e, VertexId target) { return e.target < target; });
  for (; it != end && it->target == t; ++it) {
    REACH_PROBE_INC(probe_, labels_scanned);
    if (IsSubsetOf(it->mask, allowed)) {
      REACH_PROBE_INC(probe_, positives);
      return true;
    }
  }
  REACH_PROBE_INC(probe_, label_rejections);
  return false;
}

std::vector<LabelSet> GtcIndex::Spls(VertexId s, VertexId t) const {
  std::vector<LabelSet> result;
  const Entry* begin = entries_.data() + row_offsets_[s];
  const Entry* end = entries_.data() + row_offsets_[s + 1];
  const Entry* it = std::lower_bound(
      begin, end, t,
      [](const Entry& e, VertexId target) { return e.target < target; });
  for (; it != end && it->target == t; ++it) result.push_back(it->mask);
  std::sort(result.begin(), result.end());
  return result;
}

size_t GtcIndex::IndexSizeBytes() const {
  return entries_.size() * sizeof(Entry) +
         row_offsets_.size() * sizeof(size_t);
}

}  // namespace reach
