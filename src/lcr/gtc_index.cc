#include "lcr/gtc_index.h"

#include <algorithm>

#include "lcr/single_source_gtc.h"

namespace reach {

void GtcIndex::Build(const LabeledDigraph& graph) {
  num_vertices_ = graph.NumVertices();
  row_offsets_.assign(num_vertices_ + 1, 0);
  entries_.clear();
  for (VertexId s = 0; s < num_vertices_; ++s) {
    const std::vector<MinimalLabelSets> minimal = SingleSourceGtc(graph, s);
    for (VertexId t = 0; t < num_vertices_; ++t) {
      for (LabelSet mask : minimal[t].sets()) {
        entries_.push_back({t, mask});
      }
    }
    row_offsets_[s + 1] = entries_.size();
  }
}

bool GtcIndex::Query(VertexId s, VertexId t, LabelSet allowed) const {
  if (s == t) return true;
  const Entry* begin = entries_.data() + row_offsets_[s];
  const Entry* end = entries_.data() + row_offsets_[s + 1];
  const Entry* it = std::lower_bound(
      begin, end, t,
      [](const Entry& e, VertexId target) { return e.target < target; });
  for (; it != end && it->target == t; ++it) {
    if (IsSubsetOf(it->mask, allowed)) return true;
  }
  return false;
}

std::vector<LabelSet> GtcIndex::Spls(VertexId s, VertexId t) const {
  std::vector<LabelSet> result;
  const Entry* begin = entries_.data() + row_offsets_[s];
  const Entry* end = entries_.data() + row_offsets_[s + 1];
  const Entry* it = std::lower_bound(
      begin, end, t,
      [](const Entry& e, VertexId target) { return e.target < target; });
  for (; it != end && it->target == t; ++it) result.push_back(it->mask);
  std::sort(result.begin(), result.end());
  return result;
}

size_t GtcIndex::IndexSizeBytes() const {
  return entries_.size() * sizeof(Entry) +
         row_offsets_.size() * sizeof(size_t);
}

}  // namespace reach
