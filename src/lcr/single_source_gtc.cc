#include "lcr/single_source_gtc.h"

#include <vector>

namespace reach {

namespace {

// Bucket queue keyed by popcount (0..kMaxLabels): pops states in
// nondecreasing number of distinct labels, the paper's path "length".
struct State {
  LabelSet mask;
  VertexId vertex;
};

template <typename ArcRange>
std::vector<MinimalLabelSets> GtcSweep(const LabeledDigraph& graph,
                                       VertexId origin, ArcRange arcs) {
  const size_t n = graph.NumVertices();
  std::vector<MinimalLabelSets> minimal(n);
  std::vector<std::vector<State>> buckets(kMaxLabels + 1);
  minimal[origin].AddIfMinimal(0);
  buckets[0].push_back({0, origin});

  for (size_t level = 0; level <= kMaxLabels; ++level) {
    // Buckets at the current level may grow while being drained (same-level
    // expansions when the edge label is already in the mask).
    for (size_t i = 0; i < buckets[level].size(); ++i) {
      const State state = buckets[level][i];
      // Stale check: dominated states are skipped (a smaller SPLS to this
      // vertex was settled first).
      if (!minimal[state.vertex].Dominates(state.mask)) continue;
      bool is_current = false;
      for (LabelSet s : minimal[state.vertex].sets()) {
        if (s == state.mask) {
          is_current = true;
          break;
        }
      }
      if (!is_current) continue;  // strictly dominated: stale
      for (const LabeledDigraph::Arc& arc : arcs(state.vertex)) {
        const LabelSet next = state.mask | LabelBit(arc.label);
        if (minimal[arc.vertex].AddIfMinimal(next)) {
          buckets[LabelCount(next)].push_back({next, arc.vertex});
        }
      }
    }
  }
  return minimal;
}

}  // namespace

std::vector<MinimalLabelSets> SingleSourceGtc(const LabeledDigraph& graph,
                                              VertexId source) {
  return GtcSweep(graph, source,
                  [&](VertexId v) { return graph.OutArcs(v); });
}

std::vector<MinimalLabelSets> SingleTargetGtc(const LabeledDigraph& graph,
                                              VertexId target) {
  return GtcSweep(graph, target, [&](VertexId v) { return graph.InArcs(v); });
}

}  // namespace reach
