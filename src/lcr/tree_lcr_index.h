#ifndef REACH_LCR_TREE_LCR_INDEX_H_
#define REACH_LCR_TREE_LCR_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "lcr/label_set.h"
#include "lcr/lcr_index.h"

namespace reach {

/// The tree-based LCR index of Jin et al. [21] (paper §4.1.1): a spanning
/// tree enriched with SPLSs plus a partial GTC for paths with non-tree
/// edges.
///
/// Following the paper's construction:
///  * a DFS spanning forest T with interval labels (the first
///    optimization: subtree containment finds tree successors /
///    predecessors in O(1));
///  * per-vertex occurrence counts of each label on the root->v tree path
///    (the second optimization: the SPLS of the unique s->t tree path is
///    the count difference, "subtracting the SPLS of the r-s path from the
///    SPLS of the r-t path");
///  * a partial GTC holding, for every *hub* (vertex with an outgoing
///    non-tree arc), the minimal SPLSs of all paths whose first AND last
///    edges are non-tree (the paper's case (2)).
///
/// Every s-t path decomposes as tree-prefix (s -> u), case-2 middle
/// (u -> w), tree-suffix (w -> t), so Qr(s, t, A) checks the pure tree
/// path, then every (hub u in s's subtree with tree-SPLS(s,u) ⊆ A) x
/// (ancestor-or-self w of t with tree-SPLS(w,t) ⊆ A) pair against the
/// partial GTC. Complete (queries are lookups and tree walks; no graph
/// traversal) — and exhibiting the quadratic pair enumeration that the
/// survey notes keeps these early designs from modern graph scale.
class TreeLcrIndex : public LcrIndex {
 public:
  TreeLcrIndex() = default;

  void Build(const LabeledDigraph& graph) override;
  bool Query(VertexId s, VertexId t, LabelSet allowed) const override;
  size_t IndexSizeBytes() const override;
  bool IsComplete() const override { return true; }
  std::string Name() const override { return "jin-tree"; }

  /// Number of hubs (vertices with outgoing non-tree arcs).
  size_t NumHubs() const { return hubs_.size(); }

  /// Total (hub, target, SPLS) entries in the partial GTC.
  size_t PartialGtcEntries() const { return gtc_entries_.size(); }

 private:
  struct GtcEntry {
    VertexId target;
    LabelSet mask;
  };

  bool SubtreeContains(VertexId s, VertexId t) const {
    return pre_[s] <= pre_[t] && post_[t] <= post_[s];
  }
  // The SPLS of the unique tree path s -> t; only valid when
  // SubtreeContains(s, t). Computed from root-path label counts.
  LabelSet TreePathLabels(VertexId s, VertexId t) const;
  bool GtcQuery(size_t hub_index, VertexId w, LabelSet allowed) const;

  const LabeledDigraph* graph_ = nullptr;
  Label num_labels_ = 0;
  // Spanning forest.
  std::vector<VertexId> parent_;
  std::vector<Label> parent_label_;      // label of the tree arc into v
  std::vector<uint32_t> pre_, post_;     // DFS intervals
  std::vector<uint32_t> label_counts_;   // [v * L + l] on root->v path
  // Hubs sorted by pre order (for subtree range scans).
  std::vector<VertexId> hubs_;
  std::vector<uint32_t> hub_index_of_;   // vertex -> index in hubs_, or ~0
  // Partial GTC rows per hub, CSR, sorted by target.
  std::vector<size_t> gtc_offsets_;
  std::vector<GtcEntry> gtc_entries_;
};

}  // namespace reach

#endif  // REACH_LCR_TREE_LCR_INDEX_H_
