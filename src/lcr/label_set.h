#ifndef REACH_LCR_LABEL_SET_H_
#define REACH_LCR_LABEL_SET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/types.h"

namespace reach {

/// The bit for label `l` in a LabelSet mask.
inline constexpr LabelSet LabelBit(Label l) { return LabelSet{1} << l; }

/// True iff every label of `a` is in `b`.
inline constexpr bool IsSubsetOf(LabelSet a, LabelSet b) {
  return (a & ~b) == 0;
}

/// Number of distinct labels in the set — the "distance" of the
/// Dijkstra-like GTC computation of Zou et al. (paper §4.1.2).
inline int LabelCount(LabelSet s) { return __builtin_popcount(s); }

/// Builds the mask for an alternation constraint (l1 ∪ l2 ∪ ...)*.
LabelSet MakeLabelSet(std::initializer_list<Label> labels);

/// Renders a mask like "{friendOf, worksFor}" using `names` (or bit
/// indexes when names are missing).
std::string LabelSetToString(LabelSet s, const std::vector<std::string>& names);

/// An antichain of minimal label sets under ⊆ — the *sufficient path-label
/// sets* (SPLS) of Jin et al. (paper §4.1): "if there are two s-t paths
/// with edge-label sets S1 and S2 and S1 ⊆ S2, then S2 is redundant".
///
/// The container maintains exactly the ⊆-minimal masks among everything
/// added. An alternation query Qr(s, t, alpha) with allowed mask A succeeds
/// iff some stored SPLS is ⊆ A.
class MinimalLabelSets {
 public:
  MinimalLabelSets() = default;

  /// Adds `mask` unless a stored subset already covers it; removes stored
  /// supersets it makes redundant. Returns true iff `mask` was inserted.
  bool AddIfMinimal(LabelSet mask);

  /// True iff some stored set is a subset of `allowed` (the query test).
  bool ContainsSubsetOf(LabelSet allowed) const;

  /// True iff `mask` is dominated: some stored set is ⊆ mask.
  bool Dominates(LabelSet mask) const { return ContainsSubsetOf(mask); }

  /// The stored antichain (unordered).
  const std::vector<LabelSet>& sets() const { return sets_; }

  bool empty() const { return sets_.empty(); }
  size_t size() const { return sets_.size(); }

 private:
  std::vector<LabelSet> sets_;
};

}  // namespace reach

#endif  // REACH_LCR_LABEL_SET_H_
