#include "lcr/tree_lcr_index.h"

#include <algorithm>

namespace reach {

namespace {

// Bucket queue state for the partial-GTC sweeps.
struct State {
  LabelSet mask;
  VertexId vertex;
};

constexpr uint32_t kNotHub = UINT32_MAX;

}  // namespace

void TreeLcrIndex::Build(const LabeledDigraph& graph) {
  graph_ = &graph;
  num_labels_ = graph.NumLabels();
  const size_t n = graph.NumVertices();
  parent_.assign(n, kInvalidVertex);
  parent_label_.assign(n, 0);
  pre_.assign(n, 0);
  post_.assign(n, 0);
  label_counts_.assign(n * num_labels_, 0);

  // DFS spanning forest over arcs; root-path label counts fill top-down.
  std::vector<bool> visited(n, false);
  struct Frame {
    VertexId vertex;
    size_t next_arc;
  };
  std::vector<Frame> stack;
  uint32_t counter = 0;
  for (VertexId root = 0; root < n; ++root) {
    if (visited[root]) continue;
    visited[root] = true;
    pre_[root] = ++counter;
    stack.push_back({root, 0});
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const VertexId v = frame.vertex;
      auto arcs = graph.OutArcs(v);
      if (frame.next_arc < arcs.size()) {
        const auto& arc = arcs[frame.next_arc++];
        if (!visited[arc.vertex]) {
          const VertexId c = arc.vertex;
          visited[c] = true;
          parent_[c] = v;
          parent_label_[c] = arc.label;
          pre_[c] = ++counter;
          if (num_labels_ > 0) {
            for (Label l = 0; l < num_labels_; ++l) {
              label_counts_[c * num_labels_ + l] =
                  label_counts_[v * num_labels_ + l];
            }
            ++label_counts_[c * num_labels_ + arc.label];
          }
          stack.push_back({c, 0});
        }
      } else {
        post_[v] = ++counter;
        stack.pop_back();
      }
    }
  }

  // Hubs: vertices with at least one outgoing non-tree arc.
  auto is_tree_arc = [&](VertexId u, const LabeledDigraph::Arc& arc) {
    return parent_[arc.vertex] == u && parent_label_[arc.vertex] == arc.label;
  };
  hubs_.clear();
  hub_index_of_.assign(n, kNotHub);
  for (VertexId u = 0; u < n; ++u) {
    for (const auto& arc : graph.OutArcs(u)) {
      if (!is_tree_arc(u, arc)) {
        hub_index_of_[u] = 0;  // provisional mark
        hubs_.push_back(u);
        break;
      }
    }
  }
  std::sort(hubs_.begin(), hubs_.end(),
            [&](VertexId a, VertexId b) { return pre_[a] < pre_[b]; });
  for (uint32_t i = 0; i < hubs_.size(); ++i) hub_index_of_[hubs_[i]] = i;

  // Partial GTC: per hub, minimal SPLSs of paths whose first and last
  // arcs are non-tree (the paper's case (2)).
  gtc_offsets_.assign(hubs_.size() + 1, 0);
  gtc_entries_.clear();
  std::vector<MinimalLabelSets> seen(n);  // traversal antichains
  std::vector<MinimalLabelSets> rows(n);  // non-tree-ending antichains
  std::vector<VertexId> touched;
  std::vector<std::vector<State>> buckets(kMaxLabels + 1);
  for (uint32_t h = 0; h < hubs_.size(); ++h) {
    const VertexId hub = hubs_[h];
    for (VertexId v : touched) {
      seen[v] = MinimalLabelSets();
      rows[v] = MinimalLabelSets();
    }
    touched.clear();
    for (auto& b : buckets) b.clear();

    // Seed with the hub's non-tree arcs.
    for (const auto& arc : graph.OutArcs(hub)) {
      if (is_tree_arc(hub, arc)) continue;
      const LabelSet mask = LabelBit(arc.label);
      if (seen[arc.vertex].empty() && rows[arc.vertex].empty()) {
        touched.push_back(arc.vertex);
      }
      rows[arc.vertex].AddIfMinimal(mask);
      if (seen[arc.vertex].AddIfMinimal(mask)) {
        buckets[LabelCount(mask)].push_back({mask, arc.vertex});
      }
    }
    // Expand in nondecreasing |mask|; record on every non-tree arrival.
    for (size_t level = 0; level <= kMaxLabels; ++level) {
      for (size_t i = 0; i < buckets[level].size(); ++i) {
        const State state = buckets[level][i];
        if (!seen[state.vertex].Dominates(state.mask)) continue;
        for (const auto& arc : graph_->OutArcs(state.vertex)) {
          const LabelSet next = state.mask | LabelBit(arc.label);
          const VertexId y = arc.vertex;
          if (seen[y].empty() && rows[y].empty()) touched.push_back(y);
          if (!is_tree_arc(state.vertex, arc)) {
            rows[y].AddIfMinimal(next);
          }
          if (seen[y].AddIfMinimal(next)) {
            buckets[LabelCount(next)].push_back({next, y});
          }
        }
      }
    }
    for (VertexId w = 0; w < n; ++w) {
      for (LabelSet mask : rows[w].sets()) {
        gtc_entries_.push_back({w, mask});
      }
    }
    gtc_offsets_[h + 1] = gtc_entries_.size();
  }
}

LabelSet TreeLcrIndex::TreePathLabels(VertexId s, VertexId t) const {
  LabelSet mask = 0;
  for (Label l = 0; l < num_labels_; ++l) {
    if (label_counts_[t * num_labels_ + l] >
        label_counts_[s * num_labels_ + l]) {
      mask |= LabelBit(l);
    }
  }
  return mask;
}

bool TreeLcrIndex::GtcQuery(size_t hub_index, VertexId w,
                            LabelSet allowed) const {
  const GtcEntry* begin = gtc_entries_.data() + gtc_offsets_[hub_index];
  const GtcEntry* end = gtc_entries_.data() + gtc_offsets_[hub_index + 1];
  const GtcEntry* it = std::lower_bound(
      begin, end, w,
      [](const GtcEntry& e, VertexId target) { return e.target < target; });
  for (; it != end && it->target == w; ++it) {
    if (IsSubsetOf(it->mask, allowed)) return true;
  }
  return false;
}

bool TreeLcrIndex::Query(VertexId s, VertexId t, LabelSet allowed) const {
  if (s == t) return true;
  // Case (1a): the pure tree path.
  if (SubtreeContains(s, t) &&
      IsSubsetOf(TreePathLabels(s, t), allowed)) {
    return true;
  }
  // Tree-suffix candidates: ancestors-or-self of t whose downward path to
  // t stays within the allowed labels (the label set only grows walking
  // up, so the walk can stop early).
  std::vector<VertexId> suffix_starts;
  {
    VertexId w = t;
    LabelSet mask = 0;
    while (true) {
      suffix_starts.push_back(w);
      if (parent_[w] == kInvalidVertex) break;
      mask |= LabelBit(parent_label_[w]);
      if (!IsSubsetOf(mask, allowed)) break;
      w = parent_[w];
    }
  }
  // Tree-prefix candidates: hubs in s's subtree with an allowed tree path
  // from s (subtree range scan over the pre-sorted hub list).
  auto first = std::lower_bound(
      hubs_.begin(), hubs_.end(), pre_[s],
      [&](VertexId hub, uint32_t pre) { return pre_[hub] < pre; });
  for (; first != hubs_.end() && pre_[*first] <= post_[s]; ++first) {
    const VertexId u = *first;
    if (!IsSubsetOf(TreePathLabels(s, u), allowed)) continue;
    const uint32_t hub_index = hub_index_of_[u];
    for (VertexId w : suffix_starts) {
      if (GtcQuery(hub_index, w, allowed)) return true;
    }
  }
  return false;
}

size_t TreeLcrIndex::IndexSizeBytes() const {
  return parent_.size() * (sizeof(VertexId) + sizeof(Label)) +
         (pre_.size() + post_.size()) * sizeof(uint32_t) +
         label_counts_.size() * sizeof(uint32_t) +
         hubs_.size() * sizeof(VertexId) +
         hub_index_of_.size() * sizeof(uint32_t) +
         gtc_offsets_.size() * sizeof(size_t) +
         gtc_entries_.size() * sizeof(GtcEntry);
}

}  // namespace reach
