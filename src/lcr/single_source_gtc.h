#ifndef REACH_LCR_SINGLE_SOURCE_GTC_H_
#define REACH_LCR_SINGLE_SOURCE_GTC_H_

#include <vector>

#include "graph/labeled_digraph.h"
#include "lcr/label_set.h"

namespace reach {

/// The fundamental step of the GTC indexes of Zou et al. (paper §4.1.2):
/// computes, for one source vertex, every reachable vertex together with
/// the antichain of *minimal* sufficient path-label sets (SPLS) from the
/// source to it.
///
/// Implementation is the paper's Dijkstra-like algorithm: states
/// (label set, vertex) are expanded in nondecreasing number of distinct
/// labels, so "shorter" label sets (e.g., the path p3 = (L, worksFor, C,
/// worksFor, H) with one distinct label) are settled before "longer" ones
/// (p4 with two), and dominated states are pruned against the per-vertex
/// antichain. Works directly on general graphs; the source's own entry is
/// the empty set (empty path).
std::vector<MinimalLabelSets> SingleSourceGtc(const LabeledDigraph& graph,
                                              VertexId source);

/// Dual: minimal SPLSs from every vertex TO `target` (runs the same
/// algorithm over in-arcs). Used by landmark-style indexes.
std::vector<MinimalLabelSets> SingleTargetGtc(const LabeledDigraph& graph,
                                              VertexId target);

}  // namespace reach

#endif  // REACH_LCR_SINGLE_SOURCE_GTC_H_
