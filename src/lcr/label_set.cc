#include "lcr/label_set.h"

namespace reach {

LabelSet MakeLabelSet(std::initializer_list<Label> labels) {
  LabelSet mask = 0;
  for (Label l : labels) mask |= LabelBit(l);
  return mask;
}

std::string LabelSetToString(LabelSet s,
                             const std::vector<std::string>& names) {
  std::string out = "{";
  bool first = true;
  for (Label l = 0; l < kMaxLabels; ++l) {
    if ((s & LabelBit(l)) == 0) continue;
    if (!first) out += ", ";
    first = false;
    if (l < names.size()) {
      out += names[l];
    } else {
      out += std::to_string(l);
    }
  }
  out += "}";
  return out;
}

bool MinimalLabelSets::AddIfMinimal(LabelSet mask) {
  for (LabelSet existing : sets_) {
    if (IsSubsetOf(existing, mask)) return false;  // dominated
  }
  // Remove supersets that the new mask makes redundant.
  size_t out = 0;
  for (size_t i = 0; i < sets_.size(); ++i) {
    if (!IsSubsetOf(mask, sets_[i])) sets_[out++] = sets_[i];
  }
  sets_.resize(out);
  sets_.push_back(mask);
  return true;
}

bool MinimalLabelSets::ContainsSubsetOf(LabelSet allowed) const {
  for (LabelSet s : sets_) {
    if (IsSubsetOf(s, allowed)) return true;
  }
  return false;
}

}  // namespace reach
