#include "lcr/landmark_index.h"

#include <algorithm>
#include <numeric>

#include "lcr/single_source_gtc.h"

namespace reach {

void LandmarkIndex::Build(const LabeledDigraph& graph) {
  BuildStatsScope build(&build_stats_);
  ws_.probe().Reset();
  graph_ = &graph;
  const size_t n = graph.NumVertices();
  landmark_id_.assign(n, kNoLandmark);

  BuildPhaseTimer select_timer(&build_stats_.phases, "select_landmarks");
  std::vector<VertexId> by_degree(n);
  std::iota(by_degree.begin(), by_degree.end(), 0);
  std::stable_sort(by_degree.begin(), by_degree.end(),
                   [&](VertexId a, VertexId b) {
                     return graph.Degree(a) > graph.Degree(b);
                   });
  const size_t k = std::min(num_landmarks_, n);
  select_timer.Stop();

  BuildPhaseTimer rows_timer(&build_stats_.phases, "landmark_rows");
  row_offsets_.assign(k + 1, 0);
  row_entries_.clear();
  shortcuts_.assign(n, {});
  for (uint32_t lm = 0; lm < k; ++lm) {
    const VertexId landmark = by_degree[lm];
    landmark_id_[landmark] = lm;
    const std::vector<MinimalLabelSets> fwd = SingleSourceGtc(graph, landmark);
    for (VertexId t = 0; t < n; ++t) {
      for (LabelSet mask : fwd[t].sets()) row_entries_.push_back({t, mask});
    }
    row_offsets_[lm + 1] = row_entries_.size();

    // Shortcuts: minimal SPLSs from every vertex TO this landmark; each
    // vertex keeps its `budget_` smallest across all landmarks.
    if (budget_ > 0) {
      const std::vector<MinimalLabelSets> bwd =
          SingleTargetGtc(graph, landmark);
      for (VertexId v = 0; v < n; ++v) {
        if (v == landmark) continue;
        for (LabelSet mask : bwd[v].sets()) {
          shortcuts_[v].push_back({lm, mask});
        }
      }
    }
  }
  rows_timer.Stop();
  if (budget_ > 0) {
    BuildPhaseTimer shortcut_timer(&build_stats_.phases, "shortcut_budget");
    for (VertexId v = 0; v < n; ++v) {
      auto& sc = shortcuts_[v];
      std::stable_sort(sc.begin(), sc.end(),
                       [](const Shortcut& a, const Shortcut& b) {
                         return LabelCount(a.mask) < LabelCount(b.mask);
                       });
      if (sc.size() > budget_) sc.resize(budget_);
      sc.shrink_to_fit();
    }
  }
  build_stats_.size_bytes = IndexSizeBytes();
  build_stats_.num_entries = row_entries_.size();
}

bool LandmarkIndex::RowQuery(uint32_t lm, VertexId t, LabelSet allowed) const {
  const RowEntry* begin = row_entries_.data() + row_offsets_[lm];
  const RowEntry* end = row_entries_.data() + row_offsets_[lm + 1];
  const RowEntry* it = std::lower_bound(
      begin, end, t,
      [](const RowEntry& e, VertexId target) { return e.target < target; });
  for (; it != end && it->target == t; ++it) {
    REACH_PROBE_INC(ws_.probe(), labels_scanned);
    if (IsSubsetOf(it->mask, allowed)) return true;
  }
  return false;
}

bool LandmarkIndex::Query(VertexId s, VertexId t, LabelSet allowed) const {
  REACH_PROBE_INC(ws_.probe(), queries);
  if (s == t) {
    REACH_PROBE_INC(ws_.probe(), positives);
    return true;
  }
  // A landmark source is answered entirely from its complete GTC row.
  if (landmark_id_[s] != kNoLandmark) {
    const bool reachable = RowQuery(landmark_id_[s], t, allowed);
    if (reachable) {
      REACH_PROBE_INC(ws_.probe(), positives);
    } else {
      REACH_PROBE_INC(ws_.probe(), label_rejections);
    }
    return reachable;
  }
  // Shortcut acceleration: s -> landmark -> t without any traversal.
  for (const Shortcut& sc : shortcuts_[s]) {
    REACH_PROBE_INC(ws_.probe(), labels_scanned);
    if (IsSubsetOf(sc.mask, allowed) && RowQuery(sc.landmark, t, allowed)) {
      REACH_PROBE_INC(ws_.probe(), positives);
      return true;
    }
  }
  // Constrained BFS with landmark acceleration and pruning.
  REACH_PROBE_INC(ws_.probe(), fallbacks);
  ws_.Prepare(graph_->NumVertices());
  auto& queue = ws_.queue();
  ws_.MarkForward(s);
  queue.push_back(s);
  for (size_t head = 0; head < queue.size(); ++head) {
    REACH_PROBE_INC(ws_.probe(), vertices_visited);
    for (const LabeledDigraph::Arc& arc : graph_->OutArcs(queue[head])) {
      REACH_PROBE_INC(ws_.probe(), edges_scanned);
      if ((LabelBit(arc.label) & allowed) == 0) {
        REACH_PROBE_INC(ws_.probe(), filter_prunes);
        continue;
      }
      if (arc.vertex == t) {
        REACH_PROBE_INC(ws_.probe(), positives);
        return true;
      }
      if (!ws_.MarkForward(arc.vertex)) continue;
      const uint32_t lm = landmark_id_[arc.vertex];
      if (lm != kNoLandmark) {
        // Landmark hit: its complete row either answers true or proves no
        // path through it can satisfy the constraint — prune either way.
        if (RowQuery(lm, t, allowed)) {
          REACH_PROBE_INC(ws_.probe(), positives);
          return true;
        }
        REACH_PROBE_INC(ws_.probe(), filter_prunes);
        continue;
      }
      queue.push_back(arc.vertex);
    }
  }
  return false;
}

size_t LandmarkIndex::IndexSizeBytes() const {
  size_t bytes = row_entries_.size() * sizeof(RowEntry) +
                 row_offsets_.size() * sizeof(size_t) +
                 landmark_id_.size() * sizeof(uint32_t);
  for (const auto& sc : shortcuts_) bytes += sc.size() * sizeof(Shortcut);
  return bytes;
}

}  // namespace reach
