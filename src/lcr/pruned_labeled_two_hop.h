#ifndef REACH_LCR_PRUNED_LABELED_TWO_HOP_H_
#define REACH_LCR_PRUNED_LABELED_TWO_HOP_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/label_pool.h"
#include "lcr/label_set.h"
#include "lcr/lcr_index.h"

namespace reach {

/// P2H+-style pruned labeled 2-hop index (Peng et al. [33], paper §4.1.3),
/// with DLCR-style [10] incremental edge insertion — the 2-hop rows of
/// Table 2.
///
/// Every vertex carries Lin/Lout entries (hop, SPLS): (h, S) ∈ Lin(v)
/// means h reaches v via a path whose minimal label set is S.
/// Qr(s, t, alpha) is true iff there is a common hop h with
/// S_out(s, h) ∪ S_in(h, t) ⊆ alpha's mask (the endpoints act as their own
/// virtual hops with empty SPLS).
///
/// Build runs forward/backward *label-BFSs* from vertices in decreasing-
/// degree order; states (vertex, label set) expand in nondecreasing
/// |label set| (so recorded SPLSs are minimal) and a state is pruned when
/// the index built so far already answers the corresponding query — the
/// non-redundancy guarantee of P2H+. Works on general graphs.
///
/// Dynamics (the DLCR row), all behind `ApplyUpdate`:
///
///  * Inserts resume label-BFSs through the new arc for every hop that
///    reaches its source, keeping the index correct (possibly with
///    redundant entries — DLCR's redundancy elimination bookkeeping is
///    out of scope; see DESIGN.md).
///  * Deletes reuse the plain `PrunedTwoHop` decremental design,
///    generalized to labeled arcs. Labels always describe the *superset*
///    graph G+ (base ∪ everything ever inserted, tombstones ignored), so
///    "no covered witness" stays an exact negative for the shrunken live
///    graph. A deleted arc is tombstoned (live iterators skip it; the
///    superset iterators keep it). A delete is *locally redundant* — zero
///    damage — when a live all-`label` detour s ->* t survives within a
///    bounded search (any query path through the arc reroutes without
///    growing its mask). Otherwise a label-ignoring sweep over G+ marks
///    ancestor ranks of s as forward-damaged and descendant ranks of t as
///    backward-damaged (a sound over-approximation of the constrained
///    ancestor/descendant sets); damaged witnesses are re-checked by a
///    constrained traversal pruned with superset label tests, so answers
///    stay exact at any damage level. `RebuildFromUpdates` re-minimizes
///    and clears the damage once it crosses the staleness budget.
class PrunedLabeledTwoHop : public LcrIndex {
 public:
  /// Default `staleness_budget` (see constructor).
  static constexpr size_t kDefaultStalenessBudget = 32;

  /// `num_threads` parallelizes the build with the same rank-batched
  /// speculate/commit/redo scheme as `PrunedTwoHop` (speculative sweeps
  /// consult a worker-local shadow of their own rank's entries, since the
  /// serial pruning oracle sees in-sweep insertions). The labeling is
  /// bit-identical to a serial build for any thread count
  /// (docs/PARALLELISM.md). 0 = `DefaultThreads()`, 1 = serial.
  ///
  /// `staleness_budget` is the damage level past which `ApplyUpdate`
  /// reports `kDeferredRebuild` (answers stay exact; the caller decides
  /// when to pay for `RebuildFromUpdates`). 0 = never recommend.
  explicit PrunedLabeledTwoHop(size_t num_threads = 0,
                               TwoHopStorageOptions storage = {},
                               size_t staleness_budget =
                                   kDefaultStalenessBudget)
      : num_threads_(num_threads),
        storage_(storage),
        staleness_budget_(staleness_budget) {}

  void Build(const LabeledDigraph& graph) override;
  bool Query(VertexId s, VertexId t, LabelSet allowed) const override;
  size_t IndexSizeBytes() const override;
  /// Complete while undamaged; damaged witnesses fall back to constrained
  /// traversal until `RebuildFromUpdates`.
  bool IsComplete() const override { return damage_ == 0; }
  std::string Name() const override { return "p2h"; }
  QueryProbe Probe() const override { return probe_; }
  void ResetProbe() const override { probe_.Reset(); }

  /// Serializes the labeling (envelope + ranks + (hop, SPLS) entries) to
  /// a binary stream; the state already reflects any incremental
  /// insertions. Refuses (returns false) while `Damage() > 0`: a damaged
  /// labeling is only exact together with the live tombstone state, which
  /// the stream does not carry — `RebuildFromUpdates()` first. Envelope
  /// format name: "p2h".
  bool SupportsSerialization() const override { return true; }
  bool Save(std::ostream& out) const override;

  /// Restores a labeling saved by `Save`. A loaded index answers queries
  /// without the original graph; call `Build` (or keep the graph around)
  /// before using `ApplyUpdate` again. Returns a typed error on malformed
  /// input, leaving the index unspecified.
  LoadResult Load(std::istream& in) override;

  /// Applies a batch of labeled inserts and deletes (class comment).
  /// Validate-first: an endpoint or label out of range rejects the whole
  /// batch with no state change. Returns `kDeferredRebuild` once damage
  /// exceeds the staleness budget.
  UpdateResult ApplyUpdate(const LabeledUpdateBatch& batch);

  /// Deletions are absorbed incrementally (class comment).
  bool SupportsDeletions() const { return true; }

  /// Rebuilds from the live edge set (base ∪ extras, minus tombstones),
  /// re-minimizing the labeling and resetting damage to zero. Returns
  /// false when no live graph is attached (after `Load`).
  bool RebuildFromUpdates();

  /// Number of damaging deletes absorbed since the last (re)build.
  size_t Damage() const { return damage_; }

  /// The rebuild-recommendation threshold (0 = never recommend).
  size_t StalenessBudget() const { return staleness_budget_; }

  /// Incremental insertion of the labeled edge s -l-> t.
  [[deprecated("use ApplyUpdate(LabeledUpdateBatch) instead")]] void
  InsertEdge(VertexId s, VertexId t, Label label) {
    ApplyUpdate({LabeledEdgeUpdate::Insert(s, t, label)});
  }

  /// Total number of (hop, SPLS) entries across all vertices.
  size_t TotalEntries() const;

  /// True when the sealed entries live in block-compressed pools.
  bool CompressedStorage() const { return compressed_; }
  /// True when a `budget_mb` bound was requested but even the coarsest
  /// storage tier exceeds it (or a rank group forced the flat fallback).
  bool BudgetExceeded() const { return budget_exceeded_; }
  const TwoHopStorageOptions& Storage() const { return storage_; }

 private:
  struct Entry {
    uint32_t rank;
    LabelSet mask;
  };

  void BuildLabels(const LabeledDigraph& graph, size_t threads);
  void SealLabels();
  // Per-vertex entries as one rank-sorted vector: the sealed pool slice
  // merged with the delta overlay (Lin only; Lout has no delta).
  std::vector<Entry> InEntries(VertexId v) const;
  std::vector<Entry> OutEntries(VertexId v) const;
  // Build-time pruning oracle over the (unsealed) nested entry vectors.
  bool LabelQuery(VertexId s, VertexId t, LabelSet allowed) const;
  // The query dispatch every entry point routes through: the sealed hot
  // path while undamaged, the witness-trust protocol once deletes have
  // marked ranks.
  bool AnswerQuery(VertexId s, VertexId t, LabelSet allowed) const;
  // Exact answer for the superset graph G+ (pool slices + delta overlay,
  // tombstones ignored) — the pre-deletion hot path, and the pruning
  // oracle of the verification traversal (a G+ negative is final).
  bool SupersetAnswer(VertexId s, VertexId t, LabelSet allowed) const;
  // Witness-trust slow lane while damage_ > 0: a covered witness whose
  // rank(s) are unmarked is exact; no witness at all is an exact
  // negative (labels over-cover the live graph); only damaged witnesses
  // fall through to VerifyReach.
  bool DamagedAnswer(VertexId s, VertexId t, LabelSet allowed) const;
  // Constrained BFS over live arcs (mask ⊆ allowed), pruned at vertices
  // the superset labels rule out. Exact either way; unbounded on purpose
  // (the exactness backstop).
  bool VerifyReach(VertexId s, VertexId t, LabelSet allowed) const;
  // True iff `entries` holds (rank, mask ⊆ allowed).
  static bool HasCoveredEntry(std::span<const Entry> entries, uint32_t rank,
                              LabelSet allowed);
  // Rank-grouped two-pointer / galloping sweep over two sorted entry
  // ranges (docs/QUERY_ENGINE.md).
  static bool IntersectEntryRanges(std::span<const Entry> out,
                                   std::span<const Entry> in,
                                   LabelSet allowed);
  // Compressed-pool analogues: a rank group is never split across blocks,
  // so the covered test decodes exactly one block and the intersection is
  // a skip-table block-merge calling `IntersectEntryRanges` on decoded
  // block pairs (docs/SNAPSHOTS.md).
  static bool CoveredInPool(const CompressedEntryPool<Entry>& pool,
                            VertexId v, uint32_t rank, LabelSet allowed);
  static bool IntersectPools(const CompressedEntryPool<Entry>& out_pool,
                             VertexId s,
                             const CompressedEntryPool<Entry>& in_pool,
                             VertexId t, LabelSet allowed);
  static bool IntersectPoolWithSpan(const CompressedEntryPool<Entry>& pool,
                                    VertexId v, std::span<const Entry> other,
                                    LabelSet allowed);
  // Publishes the index.bytes / compression gauges after a (re)seal.
  void PublishStorageGauges(size_t flat_equivalent_bytes) const;
  // Live adjacency: base ∪ extras, minus tombstoned arcs.
  template <typename ArcFn>
  void ArcsOut(VertexId v, ArcFn&& fn) const;
  template <typename ArcFn>
  void ArcsIn(VertexId v, ArcFn&& fn) const;
  // Superset adjacency G+: base ∪ extras, tombstones ignored — what the
  // labels describe, and what damage marking must traverse (a later
  // delete can break the detour that justified an earlier redundant
  // one, so marking may not forget since-deleted arcs).
  template <typename ArcFn>
  void ArcsOutSuperset(VertexId v, ArcFn&& fn) const;
  template <typename ArcFn>
  void ArcsInSuperset(VertexId v, ArcFn&& fn) const;

  // Single-update applicators; return true when graph state changed.
  bool ApplyInsert(VertexId s, VertexId t, Label label);
  bool ApplyDelete(VertexId s, VertexId t, Label label);
  bool IsTombstoned(VertexId s, VertexId t, Label label) const;
  // Bounded BFS restricted to arcs labeled exactly `label`: if a live
  // all-`label` detour u ->* v survives the delete, any query path
  // through the arc reroutes without growing its mask — zero damage.
  // Budget overrun counts as "not redundant" (conservative).
  bool LocallyRedundant(VertexId u, VertexId v, Label label) const;
  // Label-ignoring sweeps over G+: backward from u marks forward-damaged
  // ranks (their "reaches ..." claims may route through the cut);
  // forward from v marks backward-damaged ranks. Budget overrun damages
  // the whole side.
  void MarkDamage(VertexId u, VertexId v);
  // Transitive mark sweep over the superset adjacency; false = budget
  // overrun (caller escalates to the matching *_all_damaged_ flag).
  bool DamageSweep(VertexId start, bool backward);
  bool RankDamagedFwd(uint32_t r) const {
    return fwd_all_damaged_ || damaged_fwd_[r] != 0;
  }
  bool RankDamagedBwd(uint32_t r) const {
    return bwd_all_damaged_ || damaged_bwd_[r] != 0;
  }
  // Clears every post-build overlay: extras, tombstones, delta, damage.
  void ResetDynamicState();

  static constexpr size_t kLocalSearchBudget = 4096;

  size_t num_threads_ = 0;
  const LabeledDigraph* graph_ = nullptr;
  LabeledDigraph owned_graph_;  // used after RebuildFromUpdates
  std::vector<uint32_t> rank_;
  std::vector<VertexId> by_rank_;
  // Build-side accumulators (sorted by (rank, insertion)); SealLabels()
  // moves them into the flat pools and leaves them empty.
  std::vector<std::vector<Entry>> lin_;
  std::vector<std::vector<Entry>> lout_;
  // Sealed query-path layout: exactly one representation is live after
  // SealLabels — the flat pools, or (when `storage_` asks for compression
  // or the budget forces it) the block-compressed pools.
  FlatLabelPool<Entry> lin_pool_;
  FlatLabelPool<Entry> lout_pool_;
  CompressedEntryPool<Entry> lin_cpool_;
  CompressedEntryPool<Entry> lout_cpool_;
  TwoHopStorageOptions storage_;
  bool compressed_ = false;
  bool budget_exceeded_ = false;
  // Unsealed delta overlay: Lin entries added by InsertEdge after sealing
  // (rank-ordered). Empty until the first insert.
  std::vector<std::vector<Entry>> delta_lin_;
  bool has_delta_ = false;
  // Arcs inserted after Build. Deleted extras STAY here (tombstoned like
  // base arcs) so the superset adjacency keeps every arc that ever
  // existed — see ArcsOutSuperset.
  std::vector<std::vector<LabeledDigraph::Arc>> extra_out_, extra_in_;
  size_t staleness_budget_ = kDefaultStalenessBudget;
  // Tombstoned (deleted) arcs, filtered out by the live iterators.
  // Sized lazily on first delete; small linear-scanned lists.
  std::vector<std::vector<LabeledDigraph::Arc>> tomb_out_, tomb_in_;
  // Damaging deletes since the last (re)build, and the per-rank trust
  // marks they left (sized lazily by MarkDamage).
  size_t damage_ = 0;
  std::vector<uint8_t> damaged_fwd_, damaged_bwd_;
  bool fwd_all_damaged_ = false;
  bool bwd_all_damaged_ = false;
  // Epoch-stamped scratch for the verification / redundancy / marking
  // traversals (slow lanes; queries are single-threaded through Query).
  mutable std::vector<uint32_t> visit_stamp_;
  mutable uint32_t visit_epoch_ = 0;
  mutable std::vector<VertexId> visit_queue_;
  mutable QueryProbe probe_;
};

}  // namespace reach

#endif  // REACH_LCR_PRUNED_LABELED_TWO_HOP_H_
