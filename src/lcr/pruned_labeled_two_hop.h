#ifndef REACH_LCR_PRUNED_LABELED_TWO_HOP_H_
#define REACH_LCR_PRUNED_LABELED_TWO_HOP_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/label_pool.h"
#include "lcr/label_set.h"
#include "lcr/lcr_index.h"

namespace reach {

/// P2H+-style pruned labeled 2-hop index (Peng et al. [33], paper §4.1.3),
/// with DLCR-style [10] incremental edge insertion — the 2-hop rows of
/// Table 2.
///
/// Every vertex carries Lin/Lout entries (hop, SPLS): (h, S) ∈ Lin(v)
/// means h reaches v via a path whose minimal label set is S.
/// Qr(s, t, alpha) is true iff there is a common hop h with
/// S_out(s, h) ∪ S_in(h, t) ⊆ alpha's mask (the endpoints act as their own
/// virtual hops with empty SPLS).
///
/// Build runs forward/backward *label-BFSs* from vertices in decreasing-
/// degree order; states (vertex, label set) expand in nondecreasing
/// |label set| (so recorded SPLSs are minimal) and a state is pruned when
/// the index built so far already answers the corresponding query — the
/// non-redundancy guarantee of P2H+. Works on general graphs.
///
/// Dynamics (the DLCR row): `InsertEdge` resumes label-BFSs through the
/// new edge for every hop that reaches its source, keeping the index
/// correct (possibly with redundant entries — DLCR's redundancy
/// elimination bookkeeping is out of scope; see DESIGN.md). Deletions are
/// handled by `RemoveEdgeAndRebuild`.
class PrunedLabeledTwoHop : public LcrIndex {
 public:
  /// `num_threads` parallelizes the build with the same rank-batched
  /// speculate/commit/redo scheme as `PrunedTwoHop` (speculative sweeps
  /// consult a worker-local shadow of their own rank's entries, since the
  /// serial pruning oracle sees in-sweep insertions). The labeling is
  /// bit-identical to a serial build for any thread count
  /// (docs/PARALLELISM.md). 0 = `DefaultThreads()`, 1 = serial.
  explicit PrunedLabeledTwoHop(size_t num_threads = 0,
                               TwoHopStorageOptions storage = {})
      : num_threads_(num_threads), storage_(storage) {}

  void Build(const LabeledDigraph& graph) override;
  bool Query(VertexId s, VertexId t, LabelSet allowed) const override;
  size_t IndexSizeBytes() const override;
  bool IsComplete() const override { return true; }
  std::string Name() const override { return "p2h"; }
  QueryProbe Probe() const override { return probe_; }
  void ResetProbe() const override { probe_.Reset(); }

  /// Serializes the labeling (envelope + ranks + (hop, SPLS) entries) to
  /// a binary stream; the state already reflects any incremental
  /// insertions. Envelope format name: "p2h".
  bool SupportsSerialization() const override { return true; }
  bool Save(std::ostream& out) const override;

  /// Restores a labeling saved by `Save`. A loaded index answers queries
  /// without the original graph; call `Build` (or keep the graph around)
  /// before using `InsertEdge`/`RemoveEdgeAndRebuild` again. Returns a
  /// typed error on malformed input, leaving the index unspecified.
  LoadResult Load(std::istream& in) override;

  /// Incremental insertion of the labeled edge s -l-> t.
  void InsertEdge(VertexId s, VertexId t, Label label);

  /// Deletion via rebuild over the current edge set minus (s, t, label).
  void RemoveEdgeAndRebuild(VertexId s, VertexId t, Label label);

  /// Total number of (hop, SPLS) entries across all vertices.
  size_t TotalEntries() const;

  /// True when the sealed entries live in block-compressed pools.
  bool CompressedStorage() const { return compressed_; }
  /// True when a `budget_mb` bound was requested but even the coarsest
  /// storage tier exceeds it (or a rank group forced the flat fallback).
  bool BudgetExceeded() const { return budget_exceeded_; }
  const TwoHopStorageOptions& Storage() const { return storage_; }

 private:
  struct Entry {
    uint32_t rank;
    LabelSet mask;
  };

  void BuildLabels(const LabeledDigraph& graph, size_t threads);
  void SealLabels();
  // Per-vertex entries as one rank-sorted vector: the sealed pool slice
  // merged with the delta overlay (Lin only; Lout has no delta).
  std::vector<Entry> InEntries(VertexId v) const;
  std::vector<Entry> OutEntries(VertexId v) const;
  // Build-time pruning oracle over the (unsealed) nested entry vectors.
  bool LabelQuery(VertexId s, VertexId t, LabelSet allowed) const;
  // The sealed query hot path (pool slices + delta overlay) every entry
  // point routes through.
  bool AnswerQuery(VertexId s, VertexId t, LabelSet allowed) const;
  // True iff `entries` holds (rank, mask ⊆ allowed).
  static bool HasCoveredEntry(std::span<const Entry> entries, uint32_t rank,
                              LabelSet allowed);
  // Rank-grouped two-pointer / galloping sweep over two sorted entry
  // ranges (docs/QUERY_ENGINE.md).
  static bool IntersectEntryRanges(std::span<const Entry> out,
                                   std::span<const Entry> in,
                                   LabelSet allowed);
  // Compressed-pool analogues: a rank group is never split across blocks,
  // so the covered test decodes exactly one block and the intersection is
  // a skip-table block-merge calling `IntersectEntryRanges` on decoded
  // block pairs (docs/SNAPSHOTS.md).
  static bool CoveredInPool(const CompressedEntryPool<Entry>& pool,
                            VertexId v, uint32_t rank, LabelSet allowed);
  static bool IntersectPools(const CompressedEntryPool<Entry>& out_pool,
                             VertexId s,
                             const CompressedEntryPool<Entry>& in_pool,
                             VertexId t, LabelSet allowed);
  static bool IntersectPoolWithSpan(const CompressedEntryPool<Entry>& pool,
                                    VertexId v, std::span<const Entry> other,
                                    LabelSet allowed);
  // Publishes the index.bytes / compression gauges after a (re)seal.
  void PublishStorageGauges(size_t flat_equivalent_bytes) const;
  template <typename ArcFn>
  void ArcsOut(VertexId v, ArcFn&& fn) const;
  template <typename ArcFn>
  void ArcsIn(VertexId v, ArcFn&& fn) const;

  size_t num_threads_ = 0;
  const LabeledDigraph* graph_ = nullptr;
  LabeledDigraph owned_graph_;  // used after RemoveEdgeAndRebuild
  std::vector<uint32_t> rank_;
  std::vector<VertexId> by_rank_;
  // Build-side accumulators (sorted by (rank, insertion)); SealLabels()
  // moves them into the flat pools and leaves them empty.
  std::vector<std::vector<Entry>> lin_;
  std::vector<std::vector<Entry>> lout_;
  // Sealed query-path layout: exactly one representation is live after
  // SealLabels — the flat pools, or (when `storage_` asks for compression
  // or the budget forces it) the block-compressed pools.
  FlatLabelPool<Entry> lin_pool_;
  FlatLabelPool<Entry> lout_pool_;
  CompressedEntryPool<Entry> lin_cpool_;
  CompressedEntryPool<Entry> lout_cpool_;
  TwoHopStorageOptions storage_;
  bool compressed_ = false;
  bool budget_exceeded_ = false;
  // Unsealed delta overlay: Lin entries added by InsertEdge after sealing
  // (rank-ordered). Empty until the first insert.
  std::vector<std::vector<Entry>> delta_lin_;
  bool has_delta_ = false;
  std::vector<std::vector<LabeledDigraph::Arc>> extra_out_, extra_in_;
  mutable QueryProbe probe_;
};

}  // namespace reach

#endif  // REACH_LCR_PRUNED_LABELED_TWO_HOP_H_
