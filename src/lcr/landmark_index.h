#ifndef REACH_LCR_LANDMARK_INDEX_H_
#define REACH_LCR_LANDMARK_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/search_workspace.h"
#include "lcr/label_set.h"
#include "lcr/lcr_index.h"

namespace reach {

/// The landmark index of Valstar, Fletcher & Yoshida [44] (paper §4.1.2):
/// a *partial* GTC-based index for alternation queries.
///
/// The k highest-degree vertices become landmarks; for each landmark the
/// full single-source GTC (minimal SPLSs to every reachable vertex) is
/// materialized. Qr(s, t, alpha) runs a constrained BFS from s that is
/// accelerated in both directions whenever a landmark ℓ is hit:
///  * if ℓ's GTC contains t with an SPLS ⊆ alpha, answer true immediately;
///  * otherwise no path through ℓ can satisfy alpha, so ℓ is pruned from
///    the search (the paper's pruning rule).
/// In addition, every non-landmark vertex stores up to `budget` minimal
/// (landmark, SPLS) shortcuts — the paper's second improvement — which can
/// settle queries positively before the BFS starts.
class LandmarkIndex : public LcrIndex {
 public:
  explicit LandmarkIndex(size_t num_landmarks = 16, size_t budget = 2)
      : num_landmarks_(num_landmarks), budget_(budget) {}

  void Build(const LabeledDigraph& graph) override;
  bool Query(VertexId s, VertexId t, LabelSet allowed) const override;
  size_t IndexSizeBytes() const override;
  bool IsComplete() const override { return false; }
  std::string Name() const override {
    return "landmark(k=" + std::to_string(num_landmarks_) + ")";
  }
  QueryProbe Probe() const override { return ws_.probe(); }
  void ResetProbe() const override { ws_.probe().Reset(); }

  /// True iff v was selected as a landmark.
  bool IsLandmark(VertexId v) const {
    return landmark_id_[v] != kNoLandmark;
  }

 private:
  struct RowEntry {
    VertexId target;
    LabelSet mask;
  };
  struct Shortcut {
    uint32_t landmark;  // index into rows
    LabelSet mask;      // SPLS from the vertex to that landmark
  };

  static constexpr uint32_t kNoLandmark = UINT32_MAX;

  // True iff landmark row `lm` contains t with an SPLS ⊆ allowed.
  bool RowQuery(uint32_t lm, VertexId t, LabelSet allowed) const;

  size_t num_landmarks_;
  size_t budget_;
  const LabeledDigraph* graph_ = nullptr;
  std::vector<uint32_t> landmark_id_;  // vertex -> landmark index or none
  // Landmark rows in CSR form, sorted by target within a row.
  std::vector<size_t> row_offsets_;
  std::vector<RowEntry> row_entries_;
  // Per-vertex shortcuts (<= budget_ each).
  std::vector<std::vector<Shortcut>> shortcuts_;
  mutable SearchWorkspace ws_;
};

}  // namespace reach

#endif  // REACH_LCR_LANDMARK_INDEX_H_
