#include "lcr/lcr_bfs.h"

#include "lcr/label_set.h"

namespace reach {

bool LcrBfsReachability(const LabeledDigraph& graph, VertexId s, VertexId t,
                        LabelSet allowed, SearchWorkspace& ws,
                        size_t* visited) {
  size_t count = 1;
  bool found = (s == t);
  if (!found) {
    ws.Prepare(graph.NumVertices());
    ws.MarkForward(s);
    auto& queue = ws.queue();
    queue.push_back(s);
    for (size_t head = 0; head < queue.size() && !found; ++head) {
      for (const LabeledDigraph::Arc& arc : graph.OutArcs(queue[head])) {
        if ((LabelBit(arc.label) & allowed) == 0) continue;
        if (arc.vertex == t) {
          found = true;
          break;
        }
        if (ws.MarkForward(arc.vertex)) {
          queue.push_back(arc.vertex);
          ++count;
        }
      }
    }
  }
  if (visited != nullptr) *visited = count;
  return found;
}

bool LcrOnlineBfs::Query(VertexId s, VertexId t, LabelSet allowed) const {
  return LcrBfsReachability(*graph_, s, t, allowed, ws_);
}

}  // namespace reach
