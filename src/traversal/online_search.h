#ifndef REACH_TRAVERSAL_ONLINE_SEARCH_H_
#define REACH_TRAVERSAL_ONLINE_SEARCH_H_

#include <cstddef>
#include <string>

#include "core/reachability_index.h"
#include "core/search_workspace.h"
#include "graph/digraph.h"

namespace reach {

/// The index-free baselines of paper §2.3: plain reachability by online
/// traversal. Each function optionally reports the number of vertices
/// visited (the "visits a large portion of the graph" cost the survey
/// motivates indexes with).

/// Breadth-first search from `s`; true iff `t` is reached.
bool BfsReachability(const Digraph& graph, VertexId s, VertexId t,
                     SearchWorkspace& ws, size_t* visited = nullptr);

/// Iterative depth-first search from `s`; true iff `t` is reached.
bool DfsReachability(const Digraph& graph, VertexId s, VertexId t,
                     SearchWorkspace& ws, size_t* visited = nullptr);

/// Bidirectional BFS: alternately expands the smaller of the forward
/// frontier from `s` and the backward frontier from `t` until they meet.
bool BiBfsReachability(const Digraph& graph, VertexId s, VertexId t,
                       SearchWorkspace& ws, size_t* visited = nullptr);

/// Which traversal an `OnlineSearch` baseline uses.
enum class TraversalKind { kBfs, kDfs, kBiBfs };

/// Adapter exposing the online-traversal baselines through the
/// `ReachabilityIndex` interface so benches and tests can treat them
/// uniformly (index size 0; "partial" by definition — it is all traversal).
class OnlineSearch : public ReachabilityIndex {
 public:
  explicit OnlineSearch(TraversalKind kind) : kind_(kind) {}

  void Build(const Digraph& graph) override;
  bool Query(VertexId s, VertexId t) const override;
  size_t IndexSizeBytes() const override { return 0; }
  bool IsComplete() const override { return false; }
  std::string Name() const override;
  QueryProbe Probe() const override { return ws_.probe(); }
  void ResetProbe() const override { ws_.probe().Reset(); }

  /// Total vertices visited across all queries since Build (benchmarking).
  size_t total_visited() const { return total_visited_; }

 private:
  TraversalKind kind_;
  const Digraph* graph_ = nullptr;
  mutable SearchWorkspace ws_;
  mutable size_t total_visited_ = 0;
};

}  // namespace reach

#endif  // REACH_TRAVERSAL_ONLINE_SEARCH_H_
