#include "traversal/online_search.h"

namespace reach {

bool BfsReachability(const Digraph& graph, VertexId s, VertexId t,
                     SearchWorkspace& ws, size_t* visited) {
  size_t count = 1;
  bool found = (s == t);
  if (!found) {
    ws.Prepare(graph.NumVertices());
    ws.MarkForward(s);
    auto& queue = ws.queue();
    queue.push_back(s);
    for (size_t head = 0; head < queue.size() && !found; ++head) {
      for (VertexId w : graph.OutNeighbors(queue[head])) {
        REACH_PROBE_INC(ws.probe(), edges_scanned);
        if (w == t) {
          found = true;
          break;
        }
        if (ws.MarkForward(w)) {
          queue.push_back(w);
          ++count;
        }
      }
    }
  }
  REACH_PROBE_ADD(ws.probe(), vertices_visited, count);
  if (visited != nullptr) *visited = count;
  return found;
}

bool DfsReachability(const Digraph& graph, VertexId s, VertexId t,
                     SearchWorkspace& ws, size_t* visited) {
  size_t count = 1;
  bool found = (s == t);
  if (!found) {
    ws.Prepare(graph.NumVertices());
    ws.MarkForward(s);
    auto& stack = ws.queue();
    stack.push_back(s);
    while (!stack.empty() && !found) {
      const VertexId v = stack.back();
      stack.pop_back();
      for (VertexId w : graph.OutNeighbors(v)) {
        REACH_PROBE_INC(ws.probe(), edges_scanned);
        if (w == t) {
          found = true;
          break;
        }
        if (ws.MarkForward(w)) {
          stack.push_back(w);
          ++count;
        }
      }
    }
  }
  REACH_PROBE_ADD(ws.probe(), vertices_visited, count);
  if (visited != nullptr) *visited = count;
  return found;
}

bool BiBfsReachability(const Digraph& graph, VertexId s, VertexId t,
                       SearchWorkspace& ws, size_t* visited) {
  if (s == t) {
    if (visited != nullptr) *visited = 1;
    return true;
  }
  ws.Prepare(graph.NumVertices());
  auto& fwd = ws.queue();
  auto& bwd = ws.backward_queue();
  ws.MarkForward(s);
  ws.MarkBackward(t);
  fwd.push_back(s);
  bwd.push_back(t);
  size_t fwd_head = 0, bwd_head = 0;
  size_t count = 2;
  size_t fwd_work = graph.OutDegree(s);  // pending arcs in each frontier
  size_t bwd_work = graph.InDegree(t);
  bool found = false;

  // Expand the cheaper unexplored frontier (by pending arc count) one full
  // level at a time.
  while (!found && fwd_head < fwd.size() && bwd_head < bwd.size()) {
    const bool expand_forward = fwd_work <= bwd_work;
    if (expand_forward) {
      const size_t level_end = fwd.size();
      fwd_work = 0;
      for (; fwd_head < level_end && !found; ++fwd_head) {
        for (VertexId w : graph.OutNeighbors(fwd[fwd_head])) {
          REACH_PROBE_INC(ws.probe(), edges_scanned);
          if (ws.IsBackwardMarked(w)) {
            found = true;
            break;
          }
          if (ws.MarkForward(w)) {
            fwd.push_back(w);
            fwd_work += graph.OutDegree(w);
            ++count;
          }
        }
      }
    } else {
      const size_t level_end = bwd.size();
      bwd_work = 0;
      for (; bwd_head < level_end && !found; ++bwd_head) {
        for (VertexId w : graph.InNeighbors(bwd[bwd_head])) {
          REACH_PROBE_INC(ws.probe(), edges_scanned);
          if (ws.IsForwardMarked(w)) {
            found = true;
            break;
          }
          if (ws.MarkBackward(w)) {
            bwd.push_back(w);
            bwd_work += graph.InDegree(w);
            ++count;
          }
        }
      }
    }
  }
  REACH_PROBE_ADD(ws.probe(), vertices_visited, count);
  if (visited != nullptr) *visited = count;
  return found;
}

void OnlineSearch::Build(const Digraph& graph) {
  BuildStatsScope build(&build_stats_);
  graph_ = &graph;
  total_visited_ = 0;
  ws_.probe().Reset();
}

bool OnlineSearch::Query(VertexId s, VertexId t) const {
  REACH_PROBE_INC(ws_.probe(), queries);
  REACH_PROBE_INC(ws_.probe(), fallbacks);  // index-free: always traversal
  size_t visited = 0;
  bool result = false;
  switch (kind_) {
    case TraversalKind::kBfs:
      result = BfsReachability(*graph_, s, t, ws_, &visited);
      break;
    case TraversalKind::kDfs:
      result = DfsReachability(*graph_, s, t, ws_, &visited);
      break;
    case TraversalKind::kBiBfs:
      result = BiBfsReachability(*graph_, s, t, ws_, &visited);
      break;
  }
  if (result) REACH_PROBE_INC(ws_.probe(), positives);
  total_visited_ += visited;
  return result;
}

std::string OnlineSearch::Name() const {
  switch (kind_) {
    case TraversalKind::kBfs:
      return "bfs";
    case TraversalKind::kDfs:
      return "dfs";
    case TraversalKind::kBiBfs:
      return "bibfs";
  }
  return "online";
}

}  // namespace reach
