#ifndef REACH_TRAVERSAL_TRANSITIVE_CLOSURE_H_
#define REACH_TRAVERSAL_TRANSITIVE_CLOSURE_H_

#include <string>
#include <vector>

#include "core/dynamic_bitset.h"
#include "core/reachability_index.h"
#include "core/workspace_pool.h"
#include "graph/digraph.h"

namespace reach {

/// The naive complete index of paper §2.3: the full transitive closure,
/// one reachability bitset row per vertex. O(1) queries, O(V^2 / 8) bytes
/// and O(V * E / 64) build — the survey's point is exactly that this is
/// infeasible at scale, which `bench_table1_plain` demonstrates; here it
/// doubles as the ground-truth oracle for every test in the repository.
///
/// Works on general graphs: rows are computed on the SCC condensation in
/// reverse topological order (one bitset-union per DAG edge), then shared
/// by all members of an SCC.
class TransitiveClosure : public ReachabilityIndex {
 public:
  /// `num_threads` parallelizes the closure sweep over dependency levels
  /// of the condensation DAG (bitset unions commute, so the rows are
  /// identical to a serial build). 0 = `DefaultThreads()`, 1 = serial.
  explicit TransitiveClosure(size_t num_threads = 0)
      : num_threads_(num_threads) {}

  void Build(const Digraph& graph) override;
  bool Query(VertexId s, VertexId t) const override;
  size_t IndexSizeBytes() const override;
  bool IsComplete() const override { return true; }
  std::string Name() const override { return "tc"; }
  QueryProbe Probe() const override { return probes_.Aggregate(); }
  void ResetProbe() const override { probes_.Reset(); }

  size_t PrepareConcurrentQueries(size_t slots) const override {
    if (slots == 0) slots = 1;
    probes_.EnsureSlots(slots);
    return slots;
  }
  bool QueryInSlot(VertexId s, VertexId t, size_t slot) const override;

  /// The set of vertices reachable from `v` (including `v`), as ids.
  std::vector<VertexId> ReachableSet(VertexId v) const;

  /// Number of reachable pairs (s, t), counting (v, v), i.e. |TC|.
  size_t NumReachablePairs() const;

 private:
  // rows_[c] = closure row of condensation vertex c, over condensation ids.
  std::vector<DynamicBitset> rows_;
  std::vector<VertexId> component_of_;
  std::vector<size_t> component_size_;
  size_t num_vertices_ = 0;
  size_t num_threads_ = 0;
  mutable ProbePool probes_;
};

}  // namespace reach

#endif  // REACH_TRAVERSAL_TRANSITIVE_CLOSURE_H_
