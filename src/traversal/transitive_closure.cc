#include "traversal/transitive_closure.h"

#include <numeric>

#include "graph/condensation.h"
#include "par/dependency_levels.h"
#include "par/parallel_for.h"
#include "par/thread_pool.h"

namespace reach {

void TransitiveClosure::Build(const Digraph& graph) {
  BuildStatsScope build(&build_stats_);
  probes_.Reset();
  num_vertices_ = graph.NumVertices();
  Condensation cond;
  {
    BuildPhaseTimer timer(&build_stats_.phases, "condense");
    cond = Condense(graph);
  }
  component_of_ = cond.scc.component_of;
  const VertexId num_components = cond.scc.num_components;

  component_size_.assign(num_components, 0);
  for (VertexId v = 0; v < num_vertices_; ++v) {
    ++component_size_[component_of_[v]];
  }

  const size_t threads = ResolveThreads(num_threads_);
  BuildPhaseTimer timer(&build_stats_.phases, "closure_sweep");
  rows_.assign(num_components, DynamicBitset(num_components));
  // Tarjan assigns component ids in reverse topological order, so
  // iterating c = 0, 1, ... visits successors before predecessors;
  // each row is its own bit plus the union of its successors' rows.
  auto compute_row = [this, &cond](VertexId c) {
    rows_[c].Set(c);
    for (VertexId succ : cond.dag.OutNeighbors(c)) {
      rows_[c].UnionWith(rows_[succ]);
    }
  };
  if (threads <= 1) {
    for (VertexId c = 0; c < num_components; ++c) compute_row(c);
  } else {
    // All rows of a dependency level only read rows of lower levels, so
    // each level is an independent ParallelFor; bitset unions commute, so
    // the result is bit-identical to the serial sweep.
    std::vector<VertexId> order(num_components);
    std::iota(order.begin(), order.end(), VertexId{0});
    const DependencyLevels levels = ComputeDependencyLevels(
        num_components, order, [&cond](VertexId c, auto&& fn) {
          for (VertexId succ : cond.dag.OutNeighbors(c)) fn(succ);
        });
    for (const std::vector<VertexId>& bucket : levels.buckets) {
      ParallelFor(
          0, bucket.size(),
          [&bucket, &compute_row](size_t i) { compute_row(bucket[i]); },
          threads);
    }
  }
  build_stats_.size_bytes = IndexSizeBytes();
  build_stats_.num_entries = rows_.size();
}

bool TransitiveClosure::Query(VertexId s, VertexId t) const {
  return QueryInSlot(s, t, 0);
}

bool TransitiveClosure::QueryInSlot(VertexId s, VertexId t,
                                    size_t slot) const {
  [[maybe_unused]] QueryProbe& probe = probes_.Slot(slot);
  REACH_PROBE_INC(probe, queries);
  REACH_PROBE_INC(probe, labels_scanned);  // one closure-row bit test
  const bool reachable = rows_[component_of_[s]].Test(component_of_[t]);
  if (reachable) REACH_PROBE_INC(probe, positives);
  return reachable;
}

size_t TransitiveClosure::IndexSizeBytes() const {
  size_t bytes = component_of_.size() * sizeof(VertexId);
  for (const DynamicBitset& row : rows_) bytes += row.MemoryBytes();
  return bytes;
}

std::vector<VertexId> TransitiveClosure::ReachableSet(VertexId v) const {
  const DynamicBitset& row = rows_[component_of_[v]];
  std::vector<VertexId> out;
  for (VertexId w = 0; w < num_vertices_; ++w) {
    if (row.Test(component_of_[w])) out.push_back(w);
  }
  return out;
}

size_t TransitiveClosure::NumReachablePairs() const {
  size_t pairs = 0;
  // Sum over component pairs (c, d) with d reachable from c of
  // |c| * |d| original-vertex pairs.
  for (VertexId c = 0; c < rows_.size(); ++c) {
    size_t reachable_vertices = 0;
    for (VertexId d = 0; d < rows_.size(); ++d) {
      if (rows_[c].Test(d)) reachable_vertices += component_size_[d];
    }
    pairs += component_size_[c] * reachable_vertices;
  }
  return pairs;
}

}  // namespace reach
