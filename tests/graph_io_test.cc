#include "graph/graph_io.h"

#include <sstream>

#include <gtest/gtest.h>

#include "graph/figure1.h"
#include "graph/generators.h"

namespace reach {
namespace {

TEST(GraphIoTest, ReadSimpleEdgeList) {
  std::istringstream in("0 1\n1 2\n2 0\n");
  auto g = ReadEdgeList(in);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->NumVertices(), 3u);
  EXPECT_EQ(g->NumEdges(), 3u);
  EXPECT_TRUE(g->HasEdge(2, 0));
}

TEST(GraphIoTest, SkipsCommentsAndBlankLines) {
  std::istringstream in(
      "# SNAP-style comment\n% matrix-market comment\n\n0 1\n\n1 2\n");
  auto g = ReadEdgeList(in);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->NumEdges(), 2u);
}

TEST(GraphIoTest, RejectsMalformedLine) {
  std::istringstream in("0 1\nbogus\n");
  std::string error;
  auto g = ReadEdgeList(in, &error);
  EXPECT_FALSE(g.has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
}

TEST(GraphIoTest, SparseIdsKeptVerbatim) {
  std::istringstream in("0 7\n");
  auto g = ReadEdgeList(in);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->NumVertices(), 8u);
}

TEST(GraphIoTest, PlainRoundTrip) {
  Digraph g = RandomDigraph(40, 160, 12);
  std::stringstream buffer;
  WriteEdgeList(g, buffer);
  auto back = ReadEdgeList(buffer);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->Edges(), g.Edges());
}

TEST(GraphIoTest, LabeledRoundTrip) {
  LabeledDigraph g = figure1::LabeledGraph();
  std::stringstream buffer;
  WriteLabeledEdgeList(g, buffer);
  auto back = ReadLabeledEdgeList(buffer);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->Edges(), g.Edges());
  EXPECT_EQ(back->NumLabels(), g.NumLabels());
}

TEST(GraphIoTest, LabeledRejectsLabelOutOfRange) {
  std::istringstream in("0 1 99\n");
  std::string error;
  auto g = ReadLabeledEdgeList(in, &error);
  EXPECT_FALSE(g.has_value());
  EXPECT_NE(error.find("label"), std::string::npos) << error;
}

TEST(GraphIoTest, MissingFileReportsError) {
  std::string error;
  auto g = ReadEdgeListFile("/nonexistent/path/graph.txt", &error);
  EXPECT_FALSE(g.has_value());
  EXPECT_FALSE(error.empty());
}

TEST(GraphIoTest, EmptyInputGivesEmptyGraph) {
  std::istringstream in("# only a comment\n");
  auto g = ReadEdgeList(in);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->NumVertices(), 0u);
}

}  // namespace
}  // namespace reach
