// Concurrent serving-engine suite (src/serve/). The headline test is the
// acceptance differential: eight reader threads and one writer sustain
// queries across several background snapshot swaps while every answer is
// checked against an independent BFS oracle via an insertion-log
// watermark protocol. The whole binary runs under TSan in CI.

#include "serve/reach_service.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "graph/figure1.h"
#include "graph/generators.h"
#include "graph/rng.h"
#include "obs/metrics_exporter.h"
#include "obs/metrics_registry.h"
#include "obs/query_probe.h"

namespace reach {
namespace {

// Independent oracle: plain BFS over the base graph plus the first
// `watermark` entries of the insertion log. Deliberately shares no code
// with the service's own traversal paths.
bool OracleReachable(const Digraph& base, const std::vector<Edge>& log,
                     size_t watermark, VertexId s, VertexId t) {
  std::vector<std::vector<VertexId>> extra(base.NumVertices());
  for (size_t i = 0; i < watermark; ++i) {
    extra[log[i].source].push_back(log[i].target);
  }
  std::vector<uint8_t> seen(base.NumVertices(), 0);
  std::vector<VertexId> queue = {s};
  seen[s] = 1;
  for (size_t head = 0; head < queue.size(); ++head) {
    const VertexId v = queue[head];
    if (v == t) return true;
    for (VertexId n : base.OutNeighbors(v)) {
      if (!seen[n]) {
        seen[n] = 1;
        queue.push_back(n);
      }
    }
    for (VertexId n : extra[v]) {
      if (!seen[n]) {
        seen[n] = 1;
        queue.push_back(n);
      }
    }
  }
  return false;
}

// The acceptance differential. Watermark protocol: the writer publishes
// each edge into `log` *before* calling InsertEdge and bumps `inserted`
// *after* it returns. A reader samples `inserted` before its query and
// `published` after it:
//   * a positive answer must be justified by base + log[0, published_after)
//     — everything the service could possibly have seen;
//   * an exact negative must hold over base + log[0, inserted_before)
//     — everything definitely accepted before the query began.
TEST(ServeDifferentialTest, ConcurrentReadersAndWriterAcrossSwaps) {
  constexpr size_t kReaders = 8;
  constexpr size_t kInserts = 120;
  constexpr size_t kQueriesPerReader = 300;
  constexpr VertexId kN = 160;
  const Digraph base = RandomDigraph(kN, 320, 0xACE);

  ServiceOptions opts;
  opts.slots = kReaders;
  opts.drain_threshold = 24;  // several background swaps over 120 inserts
  ReachService service(base, opts);
  service.Start();

  std::vector<Edge> log(kInserts);
  std::atomic<size_t> published{0};  // slots written to `log`
  std::atomic<size_t> inserted{0};   // InsertEdge calls that returned
  std::atomic<uint64_t> wrong_positive{0};
  std::atomic<uint64_t> wrong_negative{0};
  std::atomic<uint64_t> inexact{0};
  std::atomic<uint64_t> rejected_inserts{0};

  std::thread writer([&] {
    Xoshiro256ss rng(0x5EED);
    for (size_t i = 0; i < kInserts; ++i) {
      const Edge e{static_cast<VertexId>(rng.NextBounded(kN)),
                   static_cast<VertexId>(rng.NextBounded(kN))};
      log[i] = e;
      published.store(i + 1, std::memory_order_release);
      if (!service.InsertEdge(e.source, e.target)) ++rejected_inserts;
      inserted.store(i + 1, std::memory_order_release);
      if ((i + 1) % 40 == 0) service.Flush();  // extra swaps mid-stream
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Xoshiro256ss rng(0x1000 + r);
      for (size_t q = 0; q < kQueriesPerReader; ++q) {
        const auto s = static_cast<VertexId>(rng.NextBounded(kN));
        const auto t = static_cast<VertexId>(rng.NextBounded(kN));
        const size_t w_before = inserted.load(std::memory_order_acquire);
        const ServeAnswer ans = service.Query(s, t);
        const size_t w_after = published.load(std::memory_order_acquire);
        if (!ans.exact) ++inexact;
        if (ans.reachable) {
          if (!OracleReachable(base, log, w_after, s, t)) ++wrong_positive;
        } else if (ans.exact) {
          if (OracleReachable(base, log, w_before, s, t)) ++wrong_negative;
        }
      }
    });
  }
  writer.join();
  for (auto& th : readers) th.join();
  service.Flush();

  EXPECT_EQ(wrong_positive.load(), 0u);
  EXPECT_EQ(wrong_negative.load(), 0u);
  EXPECT_EQ(rejected_inserts.load(), 0u);
  // The visit budget comfortably covers a 160-vertex graph, so even
  // degraded answers are exact here.
  EXPECT_EQ(inexact.load(), 0u);
  EXPECT_GE(service.SnapshotVersion(), 4u);  // startup build + >= 3 swaps
  EXPECT_EQ(service.PendingEdgeCount(), 0u);

  const ServeStats& st = service.stats();
  EXPECT_EQ(st.queries.load(), kReaders * kQueriesPerReader);
  EXPECT_EQ(st.inserts.load(), kInserts);
  EXPECT_GE(st.rebuilds.load(), 4u);
  EXPECT_EQ(
      st.index_answers.load() + st.delta_answers.load() +
          st.fallback_answers.load() + st.negcache_hits.load(),
      st.queries.load());
  // Every insert (and every swap) must have bumped the negcache epoch.
  EXPECT_GE(st.negcache_invalidations.load(), st.inserts.load());
  service.Stop();

  // The serve.* admission/latency/fallback counters must be visible in
  // the "reach.metrics.v1" export when metrics are compiled in.
  if (kMetricsCompiled) {
    MetricsExporter exporter;
    exporter.SetRegistrySnapshot(MetricsRegistry::Global().Snapshot());
    const std::string json = exporter.ToJson();
    EXPECT_NE(json.find("reach.metrics.v1"), std::string::npos);
    for (const char* key :
         {"serve.queries", "serve.index_answers", "serve.fallback_bfs",
          "serve.slot_waits", "serve.rebuilds", "serve.query_ns"}) {
      EXPECT_NE(json.find(key), std::string::npos) << key;
    }
  }
}

TEST(ServeFallbackTest, AnswersExactlyBeforeStartViaBoundedBfs) {
  const Digraph g = figure1::PlainGraph();
  ReachService service(g);  // never started: no index is ever built
  for (VertexId s = 0; s < g.NumVertices(); ++s) {
    for (VertexId t = 0; t < g.NumVertices(); ++t) {
      const ServeAnswer ans = service.Query(s, t);
      EXPECT_EQ(ans.reachable, OracleReachable(g, {}, 0, s, t))
          << s << "->" << t;
      EXPECT_TRUE(ans.exact);
      EXPECT_EQ(ans.source, AnswerSource::kFallbackBfs);
      EXPECT_EQ(ans.snapshot_version, 0u);
    }
  }
  EXPECT_EQ(service.stats().fallback_answers.load(),
            service.stats().queries.load());
}

TEST(ServeDeltaTest, PendingEdgesAnsweredExactlyBeforeDrain) {
  const Digraph g = Chain(10);  // 0 -> 1 -> ... -> 9
  ServiceOptions opts;
  opts.drain_threshold = 1000;  // no automatic drain
  ReachService service(g, opts);
  service.Start();
  service.Flush();  // wait for the index over the base chain
  ASSERT_GE(service.SnapshotVersion(), 1u);

  // A pure index hit is untouched by pending edges.
  ServeAnswer hit = service.Query(0, 9);
  EXPECT_TRUE(hit.reachable);
  EXPECT_EQ(hit.source, AnswerSource::kIndex);

  // 9 -> 0 closes the cycle: 5 now reaches 2 through one pending edge.
  ASSERT_TRUE(service.InsertEdge(9, 0));
  EXPECT_EQ(service.PendingEdgeCount(), 1u);
  ServeAnswer via_delta = service.Query(5, 2);
  EXPECT_TRUE(via_delta.reachable);
  EXPECT_TRUE(via_delta.exact);
  EXPECT_EQ(via_delta.source, AnswerSource::kDelta);

  // After the drain the same answer comes straight from the new index.
  service.Flush();
  EXPECT_EQ(service.PendingEdgeCount(), 0u);
  ServeAnswer via_index = service.Query(5, 2);
  EXPECT_TRUE(via_index.reachable);
  EXPECT_EQ(via_index.source, AnswerSource::kIndex);
  EXPECT_GT(via_index.snapshot_version, via_delta.snapshot_version);
  service.Stop();
}

TEST(ServeDeltaTest, ChainedPendingEdgesAndExactNegatives) {
  const Digraph g = Chain(10);
  ServiceOptions opts;
  opts.drain_threshold = 1000;
  ReachService service(g, opts);
  service.Start();
  service.Flush();

  // 8 reaches 1 only through the *two* pending edges 9->4 then 4->1.
  ASSERT_TRUE(service.InsertEdge(9, 4));
  ASSERT_TRUE(service.InsertEdge(4, 1));
  ServeAnswer two_hop = service.Query(8, 1);
  EXPECT_TRUE(two_hop.reachable);
  EXPECT_TRUE(two_hop.exact);
  EXPECT_EQ(two_hop.source, AnswerSource::kDelta);

  // 7 -> 0 stays unreachable even with both pending edges (nothing ever
  // enters 0); the closure walks both and proves the exact negative.
  ServeAnswer negative = service.Query(7, 0);
  EXPECT_FALSE(negative.reachable);
  EXPECT_TRUE(negative.exact);
  EXPECT_EQ(negative.source, AnswerSource::kDelta);
  service.Stop();
}

TEST(ServeDeltaTest, PendingDeleteAnsweredExactlyAndSurvivesSwap) {
  const Digraph g = Chain(10);
  ServiceOptions opts;
  opts.drain_threshold = 1000;  // no automatic drain
  ReachService service(g, opts);
  service.Start();
  service.Flush();
  ASSERT_TRUE(service.Query(0, 9).reachable);

  // Cut the chain in the middle. The snapshot index still says "yes" for
  // 0->9, so the service must re-verify against the live union graph and
  // return the exact negative.
  ASSERT_TRUE(service.DeleteEdge(4, 5));
  EXPECT_EQ(service.PendingEdgeCount(), 1u);
  const ServeAnswer cut = service.Query(0, 9);
  EXPECT_FALSE(cut.reachable);
  EXPECT_TRUE(cut.exact);
  EXPECT_GE(service.stats().deletes.load(), 1u);
  EXPECT_GE(service.stats().delete_verifies.load(), 1u);
  // Pairs on either side of the cut are unaffected.
  EXPECT_TRUE(service.Query(0, 4).reachable);
  EXPECT_TRUE(service.Query(5, 9).reachable);

  // The tombstone must be materialized by the snapshot swap: after the
  // drain the new index itself knows the arc is gone.
  service.Flush();
  EXPECT_EQ(service.PendingEdgeCount(), 0u);
  const ServeAnswer after = service.Query(0, 9);
  EXPECT_FALSE(after.reachable);
  EXPECT_TRUE(after.exact);
  EXPECT_EQ(after.source, AnswerSource::kIndex);

  // Re-inserting resurrects the path end-to-end.
  ASSERT_TRUE(service.InsertEdge(4, 5));
  EXPECT_TRUE(service.Query(0, 9).reachable);
  service.Flush();
  EXPECT_TRUE(service.Query(0, 9).reachable);
  service.Stop();
}

TEST(ServeUpdateTest, MixedBatchIsAtomicAndValidateFirst) {
  const Digraph g = Chain(6);
  ServiceOptions opts;
  opts.drain_threshold = 1000;
  ReachService service(g, opts);
  service.Start();
  service.Flush();

  // One batch: cut 2->3 but bridge around it with 1->4.
  const UpdateResult result = service.ApplyUpdate(
      {EdgeUpdate::Delete(2, 3), EdgeUpdate::Insert(1, 4)});
  EXPECT_EQ(result.status, UpdateStatus::kApplied);
  EXPECT_EQ(result.applied, 2u);
  EXPECT_EQ(service.PendingEdgeCount(), 2u);
  const ServeAnswer detour = service.Query(0, 5);
  EXPECT_TRUE(detour.reachable);
  EXPECT_TRUE(detour.exact);
  const ServeAnswer severed = service.Query(2, 3);
  EXPECT_FALSE(severed.reachable);
  EXPECT_TRUE(severed.exact);

  // An out-of-range element rejects the whole batch before any of it is
  // buffered: the in-range delete ahead of it leaves no trace.
  const UpdateResult bad = service.ApplyUpdate(
      {EdgeUpdate::Delete(0, 1), EdgeUpdate::Insert(0, 99)});
  EXPECT_EQ(bad.status, UpdateStatus::kRejected);
  EXPECT_FALSE(bad.ok());
  EXPECT_FALSE(bad.reason.empty());
  EXPECT_EQ(service.PendingEdgeCount(), 2u);
  EXPECT_GE(service.stats().update_rejected.load(), 1u);
  EXPECT_TRUE(service.Query(0, 1).reachable);

  // Both effects of the good batch survive materialization.
  service.Flush();
  EXPECT_TRUE(service.Query(0, 5).reachable);
  EXPECT_FALSE(service.Query(2, 3).reachable);
  service.Stop();
}

TEST(ServeUpdateTest, DeleteOnlyBatchKeepsNegativeCacheWarm) {
  // Deletions only shrink reachability, so a cached exact negative stays
  // sound — delete-only batches must not bump the negcache epoch, while
  // insert-carrying batches must.
  const Digraph g = Chain(6);
  ServiceOptions opts;
  opts.drain_threshold = 1000;
  opts.negcache_capacity = 256;
  ReachService service(g, opts);
  service.Start();
  service.Flush();

  ASSERT_FALSE(service.Query(5, 0).reachable);  // miss: now cached
  const uint64_t invalidations_before =
      service.stats().negcache_invalidations.load();
  ASSERT_TRUE(service.DeleteEdge(2, 3));
  EXPECT_EQ(service.stats().negcache_invalidations.load(),
            invalidations_before);
  const ServeAnswer warm = service.Query(5, 0);
  EXPECT_FALSE(warm.reachable);
  EXPECT_EQ(warm.source, AnswerSource::kNegCache);

  // An insert-carrying batch invalidates, and the repeat query misses.
  ASSERT_TRUE(service.InsertEdge(0, 2));
  EXPECT_GT(service.stats().negcache_invalidations.load(),
            invalidations_before);
  const ServeAnswer cold = service.Query(5, 0);
  EXPECT_FALSE(cold.reachable);
  EXPECT_NE(cold.source, AnswerSource::kNegCache);
  service.Stop();
}

TEST(ServeDeadlineTest, ExpiredDeadlineDegradesToBoundedBfs) {
  const Digraph g = Chain(64);
  ServiceOptions opts;
  opts.drain_threshold = 1000;
  opts.deadline = std::chrono::nanoseconds(1);  // expires instantly
  ReachService service(g, opts);
  service.Start();
  service.Flush();

  // Redundant forward edges whose tails 32 reaches, so the delta closure
  // has real work queued when the (already expired) deadline is checked.
  for (VertexId v = 40; v < 48; ++v) ASSERT_TRUE(service.InsertEdge(v, v + 1));
  const ServeAnswer ans = service.Query(32, 0);  // backward: unreachable
  EXPECT_FALSE(ans.reachable);
  EXPECT_TRUE(ans.exact);  // budget covers 64 vertices
  EXPECT_EQ(ans.source, AnswerSource::kFallbackBfs);
  EXPECT_GE(service.stats().deadline_degraded.load(), 1u);
  service.Stop();
}

TEST(ServeLifecycleTest, StopRejectsInsertsButKeepsServing) {
  const Digraph g = Chain(6);
  ReachService service(g);
  service.Start();
  service.Flush();
  service.Stop();
  service.Stop();  // idempotent
  EXPECT_FALSE(service.InsertEdge(0, 5));
  const ServeAnswer ans = service.Query(0, 5);
  EXPECT_TRUE(ans.reachable);  // still served from the last snapshot
  EXPECT_TRUE(ans.exact);
}

TEST(ServeLifecycleTest, OutOfRangeEndpointsAreRejected) {
  const Digraph g = Chain(4);
  ReachService service(g);
  service.Start();
  EXPECT_FALSE(service.InsertEdge(0, 99));
  EXPECT_FALSE(service.InsertEdge(99, 0));
  const ServeAnswer ans = service.Query(0, 99);
  EXPECT_FALSE(ans.reachable);
  EXPECT_TRUE(ans.exact);
  service.Stop();
}

TEST(ServeLifecycleTest, UnknownSpecFallsBackToPll) {
  const Digraph g = figure1::PlainGraph();
  ServiceOptions opts;
  opts.spec = "definitely-not-an-index";
  ReachService service(g, opts);
  service.Start();
  service.Flush();
  ASSERT_GE(service.SnapshotVersion(), 1u);
  for (VertexId s = 0; s < g.NumVertices(); ++s) {
    for (VertexId t = 0; t < g.NumVertices(); ++t) {
      EXPECT_EQ(service.Query(s, t).reachable, OracleReachable(g, {}, 0, s, t))
          << s << "->" << t;
    }
  }
  service.Stop();
}

TEST(BoundedUnionBfsTest, RespectsVisitBudget) {
  const Digraph g = Chain(100);
  const BoundedBfsOutcome starved = BoundedUnionBfs(g, {}, 0, 99, 10);
  EXPECT_FALSE(starved.reachable);
  EXPECT_FALSE(starved.complete);
  const BoundedBfsOutcome full = BoundedUnionBfs(g, {}, 0, 99, 200);
  EXPECT_TRUE(full.reachable);
  EXPECT_TRUE(full.complete);
}

TEST(BoundedUnionBfsTest, TraversesExtraEdgesAndHandlesTrivialPairs) {
  const Digraph g = Digraph::FromEdges(3, {});
  EXPECT_TRUE(
      BoundedUnionBfs(g, {EdgeUpdate::Insert(0, 1), EdgeUpdate::Insert(1, 2)},
                      0, 2, 100)
          .reachable);
  EXPECT_FALSE(
      BoundedUnionBfs(g, {EdgeUpdate::Insert(0, 1)}, 0, 2, 100).reachable);
  const BoundedBfsOutcome self = BoundedUnionBfs(g, {}, 1, 1, 100);
  EXPECT_TRUE(self.reachable);
  EXPECT_TRUE(self.complete);
}

TEST(BoundedUnionBfsTest, MasksDeletedBaseArcsWithLastOpWins) {
  const Digraph g = Chain(4);  // 0 -> 1 -> 2 -> 3
  EXPECT_FALSE(
      BoundedUnionBfs(g, {EdgeUpdate::Delete(1, 2)}, 0, 3, 100).reachable);
  // A pending insert detours around the cut.
  EXPECT_TRUE(BoundedUnionBfs(
                  g, {EdgeUpdate::Delete(1, 2), EdgeUpdate::Insert(0, 2)}, 0,
                  3, 100)
                  .reachable);
  // Last op per edge wins: delete then re-insert restores the arc...
  EXPECT_TRUE(BoundedUnionBfs(
                  g, {EdgeUpdate::Delete(1, 2), EdgeUpdate::Insert(1, 2)}, 0,
                  3, 100)
                  .reachable);
  // ...and insert then delete leaves it absent.
  EXPECT_FALSE(BoundedUnionBfs(
                   g, {EdgeUpdate::Insert(3, 0), EdgeUpdate::Delete(3, 0)}, 3,
                   0, 100)
                   .reachable);
}

// ---------------------------------------------------------------------
// Negative-result cache (serve/neg_cache.h).

TEST(NegCacheTest, StoresLooksUpAndInvalidatesByEpoch) {
  NegativeResultCache cache(4, 256);
  EXPECT_EQ(cache.Epoch(), 0u);
  EXPECT_FALSE(cache.Lookup(1, 2, 0));
  EXPECT_EQ(cache.Insert(1, 2, 0), NegativeResultCache::InsertOutcome::kStored);
  EXPECT_EQ(cache.Insert(1, 2, 0),
            NegativeResultCache::InsertOutcome::kPresent);
  EXPECT_TRUE(cache.Lookup(1, 2, 0));
  EXPECT_FALSE(cache.Lookup(2, 1, 0));  // direction matters

  cache.Invalidate();
  EXPECT_EQ(cache.Epoch(), 1u);
  // The old entry must not satisfy a reader at the new epoch...
  EXPECT_FALSE(cache.Lookup(1, 2, 1));
  // ...and a verification from before the invalidation must not land.
  EXPECT_EQ(cache.Insert(3, 4, 0), NegativeResultCache::InsertOutcome::kStale);
  EXPECT_FALSE(cache.Lookup(3, 4, 0));
  EXPECT_FALSE(cache.Lookup(3, 4, 1));
  // A fresh verification at the new epoch works (and lazily clears).
  EXPECT_EQ(cache.Insert(1, 2, 1), NegativeResultCache::InsertOutcome::kStored);
  EXPECT_TRUE(cache.Lookup(1, 2, 1));
  // An entry verified at a *newer* epoch stays valid for older readers:
  // the edge set only grows, so unreachable-later implies
  // unreachable-earlier.
  EXPECT_TRUE(cache.Lookup(1, 2, 0));
}

TEST(NegCacheTest, BoundedEvictionInsteadOfGrowth) {
  NegativeResultCache cache(1, 8);  // one shard, eight slots
  size_t evictions = 0;
  for (VertexId t = 0; t < 4096; ++t) {
    evictions +=
        cache.Insert(7, t, 0) == NegativeResultCache::InsertOutcome::kEvicted;
  }
  EXPECT_GT(evictions, 0u);  // far more pairs than slots: must evict
  // The cache stayed bounded and the surviving entries remain queryable.
  size_t survivors = 0;
  for (VertexId t = 0; t < 4096; ++t) survivors += cache.Lookup(7, t, 0);
  EXPECT_GT(survivors, 0u);
  EXPECT_LE(survivors, cache.NumShards() * cache.EntriesPerShard());
}

// Negative-result-cache differential under concurrency: an
// unreachable-biased repeated-query mix across live inserts and
// background snapshot swaps. Every exact negative — cached or not — is
// checked against the insertion-log watermark oracle, so a stale cached
// negative surfaces as `wrong_negative`. The binary runs under TSan in
// CI, which additionally vets the lock-free reader protocol.
TEST(NegCacheTest, InvalidationAcrossSwapsNeverServesStaleAnswers) {
  constexpr size_t kReaders = 4;
  constexpr size_t kInserts = 60;
  constexpr size_t kQueriesPerReader = 800;
  constexpr VertexId kN = 48;
  // Sparse: most pairs are unreachable, the regime the cache serves.
  const Digraph base = RandomDigraph(kN, 60, 0xBEEF);

  ServiceOptions opts;
  opts.slots = kReaders;
  opts.drain_threshold = 12;  // several swaps over 60 inserts
  ReachService service(base, opts);
  service.Start();

  std::vector<Edge> log(kInserts);
  std::atomic<size_t> published{0};
  std::atomic<size_t> inserted{0};
  std::atomic<uint64_t> wrong_positive{0};
  std::atomic<uint64_t> wrong_negative{0};

  std::thread writer([&] {
    Xoshiro256ss rng(0xCAFE);
    for (size_t i = 0; i < kInserts; ++i) {
      const Edge e{static_cast<VertexId>(rng.NextBounded(kN)),
                   static_cast<VertexId>(rng.NextBounded(kN))};
      log[i] = e;
      published.store(i + 1, std::memory_order_release);
      ASSERT_TRUE(service.InsertEdge(e.source, e.target));
      inserted.store(i + 1, std::memory_order_release);
      if ((i + 1) % 20 == 0) service.Flush();
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  });

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Xoshiro256ss rng(0x2000 + r);
      for (size_t q = 0; q < kQueriesPerReader; ++q) {
        // Small pair space: repeats (and therefore cache hits) are common
        // within each invalidation epoch.
        const auto s = static_cast<VertexId>(rng.NextBounded(kN));
        const auto t = static_cast<VertexId>(rng.NextBounded(kN));
        const size_t w_before = inserted.load(std::memory_order_acquire);
        const ServeAnswer ans = service.Query(s, t);
        const size_t w_after = published.load(std::memory_order_acquire);
        if (ans.reachable) {
          if (!OracleReachable(base, log, w_after, s, t)) ++wrong_positive;
        } else if (ans.exact) {
          if (OracleReachable(base, log, w_before, s, t)) ++wrong_negative;
        }
      }
    });
  }
  writer.join();
  for (auto& th : readers) th.join();
  service.Flush();

  EXPECT_EQ(wrong_positive.load(), 0u);
  EXPECT_EQ(wrong_negative.load(), 0u);
  EXPECT_GE(service.stats().negcache_invalidations.load(), kInserts);

  // Deterministic hit check once the edge set is quiescent: a verified
  // negative must short-circuit its repeat from the cache.
  std::optional<std::pair<VertexId, VertexId>> unreachable_pair;
  for (VertexId s = 0; s < kN && !unreachable_pair; ++s) {
    for (VertexId t = 0; t < kN && !unreachable_pair; ++t) {
      if (s != t && !OracleReachable(base, log, kInserts, s, t)) {
        unreachable_pair = {s, t};
      }
    }
  }
  ASSERT_TRUE(unreachable_pair.has_value());  // sparse graph: must exist
  const auto [us, ut] = *unreachable_pair;
  const ServeAnswer first = service.Query(us, ut);
  EXPECT_FALSE(first.reachable);
  EXPECT_TRUE(first.exact);
  const ServeAnswer repeat = service.Query(us, ut);
  EXPECT_FALSE(repeat.reachable);
  EXPECT_TRUE(repeat.exact);
  EXPECT_EQ(repeat.source, AnswerSource::kNegCache);
  EXPECT_GT(service.stats().negcache_hits.load(), 0u);
  service.Stop();

  if (kMetricsCompiled) {
    MetricsExporter exporter;
    exporter.SetRegistrySnapshot(MetricsRegistry::Global().Snapshot());
    const std::string json = exporter.ToJson();
    for (const char* key :
         {"serve.negcache.hit", "serve.negcache.miss", "serve.negcache.evict",
          "serve.negcache.invalidate"}) {
      EXPECT_NE(json.find(key), std::string::npos) << key;
    }
  }
}

// Mutual exclusion of slot leases: with a single granted slot the pool
// must serialize critical sections; the unsynchronized counter would be
// torn (and flagged by TSan) otherwise.
TEST(SlotPoolTest, SingleSlotSerializesCriticalSections) {
  SlotPool pool;
  pool.Reset(1);
  uint64_t unguarded = 0;
  constexpr size_t kThreads = 4;
  constexpr size_t kIters = 2000;
  std::vector<std::thread> threads;
  for (size_t i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      for (size_t k = 0; k < kIters; ++k) {
        const size_t slot = pool.Acquire();
        ASSERT_EQ(slot, 0u);
        ++unguarded;
        pool.Release(slot);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(unguarded, kThreads * kIters);
}

TEST(SlotPoolTest, DistinctSlotsUntilExhausted) {
  SlotPool pool;
  pool.Reset(3);
  EXPECT_EQ(pool.size(), 3u);
  bool waited = false;
  const size_t a = pool.Acquire(&waited);
  const size_t b = pool.Acquire(&waited);
  const size_t c = pool.Acquire(&waited);
  EXPECT_FALSE(waited);
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  EXPECT_NE(a, c);
  pool.Release(b);
  EXPECT_EQ(pool.Acquire(&waited), b);  // the only free slot comes back
  EXPECT_FALSE(waited);
  pool.Release(a);
  pool.Release(b);
  pool.Release(c);
}

}  // namespace
}  // namespace reach
