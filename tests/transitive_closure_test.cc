#include "traversal/transitive_closure.h"

#include <gtest/gtest.h>

#include "graph/figure1.h"
#include "graph/generators.h"
#include "traversal/online_search.h"

namespace reach {
namespace {

TEST(TransitiveClosureTest, ChainClosure) {
  TransitiveClosure tc;
  tc.Build(Chain(5));
  for (VertexId s = 0; s < 5; ++s) {
    for (VertexId t = 0; t < 5; ++t) {
      EXPECT_EQ(tc.Query(s, t), s <= t) << s << "->" << t;
    }
  }
}

TEST(TransitiveClosureTest, CycleIsFullyConnected) {
  TransitiveClosure tc;
  tc.Build(Cycle(6));
  for (VertexId s = 0; s < 6; ++s) {
    for (VertexId t = 0; t < 6; ++t) EXPECT_TRUE(tc.Query(s, t));
  }
}

TEST(TransitiveClosureTest, ReflexiveEvenWithoutEdges) {
  TransitiveClosure tc;
  tc.Build(Digraph::FromEdges(3, {}));
  for (VertexId v = 0; v < 3; ++v) EXPECT_TRUE(tc.Query(v, v));
  EXPECT_FALSE(tc.Query(0, 1));
}

TEST(TransitiveClosureTest, Figure1Queries) {
  TransitiveClosure tc;
  Digraph g = figure1::PlainGraph();
  tc.Build(g);
  using namespace figure1;
  EXPECT_TRUE(tc.Query(kA, kG));   // §2.1 worked example
  EXPECT_FALSE(tc.Query(kG, kA));
  EXPECT_TRUE(tc.Query(kL, kM));
  EXPECT_TRUE(tc.Query(kB, kM));   // B <-> M SCC
  EXPECT_TRUE(tc.Query(kM, kB));
  EXPECT_FALSE(tc.Query(kK, kG));  // K only reaches M/B
}

TEST(TransitiveClosureTest, ReachableSetOnChain) {
  TransitiveClosure tc;
  tc.Build(Chain(4));
  EXPECT_EQ(tc.ReachableSet(2), (std::vector<VertexId>{2, 3}));
  EXPECT_EQ(tc.ReachableSet(0), (std::vector<VertexId>{0, 1, 2, 3}));
}

TEST(TransitiveClosureTest, NumReachablePairsOnChain) {
  TransitiveClosure tc;
  tc.Build(Chain(4));
  // 4 + 3 + 2 + 1 pairs including (v, v).
  EXPECT_EQ(tc.NumReachablePairs(), 10u);
}

TEST(TransitiveClosureTest, NumReachablePairsOnCycle) {
  TransitiveClosure tc;
  tc.Build(Cycle(5));
  EXPECT_EQ(tc.NumReachablePairs(), 25u);
}

TEST(TransitiveClosureTest, ReportsCompleteAndNonzeroSize) {
  TransitiveClosure tc;
  tc.Build(Chain(10));
  EXPECT_TRUE(tc.IsComplete());
  EXPECT_GT(tc.IndexSizeBytes(), 0u);
  EXPECT_EQ(tc.Name(), "tc");
}

class TcPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TcPropertyTest, MatchesBfsOnRandomDigraphs) {
  const uint64_t seed = GetParam();
  Digraph g = RandomDigraph(64, 160 + (seed % 100), seed);
  TransitiveClosure tc;
  tc.Build(g);
  SearchWorkspace ws;
  for (VertexId s = 0; s < g.NumVertices(); s += 2) {
    for (VertexId t = 0; t < g.NumVertices(); t += 2) {
      EXPECT_EQ(tc.Query(s, t), BfsReachability(g, s, t, ws))
          << "s=" << s << " t=" << t << " seed=" << seed;
    }
  }
}

TEST_P(TcPropertyTest, MatchesBfsOnRandomDags) {
  const uint64_t seed = GetParam();
  Digraph g = RandomDag(64, 200, seed);
  TransitiveClosure tc;
  tc.Build(g);
  SearchWorkspace ws;
  for (VertexId s = 0; s < g.NumVertices(); s += 3) {
    for (VertexId t = 0; t < g.NumVertices(); t += 3) {
      EXPECT_EQ(tc.Query(s, t), BfsReachability(g, s, t, ws));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TcPropertyTest,
                         ::testing::Values(41, 42, 43, 44, 45, 46, 47, 48));

}  // namespace
}  // namespace reach
