// Failpoint framework suite (core/failpoint.h). The registry is always
// compiled — only the REACH_FAILPOINT() macro sites are gated behind the
// REACH_FAILPOINTS build flag — so every test here drives Evaluate()
// directly and runs in every build configuration.

#include "core/failpoint.h"

#include <chrono>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace reach {
namespace {

// Each test works on its own site names and disarms them on exit, so the
// process-global registry never leaks configuration across tests.
class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { FailpointRegistry::Global().DisarmAll(); }
};

TEST_F(FailpointTest, UnarmedSiteNeverFires) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  for (int i = 0; i < 100; ++i) {
    const FailpointHit hit = reg.Evaluate("fp_test.unarmed");
    EXPECT_FALSE(hit);
    EXPECT_EQ(hit.action, FailpointAction::kNone);
  }
  EXPECT_EQ(reg.HitCount("fp_test.unarmed"), 0u);
}

TEST_F(FailpointTest, ArmErrorAlwaysFires) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  std::string error;
  ASSERT_TRUE(reg.Arm("fp_test.err", "error", &error)) << error;
  for (int i = 0; i < 10; ++i) {
    const FailpointHit hit = reg.Evaluate("fp_test.err");
    EXPECT_TRUE(hit);
    EXPECT_EQ(hit.action, FailpointAction::kError);
  }
  EXPECT_EQ(reg.HitCount("fp_test.err"), 10u);
  reg.Disarm("fp_test.err");
  EXPECT_FALSE(reg.Evaluate("fp_test.err"));
}

TEST_F(FailpointTest, ConfigureArmsSeveralSitesAtOnce) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  std::string error;
  ASSERT_TRUE(reg.Configure(
      "fp_test.a=error;fp_test.b=partial(bytes=4096),fp_test.c=delay(ms=0)",
      &error))
      << error;
  EXPECT_EQ(reg.Evaluate("fp_test.a").action, FailpointAction::kError);
  const FailpointHit partial = reg.Evaluate("fp_test.b");
  EXPECT_EQ(partial.action, FailpointAction::kPartial);
  EXPECT_EQ(partial.arg, 4096u);
  EXPECT_EQ(reg.Evaluate("fp_test.c").action, FailpointAction::kDelay);
  const std::vector<std::string> armed = reg.ArmedSites();
  EXPECT_EQ(armed.size(), 3u);
}

TEST_F(FailpointTest, InvalidSpecsRejectedWithoutArmingAnything) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  std::string error;
  for (const char* bad :
       {"", "explode", "error(p=2.5)", "error(p=nope)", "partial(bytes=)",
        "error(unknown=1)", "error(p=0.5"}) {
    EXPECT_FALSE(reg.Arm("fp_test.x", bad, &error)) << "'" << bad << "'";
    EXPECT_FALSE(reg.Evaluate("fp_test.x"));
  }
  for (const char* bad : {"fp_test.x", "fp_test.x=", "=error"}) {
    EXPECT_FALSE(reg.Configure(bad, &error)) << "'" << bad << "'";
  }
  // Configure is all-or-nothing: one bad entry arms none of them.
  EXPECT_FALSE(reg.Configure("fp_test.good=error;fp_test.bad=nope", &error));
  EXPECT_FALSE(reg.Evaluate("fp_test.good"));
  EXPECT_TRUE(reg.ArmedSites().empty());
}

TEST_F(FailpointTest, ProbabilityIsDeterministicPerSeed) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  std::string error;
  const auto sample = [&]() {
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(static_cast<bool>(reg.Evaluate("fp_test.p")));
    }
    return fired;
  };
  ASSERT_TRUE(reg.Arm("fp_test.p", "error(p=0.5,seed=7)", &error)) << error;
  const std::vector<bool> first = sample();
  ASSERT_TRUE(reg.Arm("fp_test.p", "error(p=0.5,seed=7)", &error)) << error;
  const std::vector<bool> second = sample();
  EXPECT_EQ(first, second);  // same seed, same firing pattern
  size_t fires = 0;
  for (const bool f : first) fires += f;
  EXPECT_GT(fires, 0u);   // p=0.5 over 64 draws: both outcomes occur
  EXPECT_LT(fires, 64u);
}

TEST_F(FailpointTest, TimesBudgetAndSkipPrefix) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  std::string error;
  ASSERT_TRUE(reg.Arm("fp_test.times", "error(times=3)", &error)) << error;
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    fired += static_cast<bool>(reg.Evaluate("fp_test.times"));
  }
  EXPECT_EQ(fired, 3);  // budget exhausted, then silent

  ASSERT_TRUE(reg.Arm("fp_test.skip", "error(skip=2,times=1)", &error))
      << error;
  EXPECT_FALSE(reg.Evaluate("fp_test.skip"));  // skipped
  EXPECT_FALSE(reg.Evaluate("fp_test.skip"));  // skipped
  EXPECT_TRUE(reg.Evaluate("fp_test.skip"));   // third evaluation fires
  EXPECT_FALSE(reg.Evaluate("fp_test.skip"));  // times budget spent
}

TEST_F(FailpointTest, DelayActuallySleeps) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  std::string error;
  ASSERT_TRUE(reg.Arm("fp_test.delay", "delay(ms=20)", &error)) << error;
  const auto start = std::chrono::steady_clock::now();
  const FailpointHit hit = reg.Evaluate("fp_test.delay");
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(hit.action, FailpointAction::kDelay);
  EXPECT_EQ(hit.arg, 20u);
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            20);
}

TEST_F(FailpointTest, OffSpecDisarms) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  std::string error;
  ASSERT_TRUE(reg.Arm("fp_test.off", "error", &error)) << error;
  EXPECT_TRUE(reg.Evaluate("fp_test.off"));
  ASSERT_TRUE(reg.Arm("fp_test.off", "off", &error)) << error;
  EXPECT_FALSE(reg.Evaluate("fp_test.off"));
}

TEST_F(FailpointTest, MacroIsCompiledOutUnlessFlagged) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  std::string error;
  ASSERT_TRUE(reg.Arm("fp_test.macro", "error", &error)) << error;
  const FailpointHit hit = REACH_FAILPOINT("fp_test.macro");
  if (kFailpointsCompiled) {
    EXPECT_EQ(hit.action, FailpointAction::kError);
    EXPECT_EQ(reg.HitCount("fp_test.macro"), 1u);
  } else {
    // The macro is a constant no-op: the armed site is never consulted.
    EXPECT_EQ(hit.action, FailpointAction::kNone);
    EXPECT_EQ(reg.HitCount("fp_test.macro"), 0u);
  }
}

TEST_F(FailpointTest, FailpointErrorIsARuntimeError) {
  const FailpointError err("boom");
  const std::runtime_error& base = err;
  EXPECT_STREQ(base.what(), "boom");
}

}  // namespace
}  // namespace reach
