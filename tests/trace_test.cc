// Span-recorder suite (src/obs/trace.h): interning, nesting depths, ring
// wraparound, the Chrome-trace JSON exporter, and the serve-path
// slow-query log. The concurrency test at the bottom traces readers and
// a writer across background snapshot swaps while a scraper exports —
// the whole binary runs under TSan in CI.

#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "graph/digraph.h"
#include "graph/generators.h"
#include "graph/rng.h"
#include "par/thread_pool.h"
#include "serve/reach_service.h"

namespace reach {
namespace {

// A structural JSON well-formedness check: balanced braces/brackets
// outside strings, valid escape usage inside them. Not a full parser, but
// enough to catch the classic exporter bugs (trailing commas aside).
void ExpectBalancedJson(const std::string& json) {
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : json) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      } else {
        // Raw control characters inside a string are invalid JSON — the
        // exporter must escape them.
        EXPECT_GE(static_cast<unsigned char>(c), 0x20u)
            << "unescaped control character in JSON string";
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
        ++braces;
        break;
      case '}':
        --braces;
        EXPECT_GE(braces, 0);
        break;
      case '[':
        ++brackets;
        break;
      case ']':
        --brackets;
        EXPECT_GE(brackets, 0);
        break;
      default:
        break;
    }
  }
  EXPECT_FALSE(in_string) << "unterminated string";
  EXPECT_EQ(braces, 0) << "unbalanced braces";
  EXPECT_EQ(brackets, 0) << "unbalanced brackets";
}

TEST(TraceRecorderTest, InterningIsStableAndDense) {
  TraceRecorder recorder;
  const uint32_t a = recorder.Intern("alpha");
  const uint32_t b = recorder.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, recorder.Intern("alpha"));
  EXPECT_EQ(b, recorder.Intern("beta"));
  const std::vector<std::string> names = recorder.Names();
  ASSERT_GT(names.size(), std::max(a, b));
  EXPECT_EQ(names[a], "alpha");
  EXPECT_EQ(names[b], "beta");
}

TEST(TraceRecorderTest, DisabledRecorderRecordsNothing) {
  TraceRecorder recorder;
  ASSERT_FALSE(recorder.enabled());
  recorder.Record(recorder.Intern("dropped"), 0, 10);
  for (const auto& thread : recorder.Snapshot()) {
    EXPECT_TRUE(thread.events.empty());
    EXPECT_EQ(thread.dropped, 0u);
  }
}

TEST(TraceRecorderTest, RecordsEventsWhenEnabled) {
  TraceRecorder recorder;
  recorder.set_enabled(true);
  recorder.SetCurrentThreadName("tester");
  const uint32_t id = recorder.Intern("evt");
  recorder.Record(id, 100, 200);
  recorder.RecordInstant(recorder.Intern("mark"));
  const auto threads = recorder.Snapshot();
  ASSERT_EQ(threads.size(), 1u);
  EXPECT_EQ(threads[0].name, "tester");
  ASSERT_EQ(threads[0].events.size(), 2u);
  EXPECT_EQ(threads[0].events[0].name_id, id);
  EXPECT_EQ(threads[0].events[0].start_ns, 100u);
  EXPECT_EQ(threads[0].events[0].end_ns, 200u);
  EXPECT_EQ(threads[0].events[0].kind, TraceEventKind::kSpan);
  EXPECT_EQ(threads[0].events[1].kind, TraceEventKind::kInstant);
}

TEST(TraceRecorderTest, RingWrapsKeepingNewestAndCountingDropped) {
  TraceRecorder recorder;
  recorder.set_thread_capacity(8);
  recorder.set_enabled(true);
  const uint32_t id = recorder.Intern("e");
  for (uint64_t i = 0; i < 20; ++i) recorder.Record(id, i, i + 1);
  const auto threads = recorder.Snapshot();
  ASSERT_EQ(threads.size(), 1u);
  const auto& trace = threads[0];
  ASSERT_EQ(trace.events.size(), 8u);
  EXPECT_EQ(trace.dropped, 12u);
  // The survivors are the newest 8, in chronological order.
  for (size_t i = 0; i < trace.events.size(); ++i) {
    EXPECT_EQ(trace.events[i].start_ns, 12 + i);
  }
}

TEST(TraceRecorderTest, ResetClearsRingsButKeepsNames) {
  TraceRecorder recorder;
  recorder.set_enabled(true);
  const uint32_t id = recorder.Intern("kept");
  recorder.Record(id, 1, 2);
  recorder.Reset();
  for (const auto& thread : recorder.Snapshot()) {
    EXPECT_TRUE(thread.events.empty());
    EXPECT_EQ(thread.dropped, 0u);
  }
  EXPECT_EQ(recorder.Intern("kept"), id);
}

TEST(TraceSpanTest, NestedSpansRecordDepthsAndContainment) {
  if (!kMetricsCompiled) {
    GTEST_SKIP() << "TraceSpan is a no-op shell under REACH_METRICS=OFF";
  }
  TraceRecorder recorder;
  recorder.set_enabled(true);
  const uint32_t outer_id = recorder.Intern("outer");
  const uint32_t inner_id = recorder.Intern("inner");
  {
    TraceSpan outer(outer_id, recorder);
    {
      TraceSpan inner(inner_id, recorder);
    }
  }
  const auto threads = recorder.Snapshot();
  ASSERT_EQ(threads.size(), 1u);
  // Spans complete at scope exit, so the inner span lands first.
  ASSERT_EQ(threads[0].events.size(), 2u);
  const TraceEvent& inner = threads[0].events[0];
  const TraceEvent& outer = threads[0].events[1];
  EXPECT_EQ(inner.name_id, inner_id);
  EXPECT_EQ(outer.name_id, outer_id);
  EXPECT_EQ(outer.depth, 0u);
  EXPECT_EQ(inner.depth, 1u);
  EXPECT_LE(outer.start_ns, inner.start_ns);
  EXPECT_GE(outer.end_ns, inner.end_ns);
}

TEST(TraceSpanTest, SpanOnDisabledRecorderIsInert) {
  TraceRecorder recorder;
  const uint32_t id = recorder.Intern("quiet");
  {
    TraceSpan span(id, recorder);
  }
  // Enabling afterwards must not resurrect the inert span's ring slot.
  recorder.set_enabled(true);
  for (const auto& thread : recorder.Snapshot()) {
    EXPECT_TRUE(thread.events.empty());
  }
}

TEST(TraceExporterTest, EmitsWellFormedChromeJson) {
  TraceRecorder recorder;
  recorder.set_enabled(true);
  recorder.SetCurrentThreadName("exporter \"test\" \\ thread");
  recorder.Record(recorder.Intern("span \"quoted\"\nname"), 1000, 2500);
  recorder.RecordInstant(recorder.Intern("marker"));
  const std::string json = TraceExporter(recorder).ToChromeJson();
  ExpectBalancedJson(json);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"M\""), std::string::npos);
  EXPECT_NE(json.find("reach.trace.v1"), std::string::npos);
  // 1000ns span start = 1.000us timestamp.
  EXPECT_NE(json.find("\"ts\": 1.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 1.500"), std::string::npos);
}

TEST(TraceExporterTest, ReportsDroppedEvents) {
  TraceRecorder recorder;
  recorder.set_thread_capacity(8);
  recorder.set_enabled(true);
  const uint32_t id = recorder.Intern("e");
  for (uint64_t i = 0; i < 11; ++i) recorder.Record(id, i, i);
  const std::string json = TraceExporter(recorder).ToChromeJson();
  EXPECT_NE(json.find("\"dropped_events\": 3"), std::string::npos);
}

// ---------------------------------------------------------------------
// Slow-query log (ReachService).

Digraph ChainWithTail() {
  // 0 -> 1, 2 and 3 isolated: pending edge 1 -> 2 makes (0, 3) a closure
  // query that can never answer true.
  return Digraph::FromEdges(4, {{0, 1}});
}

TEST(SlowQueryLogTest, DeadlineDegradedQueriesAreAlwaysCaptured) {
  ServiceOptions options;
  options.deadline = std::chrono::nanoseconds(1);
  options.drain_threshold = 100;  // keep the inserted edge pending
  // The test repeats one identical negative query; the negative-result
  // cache would answer repeats in O(1) and skip the degradation under
  // test, so it is disabled here.
  options.negcache_capacity = 0;
  ReachService service(ChainWithTail(), options);
  service.Start();
  service.Flush();  // first indexed snapshot
  ASSERT_TRUE(service.InsertEdge(1, 2));

  // probe(0, 3) misses, pending is non-empty, and probe(0, 1) seeds the
  // closure worklist — so the 1ns deadline expires mid-closure and the
  // query degrades. Every such query must be captured.
  constexpr uint64_t kQueries = 3;
  for (uint64_t i = 0; i < kQueries; ++i) {
    const ServeAnswer answer = service.Query(0, 3);
    EXPECT_FALSE(answer.reachable);
    EXPECT_EQ(answer.source, AnswerSource::kFallbackBfs);
    EXPECT_TRUE(answer.exact);  // tiny graph: the BFS always completes
  }
  EXPECT_EQ(service.stats().deadline_degraded.load(), kQueries);
  EXPECT_EQ(service.stats().slow_captured.load(), kQueries);

  const std::vector<SlowQueryRecord> slow = service.SlowQueries();
  ASSERT_EQ(slow.size(), static_cast<size_t>(kQueries));
  for (const SlowQueryRecord& rec : slow) {
    EXPECT_EQ(rec.s, 0u);
    EXPECT_EQ(rec.t, 3u);
    EXPECT_TRUE(rec.deadline_degraded);
    EXPECT_EQ(rec.source, AnswerSource::kFallbackBfs);
    EXPECT_GT(rec.total_ns, 0u);
    EXPECT_GT(rec.stage_ns[static_cast<size_t>(ServeStage::kDeltaClosure)],
              0u);
    EXPECT_GT(rec.stage_ns[static_cast<size_t>(ServeStage::kFallbackBfs)],
              0u);
    // probe(0,3) + probe(0, pending source) at minimum.
    EXPECT_GE(rec.index_probes, 2u);
    EXPECT_EQ(rec.pending_edges, 1u);
    EXPECT_GT(rec.bfs_visits, 0u);
  }
  service.Stop();
}

TEST(SlowQueryLogTest, ThresholdCaptureIsBoundedAndEvictsOldest) {
  ServiceOptions options;
  options.slow_query_threshold = std::chrono::nanoseconds(1);  // everything
  options.slow_log_capacity = 4;
  ReachService service(ScaleFreeDag(64, 2, 7), options);
  service.Start();
  service.Flush();

  constexpr uint64_t kQueries = 10;
  for (VertexId i = 0; i < kQueries; ++i) {
    service.Query(i % 64, (i + 1) % 64);
  }
  EXPECT_EQ(service.stats().slow_captured.load(), kQueries);
  EXPECT_EQ(service.stats().slow_dropped.load(), kQueries - 4);

  const std::vector<SlowQueryRecord> slow = service.SlowQueries();
  ASSERT_EQ(slow.size(), 4u);
  // Oldest-evicted: the survivors are the last four queries, in order.
  for (size_t i = 0; i < slow.size(); ++i) {
    EXPECT_EQ(slow[i].s, (kQueries - 4 + i) % 64);
  }

  service.ClearSlowQueries();
  EXPECT_TRUE(service.SlowQueries().empty());
  EXPECT_EQ(service.stats().slow_captured.load(), kQueries);  // totals kept
  service.Stop();
}

TEST(SlowQueryLogTest, NoCaptureWithoutThresholdOrDeadline) {
  ReachService service(ChainWithTail(), ServiceOptions{});
  service.Start();
  // Pre-index query: degrades to the BFS, but with no deadline and no
  // threshold nothing qualifies for the log.
  service.Query(0, 1);
  service.Flush();
  service.Query(0, 1);
  EXPECT_TRUE(service.SlowQueries().empty());
  EXPECT_EQ(service.stats().slow_captured.load(), 0u);
  service.Stop();
}

// ---------------------------------------------------------------------
// Concurrency (the TSan target): readers, a writer forcing snapshot
// swaps, and a scraper exporting the global recorder, all concurrent.

TEST(TraceConcurrencyTest, TracedServeAcrossSnapshotSwaps) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.set_enabled(true);

  constexpr VertexId kN = 256;
  ServiceOptions options;
  options.drain_threshold = 16;
  options.deadline = std::chrono::milliseconds(5);
  options.slow_query_threshold = std::chrono::microseconds(1);
  options.slow_log_capacity = 32;
  ReachService service(ScaleFreeDag(kN, 2, 11), options);
  service.Start();
  service.Flush();

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&, r] {
      Xoshiro256ss rng(100 + r);
      while (!stop.load(std::memory_order_relaxed)) {
        service.Query(static_cast<VertexId>(rng.NextBounded(kN)),
                      static_cast<VertexId>(rng.NextBounded(kN)));
      }
    });
  }
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string json = TraceExporter(recorder).ToChromeJson();
      EXPECT_FALSE(json.empty());
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  Xoshiro256ss rng(55);
  for (int i = 0; i < 64; ++i) {
    service.InsertEdge(static_cast<VertexId>(rng.NextBounded(kN)),
                       static_cast<VertexId>(rng.NextBounded(kN)));
  }
  service.Flush();  // at least one swap while readers and scraper run
  EXPECT_GE(service.stats().rebuilds.load(), 1u);
  // The readers may not have been scheduled yet on a loaded single-core
  // machine — issue one query directly so the serve spans are certainly
  // on the timeline before the checks below.
  service.Query(0, 1);

  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();
  scraper.join();
  service.Stop();
  recorder.set_enabled(false);

  if (kMetricsCompiled) {
    // The serve stages made it onto the global timeline.
    const std::vector<std::string> names = recorder.Names();
    const auto has = [&names](const char* name) {
      for (const std::string& n : names) {
        if (n == name) return true;
      }
      return false;
    };
    EXPECT_TRUE(has("serve.query"));
    EXPECT_TRUE(has("serve.rebuild"));
    EXPECT_TRUE(has("serve.snapshot_swap"));
  }
}

// A task's completion signal fires from inside the task scope, so a
// scrape triggered by that signal can run before the worker records the
// task's pool.task span. ThreadPool::Quiesce() closes that window — this
// is the contract reach_cli relies on before writing the trace file.
TEST(TraceConcurrencyTest, QuiesceMakesPoolTaskSpansVisible) {
  if (!kMetricsCompiled) {
    GTEST_SKIP() << "pool.task spans require REACH_METRICS=ON";
  }
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Reset();
  recorder.set_enabled(true);

  std::mutex mu;
  std::condition_variable cv;
  bool signaled = false;
  ThreadPool::Global().Submit([&] {
    std::lock_guard<std::mutex> lock(mu);
    signaled = true;
    cv.notify_one();
  });
  {
    // Unblocks while the worker may still be unwinding the task scope.
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return signaled; });
  }
  ThreadPool::Global().Quiesce();
  recorder.set_enabled(false);

  const std::vector<std::string> names = recorder.Names();
  uint32_t pool_task_id = UINT32_MAX;
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == "pool.task") pool_task_id = static_cast<uint32_t>(i);
  }
  ASSERT_NE(pool_task_id, UINT32_MAX);
  size_t spans = 0;
  for (const TraceRecorder::ThreadTrace& t : recorder.Snapshot()) {
    for (const TraceEvent& e : t.events) {
      if (e.name_id == pool_task_id) ++spans;
    }
  }
  EXPECT_GE(spans, 1u);
}

}  // namespace
}  // namespace reach
