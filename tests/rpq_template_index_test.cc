#include "rpq/rpq_template_index.h"

#include <gtest/gtest.h>

#include "graph/figure1.h"
#include "graph/generators.h"
#include "rpq/rpq_evaluator.h"

namespace reach {
namespace {

const std::vector<std::string> kAbc = {"a", "b", "c"};

TEST(RpqTemplateIndexTest, Figure1GeneralConstraints) {
  using namespace figure1;
  const LabeledDigraph g = LabeledGraph();
  RpqTemplateIndex index;
  ASSERT_TRUE(index.Build(g,
                          {"(friendOf|follows)*", "(worksFor.friendOf)*",
                           "worksFor+.friendOf"},
                          g.label_names()));
  EXPECT_EQ(index.NumTemplates(), 3u);
  // §2.2 alternation example.
  EXPECT_FALSE(index.Query(kA, kG, "(friendOf|follows)*"));
  // §4.2 concatenation example.
  EXPECT_TRUE(index.Query(kL, kB, "(worksFor.friendOf)*"));
  // A mixed constraint neither Table 2 class covers.
  EXPECT_TRUE(index.Query(kL, kB, "worksFor+.friendOf"));
  EXPECT_FALSE(index.Query(kA, kB, "worksFor+.friendOf"));
  // Unregistered pattern falls back to evaluation.
  EXPECT_FALSE(index.IsIndexed("friendOf"));
  EXPECT_TRUE(index.Query(kG, kB, "friendOf"));
}

TEST(RpqTemplateIndexTest, RejectsBadPatternsAtomically) {
  const LabeledDigraph g = RandomLabeledDigraph(10, 30, 3, 1);
  RpqTemplateIndex index;
  std::string error;
  EXPECT_FALSE(index.Build(g, {"(a|b)*", "((broken"}, kAbc, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(index.NumTemplates(), 0u);
}

TEST(RpqTemplateIndexTest, EmptyWordSemantics) {
  const LabeledDigraph g = RandomLabeledDigraph(8, 16, 3, 2);
  RpqTemplateIndex index;
  ASSERT_TRUE(index.Build(g, {"(a)*", "a+"}, kAbc));
  // Star accepts the empty word: reflexive.
  EXPECT_TRUE(index.Query(3, 3, "(a)*"));
  // Plus does not: Qr(v, v, a+) needs an actual a-cycle through v.
  bool has_a_self_cycle = index.Query(3, 3, "a+");
  SearchWorkspace ws;
  auto oracle = RpqQuery::Compile("a+", kAbc, 3);
  EXPECT_EQ(has_a_self_cycle, oracle->Evaluate(g, 3, 3));
}

class RpqTemplatePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RpqTemplatePropertyTest, IndexedAnswersMatchEvaluator) {
  const uint64_t seed = GetParam();
  const LabeledDigraph g = RandomLabeledDigraph(16, 70, 3, seed);
  const std::vector<std::string> patterns = {
      "(a|b)*", "(a.b)*", "a*.(b|c).a*", "a+.b+", "(a.b|c)*", "c"};
  RpqTemplateIndex index;
  ASSERT_TRUE(index.Build(g, patterns, kAbc));
  for (const std::string& pattern : patterns) {
    auto oracle = RpqQuery::Compile(pattern, kAbc, 3);
    ASSERT_NE(oracle, nullptr);
    for (VertexId s = 0; s < g.NumVertices(); ++s) {
      for (VertexId t = 0; t < g.NumVertices(); ++t) {
        ASSERT_EQ(index.Query(s, t, pattern), oracle->Evaluate(g, s, t))
            << pattern << " " << s << "->" << t << " seed " << seed;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RpqTemplatePropertyTest,
                         ::testing::Values(261, 262, 263));

}  // namespace
}  // namespace reach
