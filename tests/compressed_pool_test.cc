// Block-compressed label pools (core/label_pool.h): codec round-trips,
// skip-table queries, differentials against the flat layout on the
// generator roster, and the FERRARI-style budget fallback.

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "core/bit_pack.h"
#include "core/label_pool.h"
#include "graph/generators.h"
#include "lcr/pruned_labeled_two_hop.h"
#include "plain/pruned_two_hop.h"
#include "serve/neg_cache.h"

namespace reach {
namespace {

std::vector<std::vector<uint32_t>> RandomRankLists(size_t n, uint32_t universe,
                                                   uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::vector<uint32_t>> lists(n);
  for (auto& list : lists) {
    const size_t len = rng() % 200;
    std::vector<uint32_t> values;
    for (size_t i = 0; i < len; ++i) {
      values.push_back(static_cast<uint32_t>(rng() % universe));
    }
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    list = std::move(values);
  }
  return lists;
}

TEST(BitPackTest, RoundTripsEveryWidth) {
  std::vector<uint8_t> bytes;
  BitWriter writer(&bytes);
  std::vector<std::pair<uint32_t, int>> values;
  std::mt19937_64 rng(7);
  for (int width = 0; width <= 32; ++width) {
    const uint32_t mask = BitWriter::MaskOf(width);
    for (int i = 0; i < 17; ++i) {
      const uint32_t v = static_cast<uint32_t>(rng()) & mask;
      values.emplace_back(v, width);
      writer.Put(v, width);
    }
  }
  writer.Flush();
  BitReader reader(bytes.data(), bytes.data() + bytes.size());
  for (const auto& [v, width] : values) {
    EXPECT_EQ(reader.Get(width), v);
  }
  // Past-the-end reads produce zeros, never UB.
  EXPECT_EQ(reader.Get(32), 0u);
}

TEST(CompressedRankPoolTest, DecodeMatchesInput) {
  const auto lists = RandomRankLists(300, 1 << 20, 11);
  for (size_t block : {8u, 64u, 1024u}) {
    CompressedRankPool pool;
    pool.Seal(lists, block);
    ASSERT_TRUE(pool.Sealed());
    std::vector<uint32_t> decoded;
    for (size_t v = 0; v < lists.size(); ++v) {
      pool.Decode(static_cast<VertexId>(v), &decoded);
      EXPECT_EQ(decoded, lists[v]) << "vertex " << v << " block " << block;
      EXPECT_EQ(pool.ListEntries(static_cast<VertexId>(v)), lists[v].size());
    }
  }
}

TEST(CompressedRankPoolTest, ContainsMatchesBinarySearch) {
  const auto lists = RandomRankLists(120, 5000, 23);
  CompressedRankPool pool;
  pool.Seal(lists, 32);
  std::mt19937_64 rng(29);
  for (size_t v = 0; v < lists.size(); ++v) {
    for (int probe = 0; probe < 64; ++probe) {
      const uint32_t rank = static_cast<uint32_t>(rng() % 5000);
      const bool expect =
          std::binary_search(lists[v].begin(), lists[v].end(), rank);
      EXPECT_EQ(pool.Contains(static_cast<VertexId>(v), rank), expect);
    }
    if (!lists[v].empty()) {
      EXPECT_TRUE(pool.Contains(static_cast<VertexId>(v), lists[v].front()));
      EXPECT_TRUE(pool.Contains(static_cast<VertexId>(v), lists[v].back()));
    }
  }
}

TEST(CompressedRankPoolTest, IntersectMatchesSetIntersection) {
  const auto lists = RandomRankLists(200, 3000, 31);
  CompressedRankPool pool;
  pool.Seal(lists, 16);
  std::mt19937_64 rng(37);
  for (int trial = 0; trial < 2000; ++trial) {
    const VertexId a = static_cast<VertexId>(rng() % lists.size());
    const VertexId b = static_cast<VertexId>(rng() % lists.size());
    std::vector<uint32_t> meet;
    std::set_intersection(lists[a].begin(), lists[a].end(), lists[b].begin(),
                          lists[b].end(), std::back_inserter(meet));
    EXPECT_EQ(CompressedRankPool::Intersect(pool, a, pool, b), !meet.empty())
        << a << " ^ " << b;
  }
}

TEST(CompressedRankPoolTest, IntersectWithSortedMatchesOracle) {
  const auto lists = RandomRankLists(80, 1000, 41);
  CompressedRankPool pool;
  pool.Seal(lists, 16);
  std::mt19937_64 rng(43);
  for (int trial = 0; trial < 500; ++trial) {
    const VertexId v = static_cast<VertexId>(rng() % lists.size());
    std::vector<uint32_t> other;
    for (size_t i = rng() % 20; i > 0; --i) {
      other.push_back(static_cast<uint32_t>(rng() % 1000));
    }
    std::sort(other.begin(), other.end());
    other.erase(std::unique(other.begin(), other.end()), other.end());
    std::vector<uint32_t> meet;
    std::set_intersection(lists[v].begin(), lists[v].end(), other.begin(),
                          other.end(), std::back_inserter(meet));
    EXPECT_EQ(pool.IntersectWithSorted(v, other.data(), other.size()),
              !meet.empty());
  }
}

TEST(CompressedRankPoolTest, SealFromViewRejectsMalformedStructure) {
  const auto lists = RandomRankLists(20, 500, 47);
  CompressedRankPool pool;
  pool.Seal(lists, 16);
  const auto vb = pool.VertexBlocksRaw();
  const auto skip = pool.SkipRaw();
  const auto data = pool.DataRaw();

  CompressedRankPool view;
  ASSERT_TRUE(view.SealFromView(vb, skip, data, pool.NumEntries(),
                                pool.BlockEntries()));
  // Wrong entry total must be rejected (count validation sums blocks).
  EXPECT_FALSE(view.SealFromView(vb, skip, data, pool.NumEntries() + 1,
                                 pool.BlockEntries()));
  // Truncated data must be rejected before any decode.
  EXPECT_FALSE(view.SealFromView(vb, skip,
                                 data.subspan(0, data.size() / 2),
                                 pool.NumEntries(), pool.BlockEntries()));
  // A corrupted block-index table must be rejected.
  std::vector<uint32_t> bad_vb(vb.begin(), vb.end());
  if (bad_vb.size() > 2) {
    std::swap(bad_vb[1], bad_vb[bad_vb.size() - 2]);
    EXPECT_FALSE(view.SealFromView(bad_vb, skip, data, pool.NumEntries(),
                                   pool.BlockEntries()));
  }
}

// The acceptance differential: compressed and flat storage answer every
// query identically across the roster graphs (> 10k pairs in total).
TEST(CompressedStorageTest, PlainDifferentialAcrossRoster) {
  const Digraph graphs[] = {
      ScaleFreeDag(100, 4, 3),
      RandomDigraph(80, 400, 5),
      RandomDag(90, 350, 7),
      ChainWithShortcuts(70, 25, 9),
  };
  for (const Digraph& g : graphs) {
    PrunedTwoHop flat;
    flat.Build(g);
    TwoHopStorageOptions storage;
    storage.compress = true;
    storage.block_entries = 16;
    PrunedTwoHop compressed(VertexOrder::kDegree, 0x70'6c'6cULL, 0, storage);
    compressed.Build(g);
    ASSERT_TRUE(compressed.CompressedStorage());
    ASSERT_FALSE(flat.CompressedStorage());
    EXPECT_EQ(compressed.TotalLabelEntries(), flat.TotalLabelEntries());
    for (VertexId s = 0; s < g.NumVertices(); ++s) {
      for (VertexId t = 0; t < g.NumVertices(); ++t) {
        ASSERT_EQ(compressed.Query(s, t), flat.Query(s, t))
            << s << "->" << t;
      }
    }
  }
}

TEST(CompressedStorageTest, PlainDifferentialAfterInsertions) {
  const Digraph g = ScaleFreeDag(60, 3, 13);
  TwoHopStorageOptions storage;
  storage.compress = true;
  PrunedTwoHop flat;
  PrunedTwoHop compressed(VertexOrder::kDegree, 0x70'6c'6cULL, 0, storage);
  flat.Build(g);
  compressed.Build(g);
  std::mt19937_64 rng(17);
  for (int i = 0; i < 10; ++i) {
    const VertexId s = static_cast<VertexId>(rng() % g.NumVertices());
    const VertexId t = static_cast<VertexId>(rng() % g.NumVertices());
    const UpdateBatch batch = {EdgeUpdate::Insert(s, t)};
    ASSERT_TRUE(flat.ApplyUpdate(batch).ok());
    ASSERT_TRUE(compressed.ApplyUpdate(batch).ok());
  }
  for (VertexId s = 0; s < g.NumVertices(); ++s) {
    for (VertexId t = 0; t < g.NumVertices(); ++t) {
      ASSERT_EQ(compressed.Query(s, t), flat.Query(s, t)) << s << "->" << t;
    }
  }
}

TEST(CompressedStorageTest, LcrDifferential) {
  const LabeledDigraph g = RandomLabeledDigraph(60, 300, 4, 19);
  PrunedLabeledTwoHop flat;
  flat.Build(g);
  TwoHopStorageOptions storage;
  storage.compress = true;
  storage.block_entries = 16;
  PrunedLabeledTwoHop compressed(0, storage);
  compressed.Build(g);
  ASSERT_TRUE(compressed.CompressedStorage());
  EXPECT_EQ(compressed.TotalEntries(), flat.TotalEntries());
  for (VertexId s = 0; s < g.NumVertices(); ++s) {
    for (VertexId t = 0; t < g.NumVertices(); ++t) {
      for (LabelSet mask : {LabelSet{0x1}, LabelSet{0x5}, LabelSet{0xf}}) {
        ASSERT_EQ(compressed.Query(s, t, mask), flat.Query(s, t, mask))
            << s << "->" << t << " mask " << mask;
      }
    }
  }
}

TEST(CompressedStorageTest, LcrDifferentialAfterInsertions) {
  const LabeledDigraph g = RandomLabeledDigraph(40, 150, 3, 23);
  PrunedLabeledTwoHop flat;
  flat.Build(g);
  TwoHopStorageOptions storage;
  storage.compress = true;
  PrunedLabeledTwoHop compressed(0, storage);
  compressed.Build(g);
  std::mt19937_64 rng(27);
  for (int i = 0; i < 6; ++i) {
    const VertexId s = static_cast<VertexId>(rng() % g.NumVertices());
    const VertexId t = static_cast<VertexId>(rng() % g.NumVertices());
    const Label l = static_cast<Label>(rng() % g.NumLabels());
    const LabeledUpdateBatch batch = {LabeledEdgeUpdate::Insert(s, t, l)};
    ASSERT_TRUE(flat.ApplyUpdate(batch).ok());
    ASSERT_TRUE(compressed.ApplyUpdate(batch).ok());
  }
  for (VertexId s = 0; s < g.NumVertices(); ++s) {
    for (VertexId t = 0; t < g.NumVertices(); ++t) {
      for (LabelSet mask : {LabelSet{0x3}, LabelSet{0x7}}) {
        ASSERT_EQ(compressed.Query(s, t, mask), flat.Query(s, t, mask))
            << s << "->" << t << " mask " << mask;
      }
    }
  }
}

TEST(CompressedEntryPoolTest, SealRefusesOversizedRankGroup) {
  struct E {
    uint32_t rank;
    uint32_t mask;
  };
  std::vector<std::vector<E>> lists(1);
  for (uint32_t i = 0;
       i < CompressedEntryPool<E>::kMaxBlockEntries + 1; ++i) {
    lists[0].push_back({7, i});  // one rank group larger than any block
  }
  CompressedEntryPool<E> pool;
  EXPECT_FALSE(pool.Seal(lists, 64));
  EXPECT_FALSE(pool.Sealed());
}

// A tight byte budget on an uncompressed spec forces the FERRARI-style
// fallback to compressed storage; the index still answers correctly.
TEST(CompressedStorageTest, BudgetFallsBackToCompressed) {
  const Digraph g = ScaleFreeDag(60000, 3, 29);
  TwoHopStorageOptions storage;
  storage.budget_mb = 1;  // flat offsets alone exceed 1 MiB at this size
  PrunedTwoHop index(VertexOrder::kDegree, 0x70'6c'6cULL, 0, storage);
  index.Build(g);
  EXPECT_TRUE(index.CompressedStorage());
  PrunedTwoHop oracle;
  oracle.Build(g);
  std::mt19937_64 rng(31);
  for (int i = 0; i < 2000; ++i) {
    const VertexId s = static_cast<VertexId>(rng() % g.NumVertices());
    const VertexId t = static_cast<VertexId>(rng() % g.NumVertices());
    ASSERT_EQ(index.Query(s, t), oracle.Query(s, t)) << s << "->" << t;
  }
}

TEST(CompressedStorageTest, CompressionShrinksLabelBytes) {
  // Label-heavy graph: 2-hop labels carry long rank lists, where the
  // delta/bit-packed blocks should win clearly (the >= 2x acceptance
  // criterion is asserted in the perf bench on the Table 1 roster; this
  // is the functional floor).
  const Digraph g = ScaleFreeDag(4000, 4, 37);
  PrunedTwoHop flat;
  flat.Build(g);
  TwoHopStorageOptions storage;
  storage.compress = true;
  PrunedTwoHop compressed(VertexOrder::kDegree, 0x70'6c'6cULL, 0, storage);
  compressed.Build(g);
  EXPECT_LT(compressed.IndexSizeBytes(), flat.IndexSizeBytes());
}

TEST(MemoryBytesTest, PoolsAndNegCacheReportBytes) {
  std::vector<std::vector<uint32_t>> lists = {{1, 2, 3}, {}, {5}};
  FlatLabelPool<uint32_t> flat;
  flat.Seal(std::move(lists));
  // (n + 1) offsets + 4 entries.
  EXPECT_EQ(flat.MemoryBytes(), 4 * sizeof(uint64_t) + 4 * sizeof(uint32_t));

  CompressedRankPool cpool;
  cpool.Seal(RandomRankLists(50, 1000, 53), 32);
  EXPECT_GT(cpool.MemoryBytes(), 0u);

  NegativeResultCache cache(4, 1024);
  EXPECT_GE(cache.MemoryBytes(),
            cache.NumShards() * cache.EntriesPerShard() * sizeof(uint64_t));
}

}  // namespace
}  // namespace reach
