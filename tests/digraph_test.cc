#include "graph/digraph.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/rng.h"

namespace reach {
namespace {

TEST(DigraphTest, EmptyGraph) {
  Digraph g = Digraph::FromEdges(0, {});
  EXPECT_EQ(g.NumVertices(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
}

TEST(DigraphTest, VerticesWithoutEdges) {
  Digraph g = Digraph::FromEdges(5, {});
  EXPECT_EQ(g.NumVertices(), 5u);
  EXPECT_EQ(g.NumEdges(), 0u);
  for (VertexId v = 0; v < 5; ++v) {
    EXPECT_TRUE(g.OutNeighbors(v).empty());
    EXPECT_TRUE(g.InNeighbors(v).empty());
  }
}

TEST(DigraphTest, BasicAdjacency) {
  Digraph g = Digraph::FromEdges(4, {{0, 1}, {0, 2}, {1, 2}, {2, 3}});
  EXPECT_EQ(g.NumEdges(), 4u);
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.InDegree(2), 2u);
  EXPECT_EQ(g.Degree(2), 3u);
  ASSERT_EQ(g.OutNeighbors(0).size(), 2u);
  EXPECT_EQ(g.OutNeighbors(0)[0], 1u);
  EXPECT_EQ(g.OutNeighbors(0)[1], 2u);
  ASSERT_EQ(g.InNeighbors(2).size(), 2u);
  EXPECT_EQ(g.InNeighbors(2)[0], 0u);
  EXPECT_EQ(g.InNeighbors(2)[1], 1u);
}

TEST(DigraphTest, DeduplicatesParallelEdges) {
  Digraph g = Digraph::FromEdges(3, {{0, 1}, {0, 1}, {0, 1}, {1, 2}});
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_EQ(g.OutDegree(0), 1u);
}

TEST(DigraphTest, KeepsSelfLoops) {
  Digraph g = Digraph::FromEdges(2, {{0, 0}, {0, 1}});
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_TRUE(g.HasEdge(0, 0));
}

TEST(DigraphTest, HasEdge) {
  Digraph g = Digraph::FromEdges(4, {{0, 1}, {0, 3}, {2, 3}});
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(0, 3));
  EXPECT_TRUE(g.HasEdge(2, 3));
  EXPECT_FALSE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_FALSE(g.HasEdge(3, 3));
}

TEST(DigraphTest, EdgesRoundTrip) {
  const std::vector<Edge> edges = {{0, 1}, {0, 3}, {2, 3}, {3, 0}};
  Digraph g = Digraph::FromEdges(4, edges);
  EXPECT_EQ(g.Edges(), edges);  // FromEdges sorts; input already sorted
}

TEST(DigraphTest, ReverseSwapsAdjacency) {
  Digraph g = Digraph::FromEdges(4, {{0, 1}, {1, 2}, {1, 3}});
  Digraph r = g.Reverse();
  EXPECT_EQ(r.NumVertices(), g.NumVertices());
  EXPECT_EQ(r.NumEdges(), g.NumEdges());
  EXPECT_TRUE(r.HasEdge(1, 0));
  EXPECT_TRUE(r.HasEdge(2, 1));
  EXPECT_TRUE(r.HasEdge(3, 1));
  EXPECT_FALSE(r.HasEdge(0, 1));
}

TEST(DigraphTest, ReverseTwiceIsIdentity) {
  Digraph g = RandomDigraph(64, 256, /*seed=*/7);
  Digraph rr = g.Reverse().Reverse();
  EXPECT_EQ(g.Edges(), rr.Edges());
}

TEST(DigraphTest, InNeighborsMatchOutNeighbors) {
  Digraph g = RandomDigraph(100, 500, /*seed=*/13);
  size_t in_arcs = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (VertexId u : g.InNeighbors(v)) {
      EXPECT_TRUE(g.HasEdge(u, v));
      ++in_arcs;
    }
  }
  EXPECT_EQ(in_arcs, g.NumEdges());
}

TEST(DigraphTest, NeighborListsAreSorted) {
  Digraph g = RandomDigraph(80, 400, /*seed=*/29);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    auto out = g.OutNeighbors(v);
    EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
    auto in = g.InNeighbors(v);
    EXPECT_TRUE(std::is_sorted(in.begin(), in.end()));
  }
}

TEST(DigraphTest, DegreeSumsEqualEdgeCount) {
  Digraph g = RandomDigraph(60, 300, /*seed=*/31);
  size_t out_sum = 0, in_sum = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    out_sum += g.OutDegree(v);
    in_sum += g.InDegree(v);
  }
  EXPECT_EQ(out_sum, g.NumEdges());
  EXPECT_EQ(in_sum, g.NumEdges());
}

TEST(DigraphTest, MemoryBytesIsPositiveForNonEmpty) {
  Digraph g = Digraph::FromEdges(3, {{0, 1}});
  EXPECT_GT(g.MemoryBytes(), 0u);
}

}  // namespace
}  // namespace reach
